// Package repro's top-level benchmarks regenerate each figure of the
// paper's evaluation at reduced size, one testing.B benchmark per table
// or figure. Run the full harness with cmd/dlhub-bench; these benches
// exist so `go test -bench=.` exercises every experiment path and
// reports per-figure wall costs.
package repro

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/simconst"
)

// benchCfg returns a heavily reduced configuration so each figure
// completes in seconds under `go test -bench`.
func benchCfg() bench.Config {
	return bench.Config{
		Requests:     10,
		Fig5Sizes:    []int{1, 5, 10},
		Fig6Sizes:    []int{50, 100},
		Fig7N:        100,
		Fig7Replicas: []int{1, 2, 4},
		Seed:         42,
	}
}

func runFigure(b *testing.B, fig func(bench.Config) (*bench.Table, error)) {
	b.Helper()
	// Compress injected environmental latencies (container starts, WAN
	// RTTs) 10x so benches measure the serving machinery, not sleeps.
	old := simconst.Scale
	simconst.Scale = 10
	defer func() { simconst.Scale = old }()
	for i := 0; i < b.N; i++ {
		table, err := fig(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkTable1FeatureMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(bench.Table1().Rows) != 8 {
			b.Fatal("Table I should have 8 dimensions")
		}
	}
}

func BenchmarkTable2FeatureMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(bench.Table2().Rows) != 8 {
			b.Fatal("Table II should have 8 dimensions")
		}
	}
}

func BenchmarkFig3ServablePerformance(b *testing.B) { runFigure(b, bench.Fig3) }

func BenchmarkFig4Memoization(b *testing.B) { runFigure(b, bench.Fig4) }

func BenchmarkFig5Batching(b *testing.B) { runFigure(b, bench.Fig5) }

func BenchmarkFig6BatchScaling(b *testing.B) { runFigure(b, bench.Fig6) }

func BenchmarkFig7ReplicaScaling(b *testing.B) { runFigure(b, bench.Fig7) }

func BenchmarkFig8ServingComparison(b *testing.B) { runFigure(b, bench.Fig8) }

// BenchmarkAblationCoalescing measures the adaptive request-coalescing
// extension (§V-B3 future work) against the per-request baseline.
func BenchmarkAblationCoalescing(b *testing.B) { runFigure(b, bench.AblationCoalescing) }
