package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/bench"
)

// diffMetric describes one compared report metric: where it comes from,
// and which direction is better. A relative change past the threshold
// in the worse direction is a regression.
type diffMetric struct {
	name         string
	higherBetter bool
	get          func(*bench.ScenarioResult) float64
}

var diffMetrics = []diffMetric{
	{"throughput_rps", true, func(r *bench.ScenarioResult) float64 { return r.Totals.Throughput }},
	{"p50_ms", false, func(r *bench.ScenarioResult) float64 { return r.Totals.P50MS }},
	{"p99_ms", false, func(r *bench.ScenarioResult) float64 { return r.Totals.P99MS }},
	{"allocs_per_op", false, func(r *bench.ScenarioResult) float64 { return r.Totals.AllocsPerOp }},
	{"saturation_rps", true, func(r *bench.ScenarioResult) float64 { return r.SaturationRPS }},
}

// diffReports compares two scenario BENCH reports and returns the
// process exit code: 1 when the new run regresses past threshold on any
// metric, 0 otherwise. Metrics absent from either run (zero on one
// side) are reported but never judged — a scenario without a saturation
// stage, or a stage-windowed run without usable allocs, must not fail
// the gate on a 0-vs-something artifact.
func diffReports(oldPath, newPath string, threshold float64) int {
	oldRes, err := loadScenarioResult(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlhub-bench: %v\n", err)
		return 1
	}
	newRes, err := loadScenarioResult(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlhub-bench: %v\n", err)
		return 1
	}
	if oldRes.Name != newRes.Name {
		fmt.Fprintf(os.Stderr, "dlhub-bench: refusing to diff different scenarios: %q (%s) vs %q (%s)\n",
			oldRes.Name, oldPath, newRes.Name, newPath)
		return 1
	}

	t := &bench.Table{
		Title:   fmt.Sprintf("BENCH diff: %s (threshold %.0f%%)", oldRes.Name, threshold*100),
		Headers: []string{"metric", "old", "new", "delta", "verdict"},
	}
	regressions := 0
	for _, m := range diffMetrics {
		oldV, newV := m.get(oldRes), m.get(newRes)
		if oldV == 0 || newV == 0 {
			if oldV != 0 || newV != 0 {
				t.Add(m.name, fmt.Sprintf("%.2f", oldV), fmt.Sprintf("%.2f", newV), "n/a", "skipped (missing side)")
			}
			continue
		}
		rel := (newV - oldV) / oldV
		verdict := "ok"
		regressed := false
		if m.higherBetter && rel < -threshold {
			regressed = true
		}
		if !m.higherBetter && rel > threshold {
			regressed = true
		}
		if regressed {
			verdict = "REGRESSION"
			regressions++
		} else if (m.higherBetter && rel > threshold) || (!m.higherBetter && rel < -threshold) {
			verdict = "improved"
		}
		t.Add(m.name, fmt.Sprintf("%.2f", oldV), fmt.Sprintf("%.2f", newV),
			fmt.Sprintf("%+.1f%%", rel*100), verdict)
	}
	if oldRes.Totals.Errors == 0 && newRes.Totals.Errors > 0 {
		t.Add("errors", "0", fmt.Sprint(newRes.Totals.Errors), "n/a", "REGRESSION")
		regressions++
	}
	t.Fprint(os.Stdout)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "dlhub-bench: %d metric(s) regressed past %.0f%%\n", regressions, threshold*100)
		return 1
	}
	return 0
}

// loadScenarioResult reads one BENCH_*.json and extracts its scenario
// result; experiment-mode reports have none and cannot be diffed.
func loadScenarioResult(path string) (*bench.ScenarioResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var report bench.Report
	if err := json.Unmarshal(data, &report); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if report.Scenario == nil {
		return nil, fmt.Errorf("%s: no scenario result (experiment reports cannot be diffed)", path)
	}
	return report.Scenario, nil
}
