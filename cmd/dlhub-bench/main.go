// Command dlhub-bench regenerates every table and figure of the paper's
// evaluation (§V) on the in-process three-site testbed.
//
//	dlhub-bench                    # all experiments, laptop scale
//	dlhub-bench -exp fig3,fig8     # a subset
//	dlhub-bench -paper-scale       # the paper's full request counts
//	dlhub-bench -scale 10          # compress injected latencies 10x
//
// Absolute numbers differ from the paper's testbed (PetrelKube had 448
// cores; the models here are width-reduced — see DESIGN.md), but the
// qualitative shapes of Figs. 3-8 are expected to hold; EXPERIMENTS.md
// records paper-vs-measured for each.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/simconst"
)

func main() {
	exps := flag.String("exp", "table1,table2,fig3,fig4,fig5,fig6,fig7,fig8,ablation,cache,autoscale,pipeline", "comma-separated experiments to run")
	paperScale := flag.Bool("paper-scale", false, "use the paper's full experiment sizes (slow)")
	scale := flag.Float64("scale", 1, "divide injected environmental latencies by this factor")
	requests := flag.Int("requests", 0, "override requests per configuration (figs 3/4/8)")
	fig7n := flag.Int("fig7-n", 0, "override inferences per replica point (fig 7)")
	verbose := flag.Bool("v", true, "log progress")
	jsonOut := flag.String("json", "", "also write machine-readable results (bench.Report) to this path")
	flag.Parse()

	simconst.Scale = *scale

	cfg := bench.Config{}
	if *paperScale {
		cfg = bench.PaperScale()
	}
	if *requests > 0 {
		cfg.Requests = *requests
	}
	if *fig7n > 0 {
		cfg.Fig7N = *fig7n
	}
	if *verbose {
		cfg.Out = os.Stderr
	}

	type experiment struct {
		name string
		run  func(bench.Config) (*bench.Table, error)
	}
	all := []experiment{
		{"table1", func(bench.Config) (*bench.Table, error) { return bench.Table1(), nil }},
		{"table2", func(bench.Config) (*bench.Table, error) { return bench.Table2(), nil }},
		{"fig3", bench.Fig3},
		{"fig4", bench.Fig4},
		{"fig5", bench.Fig5},
		{"fig6", bench.Fig6},
		{"fig7", bench.Fig7},
		{"fig8", bench.Fig8},
		{"ablation", bench.AblationCoalescing},
		{"cache", bench.AblationServiceCache},
		{"autoscale", bench.AblationAutoscale},
		{"pipeline", bench.AblationPipeline},
	}
	want := map[string]bool{}
	for _, name := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(name)] = true
	}

	start := time.Now()
	report := bench.Report{Started: start.UTC()}
	for _, e := range all {
		if !want[e.name] {
			continue
		}
		expStart := time.Now()
		fmt.Fprintf(os.Stderr, "--- running %s ---\n", e.name)
		table, err := e.run(cfg)
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		elapsed := time.Since(expStart)
		table.Note("completed in %s", elapsed.Round(time.Millisecond))
		table.Fprint(os.Stdout)
		report.Experiments = append(report.Experiments, table.Entry(e.name, elapsed))
	}
	report.DurationMS = time.Since(start).Milliseconds()
	if *jsonOut != "" {
		if err := report.WriteFile(*jsonOut); err != nil {
			log.Fatalf("write %s: %v", *jsonOut, err)
		}
		fmt.Fprintf(os.Stderr, "machine-readable results written to %s\n", *jsonOut)
	}
	fmt.Fprintf(os.Stderr, "all experiments done in %s\n", time.Since(start).Round(time.Second))
}
