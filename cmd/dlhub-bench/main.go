// Command dlhub-bench regenerates every table and figure of the paper's
// evaluation (§V) on the in-process three-site testbed, and executes
// declarative benchmark scenarios (docs/BENCH.md).
//
//	dlhub-bench                    # all experiments, laptop scale
//	dlhub-bench -exp fig3,fig8     # a subset
//	dlhub-bench -paper-scale       # the paper's full request counts
//	dlhub-bench -scale 10          # compress injected latencies 10x
//
//	dlhub-bench -scenario scenarios/chaos-tm-kill.yaml
//	    run one scenario; write BENCH_<name>.json; exit 1 on assertion failure
//	dlhub-bench -scenario f.yaml -scenario-check
//	    parse + validate only (CI lint over scenarios/*.yaml)
//	dlhub-bench -scenario f.yaml -scenario-compress 20
//	    divide stage durations and fault offsets by 20 (CI scale)
//	dlhub-bench -scenario f.yaml -verify-json BENCH_<name>.json
//	    check a committed result is not stale against its spec file
//	dlhub-bench -diff old.json new.json
//	    compare two scenario BENCH reports; exit 1 when new regresses
//	    past -diff-threshold (default 10%) on throughput, latency,
//	    allocs/op or the saturation ceiling
//
// Absolute numbers differ from the paper's testbed (PetrelKube had 448
// cores; the models here are width-reduced — see DESIGN.md), but the
// qualitative shapes of Figs. 3-8 are expected to hold; EXPERIMENTS.md
// records paper-vs-measured for each.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/bench/scenario"
	"repro/internal/simconst"
)

func main() {
	exps := flag.String("exp", "table1,table2,fig3,fig4,fig5,fig6,fig7,fig8,ablation,cache,autoscale,pipeline", "comma-separated experiments to run")
	paperScale := flag.Bool("paper-scale", false, "use the paper's full experiment sizes (slow)")
	scale := flag.Float64("scale", 1, "divide injected environmental latencies by this factor")
	requests := flag.Int("requests", 0, "override requests per configuration (figs 3/4/8)")
	fig7n := flag.Int("fig7-n", 0, "override inferences per replica point (fig 7)")
	verbose := flag.Bool("v", true, "log progress")
	jsonOut := flag.String("json", "", "also write machine-readable results (bench.Report) to this path")
	scenarioFile := flag.String("scenario", "", "run a declarative scenario spec (YAML, see docs/BENCH.md) instead of paper experiments")
	scenarioCheck := flag.Bool("scenario-check", false, "with -scenario: parse and validate the spec, then exit")
	scenarioCompress := flag.Float64("scenario-compress", 1, "with -scenario: divide stage durations and fault offsets by this factor")
	verifyJSON := flag.String("verify-json", "", "with -scenario: verify this committed BENCH_*.json is up to date with the spec, then exit")
	diff := flag.Bool("diff", false, "compare two scenario BENCH reports (old.json new.json as positional args), exit 1 on regression")
	diffThreshold := flag.Float64("diff-threshold", 0.10, "with -diff: relative regression tolerance (0.10 = 10%)")
	flag.Parse()

	simconst.Scale = *scale

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "dlhub-bench: -diff needs exactly two arguments: old.json new.json")
			os.Exit(1)
		}
		os.Exit(diffReports(flag.Arg(0), flag.Arg(1), *diffThreshold))
	}

	if *scenarioFile != "" {
		os.Exit(runScenario(*scenarioFile, *scenarioCheck, *scenarioCompress, *verifyJSON, *jsonOut, *verbose))
	}

	cfg := bench.Config{}
	if *paperScale {
		cfg = bench.PaperScale()
	}
	if *requests > 0 {
		cfg.Requests = *requests
	}
	if *fig7n > 0 {
		cfg.Fig7N = *fig7n
	}
	if *verbose {
		cfg.Out = os.Stderr
	}

	type experiment struct {
		name string
		run  func(bench.Config) (*bench.Table, error)
	}
	all := []experiment{
		{"table1", func(bench.Config) (*bench.Table, error) { return bench.Table1(), nil }},
		{"table2", func(bench.Config) (*bench.Table, error) { return bench.Table2(), nil }},
		{"fig3", bench.Fig3},
		{"fig4", bench.Fig4},
		{"fig5", bench.Fig5},
		{"fig6", bench.Fig6},
		{"fig7", bench.Fig7},
		{"fig8", bench.Fig8},
		{"ablation", bench.AblationCoalescing},
		{"cache", bench.AblationServiceCache},
		{"autoscale", bench.AblationAutoscale},
		{"pipeline", bench.AblationPipeline},
	}
	want := map[string]bool{}
	for _, name := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(name)] = true
	}

	start := time.Now()
	report := bench.Report{Started: start.UTC()}
	for _, e := range all {
		if !want[e.name] {
			continue
		}
		expStart := time.Now()
		fmt.Fprintf(os.Stderr, "--- running %s ---\n", e.name)
		table, err := e.run(cfg)
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		elapsed := time.Since(expStart)
		table.Note("completed in %s", elapsed.Round(time.Millisecond))
		table.Fprint(os.Stdout)
		report.Experiments = append(report.Experiments, table.Entry(e.name, elapsed))
	}
	report.DurationMS = time.Since(start).Milliseconds()
	if *jsonOut != "" {
		if err := report.WriteFile(*jsonOut); err != nil {
			log.Fatalf("write %s: %v", *jsonOut, err)
		}
		fmt.Fprintf(os.Stderr, "machine-readable results written to %s\n", *jsonOut)
	}
	fmt.Fprintf(os.Stderr, "all experiments done in %s\n", time.Since(start).Round(time.Second))
}

// runScenario handles the -scenario mode; its return value is the
// process exit code (non-zero = validation error, stale JSON, run
// failure or failed assertion).
func runScenario(path string, checkOnly bool, compress float64, verifyJSON, jsonOut string, verbose bool) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlhub-bench: %v\n", err)
		return 1
	}
	spec, err := scenario.Parse(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlhub-bench: %s: %v\n", path, err)
		return 1
	}
	sum := sha256.Sum256(data)
	specSHA := hex.EncodeToString(sum[:])

	if checkOnly {
		sched := scenario.BuildSchedule(spec)
		fmt.Printf("%s: OK — scenario %q: %d stages over %s, %d requests, %d faults, %d assertions\n",
			path, spec.Name, len(spec.Stages), spec.TotalDuration(), len(sched.Requests), len(spec.Faults), len(spec.Assertions))
		return 0
	}
	if verifyJSON != "" {
		return verifyCommitted(verifyJSON, spec.Name, specSHA)
	}

	opts := scenario.Options{Compress: compress, SpecPath: path, SpecSHA: specSHA}
	if verbose {
		opts.Progress = os.Stderr
	}
	fmt.Fprintf(os.Stderr, "--- scenario %s (compress %gx, seed %d) ---\n", spec.Name, compress, spec.Seed)
	start := time.Now()
	report, err := scenario.Run(spec, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlhub-bench: scenario %s: %v\n", spec.Name, err)
		return 1
	}
	printScenario(report.Scenario)
	out := jsonOut
	if out == "" {
		out = "BENCH_" + spec.Name + ".json"
	}
	if err := report.WriteFile(out); err != nil {
		fmt.Fprintf(os.Stderr, "dlhub-bench: write %s: %v\n", out, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "scenario %s done in %s, results written to %s\n",
		spec.Name, time.Since(start).Round(time.Millisecond), out)
	if !report.Scenario.Passed {
		fmt.Fprintf(os.Stderr, "dlhub-bench: scenario %s: ASSERTIONS FAILED\n", spec.Name)
		return 2
	}
	return 0
}

// verifyCommitted checks a committed BENCH_*.json against the spec file
// it claims to have been produced from: same scenario name, same spec
// content hash. Keeps the CI staleness gate dependency-free (no jq).
func verifyCommitted(jsonPath, wantName, wantSHA string) int {
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlhub-bench: %v\n", err)
		return 1
	}
	var report struct {
		Scenario struct {
			Name       string `json:"name"`
			SpecSHA256 string `json:"spec_sha256"`
		} `json:"scenario"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		fmt.Fprintf(os.Stderr, "dlhub-bench: %s: %v\n", jsonPath, err)
		return 1
	}
	if report.Scenario.Name != wantName {
		fmt.Fprintf(os.Stderr, "dlhub-bench: %s records scenario %q, spec file defines %q\n",
			jsonPath, report.Scenario.Name, wantName)
		return 1
	}
	if report.Scenario.SpecSHA256 != wantSHA {
		fmt.Fprintf(os.Stderr, "dlhub-bench: %s is STALE: recorded spec_sha256 %.12s…, spec file hashes %.12s… — re-run `dlhub-bench -scenario <spec>` and commit the result\n",
			jsonPath, report.Scenario.SpecSHA256, wantSHA)
		return 1
	}
	fmt.Printf("%s: up to date with scenario %q (spec_sha256 %.12s…)\n", jsonPath, wantName, wantSHA)
	return 0
}

// printScenario renders the human summary of a scenario run.
func printScenario(res *bench.ScenarioResult) {
	t := &bench.Table{
		Title:   fmt.Sprintf("Scenario: %s", res.Name),
		Headers: []string{"stage", "kind", "offered", "done", "errs", "p50 (ms)", "p95 (ms)", "p99 (ms)", "req/s"},
	}
	row := func(sr bench.StageResult) {
		t.Add(sr.Name, sr.Kind, fmt.Sprint(sr.Offered), fmt.Sprint(sr.Completed), fmt.Sprint(sr.Errors),
			fmt.Sprintf("%.2f", sr.P50MS), fmt.Sprintf("%.2f", sr.P95MS), fmt.Sprintf("%.2f", sr.P99MS),
			fmt.Sprintf("%.1f", sr.Throughput))
	}
	for _, sr := range res.Stages {
		row(sr)
	}
	row(res.Totals)
	t.Note("cache hit rate %.2f%%; failovers lost=%d redispatched=%d exhausted=%d",
		res.CacheHitRate*100, res.Failovers["lost"], res.Failovers["redispatched"], res.Failovers["exhausted"])
	for _, a := range res.Assertions {
		verdict := "PASS"
		if !a.Pass {
			verdict = "FAIL"
		}
		t.Note("assert %s: want %g, got %g — %s", a.Name, a.Want, a.Got, verdict)
	}
	if res.Passed {
		t.Note("result: PASSED")
	} else {
		t.Note("result: FAILED")
	}
	t.Fprint(os.Stdout)
}
