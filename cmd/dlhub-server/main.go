// Command dlhub-server runs the DLHub Management Service: the REST API
// on -http and the ZeroMQ-style task queue on -queue, to which Task
// Managers (cmd/dlhub-taskmanager) connect.
//
// Example:
//
//	dlhub-server -http :8080 -queue :7000
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/queue"
)

func main() {
	httpAddr := flag.String("http", ":8080", "REST API listen address")
	queueAddr := flag.String("queue", ":7000", "task queue listen address")
	snapshotDir := flag.String("snapshot", "", "repository snapshot directory (loaded on start, saved on shutdown)")
	noCache := flag.Bool("no-cache", false, "disable the service-layer result cache")
	cacheEntries := flag.Int("cache-entries", 0, "result cache capacity in entries (default 4096)")
	cacheBytes := flag.Int64("cache-bytes", 0, "result cache capacity in result-JSON bytes (default 256 MiB)")
	cacheTTL := flag.Duration("cache-ttl", 0, "result cache entry TTL (default 5m)")
	logRequests := flag.Bool("log-requests", false, "log every HTTP request (method, path, status, latency, request ID)")
	autoscaleInterval := flag.Duration("autoscale-interval", 0, "autoscaler control-loop tick (default 1s)")
	maxQueue := flag.Int("max-queue", 0, "service-wide admission bound: reject runs (429) for a servable once this many are pending (0 = unbounded)")
	taskRetention := flag.Duration("task-retention", 0, "how long finished async tasks stay queryable before the sweeper deletes them (default 15m, negative retains forever)")
	tmStaleAfter := flag.Duration("tm-stale-after", 0, "drop TMs from routing when no heartbeat arrived within this window, and fail over dispatches stuck on them (0 disables liveness + failover)")
	failoverRetries := flag.Int("failover-retries", 0, "re-dispatch budget per run after its TM misses the liveness window (default 2, negative disables; requires -tm-stale-after)")
	flag.Parse()

	ms := core.New(core.Config{
		Cache: core.CacheConfig{
			Disabled:   *noCache,
			MaxEntries: *cacheEntries,
			MaxBytes:   *cacheBytes,
			TTL:        *cacheTTL,
		},
		LogRequests:       *logRequests,
		AutoscaleInterval: *autoscaleInterval,
		MaxQueue:          *maxQueue,
		TaskRetention:     *taskRetention,
		TMStaleAfter:      *tmStaleAfter,
		FailoverRetries:   *failoverRetries,
	})
	defer ms.Close()
	if *snapshotDir != "" {
		if err := ms.LoadSnapshot(*snapshotDir); err != nil {
			if os.IsNotExist(err) {
				log.Printf("no snapshot in %s yet; starting empty", *snapshotDir)
			} else {
				log.Fatalf("snapshot load: %v", err)
			}
		} else {
			log.Printf("repository restored from %s", *snapshotDir)
		}
	}

	qsrv := queue.NewServer(ms.Broker())
	ql, err := net.Listen("tcp", *queueAddr)
	if err != nil {
		log.Fatalf("queue listen: %v", err)
	}
	go func() {
		if err := qsrv.Serve(ql); err != nil {
			log.Printf("queue server stopped: %v", err)
		}
	}()
	defer qsrv.Close()

	hl, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		log.Fatalf("http listen: %v", err)
	}
	srv := &http.Server{Handler: ms.Handler()}
	go func() {
		if err := srv.Serve(hl); err != http.ErrServerClosed {
			log.Printf("http server stopped: %v", err)
		}
	}()
	defer srv.Close()

	fmt.Printf("dlhub-server: REST on %s (v1 + /api/v2; health at /api/v2/healthz, /api/v2/readyz), queue on %s\n", hl.Addr(), ql.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	// Graceful drain: stop accepting, let in-flight requests (and their
	// contexts) finish, then fall through to the snapshot save.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if *snapshotDir != "" {
		if err := ms.SaveSnapshot(*snapshotDir); err != nil {
			log.Printf("snapshot save failed: %v", err)
		} else {
			log.Printf("repository saved to %s", *snapshotDir)
		}
	}
	fmt.Println("dlhub-server: shutting down")
}
