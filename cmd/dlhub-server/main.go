// Command dlhub-server runs the DLHub Management Service: the REST API
// on -http and the ZeroMQ-style task queue on -queue, to which Task
// Managers (cmd/dlhub-taskmanager) connect.
//
// Durability comes in two modes:
//
//   - -data-dir: a write-ahead log plus periodic checkpoints
//     (internal/store). Every publish/deploy/scale/drain/... is fsynced
//     before the API call returns, so kill -9 at any point loses at
//     most the single in-flight mutation; boot replays the log tail
//     over the last checkpoint.
//   - -snapshot: the legacy whole-state gob, loaded on start and saved
//     on graceful shutdown (and every -snapshot-every, when set). A
//     crash between saves loses everything since the last one.
//
// A -snapshot directory upgrades in place to a -data-dir: the WAL's
// checkpoint file is the same repository.gob.
//
// Authentication is off by default (open mode; the X-DLHub-Tenant
// header may tag tenancy for development). -auth makes bearer tokens
// mandatory: accounts register and log in at /api/v2/auth/*, tenancy
// follows the token's identity, and the header shim is rejected. See
// docs/SECURITY.md and docs/OPERATIONS.md.
//
// Example:
//
//	dlhub-server -http :8080 -queue :7000 -data-dir /var/lib/dlhub -auth
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/queue"
	"repro/internal/store"
)

// The server's own resource-server identity and the scope its tokens
// carry — what DLHub registers with Globus Auth ("associated scope for
// programmatic invocation", §IV-D).
const (
	authClientID = "dlhub"
	runScope     = "dlhub:serve"
)

func main() {
	httpAddr := flag.String("http", ":8080", "REST API listen address")
	queueAddr := flag.String("queue", ":7000", "task queue listen address")
	snapshotDir := flag.String("snapshot", "", "repository snapshot directory (loaded on start, saved on shutdown; superseded by -data-dir)")
	snapshotEvery := flag.Duration("snapshot-every", 0, "also save the -snapshot periodically at this interval (0 disables; ignored with -data-dir)")
	dataDir := flag.String("data-dir", "", "durable store directory: WAL + checkpoints; every mutation survives kill -9 (supersedes -snapshot)")
	walSync := flag.Bool("wal-sync", true, "fsync the WAL after every record (disable to trade the last few mutations for append latency)")
	compactEvery := flag.Int("compact-every", 0, "checkpoint + truncate the WAL after this many records (default 4096; negative disables the record trigger)")
	compactBytes := flag.Int64("compact-bytes", 0, "checkpoint + truncate the WAL once it reaches this many bytes (default 32 MiB; negative disables the byte trigger)")
	noCache := flag.Bool("no-cache", false, "disable the service-layer result cache")
	cacheEntries := flag.Int("cache-entries", 0, "result cache capacity in entries (default 4096)")
	cacheBytes := flag.Int64("cache-bytes", 0, "result cache capacity in result-JSON bytes (default 256 MiB)")
	cacheTTL := flag.Duration("cache-ttl", 0, "result cache entry TTL (default 5m)")
	logRequests := flag.Bool("log-requests", false, "log every HTTP request (method, path, status, latency, request ID)")
	autoscaleInterval := flag.Duration("autoscale-interval", 0, "autoscaler control-loop tick (default 1s)")
	maxQueue := flag.Int("max-queue", 0, "service-wide admission bound: reject runs (429) for a servable once this many are pending (0 = unbounded)")
	taskRetention := flag.Duration("task-retention", 0, "how long finished async tasks stay queryable before the sweeper deletes them (default 15m, negative retains forever)")
	tmStaleAfter := flag.Duration("tm-stale-after", 15*time.Second, "drop TMs from routing when no heartbeat arrived within this window, and fail over dispatches stuck on them (default 3x the TM heartbeat interval; 0 disables liveness + failover)")
	failoverRetries := flag.Int("failover-retries", 0, "re-dispatch budget per run after its TM misses the liveness window (default 2, negative disables; requires -tm-stale-after)")
	disableV1 := flag.Bool("disable-v1", false, "retire the deprecated v1 API: /api/* (non-v2) routes answer 410 Gone")
	authOn := flag.Bool("auth", false, "require bearer-token authentication: identities register/login via /api/v2/auth, tenancy follows the token, and the X-DLHub-Tenant header is rejected")
	authProvider := flag.String("auth-provider", "local", "identity provider name register/login default to (with -auth)")
	authTokenTTL := flag.Duration("auth-token-ttl", time.Hour, "issued token lifetime (with -auth)")
	flag.Parse()

	var wal *store.WAL
	if *dataDir != "" {
		if *snapshotDir != "" {
			log.Printf("-snapshot %s ignored: -data-dir %s supersedes it", *snapshotDir, *dataDir)
			*snapshotDir = ""
		}
		var err error
		wal, err = store.Open(store.Options{
			Dir:          *dataDir,
			Sync:         *walSync,
			CompactEvery: *compactEvery,
			CompactBytes: *compactBytes,
		})
		if err != nil {
			log.Fatalf("durable store open: %v", err)
		}
		defer wal.Close()
	}

	cfg := core.Config{
		Cache: core.CacheConfig{
			Disabled:   *noCache,
			MaxEntries: *cacheEntries,
			MaxBytes:   *cacheBytes,
			TTL:        *cacheTTL,
		},
		LogRequests:       *logRequests,
		AutoscaleInterval: *autoscaleInterval,
		MaxQueue:          *maxQueue,
		TaskRetention:     *taskRetention,
		TMStaleAfter:      *tmStaleAfter,
		FailoverRetries:   *failoverRetries,
		DisableV1:         *disableV1,
	}
	if wal != nil {
		cfg.Store = wal
	}
	if *authOn {
		// The in-process authority plays Globus Auth: the server is its
		// own registered resource server, and login tokens carry the run
		// scope every API call is authorized against. User accounts are
		// durable (WAL + checkpoint); tokens are not — a restart
		// invalidates outstanding bearers and clients log in again.
		as := auth.NewService(*authTokenTTL)
		as.RegisterProvider(*authProvider)
		as.RegisterClient(authClientID, "DLHub Management Service", runScope)
		cfg.Auth = as
		cfg.RequireAuth = true
		cfg.RunScope = runScope
		cfg.AuthClientID = authClientID
		cfg.AuthProvider = *authProvider
	}
	ms := core.New(cfg)
	defer ms.Close()

	switch {
	case wal != nil:
		info, err := ms.Recover()
		if err != nil {
			log.Fatalf("recovery from %s: %v", *dataDir, err)
		}
		log.Printf("recovered from %s: checkpoint=%v replayed=%d torn_tail_dropped=%v",
			*dataDir, info.CheckpointLoaded, info.Replayed, info.Truncated)
	case *snapshotDir != "":
		if err := ms.LoadSnapshot(*snapshotDir); err != nil {
			if os.IsNotExist(err) {
				log.Printf("no snapshot in %s yet; starting empty", *snapshotDir)
			} else {
				log.Fatalf("snapshot load: %v", err)
			}
		} else {
			log.Printf("repository restored from %s", *snapshotDir)
		}
	}

	// Periodic snapshot for the legacy mode: without it the only save
	// is the shutdown one, so a crash loses the whole uptime's worth of
	// mutations instead of one interval's.
	stopSnapshots := make(chan struct{})
	if wal == nil && *snapshotDir != "" && *snapshotEvery > 0 {
		go func() {
			ticker := time.NewTicker(*snapshotEvery)
			defer ticker.Stop()
			for {
				select {
				case <-stopSnapshots:
					return
				case <-ticker.C:
					if err := ms.SaveSnapshot(*snapshotDir); err != nil {
						log.Printf("periodic snapshot save failed: %v", err)
					}
				}
			}
		}()
	}

	qsrv := queue.NewServer(ms.Broker())
	ql, err := net.Listen("tcp", *queueAddr)
	if err != nil {
		log.Fatalf("queue listen: %v", err)
	}
	go func() {
		if err := qsrv.Serve(ql); err != nil {
			log.Printf("queue server stopped: %v", err)
		}
	}()
	defer qsrv.Close()

	hl, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		log.Fatalf("http listen: %v", err)
	}
	srv := &http.Server{Handler: ms.Handler()}
	go func() {
		if err := srv.Serve(hl); err != http.ErrServerClosed {
			log.Printf("http server stopped: %v", err)
		}
	}()
	defer srv.Close()

	apiGen := "v1 + /api/v2"
	if *disableV1 {
		apiGen = "/api/v2 only, v1 gone"
	}
	authMode := "open (no auth)"
	if *authOn {
		authMode = "bearer tokens required (provider " + *authProvider + ")"
	}
	fmt.Printf("dlhub-server: REST on %s (%s; %s; health at /api/v2/healthz, /api/v2/readyz), queue on %s\n", hl.Addr(), apiGen, authMode, ql.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	// Graceful drain: stop accepting, let in-flight requests (and their
	// contexts) finish, then persist — a clean stop never loses state in
	// either durability mode.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	close(stopSnapshots)
	switch {
	case wal != nil:
		// Fold the WAL tail into a fresh checkpoint so the next boot
		// restores without replay.
		if err := ms.Checkpoint(); err != nil {
			log.Printf("shutdown checkpoint failed (the WAL still has every record): %v", err)
		} else {
			log.Printf("checkpoint saved to %s", *dataDir)
		}
	case *snapshotDir != "":
		if err := ms.SaveSnapshot(*snapshotDir); err != nil {
			log.Printf("snapshot save failed: %v", err)
		} else {
			log.Printf("repository saved to %s", *snapshotDir)
		}
	}
	fmt.Println("dlhub-server: shutting down")
}
