// Command dlhub-taskmanager runs a DLHub Task Manager: it connects to a
// Management Service's task queue, stands up a local mini-Kubernetes
// cluster with the requested executors, and serves tasks.
//
// Example (paper topology, with the measured 20.7 ms WAN RTT shaped
// onto the queue connection):
//
//	dlhub-taskmanager -queue localhost:7000 -id cooley-tm-1 \
//	    -executors parsl,tfserving-grpc -wan-rtt 20.7ms -memoize
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/clipper"
	"repro/internal/container"
	"repro/internal/executor"
	"repro/internal/k8s"
	"repro/internal/netsim"
	"repro/internal/queue"
	"repro/internal/sagemaker"
	"repro/internal/servable"
	"repro/internal/simconst"
	"repro/internal/taskmanager"
	"repro/internal/tfserving"
)

func main() {
	queueAddr := flag.String("queue", "localhost:7000", "Management Service queue address")
	id := flag.String("id", "tm-1", "Task Manager ID")
	nodes := flag.Int("nodes", 14, "Kubernetes cluster nodes (PetrelKube has 14)")
	memoize := flag.Bool("memoize", false, "enable the TM memoization cache")
	executors := flag.String("executors", "parsl", "comma-separated executors: parsl,tfserving-grpc,tfserving-rest,sagemaker,clipper")
	wanRTT := flag.Duration("wan-rtt", 0, "shape the queue connection with this RTT (paper: 20.7ms)")
	heartbeat := flag.Duration("heartbeat", 5*time.Second, "re-registration interval; heartbeats carry liveness and the executing-task count (0 disables)")
	flag.Parse()

	// Install the built-in "Python modules" (the functions servable
	// containers import), then the cluster substrate.
	servable.RegisterBuiltins()
	registry := container.NewRegistry()
	builder := container.NewBuilder(registry)
	runtime := container.NewRuntime(registry)
	runtime.RegisterProcess("dlhub-ipp-engine", executor.NewPodProcessFactory(true))
	runtime.RegisterProcess(tfserving.Entrypoint, tfserving.NewProcessFactory())
	runtime.RegisterProcess(sagemaker.Entrypoint, sagemaker.NewProcessFactory())
	cluster := k8s.NewCluster(runtime, *nodes, k8s.Resources{MilliCPU: 32000, MemMB: 128 * 1024})
	clusterLink := netsim.RTT(simconst.D(simconst.RTTTMToCluster), simconst.LinkBandwidth)

	execs := map[string]executor.Executor{}
	for _, name := range strings.Split(*executors, ",") {
		name = strings.TrimSpace(name)
		switch name {
		case "", "parsl":
			execs["parsl"] = executor.NewParsl(cluster, builder, clusterLink)
		case "tfserving-grpc":
			execs[name] = tfserving.New(cluster, builder, clusterLink, tfserving.GRPC)
		case "tfserving-rest":
			execs[name] = tfserving.New(cluster, builder, clusterLink, tfserving.REST)
		case "sagemaker":
			execs[name] = sagemaker.New(cluster, builder, clusterLink)
		case "clipper":
			sys, err := clipper.New(cluster, builder, runtime, clusterLink)
			if err != nil {
				log.Fatalf("clipper: %v", err)
			}
			execs[name] = sys
		default:
			log.Fatalf("unknown executor %q", name)
		}
	}
	if _, ok := execs["parsl"]; !ok {
		execs["parsl"] = executor.NewParsl(cluster, builder, clusterLink)
	}

	// Queue connection, optionally WAN-shaped.
	conn, err := net.DialTimeout("tcp", *queueAddr, 10*time.Second)
	if err != nil {
		log.Fatalf("queue dial: %v", err)
	}
	if *wanRTT > 0 {
		// Only this end of the connection is under our control, so the
		// full RTT is charged on the outbound leg: every request/reply
		// exchange still experiences one RTT.
		conn = netsim.Wrap(conn, netsim.Profile{OneWay: *wanRTT, Bandwidth: simconst.WANBandwidth})
	}
	qc := queue.NewClient(conn)
	defer qc.Close()

	tm, err := taskmanager.New(taskmanager.Config{
		ID:                *id,
		Queue:             qc,
		Executors:         execs,
		Memoize:           *memoize,
		Pullers:           8,
		HeartbeatInterval: *heartbeat,
	})
	if err != nil {
		log.Fatalf("taskmanager: %v", err)
	}
	defer tm.Close()

	names := make([]string, 0, len(execs))
	for n := range execs {
		names = append(names, n)
	}
	fmt.Printf("dlhub-taskmanager %s: %d-node cluster, executors %v, memoize=%v\n",
		*id, *nodes, names, *memoize)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	done, hits := tm.Stats()
	fmt.Printf("dlhub-taskmanager: shutting down (completed=%d cache_hits=%d)\n", done, hits)
}
