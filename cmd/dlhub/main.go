// Command dlhub is the Git-like CLI of §IV-E, with commands for
// "initializing a DLHub servable in a local directory, publishing the
// servable to DLHub, creating metadata using the toolbox, and invoking
// the published servable with input data":
//
//	dlhub init -name my-model -title "My model" -author "Doe, Jane" \
//	    -type python_function -entry mymodule:predict
//	dlhub update -description "better docs"
//	dlhub publish
//	dlhub run anonymous/my-model '"some input"'
//	dlhub ls
//	dlhub search "formation energy"
//	dlhub status <task-id>
//
// The server is selected with -server or the DLHUB_SERVER environment
// variable.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"repro/dlhub"
	"repro/internal/schema"
	"repro/internal/servable"
)

const stateDir = ".dlhub"

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "init":
		err = cmdInit(args)
	case "update":
		err = cmdUpdate(args)
	case "publish":
		err = cmdPublish(args)
	case "run":
		err = cmdRun(args)
	case "ls":
		err = cmdLs(args)
	case "search":
		err = cmdSearch(args)
	case "status":
		err = cmdStatus(args)
	case "autoscale":
		err = cmdAutoscale(args)
	case "tm":
		err = cmdTM(args)
	case "tenant":
		err = cmdTenant(args)
	case "register":
		err = cmdRegister(args)
	case "login":
		err = cmdLogin(args)
	case "logout":
		err = cmdLogout(args)
	case "whoami":
		err = cmdWhoami(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "dlhub: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlhub %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: dlhub <command> [flags]

commands:
  init     initialize a servable in the current directory (.dlhub/)
  update   modify the local servable metadata
  publish  push the local servable to DLHub
  run      invoke a published servable with JSON input
  ls       list servables tracked in this directory
  search   search the model repository
  status   check an asynchronous task
  autoscale  view or set a servable's replica autoscaling policy
  tm       task manager lifecycle: ls | drain | rejoin | deregister | undeploy
  tenant   multi-tenant QoS: ls | set-quota
  register create an account on a server running with -auth
  login    obtain a bearer token and store it in ~/.dlhub/token
  logout   revoke the stored token and forget it
  whoami   show the identity and tenant the server resolves for the token`)
}

func client(fs *flag.FlagSet) *dlhub.Client {
	server := fs.Lookup("server").Value.String()
	token := os.Getenv("DLHUB_TOKEN")
	if token == "" {
		token = loadToken()
	}
	return dlhub.NewClient(server, token)
}

// tokenPath is where `dlhub login` keeps the bearer token: DLHUB_TOKEN
// overrides it per-invocation, DLHUB_TOKEN_FILE relocates it (tests,
// multiple accounts).
func tokenPath() string {
	if p := os.Getenv("DLHUB_TOKEN_FILE"); p != "" {
		return p
	}
	home, err := os.UserHomeDir()
	if err != nil {
		return ""
	}
	return filepath.Join(home, ".dlhub", "token")
}

func loadToken() string {
	p := tokenPath()
	if p == "" {
		return ""
	}
	data, err := os.ReadFile(p)
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(data))
}

func saveToken(token string) error {
	p := tokenPath()
	if p == "" {
		return fmt.Errorf("cannot resolve a token path (no home directory; set DLHUB_TOKEN_FILE)")
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o700); err != nil {
		return err
	}
	return os.WriteFile(p, []byte(token+"\n"), 0o600)
}

func serverFlag(fs *flag.FlagSet) {
	def := os.Getenv("DLHUB_SERVER")
	if def == "" {
		def = "http://localhost:8080"
	}
	fs.String("server", def, "Management Service URL")
}

// localState is the .dlhub/metadata.json + published-ID tracking.
type localState struct {
	Document  schema.Document `json:"document"`
	Published []string        `json:"published,omitempty"`
}

func loadState() (*localState, error) {
	data, err := os.ReadFile(filepath.Join(stateDir, "metadata.json"))
	if err != nil {
		return nil, fmt.Errorf("no servable here — run `dlhub init` first (%w)", err)
	}
	var st localState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

func saveState(st *localState) error {
	if err := os.MkdirAll(stateDir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(stateDir, "metadata.json"), data, 0o644)
}

func cmdInit(args []string) error {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	name := fs.String("name", "", "servable name (required)")
	title := fs.String("title", "", "human title (required)")
	author := fs.String("author", "", "author, repeatable via commas (required)")
	typ := fs.String("type", "python_function", "model type: keras|tensorflow|sklearn|python_function|pipeline")
	entry := fs.String("entry", "", `entry "module:function" for python_function`)
	fs.Parse(args) //nolint:errcheck

	doc := schema.Document{
		Publication: schema.Publication{
			Name:    *name,
			Title:   *title,
			Authors: splitNonEmpty(*author),
		},
		Servable: schema.Servable{
			Type:   schema.ModelType(*typ),
			Entry:  *entry,
			Input:  schema.DataType{Kind: "string"},
			Output: schema.DataType{Kind: "string"},
		},
	}
	if err := schema.Validate(&doc); err != nil {
		return err
	}
	if err := saveState(&localState{Document: doc}); err != nil {
		return err
	}
	fmt.Printf("initialized servable %q in %s/\n", *name, stateDir)
	return nil
}

func cmdUpdate(args []string) error {
	fs := flag.NewFlagSet("update", flag.ExitOnError)
	description := fs.String("description", "", "new description")
	visibleTo := fs.String("visible-to", "", "comma-separated ACL principals")
	citation := fs.String("citation", "", "citation text")
	fs.Parse(args) //nolint:errcheck

	st, err := loadState()
	if err != nil {
		return err
	}
	if *description != "" {
		st.Document.Publication.Description = *description
	}
	if *visibleTo != "" {
		st.Document.Publication.VisibleTo = splitNonEmpty(*visibleTo)
	}
	if *citation != "" {
		st.Document.Publication.Citation = *citation
	}
	if err := schema.Validate(&st.Document); err != nil {
		return err
	}
	if err := saveState(st); err != nil {
		return err
	}
	fmt.Println("metadata updated")
	return nil
}

func cmdPublish(args []string) error {
	fs := flag.NewFlagSet("publish", flag.ExitOnError)
	serverFlag(fs)
	deploy := fs.Int("deploy", 0, "also deploy N replicas after publishing")
	fs.Parse(args) //nolint:errcheck

	st, err := loadState()
	if err != nil {
		return err
	}
	// Gather model components from .dlhub/components/.
	components := map[string][]byte{}
	compDir := filepath.Join(stateDir, "components")
	entries, _ := os.ReadDir(compDir)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(compDir, e.Name()))
		if err != nil {
			return err
		}
		components[e.Name()] = data
	}
	servable.RegisterBuiltins()

	c := client(fs)
	id, err := c.Publish(&st.Document, components)
	if err != nil {
		return err
	}
	st.Published = appendUnique(st.Published, id)
	if err := saveState(st); err != nil {
		return err
	}
	fmt.Printf("published %s\n", id)
	if *deploy > 0 {
		if err := c.Deploy(id, *deploy, ""); err != nil {
			return err
		}
		fmt.Printf("deployed %d replica(s)\n", *deploy)
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	serverFlag(fs)
	async := fs.Bool("async", false, "submit asynchronously and print the task ID")
	timeout := fs.Duration("timeout", 0, "bound the invocation (0 = server default); Ctrl-C always cancels server-side")
	idemKey := fs.String("idempotency-key", "", "execute at most once under this key (enables automatic retries)")
	fs.Parse(args) //nolint:errcheck
	rest := fs.Args()
	if len(rest) < 2 {
		return fmt.Errorf("usage: dlhub run [flags] <owner/name> <json-input>")
	}
	id := rest[0]
	var input any
	if err := json.Unmarshal([]byte(rest[1]), &input); err != nil {
		return fmt.Errorf("input must be JSON: %w", err)
	}
	// Ctrl-C cancels the request context; the server aborts the
	// dispatch and frees its routing slot instead of computing for a
	// client that already left.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	c := client(fs)
	if *async {
		taskID, err := c.RunAsyncWith(ctx, id, input, dlhub.RunConfig{IdempotencyKey: *idemKey})
		if err != nil {
			return err
		}
		fmt.Println(taskID)
		return nil
	}
	res, err := c.RunWith(ctx, id, input, dlhub.RunConfig{IdempotencyKey: *idemKey})
	if err != nil {
		return err
	}
	out, _ := json.MarshalIndent(res.Output, "", "  ")
	fmt.Println(string(out))
	fmt.Fprintf(os.Stderr, "request=%.2fms invocation=%.2fms inference=%.2fms cached=%v\n",
		float64(res.RequestMicros)/1000, float64(res.InvocationMicros)/1000,
		float64(res.InferenceMicros)/1000, res.Cached)
	return nil
}

func cmdLs(args []string) error {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	fs.Parse(args) //nolint:errcheck
	st, err := loadState()
	if err != nil {
		return err
	}
	fmt.Printf("local servable: %s (%s)\n", st.Document.Publication.Name, st.Document.Servable.Type)
	for _, id := range st.Published {
		fmt.Printf("published: %s\n", id)
	}
	return nil
}

func cmdSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	serverFlag(fs)
	limit := fs.Int("limit", 10, "maximum results")
	fs.Parse(args) //nolint:errcheck
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: dlhub search [flags] <query>")
	}
	c := client(fs)
	res, err := c.Search(fs.Arg(0), dlhub.SearchOptions{Limit: *limit})
	if err != nil {
		return err
	}
	fmt.Printf("%d result(s)\n", res.Total)
	for i, id := range res.IDs {
		title, _ := res.Docs[i]["title"].(string)
		fmt.Printf("  %-40s %s\n", id, title)
	}
	return nil
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	serverFlag(fs)
	wait := fs.Duration("wait", 0, "wait until done or this timeout (streams task events)")
	follow := fs.Bool("follow", false, "stream task events until completion (no timeout)")
	fs.Parse(args) //nolint:errcheck
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: dlhub status [flags] <task-id>")
	}
	c := client(fs)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var (
		st  *dlhub.TaskStatus
		err error
	)
	switch {
	case *follow:
		st, err = c.StreamTask(ctx, fs.Arg(0), func(ev dlhub.TaskEvent) {
			fmt.Fprintf(os.Stderr, "%s: %s\n", ev.Type, ev.Task.Status)
		})
	case *wait > 0:
		waitCtx, cancel := context.WithTimeout(ctx, *wait)
		defer cancel()
		st, err = c.WaitTaskCtx(waitCtx, fs.Arg(0))
	default:
		st, err = c.StatusCtx(ctx, fs.Arg(0))
	}
	if err != nil {
		return err
	}
	out, _ := json.MarshalIndent(st, "", "  ")
	fmt.Println(string(out))
	return nil
}

func cmdAutoscale(args []string) error {
	fs := flag.NewFlagSet("autoscale", flag.ExitOnError)
	serverFlag(fs)
	enable := fs.Bool("enable", false, "enable autoscaling for the servable")
	disable := fs.Bool("disable", false, "disable autoscaling (policy stays visible in stats)")
	minR := fs.Int("min", 1, "minimum replicas")
	maxR := fs.Int("max", 32, "maximum replicas")
	target := fs.Float64("target-load", 2, "per-replica demand the controller steers toward")
	upCooldown := fs.Duration("up-cooldown", 0, "minimum gap between scale-ups (default 1s)")
	downCooldown := fs.Duration("down-cooldown", 0, "how long demand must stay low before scaling down (default 30s)")
	maxQueue := fs.Int("max-queue", 0, "admission-control bound: reject runs (429) beyond this pending depth (0 = server default, <0 = off)")
	executorRoute := fs.String("executor", "", `executor route to scale (default "parsl")`)
	fs.Parse(args) //nolint:errcheck
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: dlhub autoscale [flags] <owner/name>")
	}
	id := fs.Arg(0)
	c := client(fs)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var (
		st  *dlhub.AutoscaleStatus
		err error
	)
	if *enable || *disable {
		if *enable && *disable {
			return fmt.Errorf("-enable and -disable are mutually exclusive")
		}
		st, err = c.SetAutoscale(ctx, id, dlhub.AutoscalePolicy{
			Enabled:           *enable,
			MinReplicas:       *minR,
			MaxReplicas:       *maxR,
			TargetLoad:        *target,
			ScaleUpCooldown:   *upCooldown,
			ScaleDownCooldown: *downCooldown,
			MaxQueue:          *maxQueue,
			Executor:          *executorRoute,
		})
	} else {
		st, err = c.Autoscale(ctx, id)
	}
	if err != nil {
		return err
	}
	out, _ := json.MarshalIndent(st, "", "  ")
	fmt.Println(string(out))
	return nil
}

// cmdTM is the Task Manager lifecycle surface:
//
//	dlhub tm ls                              fleet view (live/draining/load)
//	dlhub tm drain <tm-id>                   drain a TM; placements migrate
//	dlhub tm rejoin <tm-id>                  return a drained TM to rotation
//	dlhub tm deregister <tm-id>              remove a (drained) TM
//	dlhub tm undeploy <owner/name> <tm-id>   drop one placement of a servable
func cmdTM(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: dlhub tm <ls|drain|rejoin|deregister|undeploy> [flags] [args]")
	}
	sub, rest := args[0], args[1:]
	fs := flag.NewFlagSet("tm "+sub, flag.ExitOnError)
	serverFlag(fs)
	fs.Parse(rest) //nolint:errcheck
	c := client(fs)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	switch sub {
	case "ls":
		info, err := c.TaskManagerInfo(ctx)
		if err != nil {
			return err
		}
		out, _ := json.MarshalIndent(info, "", "  ")
		fmt.Println(string(out))
		return nil
	case "drain":
		if fs.NArg() < 1 {
			return fmt.Errorf("usage: dlhub tm drain [flags] <tm-id>")
		}
		res, err := c.DrainTM(ctx, fs.Arg(0))
		if err != nil {
			return err
		}
		out, _ := json.MarshalIndent(res, "", "  ")
		fmt.Println(string(out))
		return nil
	case "rejoin":
		if fs.NArg() < 1 {
			return fmt.Errorf("usage: dlhub tm rejoin [flags] <tm-id>")
		}
		if err := c.RejoinTM(ctx, fs.Arg(0)); err != nil {
			return err
		}
		fmt.Printf("rejoined %s\n", fs.Arg(0))
		return nil
	case "deregister":
		if fs.NArg() < 1 {
			return fmt.Errorf("usage: dlhub tm deregister [flags] <tm-id>")
		}
		if err := c.DeregisterTM(ctx, fs.Arg(0)); err != nil {
			return err
		}
		fmt.Printf("deregistered %s\n", fs.Arg(0))
		return nil
	case "undeploy":
		if fs.NArg() < 2 {
			return fmt.Errorf("usage: dlhub tm undeploy [flags] <owner/name> <tm-id>")
		}
		if err := c.Undeploy(ctx, fs.Arg(0), fs.Arg(1)); err != nil {
			return err
		}
		placed, err := c.Placements(ctx, fs.Arg(0))
		if err != nil {
			return err
		}
		fmt.Printf("undeployed %s from %s; placements now %v\n", fs.Arg(0), fs.Arg(1), placed)
		return nil
	default:
		return fmt.Errorf("unknown tm subcommand %q (want ls|drain|rejoin|deregister|undeploy)", sub)
	}
}

// cmdTenant is the multi-tenant QoS surface:
//
//	dlhub tenant ls                          list tenants + quotas
//	dlhub tenant set-quota [flags] <tenant>  install a quota spec
func cmdTenant(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: dlhub tenant <ls|set-quota> [flags] [args]")
	}
	sub, rest := args[0], args[1:]
	fs := flag.NewFlagSet("tenant "+sub, flag.ExitOnError)
	serverFlag(fs)
	maxInFlight := fs.Int("max-in-flight", 0, "cap the tenant's concurrent runs across all servables (0 = unlimited)")
	rate := fs.Float64("rate", 0, "sustained request rate in req/s, one-second burst (0 = unlimited)")
	priority := fs.String("priority", "", "priority class weighting the tenant's dequeue share: high|normal|low (default normal)")
	fs.Parse(rest) //nolint:errcheck
	c := client(fs)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	switch sub {
	case "ls":
		tenants, err := c.Tenants(ctx)
		if err != nil {
			return err
		}
		// DURABLE says whether the quota is WAL-backed (explicitly set on
		// a server running with -data-dir) or evaporates on restart.
		fmt.Printf("%-20s %-8s %-12s %-10s %-7s %s\n", "TENANT", "PRIO", "MAX-IN-FLT", "RATE/S", "WEIGHT", "DURABLE")
		for _, t := range tenants {
			rate := "-"
			if t.RatePerSec > 0 {
				rate = fmt.Sprintf("%g", t.RatePerSec)
			}
			mif := "-"
			if t.MaxInFlight > 0 {
				mif = fmt.Sprintf("%d", t.MaxInFlight)
			}
			fmt.Printf("%-20s %-8s %-12s %-10s %-7d %v\n", t.ID, t.Priority, mif, rate, t.Weight, t.Durable)
		}
		return nil
	case "set-quota":
		if fs.NArg() < 1 {
			return fmt.Errorf("usage: dlhub tenant set-quota [flags] <tenant-id>")
		}
		view, err := c.SetTenantQuota(ctx, fs.Arg(0), dlhub.TenantQuota{
			MaxInFlight: *maxInFlight,
			RatePerSec:  *rate,
			Priority:    *priority,
		})
		if err != nil {
			return err
		}
		out, _ := json.MarshalIndent(view, "", "  ")
		fmt.Println(string(out))
		return nil
	default:
		return fmt.Errorf("unknown tenant subcommand %q (want ls|set-quota)", sub)
	}
}

// password resolves the secret for register/login: the -password flag,
// else the DLHUB_PASSWORD environment variable (keeps secrets out of
// shell history and `ps` output in scripts).
func password(flagValue string) (string, error) {
	if flagValue != "" {
		return flagValue, nil
	}
	if pw := os.Getenv("DLHUB_PASSWORD"); pw != "" {
		return pw, nil
	}
	return "", fmt.Errorf("no password: pass -password or set DLHUB_PASSWORD")
}

func cmdRegister(args []string) error {
	fs := flag.NewFlagSet("register", flag.ExitOnError)
	serverFlag(fs)
	user := fs.String("user", "", "username (required)")
	pw := fs.String("password", "", "password (or set DLHUB_PASSWORD)")
	provider := fs.String("provider", "", "identity provider (default: the server's)")
	name := fs.String("name", "", "full name")
	email := fs.String("email", "", "email address")
	tenant := fs.String("tenant", "", "bind the new identity to this tenant")
	fs.Parse(args) //nolint:errcheck
	if *user == "" {
		return fmt.Errorf("usage: dlhub register -user <name> [-password ...] [-tenant ...]")
	}
	secret, err := password(*pw)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	identityID, err := client(fs).Register(ctx, dlhub.RegisterRequest{
		Provider: *provider,
		Username: *user,
		Password: secret,
		Name:     *name,
		Email:    *email,
		Tenant:   *tenant,
	})
	if err != nil {
		return err
	}
	fmt.Printf("registered %s\n", identityID)
	if *tenant != "" {
		fmt.Printf("bound to tenant %s\n", *tenant)
	}
	return nil
}

func cmdLogin(args []string) error {
	fs := flag.NewFlagSet("login", flag.ExitOnError)
	serverFlag(fs)
	user := fs.String("user", "", "username (required)")
	pw := fs.String("password", "", "password (or set DLHUB_PASSWORD)")
	provider := fs.String("provider", "", "identity provider (default: the server's)")
	fs.Parse(args) //nolint:errcheck
	if *user == "" {
		return fmt.Errorf("usage: dlhub login -user <name> [-password ...]")
	}
	secret, err := password(*pw)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := client(fs).Login(ctx, *provider, *user, secret)
	if err != nil {
		return err
	}
	if err := saveToken(res.AccessToken); err != nil {
		return fmt.Errorf("token obtained but not saved: %w", err)
	}
	fmt.Printf("logged in as %s (token in %s, expires %s)\n",
		res.IdentityID, tokenPath(), res.ExpiresAt.Format("2006-01-02 15:04:05"))
	if res.Tenant != "" {
		fmt.Printf("tenant: %s\n", res.Tenant)
	}
	return nil
}

func cmdLogout(args []string) error {
	fs := flag.NewFlagSet("logout", flag.ExitOnError)
	serverFlag(fs)
	fs.Parse(args) //nolint:errcheck
	c := client(fs)
	if c.Token == "" {
		fmt.Println("no stored token")
		return nil
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// Best effort: the token may already be expired or the server down;
	// forgetting the local copy is the part that must not fail silently.
	if err := c.Revoke(ctx, ""); err != nil {
		fmt.Fprintf(os.Stderr, "revoke failed (forgetting the token anyway): %v\n", err)
	}
	if p := tokenPath(); p != "" {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	fmt.Println("logged out")
	return nil
}

func cmdWhoami(args []string) error {
	fs := flag.NewFlagSet("whoami", flag.ExitOnError)
	serverFlag(fs)
	fs.Parse(args) //nolint:errcheck
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	id, err := client(fs).Whoami(ctx)
	if err != nil {
		return err
	}
	out, _ := json.MarshalIndent(id, "", "  ")
	fmt.Println(string(out))
	return nil
}

func splitNonEmpty(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if part := s[start:i]; part != "" {
				out = append(out, part)
			}
			start = i + 1
		}
	}
	return out
}

func appendUnique(list []string, v string) []string {
	for _, x := range list {
		if x == v {
			return list
		}
	}
	return append(list, v)
}
