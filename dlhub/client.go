// Package dlhub is the public SDK for this DLHub reproduction — the Go
// analogue of the paper's Python SDK (§IV-E): "The DLHub Python SDK
// supports programmatic interactions with DLHub. The SDK wraps DLHub's
// REST API, providing access to all model repository and serving
// functionality." It also includes the metadata toolbox ("programmatic
// construction of JSON documents that specify publication and
// model-specific metadata") and a local runner for model development
// and testing.
package dlhub

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/schema"
)

// Client talks to a Management Service over its REST API.
type Client struct {
	// BaseURL of the Management Service, e.g. "http://localhost:8080".
	BaseURL string
	// Token is an optional bearer token from Globus Auth.
	Token string
	// HTTPClient may be replaced (tests, custom transports).
	HTTPClient *http.Client
}

// NewClient creates a client for the given Management Service.
func NewClient(baseURL, token string) *Client {
	return &Client{
		BaseURL:    baseURL,
		Token:      token,
		HTTPClient: &http.Client{Timeout: 5 * time.Minute},
	}
}

// RunResult is a synchronous invocation response.
type RunResult struct {
	Output  any   `json:"output"`
	Outputs []any `json:"outputs,omitempty"`
	Cached  bool  `json:"cached,omitempty"`
	// CacheHit reports the Management Service answered from its
	// service-layer result cache without dispatching a task (the
	// response also carries an X-DLHub-Cache: hit|miss|bypass header).
	CacheHit bool `json:"cache_hit,omitempty"`
	// Timing decomposition (§V-A): inference at the servable,
	// invocation at the Task Manager, request at the Management
	// Service — all in microseconds.
	InferenceMicros  int64 `json:"inference_us"`
	InvocationMicros int64 `json:"invocation_us"`
	RequestMicros    int64 `json:"request_us"`
}

// CacheStats mirrors the Management Service's result-cache counters.
type CacheStats = core.CacheStats

// TaskStatus is an asynchronous task's state.
type TaskStatus struct {
	ID     string     `json:"id"`
	Status string     `json:"status"`
	Error  string     `json:"error,omitempty"`
	Reply  *RunResult `json:"reply,omitempty"`
}

// Publish uploads a model document plus components, returning the
// assigned servable ID ("<owner>/<name>").
func (c *Client) Publish(doc *schema.Document, components map[string][]byte) (string, error) {
	var resp map[string]string
	err := c.post("/api/publish", core.PublishRequest{
		Document:   mustJSON(doc),
		Components: components,
	}, &resp)
	if err != nil {
		return "", err
	}
	return resp["id"], nil
}

// PublishPackage publishes a servable.Package.
func (c *Client) PublishPackage(pkg *Package) (string, error) {
	return c.Publish(pkg.Doc, pkg.Components)
}

// PublishByReference publishes a model whose components live on Globus
// endpoints ("globus://endpoint/path"); the Management Service
// downloads them on the caller's behalf (§IV-A).
func (c *Client) PublishByReference(doc *schema.Document, refs map[string]string) (string, error) {
	var resp map[string]string
	err := c.post("/api/publish", core.PublishRequest{
		Document:      mustJSON(doc),
		ComponentRefs: refs,
	}, &resp)
	if err != nil {
		return "", err
	}
	return resp["id"], nil
}

// Get fetches a servable's metadata document.
func (c *Client) Get(id string) (*schema.Document, error) {
	var doc schema.Document
	if err := c.get("/api/servables/"+id, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Dockerfile fetches the rendered build recipe for a servable.
func (c *Client) Dockerfile(id string) (string, error) {
	var resp map[string]string
	if err := c.get("/api/servables/"+id+"/dockerfile", &resp); err != nil {
		return "", err
	}
	return resp["dockerfile"], nil
}

// List returns the IDs of all servables visible to the caller.
func (c *Client) List() ([]string, error) {
	var resp struct {
		Servables []string `json:"servables"`
	}
	if err := c.get("/api/servables", &resp); err != nil {
		return nil, err
	}
	return resp.Servables, nil
}

// SearchOptions refine a search.
type SearchOptions struct {
	Terms            map[string]string
	Prefix           map[string]string
	YearMin, YearMax *float64
	Facets           []string
	Limit            int
}

// SearchResult is a search response.
type SearchResult = core.SearchResponse

// Search runs a free-text + fielded query over the repository.
func (c *Client) Search(freeText string, opts SearchOptions) (*SearchResult, error) {
	req := core.SearchRequest{
		Q:       freeText,
		Terms:   opts.Terms,
		Prefix:  opts.Prefix,
		YearMin: opts.YearMin,
		YearMax: opts.YearMax,
		Facets:  opts.Facets,
		Limit:   opts.Limit,
	}
	var resp SearchResult
	if err := c.post("/api/search", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Run synchronously invokes a servable.
func (c *Client) Run(id string, input any) (*RunResult, error) {
	var resp RunResult
	if err := c.post("/api/run/"+id, core.RunRequest{Input: input}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// RunNoCache synchronously invokes a servable, bypassing the service-
// layer result cache (TM-side memoization still applies).
func (c *Client) RunNoCache(id string, input any) (*RunResult, error) {
	var resp RunResult
	if err := c.post("/api/run/"+id, core.RunRequest{Input: input, NoCache: true}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// CacheStats fetches the Management Service's result-cache counters;
// enabled reports whether the cache is on at all.
func (c *Client) CacheStats() (stats CacheStats, enabled bool, err error) {
	var resp struct {
		Enabled bool       `json:"enabled"`
		Stats   CacheStats `json:"stats"`
	}
	if err := c.get("/api/cache/stats", &resp); err != nil {
		return CacheStats{}, false, err
	}
	return resp.Stats, resp.Enabled, nil
}

// FlushCache drops every cached result at the Management Service.
func (c *Client) FlushCache() error {
	return c.post("/api/cache/flush", struct{}{}, nil)
}

// RunBatch synchronously invokes a servable on many inputs at once
// (DLHub's batching support, §V-B3).
func (c *Client) RunBatch(id string, inputs []any) (*RunResult, error) {
	var resp RunResult
	if err := c.post("/api/run/"+id, core.RunRequest{Inputs: inputs}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// RunAsync starts an asynchronous invocation, returning a task UUID for
// Status polling (§IV-A).
func (c *Client) RunAsync(id string, input any) (string, error) {
	var resp map[string]string
	if err := c.post("/api/run/"+id, core.RunRequest{Input: input, Async: true}, &resp); err != nil {
		return "", err
	}
	return resp["task_id"], nil
}

// Status polls an asynchronous task.
func (c *Client) Status(taskID string) (*TaskStatus, error) {
	var resp TaskStatus
	if err := c.get("/api/status/"+taskID, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// WaitTask polls until the task completes or the timeout elapses.
func (c *Client) WaitTask(taskID string, timeout time.Duration) (*TaskStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.Status(taskID)
		if err != nil {
			return nil, err
		}
		if st.Status != "pending" {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("dlhub: task %s still pending after %v", taskID, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Deploy starts replicas of a published servable on an executor route
// ("" selects the default Parsl executor).
func (c *Client) Deploy(id string, replicas int, executorRoute string) error {
	return c.post("/api/deploy/"+id, core.DeployRequest{Replicas: replicas, Executor: executorRoute}, nil)
}

// Scale adjusts the replica count of a deployed servable.
func (c *Client) Scale(id string, replicas int, executorRoute string) error {
	return c.post("/api/scale/"+id, core.DeployRequest{Replicas: replicas, Executor: executorRoute}, nil)
}

// UpdateVisibility replaces the ACL principal list of a servable — how
// CANDLE models move from group-restricted to public (§VI-A).
func (c *Client) UpdateVisibility(id string, visibleTo []string) error {
	return c.post("/api/servables/"+id+"/update", core.UpdateRequest{VisibleTo: visibleTo}, nil)
}

// UpdateDescription replaces a servable's description.
func (c *Client) UpdateDescription(id, description string) error {
	return c.post("/api/servables/"+id+"/update", core.UpdateRequest{Description: &description}, nil)
}

// TaskManagers lists the Task Managers registered with the service.
func (c *Client) TaskManagers() ([]string, error) {
	var resp struct {
		TaskManagers []string `json:"task_managers"`
	}
	if err := c.get("/api/tms", &resp); err != nil {
		return nil, err
	}
	return resp.TaskManagers, nil
}

// TaskManagerLoad reports in-flight dispatch counts per registered Task
// Manager — the signal the service's least-outstanding router uses.
func (c *Client) TaskManagerLoad() (map[string]int, error) {
	var resp struct {
		Load map[string]int `json:"load"`
	}
	if err := c.get("/api/tms", &resp); err != nil {
		return nil, err
	}
	return resp.Load, nil
}
