// Package dlhub is the public SDK for this DLHub reproduction — the Go
// analogue of the paper's Python SDK (§IV-E): "The DLHub Python SDK
// supports programmatic interactions with DLHub. The SDK wraps DLHub's
// REST API, providing access to all model repository and serving
// functionality." It also includes the metadata toolbox ("programmatic
// construction of JSON documents that specify publication and
// model-specific metadata") and a local runner for model development
// and testing.
//
// The client speaks the versioned /api/v2 surface: enveloped responses,
// typed *APIError errors, cursor pagination, idempotency keys, and SSE
// task streaming. Every operation has a context-accepting form (RunCtx,
// WaitTaskCtx, StreamTask, …) — cancel the context and the server
// aborts the dispatch and frees its routing slot. The original
// context-free methods remain as shims over context.Background().
package dlhub

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/taskmanager"
)

// Client talks to a Management Service over its REST API (v2 surface).
type Client struct {
	// BaseURL of the Management Service, e.g. "http://localhost:8080".
	BaseURL string
	// Token is an optional bearer token from Globus Auth.
	Token string
	// HTTPClient may be replaced (tests, custom transports).
	HTTPClient *http.Client
	// Retry tunes the backoff policy for retryable requests (zero
	// value: defaults).
	Retry RetryPolicy
}

// RetryPolicy bounds the client's automatic retries. Only requests
// that are safe to repeat are retried: GETs (idempotent by contract)
// and POSTs carrying an Idempotency-Key (made idempotent by the
// server). Delays grow exponentially from BaseDelay with full jitter,
// capped at MaxDelay.
type RetryPolicy struct {
	// MaxAttempts counts total tries (default 3; 1 disables retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps any single backoff sleep (default 2s).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// backoff returns the sleep before attempt (1-based: attempt 1 is the
// first retry), exponential with full jitter.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseDelay << (attempt - 1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	return time.Duration(rand.Int63n(int64(d) + 1))
}

// APIError is a typed v2 API failure: the machine-readable Code from
// the error envelope plus the HTTP status it arrived with.
type APIError struct {
	Status    int
	Code      string
	Message   string
	Detail    string
	RequestID string
}

func (e *APIError) Error() string {
	msg := e.Message
	if e.Detail != "" && !strings.Contains(msg, e.Detail) {
		msg += ": " + e.Detail
	}
	return fmt.Sprintf("dlhub: %s (http %d, code %s)", msg, e.Status, e.Code)
}

// NewClient creates a client for the given Management Service.
func NewClient(baseURL, token string) *Client {
	return &Client{
		BaseURL:    baseURL,
		Token:      token,
		HTTPClient: &http.Client{Timeout: 5 * time.Minute},
	}
}

// RunResult is a synchronous invocation response.
type RunResult struct {
	Output  any   `json:"output"`
	Outputs []any `json:"outputs,omitempty"`
	Cached  bool  `json:"cached,omitempty"`
	// CacheHit reports the Management Service answered from its
	// service-layer result cache without dispatching a task (the
	// response also carries an X-DLHub-Cache: hit|miss|bypass header).
	CacheHit bool `json:"cache_hit,omitempty"`
	// Timing decomposition (§V-A): inference at the servable,
	// invocation at the Task Manager, request at the Management
	// Service — all in microseconds.
	InferenceMicros  int64 `json:"inference_us"`
	InvocationMicros int64 `json:"invocation_us"`
	RequestMicros    int64 `json:"request_us"`
	// Steps decomposes a pipeline run per step, in execution order. A
	// step with RequestMicros > 0 was orchestrated by the Management
	// Service (distributed across Task Managers, possibly answered from
	// the result cache — see CacheHit); one without ran inside a
	// TM-local monolith dispatch.
	Steps []StepTiming `json:"steps,omitempty"`
}

// StepTiming is one pipeline step's timing and cache record — an alias
// of the wire type so client and server cannot drift.
type StepTiming = taskmanager.StepStat

// CacheStats mirrors the Management Service's result-cache counters.
type CacheStats = core.CacheStats

// TaskStatus is an asynchronous task's state.
type TaskStatus struct {
	ID     string     `json:"id"`
	Status string     `json:"status"`
	Error  string     `json:"error,omitempty"`
	Reply  *RunResult `json:"reply,omitempty"`
}

// Done reports whether the task reached a terminal state.
func (t *TaskStatus) Done() bool { return t.Status != "pending" }

// RunConfig refines an invocation issued through RunWith.
type RunConfig struct {
	// Executor pins a serving system ("" = deployed default).
	Executor string
	// NoMemo disables every memoization tier for this request.
	NoMemo bool
	// NoCache bypasses only the service-layer result cache.
	NoCache bool
	// Coalesce opts into server-side adaptive batching. Synchronous
	// runs only: async submissions dispatch individually and ignore it
	// (the task is already detached from the caller's latency path, so
	// there is no hold-window to amortize).
	Coalesce bool
	// IdempotencyKey makes the request safe to retry: the server
	// executes it once and replays the stored response to duplicates.
	// Setting it also enables the client's automatic retry policy for
	// this request.
	IdempotencyKey string
}

// --- repository -------------------------------------------------------------

// Publish uploads a model document plus components, returning the
// assigned servable ID ("<owner>/<name>").
func (c *Client) Publish(doc *schema.Document, components map[string][]byte) (string, error) {
	return c.PublishCtx(context.Background(), doc, components)
}

// PublishCtx is Publish bounded by ctx.
func (c *Client) PublishCtx(ctx context.Context, doc *schema.Document, components map[string][]byte) (string, error) {
	return c.publish(ctx, core.PublishRequest{Document: mustJSON(doc), Components: components}, "")
}

// PublishIdempotent publishes under an idempotency key: a retried call
// with the same key returns the first publication's ID instead of
// minting a new version.
func (c *Client) PublishIdempotent(ctx context.Context, doc *schema.Document, components map[string][]byte, key string) (string, error) {
	return c.publish(ctx, core.PublishRequest{Document: mustJSON(doc), Components: components}, key)
}

func (c *Client) publish(ctx context.Context, req core.PublishRequest, idemKey string) (string, error) {
	var resp map[string]string
	if err := c.call(ctx, http.MethodPost, "/api/v2/servables", req, &resp, idemKey); err != nil {
		return "", err
	}
	return resp["id"], nil
}

// PublishPackage publishes a servable.Package.
func (c *Client) PublishPackage(pkg *Package) (string, error) {
	return c.Publish(pkg.Doc, pkg.Components)
}

// PublishByReference publishes a model whose components live on Globus
// endpoints ("globus://endpoint/path"); the Management Service
// downloads them on the caller's behalf (§IV-A).
func (c *Client) PublishByReference(doc *schema.Document, refs map[string]string) (string, error) {
	return c.publish(context.Background(), core.PublishRequest{Document: mustJSON(doc), ComponentRefs: refs}, "")
}

// Get fetches a servable's metadata document.
func (c *Client) Get(id string) (*schema.Document, error) {
	return c.GetCtx(context.Background(), id)
}

// GetCtx is Get bounded by ctx.
func (c *Client) GetCtx(ctx context.Context, id string) (*schema.Document, error) {
	var doc schema.Document
	if err := c.call(ctx, http.MethodGet, "/api/v2/servables/"+id, nil, &doc, ""); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Dockerfile fetches the rendered build recipe for a servable.
func (c *Client) Dockerfile(id string) (string, error) {
	var resp map[string]string
	if err := c.call(context.Background(), http.MethodGet, "/api/v2/servables/"+id+"/dockerfile", nil, &resp, ""); err != nil {
		return "", err
	}
	return resp["dockerfile"], nil
}

// Page is one cursor-paginated slice of a collection — an alias of the
// server's wire type so the two cannot drift.
type Page[T any] = core.Page[T]

// ListPage fetches one page of visible servable IDs; pass the previous
// page's NextCursor to resume ("" starts from the top).
func (c *Client) ListPage(ctx context.Context, limit int, cursor string) (*Page[string], error) {
	path := "/api/v2/servables"
	sep := "?"
	if limit > 0 {
		path += fmt.Sprintf("%slimit=%d", sep, limit)
		sep = "&"
	}
	if cursor != "" {
		path += sep + "cursor=" + cursor
	}
	var page Page[string]
	if err := c.call(ctx, http.MethodGet, path, nil, &page, ""); err != nil {
		return nil, err
	}
	return &page, nil
}

// List returns the IDs of all servables visible to the caller,
// following pagination cursors to exhaustion.
func (c *Client) List() ([]string, error) {
	return c.ListCtx(context.Background())
}

// ListCtx is List bounded by ctx.
func (c *Client) ListCtx(ctx context.Context) ([]string, error) {
	var ids []string
	cursor := ""
	for {
		page, err := c.ListPage(ctx, 0, cursor)
		if err != nil {
			return nil, err
		}
		ids = append(ids, page.Items...)
		if page.NextCursor == "" {
			return ids, nil
		}
		cursor = page.NextCursor
	}
}

// SearchOptions refine a search.
type SearchOptions struct {
	Terms            map[string]string
	Prefix           map[string]string
	YearMin, YearMax *float64
	Facets           []string
	Limit            int
	// Cursor resumes a previous search page.
	Cursor string
}

// SearchResult is a search response page.
type SearchResult struct {
	Total  int                       `json:"total"`
	IDs    []string                  `json:"ids"`
	Docs   []map[string]any          `json:"docs"`
	Facets map[string]map[string]int `json:"facets,omitempty"`
	// NextCursor resumes after this page ("" on the last page).
	NextCursor string `json:"next_cursor,omitempty"`
}

// Search runs a free-text + fielded query over the repository.
func (c *Client) Search(freeText string, opts SearchOptions) (*SearchResult, error) {
	return c.SearchCtx(context.Background(), freeText, opts)
}

// SearchCtx is Search bounded by ctx.
func (c *Client) SearchCtx(ctx context.Context, freeText string, opts SearchOptions) (*SearchResult, error) {
	req := core.SearchRequestV2{
		SearchRequest: core.SearchRequest{
			Q:       freeText,
			Terms:   opts.Terms,
			Prefix:  opts.Prefix,
			YearMin: opts.YearMin,
			YearMax: opts.YearMax,
			Facets:  opts.Facets,
			Limit:   opts.Limit,
		},
		Cursor: opts.Cursor,
	}
	var page core.SearchPageV2
	if err := c.call(ctx, http.MethodPost, "/api/v2/search", req, &page, ""); err != nil {
		return nil, err
	}
	res := &SearchResult{Total: page.Total, Facets: page.Facets, NextCursor: page.NextCursor}
	for _, hit := range page.Items {
		res.IDs = append(res.IDs, hit.ID)
		res.Docs = append(res.Docs, hit.Doc)
	}
	return res, nil
}

// --- serving ----------------------------------------------------------------

// Run synchronously invokes a servable.
func (c *Client) Run(id string, input any) (*RunResult, error) {
	return c.RunCtx(context.Background(), id, input)
}

// RunCtx synchronously invokes a servable; cancelling ctx aborts the
// server-side dispatch and frees its routing slot.
func (c *Client) RunCtx(ctx context.Context, id string, input any) (*RunResult, error) {
	return c.RunWith(ctx, id, input, RunConfig{})
}

// RunWith invokes a servable with explicit options.
func (c *Client) RunWith(ctx context.Context, id string, input any, cfg RunConfig) (*RunResult, error) {
	req := core.RunRequest{
		Input:    input,
		NoMemo:   cfg.NoMemo,
		NoCache:  cfg.NoCache,
		Coalesce: cfg.Coalesce,
		Executor: cfg.Executor,
	}
	var resp RunResult
	if err := c.call(ctx, http.MethodPost, "/api/v2/servables/"+id+"/run", req, &resp, cfg.IdempotencyKey); err != nil {
		return nil, err
	}
	return &resp, nil
}

// RunIdempotent invokes a servable under an idempotency key, enabling
// safe automatic retries: duplicates of the same (caller, servable,
// key) execute once and share the stored response.
func (c *Client) RunIdempotent(ctx context.Context, id string, input any, key string) (*RunResult, error) {
	return c.RunWith(ctx, id, input, RunConfig{IdempotencyKey: key})
}

// RunNoCache synchronously invokes a servable, bypassing the service-
// layer result cache (TM-side memoization still applies).
func (c *Client) RunNoCache(id string, input any) (*RunResult, error) {
	return c.RunWith(context.Background(), id, input, RunConfig{NoCache: true})
}

// RunBatch synchronously invokes a servable on many inputs at once
// (DLHub's batching support, §V-B3).
func (c *Client) RunBatch(id string, inputs []any) (*RunResult, error) {
	return c.RunBatchCtx(context.Background(), id, inputs)
}

// RunBatchCtx is RunBatch bounded by ctx.
func (c *Client) RunBatchCtx(ctx context.Context, id string, inputs []any) (*RunResult, error) {
	var resp RunResult
	if err := c.call(ctx, http.MethodPost, "/api/v2/servables/"+id+"/run", core.RunRequest{Inputs: inputs}, &resp, ""); err != nil {
		return nil, err
	}
	return &resp, nil
}

// RunAsync starts an asynchronous invocation, returning a task UUID for
// Status polling or StreamTask (§IV-A).
func (c *Client) RunAsync(id string, input any) (string, error) {
	return c.RunAsyncCtx(context.Background(), id, input)
}

// RunAsyncCtx is RunAsync bounded by ctx (the submission only — the
// spawned task is detached by design).
func (c *Client) RunAsyncCtx(ctx context.Context, id string, input any) (string, error) {
	return c.RunAsyncWith(ctx, id, input, RunConfig{})
}

// RunAsyncWith submits an asynchronous invocation with explicit
// options. With an IdempotencyKey, a retried submission returns the
// original task ID instead of spawning a second task.
func (c *Client) RunAsyncWith(ctx context.Context, id string, input any, cfg RunConfig) (string, error) {
	req := core.RunRequest{
		Input:    input,
		Async:    true,
		NoMemo:   cfg.NoMemo,
		NoCache:  cfg.NoCache,
		Executor: cfg.Executor,
	}
	var resp map[string]string
	if err := c.call(ctx, http.MethodPost, "/api/v2/servables/"+id+"/run", req, &resp, cfg.IdempotencyKey); err != nil {
		return "", err
	}
	return resp["task_id"], nil
}

// Status polls an asynchronous task.
func (c *Client) Status(taskID string) (*TaskStatus, error) {
	return c.StatusCtx(context.Background(), taskID)
}

// StatusCtx is Status bounded by ctx.
func (c *Client) StatusCtx(ctx context.Context, taskID string) (*TaskStatus, error) {
	var resp TaskStatus
	if err := c.call(ctx, http.MethodGet, "/api/v2/tasks/"+taskID, nil, &resp, ""); err != nil {
		return nil, err
	}
	return &resp, nil
}

// TaskEvent is one server-sent event from a task stream.
type TaskEvent struct {
	// Type is "status" (state snapshot) or "done" (terminal state).
	Type string
	Task TaskStatus
}

// StreamTask subscribes to a task's SSE stream and blocks until the
// task completes, ctx ends, or the stream fails. Each event is passed
// to onEvent (may be nil); the terminal state is returned. It replaces
// the v1 poll loop — one request, no polling interval to tune.
func (c *Client) StreamTask(ctx context.Context, taskID string, onEvent func(TaskEvent)) (*TaskStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/api/v2/tasks/"+taskID+"/events", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	c.addAuth(req)
	// The configured client's overall Timeout (5m default) would kill a
	// long-lived stream mid-read; stream with the same transport but no
	// whole-exchange timeout — ctx alone bounds the subscription.
	sc := *c.httpClient()
	sc.Timeout = 0
	resp, err := sc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeErrorBody(resp)
	}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 4<<20)
	var event string
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var st TaskStatus
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &st); err != nil {
				return nil, fmt.Errorf("dlhub: bad task event: %w", err)
			}
			if onEvent != nil {
				onEvent(TaskEvent{Type: event, Task: st})
			}
			if event == "done" {
				return &st, nil
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("dlhub: task stream interrupted: %w", err)
	}
	return nil, fmt.Errorf("dlhub: task stream for %s ended before completion", taskID)
}

// WaitTask blocks until the task completes or the timeout elapses.
func (c *Client) WaitTask(taskID string, timeout time.Duration) (*TaskStatus, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	st, err := c.WaitTaskCtx(ctx, taskID)
	if err != nil && ctx.Err() != nil {
		// Preserve the old contract: report the last known state.
		if last, lerr := c.Status(taskID); lerr == nil {
			return last, fmt.Errorf("dlhub: task %s still pending after %v", taskID, timeout)
		}
	}
	return st, err
}

// WaitTaskCtx blocks until the task completes or ctx ends, preferring
// the SSE stream and falling back to polling when streaming is
// unavailable (e.g. a proxy that buffers event streams).
func (c *Client) WaitTaskCtx(ctx context.Context, taskID string) (*TaskStatus, error) {
	st, err := c.StreamTask(ctx, taskID, nil)
	if err == nil {
		return st, nil
	}
	var apiErr *APIError
	if ctx.Err() != nil || (errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound) {
		return nil, err
	}
	// Stream unavailable: degrade to polling.
	for {
		st, err := c.StatusCtx(ctx, taskID)
		if err != nil {
			return nil, err
		}
		if st.Done() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// --- deployment & operations ------------------------------------------------

// Deploy starts replicas of a published servable on an executor route
// ("" selects the default Parsl executor).
func (c *Client) Deploy(id string, replicas int, executorRoute string) error {
	return c.DeployCtx(context.Background(), id, replicas, executorRoute)
}

// DeployCtx is Deploy bounded by ctx.
func (c *Client) DeployCtx(ctx context.Context, id string, replicas int, executorRoute string) error {
	return c.call(ctx, http.MethodPost, "/api/v2/servables/"+id+"/deploy",
		core.DeployRequest{Replicas: replicas, Executor: executorRoute}, nil, "")
}

// DeployTo is Deploy pinned to a named registered Task Manager — how
// operators place pipeline steps on disjoint sites deterministically
// instead of riding routing tie-breaks.
func (c *Client) DeployTo(ctx context.Context, id string, replicas int, executorRoute, tmID string) error {
	return c.call(ctx, http.MethodPost, "/api/v2/servables/"+id+"/deploy",
		core.DeployRequest{Replicas: replicas, Executor: executorRoute, TM: tmID}, nil, "")
}

// Scale adjusts the replica count of a deployed servable.
func (c *Client) Scale(id string, replicas int, executorRoute string) error {
	return c.ScaleCtx(context.Background(), id, replicas, executorRoute)
}

// ScaleCtx is Scale bounded by ctx.
func (c *Client) ScaleCtx(ctx context.Context, id string, replicas int, executorRoute string) error {
	return c.call(ctx, http.MethodPost, "/api/v2/servables/"+id+"/scale",
		core.DeployRequest{Replicas: replicas, Executor: executorRoute}, nil, "")
}

// AutoscalePolicy configures server-side replica autoscaling for a
// servable — an alias of the service's wire type so the two cannot
// drift. Duration fields travel as int64 nanoseconds.
type AutoscalePolicy = core.AutoscalePolicy

// AutoscaleStatus is a servable's autoscaler state: the installed
// policy, current/desired replicas, smoothed demand, and scale-up/
// scale-down/rejection counters.
type AutoscaleStatus = core.AutoscaleStatus

// SetAutoscale installs (or, with Enabled false, disables) a servable's
// autoscale policy and returns the resulting controller state.
func (c *Client) SetAutoscale(ctx context.Context, id string, policy AutoscalePolicy) (*AutoscaleStatus, error) {
	var st AutoscaleStatus
	if err := c.call(ctx, http.MethodPut, "/api/v2/servables/"+id+"/autoscale", policy, &st, ""); err != nil {
		return nil, err
	}
	return &st, nil
}

// Autoscale reports a servable's autoscaler policy and state.
func (c *Client) Autoscale(ctx context.Context, id string) (*AutoscaleStatus, error) {
	var st AutoscaleStatus
	if err := c.call(ctx, http.MethodGet, "/api/v2/servables/"+id+"/autoscale", nil, &st, ""); err != nil {
		return nil, err
	}
	return &st, nil
}

// UpdateVisibility replaces the ACL principal list of a servable — how
// CANDLE models move from group-restricted to public (§VI-A).
func (c *Client) UpdateVisibility(id string, visibleTo []string) error {
	return c.call(context.Background(), http.MethodPatch, "/api/v2/servables/"+id,
		core.UpdateRequest{VisibleTo: visibleTo}, nil, "")
}

// UpdateDescription replaces a servable's description.
func (c *Client) UpdateDescription(id, description string) error {
	return c.call(context.Background(), http.MethodPatch, "/api/v2/servables/"+id,
		core.UpdateRequest{Description: &description}, nil, "")
}

// Unpublish removes a servable (every version) from the repository.
// Owner-only.
func (c *Client) Unpublish(ctx context.Context, id string) error {
	return c.call(ctx, http.MethodDelete, "/api/v2/servables/"+id, nil, nil, "")
}

// Undeploy removes ONE placement of a servable: its replicas on the
// named Task Manager are torn down and routing stops sending requests
// there, without unpublishing the servable. Owner-only.
func (c *Client) Undeploy(ctx context.Context, id, tmID string) error {
	return c.call(ctx, http.MethodDelete, "/api/v2/servables/"+id+"/placements/"+tmID, nil, nil, "")
}

// Placements reports which Task Managers currently host a servable.
func (c *Client) Placements(ctx context.Context, id string) ([]string, error) {
	var resp struct {
		Placements []string `json:"placements"`
	}
	if err := c.call(ctx, http.MethodGet, "/api/v2/servables/"+id, nil, &resp, ""); err != nil {
		return nil, err
	}
	return resp.Placements, nil
}

// DrainResult reports what a drain migrated — an alias of the service
// type so client and server cannot drift.
type DrainResult = core.DrainResult

// DrainTM gracefully takes a Task Manager out of rotation: routing
// stops immediately, in-flight and queued tasks finish, and its
// placements are migrated onto the remaining Task Managers. Follow
// with DeregisterTM to remove it entirely.
func (c *Client) DrainTM(ctx context.Context, tmID string) (*DrainResult, error) {
	var res DrainResult
	if err := c.call(ctx, http.MethodPost, "/api/v2/tms/"+tmID+"/drain", struct{}{}, &res, ""); err != nil {
		return nil, err
	}
	return &res, nil
}

// RejoinTM reverses a drain: the Task Manager clears its drain
// acknowledgement and returns to the routable pool. Placements a drain
// migrated away are not restored — redeploy explicitly where needed.
func (c *Client) RejoinTM(ctx context.Context, tmID string) error {
	return c.call(ctx, http.MethodPost, "/api/v2/tms/"+tmID+"/rejoin", struct{}{}, nil, "")
}

// DeregisterTM removes a Task Manager from the service's registry and
// routing state (normally after DrainTM). A TM process that is still
// alive re-registers on its next heartbeat; stop it to make removal
// final.
func (c *Client) DeregisterTM(ctx context.Context, tmID string) error {
	return c.call(ctx, http.MethodDelete, "/api/v2/tms/"+tmID, nil, nil, "")
}

// CacheStats fetches the Management Service's result-cache counters;
// enabled reports whether the cache is on at all.
func (c *Client) CacheStats() (stats CacheStats, enabled bool, err error) {
	var resp struct {
		Enabled bool       `json:"enabled"`
		Stats   CacheStats `json:"stats"`
	}
	if err := c.call(context.Background(), http.MethodGet, "/api/v2/cache/stats", nil, &resp, ""); err != nil {
		return CacheStats{}, false, err
	}
	return resp.Stats, resp.Enabled, nil
}

// FlushCache drops every cached result at the Management Service.
func (c *Client) FlushCache() error {
	return c.call(context.Background(), http.MethodPost, "/api/v2/cache/flush", struct{}{}, nil, "")
}

// TaskManagers lists the Task Managers registered with the service.
func (c *Client) TaskManagers() ([]string, error) {
	var resp struct {
		TaskManagers []string `json:"task_managers"`
	}
	if err := c.call(context.Background(), http.MethodGet, "/api/v2/tms", nil, &resp, ""); err != nil {
		return nil, err
	}
	return resp.TaskManagers, nil
}

// TaskManagerInfo is the operator view of the TM fleet.
type TaskManagerInfo struct {
	TaskManagers []string       `json:"task_managers"`
	Live         []string       `json:"live"`
	Draining     []string       `json:"draining"`
	Load         map[string]int `json:"load"`
	QueueDepth   map[string]int `json:"queue_depth"`
	Active       map[string]int `json:"active"`
}

// TaskManagerInfo fetches the full fleet view: registered, live and
// draining TMs plus the load/backlog signals routing uses.
func (c *Client) TaskManagerInfo(ctx context.Context) (*TaskManagerInfo, error) {
	var resp TaskManagerInfo
	if err := c.call(ctx, http.MethodGet, "/api/v2/tms", nil, &resp, ""); err != nil {
		return nil, err
	}
	return &resp, nil
}

// TaskManagerLoad reports in-flight dispatch counts per registered Task
// Manager — the signal the service's least-outstanding router uses.
func (c *Client) TaskManagerLoad() (map[string]int, error) {
	var resp struct {
		Load map[string]int `json:"load"`
	}
	if err := c.call(context.Background(), http.MethodGet, "/api/v2/tms", nil, &resp, ""); err != nil {
		return nil, err
	}
	return resp.Load, nil
}

// TaskManagerQueueDepth reports broker-side backlog (ready + pulled but
// unacknowledged tasks) per registered Task Manager — one of the
// demand signals the server's autoscaler samples.
func (c *Client) TaskManagerQueueDepth() (map[string]int, error) {
	var resp struct {
		QueueDepth map[string]int `json:"queue_depth"`
	}
	if err := c.call(context.Background(), http.MethodGet, "/api/v2/tms", nil, &resp, ""); err != nil {
		return nil, err
	}
	return resp.QueueDepth, nil
}

// TenantView is one tenant's quota/priority configuration — an alias of
// the service's wire type so client and server cannot drift.
type TenantView = core.TenantView

// TenantQuota is the quota spec installed by SetTenantQuota.
type TenantQuota = core.TenantQuotaRequest

// Tenants lists the tenants known to the Management Service with their
// quota and fairness configuration.
func (c *Client) Tenants(ctx context.Context) ([]TenantView, error) {
	var page Page[TenantView]
	if err := c.call(ctx, http.MethodGet, "/api/v2/tenants", nil, &page, ""); err != nil {
		return nil, err
	}
	return page.Items, nil
}

// SetTenantQuota installs (or replaces) a tenant's quota spec —
// max in-flight runs, sustained request rate, and priority class
// (high|normal|low, weighting its share of the fair dequeue). The
// tenant record is created if absent.
func (c *Client) SetTenantQuota(ctx context.Context, tenantID string, q TenantQuota) (*TenantView, error) {
	var view TenantView
	if err := c.call(ctx, http.MethodPut, "/api/v2/tenants/"+tenantID+"/quota", q, &view, ""); err != nil {
		return nil, err
	}
	return &view, nil
}

// --- authentication -----------------------------------------------------------

// LoginResult is a successful login: the bearer token plus its expiry
// and resolved identity — an alias of the server's wire type so the two
// cannot drift.
type LoginResult = core.LoginResult

// RegisterRequest describes a new account for Register — an alias of
// the server's wire type.
type RegisterRequest = core.RegisterRequest

// Identity is the caller's resolved view of itself, as reported by
// Whoami.
type Identity struct {
	IdentityID string   `json:"identity_id"`
	Tenant     string   `json:"tenant"`
	Principals []string `json:"principals"`
}

// WithToken returns a shallow copy of the client that authenticates
// with the given bearer token — the idiomatic follow-up to Login:
//
//	res, _ := c.Login(ctx, "", user, pass)
//	c = c.WithToken(res.AccessToken)
func (c *Client) WithToken(token string) *Client {
	cc := *c
	cc.Token = token
	return &cc
}

// Register creates a durable account on a server running with -auth
// (the account survives restarts; see docs/SECURITY.md) and returns
// the identity URN.
func (c *Client) Register(ctx context.Context, req RegisterRequest) (string, error) {
	var resp map[string]string
	if err := c.call(ctx, http.MethodPost, "/api/v2/auth/register", req, &resp, ""); err != nil {
		return "", err
	}
	return resp["identity_id"], nil
}

// Login exchanges provider credentials for a bearer token ("" provider
// selects the server's default). The token is NOT stored on the
// client — chain with WithToken, or set Token yourself.
func (c *Client) Login(ctx context.Context, provider, username, password string) (*LoginResult, error) {
	req := core.LoginRequest{Provider: provider, Username: username, Password: password}
	var res LoginResult
	if err := c.call(ctx, http.MethodPost, "/api/v2/auth/login", req, &res, ""); err != nil {
		return nil, err
	}
	return &res, nil
}

// Revoke invalidates a token and everything derived from it. An empty
// token revokes the client's own bearer.
func (c *Client) Revoke(ctx context.Context, token string) error {
	if token == "" {
		token = c.Token
	}
	return c.call(ctx, http.MethodPost, "/api/v2/auth/revoke", core.RevokeRequest{Token: token}, nil, "")
}

// Whoami reports the identity and tenant the server resolves for this
// client's token — the end-to-end check that auth is wired up.
func (c *Client) Whoami(ctx context.Context) (*Identity, error) {
	var id Identity
	if err := c.call(ctx, http.MethodGet, "/api/v2/auth/whoami", nil, &id, ""); err != nil {
		return nil, err
	}
	return &id, nil
}

// Healthy reports liveness of the Management Service. Probes report
// the current state from a single request — no retries, so poll loops
// see state changes immediately.
func (c *Client) Healthy(ctx context.Context) error {
	return c.probe(ctx, "/api/v2/healthz")
}

// Ready reports whether the service can accept serving traffic (at
// least one live Task Manager registered). Like Healthy, it never
// retries: a 503 IS the answer ("not ready"), not a transient to
// back off from.
func (c *Client) Ready(ctx context.Context) error {
	return c.probe(ctx, "/api/v2/readyz")
}

func (c *Client) probe(ctx context.Context, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	c.addAuth(req)
	return c.doOnce(req, nil)
}
