package dlhub_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"net/http/httptest"

	"repro/dlhub"
	"repro/internal/bench"
	"repro/internal/ml/nn"
	"repro/internal/servable"
	"repro/internal/simconst"
)

func init() {
	simconst.Scale = 1000
}

// startService assembles a testbed and exposes it over HTTP.
func startService(t *testing.T) *dlhub.Client {
	t.Helper()
	tb, err := bench.NewTestbed(bench.Options{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	srv := httptest.NewServer(tb.MS.Handler())
	t.Cleanup(srv.Close)
	c := dlhub.NewClient(srv.URL, "")
	c.HTTPClient = srv.Client()
	return c
}

func TestToolboxBuildsValidPackages(t *testing.T) {
	servable.RegisterBuiltins()
	pkg, err := dlhub.DescribePythonStaticMethod("hello", "Hello function", "noop:hello").
		WithAuthors("Chard, Ryan").
		WithDescription("returns hello world").
		WithDomains("testing").
		VisibleTo("public").
		WithIdentifier("10.5555/dlhub-hello").
		WithCitation("@article{dlhub2019}").
		WithLicense("Apache-2.0").
		WithYear(2019).
		WithInput("string", nil, "ignored").
		WithOutput("string", "greeting").
		WithHyperparameter("epochs", 10).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Doc.Publication.Identifier != "10.5555/dlhub-hello" {
		t.Fatal("builder lost identifier")
	}

	// Invalid: no authors.
	_, err = dlhub.DescribePythonStaticMethod("x", "X", "noop:hello").Build()
	if err == nil {
		t.Fatal("missing authors should fail validation")
	}
}

func TestToolboxKerasBuilder(t *testing.T) {
	model, err := nn.Encode(nn.NewCIFAR10(1))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := dlhub.DescribeKerasModel("cifar10", "CIFAR-10", model).
		WithAuthors("Krizhevsky, Alex").
		WithInput("ndarray", []int{32, 32, 3}, "image").
		WithOutput("list", "top-5").
		WithDependency("keras", "2.2.4").
		VisibleTo("public").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Components["model"]) == 0 {
		t.Fatal("model bytes missing")
	}
}

func TestLocalRunner(t *testing.T) {
	servable.RegisterBuiltins()
	pkg, err := dlhub.DescribePythonStaticMethod("parse", "Parser", "pymatgen:parse_composition").
		WithAuthors("Ward, Logan").
		WithInput("string", nil, "formula").
		WithOutput("dict", "fractions").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := dlhub.NewLocalRunner(pkg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	out, err := r.Run("H2O")
	if err != nil {
		t.Fatal(err)
	}
	if m := out.(map[string]any); len(m) != 2 {
		t.Fatalf("H2O should parse to 2 elements: %v", m)
	}
}

func TestClientEndToEnd(t *testing.T) {
	c := startService(t)

	// Publish via toolbox + client.
	pkg, err := dlhub.DescribePythonStaticMethod("noop", "Noop", "noop:hello").
		WithAuthors("DLHub Team").
		WithDescription("baseline hello world task").
		VisibleTo("public").
		WithInput("string", nil, "").
		WithOutput("string", "").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	servable.RegisterBuiltins()
	id, err := c.PublishPackage(pkg)
	if err != nil {
		t.Fatal(err)
	}

	// Discover.
	ids, err := c.List()
	if err != nil || len(ids) != 1 || ids[0] != id {
		t.Fatalf("list wrong: %v %v", ids, err)
	}
	res, err := c.Search("baseline hello", dlhub.SearchOptions{})
	if err != nil || res.Total != 1 {
		t.Fatalf("search wrong: %+v %v", res, err)
	}
	doc, err := c.Get(id)
	if err != nil || doc.Publication.Name != "noop" {
		t.Fatalf("get wrong: %+v %v", doc, err)
	}
	df, err := c.Dockerfile(id)
	if err != nil || !strings.Contains(df, "FROM") {
		t.Fatalf("dockerfile wrong: %q %v", df, err)
	}

	// Deploy + run.
	if err := c.Deploy(id, 2, ""); err != nil {
		t.Fatal(err)
	}
	run, err := c.Run(id, "hi")
	if err != nil {
		t.Fatal(err)
	}
	if run.Output != "hello world" || run.RequestMicros <= 0 {
		t.Fatalf("run wrong: %+v", run)
	}

	// Scale.
	if err := c.Scale(id, 4, ""); err != nil {
		t.Fatal(err)
	}

	// Batch.
	batch, err := c.RunBatch(id, []any{"a", "b", "c"})
	if err != nil || len(batch.Outputs) != 3 {
		t.Fatalf("batch wrong: %+v %v", batch, err)
	}

	// Async.
	taskID, err := c.RunAsync(id, "x")
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.WaitTask(taskID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != "completed" || st.Reply.Output != "hello world" {
		t.Fatalf("async wrong: %+v", st)
	}

	// Metadata update.
	if err := c.UpdateDescription(id, "updated description"); err != nil {
		t.Fatal(err)
	}
	doc, _ = c.Get(id)
	if doc.Publication.Description != "updated description" {
		t.Fatal("description not updated")
	}

	// TMs visible.
	tms, err := c.TaskManagers()
	if err != nil || len(tms) != 1 {
		t.Fatalf("tms wrong: %v %v", tms, err)
	}
}

func TestClientErrors(t *testing.T) {
	c := startService(t)
	if _, err := c.Get("ghost/model"); err == nil {
		t.Fatal("missing servable should error")
	}
	var notFound error = errors.New("")
	_ = notFound
	if _, err := c.Run("ghost/model", 1); err == nil || !strings.Contains(err.Error(), "404") && !strings.Contains(err.Error(), "not found") {
		t.Fatalf("run on missing servable: %v", err)
	}
	if _, err := c.Status("nope"); err == nil {
		t.Fatal("missing task should error")
	}
}
