package dlhub_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/dlhub"
	"repro/internal/bench"
	"repro/internal/ml/nn"
	"repro/internal/servable"
	"repro/internal/simconst"
)

func init() {
	simconst.Scale = 1000
}

// startService assembles a testbed and exposes it over HTTP.
func startService(t *testing.T) *dlhub.Client {
	t.Helper()
	tb, err := bench.NewTestbed(bench.Options{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	srv := httptest.NewServer(tb.MS.Handler())
	t.Cleanup(srv.Close)
	c := dlhub.NewClient(srv.URL, "")
	c.HTTPClient = srv.Client()
	return c
}

func TestToolboxBuildsValidPackages(t *testing.T) {
	servable.RegisterBuiltins()
	pkg, err := dlhub.DescribePythonStaticMethod("hello", "Hello function", "noop:hello").
		WithAuthors("Chard, Ryan").
		WithDescription("returns hello world").
		WithDomains("testing").
		VisibleTo("public").
		WithIdentifier("10.5555/dlhub-hello").
		WithCitation("@article{dlhub2019}").
		WithLicense("Apache-2.0").
		WithYear(2019).
		WithInput("string", nil, "ignored").
		WithOutput("string", "greeting").
		WithHyperparameter("epochs", 10).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Doc.Publication.Identifier != "10.5555/dlhub-hello" {
		t.Fatal("builder lost identifier")
	}

	// Invalid: no authors.
	_, err = dlhub.DescribePythonStaticMethod("x", "X", "noop:hello").Build()
	if err == nil {
		t.Fatal("missing authors should fail validation")
	}
}

func TestToolboxKerasBuilder(t *testing.T) {
	model, err := nn.Encode(nn.NewCIFAR10(1))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := dlhub.DescribeKerasModel("cifar10", "CIFAR-10", model).
		WithAuthors("Krizhevsky, Alex").
		WithInput("ndarray", []int{32, 32, 3}, "image").
		WithOutput("list", "top-5").
		WithDependency("keras", "2.2.4").
		VisibleTo("public").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Components["model"]) == 0 {
		t.Fatal("model bytes missing")
	}
}

func TestLocalRunner(t *testing.T) {
	servable.RegisterBuiltins()
	pkg, err := dlhub.DescribePythonStaticMethod("parse", "Parser", "pymatgen:parse_composition").
		WithAuthors("Ward, Logan").
		WithInput("string", nil, "formula").
		WithOutput("dict", "fractions").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := dlhub.NewLocalRunner(pkg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	out, err := r.Run("H2O")
	if err != nil {
		t.Fatal(err)
	}
	if m := out.(map[string]any); len(m) != 2 {
		t.Fatalf("H2O should parse to 2 elements: %v", m)
	}
}

func TestClientEndToEnd(t *testing.T) {
	c := startService(t)

	// Publish via toolbox + client.
	pkg, err := dlhub.DescribePythonStaticMethod("noop", "Noop", "noop:hello").
		WithAuthors("DLHub Team").
		WithDescription("baseline hello world task").
		VisibleTo("public").
		WithInput("string", nil, "").
		WithOutput("string", "").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	servable.RegisterBuiltins()
	id, err := c.PublishPackage(pkg)
	if err != nil {
		t.Fatal(err)
	}

	// Discover.
	ids, err := c.List()
	if err != nil || len(ids) != 1 || ids[0] != id {
		t.Fatalf("list wrong: %v %v", ids, err)
	}
	res, err := c.Search("baseline hello", dlhub.SearchOptions{})
	if err != nil || res.Total != 1 {
		t.Fatalf("search wrong: %+v %v", res, err)
	}
	doc, err := c.Get(id)
	if err != nil || doc.Publication.Name != "noop" {
		t.Fatalf("get wrong: %+v %v", doc, err)
	}
	df, err := c.Dockerfile(id)
	if err != nil || !strings.Contains(df, "FROM") {
		t.Fatalf("dockerfile wrong: %q %v", df, err)
	}

	// Deploy + run.
	if err := c.Deploy(id, 2, ""); err != nil {
		t.Fatal(err)
	}
	run, err := c.Run(id, "hi")
	if err != nil {
		t.Fatal(err)
	}
	if run.Output != "hello world" || run.RequestMicros <= 0 {
		t.Fatalf("run wrong: %+v", run)
	}

	// Scale.
	if err := c.Scale(id, 4, ""); err != nil {
		t.Fatal(err)
	}

	// Batch.
	batch, err := c.RunBatch(id, []any{"a", "b", "c"})
	if err != nil || len(batch.Outputs) != 3 {
		t.Fatalf("batch wrong: %+v %v", batch, err)
	}

	// Async.
	taskID, err := c.RunAsync(id, "x")
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.WaitTask(taskID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != "completed" || st.Reply.Output != "hello world" {
		t.Fatalf("async wrong: %+v", st)
	}

	// Metadata update.
	if err := c.UpdateDescription(id, "updated description"); err != nil {
		t.Fatal(err)
	}
	doc, _ = c.Get(id)
	if doc.Publication.Description != "updated description" {
		t.Fatal("description not updated")
	}

	// TMs visible.
	tms, err := c.TaskManagers()
	if err != nil || len(tms) != 1 {
		t.Fatalf("tms wrong: %v %v", tms, err)
	}
}

func TestClientErrors(t *testing.T) {
	c := startService(t)
	if _, err := c.Get("ghost/model"); err == nil {
		t.Fatal("missing servable should error")
	}
	var notFound error = errors.New("")
	_ = notFound
	if _, err := c.Run("ghost/model", 1); err == nil || !strings.Contains(err.Error(), "404") && !strings.Contains(err.Error(), "not found") {
		t.Fatalf("run on missing servable: %v", err)
	}
	if _, err := c.Status("nope"); err == nil {
		t.Fatal("missing task should error")
	}
}

// --- v2 client features ------------------------------------------------------

func TestClientTypedErrors(t *testing.T) {
	c := startService(t)
	_, err := c.Get("ghost/model")
	var apiErr *dlhub.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %T: %v", err, err)
	}
	if apiErr.Status != 404 || apiErr.Code != "not_found" || apiErr.RequestID == "" {
		t.Fatalf("typed error wrong: %+v", apiErr)
	}
}

// flakyHandler fails the first n requests per (method,path) with the
// given status, then delegates.
type flakyHandler struct {
	mu       sync.Mutex
	failures map[string]int
	status   int
	next     http.Handler
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key := r.Method + " " + r.URL.Path
	f.mu.Lock()
	n := f.failures[key]
	if n > 0 {
		f.failures[key] = n - 1
		f.mu.Unlock()
		w.WriteHeader(f.status)
		w.Write([]byte(`{"error":{"code":"upstream_error","message":"injected"},"request_id":"flaky"}`)) //nolint:errcheck
		return
	}
	f.mu.Unlock()
	f.next.ServeHTTP(w, r)
}

// startFlakyService wraps the testbed handler with fault injection.
func startFlakyService(t *testing.T, status int) (*dlhub.Client, *flakyHandler) {
	t.Helper()
	tb, err := bench.NewTestbed(bench.Options{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	fh := &flakyHandler{failures: map[string]int{}, status: status, next: tb.MS.Handler()}
	srv := httptest.NewServer(fh)
	t.Cleanup(srv.Close)
	c := dlhub.NewClient(srv.URL, "")
	c.HTTPClient = srv.Client()
	c.Retry = dlhub.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	return c, fh
}

func TestClientRetriesIdempotentGET(t *testing.T) {
	c, fh := startFlakyService(t, http.StatusServiceUnavailable)
	fh.set("GET /api/v2/servables", 2)
	ids, err := c.List()
	if err != nil {
		t.Fatalf("GET should survive 2 injected 503s via retry: %v", err)
	}
	if len(ids) != 0 {
		t.Fatalf("unexpected servables: %v", ids)
	}
	// With more failures than attempts, the typed error surfaces.
	fh.set("GET /api/v2/servables", 5)
	_, err = c.List()
	var apiErr *dlhub.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("exhausted retries should return the 503: %v", err)
	}
}

func TestClientRetriesOnlyWithIdempotencyKey(t *testing.T) {
	c, fh := startFlakyService(t, http.StatusBadGateway)
	servable.RegisterBuiltins()
	pkg, err := dlhub.DescribePythonStaticMethod("noop", "Noop", "noop:hello").
		WithAuthors("DLHub Team").VisibleTo("public").
		WithInput("string", nil, "").WithOutput("string", "").Build()
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.PublishPackage(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy(id, 1, ""); err != nil {
		t.Fatal(err)
	}
	runPath := "POST /api/v2/servables/" + id + "/run"

	// A plain POST run must NOT be retried: one failure, one error.
	fh.set(runPath, 1)
	if _, err := c.RunCtx(context.Background(), id, "x"); err == nil {
		t.Fatal("plain run must not retry through a 502")
	}
	fh.set(runPath, 0)

	// The same failure under an idempotency key is retried through.
	fh.set(runPath, 2)
	res, err := c.RunIdempotent(context.Background(), id, "x", "retry-key-1")
	if err != nil {
		t.Fatalf("idempotency-keyed run should retry: %v", err)
	}
	if res.Output != "hello world" {
		t.Fatalf("wrong output %v", res.Output)
	}
}

func (f *flakyHandler) set(route string, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failures[route] = n
}

func TestClientStreamTask(t *testing.T) {
	c := startService(t)
	servable.RegisterBuiltins()
	pkg, err := dlhub.DescribePythonStaticMethod("noop", "Noop", "noop:hello").
		WithAuthors("DLHub Team").VisibleTo("public").
		WithInput("string", nil, "").WithOutput("string", "").Build()
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.PublishPackage(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy(id, 1, ""); err != nil {
		t.Fatal(err)
	}
	taskID, err := c.RunAsyncCtx(context.Background(), id, "x")
	if err != nil {
		t.Fatal(err)
	}
	var types []string
	st, err := c.StreamTask(context.Background(), taskID, func(ev dlhub.TaskEvent) {
		types = append(types, ev.Type)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != "completed" || st.Reply == nil || st.Reply.Output != "hello world" {
		t.Fatalf("streamed final state wrong: %+v", st)
	}
	if len(types) == 0 || types[0] != "status" || types[len(types)-1] != "done" {
		t.Fatalf("event sequence wrong: %v", types)
	}
	// WaitTaskCtx uses the same stream.
	st2, err := c.WaitTaskCtx(context.Background(), taskID)
	if err != nil || st2.Status != "completed" {
		t.Fatalf("WaitTaskCtx: %+v %v", st2, err)
	}
	// Unknown task: typed 404, no hang.
	var apiErr *dlhub.APIError
	if _, err := c.StreamTask(context.Background(), "ghost", nil); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("ghost stream: %v", err)
	}
}

func TestClientRunCtxCancellation(t *testing.T) {
	c := startService(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.RunCtx(ctx, "ghost/model", "x"); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled ctx: %v", err)
	}
}
