package dlhub

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/schema"
	"repro/internal/servable"
)

// This file is the metadata toolbox of §IV-E: "The DLHub toolbox
// supports programmatic construction of JSON documents that specify
// publication and model-specific metadata that complies with
// DLHub-required schemas." Builders mirror the Python SDK's model
// description classes (KerasModel, PythonStaticMethod, ...).

// Package pairs a metadata document with uploaded model components.
type Package = servable.Package

// ModelBuilder assembles a publication document fluently.
type ModelBuilder struct {
	doc        schema.Document
	components map[string][]byte
	err        error
}

// DescribeKerasModel starts a Keras model description from serialized
// model bytes (the "model" component).
func DescribeKerasModel(name, title string, model []byte) *ModelBuilder {
	b := newBuilder(name, title, schema.TypeKeras)
	b.components["model"] = model
	b.doc.Servable.ModelComponents = map[string]string{"model": name + ".h5"}
	return b
}

// DescribeTensorFlowModel starts a TensorFlow model description.
func DescribeTensorFlowModel(name, title string, model []byte) *ModelBuilder {
	b := newBuilder(name, title, schema.TypeTensorFlow)
	b.components["model"] = model
	b.doc.Servable.ModelComponents = map[string]string{"model": name + ".pb"}
	return b
}

// DescribeSklearnModel starts a scikit-learn model description.
func DescribeSklearnModel(name, title string, model []byte) *ModelBuilder {
	b := newBuilder(name, title, schema.TypeScikitLearn)
	b.components["model"] = model
	b.doc.Servable.ModelComponents = map[string]string{"model": name + ".pkl"}
	return b
}

// DescribePythonStaticMethod starts a description of an arbitrary
// Python function ("module:function"), DLHub's most general servable.
func DescribePythonStaticMethod(name, title, entry string) *ModelBuilder {
	b := newBuilder(name, title, schema.TypePythonFunction)
	b.doc.Servable.Entry = entry
	return b
}

// DescribePipeline starts a multi-step pipeline description (§VI-D).
func DescribePipeline(name, title string, steps ...string) *ModelBuilder {
	b := newBuilder(name, title, schema.TypePipeline)
	b.doc.Servable.Steps = steps
	return b
}

func newBuilder(name, title string, t schema.ModelType) *ModelBuilder {
	return &ModelBuilder{
		doc: schema.Document{
			Publication: schema.Publication{Name: name, Title: title},
			Servable:    schema.Servable{Type: t},
		},
		components: map[string][]byte{},
	}
}

// WithAuthors sets the author list.
func (b *ModelBuilder) WithAuthors(authors ...string) *ModelBuilder {
	b.doc.Publication.Authors = authors
	return b
}

// WithDescription sets the free-text description.
func (b *ModelBuilder) WithDescription(d string) *ModelBuilder {
	b.doc.Publication.Description = d
	return b
}

// WithDomains tags the scientific domains.
func (b *ModelBuilder) WithDomains(domains ...string) *ModelBuilder {
	b.doc.Publication.Domains = domains
	return b
}

// VisibleTo sets the ACL principal list ("public", identity URNs,
// group URNs).
func (b *ModelBuilder) VisibleTo(principals ...string) *ModelBuilder {
	b.doc.Publication.VisibleTo = principals
	return b
}

// WithIdentifier attaches a persistent identifier (BYO DOI).
func (b *ModelBuilder) WithIdentifier(doi string) *ModelBuilder {
	b.doc.Publication.Identifier = doi
	return b
}

// WithCitation attaches citation text or BibTeX.
func (b *ModelBuilder) WithCitation(cite string) *ModelBuilder {
	b.doc.Publication.Citation = cite
	return b
}

// WithLicense sets the license identifier.
func (b *ModelBuilder) WithLicense(l string) *ModelBuilder {
	b.doc.Publication.License = l
	return b
}

// WithYear sets the publication year.
func (b *ModelBuilder) WithYear(y int) *ModelBuilder {
	b.doc.Publication.Year = y
	return b
}

// WithRelatedDatasets links training/test datasets.
func (b *ModelBuilder) WithRelatedDatasets(urls ...string) *ModelBuilder {
	b.doc.Publication.RelatedDatasets = urls
	return b
}

// WithDependency pins a package dependency baked into the servable
// container.
func (b *ModelBuilder) WithDependency(pkg, version string) *ModelBuilder {
	if b.doc.Servable.Dependencies == nil {
		b.doc.Servable.Dependencies = map[string]string{}
	}
	b.doc.Servable.Dependencies[pkg] = version
	return b
}

// WithInput declares the input type of the standard run interface.
func (b *ModelBuilder) WithInput(kind string, shape []int, description string) *ModelBuilder {
	b.doc.Servable.Input = schema.DataType{Kind: kind, Shape: shape, Description: description}
	return b
}

// WithOutput declares the output type.
func (b *ModelBuilder) WithOutput(kind string, description string) *ModelBuilder {
	b.doc.Servable.Output = schema.DataType{Kind: kind, Description: description}
	return b
}

// WithComponent attaches an extra uploaded artifact (weights, vocab...).
func (b *ModelBuilder) WithComponent(name string, data []byte) *ModelBuilder {
	b.components[name] = data
	if b.doc.Servable.ModelComponents == nil {
		b.doc.Servable.ModelComponents = map[string]string{}
	}
	b.doc.Servable.ModelComponents[name] = name
	return b
}

// WithHyperparameter records a training hyperparameter.
func (b *ModelBuilder) WithHyperparameter(name string, value any) *ModelBuilder {
	if b.doc.Servable.Hyperparameters == nil {
		b.doc.Servable.Hyperparameters = map[string]json.RawMessage{}
	}
	data, err := json.Marshal(value)
	if err != nil {
		b.err = fmt.Errorf("dlhub: hyperparameter %s: %w", name, err)
		return b
	}
	b.doc.Servable.Hyperparameters[name] = data
	return b
}

// Build validates and returns the package.
func (b *ModelBuilder) Build() (*Package, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := schema.Validate(&b.doc); err != nil {
		return nil, err
	}
	doc := b.doc // copy
	return &Package{Doc: &doc, Components: b.components}, nil
}

// --- local runner -------------------------------------------------------------

// LocalRunner executes a servable package locally, without any DLHub
// service — "functionality to execute DLHub models locally ... useful
// for model development and testing" (§IV-E).
type LocalRunner struct {
	sv *servable.Servable
}

// NewLocalRunner loads a package for local execution (native host).
func NewLocalRunner(pkg *Package) (*LocalRunner, error) {
	doc := *pkg.Doc
	if doc.ID == "" {
		doc.ID = "local/" + doc.Publication.Name
	}
	sv, err := servable.Load(&doc, pkg.Components, false)
	if err != nil {
		return nil, err
	}
	return &LocalRunner{sv: sv}, nil
}

// Run executes the servable on one input.
func (r *LocalRunner) Run(input any) (any, error) { return r.sv.Run(input) }

// Close releases resources.
func (r *LocalRunner) Close() { r.sv.Close() }

// --- shared client plumbing -----------------------------------------------------

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	c.addAuth(req)
	return c.do(req, out)
}

func (c *Client) get(path string, out any) error {
	req, err := http.NewRequest(http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	c.addAuth(req)
	return c.do(req, out)
}

func (c *Client) addAuth(req *http.Request) {
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var env struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(buf.Bytes(), &env) == nil && env.Error != "" {
			return fmt.Errorf("dlhub: %s (http %d)", env.Error, resp.StatusCode)
		}
		return fmt.Errorf("dlhub: http %d: %s", resp.StatusCode, bytes.TrimSpace(buf.Bytes()))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(buf.Bytes(), out)
}

func mustJSON(v any) json.RawMessage {
	data, err := json.Marshal(v)
	if err != nil {
		panic(err) // documents are always marshalable structs
	}
	return data
}
