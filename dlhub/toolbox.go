package dlhub

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/servable"
)

// This file is the metadata toolbox of §IV-E: "The DLHub toolbox
// supports programmatic construction of JSON documents that specify
// publication and model-specific metadata that complies with
// DLHub-required schemas." Builders mirror the Python SDK's model
// description classes (KerasModel, PythonStaticMethod, ...).

// Package pairs a metadata document with uploaded model components.
type Package = servable.Package

// ModelBuilder assembles a publication document fluently.
type ModelBuilder struct {
	doc        schema.Document
	components map[string][]byte
	err        error
}

// DescribeKerasModel starts a Keras model description from serialized
// model bytes (the "model" component).
func DescribeKerasModel(name, title string, model []byte) *ModelBuilder {
	b := newBuilder(name, title, schema.TypeKeras)
	b.components["model"] = model
	b.doc.Servable.ModelComponents = map[string]string{"model": name + ".h5"}
	return b
}

// DescribeTensorFlowModel starts a TensorFlow model description.
func DescribeTensorFlowModel(name, title string, model []byte) *ModelBuilder {
	b := newBuilder(name, title, schema.TypeTensorFlow)
	b.components["model"] = model
	b.doc.Servable.ModelComponents = map[string]string{"model": name + ".pb"}
	return b
}

// DescribeSklearnModel starts a scikit-learn model description.
func DescribeSklearnModel(name, title string, model []byte) *ModelBuilder {
	b := newBuilder(name, title, schema.TypeScikitLearn)
	b.components["model"] = model
	b.doc.Servable.ModelComponents = map[string]string{"model": name + ".pkl"}
	return b
}

// DescribePythonStaticMethod starts a description of an arbitrary
// Python function ("module:function"), DLHub's most general servable.
func DescribePythonStaticMethod(name, title, entry string) *ModelBuilder {
	b := newBuilder(name, title, schema.TypePythonFunction)
	b.doc.Servable.Entry = entry
	return b
}

// DescribePipeline starts a multi-step pipeline description (§VI-D).
func DescribePipeline(name, title string, steps ...string) *ModelBuilder {
	b := newBuilder(name, title, schema.TypePipeline)
	b.doc.Servable.Steps = steps
	return b
}

func newBuilder(name, title string, t schema.ModelType) *ModelBuilder {
	return &ModelBuilder{
		doc: schema.Document{
			Publication: schema.Publication{Name: name, Title: title},
			Servable:    schema.Servable{Type: t},
		},
		components: map[string][]byte{},
	}
}

// WithAuthors sets the author list.
func (b *ModelBuilder) WithAuthors(authors ...string) *ModelBuilder {
	b.doc.Publication.Authors = authors
	return b
}

// WithDescription sets the free-text description.
func (b *ModelBuilder) WithDescription(d string) *ModelBuilder {
	b.doc.Publication.Description = d
	return b
}

// WithDomains tags the scientific domains.
func (b *ModelBuilder) WithDomains(domains ...string) *ModelBuilder {
	b.doc.Publication.Domains = domains
	return b
}

// VisibleTo sets the ACL principal list ("public", identity URNs,
// group URNs).
func (b *ModelBuilder) VisibleTo(principals ...string) *ModelBuilder {
	b.doc.Publication.VisibleTo = principals
	return b
}

// WithIdentifier attaches a persistent identifier (BYO DOI).
func (b *ModelBuilder) WithIdentifier(doi string) *ModelBuilder {
	b.doc.Publication.Identifier = doi
	return b
}

// WithCitation attaches citation text or BibTeX.
func (b *ModelBuilder) WithCitation(cite string) *ModelBuilder {
	b.doc.Publication.Citation = cite
	return b
}

// WithLicense sets the license identifier.
func (b *ModelBuilder) WithLicense(l string) *ModelBuilder {
	b.doc.Publication.License = l
	return b
}

// WithYear sets the publication year.
func (b *ModelBuilder) WithYear(y int) *ModelBuilder {
	b.doc.Publication.Year = y
	return b
}

// WithRelatedDatasets links training/test datasets.
func (b *ModelBuilder) WithRelatedDatasets(urls ...string) *ModelBuilder {
	b.doc.Publication.RelatedDatasets = urls
	return b
}

// WithDependency pins a package dependency baked into the servable
// container.
func (b *ModelBuilder) WithDependency(pkg, version string) *ModelBuilder {
	if b.doc.Servable.Dependencies == nil {
		b.doc.Servable.Dependencies = map[string]string{}
	}
	b.doc.Servable.Dependencies[pkg] = version
	return b
}

// WithInput declares the input type of the standard run interface.
func (b *ModelBuilder) WithInput(kind string, shape []int, description string) *ModelBuilder {
	b.doc.Servable.Input = schema.DataType{Kind: kind, Shape: shape, Description: description}
	return b
}

// WithOutput declares the output type.
func (b *ModelBuilder) WithOutput(kind string, description string) *ModelBuilder {
	b.doc.Servable.Output = schema.DataType{Kind: kind, Description: description}
	return b
}

// WithComponent attaches an extra uploaded artifact (weights, vocab...).
func (b *ModelBuilder) WithComponent(name string, data []byte) *ModelBuilder {
	b.components[name] = data
	if b.doc.Servable.ModelComponents == nil {
		b.doc.Servable.ModelComponents = map[string]string{}
	}
	b.doc.Servable.ModelComponents[name] = name
	return b
}

// WithHyperparameter records a training hyperparameter.
func (b *ModelBuilder) WithHyperparameter(name string, value any) *ModelBuilder {
	if b.doc.Servable.Hyperparameters == nil {
		b.doc.Servable.Hyperparameters = map[string]json.RawMessage{}
	}
	data, err := json.Marshal(value)
	if err != nil {
		b.err = fmt.Errorf("dlhub: hyperparameter %s: %w", name, err)
		return b
	}
	b.doc.Servable.Hyperparameters[name] = data
	return b
}

// Build validates and returns the package.
func (b *ModelBuilder) Build() (*Package, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := schema.Validate(&b.doc); err != nil {
		return nil, err
	}
	doc := b.doc // copy
	return &Package{Doc: &doc, Components: b.components}, nil
}

// --- local runner -------------------------------------------------------------

// LocalRunner executes a servable package locally, without any DLHub
// service — "functionality to execute DLHub models locally ... useful
// for model development and testing" (§IV-E).
type LocalRunner struct {
	sv *servable.Servable
}

// NewLocalRunner loads a package for local execution (native host).
func NewLocalRunner(pkg *Package) (*LocalRunner, error) {
	doc := *pkg.Doc
	if doc.ID == "" {
		doc.ID = "local/" + doc.Publication.Name
	}
	sv, err := servable.Load(&doc, pkg.Components, false)
	if err != nil {
		return nil, err
	}
	return &LocalRunner{sv: sv}, nil
}

// Run executes the servable on one input.
func (r *LocalRunner) Run(input any) (any, error) { return r.sv.Run(input) }

// Close releases resources.
func (r *LocalRunner) Close() { r.sv.Close() }

// --- shared client plumbing -----------------------------------------------------

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) addAuth(req *http.Request) {
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
}

// call issues one v2 API request and decodes the envelope's data into
// out (if non-nil). Requests that are safe to repeat — GETs, and POSTs
// carrying an idempotency key — are retried under the client's
// RetryPolicy on transport errors and 5xx gateway/availability
// statuses, with exponential backoff and full jitter.
func (c *Client) call(ctx context.Context, method, path string, in, out any, idemKey string) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	policy := c.Retry.withDefaults()
	retryable := method == http.MethodGet || idemKey != ""
	attempts := policy.MaxAttempts
	if !retryable {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(policy.backoff(attempt)):
			}
		}
		var reader io.Reader
		if body != nil {
			reader = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, reader)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if idemKey != "" {
			req.Header.Set(core.IdempotencyKeyHeader, idemKey)
		}
		c.addAuth(req)
		lastErr = c.doOnce(req, out)
		if lastErr == nil || !retryableError(lastErr) || ctx.Err() != nil {
			return lastErr
		}
	}
	return lastErr
}

// retryableError reports whether a failure may be transient: transport
// errors and the gateway/availability statuses qualify; 4xx responses
// are definitive and never retried.
func retryableError(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		switch apiErr.Status {
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout, http.StatusTooManyRequests:
			return true
		}
		return false
	}
	// Non-API errors are transport-level (connection refused, reset...).
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// doOnce executes one request and decodes the v2 envelope.
func (c *Client) doOnce(req *http.Request, out any) error {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return err
	}
	var env struct {
		Data  json.RawMessage `json:"data"`
		Error *struct {
			Code    string `json:"code"`
			Message string `json:"message"`
			Detail  string `json:"detail"`
		} `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil || (env.Data == nil && env.Error == nil && env.RequestID == "") {
		// Not an envelope (proxy error page, v1 server...).
		if resp.StatusCode/100 != 2 {
			return &APIError{Status: resp.StatusCode, Code: "unknown", Message: string(bytes.TrimSpace(buf.Bytes()))}
		}
		if out == nil {
			return nil
		}
		return json.Unmarshal(buf.Bytes(), out)
	}
	if env.Error != nil {
		return &APIError{
			Status:    resp.StatusCode,
			Code:      env.Error.Code,
			Message:   env.Error.Message,
			Detail:    env.Error.Detail,
			RequestID: env.RequestID,
		}
	}
	if resp.StatusCode/100 != 2 {
		return &APIError{Status: resp.StatusCode, Code: "unknown", Message: "unexpected status", RequestID: env.RequestID}
	}
	if out == nil || env.Data == nil {
		return nil
	}
	return json.Unmarshal(env.Data, out)
}

// decodeErrorBody turns a non-200 response (e.g. on an SSE subscribe)
// into its typed error.
func decodeErrorBody(resp *http.Response) error {
	var buf bytes.Buffer
	buf.ReadFrom(io.LimitReader(resp.Body, 1<<20)) //nolint:errcheck — best effort
	var env struct {
		Error *struct {
			Code    string `json:"code"`
			Message string `json:"message"`
			Detail  string `json:"detail"`
		} `json:"error"`
		RequestID string `json:"request_id"`
	}
	if json.Unmarshal(buf.Bytes(), &env) == nil && env.Error != nil {
		return &APIError{
			Status:    resp.StatusCode,
			Code:      env.Error.Code,
			Message:   env.Error.Message,
			Detail:    env.Error.Detail,
			RequestID: env.RequestID,
		}
	}
	return &APIError{Status: resp.StatusCode, Code: "unknown", Message: string(bytes.TrimSpace(buf.Bytes()))}
}

func mustJSON(v any) json.RawMessage {
	data, err := json.Marshal(v)
	if err != nil {
		panic(err) // documents are always marshalable structs
	}
	return data
}
