// CANDLE access-controlled model sharing (§VI-A): cancer research
// models "require substantial testing and verification by a subset of
// selected users prior to their general release. DLHub supports this
// use case by supporting model sharing and discovery with fine grain
// access control ... Once models are determined suitable for general
// release, the access control on the model can be updated within DLHub
// to make them publicly available."
//
//	go run ./examples/candle
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"repro/dlhub"
	"repro/internal/auth"
	"repro/internal/bench"
	"repro/internal/ml/nn"
	"repro/internal/simconst"
)

func main() {
	simconst.Scale = 100

	// Globus-Auth-like identity fabric: three researchers, one test group.
	authority := auth.NewService(time.Hour)
	authority.RegisterProvider("anl")
	authority.RegisterClient("dlhub", "DLHub", "dlhub:all")
	owner, _ := authority.RegisterUser("anl", "jwozniak", "pw", "Justin Wozniak", "")
	tester, _ := authority.RegisterUser("anl", "tester1", "pw", "Selected Tester", "")
	authority.RegisterUser("anl", "outsider", "pw", "Curious Outsider", "") //nolint:errcheck
	authority.CreateGroup("candle-testers")
	if err := authority.AddToGroup("candle-testers", tester.ID); err != nil {
		log.Fatal(err)
	}
	_ = owner

	tb, err := bench.NewTestbed(bench.Options{Nodes: 4, Auth: authority, RunScope: "dlhub:all"})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	srv := httptest.NewServer(tb.MS.Handler())
	defer srv.Close()

	clientFor := func(user string) *dlhub.Client {
		tok, err := authority.Authenticate("anl", user, "pw", "dlhub", "dlhub:all")
		if err != nil {
			log.Fatal(err)
		}
		return dlhub.NewClient(srv.URL, tok.Value)
	}

	// The CANDLE team publishes a drug-response model restricted to the
	// tester group. (A small CNN stands in for the real model.)
	model, err := nn.Encode(nn.NewCIFAR10(99))
	if err != nil {
		log.Fatal(err)
	}
	pkg, err := dlhub.DescribeKerasModel("drug-response", "CANDLE drug response predictor", model).
		WithAuthors("Wozniak, Justin", "CANDLE Team").
		WithDescription("Predicts drug response from molecular features of tumor cells (pre-release).").
		WithDomains("cancer research").
		VisibleTo(auth.GroupURN("candle-testers")).
		WithInput("ndarray", []int{32, 32, 3}, "molecular feature tensor").
		WithOutput("list", "response classes").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	ownerClient := clientFor("jwozniak")
	id, err := ownerClient.PublishPackage(pkg)
	if err != nil {
		log.Fatal(err)
	}
	if err := ownerClient.Deploy(id, 1, ""); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published %s, visible only to group candle-testers\n\n", id)

	input := make([]any, 32*32*3)
	for i := range input {
		input[i] = float64(i%17) / 17
	}

	// Selected tester: discovery + inference work.
	testerClient := clientFor("tester1")
	found, _ := testerClient.Search("drug response", dlhub.SearchOptions{})
	fmt.Printf("tester search:   %d result(s)\n", found.Total)
	if _, err := testerClient.Run(id, input); err != nil {
		log.Fatalf("tester should be able to run: %v", err)
	}
	fmt.Println("tester run:      OK (group member)")

	// Outsider: the model is invisible and unrunnable.
	outsiderClient := clientFor("outsider")
	hidden, _ := outsiderClient.Search("drug response", dlhub.SearchOptions{})
	fmt.Printf("outsider search: %d result(s)\n", hidden.Total)
	if _, err := outsiderClient.Run(id, input); err != nil {
		fmt.Printf("outsider run:    denied (%v)\n\n", err)
	} else {
		log.Fatal("outsider should have been denied")
	}

	// General release: the owner flips the ACL to public.
	if err := ownerClient.UpdateVisibility(id, []string{"public"}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("owner released the model publicly")
	released, _ := outsiderClient.Search("drug response", dlhub.SearchOptions{})
	fmt.Printf("outsider search: %d result(s)\n", released.Total)
	if out, err := outsiderClient.Run(id, input); err == nil {
		top := out.Output.([]any)[0].(map[string]any)
		fmt.Printf("outsider run:    OK -> top class %v\n", top["label"])
	} else {
		log.Fatalf("outsider should now be able to run: %v", err)
	}
}
