// Formation-enthalpy pipeline (§VI-D): "a pipeline for predicting
// formation enthalpy from a material composition (e.g., SiO2) can be
// organized into three steps: 1) conversion of material composition
// text into a pymatgen object; 2) creation of a set of features, via
// matminer; and 3) prediction of formation enthalpy using the matminer
// features as input. Once the pipeline is defined, the end user sees a
// simplified interface that allows them to input a material composition
// and receive a formation enthalpy."
//
//	go run ./examples/formation_enthalpy
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"repro/dlhub"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/servable"
	"repro/internal/simconst"
)

func main() {
	simconst.Scale = 100
	tb, err := bench.NewTestbed(bench.Options{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	srv := httptest.NewServer(tb.MS.Handler())
	defer srv.Close()
	client := dlhub.NewClient(srv.URL, "")

	// Publish + deploy the three workflow stages.
	fmt.Println("training the random-forest stability model on synthetic OQMD data...")
	stages := map[string]*servable.Package{}
	stages["util"] = servable.MatminerUtilPackage()
	stages["featurize"] = servable.MatminerFeaturizePackage()
	model, err := servable.MatminerModelPackage(400, 7)
	if err != nil {
		log.Fatal(err)
	}
	stages["model"] = model

	ids := map[string]string{}
	for _, name := range []string{"util", "featurize", "model"} {
		id, err := client.PublishPackage(stages[name])
		if err != nil {
			log.Fatalf("publish %s: %v", name, err)
		}
		if err := client.Deploy(id, 1, ""); err != nil {
			log.Fatalf("deploy %s: %v", name, err)
		}
		ids[name] = id
		fmt.Printf("published + deployed %s\n", id)
	}

	// Publish the pipeline that chains them server-side.
	pipe, err := dlhub.DescribePipeline(
		"formation-enthalpy", "Formation enthalpy from composition",
		ids["util"], ids["featurize"], ids["model"]).
		WithAuthors("Ward, Logan").
		WithDescription("composition string -> pymatgen -> matminer features -> RF formation enthalpy").
		WithDomains("materials science").
		VisibleTo("public").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	pipeID, err := client.PublishPackage(pipe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published pipeline %s\n\n", pipeID)

	// The simplified end-user interface: composition in, enthalpy out.
	for _, composition := range []string{"SiO2", "NaCl", "MgO", "Fe2O3", "TiO2", "FeNi"} {
		start := time.Now()
		res, err := client.Run(pipeID, composition)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ΔHf(%-6s) = %+7.3f eV/atom   (%.1f ms end-to-end, server-side chaining)\n",
			composition, res.Output, float64(time.Since(start).Microseconds())/1000)
	}

	// Contrast: running the three steps client-side pays the MS<->TM
	// round trip three times instead of once.
	fmt.Println("\nclient-side chaining for comparison:")
	start := time.Now()
	frac, err := client.Run(ids["util"], "SiO2")
	if err != nil {
		log.Fatal(err)
	}
	feats, err := client.Run(ids["featurize"], frac.Output)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := client.Run(ids["model"], feats.Output)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ΔHf(SiO2) = %+7.3f eV/atom   (%.1f ms with 3 client round trips)\n",
		pred.Output, float64(time.Since(start).Microseconds())/1000)
	_ = core.Anonymous
}
