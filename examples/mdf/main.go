// MDF dataset enrichment (§VI-B): "When a new dataset is registered
// with MDF, automated workflows are applied to trigger the invocation
// of relevant models to analyze the dataset and generate additional
// metadata. The selection of appropriate models is possible due to the
// descriptive schemas used in both MDF and DLHub": MDF's fine-grained
// type information is matched against the input types DLHub models
// declare.
//
//	go run ./examples/mdf
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"repro/dlhub"
	"repro/internal/bench"
	"repro/internal/servable"
	"repro/internal/simconst"
)

// dataset is an MDF-registered dataset with extracted type info.
type dataset struct {
	Name     string
	DataType string // fine-grained type: "string/composition", ...
	Records  []any
}

func main() {
	simconst.Scale = 100
	tb, err := bench.NewTestbed(bench.Options{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	srv := httptest.NewServer(tb.MS.Handler())
	defer srv.Close()
	client := dlhub.NewClient(srv.URL, "")

	// DLHub side: published models declare their input kinds.
	servable.RegisterBuiltins()
	parser, err := dlhub.DescribePythonStaticMethod(
		"composition-parser", "Composition parser", "pymatgen:parse_composition").
		WithAuthors("Ward, Logan").
		WithDescription("Element fractions from composition strings.").
		WithDomains("materials science").
		VisibleTo("public").
		WithInput("string", nil, "composition").
		WithOutput("dict", "fractions").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	parserID, err := client.PublishPackage(parser)
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Deploy(parserID, 2, ""); err != nil {
		log.Fatal(err)
	}

	segment, err := dlhub.DescribePythonStaticMethod(
		"image-segmenter", "Image segmenter", "tomography:segment").
		WithAuthors("Chard, Ryan").
		WithDescription("Threshold segmentation for image datasets.").
		WithDomains("imaging").
		VisibleTo("public").
		WithInput("list", nil, "flattened image").
		WithOutput("dict", "mask").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	segmentID, err := client.PublishPackage(segment)
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Deploy(segmentID, 1, ""); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DLHub models: %s (input kind string), %s (input kind list)\n\n", parserID, segmentID)

	// MDF side: new datasets arrive with fine-grained type info.
	datasets := []dataset{
		{
			Name:     "oqmd-subset",
			DataType: "string",
			Records:  []any{"NaCl", "SiO2", "Fe2O3", "MgAl2O4"},
		},
		{
			Name:     "aps-brain-tiles",
			DataType: "list",
			Records:  []any{[]any{0.1, 0.9, 0.05, 0.85}, []any{0.9, 0.9, 0.1, 0.2}},
		},
	}

	// The enrichment workflow: for each registered dataset, find DLHub
	// models whose declared input kind matches the dataset's extracted
	// type, and fan the records out to them.
	for _, ds := range datasets {
		fmt.Printf("dataset %q registered with MDF (type %s)\n", ds.Name, ds.DataType)
		matches, err := client.Search("", dlhub.SearchOptions{
			Terms: map[string]string{"input.kind": ds.DataType},
		})
		if err != nil {
			log.Fatal(err)
		}
		if matches.Total == 0 {
			fmt.Println("  no applicable models")
			continue
		}
		for _, modelID := range matches.IDs {
			res, err := client.RunBatch(modelID, ds.Records)
			if err != nil {
				log.Fatalf("  enrichment with %s failed: %v", modelID, err)
			}
			fmt.Printf("  enriched %d records with %s (%.1f ms)\n",
				len(res.Outputs), modelID, float64(res.RequestMicros)/1000)
			fmt.Printf("    first derived metadata record: %v\n", res.Outputs[0])
		}
	}
}
