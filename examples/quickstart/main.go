// Quickstart: stand up an in-process DLHub deployment, publish a model
// with the SDK toolbox, discover it with search, deploy it, and invoke
// it — the complete publish/discover/serve loop of the paper in ~80
// lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"repro/dlhub"
	"repro/internal/bench"
	"repro/internal/servable"
	"repro/internal/simconst"
)

func main() {
	// Compress injected environmental latencies (container starts,
	// interpreter imports) so the demo is snappy; set to 1 for
	// paper-faithful timings.
	simconst.Scale = 100

	// One-process deployment: Management Service + Task Manager +
	// mini-Kubernetes cluster.
	tb, err := bench.NewTestbed(bench.Options{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	srv := httptest.NewServer(tb.MS.Handler())
	defer srv.Close()
	client := dlhub.NewClient(srv.URL, "")

	// 1. Describe and publish a servable with the metadata toolbox.
	servable.RegisterBuiltins()
	pkg, err := dlhub.DescribePythonStaticMethod(
		"composition-parser", "Composition parser", "pymatgen:parse_composition").
		WithAuthors("Ward, Logan", "Chard, Ryan").
		WithDescription("Parses a chemical formula into element mole fractions using pymatgen.").
		WithDomains("materials science").
		VisibleTo("public").
		WithInput("string", nil, "chemical formula, e.g. NaCl").
		WithOutput("dict", "element -> mole fraction").
		WithIdentifier("10.5555/dlhub-quickstart").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	id, err := client.PublishPackage(pkg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published %s\n", id)

	// 2. Discover it via free-text search.
	res, err := client.Search("chemical formula fractions", dlhub.SearchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search found %d result(s): %v\n", res.Total, res.IDs)

	// 3. Deploy two replicas on the Parsl executor.
	if err := client.Deploy(id, 2, ""); err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployed 2 replicas")

	// 4. Invoke it.
	for _, formula := range []string{"NaCl", "SiO2", "Ca(OH)2"} {
		out, err := client.Run(id, formula)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s -> %v  (request %.2f ms, invocation %.2f ms, inference %.2f ms)\n",
			formula, out.Output,
			float64(out.RequestMicros)/1000,
			float64(out.InvocationMicros)/1000,
			float64(out.InferenceMicros)/1000)
	}

	// 5. Async invocation with task polling.
	taskID, err := client.RunAsync(id, "Fe2O3")
	if err != nil {
		log.Fatal(err)
	}
	st, err := client.WaitTask(taskID, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("async task %s: %s -> %v\n", taskID[:8], st.Status, st.Reply.Output)
}
