// Tomographic neuroanatomy processing (§VI-C): X-ray microtomography at
// the Advanced Photon Source uses DLHub to pick the highest-quality
// slice for reconstruction ("center finding") in near real time, then
// batch-segments the reconstructed images to characterize cells.
//
//	go run ./examples/tomography
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/http/httptest"

	"repro/dlhub"
	"repro/internal/bench"
	"repro/internal/servable"
	"repro/internal/simconst"
)

// makeSlice synthesizes a tomographic slice: mostly smooth background
// with sharpness (gradient energy) controlled by quality.
func makeSlice(rng *rand.Rand, n int, quality float64) []any {
	img := make([]any, n)
	for i := range img {
		base := math.Sin(float64(i) / 7)
		noise := rng.Float64() * quality * 4
		img[i] = base + noise
	}
	return img
}

// makeCellImage synthesizes a reconstructed image with bright blobs
// ("cells") on a dark background.
func makeCellImage(rng *rand.Rand, n int, cellFrac float64) []any {
	img := make([]any, n)
	for i := range img {
		if rng.Float64() < cellFrac {
			img[i] = 0.8 + rng.Float64()*0.2 // cell
		} else {
			img[i] = rng.Float64() * 0.2 // background
		}
	}
	return img
}

func main() {
	simconst.Scale = 100
	tb, err := bench.NewTestbed(bench.Options{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	srv := httptest.NewServer(tb.MS.Handler())
	defer srv.Close()
	client := dlhub.NewClient(srv.URL, "")

	// Publish the two APS models.
	servable.RegisterBuiltins()
	centerPkg, err := dlhub.DescribePythonStaticMethod(
		"aps-center-finder", "Tomography center finder", "tomography:find_center").
		WithAuthors("Chard, Ryan").
		WithDescription("Identifies the highest-quality slice for tomographic reconstruction.").
		WithDomains("neuroanatomy", "tomography").
		VisibleTo("public").
		WithInput("list", nil, "list of slices (flattened float images)").
		WithOutput("dict", "center slice index + quality score").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	segmentPkg, err := dlhub.DescribePythonStaticMethod(
		"aps-segmentation", "Cell segmentation", "tomography:segment").
		WithAuthors("Chard, Ryan").
		WithDescription("Two-means threshold segmentation of reconstructed brain images.").
		WithDomains("neuroanatomy").
		VisibleTo("public").
		WithInput("list", nil, "flattened float image").
		WithOutput("dict", "mask + cell fraction").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	centerID, err := client.PublishPackage(centerPkg)
	if err != nil {
		log.Fatal(err)
	}
	segmentID, err := client.PublishPackage(segmentPkg)
	if err != nil {
		log.Fatal(err)
	}
	if err := client.Deploy(centerID, 1, ""); err != nil {
		log.Fatal(err)
	}
	if err := client.Deploy(segmentID, 4, ""); err != nil { // batch post-processing gets replicas
		log.Fatal(err)
	}
	fmt.Printf("deployed %s and %s\n\n", centerID, segmentID)

	// Near-real-time center finding during reconstruction: slices of
	// varying quality arrive; slice 7 is synthesized sharpest.
	rng := rand.New(rand.NewSource(42))
	slices := make([]any, 12)
	for i := range slices {
		quality := 0.1
		if i == 7 {
			quality = 1.0
		}
		slices[i] = makeSlice(rng, 256, quality)
	}
	res, err := client.Run(centerID, slices)
	if err != nil {
		log.Fatal(err)
	}
	m := res.Output.(map[string]any)
	fmt.Printf("center finding: slice %v selected (quality %.1f) in %.2f ms\n\n",
		m["center_slice"], m["quality"], float64(res.RequestMicros)/1000)

	// Batch-style segmentation post-processing of reconstructed images.
	images := make([]any, 16)
	wantFracs := make([]float64, 16)
	for i := range images {
		frac := 0.1 + 0.04*float64(i)
		wantFracs[i] = frac
		images[i] = makeCellImage(rng, 1024, frac)
	}
	batch, err := client.RunBatch(segmentID, images)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("segmented %d images in one batch (%.1f ms total):\n", len(images), float64(batch.RequestMicros)/1000)
	for i, out := range batch.Outputs {
		got := out.(map[string]any)["cell_fraction"].(float64)
		fmt.Printf("  image %2d: cell fraction %.3f (generated %.3f)\n", i, got, wantFracs[i])
	}
}
