// Package auth reproduces the slice of Globus Auth that DLHub depends on
// (§IV-D): brokered authentication against many identity providers,
// linked identities, short-term access tokens with scopes, token
// introspection by resource servers, dependent tokens, and groups used
// for fine-grained access control on models (the CANDLE use case,
// §VI-A, shares unreleased models with "a subset of selected users").
package auth

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Errors returned by the service.
var (
	ErrUnknownIdentity   = errors.New("auth: unknown identity")
	ErrUnknownProvider   = errors.New("auth: unknown identity provider")
	ErrBadCredentials    = errors.New("auth: invalid credentials")
	ErrInvalidToken      = errors.New("auth: invalid token")
	ErrExpiredToken      = errors.New("auth: expired token")
	ErrInsufficientScope = errors.New("auth: insufficient scope")
	ErrUnknownClient     = errors.New("auth: unknown client")
	ErrUnknownGroup      = errors.New("auth: unknown group")
	ErrInvalidName       = errors.New("auth: invalid provider or username")
)

// ValidName reports whether a provider or username is safe to embed in
// the places identities are keyed: durable user-table keys
// (<provider>/<username>) and identity URNs
// (urn:identity:<provider>:<username>). Allowing '/' or ':' would let
// two distinct registrations alias the same record, so names are
// restricted to [A-Za-z0-9._-].
func ValidName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// Identity is one identity from one provider (e.g. an ORCID, a campus
// login, a Google account).
type Identity struct {
	ID       string // urn:identity:<provider>:<username>
	Provider string
	Username string
	Name     string
	Email    string
}

// URN returns the identity's stable uniform resource name.
func URN(provider, username string) string {
	return "urn:identity:" + provider + ":" + username
}

// GroupURN returns the ACL principal for a group.
func GroupURN(groupID string) string { return "urn:group:" + groupID }

// PublicPrincipal is the ACL principal meaning "anyone".
const PublicPrincipal = "public"

// Token is an issued bearer credential.
type Token struct {
	Value      string
	IdentityID string
	ClientID   string // resource server the token is for
	Scopes     []string
	IssuedAt   time.Time
	ExpiresAt  time.Time
	// Parent is the token this one was derived from via a dependent
	// token grant, "" for primary tokens.
	Parent string
}

// HasScope reports whether the token carries the given scope.
func (t *Token) HasScope(scope string) bool {
	for _, s := range t.Scopes {
		if s == scope {
			return true
		}
	}
	return false
}

// Client is a registered resource server (e.g. the DLHub Management
// Service is "registered as a Globus Auth resource server with
// associated scope for programmatic invocation").
type Client struct {
	ID     string
	Name   string
	Scopes []string // scopes this resource server defines
}

// provider is an identity provider with password-checked accounts.
type provider struct {
	name  string
	users map[string]string // username -> password hash (hex sha256)
}

// Service is the in-process Globus-Auth-like authority.
type Service struct {
	mu         sync.RWMutex
	providers  map[string]*provider
	identities map[string]*Identity
	linked     map[string]map[string]bool // identity id -> set of linked identity ids
	clients    map[string]*Client
	tokens     map[string]*Token
	groups     map[string]map[string]bool // group id -> member identity ids
	tenants    *TenantRegistry            // lazily created; see Tenants()

	hmacKey  []byte
	tokenTTL time.Duration
	now      func() time.Time
}

// NewService creates an authority with the given token lifetime.
func NewService(tokenTTL time.Duration) *Service {
	if tokenTTL <= 0 {
		tokenTTL = time.Hour
	}
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		panic("auth: crypto/rand failed: " + err.Error())
	}
	return &Service{
		providers:  make(map[string]*provider),
		identities: make(map[string]*Identity),
		linked:     make(map[string]map[string]bool),
		clients:    make(map[string]*Client),
		tokens:     make(map[string]*Token),
		groups:     make(map[string]map[string]bool),
		hmacKey:    key,
		tokenTTL:   tokenTTL,
		now:        time.Now,
	}
}

// SetClock overrides the time source (tests).
func (s *Service) SetClock(now func() time.Time) { s.now = now }

func hashPassword(pw string) string {
	sum := sha256.Sum256([]byte(pw))
	return hex.EncodeToString(sum[:])
}

// HashPassword returns the stored form of a password. It is exported so
// the Management Service can hash at registration time and persist only
// the hash — plaintext credentials never reach the WAL or checkpoints.
func HashPassword(pw string) string { return hashPassword(pw) }

// RegisterProvider adds an identity provider (campus, ORCID, Google...).
func (s *Service) RegisterProvider(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.providers[name]; !ok {
		s.providers[name] = &provider{name: name, users: make(map[string]string)}
	}
}

// HasProvider reports whether the named identity provider is
// registered. The Management Service checks this on its open
// registration route so callers cannot mint identities under provider
// namespaces the operator never configured.
func (s *Service) HasProvider(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.providers[name]
	return ok
}

// RegisterUser creates an account at a provider and its identity record.
func (s *Service) RegisterUser(providerName, username, password, fullName, email string) (*Identity, error) {
	if !ValidName(providerName) || !ValidName(username) {
		return nil, fmt.Errorf("%w: %s/%s", ErrInvalidName, providerName, username)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.providers[providerName]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownProvider, providerName)
	}
	p.users[username] = hashPassword(password)
	id := &Identity{
		ID:       URN(providerName, username),
		Provider: providerName,
		Username: username,
		Name:     fullName,
		Email:    email,
	}
	s.identities[id.ID] = id
	return id, nil
}

// RegisterUserHashed installs an account from its stored credential —
// the WAL-replay and snapshot-restore path, where only the hash
// survives. It is an idempotent upsert: re-applying a record converges,
// and the provider is created if the replaying process never registered
// it explicitly.
func (s *Service) RegisterUserHashed(providerName, username, passwordHash, fullName, email string) *Identity {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.providers[providerName]
	if !ok {
		p = &provider{name: providerName, users: make(map[string]string)}
		s.providers[providerName] = p
	}
	p.users[username] = passwordHash
	id := &Identity{
		ID:       URN(providerName, username),
		Provider: providerName,
		Username: username,
		Name:     fullName,
		Email:    email,
	}
	s.identities[id.ID] = id
	return id
}

// RegisterClient registers a resource server and the scopes it defines.
func (s *Service) RegisterClient(id, name string, scopes ...string) *Client {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := &Client{ID: id, Name: name, Scopes: scopes}
	s.clients[id] = c
	return c
}

// LinkIdentities records that two identities belong to the same person.
// Linking is symmetric and transitive closure is applied at query time.
func (s *Service) LinkIdentities(a, b string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.identities[a]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownIdentity, a)
	}
	if _, ok := s.identities[b]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownIdentity, b)
	}
	if s.linked[a] == nil {
		s.linked[a] = make(map[string]bool)
	}
	if s.linked[b] == nil {
		s.linked[b] = make(map[string]bool)
	}
	s.linked[a][b] = true
	s.linked[b][a] = true
	return nil
}

// LinkedIdentities returns the transitive closure of identities linked
// to id, including id itself, sorted.
func (s *Service) LinkedIdentities(id string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := map[string]bool{id: true}
	stack := []string{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := range s.linked[cur] {
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Authenticate validates provider credentials and issues a token for the
// given resource server and scopes.
func (s *Service) Authenticate(providerName, username, password, clientID string, scopes ...string) (*Token, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.providers[providerName]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownProvider, providerName)
	}
	stored, ok := p.users[username]
	if !ok || !hmac.Equal([]byte(stored), []byte(hashPassword(password))) {
		return nil, ErrBadCredentials
	}
	client, ok := s.clients[clientID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownClient, clientID)
	}
	for _, want := range scopes {
		if !clientDefines(client, want) {
			return nil, fmt.Errorf("%w: client %s does not define scope %s", ErrInsufficientScope, clientID, want)
		}
	}
	return s.issueLocked(URN(providerName, username), clientID, scopes, ""), nil
}

func clientDefines(c *Client, scope string) bool {
	for _, s := range c.Scopes {
		if s == scope {
			return true
		}
	}
	return false
}

// issueLocked mints a signed opaque token. Caller holds s.mu.
func (s *Service) issueLocked(identityID, clientID string, scopes []string, parent string) *Token {
	var nonce [16]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		panic("auth: crypto/rand failed: " + err.Error())
	}
	mac := hmac.New(sha256.New, s.hmacKey)
	mac.Write(nonce[:])
	mac.Write([]byte(identityID))
	value := "agt_" + hex.EncodeToString(nonce[:]) + hex.EncodeToString(mac.Sum(nil))[:16]
	tok := &Token{
		Value:      value,
		IdentityID: identityID,
		ClientID:   clientID,
		Scopes:     append([]string(nil), scopes...),
		IssuedAt:   s.now(),
		ExpiresAt:  s.now().Add(s.tokenTTL),
		Parent:     parent,
	}
	s.tokens[value] = tok
	return tok
}

// Introspect validates a bearer token the way a resource server does,
// returning its claims.
func (s *Service) Introspect(tokenValue string) (*Token, error) {
	s.mu.RLock()
	tok, ok := s.tokens[tokenValue]
	now := s.now()
	s.mu.RUnlock()
	if !ok {
		return nil, ErrInvalidToken
	}
	if now.After(tok.ExpiresAt) {
		return nil, ErrExpiredToken
	}
	return tok, nil
}

// DependentToken lets a resource server (holding parentToken from a
// user) obtain a token for a downstream service on the user's behalf —
// how the DLHub Management Service transfers model components "from
// Globus endpoints seamlessly" (§IV-D).
func (s *Service) DependentToken(parentToken, downstreamClientID string, scopes ...string) (*Token, error) {
	parent, err := s.Introspect(parentToken)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	client, ok := s.clients[downstreamClientID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownClient, downstreamClientID)
	}
	for _, want := range scopes {
		if !clientDefines(client, want) {
			return nil, fmt.Errorf("%w: %s does not define %s", ErrInsufficientScope, downstreamClientID, want)
		}
	}
	return s.issueLocked(parent.IdentityID, downstreamClientID, scopes, parentToken), nil
}

// Revoke invalidates a token and every dependent token derived from it.
func (s *Service) Revoke(tokenValue string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.tokens, tokenValue)
	for v, t := range s.tokens {
		if t.Parent == tokenValue {
			delete(s.tokens, v)
		}
	}
}

// --- groups -------------------------------------------------------------

// CreateGroup makes an empty group.
func (s *Service) CreateGroup(groupID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.groups[groupID] == nil {
		s.groups[groupID] = make(map[string]bool)
	}
}

// AddToGroup adds an identity to a group.
func (s *Service) AddToGroup(groupID, identityID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[groupID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownGroup, groupID)
	}
	if _, ok := s.identities[identityID]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownIdentity, identityID)
	}
	g[identityID] = true
	return nil
}

// RemoveFromGroup removes an identity from a group.
func (s *Service) RemoveFromGroup(groupID, identityID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[groupID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownGroup, groupID)
	}
	delete(g, identityID)
	return nil
}

// InGroup reports group membership.
func (s *Service) InGroup(groupID, identityID string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.groups[groupID][identityID]
}

// Principals returns every ACL principal the identity matches: its own
// URN (and linked identities' URNs), every group it belongs to, and the
// public principal. Model visibility lists are checked against this set.
func (s *Service) Principals(identityID string) []string {
	ids := s.LinkedIdentities(identityID)
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := map[string]bool{PublicPrincipal: true}
	for _, id := range ids {
		set[id] = true
		for gid, members := range s.groups {
			if members[id] {
				set[GroupURN(gid)] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Authorize checks a bearer token and required scope in one call; it is
// the middleware primitive used by the Management Service REST API.
func (s *Service) Authorize(tokenValue, scope string) (*Token, error) {
	tok, err := s.Introspect(strings.TrimPrefix(tokenValue, "Bearer "))
	if err != nil {
		return nil, err
	}
	if scope != "" && !tok.HasScope(scope) {
		return nil, fmt.Errorf("%w: need %s", ErrInsufficientScope, scope)
	}
	return tok, nil
}
