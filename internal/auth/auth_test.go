package auth

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func newTestService(t *testing.T) *Service {
	t.Helper()
	s := NewService(time.Hour)
	s.RegisterProvider("orcid")
	s.RegisterProvider("uchicago")
	s.RegisterClient("dlhub", "DLHub Management Service", "dlhub:all", "dlhub:publish")
	s.RegisterClient("transfer", "Globus Transfer", "transfer:all")
	return s
}

func TestAuthenticateHappyPath(t *testing.T) {
	s := newTestService(t)
	if _, err := s.RegisterUser("orcid", "rchard", "pw123", "Ryan Chard", "rc@anl.gov"); err != nil {
		t.Fatal(err)
	}
	tok, err := s.Authenticate("orcid", "rchard", "pw123", "dlhub", "dlhub:all")
	if err != nil {
		t.Fatal(err)
	}
	if tok.IdentityID != URN("orcid", "rchard") {
		t.Fatalf("wrong identity %s", tok.IdentityID)
	}
	got, err := s.Introspect(tok.Value)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasScope("dlhub:all") || got.HasScope("dlhub:publish") {
		t.Fatalf("scopes wrong: %v", got.Scopes)
	}
}

func TestAuthenticateFailures(t *testing.T) {
	s := newTestService(t)
	s.RegisterUser("orcid", "u", "right", "U", "u@x") //nolint:errcheck

	if _, err := s.Authenticate("nope", "u", "right", "dlhub"); !errors.Is(err, ErrUnknownProvider) {
		t.Fatalf("want unknown provider, got %v", err)
	}
	if _, err := s.Authenticate("orcid", "u", "wrong", "dlhub"); !errors.Is(err, ErrBadCredentials) {
		t.Fatalf("want bad credentials, got %v", err)
	}
	if _, err := s.Authenticate("orcid", "ghost", "x", "dlhub"); !errors.Is(err, ErrBadCredentials) {
		t.Fatalf("want bad credentials for unknown user, got %v", err)
	}
	if _, err := s.Authenticate("orcid", "u", "right", "ghost-client"); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("want unknown client, got %v", err)
	}
	if _, err := s.Authenticate("orcid", "u", "right", "dlhub", "transfer:all"); !errors.Is(err, ErrInsufficientScope) {
		t.Fatalf("want insufficient scope, got %v", err)
	}
}

func TestTokenExpiry(t *testing.T) {
	s := newTestService(t)
	s.RegisterUser("orcid", "u", "pw", "U", "u@x") //nolint:errcheck
	now := time.Now()
	s.SetClock(func() time.Time { return now })
	tok, err := s.Authenticate("orcid", "u", "pw", "dlhub", "dlhub:all")
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Hour)
	if _, err := s.Introspect(tok.Value); !errors.Is(err, ErrExpiredToken) {
		t.Fatalf("want expired, got %v", err)
	}
}

func TestIntrospectGarbage(t *testing.T) {
	s := newTestService(t)
	if _, err := s.Introspect("agt_garbage"); !errors.Is(err, ErrInvalidToken) {
		t.Fatalf("want invalid token, got %v", err)
	}
}

func TestLinkedIdentitiesTransitive(t *testing.T) {
	s := newTestService(t)
	a, _ := s.RegisterUser("orcid", "a", "x", "A", "")
	b, _ := s.RegisterUser("uchicago", "b", "x", "B", "")
	c, _ := s.RegisterUser("orcid", "c", "x", "C", "")
	if err := s.LinkIdentities(a.ID, b.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.LinkIdentities(b.ID, c.ID); err != nil {
		t.Fatal(err)
	}
	got := s.LinkedIdentities(a.ID)
	if len(got) != 3 {
		t.Fatalf("transitive closure should contain 3 identities, got %v", got)
	}
	if err := s.LinkIdentities(a.ID, "urn:identity:orcid:ghost"); !errors.Is(err, ErrUnknownIdentity) {
		t.Fatalf("linking unknown identity should fail, got %v", err)
	}
}

func TestDependentTokens(t *testing.T) {
	s := newTestService(t)
	s.RegisterUser("orcid", "u", "pw", "U", "") //nolint:errcheck
	parent, _ := s.Authenticate("orcid", "u", "pw", "dlhub", "dlhub:all")

	dep, err := s.DependentToken(parent.Value, "transfer", "transfer:all")
	if err != nil {
		t.Fatal(err)
	}
	if dep.IdentityID != parent.IdentityID {
		t.Fatal("dependent token should act as the same user")
	}
	if dep.ClientID != "transfer" {
		t.Fatal("dependent token should target downstream client")
	}

	if _, err := s.DependentToken(parent.Value, "transfer", "dlhub:all"); !errors.Is(err, ErrInsufficientScope) {
		t.Fatalf("scope not defined downstream should fail, got %v", err)
	}
	if _, err := s.DependentToken("agt_bogus", "transfer", "transfer:all"); !errors.Is(err, ErrInvalidToken) {
		t.Fatalf("bogus parent should fail, got %v", err)
	}

	// Revoking the parent revokes the dependent token too.
	s.Revoke(parent.Value)
	if _, err := s.Introspect(dep.Value); !errors.Is(err, ErrInvalidToken) {
		t.Fatalf("dependent token should be revoked with parent, got %v", err)
	}
}

func TestGroupsAndPrincipals(t *testing.T) {
	s := newTestService(t)
	u, _ := s.RegisterUser("orcid", "u", "pw", "U", "")
	s.CreateGroup("candle-testers")
	if err := s.AddToGroup("candle-testers", u.ID); err != nil {
		t.Fatal(err)
	}
	if !s.InGroup("candle-testers", u.ID) {
		t.Fatal("user should be in group")
	}

	prins := s.Principals(u.ID)
	want := map[string]bool{
		PublicPrincipal:            false,
		u.ID:                       false,
		GroupURN("candle-testers"): false,
	}
	for _, p := range prins {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Fatalf("principal %s missing from %v", k, prins)
		}
	}

	if err := s.RemoveFromGroup("candle-testers", u.ID); err != nil {
		t.Fatal(err)
	}
	if s.InGroup("candle-testers", u.ID) {
		t.Fatal("user should be removed")
	}
	if err := s.AddToGroup("ghost", u.ID); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("unknown group should fail, got %v", err)
	}
	if err := s.AddToGroup("candle-testers", "urn:identity:x:ghost"); !errors.Is(err, ErrUnknownIdentity) {
		t.Fatalf("unknown identity should fail, got %v", err)
	}
}

func TestPrincipalsIncludeLinkedIdentityGroups(t *testing.T) {
	s := newTestService(t)
	a, _ := s.RegisterUser("orcid", "a", "x", "A", "")
	b, _ := s.RegisterUser("uchicago", "b", "x", "B", "")
	s.LinkIdentities(a.ID, b.ID) //nolint:errcheck
	s.CreateGroup("g")
	s.AddToGroup("g", b.ID) //nolint:errcheck

	// a logs in, but group membership came through linked identity b.
	prins := s.Principals(a.ID)
	found := false
	for _, p := range prins {
		if p == GroupURN("g") {
			found = true
		}
	}
	if !found {
		t.Fatalf("linked identity's group missing: %v", prins)
	}
}

func TestAuthorizeMiddleware(t *testing.T) {
	s := newTestService(t)
	s.RegisterUser("orcid", "u", "pw", "U", "") //nolint:errcheck
	tok, _ := s.Authenticate("orcid", "u", "pw", "dlhub", "dlhub:all")

	if _, err := s.Authorize("Bearer "+tok.Value, "dlhub:all"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Authorize(tok.Value, "dlhub:all"); err != nil {
		t.Fatal("bare token should also work")
	}
	if _, err := s.Authorize("Bearer "+tok.Value, "dlhub:publish"); !errors.Is(err, ErrInsufficientScope) {
		t.Fatalf("missing scope should fail, got %v", err)
	}
}

func TestRegisterUserUnknownProvider(t *testing.T) {
	s := NewService(time.Hour)
	if _, err := s.RegisterUser("ghost", "u", "p", "U", ""); !errors.Is(err, ErrUnknownProvider) {
		t.Fatalf("want unknown provider, got %v", err)
	}
}

// Property: issued token values are unique and introspectable until
// revoked.
func TestTokenUniquenessProperty(t *testing.T) {
	s := newTestService(t)
	s.RegisterUser("orcid", "u", "pw", "U", "") //nolint:errcheck
	seen := map[string]bool{}
	f := func(_ uint8) bool {
		tok, err := s.Authenticate("orcid", "u", "pw", "dlhub", "dlhub:all")
		if err != nil || seen[tok.Value] {
			return false
		}
		seen[tok.Value] = true
		_, err = s.Introspect(tok.Value)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
