package auth

import (
	"sort"
	"sync"
)

// Tenancy. The paper's service brokers authentication for many identity
// providers and shares models across user groups; a Tenant is the
// accounting unit layered on top of that identity graph: the thing
// quotas, rate limits, and fair-share dequeue weights attach to.
// Identities map many-to-one onto tenants (a research group's members
// all bill to one tenant); identities with no mapping — including every
// unauthenticated caller — belong to the anonymous tenant, which has no
// quota, so the no-tenant serving path behaves exactly as before
// tenancy existed.

// AnonymousTenantID names the catch-all tenant for unmapped and
// unauthenticated identities. On the data plane it is carried as the
// empty tag ("" — the broker's default lane, omitted from task
// records), and rendered under this name in stats.
const AnonymousTenantID = "anonymous"

// Priority classes for weighted-fair dequeue. The weight is the DRR
// quantum: per round-robin visit, a lane may dequeue weight messages
// before yielding to the next lane.
const (
	PriorityHigh   = "high"
	PriorityNormal = "normal"
	PriorityLow    = "low"
)

// PriorityWeight maps a priority class to its dequeue weight. Unknown
// or empty classes get the normal weight.
func PriorityWeight(class string) int {
	switch class {
	case PriorityHigh:
		return 4
	case PriorityLow:
		return 1
	default:
		return 2
	}
}

// ValidPriority reports whether class names a known priority class
// ("" is accepted and means normal).
func ValidPriority(class string) bool {
	switch class {
	case "", PriorityHigh, PriorityNormal, PriorityLow:
		return true
	}
	return false
}

// Quota bounds one tenant's use of the serving path. Zero values mean
// unlimited; a tenant with the zero Quota is admitted exactly like the
// pre-tenancy path.
//
// Quotas are durable policy, not runtime state: the Management Service
// logs every SetQuota (and identity binding) to its WAL and folds the
// registry into checkpoints, so a -data-dir server restarts with the
// same quotas it crashed with (internal/core/durable.go).
type Quota struct {
	// MaxInFlight caps the tenant's concurrent reserved runs across
	// all servables (0 = unlimited). Exceeding it is a quota_exceeded
	// rejection, distinct from the servable's overloaded bound.
	MaxInFlight int
	// RatePerSec is the sustained admission rate (token bucket with a
	// one-second burst; 0 = unlimited).
	RatePerSec float64
	// Priority selects the dequeue weight class: high|normal|low
	// ("" = normal).
	Priority string
}

// Tenant is a named quota holder.
type Tenant struct {
	ID    string
	Name  string
	Quota Quota
	// HasQuota distinguishes a tenant whose quota was explicitly set
	// (SetQuota — an operator decision worth persisting) from a record
	// auto-created by Bind that merely inherits the open default.
	HasQuota bool
}

// TenantRegistry maps identities to tenants and holds each tenant's
// quota spec. It is safe for concurrent use and deliberately stands
// apart from Service so the core can enforce quotas even when it runs
// without an auth service (open mode).
type TenantRegistry struct {
	mu         sync.RWMutex
	tenants    map[string]Tenant
	byIdentity map[string]string // identity URN → tenant ID
}

// NewTenantRegistry returns an empty registry.
func NewTenantRegistry() *TenantRegistry {
	return &TenantRegistry{
		tenants:    map[string]Tenant{},
		byIdentity: map[string]string{},
	}
}

// SetQuota creates or updates a tenant's quota spec and returns the
// resulting tenant record.
func (r *TenantRegistry) SetQuota(id string, q Quota) Tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[id]
	if !ok {
		t = Tenant{ID: id, Name: id}
	}
	t.Quota = q
	t.HasQuota = true
	r.tenants[id] = t
	return t
}

// Install upserts a tenant record verbatim — the snapshot-restore and
// WAL-replay primitive. Unlike SetQuota it preserves the record's
// HasQuota flag as logged.
func (r *TenantRegistry) Install(t Tenant) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tenants[t.ID] = t
}

// Snapshot copies the registry for serialization: every tenant record
// (sorted by ID) and every identity→tenant binding.
func (r *TenantRegistry) Snapshot() ([]Tenant, map[string]string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ts := make([]Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].ID < ts[j].ID })
	binds := make(map[string]string, len(r.byIdentity))
	for id, tid := range r.byIdentity {
		binds[id] = tid
	}
	return ts, binds
}

// Get returns the tenant record for id.
func (r *TenantRegistry) Get(id string) (Tenant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tenants[id]
	return t, ok
}

// Bind maps an identity URN onto a tenant, creating the tenant record
// if it does not exist yet.
func (r *TenantRegistry) Bind(identityID, tenantID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tenants[tenantID]; !ok {
		r.tenants[tenantID] = Tenant{ID: tenantID, Name: tenantID}
	}
	r.byIdentity[identityID] = tenantID
}

// TenantOf resolves an identity to its tenant ID, or "" (anonymous)
// when unmapped.
func (r *TenantRegistry) TenantOf(identityID string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byIdentity[identityID]
}

// List returns every tenant record, sorted by ID.
func (r *TenantRegistry) List() []Tenant {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Tenants exposes the service's tenant registry, creating it on first
// use.
func (s *Service) Tenants() *TenantRegistry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tenants == nil {
		s.tenants = NewTenantRegistry()
	}
	return s.tenants
}
