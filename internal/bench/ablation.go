package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// AblationCoalescing evaluates the adaptive request-coalescing
// extension (the paper's §V-B3 future work) under concurrent load:
// many independent clients issuing single synchronous requests, with
// the Management Service either dispatching each alone (the paper's
// baseline behaviour) or coalescing them into adaptive micro-batches.
func AblationCoalescing(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	tb, err := NewTestbed(Options{WAN: true})
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	ids, err := tb.PublishPaperServables(core.Anonymous, 4, cfg.Seed)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "Ablation: adaptive request coalescing under concurrent single-request load",
		Headers: []string{"servable", "clients", "mode", "p50 request (ms)", "p95 (ms)", "throughput (req/s)"},
	}
	gen := newInputGen(cfg.Seed)
	clients := 32
	perClient := cfg.Requests / 4
	if perClient < 5 {
		perClient = 5
	}

	for _, name := range []string{"matminer-util", "cifar10"} {
		for _, mode := range []string{"off", "adaptive"} {
			if mode == "adaptive" {
				tb.MS.EnableCoalescing(ids[name], core.BatchPolicy{
					MaxBatch: 32, MaxDelay: 25 * time.Millisecond, Adaptive: true,
				})
			} else {
				tb.MS.DisableCoalescing(ids[name])
			}
			lat := metrics.NewSeries("")
			start := time.Now()
			var wg sync.WaitGroup
			var firstErr error
			var errMu sync.Mutex
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					g := newInputGen(cfg.Seed + int64(c))
					for i := 0; i < perClient; i++ {
						t0 := time.Now()
						_, err := tb.MS.RunCoalesced(context.Background(), core.Anonymous, ids[name], g.forServable(name), core.RunOptions{NoMemo: true})
						if err != nil {
							errMu.Lock()
							if firstErr == nil {
								firstErr = err
							}
							errMu.Unlock()
							return
						}
						lat.Add(time.Since(t0))
					}
				}(c)
			}
			wg.Wait()
			if firstErr != nil {
				return nil, firstErr
			}
			makespan := time.Since(start)
			st := lat.Stats()
			tput := metrics.Throughput(clients*perClient, makespan)
			t.Add(name, fmt.Sprint(clients), mode, msDur(st.Median), msDur(st.P95), fmt.Sprintf("%.0f", tput))
			cfg.logf("ablation: %-16s mode=%-8s p50 %sms p95 %sms throughput %.0f/s",
				name, mode, msDur(st.Median), msDur(st.P95), tput)
		}
	}
	_ = gen
	t.Note("%d clients x %d requests each; coalescing amortizes WAN + dispatch across concurrent callers", clients, perClient)
	t.Note("extension beyond the paper: §V-B3 names adaptive batching as future work")
	return t, nil
}
