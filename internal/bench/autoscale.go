package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// AblationAutoscale reproduces the Fig. 7 replica sweep hands-free: the
// paper scales replicas by hand and reports throughput per point; here
// the autoscaler watches demand and converges the replica count itself
// while a synthetic load ramp runs. Three passes over the same ramp:
//
//   - fixed-1:   one replica, no autoscaler — the floor.
//   - fixed-max: hand-scaled to the cap before the ramp — the paper's
//     best manual configuration, the throughput bar to meet.
//   - autoscale: starts at one replica with the controller enabled;
//     replicas must converge upward under load and the steady-phase
//     throughput must land near the hand-scaled run.
//
// The run fails (error, not just a table row) if the autoscaler never
// moves off one replica — convergence is the experiment.
func AblationAutoscale(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	// WAN off, as in Fig. 7: the metric is serving throughput, not WAN
	// transfer.
	tb, err := NewTestbed(Options{WAN: false, AutoscaleInterval: 100 * time.Millisecond})
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	ids, err := tb.PublishPaperServables(core.Anonymous, 1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	const model = "cifar10"
	id := ids[model]
	const maxReplicas = 8
	clients := 16
	perClient := cfg.Requests / 2
	if perClient < 20 {
		perClient = 20
	}

	t := &Table{
		Title:   "Ablation: load-driven replica autoscaling vs hand-scaled fixed replicas (Fig. 7, hands-free)",
		Headers: []string{"mode", "replicas start", "replicas end", "p50 request (ms)", "p95 (ms)", "throughput (req/s)", "scale ups/downs"},
	}

	// drive floods the servable with clients×perClient single requests
	// and returns (latency series, makespan).
	drive := func() (*metrics.Series, time.Duration, error) {
		gen := newInputGen(cfg.Seed)
		inputs := make([]any, 64)
		for i := range inputs {
			inputs[i] = gen.forServable(model)
		}
		lat := metrics.NewSeries("")
		var latMu sync.Mutex
		var firstErr atomic.Value
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					t0 := time.Now()
					_, err := tb.MS.Run(context.Background(), core.Anonymous, id, inputs[(c*perClient+i)%len(inputs)], core.RunOptions{NoMemo: true, Timeout: 10 * time.Minute})
					if err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					latMu.Lock()
					lat.Add(time.Since(t0))
					latMu.Unlock()
				}
			}(c)
		}
		wg.Wait()
		if err, ok := firstErr.Load().(error); ok {
			return nil, 0, err
		}
		return lat, time.Since(start), nil
	}

	addRow := func(mode string, repStart, repEnd int, lat *metrics.Series, makespan time.Duration, ups, downs uint64) float64 {
		st := lat.Stats()
		tput := metrics.Throughput(clients*perClient, makespan)
		t.Add(mode, fmt.Sprint(repStart), fmt.Sprint(repEnd), msDur(st.Median), msDur(st.P95),
			fmt.Sprintf("%.0f", tput), fmt.Sprintf("%d/%d", ups, downs))
		cfg.logf("autoscale: %-10s replicas %d -> %d  p50 %sms  throughput %.0f/s", mode, repStart, repEnd, msDur(st.Median), tput)
		return tput
	}

	// Pass 1: fixed single replica (the floor Fig. 7 starts from).
	lat, makespan, err := drive()
	if err != nil {
		return nil, fmt.Errorf("autoscale fixed-1: %w", err)
	}
	addRow("fixed-1", 1, tb.ExecutorReplicas("parsl", id), lat, makespan, 0, 0)

	// Pass 2: hand-scaled to the cap, as the paper's operator would.
	if err := tb.MS.Scale(context.Background(), core.Anonymous, id, maxReplicas, "parsl"); err != nil {
		return nil, err
	}
	lat, makespan, err = drive()
	if err != nil {
		return nil, fmt.Errorf("autoscale fixed-%d: %w", maxReplicas, err)
	}
	fixedTput := addRow(fmt.Sprintf("fixed-%d", maxReplicas), maxReplicas, tb.ExecutorReplicas("parsl", id), lat, makespan, 0, 0)

	// Pass 3: back to one replica, controller on, same ramp hands-free.
	if err := tb.MS.Scale(context.Background(), core.Anonymous, id, 1, "parsl"); err != nil {
		return nil, err
	}
	if err := tb.MS.SetAutoscalePolicy(core.Anonymous, id, core.AutoscalePolicy{
		Enabled:           true,
		MinReplicas:       1,
		MaxReplicas:       maxReplicas,
		TargetLoad:        2,
		ScaleUpCooldown:   200 * time.Millisecond,
		ScaleDownCooldown: 2 * time.Second,
	}); err != nil {
		return nil, err
	}
	lat, makespan, err = drive()
	if err != nil {
		return nil, fmt.Errorf("autoscale run: %w", err)
	}
	endReplicas := tb.ExecutorReplicas("parsl", id)
	status, err := tb.MS.AutoscaleStatus(core.Anonymous, id)
	if err != nil {
		return nil, err
	}
	autoTput := addRow("autoscale", 1, endReplicas, lat, makespan, status.ScaleUps, status.ScaleDowns)

	if endReplicas <= 1 {
		return nil, fmt.Errorf("autoscale: controller never scaled up (still %d replica under %d concurrent clients)", endReplicas, clients)
	}

	t.Note("%d clients x %d requests per pass, %s, memoization off, batch size 1", clients, perClient, model)
	t.Note("autoscale pass starts at 1 replica; controller target-load 2, up-cooldown 200ms, cap %d", maxReplicas)
	t.Note("steady throughput: autoscale %.0f/s vs hand-scaled %.0f/s (ramp tax is the convergence window)", autoTput, fixedTput)
	return t, nil
}
