package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/servable"
	"repro/internal/simconst"
)

func init() {
	simconst.Scale = 1000
}

func TestTablePrinting(t *testing.T) {
	tab := &Table{Title: "T", Headers: []string{"a", "bb"}}
	tab.Add("x", "y")
	tab.Add("longer", "z")
	tab.Note("n=%d", 5)
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== T ==", "longer", "note: n=5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFeatureTables(t *testing.T) {
	t1 := Table1()
	if len(t1.Rows) != 8 || len(t1.Headers) != 6 {
		t.Fatalf("Table I dimensions wrong: %dx%d", len(t1.Rows), len(t1.Headers))
	}
	t2 := Table2()
	if len(t2.Rows) != 8 || len(t2.Headers) != 6 {
		t.Fatalf("Table II dimensions wrong: %dx%d", len(t2.Rows), len(t2.Headers))
	}
	// The DLHub serving column must claim workflows + transformations —
	// the two capabilities this repo uniquely implements among the five.
	for _, row := range t2.Rows {
		if row[0] == "Workflows" && row[5] != "Yes" {
			t.Fatal("DLHub must support workflows")
		}
		if row[0] == "Training supported" && row[5] != "No" {
			t.Fatal("DLHub does not train (matches paper)")
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.Requests != 100 || c.Fig7N != 1000 || len(c.Fig7Replicas) == 0 || c.Seed == 0 {
		t.Fatalf("defaults incomplete: %+v", c)
	}
	// Explicit values survive.
	c2 := Config{Requests: 7, Fig7N: 9}.Defaults()
	if c2.Requests != 7 || c2.Fig7N != 9 {
		t.Fatal("defaults must not override explicit values")
	}
	p := PaperScale()
	if p.Fig7N != 5000 || p.Requests != 100 {
		t.Fatalf("paper scale wrong: %+v", p)
	}
}

func TestInputGenShapes(t *testing.T) {
	g := newInputGen(1)
	if img := g.forServable("cifar10").([]any); len(img) != 32*32*3 {
		t.Fatalf("cifar input wrong: %d", len(img))
	}
	if img := g.forServable("inception").([]any); len(img) != 64*64*3 {
		t.Fatalf("inception input wrong: %d", len(img))
	}
	if _, ok := g.forServable("matminer-util").(string); !ok {
		t.Fatal("util input should be a formula string")
	}
	if m := g.forServable("matminer-featurize").(map[string]any); len(m) != 2 {
		t.Fatal("featurize input should be a fraction map")
	}
	if feats := g.forServable("matminer-model").([]any); len(feats) < 70 {
		t.Fatal("model input should be a feature vector")
	}
}

func TestTestbedPublishAndServe(t *testing.T) {
	tb, err := NewTestbed(Options{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	pkg := servable.NoopPackage()
	id, err := tb.MS.Publish(context.Background(), core.Anonymous, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.MS.Deploy(context.Background(), core.Anonymous, id, 1, "parsl"); err != nil {
		t.Fatal(err)
	}
	res, err := tb.MS.Run(context.Background(), core.Anonymous, id, "x", core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "hello world" {
		t.Fatalf("wrong output %v", res.Output)
	}
}

func TestTestbedUnknownExecutor(t *testing.T) {
	if _, err := NewTestbed(Options{Nodes: 2, Executors: []string{"spark"}}); err == nil {
		t.Fatal("unknown executor should fail assembly")
	}
}

func TestPublishPaperServables(t *testing.T) {
	tb, err := NewTestbed(Options{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	ids, err := tb.PublishPaperServables(core.Anonymous, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 6 {
		t.Fatalf("want 6 servables, got %d", len(ids))
	}
	// One of each is runnable end to end.
	res, err := tb.MS.Run(context.Background(), core.Anonymous, ids["matminer-util"], "NaCl", core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m := res.Output.(map[string]any); len(m) != 2 {
		t.Fatalf("NaCl wrong: %v", m)
	}
}
