package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// AblationServiceCache evaluates the service-layer result cache (an
// extension beyond the paper's TM-side memoization, §V-B5): concurrent
// clients replay a working set of repeated inputs against a WAN-shaped
// deployment, with the Management Service either dispatching every
// request over the 20.7 ms WAN (cache off) or answering repeats
// locally (cache on). Singleflight also collapses concurrent identical
// requests into one dispatched task.
func AblationServiceCache(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	tb, err := NewTestbed(Options{WAN: true, ServiceCache: true})
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	ids, err := tb.PublishPaperServables(core.Anonymous, 4, cfg.Seed)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "Ablation: service-layer result cache under repeated-input load",
		Headers: []string{"servable", "clients", "mode", "p50 request (ms)", "p95 (ms)", "throughput (req/s)", "hit rate"},
	}
	clients := 16
	perClient := cfg.Requests / 2
	if perClient < 10 {
		perClient = 10
	}
	// Working set: a handful of distinct inputs replayed by every
	// client, the shape of a popular model's hot traffic.
	const workingSet = 8

	for _, name := range []string{"matminer-util", "cifar10"} {
		inputs := make([]any, workingSet)
		for i := range inputs {
			g := newInputGen(cfg.Seed + int64(i))
			inputs[i] = g.forServable(name)
		}
		for _, mode := range []string{"off", "on"} {
			tb.MS.FlushCache()
			before := tb.MS.CacheStats()
			lat := metrics.NewSeries("")
			start := time.Now()
			var wg sync.WaitGroup
			var firstErr error
			var errMu sync.Mutex
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := 0; i < perClient; i++ {
						opts := core.RunOptions{NoCache: mode == "off"}
						t0 := time.Now()
						_, err := tb.MS.Run(context.Background(), core.Anonymous, ids[name], inputs[(c+i)%workingSet], opts)
						if err != nil {
							errMu.Lock()
							if firstErr == nil {
								firstErr = err
							}
							errMu.Unlock()
							return
						}
						lat.Add(time.Since(t0))
					}
				}(c)
			}
			wg.Wait()
			if firstErr != nil {
				return nil, firstErr
			}
			makespan := time.Since(start)
			st := lat.Stats()
			after := tb.MS.CacheStats()
			total := clients * perClient
			hits := (after.Hits - before.Hits) + (after.Collapsed - before.Collapsed)
			tput := metrics.Throughput(total, makespan)
			t.Add(name, fmt.Sprint(clients), mode, msDur(st.Median), msDur(st.P95),
				fmt.Sprintf("%.0f", tput), fmt.Sprintf("%.0f%%", 100*float64(hits)/float64(total)))
			cfg.logf("cache: %-16s mode=%-3s p50 %sms p95 %sms throughput %.0f/s hits %d/%d",
				name, mode, msDur(st.Median), msDur(st.P95), tput, hits, total)
		}
	}
	t.Note("%d clients x %d requests over a %d-input working set; WAN RTT %s-shaped", clients, perClient, workingSet, "20.7ms")
	t.Note("extension beyond the paper: the MS answers repeats before routing; TM memoization (§V-B5) still covers per-site repeats")
	return t, nil
}
