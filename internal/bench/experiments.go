package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/matsci"
	"repro/internal/metrics"
	"repro/internal/servable"
)

// Config scales the experiments. Defaults reproduce the paper's shapes
// in minutes on a laptop; PaperScale() restores the paper's counts.
type Config struct {
	// Requests per servable for Figs. 3, 4 and 8 (paper: 100).
	Requests int
	// Fig5Sizes are the request counts swept in Fig. 5 (paper: 1-100).
	Fig5Sizes []int
	// Fig6Sizes are the batch sizes swept in Fig. 6 (paper: up to 10,000).
	Fig6Sizes []int
	// Fig7N is the inference count per replica point (paper: 5,000).
	Fig7N int
	// Fig7Replicas is the replica sweep (paper: 1-32).
	Fig7Replicas []int
	// Seed for inputs and model weights.
	Seed int64
	// Out receives progress logging (nil = silent).
	Out io.Writer
}

// Defaults fills unset fields with laptop-scale values.
func (c Config) Defaults() Config {
	if c.Requests <= 0 {
		c.Requests = 100
	}
	if len(c.Fig5Sizes) == 0 {
		c.Fig5Sizes = []int{1, 5, 10, 25, 50, 100}
	}
	if len(c.Fig6Sizes) == 0 {
		c.Fig6Sizes = []int{250, 500, 1000, 2000}
	}
	if c.Fig7N <= 0 {
		c.Fig7N = 1000
	}
	if len(c.Fig7Replicas) == 0 {
		c.Fig7Replicas = []int{1, 2, 4, 8, 16, 24, 32}
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// PaperScale returns the paper's full experiment sizes (§V-B).
func PaperScale() Config {
	return Config{
		Requests:     100,
		Fig5Sizes:    []int{1, 5, 10, 25, 50, 75, 100},
		Fig6Sizes:    []int{1000, 2500, 5000, 7500, 10000},
		Fig7N:        5000,
		Fig7Replicas: []int{1, 2, 4, 8, 12, 16, 20, 24, 28, 32},
		Seed:         42,
	}
}

func (c Config) logf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format+"\n", args...)
	}
}

// inputs generates per-servable request payloads. Fig. 3 uses "fixed
// input data"; sweeps that must dodge memoization use varied inputs.
type inputGen struct {
	rng *rand.Rand
}

func newInputGen(seed int64) *inputGen { return &inputGen{rng: rand.New(rand.NewSource(seed))} }

func (g *inputGen) image(n int) []any {
	img := make([]any, n)
	for i := range img {
		img[i] = g.rng.Float64()
	}
	return img
}

// forServable builds one input for the named paper servable.
func (g *inputGen) forServable(name string) any {
	switch name {
	case "noop":
		return "hello"
	case "inception":
		return g.image(64 * 64 * 3)
	case "cifar10":
		return g.image(32 * 32 * 3)
	case "matminer-util":
		formulas := []string{"NaCl", "SiO2", "Fe2O3", "MgAl2O4", "TiO2", "BaTiO3"}
		return formulas[g.rng.Intn(len(formulas))]
	case "matminer-featurize":
		return map[string]any{"Na": 0.5, "Cl": 0.5}
	case "matminer-model":
		feats := matsci.Featurize(matsci.Composition{"Na": 1, "Cl": 1})
		out := make([]any, len(feats))
		for i, f := range feats {
			out[i] = f
		}
		return out
	default:
		return "x"
	}
}

// fig3Order is the servable order of Fig. 3's x-axis.
var fig3Order = []string{"noop", "matminer-util", "matminer-model", "matminer-featurize", "cifar10", "inception"}

func msDur(d time.Duration) string { return fmt.Sprintf("%.2f", metrics.Millis(d)) }

// Fig3 reproduces "Servable Performance": request, invocation and
// inference times for the six servables, 100 fixed-input requests each,
// memoization disabled, batch size one, sequential submission.
func Fig3(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	tb, err := NewTestbed(Options{WAN: true})
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	cfg.logf("fig3: publishing + deploying 6 servables")
	ids, err := tb.PublishPaperServables(core.Anonymous, 1, cfg.Seed)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Fig. 3: Request, invocation, and inference times for six servables (ms)",
		Headers: []string{"servable", "inference p50", "p5", "p95",
			"invocation p50", "p5", "p95", "request p50", "p5", "p95"},
	}
	gen := newInputGen(cfg.Seed)
	for _, name := range fig3Order {
		input := gen.forServable(name) // fixed per servable
		inf := metrics.NewSeries("inference")
		inv := metrics.NewSeries("invocation")
		req := metrics.NewSeries("request")
		// Warm-up request (interpreter import, connection setup).
		if _, err := tb.MS.Run(context.Background(), core.Anonymous, ids[name], input, core.RunOptions{NoMemo: true}); err != nil {
			return nil, fmt.Errorf("fig3 %s warmup: %w", name, err)
		}
		for i := 0; i < cfg.Requests; i++ {
			res, err := tb.MS.Run(context.Background(), core.Anonymous, ids[name], input, core.RunOptions{NoMemo: true})
			if err != nil {
				return nil, fmt.Errorf("fig3 %s: %w", name, err)
			}
			inf.Add(time.Duration(res.InferenceMicros) * time.Microsecond)
			inv.Add(time.Duration(res.InvocationMicros) * time.Microsecond)
			req.Add(time.Duration(res.RequestMicros) * time.Microsecond)
		}
		i, v, r := inf.Stats(), inv.Stats(), req.Stats()
		t.Add(name, msDur(i.Median), msDur(i.P5), msDur(i.P95),
			msDur(v.Median), msDur(v.P5), msDur(v.P95),
			msDur(r.Median), msDur(r.P5), msDur(r.P95))
		cfg.logf("fig3: %-18s inference %s  invocation %s  request %s",
			name, msDur(i.Median), msDur(v.Median), msDur(r.Median))
	}
	t.Note("%d fixed-input requests per servable, memoization off, batch size 1, sequential (§V-B1)", cfg.Requests)
	t.Note("expected shape: request ≈ invocation + ~20.7ms WAN RTT; image servables pay extra input transfer")
	return t, nil
}

// Fig4 reproduces "Memoization": invocation and request times with
// memoization enabled vs disabled on repeated identical inputs.
func Fig4(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	tb, err := NewTestbed(Options{WAN: true, Memoize: true})
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	cfg.logf("fig4: publishing + deploying 6 servables")
	ids, err := tb.PublishPaperServables(core.Anonymous, 1, cfg.Seed)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "Fig. 4: Performance impact of memoization (ms)",
		Headers: []string{"servable", "invocation off", "invocation on", "reduction %",
			"request off", "request on", "reduction %"},
	}
	gen := newInputGen(cfg.Seed)
	for _, name := range fig3Order {
		input := gen.forServable(name)
		offInv := metrics.NewSeries("")
		offReq := metrics.NewSeries("")
		onInv := metrics.NewSeries("")
		onReq := metrics.NewSeries("")
		if _, err := tb.MS.Run(context.Background(), core.Anonymous, ids[name], input, core.RunOptions{NoMemo: true}); err != nil {
			return nil, err
		}
		for i := 0; i < cfg.Requests; i++ {
			res, err := tb.MS.Run(context.Background(), core.Anonymous, ids[name], input, core.RunOptions{NoMemo: true})
			if err != nil {
				return nil, err
			}
			offInv.Add(time.Duration(res.InvocationMicros) * time.Microsecond)
			offReq.Add(time.Duration(res.RequestMicros) * time.Microsecond)
		}
		// Prime the cache, then measure hits.
		if _, err := tb.MS.Run(context.Background(), core.Anonymous, ids[name], input, core.RunOptions{}); err != nil {
			return nil, err
		}
		for i := 0; i < cfg.Requests; i++ {
			res, err := tb.MS.Run(context.Background(), core.Anonymous, ids[name], input, core.RunOptions{})
			if err != nil {
				return nil, err
			}
			if !res.Cached {
				return nil, fmt.Errorf("fig4 %s: expected cache hit", name)
			}
			onInv.Add(time.Duration(res.InvocationMicros) * time.Microsecond)
			onReq.Add(time.Duration(res.RequestMicros) * time.Microsecond)
		}
		oi, oni := offInv.Stats(), onInv.Stats()
		or, onr := offReq.Stats(), onReq.Stats()
		invRed := 100 * (1 - float64(oni.Median)/float64(oi.Median))
		reqRed := 100 * (1 - float64(onr.Median)/float64(or.Median))
		t.Add(name, msDur(oi.Median), msDur(oni.Median), fmt.Sprintf("%.1f", invRed),
			msDur(or.Median), msDur(onr.Median), fmt.Sprintf("%.1f", reqRed))
		cfg.logf("fig4: %-18s invocation %s -> %s (%.1f%%)  request %s -> %s (%.1f%%)",
			name, msDur(oi.Median), msDur(oni.Median), invRed, msDur(or.Median), msDur(onr.Median), reqRed)
	}
	t.Note("%d identical requests per mode; paper reports 95.3-99.8%% invocation and 24.3-95.4%% request reductions", cfg.Requests)
	return t, nil
}

// fig5Servables are the "three example servables" of Figs. 5-7's
// batching/scaling studies.
var fig5Servables = []string{"noop", "cifar10", "matminer-featurize"}

// Fig5 reproduces "Batching": total invocation time for n requests with
// and without batching.
func Fig5(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	tb, err := NewTestbed(Options{WAN: true})
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	cfg.logf("fig5: publishing + deploying servables (4 replicas each)")
	ids, err := tb.PublishPaperServables(core.Anonymous, 4, cfg.Seed)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "Fig. 5: Servable invocation time, with and without batching (ms total for n requests)",
		Headers: []string{"servable", "n", "unbatched", "batched", "speedup"},
	}
	gen := newInputGen(cfg.Seed)
	for _, name := range fig5Servables {
		for _, n := range cfg.Fig5Sizes {
			inputs := make([]any, n)
			for i := range inputs {
				inputs[i] = gen.forServable(name)
			}
			// Without batching: n sequential requests; sum invocation.
			var unbatched time.Duration
			for i := 0; i < n; i++ {
				res, err := tb.MS.Run(context.Background(), core.Anonymous, ids[name], inputs[i], core.RunOptions{NoMemo: true})
				if err != nil {
					return nil, err
				}
				unbatched += time.Duration(res.InvocationMicros) * time.Microsecond
			}
			// With batching: one batch task.
			res, err := tb.MS.RunBatch(context.Background(), core.Anonymous, ids[name], inputs, core.RunOptions{NoMemo: true})
			if err != nil {
				return nil, err
			}
			batched := time.Duration(res.InvocationMicros) * time.Microsecond
			speedup := float64(unbatched) / float64(batched)
			t.Add(name, fmt.Sprint(n), msDur(unbatched), msDur(batched), fmt.Sprintf("%.1fx", speedup))
			cfg.logf("fig5: %-18s n=%-4d unbatched %sms batched %sms (%.1fx)",
				name, n, msDur(unbatched), msDur(batched), speedup)
		}
	}
	t.Note("batching amortizes queue/dispatch overheads and runs items concurrently across 4 replicas (§V-B3)")
	return t, nil
}

// Fig6 reproduces "Invocation time vs. number of requests, with
// batching" — the roughly linear growth to large n.
func Fig6(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	// WAN off: the metric is invocation time at the Task Manager; an
	// in-process queue keeps input transfer off the measured path.
	tb, err := NewTestbed(Options{WAN: false})
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	cfg.logf("fig6: publishing + deploying servables (4 replicas each)")
	ids, err := tb.PublishPaperServables(core.Anonymous, 4, cfg.Seed)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "Fig. 6: Invocation time vs number of requests, with batching (ms)",
		Headers: []string{"servable", "n", "invocation", "ms/request"},
	}
	gen := newInputGen(cfg.Seed)
	for _, name := range fig5Servables {
		for _, n := range cfg.Fig6Sizes {
			inputs := make([]any, n)
			for i := range inputs {
				inputs[i] = gen.forServable(name)
			}
			// Split very large batches across several tasks to respect
			// frame limits; submit concurrently (total makespan).
			const chunk = 250
			start := time.Now()
			var wg sync.WaitGroup
			errs := make([]error, 0)
			var errMu sync.Mutex
			for off := 0; off < n; off += chunk {
				end := off + chunk
				if end > n {
					end = n
				}
				wg.Add(1)
				go func(part []any) {
					defer wg.Done()
					opts := core.RunOptions{NoMemo: true, Timeout: 30 * time.Minute}
					if _, err := tb.MS.RunBatch(context.Background(), core.Anonymous, ids[name], part, opts); err != nil {
						errMu.Lock()
						errs = append(errs, err)
						errMu.Unlock()
					}
				}(inputs[off:end])
			}
			wg.Wait()
			if len(errs) > 0 {
				return nil, errs[0]
			}
			total := time.Since(start)
			t.Add(name, fmt.Sprint(n), msDur(total), fmt.Sprintf("%.3f", metrics.Millis(total)/float64(n)))
			cfg.logf("fig6: %-18s n=%-5d %sms (%.3f ms/req)", name, n, msDur(total), metrics.Millis(total)/float64(n))
		}
	}
	t.Note("expected shape: roughly linear in n (§V-B3 Fig. 6); ms/request stays ~constant per servable")
	return t, nil
}

// Fig7 reproduces "Scalability": time for N inferences vs replica
// count; Parsl executor, memoization off, batch size 1 per dispatch.
func Fig7(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	// WAN off: Fig. 7 reports "observed Task Manager throughput" — the
	// flood is submitted at the TM, not across the WAN.
	tb, err := NewTestbed(Options{WAN: false})
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	models := []string{"inception", "cifar10", "matminer-featurize"}
	cfg.logf("fig7: publishing + deploying 3 models")
	ids, err := tb.PublishPaperServables(core.Anonymous, 1, cfg.Seed)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   fmt.Sprintf("Fig. 7: Time to process %d inferences vs replicas (s)", cfg.Fig7N),
		Headers: []string{"model", "replicas", "makespan", "throughput (req/s)"},
	}
	gen := newInputGen(cfg.Seed)
	for _, name := range models {
		// Pre-generate distinct inputs (memoization is off anyway, but
		// varied inputs also defeat any lower-level caching).
		inputs := make([]any, cfg.Fig7N)
		for i := range inputs {
			inputs[i] = gen.forServable(name)
		}
		for _, replicas := range cfg.Fig7Replicas {
			if err := tb.MS.Scale(context.Background(), core.Anonymous, ids[name], replicas, "parsl"); err != nil {
				return nil, fmt.Errorf("fig7 scale %s to %d: %w", name, replicas, err)
			}
			// Flood the TM through concurrent batch chunks; makespan
			// covers all N completions ("observed Task Manager
			// throughput").
			const chunk = 100
			start := time.Now()
			var wg sync.WaitGroup
			var firstErr error
			var errMu sync.Mutex
			for off := 0; off < len(inputs); off += chunk {
				end := off + chunk
				if end > len(inputs) {
					end = len(inputs)
				}
				wg.Add(1)
				go func(part []any) {
					defer wg.Done()
					opts := core.RunOptions{NoMemo: true, Timeout: 30 * time.Minute}
					if _, err := tb.MS.RunBatch(context.Background(), core.Anonymous, ids[name], part, opts); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
					}
				}(inputs[off:end])
			}
			wg.Wait()
			if firstErr != nil {
				return nil, firstErr
			}
			makespan := time.Since(start)
			tput := metrics.Throughput(cfg.Fig7N, makespan)
			t.Add(name, fmt.Sprint(replicas), fmt.Sprintf("%.2f", makespan.Seconds()), fmt.Sprintf("%.0f", tput))
			cfg.logf("fig7: %-18s replicas=%-3d makespan %.2fs throughput %.0f/s", name, replicas, makespan.Seconds(), tput)
		}
		// Scale back down to free cluster capacity for the next model.
		if err := tb.MS.Scale(context.Background(), core.Anonymous, ids[name], 1, "parsl"); err != nil {
			return nil, err
		}
	}
	t.Note("expected shape: throughput rises with replicas then saturates — dispatch serialization and host")
	t.Note("CPU bound it; shorter tasks (featurize) benefit least from added replicas (§V-B4)")
	return t, nil
}

// fig8Systems are the serving configurations of Fig. 8.
type fig8System struct {
	label    string
	executor string // TM route
	memo     string // "", "dlhub", "clipper"
}

var fig8Systems = []fig8System{
	{"TFServing-gRPC", "tfserving-grpc", ""},
	{"TFServing-REST", "tfserving-rest", ""},
	{"SageMaker-TFServing-gRPC", "tfserving-grpc", ""},
	{"SageMaker-TFServing-REST", "tfserving-rest", ""},
	{"SageMaker-Flask", "sagemaker", ""},
	{"Clipper", "clipper", ""},
	{"Clipper (memoized)", "clipper", "clipper"},
	{"DLHub (Parsl)", "parsl", ""},
	{"DLHub (memoized)", "parsl", "dlhub"},
}

// Fig8 reproduces "Serving Comparison": CIFAR-10 and Inception served
// through every system, with and without memoization where supported.
func Fig8(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	tb, err := NewTestbed(Options{
		WAN:       true,
		Executors: []string{"tfserving-grpc", "tfserving-rest", "sagemaker", "clipper"},
	})
	if err != nil {
		return nil, err
	}
	defer tb.Close()

	models := []string{"cifar10", "inception"}
	pkgs, err := servable.PaperServables(cfg.Seed)
	if err != nil {
		return nil, err
	}
	ids := map[string]string{}
	for _, name := range models {
		id, err := tb.MS.Publish(context.Background(), core.Anonymous, pkgs[name])
		if err != nil {
			return nil, err
		}
		ids[name] = id
		// Deploy the model on every serving system. (SageMaker-TFS
		// shares the TFS deployment: the paper found SageMaker's
		// TFS-backed serving equivalent to TFS itself.)
		for _, route := range []string{"parsl", "tfserving-grpc", "tfserving-rest", "sagemaker", "clipper"} {
			cfg.logf("fig8: deploying %s on %s", name, route)
			if err := tb.MS.Deploy(context.Background(), core.Anonymous, id, 1, route); err != nil {
				return nil, fmt.Errorf("fig8 deploy %s on %s: %w", name, route, err)
			}
		}
	}

	t := &Table{
		Title:   "Fig. 8: Performance of serving systems on Inception and CIFAR-10 (ms)",
		Headers: []string{"system", "model", "invocation p50", "request p50"},
	}
	gen := newInputGen(cfg.Seed)
	for _, name := range models {
		input := gen.forServable(name) // fixed input: memo runs hit
		for _, sys := range fig8Systems {
			// Configure memoization for this pass.
			tb.TM.SetMemoize(sys.memo == "dlhub")
			if tb.Clipper != nil {
				tb.Clipper.SetCaching(sys.memo == "clipper")
			}
			noMemo := sys.memo != "dlhub"

			inv := metrics.NewSeries("")
			req := metrics.NewSeries("")
			// Warm-up (fills caches for the memoized passes).
			if _, err := tb.MS.Run(context.Background(), core.Anonymous, ids[name], input, core.RunOptions{Executor: sys.executor, NoMemo: noMemo}); err != nil {
				return nil, fmt.Errorf("fig8 %s/%s warmup: %w", sys.label, name, err)
			}
			for i := 0; i < cfg.Requests; i++ {
				res, err := tb.MS.Run(context.Background(), core.Anonymous, ids[name], input, core.RunOptions{Executor: sys.executor, NoMemo: noMemo})
				if err != nil {
					return nil, fmt.Errorf("fig8 %s/%s: %w", sys.label, name, err)
				}
				inv.Add(time.Duration(res.InvocationMicros) * time.Microsecond)
				req.Add(time.Duration(res.RequestMicros) * time.Microsecond)
			}
			iv, rq := inv.Stats(), req.Stats()
			t.Add(sys.label, name, msDur(iv.Median), msDur(rq.Median))
			cfg.logf("fig8: %-26s %-9s invocation %sms request %sms", sys.label, name, msDur(iv.Median), msDur(rq.Median))
		}
	}
	tb.TM.SetMemoize(false)
	t.Note("%d requests per configuration; fixed input so memoized passes hit (§V-B5)", cfg.Requests)
	t.Note("expected shape: TFS-gRPC < TFS-REST <= SM-TFS < SM-Flask ~ DLHub(Parsl);")
	t.Note("DLHub+memo ~1ms invocation (cache at TM) << Clipper+memo (cache in cluster)")
	return t, nil
}
