package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/servable"
)

// AblationPipeline compares the three pipeline execution modes over a
// two-site WAN deployment: the TM-local monolith (every step
// co-deployed on one Task Manager, one queue round trip), the
// service-orchestrated distributed engine (steps placed on DISJOINT
// sites, each step routed independently), and the distributed engine
// with a hot working set served from the per-step result cache. The
// distributed rows are the workload the pre-PR monolith could not run
// at all — the experiment errors if any mode fails.
func AblationPipeline(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	tb, err := NewTestbed(Options{WAN: true, ServiceCache: true})
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	tm2, err := tb.AddTM("cooley-tm-2", 4)
	if err != nil {
		return nil, err
	}
	if err := tb.MS.WaitForTM(2, 10*time.Second); err != nil {
		return nil, err
	}

	caller := core.Anonymous
	utilID, err := tb.MS.Publish(context.Background(), caller, servable.MatminerUtilPackage())
	if err != nil {
		return nil, err
	}
	featID, err := tb.MS.Publish(context.Background(), caller, servable.MatminerFeaturizePackage())
	if err != nil {
		return nil, err
	}
	pipe := &servable.Package{Doc: servable.PipelineDoc("formation-features", "Composition to Magpie features", []string{utilID, featID})}
	pipeID, err := tb.MS.Publish(context.Background(), caller, pipe)
	if err != nil {
		return nil, err
	}

	// Disjoint placement first: step 1 on cooley-tm-1, step 2 on
	// cooley-tm-2 — the distributed engine's home turf. The monolith
	// mode runs LAST because placement only grows: co-deploying step 2
	// on tm-1 re-enables the fast path permanently.
	if err := tb.MS.DeployTo(context.Background(), caller, utilID, 2, "parsl", "cooley-tm-1"); err != nil {
		return nil, err
	}
	if err := tb.MS.DeployTo(context.Background(), caller, featID, 2, "parsl", "cooley-tm-2"); err != nil {
		return nil, err
	}

	formulas := []string{
		"NaCl", "SiO2", "Fe2O3", "MgO", "Al2O3", "TiO2", "CaO", "ZnO",
		"CuO", "NiO", "FeO", "SrTiO3", "BaTiO3", "LiFePO4", "K2O", "Na2O",
	}

	t := &Table{
		Title: "Ablation: pipeline execution — monolith vs distributed vs cached prefix",
		Headers: []string{"mode", "sites", "p50 request (ms)", "p95 (ms)",
			"throughput (req/s)", "step-cache hit rate", "TM tasks/run"},
	}
	clients := 8
	perClient := cfg.Requests / clients
	if perClient < 5 {
		perClient = 5
	}
	total := clients * perClient

	runMode := func(mode string, sites string, opts core.RunOptions, workingSet int) error {
		tb.MS.FlushCache()
		cacheBefore := tb.MS.CacheStats()
		done1Before, _ := tb.TM.Stats()
		done2Before, _ := tm2.Stats()
		lat := metrics.NewSeries("")
		start := time.Now()
		var wg sync.WaitGroup
		var firstErr error
		var errMu sync.Mutex
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					input := formulas[(c*perClient+i)%workingSet]
					t0 := time.Now()
					_, err := tb.MS.Run(context.Background(), caller, pipeID, input, opts)
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("bench: pipeline mode %s: %w", mode, err)
						}
						errMu.Unlock()
						return
					}
					lat.Add(time.Since(t0))
				}
			}(c)
		}
		wg.Wait()
		if firstErr != nil {
			return firstErr
		}
		makespan := time.Since(start)
		st := lat.Stats()
		cacheAfter := tb.MS.CacheStats()
		done1, _ := tb.TM.Stats()
		done2, _ := tm2.Stats()
		tasks := float64((done1-done1Before)+(done2-done2Before)) / float64(total)
		hits := (cacheAfter.Hits - cacheBefore.Hits) + (cacheAfter.Collapsed - cacheBefore.Collapsed)
		// Hit rate over step executions (2 steps per run).
		hitRate := 100 * float64(hits) / float64(2*total)
		tput := metrics.Throughput(total, makespan)
		t.Add(mode, sites, msDur(st.Median), msDur(st.P95),
			fmt.Sprintf("%.0f", tput), fmt.Sprintf("%.0f%%", hitRate), fmt.Sprintf("%.1f", tasks))
		cfg.logf("pipeline: mode=%-13s p50 %sms p95 %sms throughput %.0f/s hits %d tasks/run %.1f",
			mode, msDur(st.Median), msDur(st.P95), tput, hits, tasks)
		return nil
	}

	// Distributed: every step its own dispatch, cache bypassed.
	if err := runMode("distributed", "2 (disjoint)", core.RunOptions{NoCache: true}, len(formulas)); err != nil {
		return nil, err
	}
	// Cached prefix: a hot working set replayed through the per-step
	// cache; after warmup both steps answer at the Management Service.
	hitsBefore := tb.MS.CacheStats().Hits
	if err := runMode("cached-prefix", "2 (disjoint)", core.RunOptions{}, 8); err != nil {
		return nil, err
	}
	if tb.MS.CacheStats().Hits == hitsBefore {
		return nil, fmt.Errorf("bench: cached-prefix mode never hit the per-step result cache")
	}
	// Monolith: co-deploy step 2 on tm-1 so every step is live on one
	// site; the whole chain ships as one task again.
	if err := tb.MS.DeployTo(context.Background(), caller, featID, 2, "parsl", "cooley-tm-1"); err != nil {
		return nil, err
	}
	if err := runMode("monolith", "1 (co-deployed)", core.RunOptions{NoCache: true}, len(formulas)); err != nil {
		return nil, err
	}

	t.Note("%d clients x %d requests per mode; WAN RTT 20.7ms-shaped; 2-step matminer pipeline (parse -> featurize)", clients, perClient)
	t.Note("distributed = service-orchestrated per-step routing (disjoint placement is impossible for the TM-local monolith)")
	return t, nil
}
