package bench

import (
	"encoding/json"
	"os"
	"time"
)

// Report is the machine-readable form of a bench run, written by
// `dlhub-bench -json <path>` (paper experiments) and `dlhub-bench
// -scenario <file.yaml>` (declarative scenarios) through ONE writer, so
// every BENCH_*.json in the repo and in CI artifacts has the same
// envelope and a stable, diffable field order. Experiment rows are kept
// as the strings the human tables print — the artifact is a record of
// the run, not a new metrics schema; scenario runs carry the full
// structured result (parameters, per-stage percentiles, assertions)
// because those files are committed per PR as the performance
// trajectory of the repo.
type Report struct {
	// Started is the wall-clock start of the run (RFC 3339).
	Started time.Time `json:"started"`
	// DurationMS is the whole run's wall time.
	DurationMS int64 `json:"duration_ms"`
	// Experiments holds one entry per paper experiment executed, in
	// order (the -exp path).
	Experiments []ReportEntry `json:"experiments,omitempty"`
	// Scenario is the structured result of a -scenario run.
	Scenario *ScenarioResult `json:"scenario,omitempty"`
}

// ReportEntry is one experiment's result in a Report.
type ReportEntry struct {
	Name       string     `json:"name"`
	Title      string     `json:"title"`
	Headers    []string   `json:"headers"`
	Rows       [][]string `json:"rows"`
	Notes      []string   `json:"notes,omitempty"`
	DurationMS int64      `json:"duration_ms"`
}

// ScenarioResult records one declarative scenario run end to end: the
// exact parameters that produced it (the normalized spec, its source
// hash and seed — enough to reproduce the schedule bit for bit),
// per-stage results, run totals and the assertion verdicts. Committed
// as BENCH_<name>.json with the PR that changed the behavior it
// measures.
type ScenarioResult struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// SpecPath is the scenario file the run was parsed from, repo-
	// relative when possible.
	SpecPath string `json:"spec_path,omitempty"`
	// SpecSHA256 is the hex SHA-256 of the scenario file's bytes; CI
	// compares it against the file to detect stale committed results.
	SpecSHA256 string `json:"spec_sha256,omitempty"`
	// Seed is the workload-schedule seed (spec.seed unless overridden).
	Seed int64 `json:"seed"`
	// Compress divides stage durations and fault offsets (1 = the
	// spec's full scale; CI runs compressed).
	Compress float64 `json:"compress"`
	// Spec is the full normalized scenario spec — every parameter that
	// shaped the run, so a result is interpretable without the YAML.
	Spec any `json:"spec"`

	Stages []StageResult `json:"stages"`
	// Totals aggregates the whole run (stage name "total").
	Totals StageResult `json:"totals"`
	// SaturationRPS is the measured sustainable req/s ceiling of a
	// saturation scenario — the highest probed rate the service carried
	// without errors or falling behind the offered load (0 for ordinary
	// staged scenarios, or when even the search floor failed).
	SaturationRPS float64 `json:"saturation_rps,omitempty"`
	// CacheHitRate is hits/lookups of the service result cache over the
	// run (0 when the cache is disabled).
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Failovers snapshots the dead-TM failover counter deltas over the
	// run: lost, redispatched, exhausted.
	Failovers map[string]uint64 `json:"failovers,omitempty"`
	// Tenants holds per-tenant slices of the run when the spec declares
	// a tenants: block, keyed by tenant ID with the untagged remainder
	// under "anonymous". Omitted for pre-tenancy scenarios, keeping
	// their committed results byte-identical.
	Tenants map[string]TenantResult `json:"tenants,omitempty"`

	Assertions []AssertionResult `json:"assertions"`
	Passed     bool              `json:"passed"`
}

// StageResult is one stage's (or the whole run's) measured outcome.
type StageResult struct {
	Name string `json:"name"`
	Kind string `json:"kind,omitempty"`
	// DurationMS is the stage's scheduled (compressed) duration.
	DurationMS int64 `json:"duration_ms"`
	// Offered is the number of requests the schedule injected in the
	// stage window; Completed/Errors partition how they ended.
	Offered   int `json:"offered"`
	Completed int `json:"completed"`
	Errors    int `json:"errors"`
	// Latency percentiles over the stage's completed requests, in
	// fractional milliseconds.
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	// Throughput is completed requests per second of stage wall time.
	Throughput float64 `json:"throughput_rps"`
	// AllocsPerOp approximates heap allocations per completed request
	// (runtime.MemStats.Mallocs delta across the stage window; includes
	// everything else the process allocated, so treat as a trend line).
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// TenantResult is one tenant's slice of a scenario run: the client-
// observed outcome of the requests tagged with it, plus the service-
// side admission and fairness counters for the same window.
type TenantResult struct {
	Offered    int     `json:"offered"`
	Completed  int     `json:"completed"`
	Errors     int     `json:"errors"`
	P50MS      float64 `json:"p50_ms"`
	P95MS      float64 `json:"p95_ms"`
	P99MS      float64 `json:"p99_ms"`
	Throughput float64 `json:"throughput_rps"`
	// Admission outcomes as the service counted them; RejectedQuota is
	// the tenant's quota_exceeded total, RejectedOverload the servable-
	// bound overloaded total.
	Admitted         uint64 `json:"admitted"`
	RejectedQuota    uint64 `json:"rejected_quota"`
	RejectedOverload uint64 `json:"rejected_overload"`
	// DequeueShare is the tenant's fraction of broker dequeues — the
	// weighted-fair observable.
	DequeueShare float64 `json:"dequeue_share"`
}

// AssertionResult is one assertion's verdict.
type AssertionResult struct {
	// Name is the assertion key as written in the spec, e.g.
	// "max_error_rate".
	Name string `json:"name"`
	// Want is the bound from the spec, Got the measured value; the
	// name's min_/max_ prefix says which way the comparison ran.
	Want float64 `json:"want"`
	Got  float64 `json:"got"`
	Pass bool    `json:"pass"`
}

// WriteFile writes the report as indented JSON. Struct-field order is
// the schema's order — stable across runs, so committed results diff
// cleanly.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
