package bench

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// goldenReport is a fully-populated Report with fixed values; the
// golden file pins the exact JSON rendering — field names, order,
// omitempty behavior — that committed BENCH_*.json files rely on.
// If this test fails you changed the BENCH schema: update the golden
// AND re-generate every committed BENCH_*.json (see docs/BENCH.md).
func goldenReport() *Report {
	return &Report{
		Started:    time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC),
		DurationMS: 12345,
		Scenario: &ScenarioResult{
			Name:        "golden",
			Description: "schema pin",
			SpecPath:    "scenarios/golden.yaml",
			SpecSHA256:  "deadbeef",
			Seed:        42,
			Compress:    1,
			Spec:        map[string]any{"name": "golden"},
			Stages: []StageResult{{
				Name:        "steady",
				Kind:        "steady",
				DurationMS:  10000,
				Offered:     100,
				Completed:   99,
				Errors:      1,
				P50MS:       12.34,
				P95MS:       56.78,
				P99MS:       90.12,
				Throughput:  9.9,
				AllocsPerOp: 1234.5,
			}},
			Totals: StageResult{
				Name:       "total",
				DurationMS: 10000,
				Offered:    100,
				Completed:  99,
				Errors:     1,
				P50MS:      12.34,
				P95MS:      56.78,
				P99MS:      90.12,
				Throughput: 9.9,
			},
			CacheHitRate: 0.25,
			Failovers:    map[string]uint64{"exhausted": 0, "lost": 1, "redispatched": 1},
			Assertions: []AssertionResult{{
				Name: "max_error_rate",
				Want: 0.05,
				Got:  0.01,
				Pass: true,
			}},
			Passed: true,
		},
	}
}

func TestReportGoldenSchema(t *testing.T) {
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := goldenReport().WriteFile("testdata/golden_report.json"); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	if err := goldenReport().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/golden_report.json")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("BENCH report schema drifted from testdata/golden_report.json.\n"+
			"If intentional: update the golden file and re-generate every committed BENCH_*.json.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// The experiments path shares the same writer; pin its envelope too.
func TestReportExperimentEntry(t *testing.T) {
	tbl := &Table{Title: "T", Headers: []string{"a"}, Rows: [][]string{{"1"}}}
	e := tbl.Entry("exp1", 1500*time.Millisecond)
	if e.Name != "exp1" || e.DurationMS != 1500 || len(e.Rows) != 1 {
		t.Fatalf("entry = %+v", e)
	}
}
