package bench

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pyruntime"
	"repro/internal/schema"
	"repro/internal/servable"
)

// TestRestartMSInflightDispatchFailsFast pins the agreement between
// Testbed.RestartMS's kill path and the per-TM liveness watcher: a
// request dispatched to a TM that RestartMS kills while the Management
// Service goes down must surface an error promptly — via the watcher's
// errTMLost broadcast or the closing service's lifetime cancellation —
// not hang until the 120s TaskTimeout. A fresh request against the
// recovered service must then succeed end to end.
func TestRestartMSInflightDispatchFailsFast(t *testing.T) {
	tb, err := NewTestbed(Options{
		Nodes:        4,
		DataDir:      t.TempDir(),
		Heartbeat:    100 * time.Millisecond,
		TMStaleAfter: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	// A servable slow enough that the restart provably lands while the
	// dispatch is in flight.
	release := make(chan struct{})
	pyruntime.Register("test:block-for-restart", func(arg any) (any, error) {
		select {
		case <-release:
		case <-time.After(30 * time.Second):
		}
		return "late", nil
	})
	defer close(release)
	ctx := context.Background()
	id, err := tb.MS.Publish(ctx, core.Anonymous, &servable.Package{
		Doc: &schema.Document{
			Publication: schema.Publication{
				Name:      "block-for-restart",
				Title:     "in-flight restart regression",
				Authors:   []string{"bench"},
				VisibleTo: []string{"public"},
			},
			Servable: schema.Servable{
				Type:   schema.TypePythonFunction,
				Entry:  "test:block-for-restart",
				Input:  schema.DataType{Kind: "string"},
				Output: schema.DataType{Kind: "string"},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.MS.Deploy(ctx, core.Anonymous, id, 1, "parsl"); err != nil {
		t.Fatal(err)
	}

	runErr := make(chan error, 1)
	go func() {
		_, err := tb.Service().Run(ctx, core.Anonymous, id, "x", core.RunOptions{})
		runErr <- err
	}()
	// Wait until the dispatch is actually in flight on the TM.
	deadline := time.Now().Add(5 * time.Second)
	for tb.MS.TMLoad()["cooley-tm-1"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dispatch never reached the TM")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := tb.RestartMS(); err != nil {
		t.Fatalf("RestartMS: %v", err)
	}
	select {
	case err := <-runErr:
		if err == nil {
			t.Fatal("in-flight run against the killed TM should fail, got success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight dispatch hung past the liveness window — watcher and restart kill path disagree")
	}

	// The recovered service re-learned the placement from the WAL and
	// the restarted TM re-registered: a fast servable serves normally.
	fastID, err := tb.Service().Publish(ctx, core.Anonymous, servable.NoopPackage())
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Service().Deploy(ctx, core.Anonymous, fastID, 1, "parsl"); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Service().Run(ctx, core.Anonymous, fastID, "y", core.RunOptions{}); err != nil {
		t.Fatalf("post-restart run failed: %v", err)
	}
}
