package scenario

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/auth"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pyruntime"
	"repro/internal/schema"
	"repro/internal/servable"
)

// Options tunes one scenario execution.
type Options struct {
	// Compress divides stage durations and fault offsets (<= 1 = run
	// the spec at full scale). Rates are untouched, so compression
	// shrinks request counts with the wall time — how CI replays
	// committed scenarios quickly.
	Compress float64
	// SpecPath/SpecSHA annotate the result with the source file and its
	// content hash (the CI staleness gate).
	SpecPath string
	SpecSHA  string
	// Progress receives one line per stage and fault (nil = silent).
	Progress io.Writer
}

// matminerFormulas is the pipeline workload's input vocabulary; a
// request's key indexes into it (mod len).
var matminerFormulas = []string{
	"NaCl", "SiO2", "Fe2O3", "MgO", "Al2O3", "TiO2", "CaO", "ZnO",
	"CuO", "NiO", "FeO", "SrTiO3", "BaTiO3", "LiFePO4", "K2O", "Na2O",
}

// Run executes a scenario against a fresh in-process Testbed and
// returns the filled report. The spec must already be validated
// (Parse does this).
func Run(spec *Spec, opts Options) (*bench.Report, error) {
	if opts.Compress < 1 {
		opts.Compress = 1
	}
	effective := spec.Compressed(opts.Compress)
	sched := BuildSchedule(effective)
	progress := func(format string, args ...any) {
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, format+"\n", args...)
		}
	}

	// A restart_ms fault needs a durable store to recover from; other
	// scenarios keep the zero-cost in-memory service.
	var dataDir string
	if spec.HasFault("restart_ms") {
		dir, err := os.MkdirTemp("", "scenario-wal-")
		if err != nil {
			return nil, fmt.Errorf("scenario %s: wal dir: %w", spec.Name, err)
		}
		defer os.RemoveAll(dir) //nolint:errcheck
		dataDir = dir
	}
	tbOpts := bench.Options{
		Nodes:             spec.Topology.Nodes,
		WAN:               spec.Topology.WAN,
		ServiceCache:      spec.Service.Cache,
		AutoscaleInterval: spec.Service.AutoscaleInterval.D(),
		MaxQueue:          spec.Service.MaxQueue,
		Heartbeat:         spec.Topology.Heartbeat.D(),
		TMStaleAfter:      spec.Service.TMStaleAfter.D(),
		FailoverRetries:   spec.Service.FailoverRetries,
		DataDir:           dataDir,
	}
	if effective.Auth {
		// The auth service plays Globus Auth: it lives OUTSIDE the
		// Management Service (it is config, like the real external
		// authority), so tokens survive a restart_ms fault while the
		// tenant registry and user records still prove their WAL path —
		// recovery replays them into the fresh service instance.
		as := auth.NewService(time.Hour)
		as.RegisterProvider("scenario")
		as.RegisterClient("dlhub", "DLHub Management Service", "dlhub:serve")
		tbOpts.Auth = as
		tbOpts.RunScope = "dlhub:serve"
		tbOpts.RequireAuth = true
		tbOpts.AuthClientID = "dlhub"
		tbOpts.AuthProvider = "scenario"
	}
	tb, err := bench.NewTestbed(tbOpts)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: testbed: %w", spec.Name, err)
	}
	defer tb.Close()
	for i := 2; i <= spec.Topology.TMs; i++ {
		if _, err := tb.AddTM(TMID(i), spec.Topology.Nodes); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
		}
	}
	if err := tb.MS.WaitForTM(spec.Topology.TMs, 10*time.Second); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
	}

	wl, err := setupWorkload(tb, effective)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
	}
	// Install the declared tenant quotas before any measured request;
	// the priority class pushes its dequeue weight to the broker lane.
	for _, t := range effective.Tenants {
		if _, err := tb.Service().SetTenantQuota(t.ID, auth.Quota{
			MaxInFlight: t.MaxInFlight,
			RatePerSec:  t.RatePerSec,
			Priority:    t.Priority,
		}); err != nil {
			return nil, fmt.Errorf("scenario %s: tenant %s: %w", spec.Name, t.ID, err)
		}
	}
	// Authenticated mode: one account per tenant, registered and logged
	// in up front; every tagged request then resolves its caller from
	// the tenant's bearer token — the same introspection path an HTTP
	// request takes, including post-restart resolution against the
	// recovered registry.
	if effective.Auth {
		tokens := make(map[string]string, len(effective.Tenants))
		for _, t := range effective.Tenants {
			user := t.ID + "-user"
			if _, err := tb.Service().RegisterUser("", user, "scenario-pw", "", "", t.ID); err != nil {
				return nil, fmt.Errorf("scenario %s: register %s: %w", spec.Name, user, err)
			}
			res, err := tb.Service().Login("", user, "scenario-pw")
			if err != nil {
				return nil, fmt.Errorf("scenario %s: login %s: %w", spec.Name, user, err)
			}
			tokens[t.ID] = res.AccessToken
		}
		wl.caller = func(tenant string) (core.Caller, error) {
			tok, ok := tokens[tenant]
			if !ok {
				// The untagged remainder stays on the internal anonymous
				// path (direct API calls carry their Caller explicitly).
				return callerFor(tenant), nil
			}
			return tb.Service().ResolveCaller("Bearer " + tok)
		}
	}
	// Prime once outside the measured window (container pull, pod
	// start), bypassing every cache so no scheduled key is pre-warmed.
	primeCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	_, err = tb.Service().Run(primeCtx, core.Anonymous, wl.id, wl.input(-1), core.RunOptions{NoMemo: true})
	cancel()
	if err != nil {
		return nil, fmt.Errorf("scenario %s: prime request: %w", spec.Name, err)
	}

	// A saturation stage replaces the pre-compiled schedule with a
	// runtime binary search: each probe's load depends on the previous
	// probe's outcome, so it cannot be laid out up front.
	if effective.SaturationStage() != nil {
		return runSaturation(spec, effective, opts, tb, wl, progress)
	}

	cacheBefore := tb.Service().CacheStats()
	failBefore := tb.Service().FailoverStats()

	// --- measured window ---------------------------------------------------
	type outcome struct {
		stage   int
		latency time.Duration
		err     error
	}
	outcomes := make([]outcome, len(sched.Requests))
	jobs := make(chan int, len(sched.Requests))
	ropts := core.RunOptions{NoCache: effective.Workload.NoCache}

	var wg sync.WaitGroup
	for c := 0; c < effective.Workload.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				req := sched.Requests[idx]
				t0 := time.Now()
				err := wl.issue(req.Tenant, req.Key, ropts)
				outcomes[idx] = outcome{stage: req.Stage, latency: time.Since(t0), err: err}
			}
		}()
	}

	start := time.Now()
	stop := make(chan struct{})
	var timelineWG sync.WaitGroup

	// Fault timeline: apply each event at its offset. Drain blocks
	// until migration completes, so events run in their own goroutine
	// off the pacer's critical path. msRestarted (read only after
	// timelineWG.Wait) records that a restart_ms reset the service
	// counters mid-run.
	var msRestarted bool
	var faultErr error
	timelineWG.Add(1)
	go func() {
		defer timelineWG.Done()
		for _, f := range sched.Faults {
			select {
			case <-time.After(time.Until(start.Add(f.At))):
			case <-stop:
				return
			}
			progress("  fault @%s: %s %s", time.Since(start).Round(time.Millisecond), f.Kind, f.TMID)
			if err := applyFault(tb, wl, f); err != nil {
				progress("  fault %s %s FAILED: %v", f.Kind, f.TMID, err)
				if f.Kind == "restart_ms" && faultErr == nil {
					// A failed recovery invalidates the whole run: the
					// fault exists to prove state survives the restart.
					faultErr = fmt.Errorf("restart_ms: %w", err)
				}
				continue
			}
			if f.Kind == "restart_ms" {
				msRestarted = true
			}
		}
	}()

	// Stage boundary marks: heap-allocation counters per window, for
	// the allocs-per-op trend line.
	mallocMarks := make([]uint64, len(sched.Windows)+1)
	mallocMarks[0] = readMallocs()
	timelineWG.Add(1)
	go func() {
		defer timelineWG.Done()
		for i, w := range sched.Windows {
			select {
			case <-time.After(time.Until(start.Add(w.End))):
			case <-stop:
				return
			}
			mallocMarks[i+1] = readMallocs()
			progress("  stage %q done @%s", w.Name, time.Since(start).Round(time.Millisecond))
		}
	}()

	// Pacer: release each request at its scheduled offset. Workers
	// bound the concurrency; a burst beyond them queues in order.
	for idx, req := range sched.Requests {
		if d := time.Until(start.Add(req.Offset)); d > 0 {
			time.Sleep(d)
		}
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	timelineWG.Wait()

	if faultErr != nil {
		return nil, fmt.Errorf("scenario %s: %w", spec.Name, faultErr)
	}
	if msRestarted {
		// The restart reset the service's counters; the pre-restart
		// baselines would make the deltas below underflow. Fold them to
		// zero — pre-restart cache hits are forfeited from the rate.
		cacheBefore = core.CacheStats{}
		failBefore = core.FailoverStats{}
	}
	cacheAfter := tb.Service().CacheStats()
	failAfter := tb.Service().FailoverStats()

	// --- aggregate ---------------------------------------------------------
	res := &bench.ScenarioResult{
		Name:        spec.Name,
		Description: spec.Description,
		SpecPath:    opts.SpecPath,
		SpecSHA256:  opts.SpecSHA,
		Seed:        spec.Seed,
		Compress:    opts.Compress,
		Spec:        spec,
	}
	stageLat := make([][]time.Duration, len(sched.Windows))
	stageErr := make([]int, len(sched.Windows))
	for _, o := range outcomes {
		if o.err != nil {
			stageErr[o.stage]++
			continue
		}
		stageLat[o.stage] = append(stageLat[o.stage], o.latency)
	}
	var totalLat []time.Duration
	var totalErr int
	for i, w := range sched.Windows {
		sr := stageStats(w.Name, w.Kind, w.End-w.Start, stageLat[i], stageErr[i])
		if d := int64(mallocMarks[i+1] - mallocMarks[i]); mallocMarks[i+1] > 0 && sr.Completed > 0 {
			sr.AllocsPerOp = round2(float64(d) / float64(sr.Completed))
		}
		res.Stages = append(res.Stages, sr)
		totalLat = append(totalLat, stageLat[i]...)
		totalErr += stageErr[i]
	}
	res.Totals = stageStats("total", "", elapsed, totalLat, totalErr)

	lookups := (cacheAfter.Hits - cacheBefore.Hits) + (cacheAfter.Collapsed - cacheBefore.Collapsed) +
		(cacheAfter.Misses - cacheBefore.Misses)
	if lookups > 0 {
		hits := (cacheAfter.Hits - cacheBefore.Hits) + (cacheAfter.Collapsed - cacheBefore.Collapsed)
		res.CacheHitRate = round4(float64(hits) / float64(lookups))
	}
	res.Failovers = map[string]uint64{
		"lost":         failAfter.Lost - failBefore.Lost,
		"redispatched": failAfter.Redispatched - failBefore.Redispatched,
		"exhausted":    failAfter.Exhausted - failBefore.Exhausted,
	}
	if len(effective.Tenants) > 0 {
		tenantLat := map[string][]time.Duration{}
		tenantErr := map[string]int{}
		for i, o := range outcomes {
			tag := tenantTag(sched.Requests[i].Tenant)
			if o.err != nil {
				tenantErr[tag]++
				continue
			}
			tenantLat[tag] = append(tenantLat[tag], o.latency)
		}
		res.Tenants = tenantResults(tenantLat, tenantErr, elapsed, tb.Service().TenantStatsAll())
	}

	res.Assertions, res.Passed = evalAssertions(spec.Assertions, res, opts.Compress)
	for _, a := range res.Assertions {
		verdict := "PASS"
		if !a.Pass {
			verdict = "FAIL"
		}
		progress("  assert %s: want %g, got %g — %s", a.Name, a.Want, a.Got, verdict)
	}

	return &bench.Report{
		Started:    start.UTC(),
		DurationMS: elapsed.Milliseconds(),
		Scenario:   res,
	}, nil
}

// tenantTag renders a schedule tenant tag the way the service's stats
// do: the untagged remainder is the anonymous tenant.
func tenantTag(tenant string) string {
	if tenant == "" {
		return auth.AnonymousTenantID
	}
	return tenant
}

// tenantResults folds per-tenant client outcomes together with the
// service-side admission and fairness counters.
func tenantResults(lat map[string][]time.Duration, errs map[string]int, elapsed time.Duration, svc map[string]core.TenantStats) map[string]bench.TenantResult {
	tags := map[string]bool{}
	for t := range lat {
		tags[t] = true
	}
	for t := range errs {
		tags[t] = true
	}
	for t := range svc {
		tags[t] = true
	}
	out := make(map[string]bench.TenantResult, len(tags))
	for tag := range tags {
		l := lat[tag]
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
		tr := bench.TenantResult{
			Offered:   len(l) + errs[tag],
			Completed: len(l),
			Errors:    errs[tag],
		}
		if len(l) > 0 {
			tr.P50MS = round2(float64(metrics.Percentile(l, 50)) / float64(time.Millisecond))
			tr.P95MS = round2(float64(metrics.Percentile(l, 95)) / float64(time.Millisecond))
			tr.P99MS = round2(float64(metrics.Percentile(l, 99)) / float64(time.Millisecond))
		}
		if secs := elapsed.Seconds(); secs > 0 {
			tr.Throughput = round2(float64(len(l)) / secs)
		}
		st := svc[tag]
		tr.Admitted = st.Admitted
		tr.RejectedQuota = st.RejectedQuota
		tr.RejectedOverload = st.RejectedOverload
		tr.DequeueShare = round4(st.DequeueShare)
		out[tag] = tr
	}
	return out
}

// satAchievedFraction is the fraction of the offered rate a probe must
// actually complete to count as sustained: when the service saturates,
// workers fall behind the pacer, the probe's wall time stretches and
// achieved throughput drops below the offered rate.
const satAchievedFraction = 0.9

// runSaturation executes a saturation scenario: a binary search over
// offered req/s between the stage's start_rate and rate. Each probe
// holds a steady load for the stage duration; a probe is sustained when
// it completes error-free at >= satAchievedFraction of the offered
// rate. The highest sustained rate is reported as saturation_rps, with
// per-probe latency percentiles and allocs/op as the capacity profile.
func runSaturation(spec, effective *Spec, opts Options, tb *bench.Testbed, wl *workload, progress func(string, ...any)) (*bench.Report, error) {
	sat := effective.SaturationStage()
	window := sat.Duration.D()
	ropts := core.RunOptions{NoCache: effective.Workload.NoCache}
	keys := newKeyPicker(effective, rand.New(rand.NewSource(effective.Seed)))

	cacheBefore := tb.Service().CacheStats()
	failBefore := tb.Service().FailoverStats()
	start := time.Now()

	res := &bench.ScenarioResult{
		Name:        spec.Name,
		Description: spec.Description,
		SpecPath:    opts.SpecPath,
		SpecSHA256:  opts.SpecSHA,
		Seed:        spec.Seed,
		Compress:    opts.Compress,
		Spec:        spec,
	}
	lo, hi := sat.StartRate, sat.Rate
	var ceiling float64
	var totalLat []time.Duration
	var totalErr int
	mStart := readMallocs()
	for probe := 1; probe <= sat.Probes; probe++ {
		rate := (lo + hi) / 2
		m0 := readMallocs()
		lat, errs, probeElapsed := runProbe(wl, keys, effective.Workload.Clients, rate, window, ropts)
		achieved := 0.0
		if secs := probeElapsed.Seconds(); secs > 0 {
			achieved = float64(len(lat)) / secs
		}
		sustained := errs == 0 && achieved >= satAchievedFraction*rate
		sr := stageStats(fmt.Sprintf("probe-%d-%.0frps", probe, rate), "saturation", probeElapsed, lat, errs)
		if m1 := readMallocs(); len(lat) > 0 {
			sr.AllocsPerOp = round2(float64(m1-m0) / float64(len(lat)))
		}
		res.Stages = append(res.Stages, sr)
		totalLat = append(totalLat, lat...)
		totalErr += errs
		if sustained {
			ceiling = rate
			lo = rate
		} else {
			hi = rate
		}
		verdict := "OVER"
		if sustained {
			verdict = "sustained"
		}
		progress("  probe %d/%d @%.0f req/s: achieved %.0f req/s, %d errors — %s",
			probe, sat.Probes, rate, achieved, errs, verdict)
	}
	elapsed := time.Since(start)
	res.Totals = stageStats("total", "", elapsed, totalLat, totalErr)
	// Run-wide allocs/op feeds the -diff gate (stage-windowed runs leave
	// totals allocs at 0 — the windows overlap fault goroutines there).
	if mEnd := readMallocs(); len(totalLat) > 0 {
		res.Totals.AllocsPerOp = round2(float64(mEnd-mStart) / float64(len(totalLat)))
	}
	res.SaturationRPS = round2(ceiling)
	progress("  saturation ceiling: %.0f req/s", res.SaturationRPS)

	cacheAfter := tb.Service().CacheStats()
	failAfter := tb.Service().FailoverStats()
	lookups := (cacheAfter.Hits - cacheBefore.Hits) + (cacheAfter.Collapsed - cacheBefore.Collapsed) +
		(cacheAfter.Misses - cacheBefore.Misses)
	if lookups > 0 {
		hits := (cacheAfter.Hits - cacheBefore.Hits) + (cacheAfter.Collapsed - cacheBefore.Collapsed)
		res.CacheHitRate = round4(float64(hits) / float64(lookups))
	}
	res.Failovers = map[string]uint64{
		"lost":         failAfter.Lost - failBefore.Lost,
		"redispatched": failAfter.Redispatched - failBefore.Redispatched,
		"exhausted":    failAfter.Exhausted - failBefore.Exhausted,
	}

	res.Assertions, res.Passed = evalAssertions(spec.Assertions, res, opts.Compress)
	for _, a := range res.Assertions {
		verdict := "PASS"
		if !a.Pass {
			verdict = "FAIL"
		}
		progress("  assert %s: want %g, got %g — %s", a.Name, a.Want, a.Got, verdict)
	}
	return &bench.Report{
		Started:    start.UTC(),
		DurationMS: elapsed.Milliseconds(),
		Scenario:   res,
	}, nil
}

// runProbe offers one steady window of load at the given rate and
// reports completed-request latencies, the error count and the probe's
// actual wall time (which stretches past the window when the service
// cannot drain the offered load). Keys are drawn in the pacer so the
// shared picker is never touched concurrently.
func runProbe(wl *workload, keys *keyPicker, clients int, rate float64, window time.Duration, ropts core.RunOptions) ([]time.Duration, int, time.Duration) {
	n := int(math.Round(rate * window.Seconds()))
	if n < 1 {
		n = 1
	}
	type outcome struct {
		latency time.Duration
		err     error
	}
	outcomes := make([]outcome, n)
	reqs := make([]struct {
		key int
		off time.Duration
	}, n)
	for i := range reqs {
		reqs[i].key = keys.next()
		reqs[i].off = time.Duration(float64(i) / rate * float64(time.Second))
	}
	jobs := make(chan int, n)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				t0 := time.Now()
				err := wl.issue("", reqs[idx].key, ropts)
				outcomes[idx] = outcome{latency: time.Since(t0), err: err}
			}
		}()
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if d := time.Until(start.Add(reqs[i].off)); d > 0 {
			time.Sleep(d)
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)
	lat := make([]time.Duration, 0, n)
	errs := 0
	for _, o := range outcomes {
		if o.err != nil {
			errs++
			continue
		}
		lat = append(lat, o.latency)
	}
	return lat, errs, elapsed
}

// stageStats folds one window's latencies into a StageResult.
func stageStats(name, kind string, d time.Duration, lat []time.Duration, errs int) bench.StageResult {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	sr := bench.StageResult{
		Name:       name,
		Kind:       kind,
		DurationMS: d.Milliseconds(),
		Offered:    len(lat) + errs,
		Completed:  len(lat),
		Errors:     errs,
	}
	if len(lat) > 0 {
		sr.P50MS = round2(float64(metrics.Percentile(lat, 50)) / float64(time.Millisecond))
		sr.P95MS = round2(float64(metrics.Percentile(lat, 95)) / float64(time.Millisecond))
		sr.P99MS = round2(float64(metrics.Percentile(lat, 99)) / float64(time.Millisecond))
	}
	if secs := d.Seconds(); secs > 0 {
		sr.Throughput = round2(float64(len(lat)) / secs)
	}
	return sr
}

// evalAssertions checks every spec assertion against the totals.
// Count-based bounds (min_requests) are written for the full-scale run
// and scale down with compression; rate- and fraction-based bounds
// hold at any compression because rates are preserved.
func evalAssertions(asserts []Assertion, res *bench.ScenarioResult, compress float64) ([]bench.AssertionResult, bool) {
	out := make([]bench.AssertionResult, 0, len(asserts))
	passed := true
	for _, a := range asserts {
		base, tenant := splitAssertion(a.Name)
		want := a.Value
		// Count-based minimums are written for the full-scale run and
		// scale down with compression; rates and fractions hold as-is.
		if (base == "min_requests" || base == "min_quota_rejections") && compress > 1 {
			want = a.Value / compress
		}
		var got float64
		if tenant != "" {
			// Tenant-qualified bound: evaluate against that tenant's
			// slice of the run.
			tr := res.Tenants[tenant]
			switch base {
			case "max_error_rate":
				if tr.Offered > 0 {
					got = round4(float64(tr.Errors) / float64(tr.Offered))
				}
			case "max_p99_ms":
				got = tr.P99MS
			case "min_throughput":
				got = tr.Throughput
			case "min_requests":
				got = float64(tr.Completed)
			case "min_quota_rejections", "max_quota_rejections":
				got = float64(tr.RejectedQuota)
			case "max_overload_rejections":
				got = float64(tr.RejectedOverload)
			}
		} else {
			switch base {
			case "max_error_rate":
				if res.Totals.Offered > 0 {
					got = round4(float64(res.Totals.Errors) / float64(res.Totals.Offered))
				}
			case "min_cache_hit_rate", "max_cache_hit_rate":
				got = res.CacheHitRate
			case "min_throughput":
				got = res.Totals.Throughput
			case "max_p99_ms":
				got = res.Totals.P99MS
			case "min_redispatched":
				got = float64(res.Failovers["redispatched"])
			case "min_requests":
				got = float64(res.Totals.Completed)
			case "min_saturation_rps":
				// A rate, not a count: compression shrinks probe windows but
				// not rates, so the bound holds unscaled.
				got = res.SaturationRPS
			case "min_quota_rejections", "max_quota_rejections":
				for _, tr := range res.Tenants {
					got += float64(tr.RejectedQuota)
				}
			case "max_overload_rejections":
				for _, tr := range res.Tenants {
					got += float64(tr.RejectedOverload)
				}
			}
		}
		pass := got <= want
		if strings.HasPrefix(base, "min_") {
			pass = got >= want
		}
		out = append(out, bench.AssertionResult{Name: a.Name, Want: want, Got: got, Pass: pass})
		passed = passed && pass
	}
	return out, passed
}

// workload binds the spec's workload to published servables.
type workload struct {
	id    string
	spec  *Spec
	tb    *bench.Testbed
	input func(key int) any
	issue func(tenant string, key int, opts core.RunOptions) error
	// caller maps a request's tenant tag to its Caller. The default is
	// the tag-only anonymous caller; auth mode swaps in per-tenant
	// token resolution.
	caller func(tenant string) (core.Caller, error)
	// steps are the servables (pipeline steps or the single servable)
	// to re-deploy after a redeploy:true fault; step i prefers site
	// placementSite(i).
	steps []string
}

// placementSites lists the 1-based sites a step deploys to.
func (w *workload) placementSites(step int) []int {
	if w.spec.Workload.Disjoint {
		return []int{step%w.spec.Topology.TMs + 1}
	}
	sites := make([]int, 0, w.spec.Workload.Placements)
	for i := 1; i <= w.spec.Workload.Placements; i++ {
		sites = append(sites, i)
	}
	return sites
}

// deployAll places every step per the spec's placement policy.
func (w *workload) deployAll(ctx context.Context) error {
	for i, id := range w.steps {
		for _, site := range w.placementSites(i) {
			if err := w.tb.Service().DeployTo(ctx, core.Anonymous, id, w.spec.Workload.Replicas, "parsl", TMID(site)); err != nil {
				return fmt.Errorf("deploy step %d to %s: %w", i, TMID(site), err)
			}
		}
	}
	return nil
}

// redeployTo re-places the steps that belong on the given site, used
// after a redeploy:true rejoin/restart fault (a drain migrated the
// site's placements away).
func (w *workload) redeployTo(ctx context.Context, tmID string) error {
	for i, id := range w.steps {
		for _, site := range w.placementSites(i) {
			if TMID(site) != tmID {
				continue
			}
			if err := w.tb.Service().DeployTo(ctx, core.Anonymous, id, w.spec.Workload.Replicas, "parsl", tmID); err != nil {
				return err
			}
		}
	}
	return nil
}

// setupWorkload publishes and deploys the spec's servables.
func setupWorkload(tb *bench.Testbed, spec *Spec) (*workload, error) {
	w := &workload{spec: spec, tb: tb}
	w.caller = func(tenant string) (core.Caller, error) { return callerFor(tenant), nil }
	ctx := context.Background()
	switch spec.Workload.Servable {
	case "synthetic":
		entry := "scenario:" + spec.Name
		work := spec.Workload.Work.D()
		pyruntime.Register(entry, func(arg any) (any, error) {
			time.Sleep(work)
			// Output is a pure function of the input, so results are
			// cacheable and key distributions translate into hit rates.
			return fmt.Sprintf("%v:done", arg), nil
		})
		id, err := tb.MS.Publish(ctx, core.Anonymous, &servable.Package{
			Doc: &schema.Document{
				Publication: schema.Publication{
					Name:      "scenario-" + spec.Name,
					Title:     "scenario synthetic workload",
					Authors:   []string{"bench"},
					VisibleTo: []string{"public"},
				},
				Servable: schema.Servable{
					Type:   schema.TypePythonFunction,
					Entry:  entry,
					Input:  schema.DataType{Kind: "string"},
					Output: schema.DataType{Kind: "string"},
				},
			},
		})
		if err != nil {
			return nil, err
		}
		w.id = id
		w.steps = []string{id}
		w.input = func(key int) any { return fmt.Sprintf("key-%d", key) }
	case "matminer":
		utilID, err := tb.MS.Publish(ctx, core.Anonymous, servable.MatminerUtilPackage())
		if err != nil {
			return nil, err
		}
		featID, err := tb.MS.Publish(ctx, core.Anonymous, servable.MatminerFeaturizePackage())
		if err != nil {
			return nil, err
		}
		pipe := &servable.Package{Doc: servable.PipelineDoc(
			"scenario-"+spec.Name, "scenario pipeline workload", []string{utilID, featID})}
		pipeID, err := tb.MS.Publish(ctx, core.Anonymous, pipe)
		if err != nil {
			return nil, err
		}
		w.id = pipeID
		w.steps = []string{utilID, featID}
		w.input = func(key int) any {
			if key < 0 {
				key = len(matminerFormulas) - 1
			}
			return matminerFormulas[key%len(matminerFormulas)]
		}
	}
	if err := w.deployAll(ctx); err != nil {
		return nil, err
	}
	// Issue through tb.Service(), resolved per call: a restart_ms fault
	// swaps the service mid-run and later requests must hit the new one.
	switch spec.Workload.Kind {
	case "run", "pipeline":
		w.issue = func(tenant string, key int, opts core.RunOptions) error {
			c, err := w.caller(tenant)
			if err != nil {
				return err
			}
			_, err = tb.Service().Run(ctx, c, w.id, w.input(key), opts)
			return err
		}
	case "run_batch":
		w.issue = func(tenant string, key int, opts core.RunOptions) error {
			c, err := w.caller(tenant)
			if err != nil {
				return err
			}
			inputs := make([]any, spec.Workload.BatchSize)
			for i := range inputs {
				inputs[i] = fmt.Sprintf("%v-%d", w.input(key), i)
			}
			_, err = tb.Service().RunBatch(ctx, c, w.id, inputs, opts)
			return err
		}
	}
	return w, nil
}

// callerFor tags a scheduled request with its tenant. Untagged
// requests stay the plain anonymous caller — the pre-tenancy path.
func callerFor(tenant string) core.Caller {
	c := core.Anonymous
	c.Tenant = tenant
	return c
}

// applyFault executes one fault event against the testbed.
func applyFault(tb *bench.Testbed, wl *workload, f FaultEvent) error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	switch f.Kind {
	case "kill":
		return tb.KillTM(f.TMID)
	case "restart":
		if _, err := tb.RestartTM(f.TMID); err != nil {
			return err
		}
	case "drain":
		if _, err := tb.Service().DrainTM(ctx, f.TMID); err != nil {
			return err
		}
		return nil
	case "rejoin":
		if err := tb.Service().RejoinTM(ctx, f.TMID); err != nil {
			return err
		}
	case "restart_ms":
		return tb.RestartMS()
	}
	if f.Redeploy {
		return wl.redeployTo(ctx, f.TMID)
	}
	return nil
}

func readMallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }
func round4(v float64) float64 { return float64(int64(v*10000+0.5)) / 10000 }
