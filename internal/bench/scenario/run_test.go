package scenario

import (
	"testing"
)

// The chaos scenario end to end at reduced scale: a TM is killed -9
// under steady load and later restarted. The run must finish with ZERO
// client-visible failures while the failover counters prove the
// recovery actually happened (requests were stranded and
// re-dispatched) — the harness's core acceptance contract.
func TestChaosScenarioIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second integration run")
	}
	spec, err := ParseFile("../../../scenarios/chaos-tm-kill.yaml")
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(spec, Options{Compress: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := report.Scenario
	if res.Totals.Errors != 0 {
		t.Errorf("client-visible failures = %d, want 0", res.Totals.Errors)
	}
	if res.Failovers["redispatched"] == 0 {
		t.Error("no redispatches recorded — the kill never exercised failover")
	}
	if !res.Passed {
		t.Errorf("assertions failed: %+v", res.Assertions)
	}
	if res.Totals.Completed == 0 || res.Totals.Offered != res.Totals.Completed+res.Totals.Errors {
		t.Errorf("inconsistent totals: %+v", res.Totals)
	}
	if len(res.Stages) != len(spec.Stages) {
		t.Errorf("stage results = %d, want %d", len(res.Stages), len(spec.Stages))
	}
	// The compressed run halves wall time: every stage window is the
	// spec duration / 2.
	for i, sr := range res.Stages {
		want := spec.Stages[i].Duration.D().Milliseconds() / 2
		if sr.DurationMS != want {
			t.Errorf("stage %s duration = %dms, want %dms", sr.Name, sr.DurationMS, want)
		}
	}
}
