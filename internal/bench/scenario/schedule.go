package scenario

import (
	"math"
	"math/rand"
	"time"
)

// Request is one scheduled client request: fire at Offset from run
// start, using input key Key, tagged with Tenant ("" = anonymous).
// Key selection, timing and tenant assignment are all fully determined
// by (spec, seed) — see TestScheduleDeterminism.
type Request struct {
	Offset time.Duration
	Stage  int // index into Schedule.Windows
	Key    int
	Tenant string
}

// StageWindow is one stage's slice of the run timeline.
type StageWindow struct {
	Name  string
	Kind  string
	Start time.Duration
	End   time.Duration
}

// FaultEvent is a FaultSpec with its target resolved to a site ID.
type FaultEvent struct {
	At       time.Duration
	Kind     string
	TMID     string
	Redeploy bool
}

// Schedule is the compiled, deterministic form of a spec's workload:
// every request offset and input key, the stage windows they fall in,
// and the fault timeline. Building it is pure — no clocks, no global
// rand — so the same spec and seed always yield the identical
// schedule.
type Schedule struct {
	Requests []Request
	Windows  []StageWindow
	Faults   []FaultEvent
}

// BuildSchedule compiles the spec's stages into request offsets and
// draws each request's input key from the configured distribution.
func BuildSchedule(spec *Spec) *Schedule {
	rng := rand.New(rand.NewSource(spec.Seed))
	keys := newKeyPicker(spec, rng)

	sched := &Schedule{}
	var start time.Duration
	for i, st := range spec.Stages {
		d := st.Duration.D()
		sched.Windows = append(sched.Windows, StageWindow{
			Name:  st.Name,
			Kind:  st.Kind,
			Start: start,
			End:   start + d,
		})
		for _, off := range stageOffsets(st) {
			sched.Requests = append(sched.Requests, Request{
				Offset: start + off,
				Stage:  i,
				Key:    keys.next(),
			})
		}
		start += d
	}
	// Tenant tags draw from their own rng stream: declaring a tenants:
	// block must not perturb the key/offset schedule an existing spec
	// compiled to, or every committed result would silently change.
	if len(spec.Tenants) > 0 {
		trng := rand.New(rand.NewSource(spec.Seed + 1))
		for i := range sched.Requests {
			sched.Requests[i].Tenant = pickTenant(spec.Tenants, trng)
		}
	}
	for _, f := range spec.Faults {
		ev := FaultEvent{
			At:       f.At.D(),
			Kind:     f.Kind,
			Redeploy: f.Redeploy,
		}
		// restart_ms targets the Management Service, not a site.
		if f.TM > 0 {
			ev.TMID = TMID(f.TM)
		}
		sched.Faults = append(sched.Faults, ev)
	}
	return sched
}

// pickTenant draws one request's tenant from the declared shares; the
// residual probability mass is the anonymous remainder ("").
func pickTenant(tenants []TenantSpec, rng *rand.Rand) string {
	r := rng.Float64()
	for _, t := range tenants {
		if r < t.Share {
			return t.ID
		}
		r -= t.Share
	}
	return ""
}

// stageOffsets lays out one stage's request times relative to the
// stage start.
func stageOffsets(st StageSpec) []time.Duration {
	d := st.Duration.D()
	secs := d.Seconds()
	switch st.Kind {
	case "steady":
		// Even spacing at the target rate.
		n := int(math.Round(st.Rate * secs))
		offsets := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			offsets = append(offsets, time.Duration(float64(i)/st.Rate*float64(time.Second)))
		}
		return offsets
	case "ramp":
		// Linear rate s → e over the stage. The cumulative request
		// count is q(t) = s·t + (e−s)·t²/(2D); inverting at q = i gives
		// the i-th request's offset (quadratic inverse CDF).
		s, e := st.StartRate, st.Rate
		n := int(math.Round((s + e) / 2 * secs))
		k := (e - s) / secs // rate slope, req/s per s
		offsets := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			q := float64(i)
			var t float64
			if k == 0 {
				t = q / s
			} else {
				t = (-s + math.Sqrt(s*s+2*k*q)) / k
			}
			offsets = append(offsets, time.Duration(t*float64(time.Second)))
		}
		return offsets
	case "spike":
		// The stage's request budget lands in four equal bursts at 0,
		// D/4, D/2 and 3D/4 — a worst case for steady-state tuned
		// capacity.
		n := int(math.Round(st.Rate * secs))
		offsets := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			burst := i * 4 / n
			if burst > 3 {
				burst = 3
			}
			offsets = append(offsets, d*time.Duration(burst)/4)
		}
		return offsets
	}
	return nil
}

// keyPicker draws input keys according to the workload distribution.
type keyPicker struct {
	spec *Spec
	rng  *rand.Rand
	zipf *rand.Zipf
	seq  int
}

func newKeyPicker(spec *Spec, rng *rand.Rand) *keyPicker {
	p := &keyPicker{spec: spec, rng: rng}
	if spec.Workload.Distribution == "zipf" && spec.Workload.KeySpace > 1 {
		p.zipf = rand.NewZipf(rng, spec.Workload.ZipfS, 1, uint64(spec.Workload.KeySpace-1))
	}
	return p
}

func (p *keyPicker) next() int {
	switch p.spec.Workload.Distribution {
	case "unique":
		// Every request a never-before-seen key: maximally
		// cache-hostile.
		p.seq++
		return p.spec.Workload.KeySpace + p.seq
	case "zipf":
		if p.zipf == nil {
			return 0
		}
		return int(p.zipf.Uint64())
	default: // uniform
		return p.rng.Intn(p.spec.Workload.KeySpace)
	}
}
