// Package scenario is the declarative benchmark harness: YAML workload
// specs — staged load shapes, input-key distributions (including
// hot-key Zipf skew), multi-site topologies with netsim WAN shaping,
// scripted fault events (kill -9, drain, rejoin, restart) and
// assertion blocks — compiled into a deterministic, seeded schedule
// and executed against an in-process bench.Testbed. Results are
// written as BENCH_<name>.json through the shared bench.Report writer
// and committed per PR, so the repo carries its own performance
// trajectory instead of leaving it to CI artifacts.
//
// The shape follows benchctl (see SNIPPETS.md): named stages, run
// metadata rich enough to reproduce a run exactly, machine-checkable
// pass/fail. See docs/BENCH.md for the schema and conventions.
package scenario

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Duration is a time.Duration that marshals as its String() form, so
// the spec echoed into BENCH_*.json stays human-readable ("150ms", not
// 150000000).
type Duration time.Duration

// MarshalJSON renders the duration as a quoted Go duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(time.Duration(d).String())), nil
}

// D is the underlying time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// Spec is one parsed scenario.
type Spec struct {
	// Name names the scenario; the result file is BENCH_<name>.json.
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seed drives every random choice in the workload schedule; same
	// spec + same seed = identical schedule (default 42).
	Seed     int64        `json:"seed"`
	Topology TopologySpec `json:"topology"`
	Service  ServiceSpec  `json:"service"`
	Workload WorkloadSpec `json:"workload"`
	// Tenants declares the workload's tenant mix: each scheduled
	// request is tagged with a tenant drawn from these shares (the
	// uncovered remainder stays anonymous), and each tenant's quota is
	// installed on the service before the measured window.
	Tenants []TenantSpec `json:"tenants,omitempty"`
	// Auth runs the scenario authenticated: the service requires bearer
	// tokens, one user per tenant is registered and logged in before
	// the measured window, and every tagged request resolves its caller
	// from that tenant's token (untagged remainder requests stay on the
	// internal anonymous path). Requires a tenants block.
	Auth   bool        `json:"auth,omitempty"`
	Stages []StageSpec `json:"stages"`
	Faults []FaultSpec `json:"faults,omitempty"`
	// Assertions hold machine-checked bounds on the run's totals,
	// sorted by name for stable output.
	Assertions []Assertion `json:"assertions,omitempty"`
}

// TopologySpec shapes the deployment.
type TopologySpec struct {
	// TMs is the number of Task Manager sites (default 1); sites are
	// named cooley-tm-1..N, the IDs fault events address by index.
	TMs int `json:"tms"`
	// WAN applies the paper's measured 20.7 ms RTT shaping between the
	// Management Service and every TM site.
	WAN bool `json:"wan"`
	// Nodes is the per-extra-site cluster size (default 4).
	Nodes int `json:"nodes"`
	// Heartbeat is the TM heartbeat interval; defaults to
	// tm_stale_after/4 when liveness is on, else off.
	Heartbeat Duration `json:"heartbeat"`
}

// ServiceSpec tunes the Management Service under test.
type ServiceSpec struct {
	// Cache enables the service-layer result cache.
	Cache bool `json:"cache"`
	// MaxQueue is the admission-control bound (0 = unbounded).
	MaxQueue int `json:"max_queue"`
	// TMStaleAfter enables the liveness window + dead-TM watchdog.
	TMStaleAfter Duration `json:"tm_stale_after"`
	// FailoverRetries bounds re-dispatches per request (0 = default 2).
	FailoverRetries int `json:"failover_retries"`
	// AutoscaleInterval overrides the autoscaler tick (0 = default 1s).
	AutoscaleInterval Duration `json:"autoscale_interval"`
}

// WorkloadSpec describes what the clients send.
type WorkloadSpec struct {
	// Kind is run | run_batch | pipeline.
	Kind string `json:"kind"`
	// Servable is the workload body: "synthetic" (a scenario-registered
	// python_function holding its pod for Work per request, output
	// keyed by input — cacheable), or "matminer" (the two-step parse →
	// featurize pipeline over formula strings; requires kind pipeline).
	Servable string `json:"servable"`
	// Work is the synthetic servable's per-request service time.
	Work Duration `json:"work"`
	// Placements deploys the servable (or every pipeline step) on the
	// first N sites (default 1; capped at topology.tms).
	Placements int `json:"placements"`
	// Disjoint places pipeline steps round-robin on DISTINCT sites
	// instead of everywhere — forces the distributed engine.
	Disjoint bool `json:"disjoint,omitempty"`
	// Replicas per placement (default 2).
	Replicas int `json:"replicas"`
	// Clients is the concurrent request-worker count (default 8).
	Clients int `json:"clients"`
	// KeySpace is the number of distinct input keys (default 16).
	KeySpace int `json:"key_space"`
	// Distribution picks keys: uniform | zipf | unique (unique = every
	// request a never-before-seen key; maximally cache-hostile).
	Distribution string `json:"distribution"`
	// ZipfS is the Zipf skew exponent (> 1; default 1.2).
	ZipfS float64 `json:"zipf_s,omitempty"`
	// BatchSize is the inputs per run_batch request (default 8).
	BatchSize int `json:"batch_size,omitempty"`
	// NoCache bypasses the result cache per request (X-DLHub-Cache
	// bypass), isolating serving latency from memoization.
	NoCache bool `json:"no_cache,omitempty"`
}

// StageSpec is one load stage; stages run back to back.
type StageSpec struct {
	Name string `json:"name"`
	// Kind is steady | ramp | spike | saturation. steady spaces requests
	// evenly at Rate; ramp moves linearly from StartRate to Rate across
	// the stage; spike injects the stage's requests in four bursts;
	// saturation binary-searches the sustainable req/s ceiling between
	// StartRate and Rate, running one steady probe of Duration per step.
	Kind     string   `json:"kind"`
	Duration Duration `json:"duration"`
	// Rate is the target req/s (the END rate for ramp, the search upper
	// bound for saturation).
	Rate float64 `json:"rate"`
	// StartRate is ramp's starting req/s (default 0) and saturation's
	// search lower bound (required > 0 there).
	StartRate float64 `json:"start_rate,omitempty"`
	// Probes is the number of binary-search steps a saturation stage
	// runs (default 6; each probe holds Duration of load).
	Probes int `json:"probes,omitempty"`
}

// FaultSpec schedules one fault event relative to run start.
type FaultSpec struct {
	At Duration `json:"at"`
	// Kind is kill (kill -9 the TM process; its pods survive), restart
	// (new TM process reattaches to the site), drain (graceful
	// out-of-rotation, placements migrate), rejoin (drained TM returns
	// to rotation), or restart_ms (kill -9 the Management Service and
	// boot a fresh one over the same durable store; recovery must
	// reproduce the pre-kill state exactly or the fault fails).
	Kind string `json:"kind"`
	// TM is the 1-based site index the fault targets (not set for
	// restart_ms, which targets the Management Service).
	TM int `json:"tm"`
	// Redeploy re-deploys the workload servables onto the site after a
	// rejoin/restart, so it takes placed traffic again (a drain
	// migrated its placements away).
	Redeploy bool `json:"redeploy,omitempty"`
}

// TenantSpec declares one tenant in the workload mix.
type TenantSpec struct {
	// ID tags the tenant's requests on the data plane ("anonymous" is
	// reserved for the untagged remainder).
	ID string `json:"id"`
	// Share is the tenant's fraction of scheduled requests, in (0, 1];
	// shares may sum to < 1 and the remainder stays anonymous.
	Share float64 `json:"share"`
	// Priority is the dequeue-weight class: high | normal | low
	// (default normal).
	Priority string `json:"priority,omitempty"`
	// MaxInFlight caps the tenant's concurrently admitted runs
	// (0 = unlimited). Admissions beyond it reject with quota_exceeded.
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// RatePerSec caps the tenant's admissions per second with a
	// one-second burst (0 = unlimited).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
}

// Assertion is one machine-checked bound on the run's totals. The
// min_/max_ prefix of the name encodes the comparison direction; a
// ".<tenant-id>" suffix scopes the bound to one tenant's slice of the
// run (e.g. "max_p99_ms.bg").
type Assertion struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// assertionNames enumerates the known assertion keys and whether their
// value is a fraction (bounded to [0,1]).
var assertionNames = map[string]struct{ fraction bool }{
	"max_error_rate":          {fraction: true},
	"min_cache_hit_rate":      {fraction: true},
	"max_cache_hit_rate":      {fraction: true},
	"min_throughput":          {},
	"max_p99_ms":              {},
	"min_redispatched":        {},
	"min_requests":            {},
	"min_saturation_rps":      {},
	"min_quota_rejections":    {},
	"max_quota_rejections":    {},
	"max_overload_rejections": {},
}

// perTenantAssertions lists the bases that accept a ".<tenant-id>"
// qualifier; the rest are whole-run observables (cache, saturation,
// failover) that have no per-tenant slice.
var perTenantAssertions = map[string]bool{
	"max_error_rate":          true,
	"max_p99_ms":              true,
	"min_requests":            true,
	"min_throughput":          true,
	"min_quota_rejections":    true,
	"max_quota_rejections":    true,
	"max_overload_rejections": true,
}

// splitAssertion splits a possibly tenant-qualified assertion name
// into its base and tenant ("" when unqualified).
func splitAssertion(name string) (base, tenant string) {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return name, ""
}

// TMID names a 1-based site index the way the testbed does.
func TMID(i int) string { return fmt.Sprintf("cooley-tm-%d", i) }

// ParseFile reads, parses and validates a scenario spec file.
func ParseFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// Parse parses and validates a scenario spec from YAML bytes.
func Parse(data []byte) (*Spec, error) {
	root, err := parseYAML(data)
	if err != nil {
		return nil, err
	}
	spec, err := decodeSpec(root)
	if err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// Compressed returns a copy with stage durations and fault offsets
// divided by factor (rates untouched, so total request counts shrink
// with the wall time) — how CI runs committed scenarios at reduced
// scale.
func (s *Spec) Compressed(factor float64) *Spec {
	if factor <= 1 {
		return s
	}
	c := *s
	c.Stages = append([]StageSpec(nil), s.Stages...)
	for i := range c.Stages {
		c.Stages[i].Duration = Duration(float64(c.Stages[i].Duration) / factor)
	}
	c.Faults = append([]FaultSpec(nil), s.Faults...)
	for i := range c.Faults {
		c.Faults[i].At = Duration(float64(c.Faults[i].At) / factor)
	}
	return &c
}

// SaturationStage returns the spec's saturation stage, if any (Validate
// guarantees it is then the only stage).
func (s *Spec) SaturationStage() *StageSpec {
	if len(s.Stages) == 1 && s.Stages[0].Kind == "saturation" {
		return &s.Stages[0]
	}
	return nil
}

// HasFault reports whether any fault event has the given kind.
func (s *Spec) HasFault(kind string) bool {
	for _, f := range s.Faults {
		if f.Kind == kind {
			return true
		}
	}
	return false
}

// TotalDuration sums the stage durations.
func (s *Spec) TotalDuration() time.Duration {
	var total time.Duration
	for _, st := range s.Stages {
		total += st.Duration.D()
	}
	return total
}

// Validate checks the spec's internal consistency; the error names the
// offending field.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: name is required")
	}
	for _, r := range s.Name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return fmt.Errorf("scenario: name %q: use lowercase letters, digits, - and _ (it names BENCH_<name>.json)", s.Name)
		}
	}
	if s.Topology.TMs < 1 {
		return fmt.Errorf("scenario %s: topology.tms must be >= 1, got %d", s.Name, s.Topology.TMs)
	}
	if s.Service.TMStaleAfter < 0 {
		return fmt.Errorf("scenario %s: service.tm_stale_after must be >= 0", s.Name)
	}
	switch s.Workload.Kind {
	case "run", "run_batch", "pipeline":
	default:
		return fmt.Errorf("scenario %s: workload.kind %q (want run, run_batch or pipeline)", s.Name, s.Workload.Kind)
	}
	switch s.Workload.Servable {
	case "synthetic":
		if s.Workload.Kind == "pipeline" {
			return fmt.Errorf("scenario %s: workload.servable synthetic cannot serve kind pipeline (use matminer)", s.Name)
		}
	case "matminer":
		if s.Workload.Kind != "pipeline" {
			return fmt.Errorf("scenario %s: workload.servable matminer requires kind pipeline", s.Name)
		}
	default:
		return fmt.Errorf("scenario %s: workload.servable %q (want synthetic or matminer)", s.Name, s.Workload.Servable)
	}
	if s.Workload.Work < 0 {
		return fmt.Errorf("scenario %s: workload.work must be >= 0", s.Name)
	}
	if s.Workload.Placements < 1 || s.Workload.Placements > s.Topology.TMs {
		return fmt.Errorf("scenario %s: workload.placements %d out of range [1, topology.tms=%d]", s.Name, s.Workload.Placements, s.Topology.TMs)
	}
	if s.Workload.Replicas < 1 {
		return fmt.Errorf("scenario %s: workload.replicas must be >= 1", s.Name)
	}
	if s.Workload.Clients < 1 {
		return fmt.Errorf("scenario %s: workload.clients must be >= 1", s.Name)
	}
	if s.Workload.KeySpace < 1 {
		return fmt.Errorf("scenario %s: workload.key_space must be >= 1", s.Name)
	}
	switch s.Workload.Distribution {
	case "uniform", "unique":
	case "zipf":
		if s.Workload.ZipfS <= 1 {
			return fmt.Errorf("scenario %s: workload.zipf_s must be > 1 for the zipf distribution, got %g", s.Name, s.Workload.ZipfS)
		}
	default:
		return fmt.Errorf("scenario %s: workload.distribution %q (want uniform, zipf or unique)", s.Name, s.Workload.Distribution)
	}
	if s.Workload.Kind == "run_batch" && s.Workload.BatchSize < 1 {
		return fmt.Errorf("scenario %s: workload.batch_size must be >= 1 for run_batch", s.Name)
	}
	tenantIDs := map[string]bool{}
	var shareSum float64
	for i, t := range s.Tenants {
		if t.ID == "" {
			return fmt.Errorf("scenario %s: tenants[%d]: id is required", s.Name, i)
		}
		if t.ID == "anonymous" {
			return fmt.Errorf("scenario %s: tenants[%d]: id %q is reserved for the untagged remainder", s.Name, i, t.ID)
		}
		if tenantIDs[t.ID] {
			return fmt.Errorf("scenario %s: duplicate tenant id %q", s.Name, t.ID)
		}
		tenantIDs[t.ID] = true
		if t.Share <= 0 || t.Share > 1 {
			return fmt.Errorf("scenario %s: tenant %s: share must be in (0, 1], got %g", s.Name, t.ID, t.Share)
		}
		shareSum += t.Share
		switch t.Priority {
		case "", "high", "normal", "low":
		default:
			return fmt.Errorf("scenario %s: tenant %s: priority %q (want high, normal or low)", s.Name, t.ID, t.Priority)
		}
		if t.MaxInFlight < 0 {
			return fmt.Errorf("scenario %s: tenant %s: max_in_flight must be >= 0", s.Name, t.ID)
		}
		if t.RatePerSec < 0 {
			return fmt.Errorf("scenario %s: tenant %s: rate_per_sec must be >= 0", s.Name, t.ID)
		}
	}
	if shareSum > 1+1e-9 {
		return fmt.Errorf("scenario %s: tenant shares sum to %g, must be <= 1", s.Name, shareSum)
	}
	// Tenants may combine with restart_ms: quotas are WAL-logged and
	// replayed on recovery, so the assertions stay pinned across the
	// restart. (This combination was rejected before quotas were
	// durable.)
	if s.Auth && len(s.Tenants) == 0 {
		return fmt.Errorf("scenario %s: auth requires a tenants block (the tenant users are what log in)", s.Name)
	}
	if len(s.Stages) == 0 {
		return fmt.Errorf("scenario %s: at least one stage is required", s.Name)
	}
	seen := map[string]bool{}
	for i, st := range s.Stages {
		if st.Name == "" {
			return fmt.Errorf("scenario %s: stages[%d]: name is required", s.Name, i)
		}
		if seen[st.Name] {
			return fmt.Errorf("scenario %s: duplicate stage name %q", s.Name, st.Name)
		}
		seen[st.Name] = true
		switch st.Kind {
		case "steady", "spike":
			if st.StartRate != 0 {
				return fmt.Errorf("scenario %s: stage %s: start_rate only applies to ramp and saturation stages", s.Name, st.Name)
			}
		case "ramp":
		case "saturation":
			// A saturation stage owns the whole run: the binary search
			// controls the load itself, so neither other stages nor a
			// fault timeline can share the timeline with it.
			if len(s.Stages) != 1 {
				return fmt.Errorf("scenario %s: a saturation stage must be the only stage", s.Name)
			}
			if len(s.Faults) != 0 {
				return fmt.Errorf("scenario %s: saturation scenarios cannot schedule faults", s.Name)
			}
			if len(s.Tenants) != 0 {
				// Probe load is generated at runtime, not from the
				// pre-compiled schedule the tenant mix is drawn into.
				return fmt.Errorf("scenario %s: tenants cannot combine with a saturation stage", s.Name)
			}
			if st.StartRate <= 0 {
				return fmt.Errorf("scenario %s: stage %s: saturation needs start_rate > 0 (the search lower bound)", s.Name, st.Name)
			}
			if st.StartRate >= st.Rate {
				return fmt.Errorf("scenario %s: stage %s: start_rate %g must be < rate %g (the search bounds)", s.Name, st.Name, st.StartRate, st.Rate)
			}
			if st.Probes < 1 || st.Probes > 20 {
				return fmt.Errorf("scenario %s: stage %s: probes must be in [1, 20], got %d", s.Name, st.Name, st.Probes)
			}
		default:
			return fmt.Errorf("scenario %s: stage %s: kind %q (want steady, ramp, spike or saturation)", s.Name, st.Name, st.Kind)
		}
		if st.Kind != "saturation" && st.Probes != 0 {
			return fmt.Errorf("scenario %s: stage %s: probes only applies to saturation stages", s.Name, st.Name)
		}
		if st.Duration <= 0 {
			return fmt.Errorf("scenario %s: stage %s: duration must be > 0, got %s", s.Name, st.Name, st.Duration.D())
		}
		if st.Rate <= 0 {
			return fmt.Errorf("scenario %s: stage %s: rate must be > 0, got %g", s.Name, st.Name, st.Rate)
		}
		if st.StartRate < 0 {
			return fmt.Errorf("scenario %s: stage %s: start_rate must be >= 0", s.Name, st.Name)
		}
	}
	total := s.TotalDuration()
	for i, f := range s.Faults {
		switch f.Kind {
		case "kill", "restart", "drain", "rejoin":
			if f.TM < 1 || f.TM > s.Topology.TMs {
				return fmt.Errorf("scenario %s: faults[%d]: tm %d out of range [1, topology.tms=%d]", s.Name, i, f.TM, s.Topology.TMs)
			}
		case "restart_ms":
			if f.TM != 0 {
				return fmt.Errorf("scenario %s: faults[%d]: restart_ms takes no tm (it targets the Management Service)", s.Name, i)
			}
			if f.Redeploy {
				return fmt.Errorf("scenario %s: faults[%d]: redeploy does not apply to restart_ms (placements are recovered from the store)", s.Name, i)
			}
		default:
			return fmt.Errorf("scenario %s: faults[%d]: kind %q (want kill, restart, drain, rejoin or restart_ms)", s.Name, i, f.Kind)
		}
		if f.At < 0 || f.At.D() >= total {
			return fmt.Errorf("scenario %s: faults[%d]: at %s outside the run's %s total", s.Name, i, f.At.D(), total)
		}
		if f.Redeploy && (f.Kind == "kill" || f.Kind == "drain") {
			return fmt.Errorf("scenario %s: faults[%d]: redeploy only applies to rejoin/restart", s.Name, i)
		}
	}
	for _, a := range s.Assertions {
		base, tenant := splitAssertion(a.Name)
		meta, known := assertionNames[base]
		if !known {
			names := make([]string, 0, len(assertionNames))
			for n := range assertionNames {
				names = append(names, n)
			}
			sort.Strings(names)
			return fmt.Errorf("scenario %s: unknown assertion %q (known: %v, optionally .<tenant-id> qualified)", s.Name, a.Name, names)
		}
		if tenant != "" {
			if !perTenantAssertions[base] {
				return fmt.Errorf("scenario %s: assertion %s: %s cannot be tenant-qualified (whole-run observable)", s.Name, a.Name, base)
			}
			if !tenantIDs[tenant] {
				return fmt.Errorf("scenario %s: assertion %s: unknown tenant %q (declare it under tenants:)", s.Name, a.Name, tenant)
			}
		}
		if a.Value < 0 {
			return fmt.Errorf("scenario %s: assertion %s: value must be >= 0", s.Name, a.Name)
		}
		if meta.fraction && a.Value > 1 {
			return fmt.Errorf("scenario %s: assertion %s: value is a fraction in [0,1], got %g", s.Name, a.Name, a.Value)
		}
	}
	if s.Service.TMStaleAfter > 0 && s.Topology.Heartbeat.D() >= s.Service.TMStaleAfter.D() {
		return fmt.Errorf("scenario %s: topology.heartbeat %s must be < service.tm_stale_after %s", s.Name, s.Topology.Heartbeat.D(), s.Service.TMStaleAfter.D())
	}
	for _, f := range s.Faults {
		if (f.Kind == "kill" || f.Kind == "restart") && s.Service.TMStaleAfter <= 0 {
			return fmt.Errorf("scenario %s: kill/restart faults need service.tm_stale_after > 0 (no dead-TM signal otherwise)", s.Name)
		}
	}
	return nil
}

// --- decoding ---------------------------------------------------------------

// decodeSpec maps the parsed YAML tree onto a Spec, applying defaults.
// Unknown keys are errors: a typo'd field must fail -scenario-check,
// not silently fall back to a default.
func decodeSpec(root any) (*Spec, error) {
	top, err := asMap(root, "scenario")
	if err != nil {
		return nil, err
	}
	d := &decoder{}
	spec := &Spec{
		Seed: 42,
		Topology: TopologySpec{
			TMs:   1,
			Nodes: 4,
		},
		Workload: WorkloadSpec{
			Kind:         "run",
			Servable:     "synthetic",
			Work:         Duration(10 * time.Millisecond),
			Placements:   1,
			Replicas:     2,
			Clients:      8,
			KeySpace:     16,
			Distribution: "uniform",
			ZipfS:        1.2,
		},
	}
	d.with(top, "scenario", func(f *fields) {
		spec.Name = f.str("name", "")
		spec.Description = f.str("description", "")
		spec.Seed = f.i64("seed", spec.Seed)
		spec.Auth = f.boolean("auth", false)
		if sub, ok := f.sub("topology"); ok {
			d.with(sub, "topology", func(f *fields) {
				spec.Topology.TMs = f.num("tms", spec.Topology.TMs)
				spec.Topology.WAN = f.boolean("wan", false)
				spec.Topology.Nodes = f.num("nodes", spec.Topology.Nodes)
				spec.Topology.Heartbeat = f.dur("heartbeat", 0)
			})
		}
		if sub, ok := f.sub("service"); ok {
			d.with(sub, "service", func(f *fields) {
				spec.Service.Cache = f.boolean("cache", false)
				spec.Service.MaxQueue = f.num("max_queue", 0)
				spec.Service.TMStaleAfter = f.dur("tm_stale_after", 0)
				spec.Service.FailoverRetries = f.num("failover_retries", 0)
				spec.Service.AutoscaleInterval = f.dur("autoscale_interval", 0)
			})
		}
		if sub, ok := f.sub("workload"); ok {
			d.with(sub, "workload", func(f *fields) {
				w := &spec.Workload
				w.Kind = f.str("kind", w.Kind)
				w.Servable = f.str("servable", w.Servable)
				w.Work = f.dur("work", w.Work)
				w.Placements = f.num("placements", w.Placements)
				w.Disjoint = f.boolean("disjoint", false)
				w.Replicas = f.num("replicas", w.Replicas)
				w.Clients = f.num("clients", w.Clients)
				w.KeySpace = f.num("key_space", w.KeySpace)
				w.Distribution = f.str("distribution", w.Distribution)
				w.ZipfS = f.f64("zipf_s", w.ZipfS)
				w.BatchSize = f.num("batch_size", 8)
				w.NoCache = f.boolean("no_cache", false)
			})
		}
		for i, item := range f.list("tenants") {
			sub, err := asMap(item, fmt.Sprintf("tenants[%d]", i))
			if err != nil {
				d.fail(err)
				continue
			}
			var ts TenantSpec
			d.with(sub, fmt.Sprintf("tenants[%d]", i), func(f *fields) {
				ts.ID = f.str("id", "")
				ts.Share = f.f64("share", 0)
				ts.Priority = f.str("priority", "")
				ts.MaxInFlight = f.num("max_in_flight", 0)
				ts.RatePerSec = f.f64("rate_per_sec", 0)
			})
			spec.Tenants = append(spec.Tenants, ts)
		}
		for i, item := range f.list("stages") {
			sub, err := asMap(item, fmt.Sprintf("stages[%d]", i))
			if err != nil {
				d.fail(err)
				continue
			}
			st := StageSpec{Kind: "steady"}
			d.with(sub, fmt.Sprintf("stages[%d]", i), func(f *fields) {
				st.Name = f.str("name", "")
				st.Kind = f.str("kind", st.Kind)
				st.Duration = f.dur("duration", 0)
				st.Rate = f.f64("rate", 0)
				st.StartRate = f.f64("start_rate", 0)
				st.Probes = f.num("probes", 0)
			})
			if st.Kind == "saturation" && st.Probes == 0 {
				st.Probes = 6
			}
			spec.Stages = append(spec.Stages, st)
		}
		for i, item := range f.list("faults") {
			sub, err := asMap(item, fmt.Sprintf("faults[%d]", i))
			if err != nil {
				d.fail(err)
				continue
			}
			var fa FaultSpec
			d.with(sub, fmt.Sprintf("faults[%d]", i), func(f *fields) {
				fa.At = f.dur("at", 0)
				fa.Kind = f.str("kind", "")
				fa.TM = f.num("tm", 0)
				fa.Redeploy = f.boolean("redeploy", false)
			})
			spec.Faults = append(spec.Faults, fa)
		}
		if sub, ok := f.sub("assertions"); ok {
			names := make([]string, 0, len(sub))
			for name := range sub {
				names = append(names, name)
			}
			sort.Strings(names)
			af := &fields{d: d, section: "assertions", m: sub, used: map[string]bool{}}
			for _, name := range names {
				spec.Assertions = append(spec.Assertions, Assertion{Name: name, Value: af.f64(name, 0)})
			}
		}
	})
	if d.err != nil {
		return nil, d.err
	}
	// Heartbeat default: fast enough that the liveness window cannot
	// expire between beats.
	if spec.Service.TMStaleAfter > 0 && spec.Topology.Heartbeat == 0 {
		spec.Topology.Heartbeat = Duration(spec.Service.TMStaleAfter.D() / 4)
	}
	return spec, nil
}

// decoder accumulates the first decode error; subsequent field reads
// become no-ops so every helper can stay expression-shaped.
type decoder struct{ err error }

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// with runs fn over a section's fields, then rejects unknown keys.
func (d *decoder) with(m map[string]any, section string, fn func(*fields)) {
	f := &fields{d: d, section: section, m: m, used: map[string]bool{}}
	fn(f)
	for key := range m {
		if !f.used[key] {
			d.fail(fmt.Errorf("scenario: %s: unknown field %q", section, key))
			return
		}
	}
}

// fields reads typed values out of one mapping section.
type fields struct {
	d       *decoder
	section string
	m       map[string]any
	used    map[string]bool
}

func (f *fields) raw(key string) (string, bool) {
	f.used[key] = true
	v, ok := f.m[key]
	if !ok {
		return "", false
	}
	s, isStr := v.(string)
	if !isStr {
		f.d.fail(fmt.Errorf("scenario: %s.%s: expected a scalar value", f.section, key))
		return "", false
	}
	return s, true
}

func (f *fields) str(key, def string) string {
	if s, ok := f.raw(key); ok {
		return s
	}
	return def
}

func (f *fields) num(key string, def int) int {
	s, ok := f.raw(key)
	if !ok {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		f.d.fail(fmt.Errorf("scenario: %s.%s: %q is not an integer", f.section, key, s))
		return def
	}
	return n
}

func (f *fields) i64(key string, def int64) int64 {
	s, ok := f.raw(key)
	if !ok {
		return def
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		f.d.fail(fmt.Errorf("scenario: %s.%s: %q is not an integer", f.section, key, s))
		return def
	}
	return n
}

func (f *fields) f64(key string, def float64) float64 {
	s, ok := f.raw(key)
	if !ok {
		return def
	}
	n, err := strconv.ParseFloat(s, 64)
	if err != nil {
		f.d.fail(fmt.Errorf("scenario: %s.%s: %q is not a number", f.section, key, s))
		return def
	}
	return n
}

func (f *fields) boolean(key string, def bool) bool {
	s, ok := f.raw(key)
	if !ok {
		return def
	}
	switch s {
	case "true":
		return true
	case "false":
		return false
	}
	f.d.fail(fmt.Errorf("scenario: %s.%s: %q is not a bool (true/false)", f.section, key, s))
	return def
}

func (f *fields) dur(key string, def Duration) Duration {
	s, ok := f.raw(key)
	if !ok {
		return def
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		f.d.fail(fmt.Errorf("scenario: %s.%s: %q is not a duration (e.g. 500ms, 2s)", f.section, key, s))
		return def
	}
	return Duration(d)
}

func (f *fields) sub(key string) (map[string]any, bool) {
	f.used[key] = true
	v, ok := f.m[key]
	if !ok {
		return nil, false
	}
	m, err := asMap(v, f.section+"."+key)
	if err != nil {
		f.d.fail(err)
		return nil, false
	}
	return m, true
}

func (f *fields) list(key string) []any {
	f.used[key] = true
	v, ok := f.m[key]
	if !ok {
		return nil
	}
	l, isList := v.([]any)
	if !isList {
		f.d.fail(fmt.Errorf("scenario: %s.%s: expected a list", f.section, key))
		return nil
	}
	return l
}

func asMap(v any, what string) (map[string]any, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("scenario: %s: expected a mapping", what)
	}
	return m, nil
}
