package scenario

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// minimalSpec is the smallest valid scenario; test cases mutate it.
const minimalSpec = `
name: unit
workload:
  kind: run
  servable: synthetic
stages:
  - name: only
    kind: steady
    duration: 2s
    rate: 10
`

func TestParseMinimalDefaults(t *testing.T) {
	spec, err := Parse([]byte(minimalSpec))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 42 {
		t.Errorf("default seed = %d, want 42", spec.Seed)
	}
	if spec.Topology.TMs != 1 || spec.Topology.Nodes != 4 {
		t.Errorf("topology defaults = %+v", spec.Topology)
	}
	w := spec.Workload
	if w.Replicas != 2 || w.Clients != 8 || w.KeySpace != 16 || w.Distribution != "uniform" {
		t.Errorf("workload defaults = %+v", w)
	}
	if w.Work.D() != 10*time.Millisecond {
		t.Errorf("default work = %s", w.Work.D())
	}
	if total := spec.TotalDuration(); total != 2*time.Second {
		t.Errorf("total duration = %s", total)
	}
}

// TestParseFullSpec pins the whole surface: every section, quoted
// scalars, comments, durations, zipf numerics, faults and assertions.
func TestParseFullSpec(t *testing.T) {
	spec, err := Parse([]byte(`
# top comment
name: full
description: "every # field"   # trailing comment
seed: 7
topology:
  tms: 2
  wan: true
  nodes: 6
  heartbeat: 250ms
service:
  cache: true
  max_queue: 100
  tm_stale_after: 1s
  failover_retries: 3
workload:
  kind: run
  servable: synthetic
  work: 15ms
  placements: 2
  replicas: 3
  clients: 4
  key_space: 64
  distribution: zipf
  zipf_s: 1.4
stages:
  - name: a
    kind: ramp
    duration: 3s
    start_rate: 2
    rate: 20
  - name: b
    kind: spike
    duration: 2s
    rate: 30
faults:
  - at: 1s
    kind: kill
    tm: 2
  - at: 2500ms
    kind: restart
    tm: 2
    redeploy: true
assertions:
  max_error_rate: 0.01
  min_redispatched: 1
`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Description != "every # field" {
		t.Errorf("quoted description = %q", spec.Description)
	}
	if !spec.Topology.WAN || spec.Topology.Heartbeat.D() != 250*time.Millisecond {
		t.Errorf("topology = %+v", spec.Topology)
	}
	if !spec.Service.Cache || spec.Service.TMStaleAfter.D() != time.Second || spec.Service.FailoverRetries != 3 {
		t.Errorf("service = %+v", spec.Service)
	}
	if spec.Workload.ZipfS != 1.4 || spec.Workload.Distribution != "zipf" {
		t.Errorf("workload = %+v", spec.Workload)
	}
	if len(spec.Stages) != 2 || spec.Stages[0].StartRate != 2 || spec.Stages[1].Kind != "spike" {
		t.Errorf("stages = %+v", spec.Stages)
	}
	if len(spec.Faults) != 2 || spec.Faults[1].At.D() != 2500*time.Millisecond || !spec.Faults[1].Redeploy {
		t.Errorf("faults = %+v", spec.Faults)
	}
	if len(spec.Assertions) != 2 {
		t.Errorf("assertions = %+v", spec.Assertions)
	}
}

// TestParseErrors tables every rejected spec: YAML-level breakage,
// unknown fields, and validation bounds. The harness must refuse these
// loudly — a typo that silently became a default would invalidate a
// committed result.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		yaml string
		want string // substring of the error
	}{
		{"tabs", "name: x\n\tworkload: y\n", "tabs are not allowed"},
		{"multi-doc", "name: x\n---\nname: y\n", "multiple documents"},
		{"duplicate-key", "name: x\nname: y\n", "duplicate key"},
		{"empty-doc", "# only comments\n", "empty document"},
		{"empty-seq-item", minimalSpec + "faults:\n  -\n", "empty sequence items"},
		{"non-mapping-root", "- a\n- b\n", "expected a mapping"},
		{"unknown-top-field", minimalSpec + "bogus: 1\n", `unknown field "bogus"`},
		{"unknown-workload-field", strings.Replace(minimalSpec, "servable: synthetic", "servable: synthetic\n  typo_field: 3", 1), `unknown field "typo_field"`},
		{"missing-name", strings.Replace(minimalSpec, "name: unit\n", "", 1), "name is required"},
		{"bad-name", strings.Replace(minimalSpec, "name: unit", "name: Unit Test", 1), "lowercase"},
		{"bad-seed", strings.Replace(minimalSpec, "name: unit", "name: unit\nseed: abc", 1), "not an integer"},
		{"bad-duration", strings.Replace(minimalSpec, "duration: 2s", "duration: fast", 1), "not a duration"},
		{"zero-duration", strings.Replace(minimalSpec, "duration: 2s", "duration: 0s", 1), "duration must be > 0"},
		{"negative-rate", strings.Replace(minimalSpec, "rate: 10", "rate: -5", 1), "rate must be > 0"},
		{"bad-stage-kind", strings.Replace(minimalSpec, "kind: steady", "kind: sawtooth", 1), `kind "sawtooth"`},
		{"steady-start-rate", strings.Replace(minimalSpec, "rate: 10", "rate: 10\n    start_rate: 5", 1), "start_rate only applies to ramp"},
		{"no-stages", strings.Replace(minimalSpec, "stages:\n  - name: only\n    kind: steady\n    duration: 2s\n    rate: 10\n", "stages:\n", 1), "expected a list"},
		{"duplicate-stage", minimalSpec + "  - name: only\n    kind: steady\n    duration: 1s\n    rate: 1\n", `duplicate stage name "only"`},
		{"bad-workload-kind", strings.Replace(minimalSpec, "kind: run", "kind: fire", 1), `workload.kind "fire"`},
		{"bad-servable", strings.Replace(minimalSpec, "servable: synthetic", "servable: resnet", 1), `workload.servable "resnet"`},
		{"pipeline-synthetic", strings.Replace(minimalSpec, "kind: run", "kind: pipeline", 1), "cannot serve kind pipeline"},
		{"bad-distribution", strings.Replace(minimalSpec, "servable: synthetic", "servable: synthetic\n  distribution: pareto", 1), `workload.distribution "pareto"`},
		{"zipf-low-s", strings.Replace(minimalSpec, "servable: synthetic", "servable: synthetic\n  distribution: zipf\n  zipf_s: 0.5", 1), "zipf_s must be > 1"},
		{"placements-exceed-tms", strings.Replace(minimalSpec, "servable: synthetic", "servable: synthetic\n  placements: 3", 1), "out of range"},
		{"unknown-fault-kind", minimalSpec + "faults:\n  - at: 1s\n    kind: explode\n    tm: 1\n", `kind "explode"`},
		{"fault-tm-out-of-range", minimalSpec + "service:\n  tm_stale_after: 1s\nfaults:\n  - at: 1s\n    kind: kill\n    tm: 2\n", "tm 2 out of range"},
		{"fault-past-end", minimalSpec + "service:\n  tm_stale_after: 1s\nfaults:\n  - at: 10s\n    kind: kill\n    tm: 1\n", "outside the run"},
		{"kill-without-liveness", minimalSpec + "faults:\n  - at: 1s\n    kind: kill\n    tm: 1\n", "need service.tm_stale_after"},
		{"redeploy-on-kill", minimalSpec + "service:\n  tm_stale_after: 1s\nfaults:\n  - at: 1s\n    kind: kill\n    tm: 1\n    redeploy: true\n", "redeploy only applies"},
		{"unknown-assertion", minimalSpec + "assertions:\n  max_latency: 5\n", `unknown assertion "max_latency"`},
		{"assertion-fraction-range", minimalSpec + "assertions:\n  max_error_rate: 1.5\n", "fraction in [0,1]"},
		{"assertion-negative", minimalSpec + "assertions:\n  min_throughput: -1\n", "must be >= 0"},
		{"heartbeat-vs-stale", minimalSpec + "topology:\n  heartbeat: 2s\nservice:\n  tm_stale_after: 1s\n", "must be < service.tm_stale_after"},
		{"tenant-unknown-field", minimalSpec + "tenants:\n  - id: a\n    share: 0.5\n    weight: 3\n", `unknown field "weight"`},
		{"tenant-missing-id", minimalSpec + "tenants:\n  - share: 0.5\n", "id is required"},
		{"tenant-reserved-id", minimalSpec + "tenants:\n  - id: anonymous\n    share: 0.5\n", "reserved"},
		{"tenant-duplicate-id", minimalSpec + "tenants:\n  - id: a\n    share: 0.3\n  - id: a\n    share: 0.3\n", `duplicate tenant id "a"`},
		{"tenant-zero-share", minimalSpec + "tenants:\n  - id: a\n    share: 0\n", "share must be in (0, 1]"},
		{"tenant-share-above-one", minimalSpec + "tenants:\n  - id: a\n    share: 1.5\n", "share must be in (0, 1]"},
		{"tenant-shares-sum", minimalSpec + "tenants:\n  - id: a\n    share: 0.7\n  - id: b\n    share: 0.7\n", "sum to 1.4"},
		{"tenant-bad-priority", minimalSpec + "tenants:\n  - id: a\n    share: 0.5\n    priority: urgent\n", `priority "urgent"`},
		{"tenant-negative-inflight", minimalSpec + "tenants:\n  - id: a\n    share: 0.5\n    max_in_flight: -1\n", "max_in_flight must be >= 0"},
		{"tenant-negative-rate", minimalSpec + "tenants:\n  - id: a\n    share: 0.5\n    rate_per_sec: -2\n", "rate_per_sec must be >= 0"},
		{"auth-without-tenants", minimalSpec + "auth: true\n", "auth requires a tenants block"},
		{"assertion-unknown-tenant", minimalSpec + "tenants:\n  - id: a\n    share: 0.5\nassertions:\n  max_p99_ms.b: 100\n", `unknown tenant "b"`},
		{"assertion-not-per-tenant", minimalSpec + "tenants:\n  - id: a\n    share: 0.5\nassertions:\n  min_cache_hit_rate.a: 0.5\n", "cannot be tenant-qualified"},
		{"assertion-qualified-unknown-base", minimalSpec + "tenants:\n  - id: a\n    share: 0.5\nassertions:\n  max_latency.a: 5\n", `unknown assertion "max_latency.a"`},
		{"tenant-with-saturation", strings.Replace(minimalSpec, "kind: steady\n    duration: 2s\n    rate: 10",
			"kind: saturation\n    duration: 2s\n    rate: 10\n    start_rate: 5", 1) + "tenants:\n  - id: a\n    share: 0.5\n", "cannot combine with a saturation stage"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.yaml))
			if err == nil {
				t.Fatalf("Parse accepted invalid spec")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseAuthAndDurableTenants pins two contracts of the durable
// tenant registry: auth round-trips as a spec field, and tenants may
// now combine with a restart_ms fault (quotas are WAL-replayed, so the
// prohibition that guarded runtime-only quotas is gone).
func TestParseAuthAndDurableTenants(t *testing.T) {
	yaml := minimalSpec + `auth: true
tenants:
  - id: a
    share: 0.5
    max_in_flight: 4
faults:
  - at: 1s
    kind: restart_ms
`
	spec, err := Parse([]byte(yaml))
	if err != nil {
		t.Fatalf("tenants + restart_ms + auth must validate now that quotas are durable: %v", err)
	}
	if !spec.Auth {
		t.Fatal("auth: true did not round-trip")
	}
	if !spec.HasFault("restart_ms") || len(spec.Tenants) != 1 {
		t.Fatalf("spec lost its tenant or fault: %+v", spec)
	}
}

// TestParseTenants pins the tenants: block round trip and the
// schedule-side contract: tenant assignment is deterministic, tracks
// the declared shares, and — critically — declaring tenants must NOT
// perturb the key/offset schedule the same spec compiled to before,
// or every committed pre-tenancy result would silently change.
func TestParseTenants(t *testing.T) {
	yaml := minimalSpec + `tenants:
  - id: hog
    share: 0.7
    priority: high
    max_in_flight: 4
    rate_per_sec: 2.5
  - id: bg
    share: 0.1
assertions:
  max_error_rate.bg: 0
  max_p99_ms.bg: 100
`
	spec, err := Parse([]byte(yaml))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Tenants) != 2 {
		t.Fatalf("tenants = %+v", spec.Tenants)
	}
	hog := spec.Tenants[0]
	if hog.ID != "hog" || hog.Share != 0.7 || hog.Priority != "high" || hog.MaxInFlight != 4 || hog.RatePerSec != 2.5 {
		t.Errorf("hog = %+v", hog)
	}
	if bg := spec.Tenants[1]; bg.ID != "bg" || bg.Share != 0.1 || bg.Priority != "" {
		t.Errorf("bg = %+v", bg)
	}

	a, b := BuildSchedule(spec), BuildSchedule(spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec+seed produced different tenant assignments")
	}
	counts := map[string]int{}
	for _, r := range a.Requests {
		counts[r.Tenant]++
	}
	n := len(a.Requests)
	if counts["hog"] == 0 || counts["bg"] == 0 || counts[""] == 0 {
		t.Fatalf("tenant mix missing a class: %v", counts)
	}
	// 20 requests at these shares: the split must at least order as
	// hog > anonymous > bg (0.7 / 0.2 / 0.1).
	if !(counts["hog"] > counts[""] && counts[""] >= counts["bg"]) {
		t.Errorf("tenant shares off: %v over %d requests", counts, n)
	}

	// Bit-identical keys/offsets vs the tenant-free spec.
	plain, err := Parse([]byte(minimalSpec))
	if err != nil {
		t.Fatal(err)
	}
	base := BuildSchedule(plain)
	if len(base.Requests) != n {
		t.Fatalf("request counts diverged: %d vs %d", len(base.Requests), n)
	}
	for i := range base.Requests {
		if base.Requests[i].Key != a.Requests[i].Key || base.Requests[i].Offset != a.Requests[i].Offset {
			t.Fatalf("request %d: declaring tenants changed the schedule (%+v vs %+v)", i, base.Requests[i], a.Requests[i])
		}
	}
}

// The same spec and seed must compile to the identical schedule —
// offsets, stage indices, keys, faults — run after run. This is what
// makes a committed BENCH file reproducible.
func TestScheduleDeterminism(t *testing.T) {
	yaml := strings.Replace(minimalSpec, "servable: synthetic",
		"servable: synthetic\n  distribution: zipf\n  zipf_s: 1.3\n  key_space: 64", 1)
	spec, err := Parse([]byte(yaml))
	if err != nil {
		t.Fatal(err)
	}
	a, b := BuildSchedule(spec), BuildSchedule(spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec+seed produced different schedules")
	}
	spec2 := *spec
	spec2.Seed = spec.Seed + 1
	c := BuildSchedule(&spec2)
	same := len(c.Requests) == len(a.Requests)
	if same {
		diff := false
		for i := range a.Requests {
			if a.Requests[i].Key != c.Requests[i].Key {
				diff = true
				break
			}
		}
		if !diff {
			t.Fatal("different seeds drew identical key sequences")
		}
	}
}

// TestScheduleShapes pins the stage math: request counts, monotone
// offsets inside the stage window, and spike's four-burst layout.
func TestScheduleShapes(t *testing.T) {
	spec, err := Parse([]byte(`
name: shapes
workload:
  kind: run
  servable: synthetic
stages:
  - name: flat
    kind: steady
    duration: 10s
    rate: 5
  - name: up
    kind: ramp
    duration: 10s
    start_rate: 0
    rate: 10
  - name: burst
    kind: spike
    duration: 8s
    rate: 10
`))
	if err != nil {
		t.Fatal(err)
	}
	sched := BuildSchedule(spec)
	counts := map[int]int{}
	for i, r := range sched.Requests {
		counts[r.Stage]++
		w := sched.Windows[r.Stage]
		if r.Offset < w.Start || r.Offset >= w.End {
			t.Fatalf("request %d offset %s outside stage %q window [%s,%s)", i, r.Offset, w.Name, w.Start, w.End)
		}
		if i > 0 && r.Offset < sched.Requests[i-1].Offset {
			t.Fatalf("offsets not monotone at %d", i)
		}
	}
	if counts[0] != 50 { // 5 req/s * 10s
		t.Errorf("steady count = %d, want 50", counts[0])
	}
	if counts[1] != 50 { // (0+10)/2 * 10s
		t.Errorf("ramp count = %d, want 50", counts[1])
	}
	if counts[2] != 80 { // 10 req/s * 8s
		t.Errorf("spike count = %d, want 80", counts[2])
	}
	// Spike: exactly four distinct offsets, at quarters of the stage.
	burstStart := sched.Windows[2].Start
	offsets := map[time.Duration]int{}
	for _, r := range sched.Requests {
		if r.Stage == 2 {
			offsets[r.Offset-burstStart]++
		}
	}
	if len(offsets) != 4 {
		t.Fatalf("spike bursts = %v, want 4 distinct offsets", offsets)
	}
	for _, q := range []time.Duration{0, 2 * time.Second, 4 * time.Second, 6 * time.Second} {
		if offsets[q] != 20 {
			t.Errorf("burst at %s has %d requests, want 20", q, offsets[q])
		}
	}
	// Ramp rate grows: the second half must hold more requests than
	// the first.
	rampStart, rampEnd := sched.Windows[1].Start, sched.Windows[1].End
	mid := rampStart + (rampEnd-rampStart)/2
	var first, second int
	for _, r := range sched.Requests {
		if r.Stage != 1 {
			continue
		}
		if r.Offset < mid {
			first++
		} else {
			second++
		}
	}
	if second <= first {
		t.Errorf("ramp not increasing: first half %d, second half %d", first, second)
	}
}

// Compressed divides durations and fault offsets but preserves rates,
// so request counts shrink linearly.
func TestCompressed(t *testing.T) {
	spec, err := Parse([]byte(minimalSpec + "service:\n  tm_stale_after: 500ms\nfaults:\n  - at: 1s\n    kind: kill\n    tm: 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	c := spec.Compressed(2)
	if c.Stages[0].Duration.D() != time.Second {
		t.Errorf("compressed duration = %s, want 1s", c.Stages[0].Duration.D())
	}
	if c.Stages[0].Rate != 10 {
		t.Errorf("compressed rate = %g, want 10 (rates are preserved)", c.Stages[0].Rate)
	}
	if c.Faults[0].At.D() != 500*time.Millisecond {
		t.Errorf("compressed fault offset = %s, want 500ms", c.Faults[0].At.D())
	}
	if spec.Stages[0].Duration.D() != 2*time.Second {
		t.Error("Compressed mutated the original spec")
	}
	full, half := BuildSchedule(spec), BuildSchedule(c)
	if len(half.Requests)*2 != len(full.Requests) {
		t.Errorf("compressed requests = %d, full = %d, want half", len(half.Requests), len(full.Requests))
	}
}

// Every committed scenario file must parse, validate, and compile to a
// non-empty schedule.
func TestCommittedScenarios(t *testing.T) {
	files := []string{"diurnal-ramp", "hotkey-skew", "wan-pipeline", "chaos-tm-kill", "cache-churn", "tenant-fairness"}
	for _, name := range files {
		t.Run(name, func(t *testing.T) {
			spec, err := ParseFile("../../../scenarios/" + name + ".yaml")
			if err != nil {
				t.Fatal(err)
			}
			if spec.Name != name {
				t.Errorf("spec name %q does not match file name %q", spec.Name, name)
			}
			if sched := BuildSchedule(spec); len(sched.Requests) == 0 {
				t.Error("empty schedule")
			}
		})
	}
}
