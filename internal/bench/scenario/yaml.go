package scenario

import (
	"fmt"
	"strings"
)

// Minimal YAML subset parser — the repo is dependency-free by policy,
// and scenario specs only need the benchctl-style declarative core:
// nested mappings by two-space indentation, block sequences ("- item",
// including "- key: value" inline map starts), scalar values (kept as
// strings; the spec decoder owns typing), quoted strings, and
// comments. Anchors, flow collections, multi-line scalars and multiple
// documents are deliberately out of scope and rejected with an error
// naming the line, so a spec that silently needs them fails loudly in
// `-scenario-check` instead of mis-parsing.

type yamlLine struct {
	indent int
	text   string
	num    int // 1-based source line, for errors
}

// parseYAML parses data into nested map[string]any / []any / string
// values.
func parseYAML(data []byte) (any, error) {
	var lines []yamlLine
	for i, raw := range strings.Split(string(data), "\n") {
		text := stripComment(raw)
		trimmed := strings.TrimSpace(text)
		if trimmed == "" {
			continue
		}
		if strings.Contains(text, "\t") {
			return nil, fmt.Errorf("yaml: line %d: tabs are not allowed for indentation", i+1)
		}
		if trimmed == "---" {
			if len(lines) > 0 {
				return nil, fmt.Errorf("yaml: line %d: multiple documents are not supported", i+1)
			}
			continue
		}
		indent := len(text) - len(strings.TrimLeft(text, " "))
		lines = append(lines, yamlLine{indent: indent, text: trimmed, num: i + 1})
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("yaml: empty document")
	}
	p := &yamlParser{lines: lines}
	v, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, fmt.Errorf("yaml: line %d: unexpected dedent/content %q", p.lines[p.pos].num, p.lines[p.pos].text)
	}
	return v, nil
}

// stripComment removes a trailing comment. '#' starts a comment at the
// start of a line or after whitespace, and never inside quotes.
func stripComment(line string) string {
	inSingle, inDouble := false, false
	for i, r := range line {
		switch r {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if inSingle || inDouble {
				continue
			}
			if i == 0 || line[i-1] == ' ' {
				return line[:i]
			}
		}
	}
	return line
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// parseBlock parses the run of lines at exactly this indentation as one
// collection (sequence if the first line starts with "- ", mapping
// otherwise).
func (p *yamlParser) parseBlock(indent int) (any, error) {
	if p.pos >= len(p.lines) {
		return nil, fmt.Errorf("yaml: unexpected end of document")
	}
	ln := p.lines[p.pos]
	if ln.indent != indent {
		return nil, fmt.Errorf("yaml: line %d: expected indent %d, got %d", ln.num, indent, ln.indent)
	}
	if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

func (p *yamlParser) parseSequence(indent int) (any, error) {
	var seq []any
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent != indent {
			if ln.indent > indent {
				return nil, fmt.Errorf("yaml: line %d: unexpected indent under sequence", ln.num)
			}
			break
		}
		if !strings.HasPrefix(ln.text, "- ") && ln.text != "-" {
			return nil, fmt.Errorf("yaml: line %d: expected sequence item, got %q", ln.num, ln.text)
		}
		if ln.text == "-" {
			return nil, fmt.Errorf("yaml: line %d: empty sequence items are not supported", ln.num)
		}
		item := strings.TrimSpace(ln.text[2:])
		if key, _, isMap := splitKey(item); isMap && isBareKey(key) {
			// "- key: value": the item is a mapping whose first entry is
			// inline. Re-interpret this line as that entry, indented past
			// the dash, and let parseMapping consume the continuation
			// lines.
			p.lines[p.pos] = yamlLine{indent: indent + 2, text: item, num: ln.num}
			m, err := p.parseMapping(indent + 2)
			if err != nil {
				return nil, err
			}
			seq = append(seq, m)
			continue
		}
		seq = append(seq, parseScalar(item))
		p.pos++
	}
	return seq, nil
}

func (p *yamlParser) parseMapping(indent int) (any, error) {
	m := make(map[string]any)
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent != indent {
			if ln.indent > indent {
				return nil, fmt.Errorf("yaml: line %d: unexpected indent", ln.num)
			}
			break
		}
		key, rest, ok := splitKey(ln.text)
		if !ok || !isBareKey(key) {
			return nil, fmt.Errorf("yaml: line %d: expected \"key: value\", got %q", ln.num, ln.text)
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("yaml: line %d: duplicate key %q", ln.num, key)
		}
		p.pos++
		if rest != "" {
			m[key] = parseScalar(rest)
			continue
		}
		// "key:" introduces a nested block — or an empty value when the
		// next line does not indent past it.
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			m[key] = v
			continue
		}
		m[key] = ""
	}
	return m, nil
}

// splitKey splits "key: value" (or "key:") respecting quotes; ok is
// false when the line has no top-level colon.
func splitKey(s string) (key, value string, ok bool) {
	inSingle, inDouble := false, false
	for i, r := range s {
		switch r {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case ':':
			if inSingle || inDouble {
				continue
			}
			if i+1 == len(s) {
				return strings.TrimSpace(s[:i]), "", true
			}
			if s[i+1] == ' ' {
				return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+2:]), true
			}
		}
	}
	return "", "", false
}

// isBareKey reports whether s is a plausible mapping key (identifier-ish;
// quoted keys are not supported).
func isBareKey(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-', r == '.':
		default:
			return false
		}
	}
	return true
}

// parseScalar unquotes a scalar; typing (int, float, bool, duration) is
// the spec decoder's job so error messages can name the field.
func parseScalar(s string) string {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	return s
}
