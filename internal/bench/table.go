package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is one reproduced table or figure's data, printed as the rows /
// series the paper reports.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a caption note.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// Entry converts a rendered table into its Report form (report.go).
func (t *Table) Entry(name string, elapsed time.Duration) ReportEntry {
	return ReportEntry{
		Name:       name,
		Title:      t.Title,
		Headers:    t.Headers,
		Rows:       t.Rows,
		Notes:      t.Notes,
		DurationMS: elapsed.Milliseconds(),
	}
}

// Table1 reproduces Table I: "Model repositories compared and
// contrasted." The DLHub column states what this reproduction
// implements; the others restate the paper's survey.
func Table1() *Table {
	t := &Table{
		Title:   "Table I: Model repositories compared and contrasted (BYO = bring your own)",
		Headers: []string{"Dimension", "ModelHub", "Caffe Zoo", "ModelHub.ai", "Kipoi", "DLHub"},
	}
	t.Add("Publication method", "BYO", "BYO", "Curated", "Curated", "BYO")
	t.Add("Domain(s) supported", "General", "General", "Medical", "Genomics", "General")
	t.Add("Datasets included", "Yes", "Yes", "No", "No", "Yes")
	t.Add("Metadata type", "Ad hoc", "Ad hoc", "Ad hoc", "Structured", "Structured")
	t.Add("Search capabilities", "SQL", "None", "Web GUI", "Web GUI", "Elasticsearch")
	t.Add("Identifiers supported", "No", "BYO", "No", "BYO", "BYO")
	t.Add("Versioning supported", "Yes", "No", "No", "Yes", "Yes")
	t.Add("Export method", "Git", "Git", "Git/Docker", "Git/Docker", "Docker")
	t.Note("DLHub column verified against this reproduction: schema-validated publication (internal/schema),")
	t.Note("free-text/prefix/range/facet search with ACLs (internal/search), BYO DOIs and versioning")
	t.Note("(internal/core repository), container export (internal/container).")
	return t
}

// Table2 reproduces Table II: "Serving systems compared and contrasted."
func Table2() *Table {
	t := &Table{
		Title:   "Table II: Serving systems compared and contrasted (K8s = Kubernetes)",
		Headers: []string{"Dimension", "PennAI", "TF Serving", "Clipper", "SageMaker", "DLHub"},
	}
	t.Add("Service model", "Hosted", "Self-service", "Self-service", "Hosted", "Hosted")
	t.Add("Model types", "Limited", "TF Servables", "General", "General", "General")
	t.Add("Input types supported", "Unknown", "Primitives, Files", "Primitives", "Structured, Files", "Structured, Files")
	t.Add("Training supported", "Yes", "No", "No", "Yes", "No")
	t.Add("Transformations", "No", "Yes", "No", "No", "Yes")
	t.Add("Workflows", "No", "No", "No", "No", "Yes")
	t.Add("Invocation interface", "Web GUI", "gRPC, REST", "gRPC, REST", "gRPC, REST", "API, REST")
	t.Add("Execution environment", "Cloud", "Docker, K8s, Cloud", "Docker, K8s", "Cloud, Docker", "K8s, Docker, Singularity, Cloud")
	t.Note("TF Serving, Clipper and SageMaker rows correspond to the comparators implemented in")
	t.Note("internal/tfserving, internal/clipper and internal/sagemaker; the DLHub row to internal/core")
	t.Note("(transformations = python_function servables, workflows = pipeline servables).")
	return t
}
