// Package bench assembles the paper's three-site deployment (§V-A) in
// one process and implements every experiment of the evaluation
// section. The testbed wires together: the Management Service ("on an
// Amazon EC2 instance"), its queue broker, one or more Task Managers
// ("on a co-located cluster, Cooley"), and the PetrelKube-like
// Kubernetes cluster running servable pods — with netsim-shaped links
// carrying the paper's measured RTTs between the sites.
package bench

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/auth"
	"repro/internal/clipper"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/k8s"
	"repro/internal/netsim"
	"repro/internal/queue"
	"repro/internal/sagemaker"
	"repro/internal/servable"
	"repro/internal/simconst"
	"repro/internal/taskmanager"
	"repro/internal/tfserving"
)

// Options configures a Testbed.
type Options struct {
	// Nodes in the Kubernetes cluster (default 14, as PetrelKube).
	Nodes int
	// WAN applies the paper's measured RTTs between MS and TM. When
	// false the queue is in-process (unit-test mode).
	WAN bool
	// Memoize enables the TM cache at startup.
	Memoize bool
	// ServiceCache enables the Management Service's result cache. The
	// testbed defaults it OFF (unlike core.New) so the paper-faithful
	// experiments keep measuring the TM-side cache of §V-B5; the cache
	// ablation turns it on explicitly.
	ServiceCache bool
	// Executors beyond "parsl" to install: "tfserving-grpc",
	// "tfserving-rest", "sagemaker", "clipper".
	Executors []string
	// Auth enables authentication on the Management Service.
	Auth *auth.Service
	// RunScope is required when Auth is set.
	RunScope string
	// AutoscaleInterval overrides the Management Service's autoscaler
	// tick (0 keeps the 1s default). The autoscale ablation and tests
	// use fast ticks so convergence fits in bench timescales.
	AutoscaleInterval time.Duration
	// MaxQueue sets the service-wide admission-control bound (0 =
	// unbounded, matching production default).
	MaxQueue int
}

// Testbed is an assembled deployment.
type Testbed struct {
	MS      *core.Service
	TM      *taskmanager.TM
	Cluster *k8s.Cluster
	Runtime *container.Runtime
	Clipper *clipper.System

	queueSrv    *queue.Server
	queueAddr   string
	queueClient *queue.Client
	execs       map[string]executor.Executor

	// extra sites attached with AddTM, torn down by Close.
	extraTMs     []*taskmanager.TM
	extraClients []*queue.Client
}

// NewTestbed assembles a deployment per opts.
func NewTestbed(opts Options) (*Testbed, error) {
	if opts.Nodes <= 0 {
		opts.Nodes = 14
	}
	tb := &Testbed{execs: make(map[string]executor.Executor)}

	// Site 3: the Kubernetes cluster.
	registry := container.NewRegistry()
	builder := container.NewBuilder(registry)
	tb.Runtime = container.NewRuntime(registry)
	tb.Runtime.RegisterProcess("dlhub-ipp-engine", executor.NewPodProcessFactory(true))
	tb.Runtime.RegisterProcess(tfserving.Entrypoint, tfserving.NewProcessFactory())
	tb.Runtime.RegisterProcess(sagemaker.Entrypoint, sagemaker.NewProcessFactory())
	tb.Cluster = k8s.NewCluster(tb.Runtime, opts.Nodes, k8s.Resources{MilliCPU: 32000, MemMB: 128 * 1024})

	// TM <-> cluster link (0.17 ms RTT, 40GbE).
	tmClusterLink := netsim.RTT(simconst.D(simconst.RTTTMToCluster), simconst.LinkBandwidth)

	// Executors at the TM site.
	tb.execs["parsl"] = executor.NewParsl(tb.Cluster, builder, tmClusterLink)
	for _, name := range opts.Executors {
		switch name {
		case "tfserving-grpc":
			tb.execs[name] = tfserving.New(tb.Cluster, builder, tmClusterLink, tfserving.GRPC)
		case "tfserving-rest":
			tb.execs[name] = tfserving.New(tb.Cluster, builder, tmClusterLink, tfserving.REST)
		case "sagemaker":
			tb.execs[name] = sagemaker.New(tb.Cluster, builder, tmClusterLink)
		case "clipper":
			sys, err := clipper.New(tb.Cluster, builder, tb.Runtime, tmClusterLink)
			if err != nil {
				return nil, fmt.Errorf("bench: clipper: %w", err)
			}
			tb.Clipper = sys
			tb.execs[name] = sys
		default:
			return nil, fmt.Errorf("bench: unknown executor %q", name)
		}
	}

	// Site 1: the Management Service and its broker.
	tb.MS = core.New(core.Config{
		Auth:              opts.Auth,
		RunScope:          opts.RunScope,
		Registry:          registry,
		Cache:             core.CacheConfig{Disabled: !opts.ServiceCache},
		AutoscaleInterval: opts.AutoscaleInterval,
		MaxQueue:          opts.MaxQueue,
	})

	// Site 2: the Task Manager, connected over the WAN or in-process.
	var q taskmanager.QueueAPI
	if opts.WAN {
		tb.queueSrv = queue.NewServer(tb.MS.Broker())
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		// Shape BOTH ends so a request/reply exchange pays the full
		// measured 20.7 ms RTT (each end delays its outbound leg by
		// half the RTT).
		wan := netsim.RTT(simconst.D(simconst.RTTManagementToTM), simconst.WANBandwidth)
		go tb.queueSrv.Serve(netsim.NewListener(l, wan)) //nolint:errcheck
		tb.queueAddr = l.Addr().String()
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			return nil, err
		}
		tb.queueClient = queue.NewClient(netsim.Wrap(conn, wan))
		q = tb.queueClient
	} else {
		q = taskmanager.BrokerAdapter{B: tb.MS.Broker()}
	}

	tm, err := taskmanager.New(taskmanager.Config{
		ID:        "cooley-tm-1",
		Queue:     q,
		Executors: tb.execs,
		Memoize:   opts.Memoize,
		Pullers:   8,
	})
	if err != nil {
		return nil, err
	}
	tb.TM = tm
	if err := tb.MS.WaitForTM(1, 10*time.Second); err != nil {
		return nil, err
	}
	return tb, nil
}

// AddTM attaches an additional Task Manager site to the testbed: its
// own registry, mini cluster and parsl executor, connected to the
// Management Service's broker — over the same WAN shaping as the first
// site when the testbed runs in WAN mode. Multi-site experiments
// (distributed pipelines, disjoint placements) build on it.
func (tb *Testbed) AddTM(id string, nodes int) (*taskmanager.TM, error) {
	if nodes <= 0 {
		nodes = 4
	}
	registry := container.NewRegistry()
	rt := container.NewRuntime(registry)
	rt.RegisterProcess("dlhub-ipp-engine", executor.NewPodProcessFactory(true))
	cluster := k8s.NewCluster(rt, nodes, k8s.Resources{MilliCPU: 32000, MemMB: 64 * 1024})
	link := netsim.RTT(simconst.D(simconst.RTTTMToCluster), simconst.LinkBandwidth)
	parsl := executor.NewParsl(cluster, container.NewBuilder(registry), link)

	var q taskmanager.QueueAPI
	if tb.queueAddr != "" {
		wan := netsim.RTT(simconst.D(simconst.RTTManagementToTM), simconst.WANBandwidth)
		conn, err := net.Dial("tcp", tb.queueAddr)
		if err != nil {
			return nil, err
		}
		client := queue.NewClient(netsim.Wrap(conn, wan))
		tb.extraClients = append(tb.extraClients, client)
		q = client
	} else {
		q = taskmanager.BrokerAdapter{B: tb.MS.Broker()}
	}
	tm, err := taskmanager.New(taskmanager.Config{
		ID:        id,
		Queue:     q,
		Executors: map[string]executor.Executor{"parsl": parsl},
		Pullers:   8,
	})
	if err != nil {
		return nil, err
	}
	tb.extraTMs = append(tb.extraTMs, tm)
	return tm, nil
}

// ExecutorReplicas reports the actual replica count a site executor is
// running for a servable (0 for unknown routes) — ground truth for
// autoscaler tests and the autoscale ablation, independent of the
// Management Service's desired-state view.
func (tb *Testbed) ExecutorReplicas(route, servableID string) int {
	ex, ok := tb.execs[route]
	if !ok {
		return 0
	}
	return ex.Replicas(servableID)
}

// Close tears the deployment down.
func (tb *Testbed) Close() {
	for _, tm := range tb.extraTMs {
		tm.Close()
	}
	for _, c := range tb.extraClients {
		c.Close()
	}
	if tb.TM != nil {
		tb.TM.Close() // closes executors too
	}
	if tb.queueClient != nil {
		tb.queueClient.Close()
	}
	if tb.queueSrv != nil {
		tb.queueSrv.Close()
	}
	if tb.MS != nil {
		tb.MS.Close()
	}
}

// PublishPaperServables publishes and deploys the six §V-A servables on
// the parsl executor with the given replica count, returning their
// published IDs keyed by short name.
func (tb *Testbed) PublishPaperServables(caller core.Caller, replicas int, seed int64) (map[string]string, error) {
	pkgs, err := servable.PaperServables(seed)
	if err != nil {
		return nil, err
	}
	ids := make(map[string]string, len(pkgs))
	for name, pkg := range pkgs {
		id, err := tb.MS.Publish(context.Background(), caller, pkg)
		if err != nil {
			return nil, fmt.Errorf("bench: publish %s: %w", name, err)
		}
		if err := tb.MS.Deploy(context.Background(), caller, id, replicas, "parsl"); err != nil {
			return nil, fmt.Errorf("bench: deploy %s: %w", name, err)
		}
		ids[name] = id
	}
	return ids, nil
}
