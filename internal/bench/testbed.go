// Package bench assembles the paper's three-site deployment (§V-A) in
// one process and implements every experiment of the evaluation
// section. The testbed wires together: the Management Service ("on an
// Amazon EC2 instance"), its queue broker, one or more Task Managers
// ("on a co-located cluster, Cooley"), and the PetrelKube-like
// Kubernetes cluster running servable pods — with netsim-shaped links
// carrying the paper's measured RTTs between the sites.
//
// Beyond the paper experiments, the testbed is the substrate for the
// declarative scenario harness (bench/scenario): it exposes scripted
// fault injection — KillTM (a kill -9: no replies, heartbeats stop,
// the site's cluster keeps its pods), RestartTM (a new TM process
// reattaching to the surviving cluster) — alongside the Management
// Service's own DrainTM/RejoinTM lifecycle.
package bench

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/auth"
	"repro/internal/clipper"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/k8s"
	"repro/internal/netsim"
	"repro/internal/queue"
	"repro/internal/sagemaker"
	"repro/internal/servable"
	"repro/internal/simconst"
	"repro/internal/store"
	"repro/internal/taskmanager"
	"repro/internal/tfserving"
)

// Options configures a Testbed.
type Options struct {
	// Nodes in the Kubernetes cluster (default 14, as PetrelKube).
	Nodes int
	// WAN applies the paper's measured RTTs between MS and TM. When
	// false the queue is in-process (unit-test mode).
	WAN bool
	// Memoize enables the TM cache at startup.
	Memoize bool
	// ServiceCache enables the Management Service's result cache. The
	// testbed defaults it OFF (unlike core.New) so the paper-faithful
	// experiments keep measuring the TM-side cache of §V-B5; the cache
	// ablation turns it on explicitly.
	ServiceCache bool
	// Executors beyond "parsl" to install: "tfserving-grpc",
	// "tfserving-rest", "sagemaker", "clipper".
	Executors []string
	// Auth enables authentication on the Management Service.
	Auth *auth.Service
	// RunScope is required when Auth is set.
	RunScope string
	// RequireAuth makes bearer tokens mandatory (what `dlhub-server
	// -auth` sets): an empty bearer resolves to 401, never anonymous.
	RequireAuth bool
	// AuthClientID names the resource-server client login issues tokens
	// for; AuthProvider the identity provider register/login default to
	// ("" = "local"). Only meaningful with Auth.
	AuthClientID string
	AuthProvider string
	// AutoscaleInterval overrides the Management Service's autoscaler
	// tick (0 keeps the 1s default). The autoscale ablation and tests
	// use fast ticks so convergence fits in bench timescales.
	AutoscaleInterval time.Duration
	// MaxQueue sets the service-wide admission-control bound (0 =
	// unbounded, matching production default).
	MaxQueue int
	// Heartbeat sets every Task Manager's heartbeat interval (0
	// disables heartbeats). Required whenever TMStaleAfter is set —
	// without beats every TM goes stale right after registration.
	Heartbeat time.Duration
	// TMStaleAfter enables the Management Service's liveness window and
	// dead-TM watchdog (0 disables, the production default).
	TMStaleAfter time.Duration
	// FailoverRetries bounds dead-TM re-dispatches per request (0 keeps
	// the service default of 2; < 0 disables failover).
	FailoverRetries int
	// DataDir, when set, backs the Management Service with the durable
	// store (internal/store WAL + checkpoints) rooted there and enables
	// RestartMS — the scenario harness's kill-and-recover fault. Empty
	// keeps today's in-memory service (no store, zero overhead).
	DataDir string
}

// site is one Task Manager site: the TM process plus the executors it
// fronts. The executors (and the cluster behind them) deliberately
// outlive a killed TM — on a real kill -9 the serving pods keep
// running, and a restarted TM reattaches to them.
type site struct {
	tm      *taskmanager.TM
	execs   map[string]executor.Executor
	memoize bool
	pullers int
	// client is the WAN-shaped queue connection (nil in-process);
	// replaced on restart.
	client *queue.Client
}

// Testbed is an assembled deployment.
type Testbed struct {
	MS      *core.Service
	TM      *taskmanager.TM
	Cluster *k8s.Cluster
	Runtime *container.Runtime
	Clipper *clipper.System

	opts      Options
	queueSrv  *queue.Server
	queueAddr string
	execs     map[string]executor.Executor

	// wal is the durable store behind MS when Options.DataDir is set;
	// msCfg is the service config RestartMS rebuilds from (minus the
	// Store, which is reopened per restart); msMu guards the MS swap
	// RestartMS performs (readers that may overlap a restart go through
	// Service()).
	wal   *store.WAL
	msCfg core.Config
	msMu  sync.RWMutex

	// sites tracks every TM site (including the primary) by TM ID, in
	// creation order for teardown.
	sites     map[string]*site
	siteOrder []string
}

// NewTestbed assembles a deployment per opts.
func NewTestbed(opts Options) (*Testbed, error) {
	if opts.Nodes <= 0 {
		opts.Nodes = 14
	}
	tb := &Testbed{
		opts:  opts,
		execs: make(map[string]executor.Executor),
		sites: make(map[string]*site),
	}

	// Site 3: the Kubernetes cluster.
	registry := container.NewRegistry()
	builder := container.NewBuilder(registry)
	tb.Runtime = container.NewRuntime(registry)
	tb.Runtime.RegisterProcess("dlhub-ipp-engine", executor.NewPodProcessFactory(true))
	tb.Runtime.RegisterProcess(tfserving.Entrypoint, tfserving.NewProcessFactory())
	tb.Runtime.RegisterProcess(sagemaker.Entrypoint, sagemaker.NewProcessFactory())
	tb.Cluster = k8s.NewCluster(tb.Runtime, opts.Nodes, k8s.Resources{MilliCPU: 32000, MemMB: 128 * 1024})

	// TM <-> cluster link (0.17 ms RTT, 40GbE).
	tmClusterLink := netsim.RTT(simconst.D(simconst.RTTTMToCluster), simconst.LinkBandwidth)

	// Executors at the TM site.
	tb.execs["parsl"] = executor.NewParsl(tb.Cluster, builder, tmClusterLink)
	for _, name := range opts.Executors {
		switch name {
		case "tfserving-grpc":
			tb.execs[name] = tfserving.New(tb.Cluster, builder, tmClusterLink, tfserving.GRPC)
		case "tfserving-rest":
			tb.execs[name] = tfserving.New(tb.Cluster, builder, tmClusterLink, tfserving.REST)
		case "sagemaker":
			tb.execs[name] = sagemaker.New(tb.Cluster, builder, tmClusterLink)
		case "clipper":
			sys, err := clipper.New(tb.Cluster, builder, tb.Runtime, tmClusterLink)
			if err != nil {
				return nil, fmt.Errorf("bench: clipper: %w", err)
			}
			tb.Clipper = sys
			tb.execs[name] = sys
		default:
			return nil, fmt.Errorf("bench: unknown executor %q", name)
		}
	}

	// Site 1: the Management Service and its broker, optionally backed
	// by the durable store. The testbed skips WAL fsyncs: the process
	// (and so the OS page cache) survives an in-process RestartMS, and
	// what the scenarios prove is recovery correctness, not disk sync.
	cfg := core.Config{
		Auth:              opts.Auth,
		RunScope:          opts.RunScope,
		RequireAuth:       opts.RequireAuth,
		AuthClientID:      opts.AuthClientID,
		AuthProvider:      opts.AuthProvider,
		Registry:          registry,
		Cache:             core.CacheConfig{Disabled: !opts.ServiceCache},
		AutoscaleInterval: opts.AutoscaleInterval,
		MaxQueue:          opts.MaxQueue,
		TMStaleAfter:      opts.TMStaleAfter,
		FailoverRetries:   opts.FailoverRetries,
	}
	tb.msCfg = cfg
	if opts.DataDir != "" {
		w, err := store.Open(store.Options{Dir: opts.DataDir, Sync: false})
		if err != nil {
			return nil, fmt.Errorf("bench: durable store: %w", err)
		}
		tb.wal = w
		cfg.Store = w
	}
	tb.MS = core.New(cfg)
	if tb.wal != nil {
		if _, err := tb.MS.Recover(); err != nil {
			tb.wal.Close()
			return nil, fmt.Errorf("bench: recover: %w", err)
		}
	}

	// Site 2: the Task Manager, connected over the WAN or in-process.
	if opts.WAN {
		tb.queueSrv = queue.NewServer(tb.MS.Broker())
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		// Shape BOTH ends so a request/reply exchange pays the full
		// measured 20.7 ms RTT (each end delays its outbound leg by
		// half the RTT).
		wan := netsim.RTT(simconst.D(simconst.RTTManagementToTM), simconst.WANBandwidth)
		go tb.queueSrv.Serve(netsim.NewListener(l, wan)) //nolint:errcheck
		tb.queueAddr = l.Addr().String()
	}

	st := &site{execs: tb.execs, memoize: opts.Memoize, pullers: 8}
	if err := tb.startSite("cooley-tm-1", st); err != nil {
		return nil, err
	}
	tb.sites["cooley-tm-1"] = st
	tb.siteOrder = append(tb.siteOrder, "cooley-tm-1")
	tb.TM = st.tm
	if err := tb.MS.WaitForTM(1, 10*time.Second); err != nil {
		return nil, err
	}
	return tb, nil
}

// connectQueue returns a broker connection for a TM site: a fresh
// WAN-shaped TCP client when the testbed runs in WAN mode, the
// in-process adapter otherwise.
func (tb *Testbed) connectQueue() (taskmanager.QueueAPI, *queue.Client, error) {
	if tb.queueAddr == "" {
		return taskmanager.BrokerAdapter{B: tb.MS.Broker()}, nil, nil
	}
	wan := netsim.RTT(simconst.D(simconst.RTTManagementToTM), simconst.WANBandwidth)
	conn, err := net.Dial("tcp", tb.queueAddr)
	if err != nil {
		return nil, nil, err
	}
	client := queue.NewClient(netsim.Wrap(conn, wan))
	return client, client, nil
}

// startSite (re)starts the TM process of a site: a queue connection is
// dialed, the TM registers itself, and the site record is updated. The
// previous connection, if any, is closed.
func (tb *Testbed) startSite(id string, st *site) error {
	q, client, err := tb.connectQueue()
	if err != nil {
		return err
	}
	tm, err := taskmanager.New(taskmanager.Config{
		ID:                id,
		Queue:             q,
		Executors:         st.execs,
		Memoize:           st.memoize,
		Pullers:           st.pullers,
		HeartbeatInterval: tb.opts.Heartbeat,
	})
	if err != nil {
		if client != nil {
			client.Close()
		}
		return err
	}
	if st.client != nil {
		st.client.Close()
	}
	st.client = client
	st.tm = tm
	return nil
}

// AddTM attaches an additional Task Manager site to the testbed: its
// own registry, mini cluster and parsl executor, connected to the
// Management Service's broker — over the same WAN shaping as the first
// site when the testbed runs in WAN mode. Multi-site experiments
// (distributed pipelines, disjoint placements, chaos scenarios) build
// on it.
func (tb *Testbed) AddTM(id string, nodes int) (*taskmanager.TM, error) {
	if nodes <= 0 {
		nodes = 4
	}
	if _, dup := tb.sites[id]; dup {
		return nil, fmt.Errorf("bench: site %q already exists", id)
	}
	registry := container.NewRegistry()
	rt := container.NewRuntime(registry)
	rt.RegisterProcess("dlhub-ipp-engine", executor.NewPodProcessFactory(true))
	cluster := k8s.NewCluster(rt, nodes, k8s.Resources{MilliCPU: 32000, MemMB: 64 * 1024})
	link := netsim.RTT(simconst.D(simconst.RTTTMToCluster), simconst.LinkBandwidth)
	parsl := executor.NewParsl(cluster, container.NewBuilder(registry), link)

	st := &site{execs: map[string]executor.Executor{"parsl": parsl}, pullers: 8}
	if err := tb.startSite(id, st); err != nil {
		return nil, err
	}
	tb.sites[id] = st
	tb.siteOrder = append(tb.siteOrder, id)
	return st.tm, nil
}

// TMByID returns a site's current TM process (nil for unknown sites —
// including sites whose TM was killed and not yet restarted, whose
// stale process object is deliberately not handed out).
func (tb *Testbed) TMByID(id string) *taskmanager.TM {
	st, ok := tb.sites[id]
	if !ok {
		return nil
	}
	return st.tm
}

// KillTM kills a site's TM process the way `kill -9` would: pull loops
// and heartbeats stop instantly, claimed tasks never get replies, and
// the site's executors (the cluster's pods) keep running. The
// Management Service notices via its liveness window. The site record
// survives so RestartTM can bring the process back.
func (tb *Testbed) KillTM(id string) error {
	st, ok := tb.sites[id]
	if !ok {
		return fmt.Errorf("bench: unknown site %q", id)
	}
	st.tm.Kill()
	return nil
}

// RestartTM starts a fresh TM process for a previously killed (or
// closed) site, reattaching it to the site's surviving executors —
// deployments made before the kill are intact, exactly as pods survive
// a TM crash. The new process registers with the Management Service
// immediately.
func (tb *Testbed) RestartTM(id string) (*taskmanager.TM, error) {
	st, ok := tb.sites[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown site %q", id)
	}
	if err := tb.startSite(id, st); err != nil {
		return nil, err
	}
	if id == "cooley-tm-1" {
		tb.TM = st.tm
	}
	return st.tm, nil
}

// Service returns the current Management Service. Prefer it over the
// MS field wherever a restart_ms fault may swap the service mid-run —
// a bare field read would race the swap.
func (tb *Testbed) Service() *core.Service {
	tb.msMu.RLock()
	defer tb.msMu.RUnlock()
	return tb.MS
}

// RestartMS kills the Management Service and boots a fresh one over
// the same durable store — the way an operator restarts dlhub-server
// with the same -data-dir after a crash. Nothing is checkpointed on
// the way down (Close never persists), so everything the new service
// knows comes from the last checkpoint plus the WAL tail. Every TM
// process is restarted too: their queue connections point into the
// dead broker, exactly as real TMs must redial a restarted server.
// Their executors (and pods) survive, as on a real TM restart.
//
// The recovered state must fingerprint-identical to the state at kill
// time; a mismatch is returned as an error with the two fingerprints,
// making the scenario harness's restart_ms fault a recovery proof, not
// just a disruption.
func (tb *Testbed) RestartMS() error {
	if tb.wal == nil {
		return fmt.Errorf("bench: RestartMS requires Options.DataDir (no durable store to recover from)")
	}
	before := tb.MS.StateFingerprint()

	// Tear the control plane down: TM processes first (their pull loops
	// target the dying broker), then the service, its store, and the
	// WAN queue server.
	for _, id := range tb.siteOrder {
		tb.sites[id].tm.Kill()
	}
	tb.MS.Close()
	tb.wal.Close()
	if tb.queueSrv != nil {
		tb.queueSrv.Close()
		tb.queueSrv = nil
	}

	w, err := store.Open(store.Options{Dir: tb.opts.DataDir, Sync: false})
	if err != nil {
		return fmt.Errorf("bench: reopen durable store: %w", err)
	}
	tb.wal = w
	cfg := tb.msCfg
	cfg.Store = w
	ms := core.New(cfg)
	if _, err := ms.Recover(); err != nil {
		return fmt.Errorf("bench: recover: %w", err)
	}
	tb.msMu.Lock()
	tb.MS = ms
	tb.msMu.Unlock()

	if tb.opts.WAN {
		tb.queueSrv = queue.NewServer(ms.Broker())
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		wan := netsim.RTT(simconst.D(simconst.RTTManagementToTM), simconst.WANBandwidth)
		go tb.queueSrv.Serve(netsim.NewListener(l, wan)) //nolint:errcheck
		tb.queueAddr = l.Addr().String()
	}
	for _, id := range tb.siteOrder {
		if err := tb.startSite(id, tb.sites[id]); err != nil {
			return fmt.Errorf("bench: restart site %s: %w", id, err)
		}
	}
	tb.TM = tb.sites[tb.siteOrder[0]].tm
	if err := ms.WaitForTM(len(tb.siteOrder), 10*time.Second); err != nil {
		return err
	}
	if after := ms.StateFingerprint(); after != before {
		return fmt.Errorf("bench: recovered state differs from pre-restart state\n--- before restart\n%s--- after recovery\n%s", before, after)
	}
	return nil
}

// ExecutorReplicas reports the actual replica count a site executor is
// running for a servable (0 for unknown routes) — ground truth for
// autoscaler tests and the autoscale ablation, independent of the
// Management Service's desired-state view.
func (tb *Testbed) ExecutorReplicas(route, servableID string) int {
	ex, ok := tb.execs[route]
	if !ok {
		return 0
	}
	return ex.Replicas(servableID)
}

// Close tears the deployment down.
func (tb *Testbed) Close() {
	// Extra sites first, the primary last (it owns the shared executors
	// the comparators were built on), the service after its TMs.
	for i := len(tb.siteOrder) - 1; i >= 0; i-- {
		st := tb.sites[tb.siteOrder[i]]
		if st.tm != nil {
			st.tm.Close()
		}
		if st.client != nil {
			st.client.Close()
		}
	}
	if tb.queueSrv != nil {
		tb.queueSrv.Close()
	}
	if tb.MS != nil {
		tb.MS.Close()
	}
	if tb.wal != nil {
		tb.wal.Close()
	}
}

// PublishPaperServables publishes and deploys the six §V-A servables on
// the parsl executor with the given replica count, returning their
// published IDs keyed by short name.
func (tb *Testbed) PublishPaperServables(caller core.Caller, replicas int, seed int64) (map[string]string, error) {
	pkgs, err := servable.PaperServables(seed)
	if err != nil {
		return nil, err
	}
	ids := make(map[string]string, len(pkgs))
	for name, pkg := range pkgs {
		id, err := tb.MS.Publish(context.Background(), caller, pkg)
		if err != nil {
			return nil, fmt.Errorf("bench: publish %s: %w", name, err)
		}
		if err := tb.MS.Deploy(context.Background(), caller, id, replicas, "parsl"); err != nil {
			return nil, fmt.Errorf("bench: deploy %s: %w", name, err)
		}
		ids[name] = id
	}
	return ids, nil
}
