// Package clipper reproduces the Clipper baseline of §III-B and §V-B5:
// a prediction-serving system whose query frontend runs as a pod on the
// Kubernetes cluster, fronting model containers over in-cluster RPC.
// Its defining contrast with DLHub in Fig. 8 is cache placement:
// "Clipper ... maintains a cache at the query frontend that is deployed
// as a pod on the Kubernetes cluster. Hence, cached responses still
// require the request to be transmitted to the query frontend, leading
// to additional overhead" — whereas DLHub's Parsl cache lives at the
// Task Manager.
package clipper

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/container"
	"repro/internal/executor"
	"repro/internal/k8s"
	"repro/internal/netsim"
	"repro/internal/rpc"
	"repro/internal/servable"
	"repro/internal/simconst"
)

// Entrypoints for the two Clipper container roles.
const (
	FrontendEntrypoint = "clipper-query-frontend"
	ModelEntrypoint    = "clipper-model-container"
)

// Frontend is the query-frontend process: it owns the in-cluster cache
// and routes to model containers.
type Frontend struct {
	mu       sync.Mutex
	srv      *rpc.Server
	addr     string
	models   map[string][]*rpc.Client // servable id -> model container conns
	rr       map[string]int
	cache    map[string][]byte
	caching  bool
	hits     uint64
	requests uint64
}

// NewFrontendFactory returns the frontend's container process factory.
func NewFrontendFactory() container.ProcessFactory {
	return func() container.Process {
		return &Frontend{
			models: make(map[string][]*rpc.Client),
			rr:     make(map[string]int),
			cache:  make(map[string][]byte),
		}
	}
}

// Start implements container.Process: the frontend serves immediately;
// model containers register afterwards via AttachModel.
func (f *Frontend) Start(fs map[string][]byte, env map[string]string) error {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := rpc.NewServer()
	srv.Handle("clipper.predict", f.handlePredict)
	go srv.Serve(l) //nolint:errcheck
	f.mu.Lock()
	f.srv = srv
	f.addr = l.Addr().String()
	f.mu.Unlock()
	return nil
}

type predictRequest struct {
	Servable string          `json:"servable"`
	Input    json.RawMessage `json:"input"`
}

func (f *Frontend) handlePredict(ctx context.Context, payload []byte) ([]byte, error) {
	// Frontend queueing/framing cost.
	time.Sleep(simconst.D(simconst.ClipperFrontendOverhead))

	var req predictRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, fmt.Errorf("clipper: bad predict request: %w", err)
	}

	f.mu.Lock()
	f.requests++
	caching := f.caching
	var key string
	if caching {
		sum := sha256.Sum256(append([]byte(req.Servable+"\x00"), req.Input...))
		key = hex.EncodeToString(sum[:])
		if cached, ok := f.cache[key]; ok {
			f.hits++
			f.mu.Unlock()
			return cached, nil
		}
	}
	conns := f.models[req.Servable]
	if len(conns) == 0 {
		f.mu.Unlock()
		return nil, fmt.Errorf("clipper: model %q not registered", req.Servable)
	}
	idx := f.rr[req.Servable]
	f.rr[req.Servable] = idx + 1
	client := conns[idx%len(conns)]
	f.mu.Unlock()

	out, err := client.Call(ctx, "run", req.Input)
	if err != nil {
		return nil, err
	}
	if caching {
		f.mu.Lock()
		f.cache[key] = out
		f.mu.Unlock()
	}
	return out, nil
}

// AttachModel registers model-container connections for a servable.
func (f *Frontend) AttachModel(servableID string, conns []*rpc.Client) {
	f.mu.Lock()
	old := f.models[servableID]
	f.models[servableID] = conns
	f.mu.Unlock()
	for _, c := range old {
		c.Close()
	}
}

// SetCaching toggles the frontend cache (Fig. 8 ±memoization runs).
func (f *Frontend) SetCaching(on bool) {
	f.mu.Lock()
	f.caching = on
	if !on {
		f.cache = make(map[string][]byte)
	}
	f.mu.Unlock()
}

// CacheStats reports (requests, hits).
func (f *Frontend) CacheStats() (uint64, uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.requests, f.hits
}

// Stop implements container.Process.
func (f *Frontend) Stop() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.srv != nil {
		f.srv.Close()
	}
	for _, conns := range f.models {
		for _, c := range conns {
			c.Close()
		}
	}
}

// Addr returns the frontend's serving address.
func (f *Frontend) Addr() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.addr
}

// --- system ------------------------------------------------------------------

// System is a deployed Clipper instance: one query frontend plus model
// deployments, all on the cluster. It implements executor.Executor so
// the Task Manager can route to it like any serving system.
type System struct {
	cluster *k8s.Cluster
	builder *container.Builder
	tmLink  netsim.Profile // TM <-> cluster (requests enter here)

	mu       sync.Mutex
	frontend *Frontend
	fePod    string
	feClient *rpc.Client
	models   map[string]string // servable id -> model deployment name
}

// New deploys the Clipper query frontend on the cluster. Model
// containers use executor.PodServer (python-hosted), matching Clipper's
// Docker model containers.
func New(cluster *k8s.Cluster, builder *container.Builder, runtime *container.Runtime, tmLink netsim.Profile) (*System, error) {
	runtime.RegisterProcess(FrontendEntrypoint, NewFrontendFactory())
	runtime.RegisterProcess(ModelEntrypoint, executor.NewPodProcessFactory(true))

	if _, err := builder.Build(container.BuildSpec{
		Name: "clipper/frontend", Tag: "0.3", Entrypoint: FrontendEntrypoint,
	}); err != nil {
		return nil, err
	}
	pod, err := cluster.RunPod("clipper-frontend", k8s.PodSpec{
		Image:    "clipper/frontend:0.3",
		Requests: k8s.Resources{MilliCPU: 2000, MemMB: 4096},
		Labels:   map[string]string{"app": "clipper-frontend"},
	})
	if err != nil {
		return nil, err
	}
	fe := pod.Container().Proc.(*Frontend)
	conn, err := net.Dial("tcp", fe.Addr())
	if err != nil {
		return nil, err
	}
	return &System{
		cluster:  cluster,
		builder:  builder,
		tmLink:   tmLink,
		frontend: fe,
		fePod:    pod.Name,
		feClient: rpc.NewClient(netsim.Wrap(conn, tmLink)),
		models:   make(map[string]string),
	}, nil
}

// Name implements executor.Executor.
func (s *System) Name() string { return "clipper" }

// SetCaching toggles frontend memoization.
func (s *System) SetCaching(on bool) { s.frontend.SetCaching(on) }

// CacheStats exposes frontend cache statistics.
func (s *System) CacheStats() (uint64, uint64) { return s.frontend.CacheStats() }

// Deploy implements executor.Executor: build the model image, deploy
// replicas, connect the frontend to them over the in-cluster link.
func (s *System) Deploy(pkg *servable.Package, replicas int) error {
	img, err := executor.BuildServableImage(s.builder, pkg, ModelEntrypoint)
	if err != nil {
		return err
	}
	depName := "clipper-" + pkg.Doc.Publication.Name
	if _, err := s.cluster.CreateDeployment(depName, k8s.PodSpec{
		Image:    img.Ref(),
		Requests: k8s.Resources{MilliCPU: 1000, MemMB: 2048},
	}, replicas); err != nil {
		return err
	}
	s.mu.Lock()
	s.models[pkg.Doc.ID] = depName
	s.mu.Unlock()
	return s.reattach(pkg.Doc.ID, depName)
}

// reattach connects the frontend to current model pods over the
// cluster-internal link.
func (s *System) reattach(servableID, depName string) error {
	pods := s.cluster.PodsMatching(map[string]string{"deployment": depName})
	clusterLink := netsim.RTT(simconst.D(simconst.ClusterInternalRTT), simconst.LinkBandwidth)
	var conns []*rpc.Client
	for _, pod := range pods {
		client, err := executor.DialPod(pod, clusterLink)
		if err != nil {
			return err
		}
		conns = append(conns, client)
	}
	s.frontend.AttachModel(servableID, conns)
	return nil
}

// Scale implements executor.Executor.
func (s *System) Scale(servableID string, replicas int) error {
	s.mu.Lock()
	depName, ok := s.models[servableID]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", executor.ErrNotDeployed, servableID)
	}
	if err := s.cluster.Scale(depName, replicas); err != nil {
		return err
	}
	return s.reattach(servableID, depName)
}

// Replicas implements executor.Executor.
func (s *System) Replicas(servableID string) int {
	s.mu.Lock()
	depName, ok := s.models[servableID]
	s.mu.Unlock()
	if !ok {
		return 0
	}
	return len(s.cluster.PodsMatching(map[string]string{"deployment": depName}))
}

// Invoke implements executor.Executor: requests go TM -> frontend ->
// model container, the topology whose cache placement Fig. 8 exposes.
func (s *System) Invoke(ctx context.Context, servableID string, input any) (executor.Result, error) {
	s.mu.Lock()
	if _, ok := s.models[servableID]; !ok {
		s.mu.Unlock()
		return executor.Result{}, fmt.Errorf("%w: %s", executor.ErrNotDeployed, servableID)
	}
	s.mu.Unlock()

	inputData, err := json.Marshal(input)
	if err != nil {
		return executor.Result{}, err
	}
	payload, err := json.Marshal(predictRequest{Servable: servableID, Input: inputData})
	if err != nil {
		return executor.Result{}, err
	}
	data, err := s.feClient.Call(ctx, "clipper.predict", payload)
	if err != nil {
		return executor.Result{}, err
	}
	var res executor.Result
	if err := json.Unmarshal(data, &res); err != nil {
		return executor.Result{}, err
	}
	return res, nil
}

// Undeploy implements executor.Executor.
func (s *System) Undeploy(servableID string) error {
	s.mu.Lock()
	depName, ok := s.models[servableID]
	if ok {
		delete(s.models, servableID)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", executor.ErrNotDeployed, servableID)
	}
	s.frontend.AttachModel(servableID, nil)
	return s.cluster.DeleteDeployment(depName)
}

// Close implements executor.Executor.
func (s *System) Close() {
	s.mu.Lock()
	ids := make([]string, 0, len(s.models))
	for id := range s.models {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	for _, id := range ids {
		s.Undeploy(id) //nolint:errcheck
	}
	s.feClient.Close()
	s.cluster.DeletePod(s.fePod) //nolint:errcheck
}
