package clipper

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/container"
	"repro/internal/executor"
	"repro/internal/k8s"
	"repro/internal/netsim"
	"repro/internal/servable"
	"repro/internal/simconst"
)

func init() {
	simconst.Scale = 1000
}

func newSystem(t *testing.T) *System {
	t.Helper()
	reg := container.NewRegistry()
	builder := container.NewBuilder(reg)
	rt := container.NewRuntime(reg)
	cluster := k8s.NewCluster(rt, 4, k8s.Resources{MilliCPU: 32000, MemMB: 128 * 1024})
	sys, err := New(cluster, builder, rt, netsim.RTT(170*time.Microsecond, 0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys
}

func TestClipperServesModel(t *testing.T) {
	sys := newSystem(t)
	pkg := servable.MatminerUtilPackage()
	pkg.Doc.ID = "dlhub/util"
	if err := sys.Deploy(pkg, 2); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Invoke(context.Background(), "dlhub/util", "NaCl")
	if err != nil {
		t.Fatal(err)
	}
	m, ok := res.Output.(map[string]any)
	if !ok || len(m) != 2 {
		t.Fatalf("bad output %v", res.Output)
	}
	if sys.Replicas("dlhub/util") != 2 {
		t.Fatalf("want 2 replicas, got %d", sys.Replicas("dlhub/util"))
	}
}

func TestClipperCacheHits(t *testing.T) {
	sys := newSystem(t)
	pkg := servable.MatminerUtilPackage()
	pkg.Doc.ID = "dlhub/util"
	if err := sys.Deploy(pkg, 1); err != nil {
		t.Fatal(err)
	}
	sys.SetCaching(true)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := sys.Invoke(ctx, "dlhub/util", "SiO2"); err != nil {
			t.Fatal(err)
		}
	}
	reqs, hits := sys.CacheStats()
	if reqs != 5 || hits != 4 {
		t.Fatalf("want 5 requests/4 hits, got %d/%d", reqs, hits)
	}
	// Different input misses.
	if _, err := sys.Invoke(ctx, "dlhub/util", "NaCl"); err != nil {
		t.Fatal(err)
	}
	_, hits2 := sys.CacheStats()
	if hits2 != 4 {
		t.Fatalf("different input should miss, hits=%d", hits2)
	}
}

func TestClipperCacheDisabledNoHits(t *testing.T) {
	sys := newSystem(t)
	pkg := servable.MatminerUtilPackage()
	pkg.Doc.ID = "dlhub/util"
	if err := sys.Deploy(pkg, 1); err != nil {
		t.Fatal(err)
	}
	sys.SetCaching(false)
	for i := 0; i < 3; i++ {
		if _, err := sys.Invoke(context.Background(), "dlhub/util", "SiO2"); err != nil {
			t.Fatal(err)
		}
	}
	_, hits := sys.CacheStats()
	if hits != 0 {
		t.Fatalf("caching disabled should have 0 hits, got %d", hits)
	}
}

func TestClipperCachedStillPaysFrontendHop(t *testing.T) {
	// Structural property: cached responses are served by the frontend
	// pod, so the TM->frontend link is still traversed. We verify the
	// cache lives at the frontend (hits counted there), not at the
	// caller.
	sys := newSystem(t)
	pkg := servable.MatminerUtilPackage()
	pkg.Doc.ID = "dlhub/util"
	sys.Deploy(pkg, 1) //nolint:errcheck
	sys.SetCaching(true)
	sys.Invoke(context.Background(), "dlhub/util", "MgO") //nolint:errcheck
	sys.Invoke(context.Background(), "dlhub/util", "MgO") //nolint:errcheck
	reqs, hits := sys.CacheStats()
	if reqs != 2 {
		t.Fatalf("frontend must see every request (got %d) — cache is in-cluster", reqs)
	}
	if hits != 1 {
		t.Fatalf("second identical request should hit, hits=%d", hits)
	}
}

func TestClipperUndeployAndErrors(t *testing.T) {
	sys := newSystem(t)
	if _, err := sys.Invoke(context.Background(), "ghost", "x"); !errors.Is(err, executor.ErrNotDeployed) {
		t.Fatalf("want not deployed, got %v", err)
	}
	pkg := servable.NoopPackage()
	pkg.Doc.ID = "dlhub/noop"
	if err := sys.Deploy(pkg, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Undeploy("dlhub/noop"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Invoke(context.Background(), "dlhub/noop", "x"); !errors.Is(err, executor.ErrNotDeployed) {
		t.Fatalf("want not deployed after undeploy, got %v", err)
	}
	if err := sys.Scale("dlhub/noop", 2); !errors.Is(err, executor.ErrNotDeployed) {
		t.Fatalf("want not deployed on scale, got %v", err)
	}
}

func TestClipperScale(t *testing.T) {
	sys := newSystem(t)
	pkg := servable.NoopPackage()
	pkg.Doc.ID = "dlhub/noop"
	if err := sys.Deploy(pkg, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Scale("dlhub/noop", 4); err != nil {
		t.Fatal(err)
	}
	if sys.Replicas("dlhub/noop") != 4 {
		t.Fatalf("want 4 replicas, got %d", sys.Replicas("dlhub/noop"))
	}
	// Still serves.
	if _, err := sys.Invoke(context.Background(), "dlhub/noop", "x"); err != nil {
		t.Fatal(err)
	}
}
