// Package container is the Docker/Singularity substrate of §IV-A: the
// Management Service "combines DLHub-specific dependencies with
// user-supplied model dependencies into a Dockerfile. It then uses the
// Dockerfile to create a Docker container with the uploaded model
// components and all required dependencies. Finally, it uploads the
// container to the DLHub model repository."
//
// Images are content-addressed stacks of layers; a Registry stores and
// deduplicates layers; Containers are running instances with an
// entrypoint resolved from a process registry (the stand-in for an OS
// exec of the container's command). Start-up pays the injected
// ContainerStartLatency, charged at deployment time only.
package container

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simconst"
)

// Errors.
var (
	ErrImageNotFound     = errors.New("container: image not found")
	ErrContainerNotFound = errors.New("container: container not found")
	ErrNoEntrypoint      = errors.New("container: entrypoint not registered")
	ErrAlreadyStopped    = errors.New("container: already stopped")
)

// File is one file baked into a layer.
type File struct {
	Path string
	Data []byte
}

// Layer is an immutable set of files with a content digest.
type Layer struct {
	Digest string
	Files  []File
	Size   int64
}

// NewLayer builds a layer, computing its content-addressed digest.
func NewLayer(files []File) Layer {
	sorted := append([]File(nil), files...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	h := sha256.New()
	var size int64
	for _, f := range sorted {
		h.Write([]byte(f.Path))
		h.Write([]byte{0})
		h.Write(f.Data)
		h.Write([]byte{0})
		size += int64(len(f.Data))
	}
	return Layer{Digest: "sha256:" + hex.EncodeToString(h.Sum(nil)), Files: sorted, Size: size}
}

// Image is a named, tagged stack of layers plus config.
type Image struct {
	Name       string
	Tag        string
	Layers     []Layer
	Entrypoint string            // process-registry key
	Env        map[string]string // baked environment
	Labels     map[string]string
}

// Ref returns the image reference "name:tag".
func (im *Image) Ref() string { return im.Name + ":" + im.Tag }

// ID returns the image's content digest over its layer digests + config.
func (im *Image) ID() string {
	h := sha256.New()
	for _, l := range im.Layers {
		h.Write([]byte(l.Digest))
	}
	h.Write([]byte(im.Entrypoint))
	keys := make([]string, 0, len(im.Env))
	for k := range im.Env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h.Write([]byte(k + "=" + im.Env[k]))
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}

// Files returns the merged filesystem view (later layers win).
func (im *Image) Files() map[string][]byte {
	fs := make(map[string][]byte)
	for _, l := range im.Layers {
		for _, f := range l.Files {
			fs[f.Path] = f.Data
		}
	}
	return fs
}

// BuildSpec is the "Dockerfile": a base image, dependency declarations
// and files to bake in.
type BuildSpec struct {
	Base       string // base image ref, may be "" for scratch
	Name       string
	Tag        string
	Deps       map[string]string // package -> version (pip/conda style)
	Files      []File            // model components etc.
	Entrypoint string
	Env        map[string]string
	Labels     map[string]string
}

// Dockerfile renders the spec in Dockerfile syntax for provenance
// display (the artifact a user would see in the repository).
func (b *BuildSpec) Dockerfile() string {
	var sb strings.Builder
	base := b.Base
	if base == "" {
		base = "scratch"
	}
	fmt.Fprintf(&sb, "FROM %s\n", base)
	deps := make([]string, 0, len(b.Deps))
	for pkg, ver := range b.Deps {
		deps = append(deps, pkg+"=="+ver)
	}
	sort.Strings(deps)
	if len(deps) > 0 {
		fmt.Fprintf(&sb, "RUN pip install %s\n", strings.Join(deps, " "))
	}
	for _, f := range b.Files {
		fmt.Fprintf(&sb, "COPY %s %s\n", f.Path, f.Path)
	}
	keys := make([]string, 0, len(b.Env))
	for k := range b.Env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "ENV %s=%s\n", k, b.Env[k])
	}
	if b.Entrypoint != "" {
		fmt.Fprintf(&sb, "ENTRYPOINT [%q]\n", b.Entrypoint)
	}
	return sb.String()
}

// Registry stores images and deduplicates layers by digest.
type Registry struct {
	mu     sync.RWMutex
	images map[string]*Image // ref -> image
	layers map[string]Layer  // digest -> layer (dedup pool)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{images: make(map[string]*Image), layers: make(map[string]Layer)}
}

// Push stores an image; shared layers are deduplicated.
func (r *Registry) Push(im *Image) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, l := range im.Layers {
		if _, ok := r.layers[l.Digest]; !ok {
			r.layers[l.Digest] = l
		}
	}
	cp := *im
	cp.Layers = append([]Layer(nil), im.Layers...)
	r.images[im.Ref()] = &cp
}

// Pull fetches an image by ref ("name:tag"; ":latest" assumed if no tag).
func (r *Registry) Pull(ref string) (*Image, error) {
	if !strings.Contains(ref, ":") {
		ref += ":latest"
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	im, ok := r.images[ref]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrImageNotFound, ref)
	}
	cp := *im
	cp.Layers = append([]Layer(nil), im.Layers...)
	return &cp, nil
}

// List returns all image refs, sorted.
func (r *Registry) List() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	refs := make([]string, 0, len(r.images))
	for ref := range r.images {
		refs = append(refs, ref)
	}
	sort.Strings(refs)
	return refs
}

// LayerCount reports distinct stored layers (dedup effectiveness).
func (r *Registry) LayerCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.layers)
}

// Builder assembles images from BuildSpecs against a registry.
type Builder struct {
	registry *Registry
}

// NewBuilder returns a builder that pulls bases from and pushes results
// to registry.
func NewBuilder(registry *Registry) *Builder { return &Builder{registry: registry} }

// Build creates the image: base layers (if any), one layer for
// dependencies, one layer for files. The result is pushed to the
// registry and returned.
func (b *Builder) Build(spec BuildSpec) (*Image, error) {
	var layers []Layer
	env := map[string]string{}
	entry := spec.Entrypoint
	if spec.Base != "" {
		base, err := b.registry.Pull(spec.Base)
		if err != nil {
			return nil, fmt.Errorf("container: base image: %w", err)
		}
		layers = append(layers, base.Layers...)
		for k, v := range base.Env {
			env[k] = v
		}
		if entry == "" {
			entry = base.Entrypoint
		}
	}
	if len(spec.Deps) > 0 {
		var files []File
		pkgs := make([]string, 0, len(spec.Deps))
		for pkg := range spec.Deps {
			pkgs = append(pkgs, pkg)
		}
		sort.Strings(pkgs)
		for _, pkg := range pkgs {
			files = append(files, File{
				Path: "/usr/lib/python3/site-packages/" + pkg + "/VERSION",
				Data: []byte(spec.Deps[pkg]),
			})
		}
		layers = append(layers, NewLayer(files))
	}
	if len(spec.Files) > 0 {
		layers = append(layers, NewLayer(spec.Files))
	}
	for k, v := range spec.Env {
		env[k] = v
	}
	im := &Image{
		Name:       spec.Name,
		Tag:        orLatest(spec.Tag),
		Layers:     layers,
		Entrypoint: entry,
		Env:        env,
		Labels:     spec.Labels,
	}
	b.registry.Push(im)
	return im, nil
}

func orLatest(tag string) string {
	if tag == "" {
		return "latest"
	}
	return tag
}

// --- runtime ------------------------------------------------------------

// State is a container lifecycle state.
type State int32

// Container lifecycle states.
const (
	StateCreated State = iota
	StateStarting
	StateRunning
	StateStopped
)

func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateStarting:
		return "starting"
	case StateRunning:
		return "running"
	case StateStopped:
		return "stopped"
	}
	return "unknown"
}

// Process is the in-Go stand-in for a container's main process: it is
// given the image filesystem and environment, and may expose an Invoke
// function that the serving layer routes requests to.
type Process interface {
	// Start is called once when the container starts.
	Start(fs map[string][]byte, env map[string]string) error
	// Stop is called once when the container stops.
	Stop()
}

// ProcessFactory creates a Process for each container instance.
type ProcessFactory func() Process

// Runtime runs containers on one "machine" (in the mini-K8s, one per
// node).
type Runtime struct {
	registry *Registry

	mu         sync.RWMutex
	processes  map[string]ProcessFactory
	containers map[string]*Container
	nextID     atomic.Int64
}

// NewRuntime creates a runtime backed by the given image registry.
func NewRuntime(registry *Registry) *Runtime {
	return &Runtime{
		registry:   registry,
		processes:  make(map[string]ProcessFactory),
		containers: make(map[string]*Container),
	}
}

// RegisterProcess installs the factory for an entrypoint key. The
// builder bakes entrypoint keys into images; the runtime resolves them
// here — the moral equivalent of the binary being present in the image.
func (rt *Runtime) RegisterProcess(entrypoint string, f ProcessFactory) {
	rt.mu.Lock()
	rt.processes[entrypoint] = f
	rt.mu.Unlock()
}

// Container is one running instance.
type Container struct {
	ID      string
	Image   *Image
	Proc    Process
	state   atomic.Int32
	started time.Time
}

// State returns the lifecycle state.
func (c *Container) State() State { return State(c.state.Load()) }

// Run pulls the image, instantiates its entrypoint process and starts
// it, paying the injected container start latency.
func (rt *Runtime) Run(imageRef string) (*Container, error) {
	im, err := rt.registry.Pull(imageRef)
	if err != nil {
		return nil, err
	}
	rt.mu.RLock()
	factory, ok := rt.processes[im.Entrypoint]
	rt.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoEntrypoint, im.Entrypoint)
	}
	c := &Container{
		ID:      fmt.Sprintf("ctr-%d", rt.nextID.Add(1)),
		Image:   im,
		Proc:    factory(),
		started: time.Now(),
	}
	c.state.Store(int32(StateStarting))
	time.Sleep(simconst.D(simconst.ContainerStartLatency))
	if err := c.Proc.Start(im.Files(), im.Env); err != nil {
		c.state.Store(int32(StateStopped))
		return nil, fmt.Errorf("container: entrypoint failed: %w", err)
	}
	c.state.Store(int32(StateRunning))
	rt.mu.Lock()
	rt.containers[c.ID] = c
	rt.mu.Unlock()
	return c, nil
}

// Stop terminates a container.
func (rt *Runtime) Stop(id string) error {
	rt.mu.Lock()
	c, ok := rt.containers[id]
	if ok {
		delete(rt.containers, id)
	}
	rt.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrContainerNotFound, id)
	}
	if !c.state.CompareAndSwap(int32(StateRunning), int32(StateStopped)) {
		return ErrAlreadyStopped
	}
	c.Proc.Stop()
	return nil
}

// Get returns a running container by ID.
func (rt *Runtime) Get(id string) (*Container, error) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	c, ok := rt.containers[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrContainerNotFound, id)
	}
	return c, nil
}

// Running returns the number of running containers.
func (rt *Runtime) Running() int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return len(rt.containers)
}
