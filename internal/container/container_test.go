package container

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/simconst"
)

func init() {
	// Compress injected latencies so container tests run fast.
	simconst.Scale = 1000
}

func TestNewLayerContentAddressed(t *testing.T) {
	a := NewLayer([]File{{Path: "/m", Data: []byte("x")}, {Path: "/a", Data: []byte("y")}})
	b := NewLayer([]File{{Path: "/a", Data: []byte("y")}, {Path: "/m", Data: []byte("x")}})
	if a.Digest != b.Digest {
		t.Fatal("digest must be order-independent")
	}
	c := NewLayer([]File{{Path: "/a", Data: []byte("z")}})
	if c.Digest == a.Digest {
		t.Fatal("different content must differ")
	}
	if !strings.HasPrefix(a.Digest, "sha256:") {
		t.Fatalf("digest format wrong: %s", a.Digest)
	}
	if a.Size != 2 {
		t.Fatalf("size wrong: %d", a.Size)
	}
}

// Property: layer digests collide only for identical content.
func TestLayerDigestProperty(t *testing.T) {
	f := func(p1, p2 string, d1, d2 []byte) bool {
		l1 := NewLayer([]File{{Path: p1, Data: d1}})
		l2 := NewLayer([]File{{Path: p2, Data: d2}})
		same := p1 == p2 && string(d1) == string(d2)
		return (l1.Digest == l2.Digest) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryPushPull(t *testing.T) {
	r := NewRegistry()
	im := &Image{Name: "dlhub/base", Tag: "1.0", Layers: []Layer{NewLayer([]File{{Path: "/bin/sh", Data: []byte("#!")}})}}
	r.Push(im)
	got, err := r.Pull("dlhub/base:1.0")
	if err != nil {
		t.Fatal(err)
	}
	if got.Ref() != "dlhub/base:1.0" {
		t.Fatalf("wrong ref %s", got.Ref())
	}
	if _, err := r.Pull("ghost:1.0"); !errors.Is(err, ErrImageNotFound) {
		t.Fatalf("want ErrImageNotFound, got %v", err)
	}
	// Default tag.
	r.Push(&Image{Name: "x", Tag: "latest"})
	if _, err := r.Pull("x"); err != nil {
		t.Fatalf("bare name should pull :latest: %v", err)
	}
}

func TestRegistryLayerDedup(t *testing.T) {
	r := NewRegistry()
	shared := NewLayer([]File{{Path: "/usr/lib/python3", Data: []byte("py")}})
	r.Push(&Image{Name: "a", Tag: "latest", Layers: []Layer{shared}})
	r.Push(&Image{Name: "b", Tag: "latest", Layers: []Layer{shared, NewLayer([]File{{Path: "/model", Data: []byte("w")}})}})
	if r.LayerCount() != 2 {
		t.Fatalf("shared layer should be stored once: %d layers", r.LayerCount())
	}
	if len(r.List()) != 2 {
		t.Fatalf("want 2 images, got %v", r.List())
	}
}

func TestBuilderComposesLayers(t *testing.T) {
	r := NewRegistry()
	b := NewBuilder(r)
	// Base image with the DLHub shim.
	base, err := b.Build(BuildSpec{
		Name:       "dlhub/base",
		Tag:        "1.0",
		Files:      []File{{Path: "/opt/dlhub/shim.py", Data: []byte("shim")}},
		Entrypoint: "dlhub-shim",
		Env:        map[string]string{"DLHUB": "1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Model image layered on the base, as the Management Service builds.
	im, err := b.Build(BuildSpec{
		Base:  base.Ref(),
		Name:  "servables/cifar10",
		Deps:  map[string]string{"keras": "2.2.4", "numpy": "1.15"},
		Files: []File{{Path: "/model/weights.bin", Data: []byte{1, 2, 3}}},
		Env:   map[string]string{"MODEL": "cifar10"},
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := im.Files()
	if _, ok := fs["/opt/dlhub/shim.py"]; !ok {
		t.Fatal("base layer files missing")
	}
	if _, ok := fs["/model/weights.bin"]; !ok {
		t.Fatal("model files missing")
	}
	if _, ok := fs["/usr/lib/python3/site-packages/keras/VERSION"]; !ok {
		t.Fatal("dependency layer missing")
	}
	if im.Entrypoint != "dlhub-shim" {
		t.Fatal("entrypoint should inherit from base")
	}
	if im.Env["DLHUB"] != "1" || im.Env["MODEL"] != "cifar10" {
		t.Fatalf("env merge wrong: %v", im.Env)
	}
	if _, err := b.Build(BuildSpec{Base: "ghost:9", Name: "x"}); !errors.Is(err, ErrImageNotFound) {
		t.Fatalf("missing base should fail, got %v", err)
	}
}

func TestDockerfileRendering(t *testing.T) {
	spec := BuildSpec{
		Base:       "dlhub/base:1.0",
		Deps:       map[string]string{"keras": "2.2.4"},
		Files:      []File{{Path: "/model/w.bin", Data: []byte{1}}},
		Entrypoint: "dlhub-shim",
		Env:        map[string]string{"MODEL": "m"},
	}
	df := spec.Dockerfile()
	for _, want := range []string{"FROM dlhub/base:1.0", "RUN pip install keras==2.2.4", "COPY /model/w.bin", "ENV MODEL=m", `ENTRYPOINT ["dlhub-shim"]`} {
		if !strings.Contains(df, want) {
			t.Fatalf("Dockerfile missing %q:\n%s", want, df)
		}
	}
	empty := BuildSpec{}
	if !strings.Contains(empty.Dockerfile(), "FROM scratch") {
		t.Fatal("empty spec should build FROM scratch")
	}
}

func TestImageIDStable(t *testing.T) {
	l := NewLayer([]File{{Path: "/a", Data: []byte("a")}})
	a := &Image{Name: "x", Tag: "1", Layers: []Layer{l}, Entrypoint: "e", Env: map[string]string{"K": "1", "B": "2"}}
	b := &Image{Name: "y", Tag: "2", Layers: []Layer{l}, Entrypoint: "e", Env: map[string]string{"B": "2", "K": "1"}}
	if a.ID() != b.ID() {
		t.Fatal("image ID should depend on content, not name, and be env-order independent")
	}
}

type testProc struct {
	mu      sync.Mutex
	started bool
	stopped bool
	fs      map[string][]byte
	failOn  bool
}

func (p *testProc) Start(fs map[string][]byte, env map[string]string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failOn {
		return errors.New("crash on start")
	}
	p.started = true
	p.fs = fs
	return nil
}

func (p *testProc) Stop() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
}

func TestRuntimeLifecycle(t *testing.T) {
	r := NewRegistry()
	b := NewBuilder(r)
	im, _ := b.Build(BuildSpec{
		Name: "svc", Entrypoint: "proc",
		Files: []File{{Path: "/data", Data: []byte("d")}},
	})
	rt := NewRuntime(r)
	var proc *testProc
	rt.RegisterProcess("proc", func() Process {
		proc = &testProc{}
		return proc
	})

	c, err := rt.Run(im.Ref())
	if err != nil {
		t.Fatal(err)
	}
	if c.State() != StateRunning || !proc.started {
		t.Fatalf("container should be running: %s", c.State())
	}
	if string(proc.fs["/data"]) != "d" {
		t.Fatal("process should see image filesystem")
	}
	if rt.Running() != 1 {
		t.Fatalf("want 1 running, got %d", rt.Running())
	}
	if _, err := rt.Get(c.ID); err != nil {
		t.Fatal(err)
	}

	if err := rt.Stop(c.ID); err != nil {
		t.Fatal(err)
	}
	if !proc.stopped || c.State() != StateStopped {
		t.Fatal("stop not propagated")
	}
	if err := rt.Stop(c.ID); !errors.Is(err, ErrContainerNotFound) {
		t.Fatalf("double stop should be not-found, got %v", err)
	}
}

func TestRuntimeErrors(t *testing.T) {
	r := NewRegistry()
	rt := NewRuntime(r)
	if _, err := rt.Run("ghost"); !errors.Is(err, ErrImageNotFound) {
		t.Fatalf("want image not found, got %v", err)
	}

	b := NewBuilder(r)
	im, _ := b.Build(BuildSpec{Name: "noentry", Entrypoint: "missing"})
	if _, err := rt.Run(im.Ref()); !errors.Is(err, ErrNoEntrypoint) {
		t.Fatalf("want no entrypoint, got %v", err)
	}

	im2, _ := b.Build(BuildSpec{Name: "crasher", Entrypoint: "crash"})
	rt.RegisterProcess("crash", func() Process { return &testProc{failOn: true} })
	if _, err := rt.Run(im2.Ref()); err == nil || !strings.Contains(err.Error(), "crash on start") {
		t.Fatalf("entrypoint failure should propagate, got %v", err)
	}
	if rt.Running() != 0 {
		t.Fatal("failed container should not be tracked")
	}
	if _, err := rt.Get("ctr-404"); !errors.Is(err, ErrContainerNotFound) {
		t.Fatalf("want container not found, got %v", err)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{StateCreated: "created", StateStarting: "starting", StateRunning: "running", StateStopped: "stopped", State(99): "unknown"} {
		if s.String() != want {
			t.Fatalf("State(%d).String() = %s", s, s.String())
		}
	}
}
