package core

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/auth"
)

// Durable identity and the token lifecycle over HTTP. The Management
// Service fronts the auth substrate (internal/auth) the way DLHub
// fronts Globus Auth: accounts are registered and tokens issued /
// introspected / revoked through the service's own API, and the
// identity records are durable — a userRecord WAL entry per
// registration, folded into checkpoints — so a -data-dir server's
// users survive restarts and can simply log in again. Tokens are
// deliberately NOT durable (see the durable.go taxonomy): a restart
// invalidates outstanding bearers, which is a security posture, not a
// bug.
//
// Registration and login are OPEN routes (like healthz): a caller
// cannot hold a token before obtaining one. Open self-registration is
// a reproduction simplification standing in for Globus Auth's external
// identity-provider onboarding — docs/SECURITY.md spells out the
// model and its limits.

// defaultProvider resolves the identity provider a register/login
// request targets when it names none.
func (s *Service) defaultProvider() string {
	if s.cfg.AuthProvider != "" {
		return s.cfg.AuthProvider
	}
	return "local"
}

// installUser upserts one durable user record into the service's table
// and mirrors it into the configured auth service. It is the replay
// primitive — WAL replay and snapshot restore only — where upsert
// semantics are what make re-applying a record the checkpoint already
// contains converge on the same state. Live registration goes through
// installUserIfAbsent instead, which refuses to clobber. With no auth
// service configured the record is still kept, so a later boot WITH
// -auth inherits the accounts.
func (s *Service) installUser(u userRecord) {
	s.userMu.Lock()
	s.users[u.Provider+"/"+u.Username] = u
	s.userMu.Unlock()
	if s.cfg.Auth != nil {
		s.cfg.Auth.RegisterUserHashed(u.Provider, u.Username, u.PasswordHash, u.FullName, u.Email)
	}
}

// installUserIfAbsent is installUser for the live registration path:
// the check-and-insert is atomic under userMu, and an existing account
// is left untouched (returns false). Registration must never upsert —
// the register route is open, so upserting would let any anonymous
// caller overwrite an existing user's password and take over the
// identity.
func (s *Service) installUserIfAbsent(u userRecord) bool {
	key := u.Provider + "/" + u.Username
	s.userMu.Lock()
	if _, exists := s.users[key]; exists {
		s.userMu.Unlock()
		return false
	}
	s.users[key] = u
	s.userMu.Unlock()
	if s.cfg.Auth != nil {
		s.cfg.Auth.RegisterUserHashed(u.Provider, u.Username, u.PasswordHash, u.FullName, u.Email)
	}
	return true
}

// snapshotUsers copies the user table for the checkpoint codec.
func (s *Service) snapshotUsers() map[string]userRecord {
	s.userMu.Lock()
	defer s.userMu.Unlock()
	out := make(map[string]userRecord, len(s.users))
	for k, v := range s.users {
		out[k] = v
	}
	return out
}

// RegisterUser creates a durable account (and optionally binds its
// identity to a tenant), returning the identity URN. The password is
// hashed here; only the hash reaches the auth service, the WAL, and
// checkpoints. Because the route is open, registration is strictly
// create-only (an existing account is a 409, never an overwrite) and
// the provider must be one the server registered at startup — replay
// alone is allowed to upsert and to resurrect providers.
func (s *Service) RegisterUser(providerName, username, password, fullName, email, tenantID string) (string, error) {
	if s.cfg.Auth == nil {
		return "", ErrBadRequest.WithDetail("authentication is not enabled on this server (start it with -auth)")
	}
	if providerName == "" {
		providerName = s.defaultProvider()
	}
	if username == "" || password == "" {
		return "", ErrBadRequest.WithDetail("username and password are required")
	}
	if !auth.ValidName(providerName) || !auth.ValidName(username) {
		return "", ErrBadRequest.WithDetail("provider and username must match [A-Za-z0-9._-]+")
	}
	if !s.cfg.Auth.HasProvider(providerName) {
		return "", ErrBadRequest.WithDetail("unknown identity provider " + strconv.Quote(providerName) + " (the server registers providers at startup; see -auth-provider)")
	}
	if tenantID == auth.AnonymousTenantID {
		return "", ErrBadRequest.WithDetail("identities cannot be bound to the anonymous tenant explicitly")
	}
	rec := userRecord{
		Provider:     providerName,
		Username:     username,
		PasswordHash: auth.HashPassword(password),
		FullName:     fullName,
		Email:        email,
	}
	if !s.installUserIfAbsent(rec) {
		return "", ErrConflict.WithDetail("account " + providerName + "/" + username + " already exists")
	}
	s.logged(recKindUser, rec)
	identityID := auth.URN(providerName, username)
	if tenantID != "" {
		s.BindTenant(identityID, tenantID) // logs its own tenant_bind record
	}
	return identityID, nil
}

// LoginResult is the POST /api/v2/auth/login response payload.
type LoginResult struct {
	AccessToken string    `json:"access_token"`
	TokenType   string    `json:"token_type"` // always "Bearer"
	ExpiresAt   time.Time `json:"expires_at"`
	IdentityID  string    `json:"identity_id"`
	Tenant      string    `json:"tenant,omitempty"`
}

// Login authenticates provider credentials and issues a bearer token
// carrying the run scope, resolving the identity's tenant for the
// client's benefit.
func (s *Service) Login(providerName, username, password string) (LoginResult, error) {
	if s.cfg.Auth == nil {
		return LoginResult{}, ErrBadRequest.WithDetail("authentication is not enabled on this server (start it with -auth)")
	}
	if providerName == "" {
		providerName = s.defaultProvider()
	}
	var scopes []string
	if s.cfg.RunScope != "" {
		scopes = []string{s.cfg.RunScope}
	}
	tok, err := s.cfg.Auth.Authenticate(providerName, username, password, s.cfg.AuthClientID, scopes...)
	if err != nil {
		return LoginResult{}, ErrUnauthorized.WithDetail(err.Error())
	}
	return LoginResult{
		AccessToken: tok.Value,
		TokenType:   "Bearer",
		ExpiresAt:   tok.ExpiresAt,
		IdentityID:  tok.IdentityID,
		Tenant:      s.tenants.TenantOf(tok.IdentityID),
	}, nil
}

// RevokeToken invalidates a token (and its dependent tokens). Knowing
// the token value is the authorization — exactly introspection's trust
// model.
func (s *Service) RevokeToken(token string) error {
	if s.cfg.Auth == nil {
		return ErrBadRequest.WithDetail("authentication is not enabled on this server (start it with -auth)")
	}
	s.cfg.Auth.Revoke(strings.TrimPrefix(token, "Bearer "))
	return nil
}

// --- HTTP surface -------------------------------------------------------------

// RegisterRequest is the POST /api/v2/auth/register body.
type RegisterRequest struct {
	Provider string `json:"provider,omitempty"` // default: the server's provider
	Username string `json:"username"`
	Password string `json:"password"`
	Name     string `json:"name,omitempty"`
	Email    string `json:"email,omitempty"`
	// Tenant optionally binds the new identity to a tenant for quota
	// accounting and fairness.
	Tenant string `json:"tenant,omitempty"`
}

// LoginRequest is the POST /api/v2/auth/login body.
type LoginRequest struct {
	Provider string `json:"provider,omitempty"`
	Username string `json:"username"`
	Password string `json:"password"`
}

// RevokeRequest is the POST /api/v2/auth/revoke body; an empty token
// revokes the request's own bearer.
type RevokeRequest struct {
	Token string `json:"token,omitempty"`
}

func (s *Service) routesV2Auth(mux *http.ServeMux) {
	mux.HandleFunc("POST /api/v2/auth/register", s.handleV2AuthRegister)
	mux.HandleFunc("POST /api/v2/auth/login", s.handleV2AuthLogin)
	mux.HandleFunc("POST /api/v2/auth/revoke", s.handleV2AuthRevoke)
	mux.HandleFunc("GET /api/v2/auth/whoami", s.handleV2AuthWhoami)
}

func (s *Service) handleV2AuthRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !readV2(w, r, &req) {
		return
	}
	identityID, err := s.RegisterUser(req.Provider, req.Username, req.Password, req.Name, req.Email, req.Tenant)
	if err != nil {
		writeV2Error(w, r, err)
		return
	}
	writeV2(w, r, http.StatusCreated, map[string]string{
		"identity_id": identityID,
		"tenant":      req.Tenant,
	})
}

func (s *Service) handleV2AuthLogin(w http.ResponseWriter, r *http.Request) {
	var req LoginRequest
	if !readV2(w, r, &req) {
		return
	}
	res, err := s.Login(req.Provider, req.Username, req.Password)
	if err != nil {
		writeV2Error(w, r, err)
		return
	}
	writeV2(w, r, http.StatusOK, res)
}

func (s *Service) handleV2AuthRevoke(w http.ResponseWriter, r *http.Request) {
	var req RevokeRequest
	if !readV2(w, r, &req) {
		return
	}
	token := req.Token
	if token == "" {
		token = r.Header.Get("Authorization")
	}
	if token == "" {
		writeV2Error(w, r, ErrBadRequest.WithDetail("no token to revoke (body token or Authorization header)"))
		return
	}
	if err := s.RevokeToken(token); err != nil {
		writeV2Error(w, r, err)
		return
	}
	writeV2(w, r, http.StatusOK, map[string]string{"status": "revoked"})
}

// handleV2AuthWhoami echoes the resolved caller — the smoke tests' and
// CLI's way to check a token end to end.
func (s *Service) handleV2AuthWhoami(w http.ResponseWriter, r *http.Request) {
	c, ok := s.callerV2(w, r)
	if !ok {
		return
	}
	writeV2(w, r, http.StatusOK, map[string]any{
		"identity_id": c.IdentityID,
		"tenant":      tenantLabel(c.Tenant),
		"principals":  c.Principals,
	})
}
