package core_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/container"
	"repro/internal/core"
)

// The register route is OPEN (a caller cannot hold a token before
// obtaining one), which makes its hardening load-bearing: it must be
// strictly create-only, confined to operator-registered providers, and
// restricted to names that cannot alias durable keys or URNs.

func newAuthService(t *testing.T) *core.Service {
	t.Helper()
	as := auth.NewService(time.Hour)
	as.RegisterProvider("local")
	as.RegisterClient("dlhub", "DLHub Management Service", "dlhub:serve")
	ms := core.New(core.Config{
		Registry:     container.NewRegistry(),
		Auth:         as,
		AuthProvider: "local",
		AuthClientID: "dlhub",
		RunScope:     "dlhub:serve",
	})
	t.Cleanup(func() { ms.Close() })
	return ms
}

// A second registration for an existing account must be rejected, and
// must not touch the stored credential — otherwise the open route is an
// account-takeover primitive.
func TestRegisterUserDuplicateRejected(t *testing.T) {
	ms := newAuthService(t)
	if _, err := ms.RegisterUser("", "alice", "hunter2", "Alice", "", ""); err != nil {
		t.Fatal(err)
	}
	_, err := ms.RegisterUser("", "alice", "stolen", "Mallory", "", "")
	if !errors.Is(err, core.ErrConflict) {
		t.Fatalf("duplicate registration: err = %v, want ErrConflict", err)
	}
	// The original credential still works; the attacker's does not.
	if _, err := ms.Login("", "alice", "hunter2"); err != nil {
		t.Fatalf("original password no longer logs in: %v", err)
	}
	if _, err := ms.Login("", "alice", "stolen"); err == nil {
		t.Fatal("attacker password logs in after rejected re-registration")
	}
}

// Registration must stay inside the providers the operator registered
// at startup; auto-creating providers is a replay-only affordance.
func TestRegisterUserUnknownProviderRejected(t *testing.T) {
	ms := newAuthService(t)
	_, err := ms.RegisterUser("orcid", "alice", "pw", "", "", "")
	if !errors.Is(err, core.ErrBadRequest) {
		t.Fatalf("unknown provider: err = %v, want ErrBadRequest", err)
	}
	// And it must not have been created as a side effect.
	if _, err := ms.Login("orcid", "alice", "pw"); err == nil {
		t.Fatal("login succeeded against a provider registration should not have created")
	}
}

// Names embedding the user-table key delimiter '/' or the URN delimiter
// ':' could alias another identity's records; both are rejected.
func TestRegisterUserDelimiterNamesRejected(t *testing.T) {
	ms := newAuthService(t)
	for _, username := range []string{"a/b", "a:b", "urn:identity:local:x", " "} {
		if _, err := ms.RegisterUser("", username, "pw", "", "", ""); !errors.Is(err, core.ErrBadRequest) {
			t.Fatalf("username %q: err = %v, want ErrBadRequest", username, err)
		}
	}
}

// Fingerprints show up verbatim in test-failure diffs; they must cover
// credentials without containing the stored password hash itself.
func TestStateFingerprintOmitsPasswordHash(t *testing.T) {
	ms := newAuthService(t)
	if _, err := ms.RegisterUser("", "alice", "hunter2", "Alice", "", ""); err != nil {
		t.Fatal(err)
	}
	fp := ms.StateFingerprint()
	if !strings.Contains(fp, "user local/alice") {
		t.Fatalf("fingerprint does not cover the registration:\n%s", fp)
	}
	if strings.Contains(fp, auth.HashPassword("hunter2")) {
		t.Fatalf("fingerprint leaks the stored password hash:\n%s", fp)
	}
}
