package core

import (
	"fmt"
	"log"
	"math"
	"sync"
	"time"
)

// Replica autoscaling. The paper's §V scalability experiment (Fig. 7)
// shows throughput rising with "the number of deployed model replicas",
// but leaves the operator to pick that number by hand via Deploy/Scale.
// The autoscaler closes the loop: a per-servable controller samples the
// demand signals the service already maintains — in-flight dispatches
// (ServableLoad, which spans queue wait + execution), coalescing
// backlog (batcher pending), and the batcher's EWMA per-item service
// time — and drives Scale toward a replica target.
//
// The control law is deliberately boring: demand is smoothed with an
// EWMA, the target is ceil(demand / TargetLoad) clamped to
// [MinReplicas, MaxReplicas], scale-ups apply after a short cooldown,
// and scale-downs require the low-demand condition to hold continuously
// for ScaleDownCooldown (hysteresis — a brief lull never sheds
// replicas, so steady load cannot flap).
//
// Admission control is the other half of the contract: scaling takes
// seconds, so when demand outruns even the scaling response the service
// must shed load rather than queue unboundedly. When a servable's
// pending demand reaches its MaxQueue bound, new synchronous runs fail
// fast with ErrOverloaded (HTTP 429) — see Service.admitRun.

// AutoscalePolicy configures autoscaling for one servable.
type AutoscalePolicy struct {
	// Enabled turns the control loop on for this servable.
	Enabled bool `json:"enabled"`
	// MinReplicas/MaxReplicas bound the controller (defaults 1 / 32).
	MinReplicas int `json:"min_replicas,omitempty"`
	MaxReplicas int `json:"max_replicas,omitempty"`
	// TargetLoad is the per-replica demand (in-flight + queued requests
	// per replica) the controller steers toward (default 2).
	TargetLoad float64 `json:"target_load,omitempty"`
	// ScaleUpCooldown is the minimum gap between scale-ups (default 1s):
	// the previous scale-up must have had a chance to absorb load before
	// the controller adds more replicas.
	ScaleUpCooldown time.Duration `json:"scale_up_cooldown,omitempty"`
	// ScaleDownCooldown is how long demand must stay below target before
	// replicas are removed (default 30s). This is the anti-flap guard:
	// scale-down is slow and deliberate, scale-up fast.
	ScaleDownCooldown time.Duration `json:"scale_down_cooldown,omitempty"`
	// MaxQueue is the admission-control bound: when > 0, synchronous
	// runs fail fast with ErrOverloaded once the servable's pending
	// demand (dispatched + coalescing) reaches it. 0 falls back to the
	// service-wide Config.MaxQueue; < 0 disables admission control for
	// this servable outright.
	MaxQueue int `json:"max_queue,omitempty"`
	// Executor is the route scaled ("parsl" when empty).
	Executor string `json:"executor,omitempty"`
}

func (p AutoscalePolicy) withDefaults() AutoscalePolicy {
	if p.MinReplicas <= 0 {
		p.MinReplicas = 1
	}
	if p.MaxReplicas <= 0 {
		p.MaxReplicas = 32
	}
	if p.TargetLoad <= 0 {
		p.TargetLoad = 2
	}
	if p.ScaleUpCooldown <= 0 {
		p.ScaleUpCooldown = time.Second
	}
	if p.ScaleDownCooldown <= 0 {
		p.ScaleDownCooldown = 30 * time.Second
	}
	if p.Executor == "" {
		p.Executor = "parsl"
	}
	return p
}

// validate rejects inconsistent policies at the API boundary: raw
// negatives first (so they are not silently defaulted away), then the
// min/max relation on the EFFECTIVE policy after withDefaults — an
// explicit min_replicas above the defaulted max of 32 is inconsistent
// too, and would otherwise pin an idle servable at the cap.
func (p AutoscalePolicy) validate() error {
	if p.MinReplicas < 0 || p.MaxReplicas < 0 {
		return ErrBadRequest.WithDetail("autoscale: replica bounds must be non-negative")
	}
	if p.TargetLoad < 0 {
		return ErrBadRequest.WithDetail("autoscale: target_load must be non-negative")
	}
	eff := p.withDefaults()
	if eff.MinReplicas > eff.MaxReplicas {
		return ErrBadRequest.WithDetail(fmt.Sprintf("autoscale: min_replicas %d > max_replicas %d (defaults: min 1, max 32)", eff.MinReplicas, eff.MaxReplicas))
	}
	return nil
}

// AutoscaleStatus is the externally visible controller state for one
// servable, returned by GET .../autoscale and /api/v2/stats.
type AutoscaleStatus struct {
	Policy AutoscalePolicy `json:"policy"`
	// Replicas is the controller's current replica count (the last
	// value set through Deploy/Scale, autoscaler included).
	Replicas int `json:"replicas"`
	// Demand is the smoothed (EWMA) pending-request signal.
	Demand float64 `json:"demand"`
	// DesiredReplicas is the clamped target the last tick computed.
	DesiredReplicas int `json:"desired_replicas"`
	// ScaleUps/ScaleDowns count applied scaling actions.
	ScaleUps   uint64 `json:"scale_ups"`
	ScaleDowns uint64 `json:"scale_downs"`
	// Rejected counts runs refused by admission control (429s).
	Rejected uint64 `json:"rejected"`
	// LastScale is when the controller last changed the replica count.
	LastScale time.Time `json:"last_scale,omitempty"`
}

// svScaler is the per-servable controller state.
type svScaler struct {
	policy AutoscalePolicy
	// ewma is the smoothed demand signal.
	ewma float64
	// lowSince marks when demand first dropped below the scale-down
	// threshold (zero while demand holds the current scale).
	lowSince   time.Time
	lastScale  time.Time
	scaleUps   uint64
	scaleDowns uint64
	rejected   uint64
	desired    int
	// scaling guards against overlapping Scale dispatches when a scale
	// task outlives a control tick.
	scaling bool
}

// autoscaler runs the control loop over all enabled servables.
type autoscaler struct {
	svc      *Service
	interval time.Duration

	mu  sync.Mutex
	svs map[string]*svScaler
}

// demandEWMAAlpha weights the newest demand sample; ~0.5 tracks load
// ramps within a few ticks while riding out single-tick spikes.
const demandEWMAAlpha = 0.5

func newAutoscaler(svc *Service, interval time.Duration) *autoscaler {
	if interval <= 0 {
		interval = time.Second
	}
	return &autoscaler{svc: svc, interval: interval, svs: make(map[string]*svScaler)}
}

// setPolicy installs (or disables) a servable's policy.
func (a *autoscaler) setPolicy(servableID string, p AutoscalePolicy) error {
	if err := p.validate(); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.svs[servableID]
	if st == nil {
		st = &svScaler{}
		a.svs[servableID] = st
	}
	st.policy = p.withDefaults()
	st.policy.Enabled = p.Enabled
	// A fresh policy starts a fresh episode: no inherited low-demand
	// timer, no stale smoothed demand from a previous configuration.
	st.lowSince = time.Time{}
	st.ewma = 0
	return nil
}

// policies snapshots the installed policies for persistence
// (checkpoint capture and the snapshot file). Entries that exist only
// as rejection counters (zero policy, never set) are skipped — they
// are stats, not configuration.
func (a *autoscaler) policies() map[string]AutoscalePolicy {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.svs) == 0 {
		return nil
	}
	out := make(map[string]AutoscalePolicy, len(a.svs))
	for id, st := range a.svs {
		if st.policy == (AutoscalePolicy{}) {
			continue
		}
		out[id] = st.policy
	}
	return out
}

// removePolicy drops a servable's controller state entirely — the
// Unpublish hook. A scale task already in flight finishes on its own;
// its completion callback tolerates the missing entry.
func (a *autoscaler) removePolicy(servableID string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.svs, servableID)
}

// status snapshots one servable's controller state (ok false when no
// policy was ever set).
func (a *autoscaler) status(servableID string) (AutoscaleStatus, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.svs[servableID]
	if !ok {
		return AutoscaleStatus{}, false
	}
	return a.statusLocked(servableID, st), true
}

func (a *autoscaler) statusLocked(servableID string, st *svScaler) AutoscaleStatus {
	return AutoscaleStatus{
		Policy:          st.policy,
		Replicas:        a.svc.DesiredReplicas(servableID),
		Demand:          st.ewma,
		DesiredReplicas: st.desired,
		ScaleUps:        st.scaleUps,
		ScaleDowns:      st.scaleDowns,
		Rejected:        st.rejected,
		LastScale:       st.lastScale,
	}
}

// all snapshots every servable with a policy.
func (a *autoscaler) all() map[string]AutoscaleStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]AutoscaleStatus, len(a.svs))
	for id, st := range a.svs {
		out[id] = a.statusLocked(id, st)
	}
	return out
}

// maxQueue resolves the admission bound for a servable: the policy's
// MaxQueue when set, else the service default; negative disables.
func (a *autoscaler) maxQueue(servableID string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if st, ok := a.svs[servableID]; ok && st.policy.MaxQueue != 0 {
		return st.policy.MaxQueue
	}
	return a.svc.cfg.MaxQueue
}

// noteRejection counts an admission-control rejection for stats.
func (a *autoscaler) noteRejection(servableID string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.svs[servableID]
	if st == nil {
		st = &svScaler{}
		a.svs[servableID] = st
	}
	st.rejected++
}

// loop is the control loop, one goroutine for the service lifetime.
func (a *autoscaler) loop() {
	defer a.svc.regWG.Done()
	ticker := time.NewTicker(a.interval)
	defer ticker.Stop()
	for {
		select {
		case <-a.svc.stop:
			return
		case <-ticker.C:
			a.tick()
		}
	}
}

// tick runs one control step for every enabled servable.
func (a *autoscaler) tick() {
	now := a.svc.timeFunc()
	type action struct {
		id       string
		replicas int
		executor string
		up       bool
	}
	var actions []action

	a.mu.Lock()
	for id, st := range a.svs {
		if !st.policy.Enabled || st.scaling {
			continue
		}
		p := st.policy
		// Demand = tasks this service is waiting on for the servable
		// (queue wait + execution, from dispatchTo accounting) plus
		// requests still held by its coalescing batcher.
		demand := float64(a.svc.ServableLoad(id) + a.svc.batcherPending(id))
		if st.ewma == 0 {
			st.ewma = demand
		} else {
			st.ewma = demandEWMAAlpha*demand + (1-demandEWMAAlpha)*st.ewma
		}

		current := a.svc.DesiredReplicas(id)
		if current <= 0 {
			// Never deployed through this service: nothing to scale.
			continue
		}
		desired := int(math.Ceil(st.ewma / p.TargetLoad))
		if desired < p.MinReplicas {
			desired = p.MinReplicas
		}
		if desired > p.MaxReplicas {
			desired = p.MaxReplicas
		}
		st.desired = desired

		switch {
		case desired > current:
			st.lowSince = time.Time{}
			if now.Sub(st.lastScale) < p.ScaleUpCooldown {
				continue
			}
			st.scaling = true
			actions = append(actions, action{id: id, replicas: desired, executor: p.Executor, up: true})
		case desired < current:
			// Hysteresis: demand must stay low for the whole cooldown
			// before any replica is shed.
			if st.lowSince.IsZero() {
				st.lowSince = now
				continue
			}
			if now.Sub(st.lowSince) < p.ScaleDownCooldown {
				continue
			}
			st.scaling = true
			actions = append(actions, action{id: id, replicas: desired, executor: p.Executor, up: false})
		default:
			st.lowSince = time.Time{}
		}
	}
	a.mu.Unlock()

	// Apply outside the lock: Scale dispatches a task and can take a
	// while. Each action finishes by clearing its scaling latch.
	for _, act := range actions {
		act := act
		go func() {
			err := a.svc.scaleReplicas(a.svc.lifeCtx, act.id, act.replicas, act.executor)
			a.mu.Lock()
			st := a.svs[act.id]
			if st != nil {
				st.scaling = false
				if err == nil {
					st.lastScale = a.svc.timeFunc()
					st.lowSince = time.Time{}
					if act.up {
						st.scaleUps++
					} else {
						st.scaleDowns++
					}
				}
			}
			a.mu.Unlock()
			if err != nil && a.svc.lifeCtx.Err() == nil {
				log.Printf("core: autoscale %s -> %d replicas failed: %v", act.id, act.replicas, err)
			}
		}()
	}
}

// --- service surface ---------------------------------------------------------

// SetAutoscalePolicy installs an autoscaling policy for a servable the
// caller can see. Disabling (Enabled false) keeps the state visible in
// stats but stops the controller.
func (s *Service) SetAutoscalePolicy(caller Caller, servableID string, p AutoscalePolicy) error {
	if _, err := s.Get(caller, servableID); err != nil {
		return err
	}
	if err := s.scaler.setPolicy(servableID, p); err != nil {
		return err
	}
	s.logged(recKindPolicy, recPolicyPut{ID: servableID, Policy: p})
	return nil
}

// AutoscaleStatus reports a servable's autoscaler state. A servable
// with no policy returns a zero-policy status (Enabled false) with the
// current replica count, so GET is always answerable.
func (s *Service) AutoscaleStatus(caller Caller, servableID string) (AutoscaleStatus, error) {
	if _, err := s.Get(caller, servableID); err != nil {
		return AutoscaleStatus{}, err
	}
	if st, ok := s.scaler.status(servableID); ok {
		return st, nil
	}
	return AutoscaleStatus{Replicas: s.DesiredReplicas(servableID)}, nil
}

// AutoscalerStats snapshots every servable with an autoscale policy —
// the /api/v2/stats view.
func (s *Service) AutoscalerStats() map[string]AutoscaleStatus {
	return s.scaler.all()
}

// admitRun is the admission-control gate for synchronous runs. Two
// independent bounds are enforced, with distinct rejections so a
// client can tell "you are over budget" from "the servable is busy":
//
//   - the servable's resolved MaxQueue bound → ErrOverloaded, which
//     also feeds the autoscaler's rejection signal;
//   - the caller's tenant quota (MaxInFlight across all servables,
//     plus the RatePerSec token bucket) → ErrQuotaExceeded, which
//     deliberately does NOT drive the autoscaler — a tenant over its
//     own budget is not servable pressure to scale for.
//
// Admission is check-AND-reserve under one lock in the routing
// table's (tenant × servable) matrix — a simultaneous burst cannot
// all slip past either bound the way a read-then-dispatch check would
// allow. Every admitted request holds its reservation (weight units
// for batches) from admission until completion; the caller must
// invoke the returned release exactly once. Cache hits and
// singleflight followers are never gated — they add no load.
func (s *Service) admitRun(caller Caller, servableID string, weight int) (release func(), err error) {
	if weight < 1 {
		weight = 1
	}
	tenant := caller.Tenant
	quota, limited := s.tenantQuota(tenant)
	if limited && quota.RatePerSec > 0 && !s.takeTenantToken(tenant, quota.RatePerSec) {
		s.noteQuotaRejected(tenant)
		return nil, ErrQuotaExceeded.WithDetail(fmt.Sprintf("tenant %q over rate limit %g req/s", tenantLabel(tenant), quota.RatePerSec))
	}
	svBound := s.scaler.maxQueue(servableID)
	tenantBound := 0
	if limited {
		tenantBound = quota.MaxInFlight
	}
	pending, verdict := s.route.reserve(tenant, servableID, weight, svBound, tenantBound)
	switch verdict {
	case admitOverloaded:
		s.scaler.noteRejection(servableID)
		s.noteOverloadRejected(tenant)
		return nil, ErrOverloaded.WithDetail(fmt.Sprintf("%s: %d requests pending (bound %d)", servableID, pending, svBound))
	case admitQuota:
		s.noteQuotaRejected(tenant)
		return nil, ErrQuotaExceeded.WithDetail(fmt.Sprintf("tenant %q: %d runs in flight (quota %d)", tenantLabel(tenant), pending, tenantBound))
	}
	s.noteAdmitted(tenant)
	var once sync.Once
	return func() {
		once.Do(func() { s.route.unreserve(tenant, servableID, weight) })
	}, nil
}
