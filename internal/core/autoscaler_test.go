package core_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/pyruntime"
	"repro/internal/schema"
	"repro/internal/servable"
)

// sleepPackage publishes a python_function servable that holds its
// single-threaded pod for d per request — a deterministic load
// generator for autoscaler and admission tests (real models would burn
// CPU for the same effect).
func sleepPackage(t *testing.T, name string, d time.Duration) *servable.Package {
	t.Helper()
	entry := "test-sleep:" + name
	pyruntime.Register(entry, func(arg any) (any, error) {
		time.Sleep(d)
		return "slept", nil
	})
	return &servable.Package{
		Doc: &schema.Document{
			Publication: schema.Publication{
				Name:      name,
				Title:     "sleeper",
				Authors:   []string{"test"},
				VisibleTo: []string{"public"},
			},
			Servable: schema.Servable{
				Type:   schema.TypePythonFunction,
				Entry:  entry,
				Input:  schema.DataType{Kind: "string"},
				Output: schema.DataType{Kind: "string"},
			},
		},
	}
}

// steadyLoad runs clients goroutines issuing back-to-back distinct-input
// runs until the returned stop func is called; every error except the
// shutdown races is fatal.
func steadyLoad(t *testing.T, tb *bench.Testbed, id string, clients int) (stop func()) {
	t.Helper()
	done := make(chan struct{})
	var wg sync.WaitGroup
	var seq atomic.Uint64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				input := fmt.Sprintf("input-%d", seq.Add(1))
				_, err := tb.MS.Run(context.Background(), core.Anonymous, id, input, core.RunOptions{NoMemo: true})
				if err != nil && !errors.Is(err, core.ErrCanceled) && !errors.Is(err, core.ErrTimeout) {
					select {
					case <-done:
						return
					default:
						t.Errorf("load run: %v", err)
						return
					}
				}
			}
		}()
	}
	return func() {
		close(done)
		wg.Wait()
	}
}

// TestAutoscalerScaleUpSteadyNoFlapScaleDown drives the full controller
// episode: a load ramp must scale replicas up, steady load must hold
// them there without flapping, and sustained idleness must scale back
// down after the cooldown.
func TestAutoscalerScaleUpSteadyNoFlapScaleDown(t *testing.T) {
	tb := newTB(t, bench.Options{AutoscaleInterval: 25 * time.Millisecond})
	id, err := tb.MS.Publish(context.Background(), core.Anonymous, sleepPackage(t, "scaler", 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.MS.Deploy(context.Background(), core.Anonymous, id, 1, "parsl"); err != nil {
		t.Fatal(err)
	}
	if err := tb.MS.SetAutoscalePolicy(core.Anonymous, id, core.AutoscalePolicy{
		Enabled:           true,
		MinReplicas:       1,
		MaxReplicas:       4,
		TargetLoad:        2,
		ScaleUpCooldown:   50 * time.Millisecond,
		ScaleDownCooldown: 400 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}

	// Ramp: 8 clients against a 10ms-serial servable -> demand ~8 ->
	// desired ceil(8/2) = 4.
	stop := steadyLoad(t, tb, id, 8)
	waitFor(t, 10*time.Second, func() bool {
		return tb.MS.DesiredReplicas(id) == 4 && tb.ExecutorReplicas("parsl", id) == 4
	})

	// Steady phase: the load has not changed, so the controller must
	// not move — no flapping.
	upsBefore := mustStatus(t, tb, id).ScaleUps
	time.Sleep(800 * time.Millisecond)
	st := mustStatus(t, tb, id)
	if got := tb.MS.DesiredReplicas(id); got != 4 {
		t.Fatalf("replicas moved under steady load: %d", got)
	}
	if st.ScaleDowns != 0 {
		t.Fatalf("scaled down under steady load: %+v", st)
	}
	if st.ScaleUps != upsBefore {
		t.Fatalf("scale-ups continued under steady load: %d -> %d", upsBefore, st.ScaleUps)
	}
	stop()

	// Idle: after ScaleDownCooldown of low demand the controller sheds
	// replicas back to the floor.
	waitFor(t, 10*time.Second, func() bool {
		return tb.MS.DesiredReplicas(id) == 1
	})
	st = mustStatus(t, tb, id)
	if st.ScaleDowns == 0 {
		t.Fatalf("expected a recorded scale-down: %+v", st)
	}
	// And it stays down: no phantom demand re-scaling an idle servable.
	time.Sleep(500 * time.Millisecond)
	if got := tb.MS.DesiredReplicas(id); got != 1 {
		t.Fatalf("idle servable re-scaled to %d", got)
	}
}

func mustStatus(t *testing.T, tb *bench.Testbed, id string) core.AutoscaleStatus {
	t.Helper()
	st, err := tb.MS.AutoscaleStatus(core.Anonymous, id)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestAutoscalerDisabledPolicyDoesNotScale pins that installing a
// disabled policy leaves scaling entirely manual.
func TestAutoscalerDisabledPolicyDoesNotScale(t *testing.T) {
	tb := newTB(t, bench.Options{AutoscaleInterval: 25 * time.Millisecond})
	id, err := tb.MS.Publish(context.Background(), core.Anonymous, sleepPackage(t, "manual", 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.MS.Deploy(context.Background(), core.Anonymous, id, 1, "parsl"); err != nil {
		t.Fatal(err)
	}
	if err := tb.MS.SetAutoscalePolicy(core.Anonymous, id, core.AutoscalePolicy{Enabled: false, MaxReplicas: 4}); err != nil {
		t.Fatal(err)
	}
	stop := steadyLoad(t, tb, id, 8)
	time.Sleep(400 * time.Millisecond)
	stop()
	if got := tb.MS.DesiredReplicas(id); got != 1 {
		t.Fatalf("disabled policy scaled to %d", got)
	}
}

// TestAdmissionControl429 exercises backpressure end to end through
// /api/v2: once pending demand reaches the MaxQueue bound, new runs get
// an enveloped 429 with code "overloaded" while earlier requests still
// complete.
func TestAdmissionControl429(t *testing.T) {
	tb := newTB(t, bench.Options{})
	id, err := tb.MS.Publish(context.Background(), core.Anonymous, sleepPackage(t, "bounded", 100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.MS.Deploy(context.Background(), core.Anonymous, id, 1, "parsl"); err != nil {
		t.Fatal(err)
	}
	// Admission without autoscaling: a disabled policy still carries
	// the MaxQueue bound.
	if err := tb.MS.SetAutoscalePolicy(core.Anonymous, id, core.AutoscalePolicy{MaxQueue: 2}); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(tb.MS.Handler())
	defer srv.Close()
	url := srv.URL + "/api/v2/servables/" + id + "/run"

	const n = 12
	var ok200, ok429 atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := strings.NewReader(fmt.Sprintf(`{"input":"x-%d","no_memo":true}`, i))
			resp, err := http.Post(url, "application/json", body) //nolint:noctx
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			var env struct {
				Error *core.EnvelopeError `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Errorf("run %d: bad body: %v", i, err)
				return
			}
			switch resp.StatusCode {
			case http.StatusOK:
				ok200.Add(1)
			case http.StatusTooManyRequests:
				ok429.Add(1)
				if env.Error == nil || env.Error.Code != string(core.CodeOverloaded) {
					t.Errorf("run %d: 429 without overloaded code: %+v", i, env.Error)
				}
			default:
				t.Errorf("run %d: unexpected status %d (%+v)", i, resp.StatusCode, env.Error)
			}
		}(i)
	}
	wg.Wait()
	if ok200.Load() == 0 {
		t.Fatal("admission control rejected everything — bound applied too early")
	}
	if ok429.Load() == 0 {
		t.Fatalf("no request was shed at bound 2 with %d concurrent callers", n)
	}
	if st := mustStatus(t, tb, id); st.Rejected == 0 {
		t.Fatalf("rejections not counted in autoscale status: %+v", st)
	}
}

// TestAdmissionBurstAtomicity pins the check-AND-reserve property: a
// perfectly simultaneous burst must admit at most MaxQueue requests.
// All clients pass the admission gate within microseconds of each
// other while the servable takes 300ms per request, so no admitted
// request can release its slot inside the admission window — a
// read-then-dispatch implementation would admit the whole burst.
func TestAdmissionBurstAtomicity(t *testing.T) {
	tb := newTB(t, bench.Options{})
	id, err := tb.MS.Publish(context.Background(), core.Anonymous, sleepPackage(t, "burst", 300*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.MS.Deploy(context.Background(), core.Anonymous, id, 1, "parsl"); err != nil {
		t.Fatal(err)
	}
	const bound = 2
	if err := tb.MS.SetAutoscalePolicy(core.Anonymous, id, core.AutoscalePolicy{MaxQueue: bound}); err != nil {
		t.Fatal(err)
	}
	const n = 30
	start := make(chan struct{})
	var admitted, rejected atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, err := tb.MS.Run(context.Background(), core.Anonymous, id, fmt.Sprintf("b-%d", i), core.RunOptions{NoMemo: true})
			switch {
			case err == nil:
				admitted.Add(1)
			case errors.Is(err, core.ErrOverloaded):
				rejected.Add(1)
			default:
				t.Errorf("burst %d: %v", i, err)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	if got := admitted.Load(); got == 0 || got > bound {
		t.Fatalf("simultaneous burst admitted %d requests, bound %d (rejected %d)", got, bound, rejected.Load())
	}
	if rejected.Load() != n-admitted.Load() {
		t.Fatalf("requests unaccounted: admitted %d rejected %d of %d", admitted.Load(), rejected.Load(), n)
	}
}

// TestAutoscaleHTTPPolicyRoundTrip pins the v2 autoscale endpoints:
// PUT validates and echoes the effective policy, GET reads it back,
// bad policies get bad_request.
func TestAutoscaleHTTPPolicyRoundTrip(t *testing.T) {
	tb := newTB(t, bench.Options{})
	id, err := tb.MS.Publish(context.Background(), core.Anonymous, servable.NoopPackage())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(tb.MS.Handler())
	defer srv.Close()
	base := srv.URL + "/api/v2/servables/" + id + "/autoscale"

	put := func(body string) (*http.Response, core.AutoscaleStatus, *core.EnvelopeError) {
		req, _ := http.NewRequest(http.MethodPut, base, strings.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env struct {
			Data  core.AutoscaleStatus `json:"data"`
			Error *core.EnvelopeError  `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		return resp, env.Data, env.Error
	}

	resp, st, _ := put(`{"enabled":true,"min_replicas":2,"max_replicas":6,"target_load":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("put: status %d", resp.StatusCode)
	}
	if !st.Policy.Enabled || st.Policy.MinReplicas != 2 || st.Policy.MaxReplicas != 6 || st.Policy.TargetLoad != 3 {
		t.Fatalf("policy not echoed: %+v", st.Policy)
	}
	if st.Policy.ScaleDownCooldown == 0 {
		t.Fatalf("defaults not applied: %+v", st.Policy)
	}

	resp, _, envErr := put(`{"enabled":true,"min_replicas":8,"max_replicas":2}`)
	if resp.StatusCode != http.StatusBadRequest || envErr == nil || envErr.Code != string(core.CodeBadRequest) {
		t.Fatalf("bad policy accepted: status %d, %+v", resp.StatusCode, envErr)
	}
	// min above the DEFAULTED max (32) is just as inconsistent — it
	// would pin an idle servable at the cap forever.
	resp, _, envErr = put(`{"enabled":true,"min_replicas":50}`)
	if resp.StatusCode != http.StatusBadRequest || envErr == nil {
		t.Fatalf("min over defaulted max accepted: status %d, %+v", resp.StatusCode, envErr)
	}

	get, err := http.Get(base)
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	var env struct {
		Data core.AutoscaleStatus `json:"data"`
	}
	if err := json.NewDecoder(get.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Data.Policy.MinReplicas != 2 {
		t.Fatalf("get did not read the stored policy back: %+v", env.Data.Policy)
	}

	// Unknown servables 404 like every other route.
	miss, err := http.Get(srv.URL + "/api/v2/servables/anonymous/ghost/autoscale")
	if err != nil {
		t.Fatal(err)
	}
	miss.Body.Close()
	if miss.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost autoscale: status %d", miss.StatusCode)
	}
}

// TestCloseFailsPendingCoalesced pins the shutdown contract: a request
// parked in a coalescing batcher is failed with ErrCanceled when the
// service closes, instead of blocking until its own deadline, and the
// failure is counted.
func TestCloseFailsPendingCoalesced(t *testing.T) {
	tb := newTB(t, bench.Options{})
	id, err := tb.MS.Publish(context.Background(), core.Anonymous, servable.MatminerUtilPackage())
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.MS.Deploy(context.Background(), core.Anonymous, id, 1, "parsl"); err != nil {
		t.Fatal(err)
	}
	// A huge batch and hold window park the request far past the test's
	// patience; only Close can release it promptly.
	tb.MS.EnableCoalescing(id, core.BatchPolicy{MaxBatch: 1000, MaxDelay: time.Minute})

	errCh := make(chan error, 1)
	go func() {
		_, err := tb.MS.RunCoalesced(context.Background(), core.Anonymous, id, "NaCl", core.RunOptions{})
		errCh <- err
	}()
	waitFor(t, 5*time.Second, func() bool {
		return tb.MS.CoalescingStats(id).Pending == 1
	})

	start := time.Now()
	tb.MS.Close() // idempotent: testbed cleanup closes again harmlessly
	select {
	case err := <-errCh:
		if !errors.Is(err, core.ErrCanceled) {
			t.Fatalf("pending coalesced request got %v, want ErrCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending coalesced request still blocked after Close")
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("release took %v — stranded until some other deadline", waited)
	}
	if st := tb.MS.CoalescingStats(id); st.Failures == 0 {
		t.Fatalf("failed dispatch not counted: %+v", st)
	}
}
