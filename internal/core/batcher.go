package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/queue"
	"repro/internal/taskmanager"
)

// Adaptive request coalescing implements the paper's stated future work
// (§V-B3): "we intend to use such servable profiles to design adaptive
// batching algorithms that intelligently distribute serving requests to
// reduce latency."
//
// When coalescing is enabled for a servable, individual synchronous
// requests are held briefly and flushed to the Task Manager as one
// batch task when either the batch fills or the adaptive hold window
// expires. The hold window follows a per-servable profile — an EWMA of
// observed per-item service time — so cheap servables flush almost
// immediately (their latency budget is small) while expensive servables
// wait longer to amortize dispatch and WAN costs over more requests.

// BatchPolicy configures coalescing for one servable.
type BatchPolicy struct {
	// MaxBatch flushes when this many requests are pending (default 32).
	MaxBatch int
	// MaxDelay bounds the hold window (default 20ms).
	MaxDelay time.Duration
	// Adaptive scales the hold window with the servable's observed
	// per-item service time; false holds for MaxDelay always.
	Adaptive bool
}

func (p BatchPolicy) withDefaults() BatchPolicy {
	if p.MaxBatch <= 0 {
		p.MaxBatch = 32
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 20 * time.Millisecond
	}
	return p
}

type pendingReq struct {
	input any
	done  chan coalesceOutcome
}

type coalesceOutcome struct {
	output any
	reply  taskmanager.Reply
	err    error
}

// batcher coalesces requests for one servable.
type batcher struct {
	svc      *Service
	servable string
	policy   BatchPolicy

	mu      sync.Mutex
	pending []*pendingReq
	timer   *time.Timer
	// closed marks a batcher shut down by Service.Close: enqueue fails
	// new requests immediately instead of parking them on a timer that
	// will dispatch into a dead broker.
	closed bool
	// profileUS is the EWMA of per-item service time in microseconds.
	profileUS float64
	flushes   uint64
	items     uint64
	// failures counts dispatches whose coalesced batch failed (every
	// member saw the error).
	failures uint64
}

// EnableCoalescing turns adaptive batching on for a servable.
func (s *Service) EnableCoalescing(servableID string, policy BatchPolicy) {
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	if s.batchers == nil {
		s.batchers = make(map[string]*batcher)
	}
	s.batchers[servableID] = &batcher{svc: s, servable: servableID, policy: policy.withDefaults()}
}

// DisableCoalescing removes a servable's batcher (pending requests
// still flush).
func (s *Service) DisableCoalescing(servableID string) {
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	if b := s.batchers[servableID]; b != nil {
		go b.flush()
	}
	delete(s.batchers, servableID)
}

// CoalesceStats counts a batcher's activity: dispatched batches,
// coalesced member requests, failed dispatches (batches whose every
// member received the error), and the currently held backlog.
type CoalesceStats struct {
	Flushes  uint64 `json:"flushes"`
	Items    uint64 `json:"items"`
	Failures uint64 `json:"failures"`
	// Pending is the number of requests currently held for the next
	// flush (a point-in-time gauge, not a counter).
	Pending int `json:"pending"`
}

// CoalescingStats reports a servable's batcher counters (zero when
// coalescing is not enabled).
func (s *Service) CoalescingStats(servableID string) CoalesceStats {
	s.batchMu.Lock()
	b := s.batchers[servableID]
	s.batchMu.Unlock()
	if b == nil {
		return CoalesceStats{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return CoalesceStats{Flushes: b.flushes, Items: b.items, Failures: b.failures, Pending: len(b.pending)}
}

// batcherPending reports how many requests a servable's batcher is
// currently holding — part of the autoscaler's demand signal and the
// admission-control count.
func (s *Service) batcherPending(servableID string) int {
	s.batchMu.Lock()
	b := s.batchers[servableID]
	s.batchMu.Unlock()
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending)
}

// closeBatchers fails every batcher's pending requests with ErrCanceled
// on Service.Close. Without this, requests parked on a hold-window
// timer would dispatch into a closed broker and strand their callers
// until each caller's own deadline.
func (s *Service) closeBatchers() {
	s.batchMu.Lock()
	batchers := make([]*batcher, 0, len(s.batchers))
	for _, b := range s.batchers {
		batchers = append(batchers, b)
	}
	s.batchMu.Unlock()
	for _, b := range batchers {
		b.close()
	}
}

// close marks the batcher dead and fails its pending requests.
func (b *batcher) close() {
	b.mu.Lock()
	b.closed = true
	pend := b.take()
	if len(pend) > 0 {
		b.failures++
	}
	b.mu.Unlock()
	err := fmt.Errorf("%w: service shutting down", ErrCanceled)
	for _, r := range pend {
		r.done <- coalesceOutcome{err: err}
	}
}

// RunCoalesced invokes a servable through its batcher; with no batcher
// enabled it falls back to a plain Run. Visibility is enforced before
// enqueueing. The service-layer result cache fronts the batcher: a hit
// answers immediately (same key space as Run, so coalesced and plain
// requests share entries), and each computed item is stored on the way
// out. A canceled caller abandons only its own wait — the coalesced
// batch keeps serving its other members.
func (s *Service) RunCoalesced(ctx context.Context, caller Caller, servableID string, input any, opts RunOptions) (RunResult, error) {
	doc, err := s.Get(caller, servableID)
	if err != nil {
		return RunResult{}, err
	}
	s.batchMu.Lock()
	b := s.batchers[servableID]
	s.batchMu.Unlock()
	if b == nil {
		return s.Run(ctx, caller, servableID, input, opts)
	}
	ctx, cancel := s.reqCtx(ctx, opts)
	defer cancel()
	start := time.Now()
	var key string
	var gen uint64
	if s.cacheUsable(opts) {
		if k, err := resultKey(servableID, doc.Version, "run", input); err == nil {
			key = k
			if res, ok := s.cache.get(key); ok {
				return markCacheHit(res, start), nil
			}
			gen = s.cache.generation(servableID)
		}
	}
	// Admission control gates the enqueue exactly like a plain Run's
	// dispatch: a held coalescing slot is pending demand too. The
	// reservation is held until this member's outcome arrives (or its
	// ctx ends) — parked requests keep counting against the bound.
	release, err := s.admitRun(caller, servableID, 1)
	if err != nil {
		return RunResult{}, err
	}
	defer release()
	req := &pendingReq{input: input, done: make(chan coalesceOutcome, 1)}
	b.enqueue(req)

	select {
	case out := <-req.done:
		if out.err != nil {
			return RunResult{}, out.err
		}
		res := RunResult{Reply: out.reply, RequestMicros: time.Since(start).Microseconds()}
		res.Output = out.output
		res.Outputs = nil
		if key != "" {
			s.cache.put(key, servableID, gen, res)
		}
		return res, nil
	case <-ctx.Done():
		return RunResult{}, wrapCtxErr(ctx.Err())
	}
}

// enqueue adds a request, arming the flush timer or flushing on a full
// batch. On a closed batcher the request fails immediately.
func (b *batcher) enqueue(req *pendingReq) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		req.done <- coalesceOutcome{err: fmt.Errorf("%w: service shutting down", ErrCanceled)}
		return
	}
	b.pending = append(b.pending, req)
	if len(b.pending) >= b.policy.MaxBatch {
		pend := b.take()
		b.mu.Unlock()
		go b.dispatch(pend)
		return
	}
	if b.timer == nil {
		delay := b.holdWindow()
		b.timer = time.AfterFunc(delay, b.flush)
	}
	b.mu.Unlock()
}

// holdWindow computes the adaptive delay from the servable profile.
// Callers hold b.mu.
func (b *batcher) holdWindow() time.Duration {
	if !b.policy.Adaptive || b.profileUS == 0 {
		return b.policy.MaxDelay
	}
	// Hold for ~2x the per-item service time: cheap servables flush
	// fast, expensive ones accumulate more amortization.
	d := time.Duration(2 * b.profileUS * float64(time.Microsecond))
	if d < 200*time.Microsecond {
		d = 200 * time.Microsecond
	}
	if d > b.policy.MaxDelay {
		d = b.policy.MaxDelay
	}
	return d
}

// take drains pending and disarms the timer. Callers hold b.mu.
func (b *batcher) take() []*pendingReq {
	pend := b.pending
	b.pending = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return pend
}

func (b *batcher) flush() {
	b.mu.Lock()
	pend := b.take()
	b.mu.Unlock()
	if len(pend) > 0 {
		b.dispatch(pend)
	}
}

// dispatch sends one coalesced batch task and distributes results.
func (b *batcher) dispatch(pend []*pendingReq) {
	inputs := make([]any, len(pend))
	for i, r := range pend {
		inputs[i] = r.input
	}
	task := taskmanager.Task{
		ID:       queue.NewID(),
		Kind:     "run_batch",
		Servable: b.servable,
		Inputs:   inputs,
		NoMemo:   true,
	}
	start := time.Now()
	// The batch aggregates many callers, so it dispatches under the
	// service lifetime ctx with the service-default deadline rather
	// than any single member's ctx — and Service.Close aborts it.
	res, err := b.svc.dispatch(b.svc.lifeCtx, task)
	if err != nil {
		b.mu.Lock()
		b.failures++
		b.mu.Unlock()
		for _, r := range pend {
			r.done <- coalesceOutcome{err: err}
		}
		return
	}
	// Update the servable profile (per-item wall time for this batch).
	perItemUS := float64(time.Since(start).Microseconds()) / float64(len(pend))
	b.mu.Lock()
	if b.profileUS == 0 {
		b.profileUS = perItemUS
	} else {
		b.profileUS = 0.8*b.profileUS + 0.2*perItemUS
	}
	b.flushes++
	b.items += uint64(len(pend))
	b.mu.Unlock()

	if len(res.Outputs) != len(pend) {
		err := fmt.Errorf("core: coalesced batch returned %d outputs for %d requests", len(res.Outputs), len(pend))
		b.mu.Lock()
		b.failures++
		b.mu.Unlock()
		for _, r := range pend {
			r.done <- coalesceOutcome{err: err}
		}
		return
	}
	for i, r := range pend {
		reply := res.Reply
		reply.Outputs = nil
		r.done <- coalesceOutcome{output: res.Outputs[i], reply: reply}
	}
}
