package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/queue"
	"repro/internal/taskmanager"
)

// Adaptive request coalescing implements the paper's stated future work
// (§V-B3): "we intend to use such servable profiles to design adaptive
// batching algorithms that intelligently distribute serving requests to
// reduce latency."
//
// When coalescing is enabled for a servable, individual synchronous
// requests are held briefly and flushed to the Task Manager as one
// batch task when either the batch fills or the adaptive hold window
// expires. The hold window follows a per-servable profile — an EWMA of
// observed per-item service time — so cheap servables flush almost
// immediately (their latency budget is small) while expensive servables
// wait longer to amortize dispatch and WAN costs over more requests.

// BatchPolicy configures coalescing for one servable.
type BatchPolicy struct {
	// MaxBatch flushes when this many requests are pending (default 32).
	MaxBatch int
	// MaxDelay bounds the hold window (default 20ms).
	MaxDelay time.Duration
	// Adaptive scales the hold window with the servable's observed
	// per-item service time; false holds for MaxDelay always.
	Adaptive bool
}

func (p BatchPolicy) withDefaults() BatchPolicy {
	if p.MaxBatch <= 0 {
		p.MaxBatch = 32
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 20 * time.Millisecond
	}
	return p
}

type pendingReq struct {
	input any
	done  chan coalesceOutcome
}

type coalesceOutcome struct {
	output any
	reply  taskmanager.Reply
	err    error
}

// batcher coalesces requests for one servable.
type batcher struct {
	svc      *Service
	servable string
	policy   BatchPolicy

	mu      sync.Mutex
	pending []*pendingReq
	timer   *time.Timer
	// profileUS is the EWMA of per-item service time in microseconds.
	profileUS float64
	flushes   uint64
	items     uint64
}

// EnableCoalescing turns adaptive batching on for a servable.
func (s *Service) EnableCoalescing(servableID string, policy BatchPolicy) {
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	if s.batchers == nil {
		s.batchers = make(map[string]*batcher)
	}
	s.batchers[servableID] = &batcher{svc: s, servable: servableID, policy: policy.withDefaults()}
}

// DisableCoalescing removes a servable's batcher (pending requests
// still flush).
func (s *Service) DisableCoalescing(servableID string) {
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	if b := s.batchers[servableID]; b != nil {
		go b.flush()
	}
	delete(s.batchers, servableID)
}

// CoalescingStats reports (flushes, items) for a servable's batcher.
func (s *Service) CoalescingStats(servableID string) (uint64, uint64) {
	s.batchMu.Lock()
	b := s.batchers[servableID]
	s.batchMu.Unlock()
	if b == nil {
		return 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushes, b.items
}

// RunCoalesced invokes a servable through its batcher; with no batcher
// enabled it falls back to a plain Run. Visibility is enforced before
// enqueueing. The service-layer result cache fronts the batcher: a hit
// answers immediately (same key space as Run, so coalesced and plain
// requests share entries), and each computed item is stored on the way
// out. A canceled caller abandons only its own wait — the coalesced
// batch keeps serving its other members.
func (s *Service) RunCoalesced(ctx context.Context, caller Caller, servableID string, input any, opts RunOptions) (RunResult, error) {
	doc, err := s.Get(caller, servableID)
	if err != nil {
		return RunResult{}, err
	}
	s.batchMu.Lock()
	b := s.batchers[servableID]
	s.batchMu.Unlock()
	if b == nil {
		return s.Run(ctx, caller, servableID, input, opts)
	}
	ctx, cancel := s.reqCtx(ctx, opts)
	defer cancel()
	start := time.Now()
	var key string
	var gen uint64
	if s.cacheUsable(opts) {
		if k, err := resultKey(servableID, doc.Version, "run", input); err == nil {
			key = k
			if res, ok := s.cache.get(key); ok {
				return markCacheHit(res, start), nil
			}
			gen = s.cache.generation(servableID)
		}
	}
	req := &pendingReq{input: input, done: make(chan coalesceOutcome, 1)}
	b.enqueue(req)

	select {
	case out := <-req.done:
		if out.err != nil {
			return RunResult{}, out.err
		}
		res := RunResult{Reply: out.reply, RequestMicros: time.Since(start).Microseconds()}
		res.Output = out.output
		res.Outputs = nil
		if key != "" {
			s.cache.put(key, servableID, gen, res)
		}
		return res, nil
	case <-ctx.Done():
		return RunResult{}, wrapCtxErr(ctx.Err())
	}
}

// enqueue adds a request, arming the flush timer or flushing on a full
// batch.
func (b *batcher) enqueue(req *pendingReq) {
	b.mu.Lock()
	b.pending = append(b.pending, req)
	if len(b.pending) >= b.policy.MaxBatch {
		pend := b.take()
		b.mu.Unlock()
		go b.dispatch(pend)
		return
	}
	if b.timer == nil {
		delay := b.holdWindow()
		b.timer = time.AfterFunc(delay, b.flush)
	}
	b.mu.Unlock()
}

// holdWindow computes the adaptive delay from the servable profile.
// Callers hold b.mu.
func (b *batcher) holdWindow() time.Duration {
	if !b.policy.Adaptive || b.profileUS == 0 {
		return b.policy.MaxDelay
	}
	// Hold for ~2x the per-item service time: cheap servables flush
	// fast, expensive ones accumulate more amortization.
	d := time.Duration(2 * b.profileUS * float64(time.Microsecond))
	if d < 200*time.Microsecond {
		d = 200 * time.Microsecond
	}
	if d > b.policy.MaxDelay {
		d = b.policy.MaxDelay
	}
	return d
}

// take drains pending and disarms the timer. Callers hold b.mu.
func (b *batcher) take() []*pendingReq {
	pend := b.pending
	b.pending = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return pend
}

func (b *batcher) flush() {
	b.mu.Lock()
	pend := b.take()
	b.mu.Unlock()
	if len(pend) > 0 {
		b.dispatch(pend)
	}
}

// dispatch sends one coalesced batch task and distributes results.
func (b *batcher) dispatch(pend []*pendingReq) {
	inputs := make([]any, len(pend))
	for i, r := range pend {
		inputs[i] = r.input
	}
	task := taskmanager.Task{
		ID:       queue.NewID(),
		Kind:     "run_batch",
		Servable: b.servable,
		Inputs:   inputs,
		NoMemo:   true,
	}
	start := time.Now()
	// The batch aggregates many callers, so it dispatches under its own
	// service-default deadline rather than any single member's ctx.
	res, err := b.svc.dispatch(context.Background(), task)
	if err != nil {
		for _, r := range pend {
			r.done <- coalesceOutcome{err: err}
		}
		return
	}
	// Update the servable profile (per-item wall time for this batch).
	perItemUS := float64(time.Since(start).Microseconds()) / float64(len(pend))
	b.mu.Lock()
	if b.profileUS == 0 {
		b.profileUS = perItemUS
	} else {
		b.profileUS = 0.8*b.profileUS + 0.2*perItemUS
	}
	b.flushes++
	b.items += uint64(len(pend))
	b.mu.Unlock()

	if len(res.Outputs) != len(pend) {
		err := fmt.Errorf("core: coalesced batch returned %d outputs for %d requests", len(res.Outputs), len(pend))
		for _, r := range pend {
			r.done <- coalesceOutcome{err: err}
		}
		return
	}
	for i, r := range pend {
		reply := res.Reply
		reply.Outputs = nil
		r.done <- coalesceOutcome{output: res.Outputs[i], reply: reply}
	}
}
