package core_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/servable"
)

func coalescingTB(t *testing.T) (*bench.Testbed, string) {
	t.Helper()
	tb := newTB(t, bench.Options{})
	id, err := tb.MS.Publish(context.Background(), core.Anonymous, servable.MatminerUtilPackage())
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.MS.Deploy(context.Background(), core.Anonymous, id, 2, "parsl"); err != nil {
		t.Fatal(err)
	}
	return tb, id
}

func TestCoalescingFallsBackWithoutPolicy(t *testing.T) {
	tb, id := coalescingTB(t)
	res, err := tb.MS.RunCoalesced(context.Background(), core.Anonymous, id, "NaCl", core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m := res.Output.(map[string]any); len(m) != 2 {
		t.Fatalf("fallback run wrong: %v", res.Output)
	}
	if st := tb.MS.CoalescingStats(id); st != (core.CoalesceStats{}) {
		t.Fatal("no batcher should mean no stats")
	}
}

func TestCoalescingGroupsConcurrentRequests(t *testing.T) {
	tb, id := coalescingTB(t)
	tb.MS.EnableCoalescing(id, core.BatchPolicy{MaxBatch: 16, MaxDelay: 50 * time.Millisecond})

	const n = 16
	formulas := []string{"NaCl", "SiO2", "Fe2O3", "MgO"}
	var wg sync.WaitGroup
	outs := make([]map[string]any, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := tb.MS.RunCoalesced(context.Background(), core.Anonymous, id, formulas[i%len(formulas)], core.RunOptions{})
			if err != nil {
				errs[i] = err
				return
			}
			m, ok := res.Output.(map[string]any)
			if !ok {
				errs[i] = fmt.Errorf("bad output %T", res.Output)
				return
			}
			outs[i] = m
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	// Each caller got the answer for ITS OWN input.
	for i, m := range outs {
		switch formulas[i%len(formulas)] {
		case "NaCl":
			if _, ok := m["Na"]; !ok {
				t.Fatalf("request %d got someone else's result: %v", i, m)
			}
		case "SiO2":
			if _, ok := m["Si"]; !ok {
				t.Fatalf("request %d got someone else's result: %v", i, m)
			}
		}
	}
	st := tb.MS.CoalescingStats(id)
	if st.Items != n {
		t.Fatalf("want %d coalesced items, got %d", n, st.Items)
	}
	if st.Flushes >= n {
		t.Fatalf("requests were not coalesced: %d flushes for %d items", st.Flushes, n)
	}
}

func TestCoalescingFlushesOnTimer(t *testing.T) {
	tb, id := coalescingTB(t)
	tb.MS.EnableCoalescing(id, core.BatchPolicy{MaxBatch: 1000, MaxDelay: 10 * time.Millisecond})
	// A single request must not wait for a full batch.
	start := time.Now()
	res, err := tb.MS.RunCoalesced(context.Background(), core.Anonymous, id, "MgO", core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timer flush too slow: %v", elapsed)
	}
	if m := res.Output.(map[string]any); len(m) != 2 {
		t.Fatalf("wrong output: %v", res.Output)
	}
}

func TestCoalescingFullBatchFlushesEarly(t *testing.T) {
	tb, id := coalescingTB(t)
	tb.MS.EnableCoalescing(id, core.BatchPolicy{MaxBatch: 4, MaxDelay: 10 * time.Second})

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tb.MS.RunCoalesced(context.Background(), core.Anonymous, id, "NaCl", core.RunOptions{}) //nolint:errcheck
		}()
	}
	wg.Wait()
	// With MaxDelay 10s, completing fast proves the size trigger fired.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("full batch should flush immediately, took %v", elapsed)
	}
}

func TestCoalescingAdaptiveProfileLearns(t *testing.T) {
	tb, id := coalescingTB(t)
	tb.MS.EnableCoalescing(id, core.BatchPolicy{MaxBatch: 8, MaxDelay: 100 * time.Millisecond, Adaptive: true})
	// Warm the profile.
	for i := 0; i < 3; i++ {
		if _, err := tb.MS.RunCoalesced(context.Background(), core.Anonymous, id, "NaCl", core.RunOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	// With a learned profile for a cheap servable, a lone request
	// flushes in ~2x item time, far below MaxDelay.
	start := time.Now()
	if _, err := tb.MS.RunCoalesced(context.Background(), core.Anonymous, id, "SiO2", core.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 90*time.Millisecond {
		t.Fatalf("adaptive hold should be below MaxDelay for cheap servables: %v", elapsed)
	}
}

func TestCoalescingErrorPropagates(t *testing.T) {
	tb, id := coalescingTB(t)
	tb.MS.EnableCoalescing(id, core.BatchPolicy{MaxBatch: 2, MaxDelay: 5 * time.Millisecond})
	// One bad formula fails the whole coalesced batch; the error must
	// reach the caller rather than hang.
	if _, err := tb.MS.RunCoalesced(context.Background(), core.Anonymous, id, "NotAnElement99", core.RunOptions{}); err == nil {
		t.Fatal("servable error should propagate through the batcher")
	}
}

func TestCoalescingDisable(t *testing.T) {
	tb, id := coalescingTB(t)
	tb.MS.EnableCoalescing(id, core.BatchPolicy{})
	tb.MS.DisableCoalescing(id)
	// Falls back to plain Run.
	if _, err := tb.MS.RunCoalesced(context.Background(), core.Anonymous, id, "NaCl", core.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if st := tb.MS.CoalescingStats(id); st.Flushes != 0 {
		t.Fatal("stats should be gone after disable")
	}
}

func TestCoalescingRespectsACL(t *testing.T) {
	tb, _ := coalescingTB(t)
	if _, err := tb.MS.RunCoalesced(context.Background(), core.Anonymous, "ghost/model", 1, core.RunOptions{}); err == nil {
		t.Fatal("unknown servable should fail before enqueueing")
	}
}
