package core

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Service-layer result memoization. The paper places its memoization
// cache at the Task Manager (§V-B2/§V-B5); with multiple TMs that means
// identical requests routed to different sites recompute from scratch.
// This cache sits one layer up, at the Management Service, in front of
// routing: a hit answers without touching the queue or any TM at all,
// and N concurrent identical requests collapse (singleflight) into one
// dispatched task. The TM cache remains as the second tier for requests
// that do reach a site.
//
// Keys are (servableID, version, canonical-JSON(input)): the published
// version is part of the key, so re-publishing a servable naturally
// misses; explicit invalidation on Publish/UpdateMetadata/Scale also
// drops stale entries eagerly. Lookups happen strictly after the ACL
// check in Service.Get, so a cached result is never served to a caller
// who could not see the servable.

// CacheConfig configures the service-layer result cache.
type CacheConfig struct {
	// Disabled turns the service-layer cache off entirely (per-request
	// opt-out is RunOptions.NoCache).
	Disabled bool
	// MaxEntries bounds the cache; the least recently used entry is
	// evicted at capacity (default 4096).
	MaxEntries int
	// MaxBytes bounds the summed JSON size of cached results (default
	// 256 MiB). Entries above MaxBytes/4 are never cached, so one
	// giant batch result cannot dominate the budget.
	MaxBytes int64
	// TTL expires entries after this long (default 5m; <0 disables
	// expiry).
	TTL time.Duration
}

func (c CacheConfig) withDefaults() CacheConfig {
	if c.MaxEntries <= 0 {
		c.MaxEntries = 4096
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 256 << 20
	}
	if c.TTL == 0 {
		c.TTL = 5 * time.Minute
	}
	return c
}

// CacheStats is a point-in-time snapshot of the result cache counters,
// exposed at GET /api/cache/stats.
type CacheStats struct {
	Entries       int    `json:"entries"`
	Bytes         int64  `json:"bytes"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Expirations   uint64 `json:"expirations"`
	Invalidations uint64 `json:"invalidations"`
	// Collapsed counts requests that waited on an identical in-flight
	// request instead of dispatching their own task (singleflight).
	Collapsed uint64 `json:"collapsed"`
}

type cacheEntry struct {
	key      string
	servable string
	res      RunResult
	size     int64     // JSON size of res, charged against maxBytes
	expires  time.Time // zero = never
}

// resultCache is a bounded LRU with TTL over RunResults.
type resultCache struct {
	mu         sync.Mutex
	max        int
	maxBytes   int64
	bytes      int64
	ttl        time.Duration
	lru        *list.List               // front = most recently used, of *cacheEntry
	entries    map[string]*list.Element // key -> element
	byServable map[string]map[string]*list.Element
	// gens (per servable, bumped by invalidate) and epoch (bumped by
	// flush) guard against the lookaside stale-write race: a put whose
	// compute started under an older generation is discarded, so a
	// result computed before an invalidation can never be stored after
	// it. Both counters only grow, so their sum is a fingerprint that
	// changes whenever either fires — without a publish of servable A
	// discarding servable B's concurrent results.
	gens  map[string]uint64
	epoch uint64

	hits, misses, evictions, expirations, invalidations, collapsed metrics.Counter

	now func() time.Time
}

func newResultCache(cfg CacheConfig) *resultCache {
	cfg = cfg.withDefaults()
	return &resultCache{
		max:        cfg.MaxEntries,
		maxBytes:   cfg.MaxBytes,
		ttl:        cfg.TTL,
		lru:        list.New(),
		entries:    make(map[string]*list.Element),
		byServable: make(map[string]map[string]*list.Element),
		gens:       make(map[string]uint64),
		now:        time.Now,
	}
}

// resultKey builds the cache key: sha256 over servable ID, published
// version, task kind and the input's canonical JSON. encoding/json
// sorts map keys, so inputs decoded from JSON (map[string]any) marshal
// canonically regardless of the order the client sent fields in.
func resultKey(servableID string, version int, kind string, input any) (string, error) {
	data, err := jsonMarshal(input)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(servableID))
	h.Write([]byte{0})
	h.Write([]byte{byte(version), byte(version >> 8), byte(version >> 16), byte(version >> 24)})
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// get returns the cached result for key, counting a hit or miss.
func (c *resultCache) get(key string) (RunResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	elem, ok := c.entries[key]
	if !ok {
		c.misses.Inc()
		return RunResult{}, false
	}
	e := elem.Value.(*cacheEntry)
	if !e.expires.IsZero() && c.now().After(e.expires) {
		c.removeLocked(elem)
		c.expirations.Inc()
		c.misses.Inc()
		return RunResult{}, false
	}
	c.lru.MoveToFront(elem)
	c.hits.Inc()
	return e.res, true
}

// generation returns the servable's current invalidation generation;
// capture it before computing a result and pass it to put.
func (c *resultCache) generation(servableID string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch + c.gens[servableID]
}

// put stores a result computed under generation gen, evicting LRU
// entries past the entry or byte budget. Puts from before an
// invalidation (stale gen) and oversized results (more than a quarter
// of the byte budget) are discarded.
func (c *resultCache) put(key, servableID string, gen uint64, res RunResult) {
	size := resultSize(res)
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.epoch+c.gens[servableID] || size > c.maxBytes/4 {
		return
	}
	if elem, ok := c.entries[key]; ok {
		// Refresh in place (e.g. re-computed after NoCache runs).
		e := elem.Value.(*cacheEntry)
		c.bytes += size - e.size
		e.res = res
		e.size = size
		e.expires = c.expiry()
		c.lru.MoveToFront(elem)
		c.evictOverBudgetLocked(0)
		return
	}
	c.evictOverBudgetLocked(size)
	e := &cacheEntry{key: key, servable: servableID, res: res, size: size, expires: c.expiry()}
	elem := c.lru.PushFront(e)
	c.entries[key] = elem
	c.bytes += size
	keys := c.byServable[servableID]
	if keys == nil {
		keys = make(map[string]*list.Element)
		c.byServable[servableID] = keys
	}
	keys[key] = elem
}

// evictOverBudgetLocked drops LRU entries until an insert of reserve
// bytes fits both budgets. Caller holds c.mu.
func (c *resultCache) evictOverBudgetLocked(reserve int64) {
	over := func() bool {
		if reserve > 0 && c.lru.Len() >= c.max {
			return true
		}
		return c.bytes+reserve > c.maxBytes
	}
	for c.lru.Len() > 0 && over() {
		c.removeLocked(c.lru.Back())
		c.evictions.Inc()
	}
}

// resultSize estimates a result's memory charge as its JSON length —
// the length of the wire reply when dispatchTo recorded one, else a
// fresh marshal (coalesced per-item results); unmarshalable results
// charge a token minimum.
func resultSize(res RunResult) int64 {
	if res.wireSize > 0 {
		return res.wireSize
	}
	data, err := jsonMarshal(res)
	if err != nil {
		return 64
	}
	return int64(len(data))
}

func (c *resultCache) expiry() time.Time {
	if c.ttl <= 0 {
		return time.Time{}
	}
	return c.now().Add(c.ttl)
}

// removeLocked unlinks an element from all indexes. Caller holds c.mu.
func (c *resultCache) removeLocked(elem *list.Element) {
	e := elem.Value.(*cacheEntry)
	c.lru.Remove(elem)
	c.bytes -= e.size
	delete(c.entries, e.key)
	if keys := c.byServable[e.servable]; keys != nil {
		delete(keys, e.key)
		if len(keys) == 0 {
			delete(c.byServable, e.servable)
		}
	}
}

// invalidate drops every entry for one servable (all versions, all
// inputs) — the Publish/UpdateMetadata/Scale hook.
func (c *resultCache) invalidate(servableID string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := c.byServable[servableID]
	n := len(keys)
	for _, elem := range keys {
		e := elem.Value.(*cacheEntry)
		c.lru.Remove(elem)
		c.bytes -= e.size
		delete(c.entries, e.key)
	}
	delete(c.byServable, servableID)
	c.gens[servableID]++
	c.invalidations.Add(uint64(n))
	return n
}

// flush empties the cache, keeping counters.
func (c *resultCache) flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.lru.Len()
	c.lru.Init()
	c.entries = make(map[string]*list.Element)
	c.byServable = make(map[string]map[string]*list.Element)
	c.bytes = 0
	c.epoch++
	c.invalidations.Add(uint64(n))
}

// stats snapshots the counters.
func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	entries := c.lru.Len()
	bytes := c.bytes
	c.mu.Unlock()
	return CacheStats{
		Entries:       entries,
		Bytes:         bytes,
		Hits:          c.hits.Value(),
		Misses:        c.misses.Value(),
		Evictions:     c.evictions.Value(),
		Expirations:   c.expirations.Value(),
		Invalidations: c.invalidations.Value(),
		Collapsed:     c.collapsed.Value(),
	}
}

// --- singleflight ------------------------------------------------------------

// flightGroup collapses concurrent calls with the same key into one
// execution whose result every caller shares (a minimal in-repo
// singleflight; no external deps).
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	res  RunResult
	err  error
}

// do runs fn for key unless an identical call is already in flight, in
// which case it waits for and shares that call's result. A follower's
// wait is bounded by its own ctx, never the leader's (possibly much
// longer) deadline. When the leader's dispatch dies on a context error
// — the leader's client hung up — still-live followers are released
// immediately and loop back: one becomes the new leader and
// re-dispatches, so a canceled leader never takes its followers down
// with it. shared reports whether this caller piggybacked on (or was
// woken by) another's execution.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (RunResult, error)) (res RunResult, err error, shared bool) {
	for {
		g.mu.Lock()
		if g.calls == nil {
			g.calls = make(map[string]*flightCall)
		}
		if call, ok := g.calls[key]; ok {
			g.mu.Unlock()
			select {
			case <-call.done:
			case <-ctx.Done():
				return RunResult{}, fmt.Errorf("%w (awaiting identical in-flight request)", wrapCtxErr(ctx.Err())), true
			}
			if call.err != nil && errors.Is(call.err, context.Canceled) && ctx.Err() == nil {
				// The leader was canceled, not us: retry for a fresh
				// leader instead of inheriting its cancellation. A
				// timed-out leader is different — its timeout is the
				// shared result (re-dispatching a known-too-slow task
				// for every follower would stampede the TM).
				continue
			}
			return call.res, call.err, true
		}
		call := &flightCall{done: make(chan struct{})}
		g.calls[key] = call
		g.mu.Unlock()

		call.res, call.err = fn()
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(call.done)
		return call.res, call.err, false
	}
}
