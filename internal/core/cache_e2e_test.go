package core_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/servable"
	"repro/internal/taskmanager"
)

// fakeTM is a scripted Task Manager: it registers with the Management
// Service and answers every task with a canned reply, optionally
// holding each task until released. It gives the cache and routing
// tests exact control over TM-side latency and observability of how
// many tasks actually reached a site.
type fakeTM struct {
	id      string
	handled atomic.Int64
	block   chan struct{} // when non-nil, each task waits for one receive
}

func startFakeTM(t *testing.T, ms *core.Service, id string, block chan struct{}) *fakeTM {
	t.Helper()
	f := &fakeTM{id: id, block: block}
	reg, err := json.Marshal(taskmanager.Registration{TMID: id, Executors: []string{"parsl"}})
	if err != nil {
		t.Fatal(err)
	}
	ms.Broker().Push(taskmanager.RegisterQueue, reg, "", "", "")
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			msg, ok := ms.Broker().Pull(taskmanager.TaskQueue(id), 50*time.Millisecond)
			if !ok {
				continue
			}
			if f.block != nil {
				select {
				case <-f.block:
				case <-stop:
					return
				}
			}
			var task taskmanager.Task
			if err := json.Unmarshal(msg.Body, &task); err != nil {
				continue
			}
			rep, _ := json.Marshal(taskmanager.Reply{TaskID: task.ID, OK: true, Output: "from-" + id})
			ms.Broker().Reply(msg, rep)
			f.handled.Add(1)
		}
	}()
	return f
}

func newCachedMS(t *testing.T, cache core.CacheConfig) *core.Service {
	t.Helper()
	ms := core.New(core.Config{Registry: container.NewRegistry(), Cache: cache})
	t.Cleanup(ms.Close)
	return ms
}

func publishNoop(t *testing.T, ms *core.Service) string {
	t.Helper()
	id, err := ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage())
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestServiceCacheHitMissBypass(t *testing.T) {
	ms := newCachedMS(t, core.CacheConfig{})
	tm := startFakeTM(t, ms, "tm-1", nil)
	if err := ms.WaitForTM(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	id := publishNoop(t, ms)

	r1, err := ms.Run(context.Background(), core.Anonymous, id, "same", core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit {
		t.Fatal("first run must miss")
	}
	r2, err := ms.Run(context.Background(), core.Anonymous, id, "same", core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit || !r2.Cached {
		t.Fatalf("second identical run must hit the service cache: %+v", r2)
	}
	if r2.Output != r1.Output {
		t.Fatalf("cached output differs: %v vs %v", r2.Output, r1.Output)
	}
	if got := tm.handled.Load(); got != 1 {
		t.Fatalf("hit must not reach the TM: handled=%d", got)
	}

	// NoCache bypasses the service layer (task dispatches again).
	r3, err := ms.Run(context.Background(), core.Anonymous, id, "same", core.RunOptions{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if r3.CacheHit {
		t.Fatal("NoCache run must bypass the service cache")
	}
	// NoMemo bypasses every memoization tier.
	if r4, _ := ms.Run(context.Background(), core.Anonymous, id, "same", core.RunOptions{NoMemo: true}); r4.CacheHit {
		t.Fatal("NoMemo run must bypass the service cache")
	}
	if got := tm.handled.Load(); got != 3 {
		t.Fatalf("bypass runs must reach the TM: handled=%d", got)
	}

	st := ms.CacheStats()
	if st.Hits != 1 || st.Misses < 1 || st.Entries != 1 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

func TestServiceCacheDistinctInputsMiss(t *testing.T) {
	ms := newCachedMS(t, core.CacheConfig{})
	tm := startFakeTM(t, ms, "tm-1", nil)
	if err := ms.WaitForTM(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	id := publishNoop(t, ms)
	for i := 0; i < 4; i++ {
		if _, err := ms.Run(context.Background(), core.Anonymous, id, i, core.RunOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := tm.handled.Load(); got != 4 {
		t.Fatalf("distinct inputs must all dispatch: handled=%d", got)
	}
}

func TestServiceCacheInvalidation(t *testing.T) {
	ms := newCachedMS(t, core.CacheConfig{})
	tm := startFakeTM(t, ms, "tm-1", nil)
	if err := ms.WaitForTM(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	id := publishNoop(t, ms)

	warm := func() {
		t.Helper()
		if _, err := ms.Run(context.Background(), core.Anonymous, id, "in", core.RunOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	assertHit := func(want bool, why string) {
		t.Helper()
		res, err := ms.Run(context.Background(), core.Anonymous, id, "in", core.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheHit != want {
			t.Fatalf("%s: CacheHit=%v want %v", why, res.CacheHit, want)
		}
	}

	warm()
	assertHit(true, "warm cache")

	// Re-publishing bumps the version: old results are stale.
	if _, err := ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage()); err != nil {
		t.Fatal(err)
	}
	assertHit(false, "after republish")
	assertHit(true, "rewarmed at v2")

	// Metadata updates invalidate.
	err := ms.UpdateMetadata(core.Anonymous, id, func(p *schema.Publication) {
		p.Description = "updated"
	})
	if err != nil {
		t.Fatal(err)
	}
	assertHit(false, "after metadata update")

	if st := ms.CacheStats(); st.Invalidations < 2 {
		t.Fatalf("want >=2 invalidations, got %+v", st)
	}
	if tm.handled.Load() != 3 { // warm + republish miss + update miss
		t.Fatalf("unexpected TM traffic: %d", tm.handled.Load())
	}
}

func TestServiceCacheTTLExpiry(t *testing.T) {
	ms := newCachedMS(t, core.CacheConfig{TTL: 30 * time.Millisecond})
	tm := startFakeTM(t, ms, "tm-1", nil)
	if err := ms.WaitForTM(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	id := publishNoop(t, ms)

	if _, err := ms.Run(context.Background(), core.Anonymous, id, "in", core.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err := ms.Run(context.Background(), core.Anonymous, id, "in", core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("within TTL should hit")
	}
	time.Sleep(60 * time.Millisecond)
	res, err = ms.Run(context.Background(), core.Anonymous, id, "in", core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("expired entry should miss")
	}
	if tm.handled.Load() != 2 {
		t.Fatalf("want 2 dispatches (initial + post-expiry), got %d", tm.handled.Load())
	}
	if st := ms.CacheStats(); st.Expirations < 1 {
		t.Fatalf("want an expiration, got %+v", st)
	}
}

func TestSingleflightCollapsesConcurrentRuns(t *testing.T) {
	release := make(chan struct{})
	ms := newCachedMS(t, core.CacheConfig{})
	tm := startFakeTM(t, ms, "tm-1", release)
	if err := ms.WaitForTM(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	id := publishNoop(t, ms)

	const concurrency = 8
	var wg sync.WaitGroup
	var hits atomic.Int64
	errs := make([]error, concurrency)
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := ms.Run(context.Background(), core.Anonymous, id, "same", core.RunOptions{})
			errs[i] = err
			if err == nil && res.CacheHit {
				hits.Add(1)
			}
		}(i)
	}
	// Let every request reach the flight group, then release the one
	// dispatched task.
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if got := tm.handled.Load(); got != 1 {
		t.Fatalf("singleflight should dispatch exactly one task, TM saw %d", got)
	}
	if hits.Load() != concurrency-1 {
		t.Fatalf("want %d collapsed callers marked as hits, got %d", concurrency-1, hits.Load())
	}
	if st := ms.CacheStats(); st.Collapsed != concurrency-1 {
		t.Fatalf("want Collapsed=%d, got %+v", concurrency-1, st)
	}
}

func TestLeastOutstandingRouting(t *testing.T) {
	ms := newCachedMS(t, core.CacheConfig{Disabled: true})
	release := make(chan struct{})
	busy := startFakeTM(t, ms, "tm-busy", release)
	idle := startFakeTM(t, ms, "tm-idle", nil)
	if err := ms.WaitForTM(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	id := publishNoop(t, ms)

	// Occupy tm-busy: fire runs until the load map shows it holding
	// one (round-robin tiebreak may hand the first to either TM).
	done := make(chan struct{})
	var stuck atomic.Int64
	fire := func(input any) {
		stuck.Add(1)
		go func() {
			defer stuck.Add(-1)
			ms.Run(context.Background(), core.Anonymous, id, input, core.RunOptions{}) //nolint:errcheck
			done <- struct{}{}
		}()
	}
	fire("a")
	deadline := time.Now().Add(2 * time.Second)
	for ms.TMLoad()["tm-busy"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("tm-busy never received a task")
		}
		select {
		case <-done: // landed on tm-idle and finished; try again
			fire("b")
		case <-time.After(5 * time.Millisecond):
		}
	}

	// With tm-busy stuck at load 1, every new request must route to
	// the idle TM (load 0) — blind round-robin would alternate.
	idleBefore := idle.handled.Load()
	for i := 0; i < 5; i++ {
		res, err := ms.Run(context.Background(), core.Anonymous, id, i, core.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Output != "from-tm-idle" {
			t.Fatalf("request %d routed to the busy TM: %v", i, res.Output)
		}
	}
	if got := idle.handled.Load() - idleBefore; got != 5 {
		t.Fatalf("idle TM should have served all 5, served %d", got)
	}
	if busy.handled.Load() != 0 {
		t.Fatalf("busy TM should still be holding its task, handled %d", busy.handled.Load())
	}

	// Release the stuck task; load drains and both TMs are usable.
	close(release)
	for stuck.Load() > 0 {
		<-done
	}
	if load := ms.TMLoad(); load["tm-busy"] != 0 || load["tm-idle"] != 0 {
		t.Fatalf("load should drain to zero: %v", load)
	}
}

func TestCacheHTTPHeaderAndStats(t *testing.T) {
	ms := newCachedMS(t, core.CacheConfig{})
	startFakeTM(t, ms, "tm-1", nil)
	if err := ms.WaitForTM(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	id := publishNoop(t, ms)

	srv := httptest.NewServer(ms.Handler())
	defer srv.Close()

	post := func(body map[string]any) (*http.Response, map[string]any) {
		t.Helper()
		data, _ := json.Marshal(body)
		resp, err := srv.Client().Post(srv.URL+"/api/run/"+id, "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var out map[string]any
		json.Unmarshal(raw, &out) //nolint:errcheck
		return resp, out
	}

	resp, _ := post(map[string]any{"input": "x"})
	if got := resp.Header.Get(core.CacheHeader); got != "miss" {
		t.Fatalf("first run header = %q, want miss", got)
	}
	resp, out := post(map[string]any{"input": "x"})
	if got := resp.Header.Get(core.CacheHeader); got != "hit" {
		t.Fatalf("second run header = %q, want hit", got)
	}
	if out["cache_hit"] != true {
		t.Fatalf("body should flag cache_hit: %v", out)
	}
	resp, _ = post(map[string]any{"input": "x", "no_cache": true})
	if got := resp.Header.Get(core.CacheHeader); got != "bypass" {
		t.Fatalf("no_cache header = %q, want bypass", got)
	}

	// Pipelines participate per step: the first run shares step 1's
	// entry with the plain runs above (same key space) but dispatches
	// step 2 — a miss overall; repeating it serves every step from
	// cache and reports a hit.
	pipeDoc := pipelineDoc("hdr-pipe", []string{id, id})
	pipeID, err := ms.Publish(context.Background(), core.Anonymous, &servable.Package{Doc: pipeDoc})
	if err != nil {
		t.Fatal(err)
	}
	pipeRun := func() *http.Response {
		t.Helper()
		pdata, _ := json.Marshal(map[string]any{"input": "x"})
		presp, err := srv.Client().Post(srv.URL+"/api/run/"+pipeID, "application/json", bytes.NewReader(pdata))
		if err != nil {
			t.Fatal(err)
		}
		presp.Body.Close()
		return presp
	}
	if got := pipeRun().Header.Get(core.CacheHeader); got != "miss" {
		t.Fatalf("first pipeline run header = %q, want miss", got)
	}
	if got := pipeRun().Header.Get(core.CacheHeader); got != "hit" {
		t.Fatalf("repeated pipeline run header = %q, want hit", got)
	}

	// Stats endpoint: 1 plain hit + 1 step hit on the first pipeline
	// run + 2 step hits on the repeat; entries for the two step keys.
	sresp, err := srv.Client().Get(srv.URL + "/api/cache/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		Enabled bool            `json:"enabled"`
		Stats   core.CacheStats `json:"stats"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Enabled || stats.Stats.Hits != 4 || stats.Stats.Entries != 2 {
		t.Fatalf("stats endpoint wrong: %+v", stats)
	}

	// Flush wipes entries but keeps counters.
	if _, err := srv.Client().Post(srv.URL+"/api/cache/flush", "application/json", nil); err != nil {
		t.Fatal(err)
	}
	if st := ms.CacheStats(); st.Entries != 0 || st.Hits != 4 {
		t.Fatalf("flush wrong: %+v", st)
	}
}
