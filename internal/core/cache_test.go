package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func testResult(out string) RunResult {
	res := RunResult{}
	res.OK = true
	res.Output = out
	return res
}

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(CacheConfig{MaxEntries: 2})
	c.put("a", "s1", 0, testResult("a"))
	c.put("b", "s1", 0, testResult("b"))
	if _, ok := c.get("a"); !ok { // touch a -> b becomes LRU
		t.Fatal("a should be cached")
	}
	c.put("c", "s1", 0, testResult("c"))
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived eviction")
	}
	st := c.stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("want 1 eviction / 2 entries, got %+v", st)
	}
}

func TestResultCacheTTL(t *testing.T) {
	now := time.Now()
	c := newResultCache(CacheConfig{TTL: time.Minute})
	c.now = func() time.Time { return now }
	c.put("k", "s1", 0, testResult("v"))
	if _, ok := c.get("k"); !ok {
		t.Fatal("fresh entry should hit")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := c.get("k"); ok {
		t.Fatal("expired entry should miss")
	}
	st := c.stats()
	if st.Expirations != 1 || st.Entries != 0 {
		t.Fatalf("want 1 expiration / 0 entries, got %+v", st)
	}
}

func TestResultCacheInvalidate(t *testing.T) {
	c := newResultCache(CacheConfig{})
	c.put("k1", "s1", 0, testResult("1"))
	c.put("k2", "s1", 0, testResult("2"))
	c.put("k3", "s2", 0, testResult("3"))
	if n := c.invalidate("s1"); n != 2 {
		t.Fatalf("want 2 invalidated, got %d", n)
	}
	if _, ok := c.get("k1"); ok {
		t.Fatal("k1 should be gone")
	}
	if _, ok := c.get("k3"); !ok {
		t.Fatal("k3 (other servable) should survive")
	}
	c.flush()
	if st := c.stats(); st.Entries != 0 || st.Invalidations != 3 {
		t.Fatalf("flush wrong: %+v", st)
	}
}

func TestResultKeyCanonicalJSON(t *testing.T) {
	// Maps marshal with sorted keys, so field order at the client
	// cannot split cache entries.
	k1, err := resultKey("o/m", 1, "run", map[string]any{"a": 1.0, "b": "x"})
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := resultKey("o/m", 1, "run", map[string]any{"b": "x", "a": 1.0})
	if k1 != k2 {
		t.Fatal("equivalent inputs should share a key")
	}
	// Version, kind, servable and input all partition the key space.
	for _, other := range []struct {
		id      string
		version int
		kind    string
		input   any
	}{
		{"o/m", 2, "run", map[string]any{"a": 1.0, "b": "x"}},
		{"o/m", 1, "batch", map[string]any{"a": 1.0, "b": "x"}},
		{"o/m2", 1, "run", map[string]any{"a": 1.0, "b": "x"}},
		{"o/m", 1, "run", map[string]any{"a": 2.0, "b": "x"}},
	} {
		k, _ := resultKey(other.id, other.version, other.kind, other.input)
		if k == k1 {
			t.Fatalf("key collision with %+v", other)
		}
	}
}

func TestFlightGroupCollapses(t *testing.T) {
	var g flightGroup
	var calls int
	var mu sync.Mutex
	started := make(chan struct{})
	release := make(chan struct{})

	const waiters = 8
	var wg sync.WaitGroup
	results := make([]bool, waiters) // shared flag per caller
	var leaderOnce sync.Once
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err, shared := g.do(context.Background(), "k", func() (RunResult, error) {
				leaderOnce.Do(func() { close(started) })
				<-release
				mu.Lock()
				calls++
				mu.Unlock()
				return testResult("once"), nil
			})
			if err != nil || res.Output != "once" {
				t.Errorf("caller %d: res=%v err=%v", i, res.Output, err)
			}
			results[i] = shared
		}(i)
	}
	<-started
	time.Sleep(20 * time.Millisecond) // let followers reach the wait
	close(release)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("fn should run once, ran %d times", calls)
	}
	sharedCount := 0
	for _, s := range results {
		if s {
			sharedCount++
		}
	}
	// Followers that arrived while the leader was in flight all share;
	// stragglers that arrived after completion re-run (calls would then
	// exceed 1, already checked above).
	if sharedCount != waiters-1 {
		t.Fatalf("want %d shared callers, got %d", waiters-1, sharedCount)
	}
}

func TestFlightGroupPropagatesError(t *testing.T) {
	var g flightGroup
	wantErr := fmt.Errorf("boom")
	_, err, _ := g.do(context.Background(), "k", func() (RunResult, error) { return RunResult{}, wantErr })
	if err != wantErr {
		t.Fatalf("want error propagated, got %v", err)
	}
	// A failed call must not poison the key for later calls.
	res, err, _ := g.do(context.Background(), "k", func() (RunResult, error) { return testResult("ok"), nil })
	if err != nil || res.Output != "ok" {
		t.Fatalf("retry after failure broken: %v %v", res.Output, err)
	}
}

func TestFlightGroupFollowerTimeout(t *testing.T) {
	var g flightGroup
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	go g.do(context.Background(), "k", func() (RunResult, error) { //nolint:errcheck
		close(leaderIn)
		<-release
		return testResult("slow"), nil
	})
	<-leaderIn
	// A follower with a tight wait must give up on its own deadline,
	// not the leader's.
	start := time.Now()
	followerCtx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err, shared := g.do(followerCtx, "k", func() (RunResult, error) {
		t.Error("follower must not execute fn")
		return RunResult{}, nil
	})
	if !shared || err == nil {
		t.Fatalf("follower should time out as shared: shared=%v err=%v", shared, err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("follower waited %v, wanted ~20ms", elapsed)
	}
	close(release)
}

func TestResultCacheStaleGenerationPut(t *testing.T) {
	c := newResultCache(CacheConfig{})
	gen := c.generation("s1")
	c.invalidate("s1") // bumps s1's generation
	// A result computed before the invalidation must not be stored
	// after it.
	c.put("k", "s1", gen, testResult("stale"))
	if _, ok := c.get("k"); ok {
		t.Fatal("stale-generation put must be discarded")
	}
	c.put("k", "s1", c.generation("s1"), testResult("fresh"))
	if res, ok := c.get("k"); !ok || res.Output != "fresh" {
		t.Fatal("current-generation put must store")
	}
	// Another servable's invalidation must not discard s2's put.
	gen2 := c.generation("s2")
	c.invalidate("s1")
	c.put("k2", "s2", gen2, testResult("s2"))
	if _, ok := c.get("k2"); !ok {
		t.Fatal("unrelated invalidation must not discard s2's result")
	}
	// A flush invalidates every in-flight compute.
	gen2 = c.generation("s2")
	c.flush()
	c.put("k3", "s2", gen2, testResult("late"))
	if _, ok := c.get("k3"); ok {
		t.Fatal("pre-flush compute must not be stored post-flush")
	}
}

func TestResultCacheByteBudget(t *testing.T) {
	big := func(n int) RunResult { // result whose JSON is a bit over n bytes
		return testResult(strings.Repeat("x", n))
	}
	c := newResultCache(CacheConfig{MaxEntries: 100, MaxBytes: 4096})
	// Four ~900-byte entries fit (each under the 1024-byte oversize
	// threshold); the fifth pushes the sum past 4096 and evicts LRU.
	for _, k := range []string{"a", "b", "c", "d"} {
		c.put(k, "s1", 0, big(900))
	}
	if st := c.stats(); st.Entries != 4 || st.Bytes <= 0 {
		t.Fatalf("setup wrong: %+v", st)
	}
	c.put("e", "s1", 0, big(900))
	if _, ok := c.get("a"); ok {
		t.Fatal("a should have been evicted for the byte budget")
	}
	if st := c.stats(); st.Bytes > 4096 {
		t.Fatalf("byte budget exceeded: %+v", st)
	}
	// Oversized results (> MaxBytes/4) are never cached.
	c.put("huge", "s1", 0, big(1500))
	if _, ok := c.get("huge"); ok {
		t.Fatal("oversized entry should not be cached")
	}
}
