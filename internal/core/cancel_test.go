package core_test

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/servable"
	"repro/internal/taskmanager"
)

// blackHoleTM registers a Task Manager identity with the service whose
// queue nothing consumes: dispatches to it hang until their context
// ends, which is exactly the condition the cancellation paths must
// handle. The returned service has the result cache enabled.
func blackHoleTM(t *testing.T) (*core.Service, string) {
	t.Helper()
	servable.RegisterBuiltins()
	ms := core.New(core.Config{})
	t.Cleanup(ms.Close)
	const tmID = "tm-black-hole"
	reg, err := json.Marshal(taskmanager.Registration{TMID: tmID, Executors: []string{"parsl"}})
	if err != nil {
		t.Fatal(err)
	}
	ms.Broker().Push(taskmanager.RegisterQueue, reg, "", "", "")
	if err := ms.WaitForTM(1, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	return ms, tmID
}

// TestCancelMidDispatchFreesLoadSlot is the acceptance criterion:
// cancelling a Run's context mid-dispatch returns context.Canceled
// within 100ms, decrements the TM in-flight counter, and leaves no
// entry in the result cache.
func TestCancelMidDispatchFreesLoadSlot(t *testing.T) {
	ms, tmID := blackHoleTM(t)
	id, err := ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := ms.Run(ctx, core.Anonymous, id, "input", core.RunOptions{})
		errCh <- err
	}()

	// Wait for the dispatch to be in flight (load slot consumed).
	waitFor(t, time.Second, func() bool { return ms.TMLoad()[tmID] == 1 })

	cancel()
	start := time.Now()
	select {
	case err := <-errCh:
		if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
			t.Fatalf("cancel took %v to propagate, want <100ms", elapsed)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
		if !errors.Is(err, core.ErrCanceled) {
			t.Fatalf("want ErrCanceled classification, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled Run never returned")
	}

	if load := ms.TMLoad()[tmID]; load != 0 {
		t.Fatalf("in-flight slot leaked: TMLoad=%d, want 0", load)
	}
	if stats := ms.CacheStats(); stats.Entries != 0 {
		t.Fatalf("canceled run poisoned the cache: %d entries", stats.Entries)
	}
}

// TestCancelLeaderReleasesFollowers: a follower collapsed onto a
// canceled leader must not inherit the cancellation — it re-dispatches
// as the new leader and gets a real result, which lands in the cache
// exactly once.
func TestCancelLeaderReleasesFollowers(t *testing.T) {
	ms, tmID := blackHoleTM(t)
	id, err := ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage())
	if err != nil {
		t.Fatal(err)
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	leaderErr := make(chan error, 1)
	go func() {
		_, err := ms.Run(leaderCtx, core.Anonymous, id, "shared-input", core.RunOptions{})
		leaderErr <- err
	}()
	waitFor(t, time.Second, func() bool { return ms.TMLoad()[tmID] == 1 })

	type followerOut struct {
		res core.RunResult
		err error
	}
	followerCh := make(chan followerOut, 1)
	go func() {
		// Identical request: collapses onto the leader's flight.
		res, err := ms.Run(context.Background(), core.Anonymous, id, "shared-input", core.RunOptions{})
		followerCh <- followerOut{res, err}
	}()
	// Give the follower time to join the flight, then kill the leader.
	time.Sleep(50 * time.Millisecond)
	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader: want context.Canceled, got %v", err)
	}

	// The follower must now re-dispatch; answer its task by hand.
	replyOnce(t, ms, tmID, "late-but-real")

	select {
	case out := <-followerCh:
		if out.err != nil {
			t.Fatalf("follower inherited the leader's cancellation: %v", out.err)
		}
		if out.res.Output != "late-but-real" {
			t.Fatalf("follower got %v, want late-but-real", out.res.Output)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("follower still blocked after leader cancel")
	}

	// The follower's (successful) result is the only cache entry, and a
	// third identical request must hit it.
	if stats := ms.CacheStats(); stats.Entries != 1 {
		t.Fatalf("want exactly 1 cache entry, got %d", stats.Entries)
	}
	res, err := ms.Run(context.Background(), core.Anonymous, id, "shared-input", core.RunOptions{})
	if err != nil || !res.CacheHit || res.Output != "late-but-real" {
		t.Fatalf("post-cancel cache broken: res=%+v err=%v", res, err)
	}
	if load := ms.TMLoad()[tmID]; load != 0 {
		t.Fatalf("in-flight slots leaked: %d", load)
	}
}

// TestCancelWithdrawsQueuedTask: a task canceled before any consumer
// pulled it is withdrawn from the queue entirely — no Task Manager ever
// executes it.
func TestCancelWithdrawsQueuedTask(t *testing.T) {
	ms, tmID := blackHoleTM(t)
	id, err := ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := ms.Run(ctx, core.Anonymous, id, "x", core.RunOptions{NoMemo: true})
		errCh <- err
	}()
	queueName := taskmanager.TaskQueue(tmID)
	waitFor(t, time.Second, func() bool { return ms.Broker().Len(queueName) == 1 })
	cancel()
	<-errCh
	waitFor(t, time.Second, func() bool { return ms.Broker().Len(queueName) == 0 })
}

// TestRunOptionsTimeoutShim: the deprecated RunOptions.Timeout still
// bounds the request, now via the context machinery, and reports
// ErrTimeout / context.DeadlineExceeded.
func TestRunOptionsTimeoutShim(t *testing.T) {
	ms, _ := blackHoleTM(t)
	id, err := ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = ms.Run(context.Background(), core.Anonymous, id, "x", core.RunOptions{Timeout: 50 * time.Millisecond})
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Timeout shim not applied: took %v", elapsed)
	}
	if !errors.Is(err, core.ErrTimeout) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrTimeout + DeadlineExceeded, got %v", err)
	}
}

// replyOnce consumes one task from the TM queue and answers it OK with
// the given output.
func replyOnce(t *testing.T, ms *core.Service, tmID, output string) {
	t.Helper()
	msg, ok := ms.Broker().Pull(taskmanager.TaskQueue(tmID), 2*time.Second)
	if !ok {
		t.Fatal("no task arrived on the TM queue")
	}
	var task taskmanager.Task
	if err := json.Unmarshal(msg.Body, &task); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(taskmanager.Reply{TaskID: task.ID, OK: true, Output: output, InvocationMicros: 1})
	if err != nil {
		t.Fatal(err)
	}
	ms.Broker().Reply(msg, body)
}

var waitForMu sync.Mutex // serialize t.Fatal across waiters

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitForMu.Lock()
	defer waitForMu.Unlock()
	t.Fatal("condition not met in time")
}
