package core_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/schema"
	"repro/internal/search"
	"repro/internal/servable"
	"repro/internal/simconst"
)

func init() {
	simconst.Scale = 1000
}

func newTB(t *testing.T, opts bench.Options) *bench.Testbed {
	t.Helper()
	if opts.Nodes == 0 {
		opts.Nodes = 4
	}
	tb, err := bench.NewTestbed(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	return tb
}

func TestPublishRunEndToEnd(t *testing.T) {
	tb := newTB(t, bench.Options{})
	ms := tb.MS

	pkg := servable.NoopPackage()
	id, err := ms.Publish(context.Background(), core.Anonymous, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if id != "anonymous/noop" {
		t.Fatalf("unexpected id %s", id)
	}
	if err := ms.Deploy(context.Background(), core.Anonymous, id, 1, "parsl"); err != nil {
		t.Fatal(err)
	}
	res, err := ms.Run(context.Background(), core.Anonymous, id, "x", core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "hello world" {
		t.Fatalf("wrong output %v", res.Output)
	}
	if res.RequestMicros <= 0 || res.InvocationMicros <= 0 {
		t.Fatalf("timings missing: %+v", res)
	}
	// Request time (MS) should cover invocation time (TM).
	if res.RequestMicros < res.InvocationMicros {
		t.Fatalf("request %dus < invocation %dus", res.RequestMicros, res.InvocationMicros)
	}
}

func TestPublishValidation(t *testing.T) {
	tb := newTB(t, bench.Options{})
	pkg := servable.NoopPackage()
	pkg.Doc.Publication.Title = ""
	if _, err := tb.MS.Publish(context.Background(), core.Anonymous, pkg); err == nil {
		t.Fatal("invalid doc should fail to publish")
	}
}

func TestVersioning(t *testing.T) {
	tb := newTB(t, bench.Options{})
	id1, err := tb.MS.Publish(context.Background(), core.Anonymous, servable.NoopPackage())
	if err != nil {
		t.Fatal(err)
	}
	id2, err := tb.MS.Publish(context.Background(), core.Anonymous, servable.NoopPackage())
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatal("republish should keep the ID")
	}
	versions, err := tb.MS.Versions(core.Anonymous, id1)
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 2 || versions[1].Version != 2 {
		t.Fatalf("want 2 versions, got %d", len(versions))
	}
	doc, _ := tb.MS.Get(core.Anonymous, id1)
	if doc.Version != 2 {
		t.Fatalf("latest version should be 2, got %d", doc.Version)
	}
}

func TestSearchDiscovery(t *testing.T) {
	tb := newTB(t, bench.Options{})
	if _, err := tb.MS.Publish(context.Background(), core.Anonymous, servable.MatminerUtilPackage()); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.MS.Publish(context.Background(), core.Anonymous, servable.NoopPackage()); err != nil {
		t.Fatal(err)
	}
	res, _ := tb.MS.Search(context.Background(), core.Anonymous, search.Query{Must: []search.Clause{{FreeText: "pymatgen composition"}}})
	if res.Total != 1 || res.Hits[0].Doc.ID != "anonymous/matminer-util" {
		t.Fatalf("search wrong: %+v", res)
	}
	// Faceting across the repository.
	res, _ = tb.MS.Search(context.Background(), core.Anonymous, search.Query{FacetOn: []string{"type"}})
	if res.Facets["type"]["python_function"] != 2 {
		t.Fatalf("facets wrong: %v", res.Facets)
	}
}

func TestAccessControl(t *testing.T) {
	a := auth.NewService(time.Hour)
	a.RegisterProvider("orcid")
	a.RegisterClient("dlhub", "DLHub", "dlhub:all")
	a.RegisterUser("orcid", "owner", "pw", "Owner", "") //nolint:errcheck
	a.RegisterUser("orcid", "other", "pw", "Other", "") //nolint:errcheck
	member, _ := a.RegisterUser("orcid", "member", "pw", "Member", "")
	a.CreateGroup("candle-testers")
	a.AddToGroup("candle-testers", member.ID) //nolint:errcheck

	tb := newTB(t, bench.Options{Auth: a, RunScope: "dlhub:all"})
	ms := tb.MS

	callerFor := func(user string) core.Caller {
		tok, err := a.Authenticate("orcid", user, "pw", "dlhub", "dlhub:all")
		if err != nil {
			t.Fatal(err)
		}
		c, err := ms.ResolveCaller("Bearer " + tok.Value)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	// Publish a group-restricted model (the CANDLE pattern, §VI-A).
	pkg := servable.NoopPackage()
	pkg.Doc.Publication.Name = "drug-response"
	pkg.Doc.Publication.VisibleTo = []string{auth.GroupURN("candle-testers")}
	ownerCaller := callerFor("owner")
	id, err := ms.Publish(context.Background(), ownerCaller, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Deploy(context.Background(), ownerCaller, id, 1, "parsl"); err != nil {
		t.Fatal(err)
	}

	// Group member can see and run it.
	if _, err := ms.Get(callerFor("member"), id); err != nil {
		t.Fatalf("group member should see the model: %v", err)
	}
	if _, err := ms.Run(context.Background(), callerFor("member"), id, "x", core.RunOptions{}); err != nil {
		t.Fatalf("group member should run the model: %v", err)
	}

	// Outsider cannot — and cannot even discover it.
	if _, err := ms.Get(callerFor("other"), id); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("outsider should get not-found, got %v", err)
	}
	if _, err := ms.Run(context.Background(), callerFor("other"), id, "x", core.RunOptions{}); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("outsider should not run, got %v", err)
	}
	res, _ := ms.Search(context.Background(), callerFor("other"), search.Query{})
	for _, h := range res.Hits {
		if h.Doc.ID == id {
			t.Fatal("restricted model leaked into outsider search")
		}
	}

}

func TestUpdateMetadataFlipsVisibility(t *testing.T) {
	a := auth.NewService(time.Hour)
	a.RegisterProvider("orcid")
	a.RegisterClient("dlhub", "DLHub", "dlhub:all")
	a.RegisterUser("orcid", "owner", "pw", "Owner", "") //nolint:errcheck
	a.RegisterUser("orcid", "other", "pw", "Other", "") //nolint:errcheck

	tb := newTB(t, bench.Options{Auth: a, RunScope: "dlhub:all"})
	ms := tb.MS
	callerFor := func(user string) core.Caller {
		tok, _ := a.Authenticate("orcid", user, "pw", "dlhub", "dlhub:all")
		c, _ := ms.ResolveCaller("Bearer " + tok.Value)
		return c
	}
	ownerC := callerFor("owner")
	pkg := servable.NoopPackage()
	pkg.Doc.Publication.VisibleTo = []string{ownerC.IdentityID}
	id, err := ms.Publish(context.Background(), ownerC, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms.Get(callerFor("other"), id); !errors.Is(err, core.ErrNotFound) {
		t.Fatal("should be private initially")
	}
	// Release publicly.
	if err := ms.UpdateMetadata(ownerC, id, func(p *schema.Publication) {
		p.VisibleTo = []string{"public"}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := ms.Get(callerFor("other"), id); err != nil {
		t.Fatalf("should be public after update: %v", err)
	}
	// Non-owner cannot update.
	if err := ms.UpdateMetadata(callerFor("other"), id, func(p *schema.Publication) {
		p.VisibleTo = nil
	}); !errors.Is(err, core.ErrForbidden) {
		t.Fatalf("non-owner update should be forbidden, got %v", err)
	}
}

func TestMemoizationEndToEnd(t *testing.T) {
	tb := newTB(t, bench.Options{Memoize: true})
	ms := tb.MS
	id, _ := ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage())
	ms.Deploy(context.Background(), core.Anonymous, id, 1, "parsl") //nolint:errcheck

	r1, err := ms.Run(context.Background(), core.Anonymous, id, "same", core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ms.Run(context.Background(), core.Anonymous, id, "same", core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached || !r2.Cached {
		t.Fatalf("memoization wrong: first=%v second=%v", r1.Cached, r2.Cached)
	}
	// NoMemo opt-out, as the experiments configure.
	r3, err := ms.Run(context.Background(), core.Anonymous, id, "same", core.RunOptions{NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Fatal("NoMemo run must bypass the cache")
	}
}

func TestBatchEndToEnd(t *testing.T) {
	tb := newTB(t, bench.Options{})
	ms := tb.MS
	id, _ := ms.Publish(context.Background(), core.Anonymous, servable.MatminerUtilPackage())
	ms.Deploy(context.Background(), core.Anonymous, id, 2, "parsl") //nolint:errcheck

	inputs := []any{"NaCl", "SiO2", "Fe2O3"}
	res, err := ms.RunBatch(context.Background(), core.Anonymous, id, inputs, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 3 {
		t.Fatalf("want 3 outputs, got %d", len(res.Outputs))
	}
	first := res.Outputs[0].(map[string]any)
	if len(first) != 2 {
		t.Fatalf("NaCl should parse to 2 elements: %v", first)
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	tb := newTB(t, bench.Options{})
	ms := tb.MS

	// Publish and deploy the three matminer stages.
	ids := map[string]string{}
	for name, pkg := range map[string]*servable.Package{
		"util":      servable.MatminerUtilPackage(),
		"featurize": servable.MatminerFeaturizePackage(),
	} {
		id, err := ms.Publish(context.Background(), core.Anonymous, pkg)
		if err != nil {
			t.Fatal(err)
		}
		if err := ms.Deploy(context.Background(), core.Anonymous, id, 1, "parsl"); err != nil {
			t.Fatal(err)
		}
		ids[name] = id
	}
	modelPkg, err := servable.MatminerModelPackage(120, 1)
	if err != nil {
		t.Fatal(err)
	}
	modelID, err := ms.Publish(context.Background(), core.Anonymous, modelPkg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Deploy(context.Background(), core.Anonymous, modelID, 1, "parsl"); err != nil {
		t.Fatal(err)
	}
	ids["model"] = modelID

	// Publish the pipeline (§VI-D formation-enthalpy workflow).
	pipe := &servable.Package{Doc: pipelineDoc("formation-enthalpy", []string{ids["util"], ids["featurize"], ids["model"]})}
	pipeID, err := ms.Publish(context.Background(), core.Anonymous, pipe)
	if err != nil {
		t.Fatal(err)
	}

	res, err := ms.Run(context.Background(), core.Anonymous, pipeID, "SiO2", core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Output.(float64); !ok {
		t.Fatalf("pipeline should end in a formation energy float, got %T", res.Output)
	}
}

func TestAsyncTask(t *testing.T) {
	tb := newTB(t, bench.Options{})
	ms := tb.MS
	id, _ := ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage())
	ms.Deploy(context.Background(), core.Anonymous, id, 1, "parsl") //nolint:errcheck

	taskID, err := ms.RunAsync(context.Background(), core.Anonymous, id, "x", core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := ms.TaskStatus(taskID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Status == "completed" {
			if st.Reply.Output != "hello world" {
				t.Fatalf("async result wrong: %v", st.Reply.Output)
			}
			break
		}
		if st.Status == "failed" {
			t.Fatalf("async task failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("async task never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := ms.TaskStatus("ghost"); !errors.Is(err, core.ErrTaskNotFound) {
		t.Fatalf("want task not found, got %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	tb := newTB(t, bench.Options{})
	ms := tb.MS
	if _, err := ms.Run(context.Background(), core.Anonymous, "ghost/model", 1, core.RunOptions{}); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("want not found, got %v", err)
	}
	// Published but not deployed: the TM reports an executor error.
	id, _ := ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage())
	if _, err := ms.Run(context.Background(), core.Anonymous, id, 1, core.RunOptions{}); err == nil {
		t.Fatal("run before deploy should fail")
	}
}

func TestRESTAPIEndToEnd(t *testing.T) {
	tb := newTB(t, bench.Options{})
	srv := httptest.NewServer(tb.MS.Handler())
	defer srv.Close()
	client := srv.Client()

	// Publish via REST.
	pkg := servable.NoopPackage()
	var pubResp map[string]string
	docJSON, _ := rpc.EncodeJSON(pkg.Doc)
	err := rpc.PostJSON(client, srv.URL+"/api/publish", map[string]any{"document": rawJSON(docJSON)}, &pubResp)
	if err != nil {
		t.Fatal(err)
	}
	id := pubResp["id"]
	if id != "anonymous/noop" {
		t.Fatalf("bad id %q", id)
	}

	// Deploy via REST.
	if err := rpc.PostJSON(client, srv.URL+"/api/deploy/"+id, map[string]any{"replicas": 1}, nil); err != nil {
		t.Fatal(err)
	}

	// Run via REST.
	var runResp struct {
		Output    any   `json:"output"`
		RequestUS int64 `json:"request_us"`
	}
	if err := rpc.PostJSON(client, srv.URL+"/api/run/"+id, map[string]any{"input": "hi"}, &runResp); err != nil {
		t.Fatal(err)
	}
	if runResp.Output != "hello world" || runResp.RequestUS <= 0 {
		t.Fatalf("REST run wrong: %+v", runResp)
	}

	// Search via REST.
	var searchResp core.SearchResponse
	if err := rpc.PostJSON(client, srv.URL+"/api/search", map[string]any{"q": "hello baseline"}, &searchResp); err != nil {
		t.Fatal(err)
	}
	if searchResp.Total != 1 {
		t.Fatalf("REST search wrong: %+v", searchResp)
	}

	// Get doc + dockerfile via REST.
	var doc map[string]any
	if err := rpc.GetJSON(client, srv.URL+"/api/servables/"+id, &doc); err != nil {
		t.Fatal(err)
	}
	var df map[string]string
	if err := rpc.GetJSON(client, srv.URL+"/api/servables/"+id+"/dockerfile", &df); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(df["dockerfile"], "dlhub_sdk") {
		t.Fatalf("dockerfile should list dlhub deps: %s", df["dockerfile"])
	}

	// Async via REST.
	var asyncResp map[string]string
	if err := rpc.PostJSON(client, srv.URL+"/api/run/"+id, map[string]any{"input": "x", "async": true}, &asyncResp); err != nil {
		t.Fatal(err)
	}
	taskID := asyncResp["task_id"]
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st core.AsyncTask
		if err := rpc.GetJSON(client, srv.URL+"/api/status/"+taskID, &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == "completed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("async REST task never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Unknown servable is a 404.
	err = rpc.PostJSON(client, srv.URL+"/api/run/ghost/model", map[string]any{"input": 1}, nil)
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("want 404, got %v", err)
	}
}

func TestWANShapedRequestTimes(t *testing.T) {
	// With paper RTTs at scale 1, a round trip must include the
	// 20.7ms MS<->TM WAN RTT. Run at scale 10 to keep the test fast:
	// expected floor becomes ~2.07ms.
	simconst.Scale = 10
	defer func() { simconst.Scale = 1000 }()
	tb := newTB(t, bench.Options{WAN: true})
	ms := tb.MS
	id, _ := ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage())
	if err := ms.Deploy(context.Background(), core.Anonymous, id, 1, "parsl"); err != nil {
		t.Fatal(err)
	}
	res, err := ms.Run(context.Background(), core.Anonymous, id, "x", core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantFloor := int64(2070) // 20.7ms / 10 in µs
	if res.RequestMicros < wantFloor {
		t.Fatalf("request time %dus below WAN floor %dus", res.RequestMicros, wantFloor)
	}
	// Invocation (at TM) must be well under request (at MS).
	if res.InvocationMicros >= res.RequestMicros {
		t.Fatalf("invocation %dus should be < request %dus", res.InvocationMicros, res.RequestMicros)
	}
}

// rawJSON wraps pre-encoded JSON for embedding in a map.
type rawJSON []byte

func (r rawJSON) MarshalJSON() ([]byte, error) { return r, nil }

// pipelineDoc builds a pipeline publication document.
func pipelineDoc(name string, steps []string) *schema.Document {
	return &schema.Document{
		Publication: schema.Publication{
			Name:        name,
			Title:       "Pipeline " + name,
			Authors:     []string{"DLHub Team"},
			VisibleTo:   []string{"public"},
			Description: fmt.Sprintf("pipeline over %v", steps),
		},
		Servable: schema.Servable{
			Type:  schema.TypePipeline,
			Steps: steps,
		},
	}
}
