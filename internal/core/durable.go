package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"log"
	"sort"
	"strings"

	"repro/internal/auth"
	"repro/internal/schema"
	"repro/internal/servable"
	"repro/internal/store"
)

// Durability seam: every repository state transition flows through
// logged(), which appends a typed record to the configured store
// (internal/store WAL). With no store configured (tests, the bench
// testbed, snapshot-only servers) logged is a nil check and nothing is
// encoded.
//
// Record taxonomy (one kind per mutation; payloads gob-encoded):
//
//	publish           recPublish   — new servable version (full doc + components)
//	metadata          recMetadata  — UpdateMetadata outcome (full updated doc)
//	unpublish         recServable  — repository entry removed
//	deploy            recPlacement — placement added (Deploy/DeployTo/drain migration)
//	undeploy          recPlacement — one placement removed (Undeploy/drain)
//	scale             recPlacement — desired replica count changed
//	drain             recTM        — TM drain mark set
//	rejoin            recTM        — TM drain mark cleared
//	deregister        recTM        — TM removed from the registry
//	autoscale_policy  recPolicyPut — autoscale policy installed/updated
//	tenant_quota      recTenantQuota — tenant quota spec set/replaced
//	tenant_bind       recTenantBind  — identity URN bound to a tenant
//	user              userRecord     — user registration (hash, never
//	                                   the plaintext password)
//
// Deliberately NOT logged (runtime state the service re-learns or that
// is semantically a cache): TM registrations and heartbeats (re-learned
// when sites reconnect), drain marks asserted by heartbeats (the
// original DrainTM was logged; a heartbeat echo is not a transition),
// in-flight/demand counters, result-cache and idempotency entries,
// async task table, and route metrics. Access TOKENS are in this bucket
// too: they are short-lived bearer secrets, so persisting them would
// extend their blast radius past the process lifetime for no benefit —
// after a restart clients simply log in again against the replayed user
// records.
//
// Replay handlers are UPSERTS, not blind re-applications: a checkpoint
// can run between an in-memory mutation and its append, so a tail
// record may describe state the checkpoint already contains. Replaying
// it must converge, not duplicate.
//
// Lock discipline: compaction runs writeSnapshot (which takes s.mu)
// while holding the store's own lock and blocking appends — so logged()
// must NEVER be called with s.mu held. Every call site releases s.mu
// first.

const (
	recKindPublish    = "publish"
	recKindMetadata   = "metadata"
	recKindUnpublish  = "unpublish"
	recKindDeploy     = "deploy"
	recKindUndeploy   = "undeploy"
	recKindScale      = "scale"
	recKindDrain      = "drain"
	recKindRejoin     = "rejoin"
	recKindDeregister = "deregister"
	recKindPolicy     = "autoscale_policy"
	recKindTenant     = "tenant_quota"
	recKindTenantBind = "tenant_bind"
	recKindUser       = "user"
)

// recPublish logs a new servable version. Doc is a deep copy taken
// under the repository lock (the live pointer keeps mutating via
// UpdateMetadata); Components are immutable after publish.
type recPublish struct {
	Doc        *schema.Document
	Components map[string][]byte
}

// recMetadata logs an UpdateMetadata outcome as the full updated doc —
// simpler and more robust than replaying the edit as a delta.
type recMetadata struct {
	ID  string
	Doc *schema.Document
}

// recServable names a servable (unpublish).
type recServable struct{ ID string }

// recPlacement covers deploy/undeploy/scale: servable, site (empty for
// scale — replicas are per-servable), desired replicas.
type recPlacement struct {
	ID       string
	TM       string
	Replicas int
}

// recTM names a Task Manager (drain/rejoin/deregister).
type recTM struct{ TM string }

// recPolicyPut logs an autoscale-policy put (the raw policy as
// submitted; defaults re-apply on replay exactly as they did on set).
type recPolicyPut struct {
	ID     string
	Policy AutoscalePolicy
}

// recTenantQuota logs a tenant quota put. Replay upserts the registry
// record AND pushes the priority class's dequeue weight to the broker,
// mirroring SetTenantQuota — the recovered fairness lanes must match
// the pre-crash ones.
type recTenantQuota struct {
	ID    string
	Quota auth.Quota
}

// recTenantBind logs an identity→tenant binding.
type recTenantBind struct {
	IdentityID string
	TenantID   string
}

// userRecord is one durable user registration, doubling as the "user"
// WAL payload and the snapshot entry. PasswordHash is the stored
// credential form (auth.HashPassword) — the plaintext never leaves the
// registration handler.
type userRecord struct {
	Provider     string
	Username     string
	PasswordHash string
	FullName     string
	Email        string
}

// logged appends one durable record for an already-applied in-memory
// mutation. Append failures are logged loudly rather than unwound: the
// mutation happened, and failing the caller's request would report an
// operation that in fact succeeded. Callers must not hold s.mu.
func (s *Service) logged(kind string, payload any) {
	st := s.cfg.Store
	if st == nil {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
		log.Printf("core: wal: encode %s record: %v", kind, err)
		return
	}
	if err := st.Append(store.Record{Kind: kind, Data: buf.Bytes()}); err != nil {
		log.Printf("core: wal: append %s record failed: %v (mutation applied in memory; durability degraded)", kind, err)
	}
}

func decodeRec[T any](data []byte) (T, error) {
	var v T
	err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v)
	return v, err
}

// applyRecord re-applies one WAL record during recovery. It touches the
// repository maps only — the search index and cache are rebuilt once by
// finishRestore after the whole tail replays. Handlers tolerate state
// the checkpoint already contains (see the taxonomy comment) and state
// referencing since-unpublished servables.
func (s *Service) applyRecord(rec store.Record) error {
	switch rec.Kind {
	case recKindPublish:
		p, err := decodeRec[recPublish](rec.Data)
		if err != nil {
			return err
		}
		doc := p.Doc
		if doc == nil || doc.ID == "" || doc.Version < 1 {
			return fmt.Errorf("core: malformed publish record (seq %d)", rec.Seq)
		}
		s.mu.Lock()
		vs := s.versions[doc.ID]
		for len(vs) < doc.Version {
			vs = append(vs, nil)
		}
		vs[doc.Version-1] = doc
		s.versions[doc.ID] = vs
		if cur, ok := s.docs[doc.ID]; !ok || cur.Version <= doc.Version {
			s.docs[doc.ID] = doc
			s.packages[doc.ID] = &servable.Package{Doc: doc, Components: p.Components}
		}
		s.mu.Unlock()

	case recKindMetadata:
		m, err := decodeRec[recMetadata](rec.Data)
		if err != nil {
			return err
		}
		if m.Doc == nil {
			return fmt.Errorf("core: malformed metadata record (seq %d)", rec.Seq)
		}
		s.mu.Lock()
		if cur, ok := s.docs[m.ID]; ok && cur.Version == m.Doc.Version {
			s.docs[m.ID] = m.Doc
			if vs := s.versions[m.ID]; m.Doc.Version >= 1 && m.Doc.Version <= len(vs) {
				vs[m.Doc.Version-1] = m.Doc
			}
			if pkg := s.packages[m.ID]; pkg != nil {
				pkg.Doc = m.Doc
			}
		}
		s.mu.Unlock()

	case recKindUnpublish:
		u, err := decodeRec[recServable](rec.Data)
		if err != nil {
			return err
		}
		s.mu.Lock()
		delete(s.docs, u.ID)
		delete(s.versions, u.ID)
		delete(s.packages, u.ID)
		s.route.dropServable(u.ID)
		s.mu.Unlock()
		s.scaler.removePolicy(u.ID)

	case recKindDeploy:
		d, err := decodeRec[recPlacement](rec.Data)
		if err != nil {
			return err
		}
		s.mu.RLock()
		if _, ok := s.docs[d.ID]; ok {
			s.route.applyDeploy(d.ID, d.TM, d.Replicas)
		}
		s.mu.RUnlock()

	case recKindUndeploy:
		d, err := decodeRec[recPlacement](rec.Data)
		if err != nil {
			return err
		}
		s.removePlacement(d.ID, d.TM)

	case recKindScale:
		sc, err := decodeRec[recPlacement](rec.Data)
		if err != nil {
			return err
		}
		s.mu.RLock()
		if _, ok := s.docs[sc.ID]; ok {
			s.route.setReplicas(sc.ID, sc.Replicas)
		}
		s.mu.RUnlock()

	case recKindDrain:
		t, err := decodeRec[recTM](rec.Data)
		if err != nil {
			return err
		}
		s.route.markDraining(t.TM)

	case recKindRejoin:
		t, err := decodeRec[recTM](rec.Data)
		if err != nil {
			return err
		}
		s.route.applyRejoin(t.TM)

	case recKindDeregister:
		t, err := decodeRec[recTM](rec.Data)
		if err != nil {
			return err
		}
		s.route.applyDeregister(t.TM)

	case recKindPolicy:
		p, err := decodeRec[recPolicyPut](rec.Data)
		if err != nil {
			return err
		}
		if err := s.scaler.setPolicy(p.ID, p.Policy); err != nil {
			return fmt.Errorf("core: replay policy %s: %w", p.ID, err)
		}

	case recKindTenant:
		t, err := decodeRec[recTenantQuota](rec.Data)
		if err != nil {
			return err
		}
		s.tenants.SetQuota(t.ID, t.Quota)
		s.broker.SetLaneWeight(t.ID, auth.PriorityWeight(t.Quota.Priority))

	case recKindTenantBind:
		b, err := decodeRec[recTenantBind](rec.Data)
		if err != nil {
			return err
		}
		s.tenants.Bind(b.IdentityID, b.TenantID)

	case recKindUser:
		u, err := decodeRec[userRecord](rec.Data)
		if err != nil {
			return err
		}
		s.installUser(u)

	default:
		// Forward compatibility: a newer build's record kind is skipped
		// with a warning rather than failing the whole boot.
		log.Printf("core: wal: ignoring unknown record kind %q (seq %d)", rec.Kind, rec.Seq)
	}
	return nil
}

// Recover restores state from the configured store: last checkpoint,
// then the WAL tail (torn final record tolerated), then the index/cache
// rebuild. Call once, right after New and before serving traffic. A
// nil store recovers nothing.
func (s *Service) Recover() (store.RecoveryInfo, error) {
	st := s.cfg.Store
	if st == nil {
		return store.RecoveryInfo{}, nil
	}
	info, err := st.Recover(s.restoreSnapshot, s.applyRecord)
	if err != nil {
		return info, err
	}
	s.finishRestore()
	return info, nil
}

// Checkpoint forces a store compaction — the clean-shutdown hook, so a
// graceful stop leaves a fresh checkpoint and an empty log. A nil
// store is a no-op.
func (s *Service) Checkpoint() error {
	if s.cfg.Store == nil {
		return nil
	}
	return s.cfg.Store.Checkpoint()
}

// WALStats snapshots the store counters for /api/v2/stats ("wal"
// block); nil when no store is configured.
func (s *Service) WALStats() *store.Stats {
	if s.cfg.Store == nil {
		return nil
	}
	st := s.cfg.Store.Stats()
	return &st
}

// StateFingerprint renders the durable repository state — servables,
// placements, replicas, drain marks, autoscale policies, tenants,
// identity bindings, and user registrations — as a sorted,
// line-oriented string. Two services with equal fingerprints hold the
// same durable state; the bench testbed compares fingerprints across a
// kill-and-recover cycle, and a mismatch diff names the first divergent
// line. Runtime state the WAL deliberately does not cover (TM
// registrations, caches, in-flight counters) is excluded.
func (s *Service) StateFingerprint() string {
	snap := s.captureSnapshot()
	var b strings.Builder
	for _, id := range sortedKeys(snap.Docs) {
		doc := snap.Docs[id]
		fmt.Fprintf(&b, "servable %s v%d type=%s entry=%s versions=%d components=%d\n",
			id, doc.Version, doc.Servable.Type, doc.Servable.Entry,
			len(snap.Versions[id]), len(snap.Components[id]))
	}
	for _, id := range sortedKeys(snap.Placements) {
		tms := append([]string(nil), snap.Placements[id]...)
		sort.Strings(tms)
		fmt.Fprintf(&b, "placement %s -> %s\n", id, strings.Join(tms, ","))
	}
	for _, id := range sortedKeys(snap.Replicas) {
		fmt.Fprintf(&b, "replicas %s = %d\n", id, snap.Replicas[id])
	}
	sort.Strings(snap.Draining)
	for _, tm := range snap.Draining {
		fmt.Fprintf(&b, "draining %s\n", tm)
	}
	for _, id := range sortedKeys(snap.Policies) {
		fmt.Fprintf(&b, "policy %s %+v\n", id, snap.Policies[id])
	}
	for _, t := range snap.Tenants {
		fmt.Fprintf(&b, "tenant %s prio=%s mif=%d rate=%g quota=%t\n",
			t.ID, t.Quota.Priority, t.Quota.MaxInFlight, t.Quota.RatePerSec, t.HasQuota)
	}
	for _, id := range sortedKeys(snap.Bindings) {
		fmt.Fprintf(&b, "binding %s -> %s\n", id, snap.Bindings[id])
	}
	for _, key := range sortedKeys(snap.Users) {
		u := snap.Users[key]
		fmt.Fprintf(&b, "user %s cred=%s\n", key, credDigest(u.PasswordHash))
	}
	return b.String()
}

// credDigest folds a stored password hash into a short second-order
// digest for fingerprint lines. Fingerprints end up verbatim in
// test-failure diffs and comparison logs, so the stored hash itself
// (offline-crackable unsalted SHA-256) must not leak into them; eight
// hex chars of sha256(hash) still flag any credential divergence.
func credDigest(storedHash string) string {
	sum := sha256.Sum256([]byte(storedHash))
	return hex.EncodeToString(sum[:4])
}

// sortedKeys returns a map's keys in sorted order, for deterministic
// fingerprint output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
