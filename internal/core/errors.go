package core

import (
	"context"
	"errors"
	"net/http"
)

// Structured service errors. Every failure the Management Service can
// return is classified by a machine-readable Code that maps to one HTTP
// status, replacing the old sentinel-error grab bag whose HTTP mapping
// lived in ad-hoc switch arms. The exported Err* values keep their old
// names so existing `errors.Is(err, core.ErrNotFound)` call sites keep
// working — they are now *Error values whose identity is their Code, so
// any wrapped or detail-carrying error with the same code matches.

// Code is a machine-readable error class, stable across releases; the
// v2 wire envelope carries it verbatim in error.code.
type Code string

// Error codes.
const (
	CodeBadRequest    Code = "bad_request"
	CodeUnauthorized  Code = "unauthorized"
	CodeForbidden     Code = "forbidden"
	CodeNotFound      Code = "not_found"
	CodeTaskNotFound  Code = "task_not_found"
	CodeConflict      Code = "conflict"
	CodeNoTaskManager Code = "no_task_manager"
	CodeTimeout       Code = "timeout"
	CodeCanceled      Code = "canceled"
	CodeTaskFailed    Code = "task_failed"
	CodeOverloaded    Code = "overloaded"
	CodeQuotaExceeded Code = "quota_exceeded"
	CodeUpstream      Code = "upstream_error"
	CodeInternal      Code = "internal"
)

// StatusClientClosedRequest is the non-standard (nginx) status reported
// when the client canceled the request before a response was written.
// No response actually reaches such a client; the status exists for
// logs, metrics and the errorStatus table.
const StatusClientClosedRequest = 499

// Error is a structured service error: a stable machine-readable Code,
// the HTTP status it maps to, a human Message, and optional Detail with
// request-specific context. Compare with errors.Is against the Err*
// sentinels (identity is the Code, not the pointer) and extract with
// errors.As for the code/status/detail fields.
type Error struct {
	Code       Code
	HTTPStatus int
	Message    string
	Detail     string
	cause      error
}

// Error renders "Message" or "Message: Detail".
func (e *Error) Error() string {
	if e.Detail != "" {
		return e.Message + ": " + e.Detail
	}
	return e.Message
}

// Unwrap exposes the underlying cause (e.g. a context error), so
// errors.Is(err, context.Canceled) keeps working through the typed
// wrapper.
func (e *Error) Unwrap() error { return e.cause }

// Is matches any *Error with the same Code, making every derived or
// detail-carrying error equal to its sentinel under errors.Is.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.Code == e.Code
}

// WithDetail returns a copy of the error carrying request-specific
// detail (the sentinel itself is never mutated).
func (e *Error) WithDetail(detail string) *Error {
	cp := *e
	cp.Detail = detail
	return &cp
}

// Sentinel errors, one per code. fmt.Errorf("%w: ...", ErrNotFound)
// wrapping still works and still matches errors.Is(err, ErrNotFound).
var (
	ErrBadRequest    = &Error{Code: CodeBadRequest, HTTPStatus: http.StatusBadRequest, Message: "core: bad request"}
	ErrUnauthorized  = &Error{Code: CodeUnauthorized, HTTPStatus: http.StatusUnauthorized, Message: "core: authentication failed"}
	ErrForbidden     = &Error{Code: CodeForbidden, HTTPStatus: http.StatusForbidden, Message: "core: access denied"}
	ErrNotFound      = &Error{Code: CodeNotFound, HTTPStatus: http.StatusNotFound, Message: "core: servable not found"}
	ErrTaskNotFound  = &Error{Code: CodeTaskNotFound, HTTPStatus: http.StatusNotFound, Message: "core: task not found"}
	ErrConflict      = &Error{Code: CodeConflict, HTTPStatus: http.StatusConflict, Message: "core: conflicting request"}
	ErrNoTaskManager = &Error{Code: CodeNoTaskManager, HTTPStatus: http.StatusServiceUnavailable, Message: "core: no task manager registered"}
	ErrTimeout       = &Error{Code: CodeTimeout, HTTPStatus: http.StatusGatewayTimeout, Message: "core: task timed out"}
	ErrCanceled      = &Error{Code: CodeCanceled, HTTPStatus: StatusClientClosedRequest, Message: "core: request canceled"}
	ErrTaskFailed    = &Error{Code: CodeTaskFailed, HTTPStatus: http.StatusBadGateway, Message: "core: task failed"}
	ErrOverloaded    = &Error{Code: CodeOverloaded, HTTPStatus: http.StatusTooManyRequests, Message: "core: servable overloaded"}
	ErrQuotaExceeded = &Error{Code: CodeQuotaExceeded, HTTPStatus: http.StatusTooManyRequests, Message: "core: tenant quota exceeded"}
	ErrUpstream      = &Error{Code: CodeUpstream, HTTPStatus: http.StatusBadGateway, Message: "core: upstream failure"}
	ErrInternal      = &Error{Code: CodeInternal, HTTPStatus: http.StatusInternalServerError, Message: "core: internal error"}
)

// sentinels enumerates every Err* value; errorStatus and the tests
// derive their tables from it so a new sentinel cannot be forgotten.
var sentinels = []*Error{
	ErrBadRequest, ErrUnauthorized, ErrForbidden, ErrNotFound,
	ErrTaskNotFound, ErrConflict, ErrNoTaskManager, ErrTimeout,
	ErrCanceled, ErrTaskFailed, ErrOverloaded, ErrQuotaExceeded,
	ErrUpstream, ErrInternal,
}

// errorStatus is the code→HTTP-status table driving both API versions'
// error mapping, built from the sentinel list.
var errorStatus = func() map[Code]int {
	m := make(map[Code]int, len(sentinels))
	for _, e := range sentinels {
		m[e.Code] = e.HTTPStatus
	}
	return m
}()

// wrapCtxErr converts a context termination into its typed service
// error, keeping the original as the cause so errors.Is(err,
// context.Canceled) / errors.Is(err, context.DeadlineExceeded) hold.
func wrapCtxErr(err error) error {
	switch {
	case errors.Is(err, context.Canceled):
		return &Error{Code: CodeCanceled, HTTPStatus: StatusClientClosedRequest, Message: ErrCanceled.Message, cause: err}
	case errors.Is(err, context.DeadlineExceeded):
		return &Error{Code: CodeTimeout, HTTPStatus: http.StatusGatewayTimeout, Message: ErrTimeout.Message, cause: err}
	default:
		return err
	}
}

// isCtxErr reports whether err terminates because a context ended
// (directly or through a typed wrapper).
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Classify resolves any error to its structured form: typed errors pass
// through, bare context errors are wrapped, and everything else —
// validation failures, malformed bodies — defaults to bad_request,
// preserving the v1 API's historical fallback status.
func Classify(err error) *Error {
	var e *Error
	if errors.As(err, &e) {
		if e.Detail == "" && err.Error() != e.Error() {
			// Keep the wrapping chain's added context visible.
			e = e.WithDetail(err.Error())
		}
		return e
	}
	if isCtxErr(err) {
		var wrapped *Error
		errors.As(wrapCtxErr(err), &wrapped)
		return wrapped.WithDetail(err.Error())
	}
	return ErrBadRequest.WithDetail(err.Error())
}

// ErrorStatus returns the HTTP status for any error via the code→status
// table.
func ErrorStatus(err error) int {
	if s, ok := errorStatus[Classify(err).Code]; ok {
		return s
	}
	return http.StatusInternalServerError
}
