package core

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
)

// TestSentinelStatusTable pins the HTTP status of every Err* sentinel:
// the table IS the API contract, so any addition or change must be
// deliberate.
func TestSentinelStatusTable(t *testing.T) {
	want := map[*Error]int{
		ErrBadRequest:    http.StatusBadRequest,
		ErrUnauthorized:  http.StatusUnauthorized,
		ErrForbidden:     http.StatusForbidden,
		ErrNotFound:      http.StatusNotFound,
		ErrTaskNotFound:  http.StatusNotFound,
		ErrConflict:      http.StatusConflict,
		ErrNoTaskManager: http.StatusServiceUnavailable,
		ErrTimeout:       http.StatusGatewayTimeout,
		ErrCanceled:      StatusClientClosedRequest,
		ErrTaskFailed:    http.StatusBadGateway,
		ErrOverloaded:    http.StatusTooManyRequests,
		ErrQuotaExceeded: http.StatusTooManyRequests,
		ErrUpstream:      http.StatusBadGateway,
		ErrInternal:      http.StatusInternalServerError,
	}
	if len(want) != len(sentinels) {
		t.Fatalf("test covers %d sentinels, package declares %d — update both", len(want), len(sentinels))
	}
	for sentinel, status := range want {
		if got := ErrorStatus(sentinel); got != status {
			t.Errorf("%s: status %d, want %d", sentinel.Code, got, status)
		}
		// Wrapping with context must not change the mapping.
		wrapped := fmt.Errorf("%w: extra detail", sentinel)
		if got := ErrorStatus(wrapped); got != status {
			t.Errorf("%s wrapped: status %d, want %d", sentinel.Code, got, status)
		}
	}
}

// TestSentinelIdentity verifies errors.Is semantics: a sentinel matches
// itself, wrapped forms, and detail-carrying copies — but never a
// different code.
func TestSentinelIdentity(t *testing.T) {
	for _, sentinel := range sentinels {
		wrapped := fmt.Errorf("%w: with context", sentinel)
		if !errors.Is(wrapped, sentinel) {
			t.Errorf("wrapped %s does not match its sentinel", sentinel.Code)
		}
		if !errors.Is(sentinel.WithDetail("d"), sentinel) {
			t.Errorf("detailed %s does not match its sentinel", sentinel.Code)
		}
		for _, other := range sentinels {
			if other.Code != sentinel.Code && errors.Is(wrapped, other) {
				t.Errorf("%s matches unrelated sentinel %s", sentinel.Code, other.Code)
			}
		}
		var typed *Error
		if !errors.As(wrapped, &typed) || typed.Code != sentinel.Code {
			t.Errorf("errors.As failed to extract %s", sentinel.Code)
		}
	}
}

func TestClassifyContextErrors(t *testing.T) {
	cases := []struct {
		err    error
		code   Code
		status int
	}{
		{context.Canceled, CodeCanceled, StatusClientClosedRequest},
		{context.DeadlineExceeded, CodeTimeout, http.StatusGatewayTimeout},
		{fmt.Errorf("dispatch: %w", context.Canceled), CodeCanceled, StatusClientClosedRequest},
		{errors.New("anything else"), CodeBadRequest, http.StatusBadRequest},
	}
	for _, tc := range cases {
		e := Classify(tc.err)
		if e.Code != tc.code || e.HTTPStatus != tc.status {
			t.Errorf("Classify(%v) = (%s, %d), want (%s, %d)", tc.err, e.Code, e.HTTPStatus, tc.code, tc.status)
		}
	}
}

// TestWrapCtxErrKeepsBothIdentities: the typed wrapper must satisfy
// errors.Is against the raw context error AND the service sentinel —
// the Go API contract for cancellation.
func TestWrapCtxErrKeepsBothIdentities(t *testing.T) {
	err := wrapCtxErr(context.Canceled)
	if !errors.Is(err, context.Canceled) {
		t.Error("wrapped cancel lost context.Canceled identity")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Error("wrapped cancel does not match ErrCanceled")
	}
	err = wrapCtxErr(context.DeadlineExceeded)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("wrapped deadline lost context.DeadlineExceeded identity")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Error("wrapped deadline does not match ErrTimeout")
	}
}

func TestErrorDetailRendering(t *testing.T) {
	e := ErrNotFound.WithDetail("anonymous/missing")
	if got, want := e.Error(), "core: servable not found: anonymous/missing"; got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
	if ErrNotFound.Detail != "" {
		t.Error("WithDetail mutated the sentinel")
	}
}
