package core

// ReservationsEmpty reports whether the two-level (tenant × servable)
// admission reservation table is fully drained — every reserve was
// matched by exactly one unreserve. Test-only visibility for the
// quota storm test.
func (s *Service) ReservationsEmpty() bool { return s.route.reservationsEmpty() }
