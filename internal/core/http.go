package core

import (
	"encoding/json"
	"math"
	"net/http"

	"repro/internal/rpc"
	"repro/internal/schema"
	"repro/internal/search"
	"repro/internal/servable"
)

// jsonMarshal/jsonUnmarshal isolate the codec used on internal paths.
func jsonMarshal(v any) ([]byte, error)   { return json.Marshal(v) }
func jsonUnmarshal(d []byte, v any) error { return json.Unmarshal(d, v) }

// Handler returns the REST API (§IV-E: "DLHub offers a REST API,
// Command Line Interface (CLI), and a Python Software Development Kit
// (SDK) for publishing, managing, and invoking models").
//
// Two route generations share one mux: the versioned /api/v2 surface
// (http_v2.go — enveloped responses, typed error codes, pagination,
// idempotency keys, SSE task streams) and the original /api/* routes,
// kept as thin compatibility shims over the same service methods with
// their historical response shapes. The v1 shims are DEPRECATED in
// favor of /api/v2 and say so on the wire (a Deprecation response
// header per draft-ietf-httpapi-deprecation-header); they keep working
// unchanged. Both generations pass through the middleware chain
// (request IDs, optional access logs, per-route metrics).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	v1 := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Link", "</api/v2>; rel=\"successor-version\"")
			if s.cfg.DisableV1 {
				// Retired surface (-disable-v1): the route still matches
				// so clients get a deliberate 410, not a generic 404.
				rpc.WriteError(w, http.StatusGone, "v1 API disabled on this server; use /api/v2")
				return
			}
			h(w, r)
		})
	}
	v1("POST /api/publish", s.handlePublish)
	v1("GET /api/servables", s.handleList)
	v1("GET /api/servables/{owner}/{name}", s.handleGet)
	v1("GET /api/servables/{owner}/{name}/dockerfile", s.handleDockerfile)
	v1("POST /api/servables/{owner}/{name}/update", s.handleUpdate)
	v1("POST /api/search", s.handleSearch)
	v1("POST /api/run/{owner}/{name}", s.handleRun)
	v1("GET /api/status/{task}", s.handleStatus)
	v1("POST /api/deploy/{owner}/{name}", s.handleDeploy)
	v1("POST /api/scale/{owner}/{name}", s.handleScale)
	v1("GET /api/tms", s.handleTMs)
	v1("GET /api/cache/stats", s.handleCacheStats)
	v1("POST /api/cache/flush", s.handleCacheFlush)
	s.routesV2(mux)
	return s.middleware(mux)
}

// caller resolves the request identity, writing the error response on
// failure. The X-DLHub-Tenant rejection matches callerV2: with auth
// enabled, tenancy comes from token introspection only — the v1 shims
// must not be a side door around it.
func (s *Service) caller(w http.ResponseWriter, r *http.Request) (Caller, bool) {
	if s.cfg.Auth != nil && r.Header.Get(TenantHeader) != "" {
		rpc.WriteError(w, http.StatusUnauthorized,
			"%s is not accepted when authentication is enabled; tenancy follows the token identity", TenantHeader)
		return Caller{}, false
	}
	c, err := s.ResolveCaller(r.Header.Get("Authorization"))
	if err != nil {
		rpc.WriteError(w, http.StatusUnauthorized, "%v", err)
		return Caller{}, false
	}
	stampTenant(r.Context(), c.Tenant)
	return c, true
}

// writeServiceError maps a service error onto the v1 wire format using
// the code→status table from errors.go (errors.Is/As classification —
// no string matching). v2 responses envelope the same classification in
// writeV2Error.
func writeServiceError(w http.ResponseWriter, err error) {
	rpc.WriteError(w, ErrorStatus(err), "%v", err)
}

// PublishRequest is the POST /api/publish body. Components may be
// supplied inline or as globus:// references the service downloads
// (§IV-A: "model components can be uploaded to an AWS S3 bucket or a
// Globus endpoint").
type PublishRequest struct {
	Document      json.RawMessage   `json:"document"`
	Components    map[string][]byte `json:"components,omitempty"`
	ComponentRefs map[string]string `json:"component_refs,omitempty"`
}

func (s *Service) handlePublish(w http.ResponseWriter, r *http.Request) {
	c, ok := s.caller(w, r)
	if !ok {
		return
	}
	var req PublishRequest
	if err := rpc.ReadJSON(r, &req); err != nil {
		rpc.WriteError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	pkg := &servable.Package{Components: req.Components}
	pkg.Doc = new(docAlias)
	if err := json.Unmarshal(req.Document, pkg.Doc); err != nil {
		rpc.WriteError(w, http.StatusBadRequest, "bad document: %v", err)
		return
	}
	if len(req.ComponentRefs) > 0 {
		fetched, err := s.ResolveComponents(r.Header.Get("Authorization"), req.ComponentRefs)
		if err != nil {
			rpc.WriteError(w, http.StatusBadGateway, "%v", err)
			return
		}
		if pkg.Components == nil {
			pkg.Components = map[string][]byte{}
		}
		for name, data := range fetched {
			pkg.Components[name] = data
		}
	}
	id, err := s.Publish(r.Context(), c, pkg)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	rpc.WriteJSON(w, http.StatusOK, map[string]string{"id": id})
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	c, ok := s.caller(w, r)
	if !ok {
		return
	}
	res, err := s.Search(r.Context(), c, search.Query{})
	if err != nil {
		writeServiceError(w, err)
		return
	}
	ids := make([]string, 0, len(res.Hits))
	for _, h := range res.Hits {
		ids = append(ids, h.Doc.ID)
	}
	rpc.WriteJSON(w, http.StatusOK, map[string]any{"servables": ids})
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	c, ok := s.caller(w, r)
	if !ok {
		return
	}
	id := r.PathValue("owner") + "/" + r.PathValue("name")
	doc, err := s.Get(c, id)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	rpc.WriteJSON(w, http.StatusOK, doc)
}

func (s *Service) handleDockerfile(w http.ResponseWriter, r *http.Request) {
	c, ok := s.caller(w, r)
	if !ok {
		return
	}
	id := r.PathValue("owner") + "/" + r.PathValue("name")
	df, err := s.Dockerfile(c, id)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	rpc.WriteJSON(w, http.StatusOK, map[string]string{"dockerfile": df})
}

// UpdateRequest is the POST .../update body.
type UpdateRequest struct {
	Description *string  `json:"description,omitempty"`
	VisibleTo   []string `json:"visible_to,omitempty"`
	Citation    *string  `json:"citation,omitempty"`
	Identifier  *string  `json:"identifier,omitempty"`
}

func (s *Service) handleUpdate(w http.ResponseWriter, r *http.Request) {
	c, ok := s.caller(w, r)
	if !ok {
		return
	}
	var req UpdateRequest
	if err := rpc.ReadJSON(r, &req); err != nil {
		rpc.WriteError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	id := r.PathValue("owner") + "/" + r.PathValue("name")
	err := s.UpdateMetadata(c, id, func(p *servablePublication) {
		if req.Description != nil {
			p.Description = *req.Description
		}
		if req.VisibleTo != nil {
			p.VisibleTo = req.VisibleTo
		}
		if req.Citation != nil {
			p.Citation = *req.Citation
		}
		if req.Identifier != nil {
			p.Identifier = *req.Identifier
		}
	})
	if err != nil {
		writeServiceError(w, err)
		return
	}
	rpc.WriteJSON(w, http.StatusOK, map[string]string{"status": "updated"})
}

// SearchRequest is the POST /api/search body: a simplified query
// language over the index (free text, fielded term/prefix, year range,
// facets).
type SearchRequest struct {
	Q       string            `json:"q,omitempty"`
	Terms   map[string]string `json:"terms,omitempty"`
	Prefix  map[string]string `json:"prefix,omitempty"`
	YearMin *float64          `json:"year_min,omitempty"`
	YearMax *float64          `json:"year_max,omitempty"`
	Facets  []string          `json:"facets,omitempty"`
	Limit   int               `json:"limit,omitempty"`
}

// SearchResponse is the POST /api/search response.
type SearchResponse struct {
	Total  int                       `json:"total"`
	IDs    []string                  `json:"ids"`
	Docs   []map[string]any          `json:"docs"`
	Facets map[string]map[string]int `json:"facets,omitempty"`
}

func (s *Service) handleSearch(w http.ResponseWriter, r *http.Request) {
	c, ok := s.caller(w, r)
	if !ok {
		return
	}
	var req SearchRequest
	if err := rpc.ReadJSON(r, &req); err != nil {
		rpc.WriteError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	q := search.Query{FacetOn: req.Facets, Limit: req.Limit}
	if req.Q != "" {
		q.Must = append(q.Must, search.Clause{FreeText: req.Q})
	}
	for field, term := range req.Terms {
		q.Must = append(q.Must, search.Clause{Field: field, Term: term})
	}
	for field, pre := range req.Prefix {
		q.Must = append(q.Must, search.Clause{Field: field, Prefix: pre})
	}
	if req.YearMin != nil || req.YearMax != nil {
		rg := &search.Range{Min: math.NaN(), Max: math.NaN()}
		if req.YearMin != nil {
			rg.Min = *req.YearMin
		}
		if req.YearMax != nil {
			rg.Max = *req.YearMax
		}
		q.Must = append(q.Must, search.Clause{Field: "year", Range: rg})
	}
	res, err := s.Search(r.Context(), c, q)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	resp := SearchResponse{Total: res.Total, Facets: res.Facets}
	for _, h := range res.Hits {
		resp.IDs = append(resp.IDs, h.Doc.ID)
		resp.Docs = append(resp.Docs, h.Doc.Fields)
	}
	rpc.WriteJSON(w, http.StatusOK, resp)
}

// RunRequest is the POST /api/run body.
type RunRequest struct {
	Input    any    `json:"input,omitempty"`
	Inputs   []any  `json:"inputs,omitempty"` // batch mode when non-empty
	Async    bool   `json:"async,omitempty"`
	NoMemo   bool   `json:"no_memo,omitempty"`
	NoCache  bool   `json:"no_cache,omitempty"` // bypass the service-layer cache only
	Coalesce bool   `json:"coalesce,omitempty"`
	Executor string `json:"executor,omitempty"`
}

// CacheHeader is set on synchronous /api/run responses: "hit" when the
// service-layer cache (or singleflight) answered — for pipelines, when
// every step did — "miss" when the cache was consulted but a task
// dispatched, "bypass" when the cache never applied (disabled, or
// no_cache/no_memo).
const CacheHeader = "X-DLHub-Cache"

// setCacheHeader annotates a synchronous run response for servableID.
func (s *Service) setCacheHeader(w http.ResponseWriter, servableID string, opts RunOptions, res RunResult) {
	switch {
	case !s.cacheUsable(opts) || !s.cacheableID(servableID) || res.cacheSkipped:
		w.Header().Set(CacheHeader, "bypass")
	case res.CacheHit:
		w.Header().Set(CacheHeader, "hit")
	default:
		w.Header().Set(CacheHeader, "miss")
	}
}

func (s *Service) handleRun(w http.ResponseWriter, r *http.Request) {
	c, ok := s.caller(w, r)
	if !ok {
		return
	}
	var req RunRequest
	if err := rpc.ReadJSON(r, &req); err != nil {
		rpc.WriteError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	id := r.PathValue("owner") + "/" + r.PathValue("name")
	opts := RunOptions{Executor: req.Executor, NoMemo: req.NoMemo, NoCache: req.NoCache}

	switch {
	case req.Async:
		taskID, err := s.RunAsync(r.Context(), c, id, req.Input, opts)
		if err != nil {
			writeServiceError(w, err)
			return
		}
		rpc.WriteJSON(w, http.StatusAccepted, map[string]string{"task_id": taskID})
	case len(req.Inputs) > 0:
		res, err := s.RunBatch(r.Context(), c, id, req.Inputs, opts)
		if err != nil {
			writeServiceError(w, err)
			return
		}
		s.setCacheHeader(w, id, opts, res)
		rpc.WriteJSON(w, http.StatusOK, res)
	case req.Coalesce:
		res, err := s.RunCoalesced(r.Context(), c, id, req.Input, opts)
		if err != nil {
			writeServiceError(w, err)
			return
		}
		s.setCacheHeader(w, id, opts, res)
		rpc.WriteJSON(w, http.StatusOK, res)
	default:
		res, err := s.Run(r.Context(), c, id, req.Input, opts)
		if err != nil {
			writeServiceError(w, err)
			return
		}
		s.setCacheHeader(w, id, opts, res)
		rpc.WriteJSON(w, http.StatusOK, res)
	}
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.caller(w, r); !ok {
		return
	}
	at, err := s.TaskStatus(r.PathValue("task"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	rpc.WriteJSON(w, http.StatusOK, at)
}

// DeployRequest is the POST /api/deploy body.
type DeployRequest struct {
	Replicas int    `json:"replicas"`
	Executor string `json:"executor,omitempty"`
	// TM pins the deploy to a named registered Task Manager (DeployTo)
	// — how operators place pipeline steps on disjoint sites. Empty
	// routes via pickTM as before. Scale ignores it.
	TM string `json:"tm,omitempty"`
}

func (s *Service) handleDeploy(w http.ResponseWriter, r *http.Request) {
	c, ok := s.caller(w, r)
	if !ok {
		return
	}
	var req DeployRequest
	if err := rpc.ReadJSON(r, &req); err != nil {
		rpc.WriteError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	id := r.PathValue("owner") + "/" + r.PathValue("name")
	if err := s.DeployTo(r.Context(), c, id, req.Replicas, req.Executor, req.TM); err != nil {
		writeServiceError(w, err)
		return
	}
	rpc.WriteJSON(w, http.StatusOK, map[string]string{"status": "deployed"})
}

func (s *Service) handleScale(w http.ResponseWriter, r *http.Request) {
	c, ok := s.caller(w, r)
	if !ok {
		return
	}
	var req DeployRequest
	if err := rpc.ReadJSON(r, &req); err != nil {
		rpc.WriteError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	id := r.PathValue("owner") + "/" + r.PathValue("name")
	if err := s.Scale(r.Context(), c, id, req.Replicas, req.Executor); err != nil {
		writeServiceError(w, err)
		return
	}
	rpc.WriteJSON(w, http.StatusOK, map[string]string{"status": "scaled"})
}

func (s *Service) handleTMs(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.caller(w, r); !ok {
		return
	}
	rpc.WriteJSON(w, http.StatusOK, map[string]any{
		"task_managers": s.TaskManagers(),
		"load":          s.TMLoad(),
	})
}

func (s *Service) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.caller(w, r); !ok {
		return
	}
	rpc.WriteJSON(w, http.StatusOK, map[string]any{
		"enabled": s.CacheEnabled(),
		"stats":   s.CacheStats(),
	})
}

func (s *Service) handleCacheFlush(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.caller(w, r); !ok {
		return
	}
	s.FlushCache()
	rpc.WriteJSON(w, http.StatusOK, map[string]string{"status": "flushed"})
}

// type aliases for readability.
type (
	docAlias            = schema.Document
	servablePublication = schema.Publication
)
