package core

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/auth"
	"repro/internal/rpc"
	"repro/internal/schema"
	"repro/internal/search"
	"repro/internal/servable"
)

// The versioned /api/v2 surface. Every response is one envelope —
//
//	{"data": ..., "request_id": "..."}            on success
//	{"error": {"code", "message", "detail"},
//	 "request_id": "..."}                         on failure
//
// — with machine-readable error codes from errors.go, cursor pagination
// on list/search, idempotency keys on run and publish, and an SSE
// stream per task replacing status polling. v1 routes (http.go) remain
// as compatibility shims over the same service methods.

// Envelope is the uniform v2 response wrapper.
type Envelope struct {
	Data      any            `json:"data,omitempty"`
	Error     *EnvelopeError `json:"error,omitempty"`
	RequestID string         `json:"request_id"`
}

// EnvelopeError is the wire form of a classified service error.
type EnvelopeError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Detail  string `json:"detail,omitempty"`
}

func (s *Service) routesV2(mux *http.ServeMux) {
	mux.HandleFunc("GET /api/v2/healthz", s.handleV2Healthz)
	mux.HandleFunc("GET /api/v2/readyz", s.handleV2Readyz)
	mux.HandleFunc("POST /api/v2/servables", s.handleV2Publish)
	mux.HandleFunc("GET /api/v2/servables", s.handleV2List)
	mux.HandleFunc("GET /api/v2/servables/{owner}/{name}", s.handleV2Get)
	mux.HandleFunc("GET /api/v2/servables/{owner}/{name}/versions", s.handleV2Versions)
	mux.HandleFunc("GET /api/v2/servables/{owner}/{name}/dockerfile", s.handleV2Dockerfile)
	mux.HandleFunc("PATCH /api/v2/servables/{owner}/{name}", s.handleV2Update)
	mux.HandleFunc("DELETE /api/v2/servables/{owner}/{name}", s.handleV2Unpublish)
	mux.HandleFunc("POST /api/v2/servables/{owner}/{name}/run", s.handleV2Run)
	mux.HandleFunc("POST /api/v2/servables/{owner}/{name}/deploy", s.handleV2Deploy)
	mux.HandleFunc("DELETE /api/v2/servables/{owner}/{name}/placements/{tm}", s.handleV2Undeploy)
	mux.HandleFunc("POST /api/v2/servables/{owner}/{name}/scale", s.handleV2Scale)
	mux.HandleFunc("GET /api/v2/servables/{owner}/{name}/autoscale", s.handleV2AutoscaleGet)
	mux.HandleFunc("PUT /api/v2/servables/{owner}/{name}/autoscale", s.handleV2AutoscalePut)
	mux.HandleFunc("POST /api/v2/search", s.handleV2Search)
	mux.HandleFunc("GET /api/v2/tasks/{task}", s.handleV2Task)
	mux.HandleFunc("GET /api/v2/tasks/{task}/events", s.handleV2TaskEvents)
	mux.HandleFunc("GET /api/v2/tms", s.handleV2TMs)
	mux.HandleFunc("POST /api/v2/tms/{tm}/drain", s.handleV2TMDrain)
	mux.HandleFunc("POST /api/v2/tms/{tm}/rejoin", s.handleV2TMRejoin)
	mux.HandleFunc("DELETE /api/v2/tms/{tm}", s.handleV2TMDeregister)
	mux.HandleFunc("GET /api/v2/cache/stats", s.handleV2CacheStats)
	mux.HandleFunc("POST /api/v2/cache/flush", s.handleV2CacheFlush)
	mux.HandleFunc("GET /api/v2/stats", s.handleV2Stats)
	mux.HandleFunc("GET /api/v2/tenants", s.handleV2Tenants)
	mux.HandleFunc("PUT /api/v2/tenants/{tenant}/quota", s.handleV2TenantQuota)
	s.routesV2Auth(mux)
}

// TenantHeader lets callers tag requests with a tenant when the server
// runs without an auth service (development, benchmarks). With auth
// enabled, tenancy follows the token's identity and a request carrying
// this header is rejected 401 outright — accepting (or silently
// ignoring) a caller-asserted tenant would make quota accounting
// spoofable, the hole this release closes.
const TenantHeader = "X-DLHub-Tenant"

// writeV2 writes a success envelope.
func writeV2(w http.ResponseWriter, r *http.Request, status int, data any) {
	rpc.WriteJSON(w, status, Envelope{Data: data, RequestID: RequestIDFromContext(r.Context())})
}

// writeV2Error classifies err and writes the error envelope. A client
// that hung up (canceled ctx) gets the 499 status for the logs even
// though no one reads the body.
func writeV2Error(w http.ResponseWriter, r *http.Request, err error) {
	e := Classify(err)
	rpc.WriteJSON(w, e.HTTPStatus, Envelope{
		Error:     &EnvelopeError{Code: string(e.Code), Message: e.Message, Detail: e.Detail},
		RequestID: RequestIDFromContext(r.Context()),
	})
}

// callerV2 resolves the request identity, writing the enveloped 401 on
// failure. Without an auth service, the X-DLHub-Tenant header may tag
// the caller's tenant directly; with auth, tenancy is derived
// exclusively from the token's identity and a request that carries the
// header at all is rejected — see TenantHeader.
func (s *Service) callerV2(w http.ResponseWriter, r *http.Request) (Caller, bool) {
	if s.cfg.Auth != nil {
		if r.Header.Get(TenantHeader) != "" {
			writeV2Error(w, r, ErrUnauthorized.WithDetail(
				TenantHeader+" is not accepted when authentication is enabled; tenancy follows the token identity"))
			return Caller{}, false
		}
	}
	c, err := s.ResolveCaller(r.Header.Get("Authorization"))
	if err != nil {
		writeV2Error(w, r, ErrUnauthorized.WithDetail(err.Error()))
		return Caller{}, false
	}
	if s.cfg.Auth == nil {
		if h := r.Header.Get(TenantHeader); h != "" {
			c.Tenant = h
		}
	}
	stampTenant(r.Context(), c.Tenant)
	return c, true
}

// readV2 decodes the request body, classifying failures as bad_request.
func readV2(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := rpc.ReadJSON(r, v); err != nil {
		writeV2Error(w, r, ErrBadRequest.WithDetail("bad body: "+err.Error()))
		return false
	}
	return true
}

// idempotent executes fn under the request's Idempotency-Key (if any):
// the first execution's outcome is stored and replayed to duplicates,
// and a duplicate arriving mid-execution waits for the original rather
// than re-executing. Without a key, fn runs unconditionally.
//
// Only definitive outcomes are replayable: successes and 4xx failures.
// Transient failures (any 5xx, and 499/canceled) release their waiters
// with the error but are then forgotten, so a later retry with the same
// key — the retry the key exists to make safe — executes fresh instead
// of replaying a stale outage. An execution that never finishes (panic
// unwinding through us) is finished as internal and forgotten too, so
// the key can never wedge.
func (s *Service) idempotent(w http.ResponseWriter, r *http.Request, c Caller, fn func() (int, any, error)) {
	key := r.Header.Get(IdempotencyKeyHeader)
	if key == "" {
		status, data, err := fn()
		if err != nil {
			writeV2Error(w, r, err)
			return
		}
		writeV2(w, r, status, data)
		return
	}
	scoped := c.IdentityID + "|" + r.Method + " " + r.URL.Path + "|" + key
	var e *idemEntry
	for {
		var isNew bool
		e, isNew = s.idem.begin(scoped)
		if isNew {
			break
		}
		select {
		case <-e.done:
			if e.err != nil && !replayable(e.err) {
				// The first execution died transiently (its client
				// canceled, an outage...). This duplicate is exactly
				// the retry the key exists for: drop the dead entry
				// and loop to execute fresh instead of replaying it.
				s.idem.forget(scoped, e)
				continue
			}
			w.Header().Set(IdempotencyReplayedHeader, "true")
			if e.err != nil {
				writeV2Error(w, r, e.err)
				return
			}
			rpc.WriteJSON(w, e.status, Envelope{Data: json.RawMessage(e.body), RequestID: RequestIDFromContext(r.Context())})
		case <-r.Context().Done():
			writeV2Error(w, r, wrapCtxErr(r.Context().Err()))
		}
		return
	}
	finished := false
	defer func() {
		if !finished {
			// fn panicked (or otherwise unwound): release any waiting
			// duplicates and drop the key so it cannot wedge.
			e.finish(0, nil, ErrInternal.WithDetail("execution aborted"))
			s.idem.forget(scoped, e)
		}
	}()
	settle := func(status int, body []byte, serr *Error) {
		e.finish(status, body, serr)
		finished = true
		if serr != nil && !replayable(serr) {
			s.idem.forget(scoped, e)
		}
	}
	status, data, err := fn()
	if err != nil {
		serr := Classify(err)
		settle(0, nil, serr)
		writeV2Error(w, r, err)
		return
	}
	body, merr := jsonMarshal(data)
	if merr != nil {
		settle(0, nil, Classify(merr))
		writeV2Error(w, r, merr)
		return
	}
	settle(status, body, nil)
	rpc.WriteJSON(w, status, Envelope{Data: json.RawMessage(body), RequestID: RequestIDFromContext(r.Context())})
}

// replayable reports whether a failure is definitive enough to replay
// to idempotency-key duplicates: client errors (4xx) are; server-side
// or transient conditions (5xx, client-closed 499) are not.
func replayable(e *Error) bool {
	return e.HTTPStatus >= 400 && e.HTTPStatus < 500 && e.HTTPStatus != StatusClientClosedRequest
}

// --- health -----------------------------------------------------------------

func (s *Service) handleV2Healthz(w http.ResponseWriter, r *http.Request) {
	writeV2(w, r, http.StatusOK, map[string]string{"status": "ok"})
}

// handleV2Readyz reports readiness: at least one live Task Manager must
// be registered for the service to accept serving traffic.
func (s *Service) handleV2Readyz(w http.ResponseWriter, r *http.Request) {
	live := s.LiveTaskManagers()
	if len(live) == 0 {
		writeV2Error(w, r, ErrNoTaskManager.WithDetail("not ready: 0 live task managers"))
		return
	}
	writeV2(w, r, http.StatusOK, map[string]any{"status": "ready", "task_managers": len(live)})
}

// --- repository -------------------------------------------------------------

func (s *Service) handleV2Publish(w http.ResponseWriter, r *http.Request) {
	c, ok := s.callerV2(w, r)
	if !ok {
		return
	}
	var req PublishRequest
	if !readV2(w, r, &req) {
		return
	}
	s.idempotent(w, r, c, func() (int, any, error) {
		pkg := &servable.Package{Components: req.Components}
		pkg.Doc = new(schema.Document)
		if err := json.Unmarshal(req.Document, pkg.Doc); err != nil {
			return 0, nil, ErrBadRequest.WithDetail("bad document: " + err.Error())
		}
		if len(req.ComponentRefs) > 0 {
			fetched, err := s.ResolveComponents(r.Header.Get("Authorization"), req.ComponentRefs)
			if err != nil {
				return 0, nil, fmt.Errorf("%w: %v", ErrUpstream, err)
			}
			if pkg.Components == nil {
				pkg.Components = map[string][]byte{}
			}
			for name, data := range fetched {
				pkg.Components[name] = data
			}
		}
		id, err := s.Publish(r.Context(), c, pkg)
		if err != nil {
			return 0, nil, err
		}
		return http.StatusCreated, map[string]string{"id": id}, nil
	})
}

// Page is the v2 cursor-paginated collection wrapper.
type Page[T any] struct {
	Items []T `json:"items"`
	// Total counts the full result set, not this page.
	Total int `json:"total"`
	// NextCursor resumes after this page; absent on the last page.
	NextCursor string `json:"next_cursor,omitempty"`
}

// encodeCursor/decodeCursor implement opaque offset cursors. The format
// is versioned ("v2:<offset>") so it can change shape without breaking
// stored client cursors silently.
func encodeCursor(offset int) string {
	return base64.RawURLEncoding.EncodeToString([]byte("v2:" + strconv.Itoa(offset)))
}

func decodeCursor(cursor string) (int, error) {
	if cursor == "" {
		return 0, nil
	}
	raw, err := base64.RawURLEncoding.DecodeString(cursor)
	if err != nil {
		return 0, ErrBadRequest.WithDetail("bad cursor")
	}
	var offset int
	if _, err := fmt.Sscanf(string(raw), "v2:%d", &offset); err != nil || offset < 0 {
		return 0, ErrBadRequest.WithDetail("bad cursor")
	}
	return offset, nil
}

// pageParams reads limit/cursor query parameters (POST bodies pass
// their own). limit defaults to defLimit, capped at 1000.
func pageParams(r *http.Request, defLimit int) (limit, offset int, err error) {
	limit = defLimit
	if v := r.URL.Query().Get("limit"); v != "" {
		limit, err = strconv.Atoi(v)
		if err != nil || limit <= 0 {
			return 0, 0, ErrBadRequest.WithDetail("bad limit")
		}
	}
	if limit > 1000 {
		limit = 1000
	}
	offset, err = decodeCursor(r.URL.Query().Get("cursor"))
	return limit, offset, err
}

func (s *Service) handleV2List(w http.ResponseWriter, r *http.Request) {
	c, ok := s.callerV2(w, r)
	if !ok {
		return
	}
	limit, offset, err := pageParams(r, 100)
	if err != nil {
		writeV2Error(w, r, err)
		return
	}
	res, err := s.Search(r.Context(), c, search.Query{Limit: limit, Offset: offset})
	if err != nil {
		writeV2Error(w, r, err)
		return
	}
	page := Page[string]{Items: make([]string, 0, len(res.Hits)), Total: res.Total}
	for _, h := range res.Hits {
		page.Items = append(page.Items, h.Doc.ID)
	}
	if offset+len(page.Items) < res.Total {
		page.NextCursor = encodeCursor(offset + len(page.Items))
	}
	writeV2(w, r, http.StatusOK, page)
}

// ServableView is the GET /api/v2/servables/{id} payload: the document
// plus its current placements, so operators can observe where a
// servable runs (and verify drains/undeploys moved it) without a
// separate endpoint.
type ServableView struct {
	*schema.Document
	Placements []string `json:"placements"`
}

func (s *Service) handleV2Get(w http.ResponseWriter, r *http.Request) {
	c, ok := s.callerV2(w, r)
	if !ok {
		return
	}
	id := r.PathValue("owner") + "/" + r.PathValue("name")
	doc, err := s.Get(c, id)
	if err != nil {
		writeV2Error(w, r, err)
		return
	}
	placed, err := s.ServablePlacements(c, id)
	if err != nil {
		writeV2Error(w, r, err)
		return
	}
	writeV2(w, r, http.StatusOK, ServableView{Document: doc, Placements: placed})
}

func (s *Service) handleV2Versions(w http.ResponseWriter, r *http.Request) {
	c, ok := s.callerV2(w, r)
	if !ok {
		return
	}
	docs, err := s.Versions(c, r.PathValue("owner")+"/"+r.PathValue("name"))
	if err != nil {
		writeV2Error(w, r, err)
		return
	}
	writeV2(w, r, http.StatusOK, Page[*schema.Document]{Items: docs, Total: len(docs)})
}

func (s *Service) handleV2Dockerfile(w http.ResponseWriter, r *http.Request) {
	c, ok := s.callerV2(w, r)
	if !ok {
		return
	}
	df, err := s.Dockerfile(c, r.PathValue("owner")+"/"+r.PathValue("name"))
	if err != nil {
		writeV2Error(w, r, err)
		return
	}
	writeV2(w, r, http.StatusOK, map[string]string{"dockerfile": df})
}

func (s *Service) handleV2Update(w http.ResponseWriter, r *http.Request) {
	c, ok := s.callerV2(w, r)
	if !ok {
		return
	}
	var req UpdateRequest
	if !readV2(w, r, &req) {
		return
	}
	id := r.PathValue("owner") + "/" + r.PathValue("name")
	err := s.UpdateMetadata(c, id, func(p *schema.Publication) {
		if req.Description != nil {
			p.Description = *req.Description
		}
		if req.VisibleTo != nil {
			p.VisibleTo = req.VisibleTo
		}
		if req.Citation != nil {
			p.Citation = *req.Citation
		}
		if req.Identifier != nil {
			p.Identifier = *req.Identifier
		}
	})
	if err != nil {
		writeV2Error(w, r, err)
		return
	}
	doc, err := s.Get(c, id)
	if err != nil {
		writeV2Error(w, r, err)
		return
	}
	writeV2(w, r, http.StatusOK, doc)
}

// handleV2Unpublish removes a servable (all versions) from the
// repository. Owner-only; in-flight runs of the servable fail at their
// next resolution.
func (s *Service) handleV2Unpublish(w http.ResponseWriter, r *http.Request) {
	c, ok := s.callerV2(w, r)
	if !ok {
		return
	}
	id := r.PathValue("owner") + "/" + r.PathValue("name")
	if err := s.Unpublish(c, id); err != nil {
		writeV2Error(w, r, err)
		return
	}
	writeV2(w, r, http.StatusOK, map[string]string{"status": "unpublished"})
}

// SearchRequestV2 is the POST /api/v2/search body: the v1 query
// language plus a resumption cursor.
type SearchRequestV2 struct {
	SearchRequest
	Cursor string `json:"cursor,omitempty"`
}

// SearchHitV2 pairs a servable ID with its flattened document.
type SearchHitV2 struct {
	ID  string         `json:"id"`
	Doc map[string]any `json:"doc"`
}

// SearchPageV2 is the POST /api/v2/search response data.
type SearchPageV2 struct {
	Page[SearchHitV2]
	Facets map[string]map[string]int `json:"facets,omitempty"`
}

func (s *Service) handleV2Search(w http.ResponseWriter, r *http.Request) {
	c, ok := s.callerV2(w, r)
	if !ok {
		return
	}
	var req SearchRequestV2
	if !readV2(w, r, &req) {
		return
	}
	offset, err := decodeCursor(req.Cursor)
	if err != nil {
		writeV2Error(w, r, err)
		return
	}
	limit := req.Limit
	switch {
	case limit <= 0:
		limit = 100
	case limit > 1000:
		limit = 1000 // same cap as pageParams on the GET routes
	}
	q := search.Query{FacetOn: req.Facets, Limit: limit, Offset: offset}
	if req.Q != "" {
		q.Must = append(q.Must, search.Clause{FreeText: req.Q})
	}
	for field, term := range req.Terms {
		q.Must = append(q.Must, search.Clause{Field: field, Term: term})
	}
	for field, pre := range req.Prefix {
		q.Must = append(q.Must, search.Clause{Field: field, Prefix: pre})
	}
	if req.YearMin != nil || req.YearMax != nil {
		rg := &search.Range{Min: math.NaN(), Max: math.NaN()}
		if req.YearMin != nil {
			rg.Min = *req.YearMin
		}
		if req.YearMax != nil {
			rg.Max = *req.YearMax
		}
		q.Must = append(q.Must, search.Clause{Field: "year", Range: rg})
	}
	res, err := s.Search(r.Context(), c, q)
	if err != nil {
		writeV2Error(w, r, err)
		return
	}
	page := SearchPageV2{Facets: res.Facets}
	page.Total = res.Total
	page.Items = make([]SearchHitV2, 0, len(res.Hits))
	for _, h := range res.Hits {
		page.Items = append(page.Items, SearchHitV2{ID: h.Doc.ID, Doc: h.Doc.Fields})
	}
	if offset+len(page.Items) < res.Total {
		page.NextCursor = encodeCursor(offset + len(page.Items))
	}
	writeV2(w, r, http.StatusOK, page)
}

// --- serving ----------------------------------------------------------------

func (s *Service) handleV2Run(w http.ResponseWriter, r *http.Request) {
	c, ok := s.callerV2(w, r)
	if !ok {
		return
	}
	var req RunRequest
	if !readV2(w, r, &req) {
		return
	}
	id := r.PathValue("owner") + "/" + r.PathValue("name")
	opts := RunOptions{Executor: req.Executor, NoMemo: req.NoMemo, NoCache: req.NoCache}
	s.idempotent(w, r, c, func() (int, any, error) {
		switch {
		case req.Async:
			taskID, err := s.RunAsync(r.Context(), c, id, req.Input, opts)
			if err != nil {
				return 0, nil, err
			}
			return http.StatusAccepted, map[string]string{"task_id": taskID}, nil
		case len(req.Inputs) > 0:
			res, err := s.RunBatch(r.Context(), c, id, req.Inputs, opts)
			if err != nil {
				return 0, nil, err
			}
			s.setCacheHeader(w, id, opts, res)
			return http.StatusOK, res, nil
		case req.Coalesce:
			res, err := s.RunCoalesced(r.Context(), c, id, req.Input, opts)
			if err != nil {
				return 0, nil, err
			}
			s.setCacheHeader(w, id, opts, res)
			return http.StatusOK, res, nil
		default:
			res, err := s.Run(r.Context(), c, id, req.Input, opts)
			if err != nil {
				return 0, nil, err
			}
			s.setCacheHeader(w, id, opts, res)
			return http.StatusOK, res, nil
		}
	})
}

func (s *Service) handleV2Deploy(w http.ResponseWriter, r *http.Request) {
	c, ok := s.callerV2(w, r)
	if !ok {
		return
	}
	var req DeployRequest
	if !readV2(w, r, &req) {
		return
	}
	id := r.PathValue("owner") + "/" + r.PathValue("name")
	if err := s.DeployTo(r.Context(), c, id, req.Replicas, req.Executor, req.TM); err != nil {
		writeV2Error(w, r, err)
		return
	}
	writeV2(w, r, http.StatusOK, map[string]string{"status": "deployed"})
}

func (s *Service) handleV2Scale(w http.ResponseWriter, r *http.Request) {
	c, ok := s.callerV2(w, r)
	if !ok {
		return
	}
	var req DeployRequest
	if !readV2(w, r, &req) {
		return
	}
	id := r.PathValue("owner") + "/" + r.PathValue("name")
	if err := s.Scale(r.Context(), c, id, req.Replicas, req.Executor); err != nil {
		writeV2Error(w, r, err)
		return
	}
	writeV2(w, r, http.StatusOK, map[string]string{"status": "scaled"})
}

// handleV2Undeploy removes one placement of a servable from a named
// Task Manager (owner-only) — the operator's tool for shrinking where a
// servable runs without unpublishing it.
func (s *Service) handleV2Undeploy(w http.ResponseWriter, r *http.Request) {
	c, ok := s.callerV2(w, r)
	if !ok {
		return
	}
	id := r.PathValue("owner") + "/" + r.PathValue("name")
	tmID := r.PathValue("tm")
	if err := s.Undeploy(r.Context(), c, id, tmID); err != nil {
		writeV2Error(w, r, err)
		return
	}
	placed, err := s.ServablePlacements(c, id)
	if err != nil {
		writeV2Error(w, r, err)
		return
	}
	writeV2(w, r, http.StatusOK, map[string]any{"status": "undeployed", "tm": tmID, "placements": placed})
}

// handleV2AutoscaleGet reports a servable's autoscaler policy + state.
func (s *Service) handleV2AutoscaleGet(w http.ResponseWriter, r *http.Request) {
	c, ok := s.callerV2(w, r)
	if !ok {
		return
	}
	st, err := s.AutoscaleStatus(c, r.PathValue("owner")+"/"+r.PathValue("name"))
	if err != nil {
		writeV2Error(w, r, err)
		return
	}
	writeV2(w, r, http.StatusOK, st)
}

// handleV2AutoscalePut installs (or disables, with "enabled": false) a
// servable's autoscale policy and returns the resulting status.
func (s *Service) handleV2AutoscalePut(w http.ResponseWriter, r *http.Request) {
	c, ok := s.callerV2(w, r)
	if !ok {
		return
	}
	var policy AutoscalePolicy
	if !readV2(w, r, &policy) {
		return
	}
	id := r.PathValue("owner") + "/" + r.PathValue("name")
	if err := s.SetAutoscalePolicy(c, id, policy); err != nil {
		writeV2Error(w, r, err)
		return
	}
	st, err := s.AutoscaleStatus(c, id)
	if err != nil {
		writeV2Error(w, r, err)
		return
	}
	writeV2(w, r, http.StatusOK, st)
}

// --- tasks ------------------------------------------------------------------

func (s *Service) handleV2Task(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.callerV2(w, r); !ok {
		return
	}
	at, err := s.TaskStatus(r.PathValue("task"))
	if err != nil {
		writeV2Error(w, r, err)
		return
	}
	writeV2(w, r, http.StatusOK, at)
}

// TaskEventHeartbeat is the SSE keep-alive interval: comments flow this
// often so proxies do not reap an idle stream.
const TaskEventHeartbeat = 15 * time.Second

// handleV2TaskEvents streams task lifecycle events as Server-Sent
// Events, replacing the v1 status poll loop. Events:
//
//	event: status  — current state, sent immediately on subscribe
//	event: done    — terminal state (completed|failed) with the result;
//	                 the stream closes after it
//
// plus ": ping" comment heartbeats. A client that disconnects stops
// costing anything; the task itself is detached and unaffected.
func (s *Service) handleV2TaskEvents(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.callerV2(w, r); !ok {
		return
	}
	taskID := r.PathValue("task")
	done, err := s.TaskWatch(taskID)
	if err != nil {
		writeV2Error(w, r, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeV2Error(w, r, ErrInternal.WithDetail("response writer does not support streaming"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	emit := func(event string) bool {
		at, err := s.TaskStatus(taskID)
		if err != nil {
			return false
		}
		body, err := jsonMarshal(at)
		if err != nil {
			return false
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, body)
		flusher.Flush()
		return true
	}
	if !emit("status") {
		return
	}
	ticker := time.NewTicker(TaskEventHeartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			emit("done")
			return
		case <-ticker.C:
			fmt.Fprint(w, ": ping\n\n")
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// --- operations -------------------------------------------------------------

func (s *Service) handleV2TMs(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.callerV2(w, r); !ok {
		return
	}
	writeV2(w, r, http.StatusOK, map[string]any{
		"task_managers": s.TaskManagers(),
		"live":          s.LiveTaskManagers(),
		"draining":      s.DrainingTMs(),
		"load":          s.TMLoad(),
		"queue_depth":   s.TMQueueDepth(),
		"active":        s.TMActive(),
	})
}

// handleV2TMDrain gracefully drains a Task Manager: routing stops
// immediately, queued work finishes, placements migrate to the
// remaining TMs. The response reports what moved where.
func (s *Service) handleV2TMDrain(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.callerV2(w, r); !ok {
		return
	}
	res, err := s.DrainTM(r.Context(), r.PathValue("tm"))
	if err != nil {
		writeV2Error(w, r, err)
		return
	}
	writeV2(w, r, http.StatusOK, res)
}

// handleV2TMRejoin reverses a drain: the TM clears its drain
// acknowledgement and returns to the routable pool (placements a drain
// migrated away are NOT restored — redeploy explicitly).
func (s *Service) handleV2TMRejoin(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.callerV2(w, r); !ok {
		return
	}
	tmID := r.PathValue("tm")
	if err := s.RejoinTM(r.Context(), tmID); err != nil {
		writeV2Error(w, r, err)
		return
	}
	writeV2(w, r, http.StatusOK, map[string]string{"status": "rejoined", "tm": tmID})
}

// handleV2TMDeregister removes a Task Manager from the registry and
// routing state (normally after a drain).
func (s *Service) handleV2TMDeregister(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.callerV2(w, r); !ok {
		return
	}
	tmID := r.PathValue("tm")
	if err := s.DeregisterTM(tmID); err != nil {
		writeV2Error(w, r, err)
		return
	}
	writeV2(w, r, http.StatusOK, map[string]string{"status": "deregistered", "tm": tmID})
}

func (s *Service) handleV2CacheStats(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.callerV2(w, r); !ok {
		return
	}
	writeV2(w, r, http.StatusOK, map[string]any{
		"enabled": s.CacheEnabled(),
		"stats":   s.CacheStats(),
	})
}

func (s *Service) handleV2CacheFlush(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.callerV2(w, r); !ok {
		return
	}
	s.FlushCache()
	writeV2(w, r, http.StatusOK, map[string]string{"status": "flushed"})
}

func (s *Service) handleV2Stats(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.callerV2(w, r); !ok {
		return
	}
	writeV2(w, r, http.StatusOK, map[string]any{
		"routes":     s.RouteStats(),
		"autoscaler": s.AutoscalerStats(),
		"tasks":      s.TaskStats(),
		"failovers":  s.FailoverStats(),
		// The dead-TM watcher footprint: tms must track the registered
		// TM count, never the in-flight dispatch count.
		"watcher": s.WatcherStats(),
		// null when the server runs without a durable store (-data-dir
		// unset); counters otherwise.
		"wal": s.WALStats(),
		// Per-tenant admission/fairness counters, keyed by tenant label
		// ("anonymous" for the default lane). Empty until traffic flows.
		"tenants": s.TenantStatsAll(),
	})
}

// --- tenants ----------------------------------------------------------------

// handleV2Tenants lists the known tenants and their quota/priority
// configuration.
func (s *Service) handleV2Tenants(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.callerV2(w, r); !ok {
		return
	}
	views := s.TenantList()
	writeV2(w, r, http.StatusOK, Page[TenantView]{Items: views, Total: len(views)})
}

// TenantQuotaRequest is the PUT /api/v2/tenants/{tenant}/quota body.
type TenantQuotaRequest struct {
	MaxInFlight int     `json:"max_in_flight"`
	RatePerSec  float64 `json:"rate_per_sec"`
	Priority    string  `json:"priority,omitempty"` // high | normal | low
}

// handleV2TenantQuota installs (or replaces) a tenant's quota spec and
// fairness weight; the tenant record is created if absent.
func (s *Service) handleV2TenantQuota(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.callerV2(w, r); !ok {
		return
	}
	var req TenantQuotaRequest
	if !readV2(w, r, &req) {
		return
	}
	view, err := s.SetTenantQuota(r.PathValue("tenant"), auth.Quota{
		MaxInFlight: req.MaxInFlight,
		RatePerSec:  req.RatePerSec,
		Priority:    req.Priority,
	})
	if err != nil {
		writeV2Error(w, r, err)
		return
	}
	writeV2(w, r, http.StatusOK, view)
}
