package core_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/servable"
)

// v2TB builds a testbed and serves its handler (both API generations).
func v2TB(t *testing.T) (*bench.Testbed, *httptest.Server) {
	t.Helper()
	tb := newTB(t, bench.Options{})
	srv := httptest.NewServer(tb.MS.Handler())
	t.Cleanup(srv.Close)
	return tb, srv
}

type envelope struct {
	Data  json.RawMessage `json:"data"`
	Error *struct {
		Code    string `json:"code"`
		Message string `json:"message"`
		Detail  string `json:"detail"`
	} `json:"error"`
	RequestID string `json:"request_id"`
}

func doV2(t *testing.T, method, url string, body any, headers map[string]string) (*http.Response, envelope) {
	t.Helper()
	var reader io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		reader = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, reader)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("%s %s: not an envelope: %v", method, url, err)
	}
	return resp, env
}

func TestV2EnvelopeAndRequestID(t *testing.T) {
	_, srv := v2TB(t)
	resp, env := doV2(t, http.MethodGet, srv.URL+"/api/v2/healthz", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if env.RequestID == "" || env.Error != nil {
		t.Fatalf("bad envelope: %+v", env)
	}
	if hdr := resp.Header.Get(core.RequestIDHeader); hdr != env.RequestID {
		t.Fatalf("header rid %q != envelope rid %q", hdr, env.RequestID)
	}
	// A client-supplied request ID is propagated.
	resp, env = doV2(t, http.MethodGet, srv.URL+"/api/v2/healthz", nil,
		map[string]string{core.RequestIDHeader: "client-rid-1"})
	if env.RequestID != "client-rid-1" || resp.Header.Get(core.RequestIDHeader) != "client-rid-1" {
		t.Fatalf("client request ID not propagated: %+v", env)
	}
}

func TestV2TypedErrors(t *testing.T) {
	_, srv := v2TB(t)
	resp, env := doV2(t, http.MethodGet, srv.URL+"/api/v2/servables/ghost/model", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if env.Error == nil || env.Error.Code != string(core.CodeNotFound) {
		t.Fatalf("want not_found code, got %+v", env.Error)
	}
	// Bad cursor → bad_request.
	resp, env = doV2(t, http.MethodGet, srv.URL+"/api/v2/servables?cursor=%21%21", nil, nil)
	if resp.StatusCode != http.StatusBadRequest || env.Error == nil || env.Error.Code != string(core.CodeBadRequest) {
		t.Fatalf("bad cursor: status %d env %+v", resp.StatusCode, env.Error)
	}
}

func TestV2Readyz(t *testing.T) {
	// A service with no TM is not ready.
	ms := core.New(core.Config{})
	defer ms.Close()
	srv := httptest.NewServer(ms.Handler())
	defer srv.Close()
	resp, env := doV2(t, http.MethodGet, srv.URL+"/api/v2/readyz", nil, nil)
	if resp.StatusCode != http.StatusServiceUnavailable || env.Error == nil || env.Error.Code != string(core.CodeNoTaskManager) {
		t.Fatalf("no-TM readyz: status %d env %+v", resp.StatusCode, env.Error)
	}

	// The testbed (one live TM) is ready.
	_, tbSrv := v2TB(t)
	resp, env = doV2(t, http.MethodGet, tbSrv.URL+"/api/v2/readyz", nil, nil)
	if resp.StatusCode != http.StatusOK || env.Error != nil {
		t.Fatalf("readyz with TM: status %d env %+v", resp.StatusCode, env.Error)
	}
}

func TestV2PaginationWalk(t *testing.T) {
	tb, srv := v2TB(t)
	// Publish 5 distinct public servables.
	for i := 0; i < 5; i++ {
		pkg := servable.NoopPackage()
		pkg.Doc.Publication.Name = fmt.Sprintf("pager-%d", i)
		pkg.Doc.Publication.VisibleTo = []string{"public"}
		if _, err := tb.MS.Publish(t.Context(), core.Anonymous, pkg); err != nil {
			t.Fatal(err)
		}
	}
	var all []string
	cursor := ""
	pages := 0
	for {
		url := srv.URL + "/api/v2/servables?limit=2"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		resp, env := doV2(t, http.MethodGet, url, nil, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("page status %d", resp.StatusCode)
		}
		var page struct {
			Items      []string `json:"items"`
			Total      int      `json:"total"`
			NextCursor string   `json:"next_cursor"`
		}
		if err := json.Unmarshal(env.Data, &page); err != nil {
			t.Fatal(err)
		}
		if page.Total != 5 {
			t.Fatalf("total %d, want 5", page.Total)
		}
		if len(page.Items) > 2 {
			t.Fatalf("page overflow: %d items", len(page.Items))
		}
		all = append(all, page.Items...)
		pages++
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
		if pages > 10 {
			t.Fatal("cursor walk did not terminate")
		}
	}
	if len(all) != 5 || pages != 3 {
		t.Fatalf("walked %d items over %d pages, want 5 over 3", len(all), pages)
	}
	seen := map[string]bool{}
	for _, id := range all {
		if seen[id] {
			t.Fatalf("duplicate %s across pages", id)
		}
		seen[id] = true
	}
}

func TestV2SearchCursor(t *testing.T) {
	tb, srv := v2TB(t)
	for i := 0; i < 4; i++ {
		pkg := servable.NoopPackage()
		pkg.Doc.Publication.Name = fmt.Sprintf("searchable-%d", i)
		pkg.Doc.Publication.VisibleTo = []string{"public"}
		if _, err := tb.MS.Publish(t.Context(), core.Anonymous, pkg); err != nil {
			t.Fatal(err)
		}
	}
	body := map[string]any{"q": "noop", "limit": 3}
	resp, env := doV2(t, http.MethodPost, srv.URL+"/api/v2/search", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	var page struct {
		Items      []struct{ ID string } `json:"items"`
		Total      int                   `json:"total"`
		NextCursor string                `json:"next_cursor"`
	}
	if err := json.Unmarshal(env.Data, &page); err != nil {
		t.Fatal(err)
	}
	if page.Total != 4 || len(page.Items) != 3 || page.NextCursor == "" {
		t.Fatalf("first page wrong: total=%d items=%d cursor=%q", page.Total, len(page.Items), page.NextCursor)
	}
	body["cursor"] = page.NextCursor
	_, env = doV2(t, http.MethodPost, srv.URL+"/api/v2/search", body, nil)
	page.NextCursor = "" // absent on the last page: reset before reuse
	if err := json.Unmarshal(env.Data, &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Items) != 1 || page.NextCursor != "" {
		t.Fatalf("second page wrong: items=%d cursor=%q", len(page.Items), page.NextCursor)
	}
}

func TestV2RunAndIdempotency(t *testing.T) {
	tb, srv := v2TB(t)
	id, err := tb.MS.Publish(t.Context(), core.Anonymous, servable.NoopPackage())
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.MS.Deploy(t.Context(), core.Anonymous, id, 1, "parsl"); err != nil {
		t.Fatal(err)
	}
	runURL := srv.URL + "/api/v2/servables/" + id + "/run"

	// Plain run: enveloped RunResult.
	resp, env := doV2(t, http.MethodPost, runURL, map[string]any{"input": "x", "no_memo": true}, nil)
	if resp.StatusCode != http.StatusOK || env.Error != nil {
		t.Fatalf("run: status %d err %+v", resp.StatusCode, env.Error)
	}
	var res struct {
		Output any `json:"output"`
	}
	if err := json.Unmarshal(env.Data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Output != "hello world" {
		t.Fatalf("output %v", res.Output)
	}
	if hdr := resp.Header.Get(core.CacheHeader); hdr != "bypass" {
		t.Fatalf("no_memo run should bypass cache, header=%q", hdr)
	}

	// Idempotency: same key replays the stored response without
	// re-running; different key executes fresh.
	hdrs := map[string]string{core.IdempotencyKeyHeader: "idem-1"}
	completedBefore, _ := tb.TM.Stats()
	resp1, env1 := doV2(t, http.MethodPost, runURL, map[string]any{"input": "idem", "no_memo": true, "no_cache": true}, hdrs)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("idem run status %d", resp1.StatusCode)
	}
	resp2, env2 := doV2(t, http.MethodPost, runURL, map[string]any{"input": "idem", "no_memo": true, "no_cache": true}, hdrs)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("idem replay status %d", resp2.StatusCode)
	}
	if resp2.Header.Get(core.IdempotencyReplayedHeader) != "true" {
		t.Fatal("replay not marked with Idempotency-Replayed")
	}
	if !bytes.Equal(env1.Data, env2.Data) {
		t.Fatalf("replayed body differs:\n%s\n%s", env1.Data, env2.Data)
	}
	completedAfter, _ := tb.TM.Stats()
	if completedAfter != completedBefore+1 {
		t.Fatalf("idempotent duplicate re-executed: %d -> %d completed tasks", completedBefore, completedAfter)
	}
}

func TestV2PublishIdempotency(t *testing.T) {
	_, srv := v2TB(t)
	pkg := servable.NoopPackage()
	doc, err := json.Marshal(pkg.Doc)
	if err != nil {
		t.Fatal(err)
	}
	body := map[string]any{"document": json.RawMessage(doc)}
	hdrs := map[string]string{core.IdempotencyKeyHeader: "pub-1"}
	resp1, env1 := doV2(t, http.MethodPost, srv.URL+"/api/v2/servables", body, hdrs)
	if resp1.StatusCode != http.StatusCreated {
		t.Fatalf("publish status %d: %s", resp1.StatusCode, env1.Data)
	}
	// Re-publishing with the same key must NOT mint version 2.
	_, env2 := doV2(t, http.MethodPost, srv.URL+"/api/v2/servables", body, hdrs)
	if !bytes.Equal(env1.Data, env2.Data) {
		t.Fatalf("idempotent publish diverged: %s vs %s", env1.Data, env2.Data)
	}
	var pub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(env2.Data, &pub); err != nil {
		t.Fatal(err)
	}
	resp, getEnv := doV2(t, http.MethodGet, srv.URL+"/api/v2/servables/"+pub.ID, nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatal("published servable not fetchable")
	}
	var gotDoc struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(getEnv.Data, &gotDoc); err != nil {
		t.Fatal(err)
	}
	if gotDoc.Version != 1 {
		t.Fatalf("idempotent publish minted version %d", gotDoc.Version)
	}
}

func TestV2TaskEventsStream(t *testing.T) {
	tb, srv := v2TB(t)
	id, err := tb.MS.Publish(t.Context(), core.Anonymous, servable.NoopPackage())
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.MS.Deploy(t.Context(), core.Anonymous, id, 1, "parsl"); err != nil {
		t.Fatal(err)
	}
	taskID, err := tb.MS.RunAsync(t.Context(), core.Anonymous, id, "async-in", core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/api/v2/tasks/" + taskID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var events []string
	var final struct {
		Status string `json:"status"`
		Reply  *struct {
			Output any `json:"output"`
		} `json:"reply"`
	}
	scanner := bufio.NewScanner(resp.Body)
	event := ""
	deadline := time.After(5 * time.Second)
	lines := make(chan string)
	go func() {
		for scanner.Scan() {
			lines <- scanner.Text()
		}
		close(lines)
	}()
scan:
	for {
		select {
		case <-deadline:
			t.Fatal("stream did not complete")
		case line, ok := <-lines:
			if !ok {
				break scan
			}
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
				events = append(events, event)
			case strings.HasPrefix(line, "data: ") && event == "done":
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &final); err != nil {
					t.Fatal(err)
				}
				break scan
			}
		}
	}
	if len(events) == 0 || events[0] != "status" {
		t.Fatalf("stream must open with a status event, got %v", events)
	}
	if events[len(events)-1] != "done" {
		t.Fatalf("stream must end with done, got %v", events)
	}
	if final.Status != "completed" || final.Reply == nil || final.Reply.Output != "hello world" {
		t.Fatalf("final event wrong: %+v", final)
	}
	// Unknown task: typed 404.
	respErr, errEnv := doV2(t, http.MethodGet, srv.URL+"/api/v2/tasks/ghost/events", nil, nil)
	if respErr.StatusCode != http.StatusNotFound || errEnv.Error == nil || errEnv.Error.Code != string(core.CodeTaskNotFound) {
		t.Fatalf("ghost task events: %d %+v", respErr.StatusCode, errEnv.Error)
	}
}

// TestV1CompatRoutes locks the v1 surface: same paths, same unenveloped
// shapes, now served as shims over the context-first core.
func TestV1CompatRoutes(t *testing.T) {
	tb, srv := v2TB(t)
	id, err := tb.MS.Publish(t.Context(), core.Anonymous, servable.NoopPackage())
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.MS.Deploy(t.Context(), core.Anonymous, id, 1, "parsl"); err != nil {
		t.Fatal(err)
	}

	// v1 run: bare RunResult, no envelope.
	body, _ := json.Marshal(map[string]any{"input": "x"})
	resp, err := http.Post(srv.URL+"/api/run/"+id, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v1 run status %d: %s", resp.StatusCode, raw)
	}
	var v1res struct {
		Output    any    `json:"output"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(raw, &v1res); err != nil {
		t.Fatal(err)
	}
	if v1res.Output != "hello world" {
		t.Fatalf("v1 run output %v", v1res.Output)
	}
	if v1res.RequestID != "" {
		t.Fatal("v1 response must not grow envelope fields")
	}

	// v1 error shape: {"error": "..."} with the table-driven status.
	resp, err = http.Get(srv.URL + "/api/servables/ghost/model")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("v1 404 got %d", resp.StatusCode)
	}
	var v1err struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &v1err); err != nil || v1err.Error == "" {
		t.Fatalf("v1 error shape broken: %s", raw)
	}
	// v1 status poll still works.
	taskID, err := tb.MS.RunAsync(t.Context(), core.Anonymous, id, "y", core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		resp, err := http.Get(srv.URL + "/api/status/" + taskID)
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		var st struct {
			Status string `json:"status"`
		}
		return json.NewDecoder(resp.Body).Decode(&st) == nil && st.Status == "completed"
	})
}

// TestV2IdempotencyTransientNotReplayed: transient failures (here
// no_task_manager 503) must not be stored for replay — the retry the
// key exists for has to execute fresh. Definitive 4xx outcomes ARE
// replayed.
func TestV2IdempotencyTransientNotReplayed(t *testing.T) {
	ms := core.New(core.Config{})
	defer ms.Close()
	srv := httptest.NewServer(ms.Handler())
	defer srv.Close()
	id, err := ms.Publish(t.Context(), core.Anonymous, servable.NoopPackage())
	if err != nil {
		t.Fatal(err)
	}
	runURL := srv.URL + "/api/v2/servables/" + id + "/run"
	hdrs := map[string]string{core.IdempotencyKeyHeader: "transient-1"}

	// No TM registered: both attempts hit 503, and the second must be a
	// fresh execution (no replay marker), not a replay of the outage.
	for attempt := 1; attempt <= 2; attempt++ {
		resp, env := doV2(t, http.MethodPost, runURL, map[string]any{"input": "x"}, hdrs)
		if resp.StatusCode != http.StatusServiceUnavailable || env.Error == nil || env.Error.Code != string(core.CodeNoTaskManager) {
			t.Fatalf("attempt %d: status %d env %+v", attempt, resp.StatusCode, env.Error)
		}
		if resp.Header.Get(core.IdempotencyReplayedHeader) != "" {
			t.Fatalf("attempt %d: transient failure was replayed", attempt)
		}
	}

	// A definitive 404 under a key IS replayed.
	ghostURL := srv.URL + "/api/v2/servables/ghost/model/run"
	hdrs = map[string]string{core.IdempotencyKeyHeader: "definitive-1"}
	resp, _ := doV2(t, http.MethodPost, ghostURL, map[string]any{"input": "x"}, hdrs)
	if resp.StatusCode != http.StatusNotFound || resp.Header.Get(core.IdempotencyReplayedHeader) != "" {
		t.Fatalf("first 404: status %d replay=%q", resp.StatusCode, resp.Header.Get(core.IdempotencyReplayedHeader))
	}
	resp, env := doV2(t, http.MethodPost, ghostURL, map[string]any{"input": "x"}, hdrs)
	if resp.StatusCode != http.StatusNotFound || resp.Header.Get(core.IdempotencyReplayedHeader) != "true" {
		t.Fatalf("second 404 should replay: status %d env %+v", resp.StatusCode, env.Error)
	}
}

// TestV2IdempotencyWaiterSurvivesCanceledLeader: a keyed duplicate
// waiting on an in-flight execution whose client cancels must not
// inherit the 499 — it re-executes as the new leader and succeeds.
func TestV2IdempotencyWaiterSurvivesCanceledLeader(t *testing.T) {
	ms, tmID := blackHoleTM(t)
	srv := httptest.NewServer(ms.Handler())
	defer srv.Close()
	id, err := ms.Publish(t.Context(), core.Anonymous, servable.NoopPackage())
	if err != nil {
		t.Fatal(err)
	}
	runURL := srv.URL + "/api/v2/servables/" + id + "/run"
	body := []byte(`{"input":"x","no_cache":true,"no_memo":true}`)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	leaderDone := make(chan error, 1)
	go func() {
		req, _ := http.NewRequestWithContext(leaderCtx, http.MethodPost, runURL, bytes.NewReader(body))
		req.Header.Set(core.IdempotencyKeyHeader, "wk1")
		_, err := http.DefaultClient.Do(req)
		leaderDone <- err
	}()
	waitFor(t, 2*time.Second, func() bool { return ms.TMLoad()[tmID] == 1 })

	type out struct {
		status int
		data   []byte
		err    error
	}
	dupDone := make(chan out, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, runURL, bytes.NewReader(body))
		req.Header.Set(core.IdempotencyKeyHeader, "wk1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			dupDone <- out{err: err}
			return
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		dupDone <- out{status: resp.StatusCode, data: raw}
	}()
	time.Sleep(50 * time.Millisecond) // duplicate parks on the in-flight entry
	cancelLeader()
	if err := <-leaderDone; err == nil {
		t.Fatal("leader request should have failed on cancel")
	}
	// The duplicate re-executes: serve its fresh dispatch.
	replyOnce(t, ms, tmID, "survived")
	select {
	case o := <-dupDone:
		if o.err != nil || o.status != http.StatusOK {
			t.Fatalf("duplicate inherited leader's cancellation: status=%d err=%v body=%s", o.status, o.err, o.data)
		}
		if !bytes.Contains(o.data, []byte("survived")) {
			t.Fatalf("duplicate got wrong result: %s", o.data)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("duplicate still blocked after leader cancel")
	}
}

// The drain → rejoin lifecycle over the v2 wire: a drained TM leaves
// the draining list when POST /tms/{tm}/rejoin succeeds; rejoining an
// unknown TM is a typed no_task_manager error.
func TestV2TMRejoin(t *testing.T) {
	tb, srv := v2TB(t)

	resp, env := doV2(t, http.MethodPost, srv.URL+"/api/v2/tms/cooley-tm-1/drain", nil, nil)
	if resp.StatusCode != http.StatusOK || env.Error != nil {
		t.Fatalf("drain: status %d env %+v", resp.StatusCode, env.Error)
	}
	if draining := tb.MS.DrainingTMs(); len(draining) != 1 {
		t.Fatalf("after drain: draining = %v", draining)
	}

	resp, env = doV2(t, http.MethodPost, srv.URL+"/api/v2/tms/cooley-tm-1/rejoin", nil, nil)
	if resp.StatusCode != http.StatusOK || env.Error != nil {
		t.Fatalf("rejoin: status %d env %+v", resp.StatusCode, env.Error)
	}
	var out struct {
		Status string `json:"status"`
		TM     string `json:"tm"`
	}
	if err := json.Unmarshal(env.Data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "rejoined" || out.TM != "cooley-tm-1" {
		t.Fatalf("rejoin payload = %+v", out)
	}
	if draining := tb.MS.DrainingTMs(); len(draining) != 0 {
		t.Fatalf("after rejoin: draining = %v", draining)
	}

	resp, env = doV2(t, http.MethodPost, srv.URL+"/api/v2/tms/ghost/rejoin", nil, nil)
	if resp.StatusCode != http.StatusServiceUnavailable || env.Error == nil || env.Error.Code != string(core.CodeNoTaskManager) {
		t.Fatalf("rejoin unknown TM: status %d env %+v", resp.StatusCode, env.Error)
	}
}
