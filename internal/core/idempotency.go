package core

import (
	"sync"
	"time"
)

// Idempotency keys for the v2 mutating routes (run, publish). A client
// that retries a POST after a network failure cannot know whether the
// first attempt executed; sending the same Idempotency-Key makes the
// retry safe: the first execution's response is stored and replayed,
// and a duplicate arriving while the original is still executing waits
// for that execution instead of starting a second one. Keys are scoped
// per caller identity and route, so two users (or two routes) reusing
// the same key never collide.

// IdempotencyKeyHeader is the request header carrying the client's
// chosen key; IdempotencyReplayedHeader marks a replayed response.
const (
	IdempotencyKeyHeader      = "Idempotency-Key"
	IdempotencyReplayedHeader = "Idempotency-Replayed"
)

// idemEntry is one keyed execution: done closes when the first
// execution finishes, after which status/body/err hold its outcome.
type idemEntry struct {
	done    chan struct{}
	status  int
	body    []byte // marshaled envelope data (nil when err != nil)
	err     *Error
	created time.Time
}

// finish records the outcome and releases waiting duplicates.
func (e *idemEntry) finish(status int, body []byte, err *Error) {
	e.status = status
	e.body = body
	e.err = err
	close(e.done)
}

// idemStore holds keyed executions with TTL expiry and a size cap.
type idemStore struct {
	mu      sync.Mutex
	ttl     time.Duration
	max     int
	entries map[string]*idemEntry
	now     func() time.Time
}

func newIdemStore(ttl time.Duration) *idemStore {
	if ttl <= 0 {
		ttl = 10 * time.Minute
	}
	return &idemStore{
		ttl:     ttl,
		max:     4096,
		entries: make(map[string]*idemEntry),
		now:     time.Now,
	}
}

// begin claims key: isNew reports this caller is the first (and must
// finish() the returned entry); otherwise the entry belongs to an
// earlier request and the caller should wait on done and replay.
func (st *idemStore) begin(key string) (e *idemEntry, isNew bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := st.now()
	if e, ok := st.entries[key]; ok {
		expired := now.Sub(e.created) > st.ttl
		// Only completed entries expire: an in-flight execution must
		// keep absorbing duplicates however long it runs.
		select {
		case <-e.done:
			if !expired {
				return e, false
			}
			delete(st.entries, key)
		default:
			return e, false
		}
	}
	st.sweepLocked(now)
	e = &idemEntry{done: make(chan struct{}), created: now}
	st.entries[key] = e
	return e, true
}

// forget removes key — but only while it still maps to e, so a racing
// re-execution that already claimed the key under a fresh entry is
// never evicted by a stale forget. Waiters already holding e still
// read its recorded outcome. Used for transient failures (5xx,
// canceled) that must not be replayed — replaying them would defeat
// the retry contract the key exists for — and for aborted executions
// (panic) that never finished.
func (st *idemStore) forget(key string, e *idemEntry) {
	st.mu.Lock()
	if st.entries[key] == e {
		delete(st.entries, key)
	}
	st.mu.Unlock()
}

// sweepLocked drops expired completed entries; at the size cap it drops
// the oldest completed entries to make room. Caller holds st.mu.
func (st *idemStore) sweepLocked(now time.Time) {
	for key, e := range st.entries {
		select {
		case <-e.done:
			if now.Sub(e.created) > st.ttl {
				delete(st.entries, key)
			}
		default:
		}
	}
	for len(st.entries) >= st.max {
		var oldestKey string
		var oldest time.Time
		for key, e := range st.entries {
			select {
			case <-e.done:
				if oldestKey == "" || e.created.Before(oldest) {
					oldestKey, oldest = key, e.created
				}
			default:
			}
		}
		if oldestKey == "" {
			return // everything in flight; nothing evictable
		}
		delete(st.entries, oldestKey)
	}
}
