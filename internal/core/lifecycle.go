package core

// Task Manager lifecycle: graceful drain, dead-TM failover and
// per-placement undeploy. The paper's serving fabric assumes Task
// Managers at remote sites come and go (§IV-B registers them
// dynamically), but registration alone only covers ARRIVAL. This file
// owns the other half:
//
//   - DrainTM takes a site out of rotation without killing it: the TM
//     is excluded from every routing decision, acknowledges the drain
//     in its heartbeats, finishes the work already queued to it, and
//     has its placements migrated onto the remaining routable TMs
//     (replica records follow) before DeregisterTM removes it.
//
//   - The dead-TM watchdog (dispatchWatched) aborts a dispatch as soon
//     as its routed TM misses the liveness window, instead of letting
//     the caller wait out the full task deadline; dispatch() then
//     re-routes still-idempotent serving tasks to another placed TM
//     under a bounded retry budget. Idempotency is structural: plain
//     run / run_batch tasks (and pipeline steps, which dispatch as
//     plain runs) are pure inference — re-executing one after an
//     uncertain first attempt returns the same answer and mutates
//     nothing. Control-plane kinds and anything whose reply was
//     already delivered have no pending dispatch to fail over.
//
//   - Undeploy removes ONE placement of a servable — PR 4 could only
//     shrink placement by unpublishing the whole servable.
//
// See docs/ARCHITECTURE.md "Failure model & TM lifecycle".

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/queue"
	"repro/internal/taskmanager"
)

// errTMLost marks a dispatch aborted by the dead-TM watchdog: the
// routed Task Manager missed its liveness window while the request
// waited. Always wrapped together with ErrNoTaskManager so an
// unrecovered loss maps to 503, while errors.Is(err, errTMLost) stays
// a precise failover trigger (ErrNoTaskManager alone also matches
// routing failures that must NOT re-dispatch).
var errTMLost = errors.New("task manager missed its liveness window mid-dispatch")

// failoverBudget resolves Config.FailoverRetries: how many re-dispatch
// attempts one request may consume (default 2; negative disables).
func (s *Service) failoverBudget() int {
	switch {
	case s.cfg.FailoverRetries < 0:
		return 0
	case s.cfg.FailoverRetries == 0:
		return 2
	default:
		return s.cfg.FailoverRetries
	}
}

// tmLost reports whether a TM currently fails the liveness window (or
// was deregistered outright). Always false with liveness disabled —
// there is no dead-TM signal to act on.
func (s *Service) tmLost(tmID string) bool {
	return s.route.isLost(tmID, s.timeFunc(), s.cfg.TMStaleAfter)
}

// tmIsDraining reports whether a TM is marked draining.
func (s *Service) tmIsDraining(tmID string) bool {
	return s.route.isDraining(tmID)
}

// DrainingTMs lists TMs currently marked draining.
func (s *Service) DrainingTMs() []string {
	return s.route.drainingAll()
}

// dispatchWatched is dispatchTo plus the dead-TM watcher: the dispatch
// registers its cancel func with the routed TM's broadcast watcher
// (watcher.go) and is aborted with errTMLost the moment the TM misses
// its liveness window — the reply will never come, and failing fast is
// what gives dispatch() room to re-route inside the caller's deadline.
// Unlike the previous per-dispatch polling goroutine, the wait itself
// costs nothing: one timer per TM covers every waiter. With liveness
// disabled (TMStaleAfter == 0) it degenerates to plain dispatchTo.
func (s *Service) dispatchWatched(ctx context.Context, tmID string, task taskmanager.Task) (RunResult, error) {
	if s.cfg.TMStaleAfter <= 0 {
		return s.dispatchTo(ctx, tmID, task)
	}
	wctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	unwatch := s.watcher.watch(tmID, cancel)
	defer unwatch()
	res, err := s.dispatchTo(wctx, tmID, task)
	if err != nil && context.Cause(wctx) == errTMLost && ctx.Err() == nil {
		return RunResult{}, fmt.Errorf("%w: %s: %w", ErrNoTaskManager, tmID, errTMLost)
	}
	return res, err
}

// noteTMLost reacts to a watcher-detected loss: tasks the dead TM
// claimed or never pulled are withdrawn from its broker queue (their
// requesters' waiters fire too — nothing waits for a queue nobody
// consumes), and the loss is counted. Deliberately NOT a
// deregistration: a TM that was merely partitioned resumes on an empty
// queue at its next heartbeat.
func (s *Service) noteTMLost(tmID string) {
	purged := s.broker.Purge(taskmanager.TaskQueue(tmID))
	s.failoverLost.Add(1)
	if purged > 0 {
		log.Printf("core: withdrew %d task(s) queued to lost TM %s", purged, tmID)
	}
}

func (s *Service) noteFailoverRedispatch() { s.failoverRedispatched.Add(1) }

func (s *Service) noteFailoverExhausted() { s.failoverExhausted.Add(1) }

// FailoverStats counts dead-TM failover activity (the /api/v2/stats
// "failovers" block).
type FailoverStats struct {
	// Lost counts dispatches aborted because their routed TM missed
	// the liveness window mid-wait.
	Lost uint64 `json:"lost"`
	// Redispatched counts tasks re-routed to another TM after a loss.
	Redispatched uint64 `json:"redispatched"`
	// Exhausted counts requests that ran out of retry budget or
	// routable TMs and surfaced the failure to the caller.
	Exhausted uint64 `json:"exhausted"`
}

// FailoverStats snapshots the failover counters.
func (s *Service) FailoverStats() FailoverStats {
	return FailoverStats{
		Lost:         s.failoverLost.Load(),
		Redispatched: s.failoverRedispatched.Load(),
		Exhausted:    s.failoverExhausted.Load(),
	}
}

// --- graceful drain ----------------------------------------------------------

// DrainResult reports what a completed drain did to the drained TM's
// placements.
type DrainResult struct {
	TM string `json:"tm"`
	// Migrated maps servable ID -> the TM that received a fresh
	// deployment because the drained site held its only routable
	// placement.
	Migrated map[string]string `json:"migrated,omitempty"`
	// Removed lists servables whose placement entry was simply dropped
	// because another routable TM already hosts them.
	Removed []string `json:"removed,omitempty"`
}

// DrainTM gracefully takes a Task Manager out of rotation: it is
// immediately excluded from every routing decision (pickTM, the
// pipeline monolith chooser, autoscaler scale dispatches), a drain task
// tells the site to expect no new work (acknowledged in its subsequent
// heartbeats), in-flight and already-queued tasks are allowed to
// finish, and every placement it holds is migrated onto the remaining
// routable TMs — re-deployed with the recorded replica count when the
// drained site held the only copy, dropped when another site already
// hosts the servable. The TM stays registered (and draining) until
// DeregisterTM; the mark survives heartbeats, so draining is sticky.
//
// Idempotent: draining an already-draining TM re-runs the wait and
// migration, which converges to nothing left to move. If migration
// cannot place a servable (no routable TM remains), DrainTM returns the
// error with the drain mark still set — add capacity and retry. A dead
// or unresponsive TM is drained too: the ack dispatch fails fast via
// the watchdog, its queue is purged instead of waited on, and migration
// proceeds.
func (s *Service) DrainTM(ctx context.Context, tmID string) (*DrainResult, error) {
	if !s.tmRegistered(tmID) {
		return nil, ErrNoTaskManager.WithDetail(fmt.Sprintf("task manager %q not registered", tmID))
	}
	ctx, cancel := s.reqCtx(ctx, RunOptions{Timeout: deployTimeout(ctx)})
	defer cancel()

	// A deliberate re-drain must never be suppressed by the rejoin
	// grace window (routingTable.beat) — markDraining clears the grace
	// entry too.
	s.route.markDraining(tmID)
	// Logged at the mark, not at drain completion: the mark is the
	// state transition (routing excludes the site from here on), and a
	// crash mid-drain must recover with the site still out of rotation.
	s.logged(recKindDrain, recTM{TM: tmID})

	// Ask the site to acknowledge; tolerate a dead site (that is what
	// draining a crashed TM before deregistering it looks like).
	ackTask := taskmanager.Task{ID: queue.NewID(), Kind: "drain"}
	if _, err := s.dispatchWatched(ctx, tmID, ackTask); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, wrapCtxErr(ctxErr)
		}
		// Unacknowledged drain: nothing will consume the queue, so
		// withdraw it rather than wait for it.
		log.Printf("core: drain %s: ack failed (%v); withdrawing queued tasks", tmID, err)
		s.broker.Purge(taskmanager.TaskQueue(tmID))
	} else if err := s.awaitTMIdle(ctx, tmID); err != nil {
		return nil, err
	}
	res, err := s.migratePlacements(ctx, tmID)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// awaitTMIdle blocks until nothing is outstanding against the TM: no
// dispatches waited on (tmInflight) and an empty broker queue (ready or
// claimed). Bounded by ctx; the drain mark guarantees no NEW work
// arrives while we wait.
func (s *Service) awaitTMIdle(ctx context.Context, tmID string) error {
	q := taskmanager.TaskQueue(tmID)
	for {
		inflight := s.route.inflightOf(tmID)
		if inflight == 0 && s.broker.Len(q) == 0 && s.broker.InFlight(q) == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("drain %s: %d task(s) still in flight: %w", tmID, inflight, wrapCtxErr(ctx.Err()))
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// migratePlacements moves every placement off a draining TM. Servables
// also hosted by another routable TM just lose the draining entry;
// sole-copy servables are re-deployed (recorded replica count — the
// autoscaler's view follows the move) onto the least-loaded routable
// TM first, so the window with no routable placement is zero. The
// replicas on the drained site are then torn down best-effort.
func (s *Service) migratePlacements(ctx context.Context, tmID string) (*DrainResult, error) {
	res := &DrainResult{TM: tmID}
	held := s.route.heldBy(tmID)
	for _, id := range held {
		// "Hosted elsewhere" must mean a site routing would actually
		// pick: routable AND live. A stale peer (registered, not
		// draining, heartbeats stopped) must not excuse skipping the
		// migration — dropping the drained placement would leave the
		// servable placed only on a dead site.
		elsewhere := s.route.hostedElsewhereLive(id, s.timeFunc(), s.cfg.TMStaleAfter)
		replicas := s.route.replicasOf(id)
		s.mu.RLock()
		pkg := s.packages[id]
		s.mu.RUnlock()
		if !elsewhere {
			if pkg == nil {
				// A placement for a since-unpublished servable; nothing
				// to migrate, just drop the entry below.
				elsewhere = true
			} else {
				target, err := s.pickTM("") // routable pool; tmID is draining
				if err != nil {
					return nil, fmt.Errorf("drain %s: cannot migrate %s: %w", tmID, id, err)
				}
				if replicas < 1 {
					replicas = 1
				}
				wire, err := taskmanager.EncodePackage(pkg)
				if err != nil {
					return nil, fmt.Errorf("drain %s: migrate %s: %w", tmID, id, err)
				}
				task := taskmanager.Task{
					ID:       queue.NewID(),
					Kind:     "deploy",
					Servable: id,
					Replicas: replicas,
					Package:  wire,
				}
				if _, err := s.dispatchWatched(ctx, target, task); err != nil {
					return nil, fmt.Errorf("drain %s: migrate %s to %s: %w", tmID, id, target, err)
				}
				if err := s.recordDeployment(id, target, replicas); err != nil {
					// Unpublished mid-drain (or the target itself began
					// draining): undo and skip — the entry is dropped
					// either way.
					s.undeployAsync(id, target)
				} else {
					s.logged(recKindDeploy, recPlacement{ID: id, TM: target, Replicas: replicas})
					if res.Migrated == nil {
						res.Migrated = make(map[string]string)
					}
					res.Migrated[id] = target
				}
			}
		}
		if elsewhere {
			res.Removed = append(res.Removed, id)
		}
		if s.removePlacement(id, tmID) {
			s.logged(recKindUndeploy, recPlacement{ID: id, TM: tmID})
		}
		s.undeployAsync(id, tmID)
	}
	return res, nil
}

// removePlacement drops one (servable, TM) placement entry, deleting
// the map key when it was the last one.
func (s *Service) removePlacement(servableID, tmID string) bool {
	return s.route.removePlacement(servableID, tmID)
}

// DeregisterTM removes a Task Manager from the registry and every piece
// of routing state naming it, and withdraws whatever is still queued to
// it. The intended flow is DrainTM then DeregisterTM; deregistering an
// undrained TM is allowed (removing a crashed site) but simply abandons
// its placements — sole-copy servables fall back to the full routable
// pool until re-deployed. A deregistered TM that is still alive and
// heartbeating re-registers on its next beat (as draining, if it had
// acknowledged a drain — the ack is sticky TM-side); stop the process
// to make removal final.
func (s *Service) DeregisterTM(tmID string) error {
	if !s.route.deregister(tmID) {
		return ErrNoTaskManager.WithDetail(fmt.Sprintf("task manager %q not registered", tmID))
	}
	// Dispatches still waiting on the removed TM get errTMLost NOW —
	// the registry entry is gone, so no heartbeat deadline remains to
	// wait out. This is what keeps the deregister path and the
	// broadcast watcher in agreement.
	s.watcher.markLost(tmID)
	s.logged(recKindDeregister, recTM{TM: tmID})
	if purged := s.broker.Purge(taskmanager.TaskQueue(tmID)); purged > 0 {
		log.Printf("core: withdrew %d task(s) queued to deregistered TM %s", purged, tmID)
	}
	return nil
}

// rejoinGrace is how long after RejoinTM the registrationLoop ignores a
// heartbeat still asserting Draining: such a beat was necessarily
// marshaled before the TM acknowledged the rejoin (the TM-side flag is
// cleared before RejoinTM returns), so it is stale state in flight, not
// a new drain. Generous versus any heartbeat interval + queue backlog;
// a real re-drain sets the mark directly and clears the grace entry.
const rejoinGrace = 3 * time.Second

// RejoinTM reverses a graceful drain, returning the Task Manager to the
// routable pool — the missing half that made drain one-way (drain →
// deregister → restart the process was the only way back). The TM is
// asked to clear its drain acknowledgement first (new "rejoin" task
// kind), so once the service-side mark is dropped no future heartbeat
// re-asserts it; then the mark is cleared and the site is immediately
// eligible for routing and deployment again.
//
// Rejoining does NOT restore the placements a drain migrated away:
// the TM comes back empty, like a freshly registered site, and takes
// unplaced-pool traffic until something is deployed to it (DeployTo).
// Idempotent: rejoining a TM that is not draining just re-clears state.
// A dead or unresponsive TM cannot rejoin — the ack dispatch fails and
// the drain mark stays.
func (s *Service) RejoinTM(ctx context.Context, tmID string) error {
	if !s.tmRegistered(tmID) {
		return ErrNoTaskManager.WithDetail(fmt.Sprintf("task manager %q not registered", tmID))
	}
	ctx, cancel := s.reqCtx(ctx, RunOptions{Timeout: deployTimeout(ctx)})
	defer cancel()
	task := taskmanager.Task{ID: queue.NewID(), Kind: "rejoin"}
	if _, err := s.dispatchWatched(ctx, tmID, task); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return wrapCtxErr(ctxErr)
		}
		return fmt.Errorf("rejoin %s: site did not acknowledge (a dead TM cannot rejoin): %w", tmID, err)
	}
	s.route.clearDrainMark(tmID, s.timeFunc())
	s.logged(recKindRejoin, recTM{TM: tmID})
	return nil
}

// --- per-placement undeploy --------------------------------------------------

// Undeploy removes ONE placement of a servable: its replicas on the
// named Task Manager are torn down and the placement entry dropped, so
// operators can shrink where a servable runs without unpublishing it.
// Owner-only, mirroring Unpublish. The placement entry is removed
// FIRST — no new task can route to the site while the teardown task is
// in flight — and the teardown itself tolerates a lost TM (its replicas
// die with it). The desired-replica record is untouched: it describes
// per-site scale, which the remaining placements keep.
func (s *Service) Undeploy(ctx context.Context, caller Caller, servableID, tmID string) error {
	s.mu.RLock()
	doc, ok := s.docs[servableID]
	s.mu.RUnlock()
	if !ok || !visibleTo(doc, caller) {
		return fmt.Errorf("%w: %s", ErrNotFound, servableID)
	}
	if doc.Owner != caller.IdentityID {
		return fmt.Errorf("%w: only the owner may undeploy %s", ErrForbidden, servableID)
	}
	if !s.removePlacement(servableID, tmID) {
		return ErrNotFound.WithDetail(fmt.Sprintf("%s has no placement on task manager %q", servableID, tmID))
	}
	s.logged(recKindUndeploy, recPlacement{ID: servableID, TM: tmID})
	ctx, cancel := s.reqCtx(ctx, RunOptions{Timeout: deployTimeout(ctx)})
	defer cancel()
	task := taskmanager.Task{ID: queue.NewID(), Kind: "undeploy", Servable: servableID}
	if _, err := s.dispatchWatched(ctx, tmID, task); err != nil {
		if errors.Is(err, errTMLost) || errors.Is(err, ErrTimeout) {
			// The site is gone or unreachable; the placement record is
			// already removed, which is the part that matters.
			log.Printf("core: undeploy %s from %s: best-effort teardown failed: %v", servableID, tmID, err)
			return nil
		}
		return err
	}
	return nil
}

// ServablePlacements reports which Task Managers host a servable,
// subject to the caller's visibility.
func (s *Service) ServablePlacements(caller Caller, servableID string) ([]string, error) {
	if _, err := s.Get(caller, servableID); err != nil {
		return nil, err
	}
	return s.route.placementsOf(servableID), nil
}
