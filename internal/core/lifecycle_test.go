package core_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/servable"
	"repro/internal/taskmanager"
)

// TM lifecycle: graceful drain, dead-TM failover, per-placement
// undeploy. These tests pin the acceptance contracts of the lifecycle
// subsystem: a drained TM receives no new tasks, its placements land
// on survivors, a killed TM's in-flight runs fail over instead of
// timing out, and routing falls back sanely when placements name
// unroutable sites.

// markDrainingViaHeartbeat forges the drain-acknowledging heartbeat a
// TM sends after processing a drain task, marking the TM draining on
// the service WITHOUT running DrainTM's migration pass — the state a
// restarted Management Service re-learns from heartbeats.
func markDrainingViaHeartbeat(t *testing.T, ms *core.Service, tmID string) {
	t.Helper()
	body, err := json.Marshal(taskmanager.Registration{TMID: tmID, Draining: true})
	if err != nil {
		t.Fatal(err)
	}
	ms.Broker().Push(taskmanager.RegisterQueue, body, "", "", "")
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, id := range ms.DrainingTMs() {
			if id == tmID {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never marked draining from heartbeat", tmID)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func deployNoopOn(t *testing.T, ms *core.Service, tms ...string) string {
	t.Helper()
	id, err := ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage())
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range tms {
		if err := ms.DeployTo(context.Background(), core.Anonymous, id, 1, "parsl", tm); err != nil {
			t.Fatal(err)
		}
	}
	return id
}

// heartbeat forges periodic TM registrations (what a live TM's
// heartbeat loop sends); calling the returned stop is the abrupt kill —
// from the service's perspective indistinguishable from kill -9.
func heartbeat(ms *core.Service, tmID string) (stop func()) {
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(40 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				body, _ := json.Marshal(taskmanager.Registration{TMID: tmID})
				ms.Broker().Push(taskmanager.RegisterQueue, body, "", "", "")
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// awaitStatsSettled waits until a TM's completed-task count stops
// moving (e.g. the best-effort undeploy teardown a drain dispatches has
// landed), then returns it.
func awaitStatsSettled(t *testing.T, tm *taskmanager.TM) uint64 {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	prev, _ := tm.Stats()
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		cur, _ := tm.Stats()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	t.Fatal("TM stats never settled")
	return 0
}

// A drained TM must receive no new tasks: with the servable placed on
// both sites, every post-drain run lands on the survivor.
func TestDrainedTMReceivesNoNewTasks(t *testing.T) {
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms.Close()
	tmA := newSite(t, ms, "site-a")
	tmB := newSite(t, ms, "site-b")
	if err := ms.WaitForTM(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	id := deployNoopOn(t, ms, "site-a", "site-b")

	res, err := ms.DrainTM(context.Background(), "site-a")
	if err != nil {
		t.Fatal(err)
	}
	// site-b already hosts the servable: the drained placement is
	// removed, not migrated.
	if len(res.Migrated) != 0 {
		t.Fatalf("expected no migrations (site-b already hosts it), got %v", res.Migrated)
	}
	if !tmA.Draining() {
		t.Fatal("drained TM never acknowledged the drain task")
	}
	placed, err := ms.ServablePlacements(core.Anonymous, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(placed) != 1 || placed[0] != "site-b" {
		t.Fatalf("placements after drain = %v, want [site-b]", placed)
	}

	// The drain dispatches a best-effort undeploy teardown to site-a;
	// let it land before snapshotting, so the assertion below counts
	// only would-be serving tasks.
	doneA := awaitStatsSettled(t, tmA)
	for i := 0; i < 8; i++ {
		if _, err := ms.Run(context.Background(), core.Anonymous, id, fmt.Sprintf("post-drain-%d", i), core.RunOptions{}); err != nil {
			t.Fatalf("run %d after drain: %v", i, err)
		}
	}
	if after, _ := tmA.Stats(); after != doneA {
		t.Fatalf("drained TM served new tasks: completed %d -> %d", doneA, after)
	}
	if doneB, _ := tmB.Stats(); doneB == 0 {
		t.Fatal("survivor served nothing")
	}
}

// Draining the ONLY host of a servable migrates the placement (with
// its recorded replica count) onto a survivor before removal.
func TestDrainMigratesSoleCopyPlacements(t *testing.T) {
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms.Close()
	newSite(t, ms, "site-a")
	tmB := newSite(t, ms, "site-b")
	if err := ms.WaitForTM(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	id, err := ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage())
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.DeployTo(context.Background(), core.Anonymous, id, 3, "parsl", "site-a"); err != nil {
		t.Fatal(err)
	}

	res, err := ms.DrainTM(context.Background(), "site-a")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Migrated[id]; got != "site-b" {
		t.Fatalf("migrated[%s] = %q, want site-b (full result %+v)", id, got, res)
	}
	placed, err := ms.ServablePlacements(core.Anonymous, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(placed) != 1 || placed[0] != "site-b" {
		t.Fatalf("placements after drain = %v, want [site-b]", placed)
	}
	// The autoscaler's replica record follows the migrated placement.
	if got := ms.DesiredReplicas(id); got != 3 {
		t.Fatalf("replica record lost in migration: got %d, want 3", got)
	}
	if _, err := ms.Run(context.Background(), core.Anonymous, id, "after-migration", core.RunOptions{}); err != nil {
		t.Fatalf("run after migration: %v", err)
	}
	if doneB, _ := tmB.Stats(); doneB == 0 {
		t.Fatal("migration target served nothing")
	}

	// Drain then deregister is the full removal flow.
	if err := ms.DeregisterTM("site-a"); err != nil {
		t.Fatal(err)
	}
	for _, tm := range ms.TaskManagers() {
		if tm == "site-a" {
			t.Fatal("site-a still registered after deregister")
		}
	}
}

// A placement on a STALE peer (registered, heartbeats stopped) must
// not excuse the drain from migrating: "hosted elsewhere" means a site
// routing would actually pick — routable AND live. Regression test:
// draining site-a with the servable also "placed" on dead site-b must
// re-deploy onto live site-c, not leave the servable stranded on b.
func TestDrainMigratesPastStalePlacement(t *testing.T) {
	ms := core.New(core.Config{
		Registry:     container.NewRegistry(),
		TMStaleAfter: 250 * time.Millisecond,
		TaskTimeout:  30 * time.Second,
	})
	defer ms.Close()
	tmA := liveSite(t, ms, "site-a", 40*time.Millisecond)
	defer tmA.Close()
	startScriptedTM(t, ms, "site-b") // registers once, then goes stale
	tmC := liveSite(t, ms, "site-c", 40*time.Millisecond)
	defer tmC.Close()
	if err := ms.WaitForTM(3, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	id := deployNoopOn(t, ms, "site-a", "site-b")
	time.Sleep(400 * time.Millisecond) // site-b misses its window

	res, err := ms.DrainTM(context.Background(), "site-a")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Migrated[id]; got != "site-c" {
		t.Fatalf("migrated[%s] = %q, want site-c (stale site-b must not count as a host); result %+v", id, got, res)
	}
	if _, err := ms.Run(context.Background(), core.Anonymous, id, "post-stale-migration", core.RunOptions{}); err != nil {
		t.Fatalf("run after migration: %v", err)
	}
}

// A TM that dies mid-request (kill -9: no deregistration, no goodbye —
// here a scripted TM that claims tasks, never answers, and whose forged
// heartbeats stop at the kill) must not strand its callers until their
// deadline: the watchdog detects the missed liveness window and the
// runs are re-dispatched to the other placed TM.
func TestDeadTMFailover(t *testing.T) {
	ms := core.New(core.Config{
		Registry:     container.NewRegistry(),
		TMStaleAfter: 250 * time.Millisecond,
		TaskTimeout:  30 * time.Second,
	})
	defer ms.Close()
	ghost := startScriptedTM(t, ms, "site-a")
	kill := heartbeat(ms, "site-a")
	defer kill()
	tmB := liveSite(t, ms, "site-b", 40*time.Millisecond)
	defer tmB.Close()
	if err := ms.WaitForTM(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	id := deployNoopOn(t, ms, "site-a", "site-b")

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, 12)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = ms.Run(context.Background(), core.Anonymous, id, fmt.Sprintf("failover-%d", i), core.RunOptions{})
		}(i)
	}
	// Wait until site-a has claimed at least one run, then kill it:
	// heartbeats stop mid-request, exactly like a crashed process.
	deadline := time.Now().Add(10 * time.Second)
	for ghost.pendingTasks() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no run ever routed to site-a")
		}
		time.Sleep(2 * time.Millisecond)
	}
	kill()

	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d should have failed over, got %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("failover took %v — callers waited out deadlines instead of re-routing", elapsed)
	}
	st := ms.FailoverStats()
	if st.Lost == 0 || st.Redispatched == 0 {
		t.Fatalf("failover counters flat after dead-TM episode: %+v", st)
	}
	if doneB, _ := tmB.Stats(); doneB == 0 {
		t.Fatal("survivor served nothing")
	}
}

// With no other routable TM, failover exhausts its options quickly and
// surfaces no_task_manager — it must not silently wait out the full
// task deadline.
func TestFailoverExhaustedWithoutSurvivor(t *testing.T) {
	ms := core.New(core.Config{
		Registry:     container.NewRegistry(),
		TMStaleAfter: 200 * time.Millisecond,
		TaskTimeout:  30 * time.Second,
	})
	defer ms.Close()
	ghost := startScriptedTM(t, ms, "solo")
	kill := heartbeat(ms, "solo")
	defer kill()
	if err := ms.WaitForTM(1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	id := deployNoopOn(t, ms, "solo")

	start := time.Now()
	errCh := make(chan error, 1)
	go func() {
		_, err := ms.Run(context.Background(), core.Anonymous, id, "doomed", core.RunOptions{})
		errCh <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for ghost.pendingTasks() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("run never routed to solo")
		}
		time.Sleep(2 * time.Millisecond)
	}
	kill()

	err := <-errCh
	elapsed := time.Since(start)
	if !errors.Is(err, core.ErrNoTaskManager) {
		t.Fatalf("want ErrNoTaskManager, got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("exhausted failover took %v — should fail fast, not wait out the 30s deadline", elapsed)
	}
	if st := ms.FailoverStats(); st.Exhausted == 0 || st.Lost == 0 {
		t.Fatalf("exhausted/lost counters flat: %+v", st)
	}
}

// Routing fallback when every placement names an unroutable TM: a
// draining placement falls back to the registered pool (a fast
// task_failed from an undeployed site beats a silent hang), and with
// no routable TM at all the run fails with no_task_manager.
func TestPickTMDrainingPlacementFallback(t *testing.T) {
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms.Close()
	tmA := newSite(t, ms, "site-a")
	newSite(t, ms, "site-b")
	if err := ms.WaitForTM(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// Placed only on site-a, which then reports draining via heartbeat
	// (the restored-service scenario: no migration pass has run).
	id := deployNoopOn(t, ms, "site-a")
	markDrainingViaHeartbeat(t, ms, "site-a")

	doneA, _ := tmA.Stats()
	_, err := ms.Run(context.Background(), core.Anonymous, id, "fallback", core.RunOptions{})
	// site-b never had the servable deployed: the fallback dispatch
	// fails THERE, fast — never on the draining site.
	if !errors.Is(err, core.ErrTaskFailed) {
		t.Fatalf("want ErrTaskFailed from the fallback site, got %v", err)
	}
	if after, _ := tmA.Stats(); after != doneA {
		t.Fatal("draining site served a task routing should have excluded")
	}

	// Both sites draining: nothing routable at all.
	markDrainingViaHeartbeat(t, ms, "site-b")
	if _, err := ms.Run(context.Background(), core.Anonymous, id, "nowhere", core.RunOptions{}); !errors.Is(err, core.ErrNoTaskManager) {
		t.Fatalf("want ErrNoTaskManager with every TM draining, got %v", err)
	}
}

// A deploy racing a concurrent drain of its target must never leave a
// placement on the drained TM: either the deploy loses (conflict) or
// it lands before the drain and is migrated away with everything else.
func TestDrainVsConcurrentDeploy(t *testing.T) {
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms.Close()
	newSite(t, ms, "site-a")
	newSite(t, ms, "site-b")
	if err := ms.WaitForTM(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	id, err := ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage())
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.DeployTo(context.Background(), core.Anonymous, id, 1, "parsl", "site-a"); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var deployErrs []error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := ms.DeployTo(context.Background(), core.Anonymous, id, 1, "parsl", "site-a"); err != nil {
				deployErrs = append(deployErrs, err)
			}
		}
	}()
	if _, err := ms.DrainTM(context.Background(), "site-a"); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// Deploys that lost the race must have failed with conflict (the
	// draining check), never recorded.
	for _, derr := range deployErrs {
		if !errors.Is(derr, core.ErrConflict) {
			t.Fatalf("racing deploy failed with %v, want ErrConflict", derr)
		}
	}
	placed, err := ms.ServablePlacements(core.Anonymous, id)
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range placed {
		if tm == "site-a" {
			t.Fatalf("drained TM still placed after concurrent deploys: %v", placed)
		}
	}
	if len(deployErrs) == 0 {
		t.Log("no deploy lost the race this run (timing); invariant still verified via placements")
	}
}

// Per-placement undeploy shrinks placement without unpublishing.
func TestUndeployRemovesOnePlacement(t *testing.T) {
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms.Close()
	tmA := newSite(t, ms, "site-a")
	newSite(t, ms, "site-b")
	if err := ms.WaitForTM(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	id := deployNoopOn(t, ms, "site-a", "site-b")

	if err := ms.Undeploy(context.Background(), core.Anonymous, id, "site-a"); err != nil {
		t.Fatal(err)
	}
	placed, err := ms.ServablePlacements(core.Anonymous, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(placed) != 1 || placed[0] != "site-b" {
		t.Fatalf("placements after undeploy = %v, want [site-b]", placed)
	}
	// The servable is still published and still runs — on site-b only.
	doneA, _ := tmA.Stats()
	for i := 0; i < 4; i++ {
		if _, err := ms.Run(context.Background(), core.Anonymous, id, fmt.Sprintf("post-undeploy-%d", i), core.RunOptions{}); err != nil {
			t.Fatalf("run after undeploy: %v", err)
		}
	}
	if after, _ := tmA.Stats(); after != doneA {
		t.Fatal("undeployed site still served tasks")
	}
	// Undeploying a placement that does not exist is a not_found.
	if err := ms.Undeploy(context.Background(), core.Anonymous, id, "site-a"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("double undeploy: want ErrNotFound, got %v", err)
	}
}

// The v2 wire surface: drain + deregister + per-placement undeploy
// routes, placements on GET, draining list on /tms, failover counters
// in /stats.
func TestV2TMLifecycleRoutes(t *testing.T) {
	tb, srv := v2TB(t)
	id, err := tb.MS.Publish(context.Background(), core.Anonymous, servable.NoopPackage())
	if err != nil {
		t.Fatal(err)
	}
	// The testbed's single TM is "cooley-tm-1".
	if err := tb.MS.DeployTo(context.Background(), core.Anonymous, id, 1, "parsl", "cooley-tm-1"); err != nil {
		t.Fatal(err)
	}

	// GET servable exposes placements.
	resp, env := doV2(t, http.MethodGet, srv.URL+"/api/v2/servables/"+id, nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get status %d", resp.StatusCode)
	}
	var view struct {
		Placements []string `json:"placements"`
	}
	if err := json.Unmarshal(env.Data, &view); err != nil {
		t.Fatal(err)
	}
	if len(view.Placements) != 1 || view.Placements[0] != "cooley-tm-1" {
		t.Fatalf("placements on GET = %v", view.Placements)
	}

	// Undeploy the only placement via the wire route.
	resp, _ = doV2(t, http.MethodDelete, srv.URL+"/api/v2/servables/"+id+"/placements/cooley-tm-1", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("undeploy status %d", resp.StatusCode)
	}
	// Unknown placement now 404s.
	resp, env = doV2(t, http.MethodDelete, srv.URL+"/api/v2/servables/"+id+"/placements/cooley-tm-1", nil, nil)
	if resp.StatusCode != http.StatusNotFound || env.Error == nil || env.Error.Code != "not_found" {
		t.Fatalf("double undeploy: status %d env %+v", resp.StatusCode, env.Error)
	}

	// Drain the TM over the wire; it is the only site, and the servable
	// is now unplaced, so nothing migrates.
	resp, env = doV2(t, http.MethodPost, srv.URL+"/api/v2/tms/cooley-tm-1/drain", map[string]any{}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain status %d: %+v", resp.StatusCode, env.Error)
	}
	// The draining TM shows up in the fleet view.
	_, env = doV2(t, http.MethodGet, srv.URL+"/api/v2/tms", nil, nil)
	var tms struct {
		Draining []string `json:"draining"`
	}
	if err := json.Unmarshal(env.Data, &tms); err != nil {
		t.Fatal(err)
	}
	if len(tms.Draining) != 1 || tms.Draining[0] != "cooley-tm-1" {
		t.Fatalf("draining list = %v", tms.Draining)
	}

	// Stats expose the failover counter block.
	_, env = doV2(t, http.MethodGet, srv.URL+"/api/v2/stats", nil, nil)
	var stats struct {
		Failovers *core.FailoverStats `json:"failovers"`
	}
	if err := json.Unmarshal(env.Data, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Failovers == nil {
		t.Fatal("stats payload missing failovers block")
	}

	// Deregister over the wire; unknown TM afterwards is 503-coded
	// no_task_manager.
	resp, _ = doV2(t, http.MethodDelete, srv.URL+"/api/v2/tms/cooley-tm-1", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deregister status %d", resp.StatusCode)
	}
	resp, env = doV2(t, http.MethodDelete, srv.URL+"/api/v2/tms/cooley-tm-1", nil, nil)
	if resp.StatusCode != http.StatusServiceUnavailable || env.Error == nil || env.Error.Code != "no_task_manager" {
		t.Fatalf("double deregister: status %d env %+v", resp.StatusCode, env.Error)
	}
}

// Drain is sticky across heartbeats: the ack in the TM's registration
// re-asserts the mark, and a plain heartbeat never clears it.
func TestDrainSurvivesHeartbeats(t *testing.T) {
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms.Close()
	tmA := liveSite(t, ms, "site-a", 20*time.Millisecond)
	defer tmA.Close()
	newSite(t, ms, "site-b")
	if err := ms.WaitForTM(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := ms.DrainTM(context.Background(), "site-a"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // several heartbeats
	draining := ms.DrainingTMs()
	if len(draining) != 1 || draining[0] != "site-a" {
		t.Fatalf("drain mark lost across heartbeats: %v", draining)
	}
}

// Rejoin reverses a drain: the TM clears its drain acknowledgment, the
// service clears its mark, and the site takes deploys and traffic
// again.
func TestRejoinRestoresRouting(t *testing.T) {
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms.Close()
	tmA := newSite(t, ms, "site-a")
	newSite(t, ms, "site-b")
	if err := ms.WaitForTM(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	id := deployNoopOn(t, ms, "site-a", "site-b")

	if _, err := ms.DrainTM(context.Background(), "site-a"); err != nil {
		t.Fatal(err)
	}
	// Drained: deploys to the site are refused.
	if err := ms.DeployTo(context.Background(), core.Anonymous, id, 1, "parsl", "site-a"); !errors.Is(err, core.ErrConflict) {
		t.Fatalf("deploy to draining TM: err = %v, want ErrConflict", err)
	}

	if err := ms.RejoinTM(context.Background(), "site-a"); err != nil {
		t.Fatal(err)
	}
	if tmA.Draining() {
		t.Fatal("TM still reports draining after rejoin")
	}
	if draining := ms.DrainingTMs(); len(draining) != 0 {
		t.Fatalf("service still marks draining after rejoin: %v", draining)
	}
	// Let the drain's best-effort undeploy teardown land before
	// re-deploying, or it would wipe the fresh placement.
	doneBefore := awaitStatsSettled(t, tmA)
	// Rejoined: the site accepts placements and serves again.
	if err := ms.DeployTo(context.Background(), core.Anonymous, id, 1, "parsl", "site-a"); err != nil {
		t.Fatalf("deploy after rejoin: %v", err)
	}
	for i := 0; i < 8; i++ {
		if _, err := ms.Run(context.Background(), core.Anonymous, id, fmt.Sprintf("post-rejoin-%d", i), core.RunOptions{}); err != nil {
			t.Fatalf("run %d after rejoin: %v", i, err)
		}
	}
	if after, _ := tmA.Stats(); after == doneBefore {
		t.Fatal("rejoined TM served nothing")
	}
	// Rejoin is idempotent.
	if err := ms.RejoinTM(context.Background(), "site-a"); err != nil {
		t.Fatalf("second rejoin: %v", err)
	}
}

// A heartbeat marshaled BEFORE the TM acknowledged the rejoin still
// asserts Draining — set-only semantics would re-mark the TM forever.
// The rejoin grace window must swallow it, while a deliberate re-drain
// right after a rejoin must still stick.
func TestRejoinIgnoresStaleDrainingHeartbeat(t *testing.T) {
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms.Close()
	newSite(t, ms, "site-a")
	newSite(t, ms, "site-b")
	if err := ms.WaitForTM(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := ms.DrainTM(context.Background(), "site-a"); err != nil {
		t.Fatal(err)
	}
	if err := ms.RejoinTM(context.Background(), "site-a"); err != nil {
		t.Fatal(err)
	}

	// The stale in-flight heartbeat arrives after the rejoin ack.
	body, _ := json.Marshal(taskmanager.Registration{TMID: "site-a", Draining: true})
	ms.Broker().Push(taskmanager.RegisterQueue, body, "", "", "")
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		if len(ms.DrainingTMs()) != 0 {
			t.Fatalf("stale draining heartbeat re-marked a rejoined TM: %v", ms.DrainingTMs())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// A deliberate re-drain inside the grace window must still stick:
	// DrainTM clears the grace entry.
	if _, err := ms.DrainTM(context.Background(), "site-a"); err != nil {
		t.Fatal(err)
	}
	draining := ms.DrainingTMs()
	if len(draining) != 1 || draining[0] != "site-a" {
		t.Fatalf("re-drain after rejoin did not stick: %v", draining)
	}
}

// Rejoin requires a live, registered TM: unknown IDs error, and a TM
// that cannot acknowledge (dead) must not be un-marked.
func TestRejoinUnknownTM(t *testing.T) {
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms.Close()
	if err := ms.RejoinTM(context.Background(), "ghost"); !errors.Is(err, core.ErrNoTaskManager) {
		t.Fatalf("rejoin unknown TM: err = %v, want ErrNoTaskManager", err)
	}
}
