package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/k8s"
	"repro/internal/netsim"
	"repro/internal/servable"
	"repro/internal/taskmanager"
)

// Liveness: a Task Manager that stops heartbeating is dropped from
// routing; a live one keeps serving.

func liveSite(t *testing.T, ms *core.Service, tmID string, hb time.Duration) *taskmanager.TM {
	t.Helper()
	reg := container.NewRegistry()
	builder := container.NewBuilder(reg)
	rt := container.NewRuntime(reg)
	rt.RegisterProcess("dlhub-ipp-engine", executor.NewPodProcessFactory(true))
	cluster := k8s.NewCluster(rt, 2, k8s.Resources{MilliCPU: 32000, MemMB: 64 * 1024})
	parsl := executor.NewParsl(cluster, builder, netsim.Profile{})
	tm, err := taskmanager.New(taskmanager.Config{
		ID:                tmID,
		Queue:             taskmanager.BrokerAdapter{B: ms.Broker()},
		Executors:         map[string]executor.Executor{"parsl": parsl},
		HeartbeatInterval: hb,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestHeartbeatLivenessFiltering(t *testing.T) {
	ms := core.New(core.Config{
		Registry:     container.NewRegistry(),
		TMStaleAfter: 300 * time.Millisecond,
	})
	defer ms.Close()

	// Site A heartbeats fast; site B registers once and never again.
	tmA := liveSite(t, ms, "site-a", 50*time.Millisecond)
	defer tmA.Close()
	tmB := liveSite(t, ms, "site-b", 0)
	if err := ms.WaitForTM(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// Immediately after registration, both are live.
	if got := len(ms.LiveTaskManagers()); got != 2 {
		t.Fatalf("want 2 live TMs initially, got %d", got)
	}

	// Close site B (its initial registration goes stale).
	tmB.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if live := ms.LiveTaskManagers(); len(live) == 1 && live[0] == "site-a" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("site-b never went stale: live=%v", ms.LiveTaskManagers())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// New deploys + runs route only to the live site and succeed.
	id, err := ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage())
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Deploy(context.Background(), core.Anonymous, id, 1, "parsl"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := ms.Run(context.Background(), core.Anonymous, id, i, core.RunOptions{}); err != nil {
			t.Fatalf("run %d should route to the live site: %v", i, err)
		}
	}
	doneA, _ := tmA.Stats()
	if doneA == 0 {
		t.Fatal("live site should have served the load")
	}
}

func TestAllTMsStale(t *testing.T) {
	ms := core.New(core.Config{
		Registry:     container.NewRegistry(),
		TMStaleAfter: 100 * time.Millisecond,
	})
	defer ms.Close()
	tm := liveSite(t, ms, "only", 0)
	if err := ms.WaitForTM(1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	tm.Close()
	time.Sleep(250 * time.Millisecond)

	id, err := ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage())
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Deploy(context.Background(), core.Anonymous, id, 1, "parsl"); !errors.Is(err, core.ErrNoTaskManager) {
		t.Fatalf("all-stale should surface ErrNoTaskManager, got %v", err)
	}
}

func TestLivenessDisabledByDefault(t *testing.T) {
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms.Close()
	tm := liveSite(t, ms, "site", 0)
	defer tm.Close()
	if err := ms.WaitForTM(1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	// No staleness window configured: the TM stays routable forever.
	if got := len(ms.LiveTaskManagers()); got != 1 {
		t.Fatalf("liveness filtering should be off by default, got %d live", got)
	}
}
