package core

import (
	"context"
	"log"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/queue"
	"repro/internal/rpc"
)

// HTTP middleware shared by both API generations: every request gets a
// request ID (minted or propagated), per-route counters, optional
// access logging, and panic containment. The chain wraps the whole mux,
// so v1 compatibility routes inherit the same observability as /api/v2.

// RequestIDHeader carries the request correlation ID in both
// directions: clients may supply one, responses always echo it, and the
// v2 envelope repeats it in request_id.
const RequestIDHeader = "X-Request-ID"

type ctxKey int

const (
	ctxKeyRequestID ctxKey = iota
	ctxKeyTenant
)

// RequestIDFromContext returns the request's correlation ID ("" outside
// a request).
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// tenantHolder carries the resolved tenant tag outward to the access-log
// middleware: the holder is installed before routing, and the handler's
// caller resolution stamps it once the identity is known.
type tenantHolder struct{ tag string }

// stampTenant records the request's resolved tenant for the access log.
// A no-op when logging is off (no holder installed) or the tag is empty.
func stampTenant(ctx context.Context, tenant string) {
	if h, ok := ctx.Value(ctxKeyTenant).(*tenantHolder); ok && tenant != "" {
		h.tag = tenant
	}
}

// middleware assembles the chain: request-ID → access log → per-route
// metrics → panic recovery → mux.
func (s *Service) middleware(next http.Handler) http.Handler {
	return s.withRequestID(s.withAccessLog(s.withRouteMetrics(s.withRecovery(next))))
}

// statusWriter records the response status for logs and metrics while
// passing http.Flusher through — SSE streams flush through the chain.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Flush implements http.Flusher when the underlying writer does.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Service) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" || len(id) > 64 {
			id = queue.NewID()[:16]
		}
		w.Header().Set(RequestIDHeader, id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ctxKeyRequestID, id)))
	})
}

func (s *Service) withAccessLog(next http.Handler) http.Handler {
	if !s.cfg.LogRequests {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		hold := &tenantHolder{}
		r = r.WithContext(context.WithValue(r.Context(), ctxKeyTenant, hold))
		next.ServeHTTP(sw, r)
		// The tenant field appears only when a tenant resolved, so
		// anonymous traffic logs the exact pre-tenancy line.
		tenant := ""
		if hold.tag != "" {
			tenant = " tenant=" + hold.tag
		}
		log.Printf("http %s %s -> %d (%s) rid=%s%s",
			r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond),
			RequestIDFromContext(r.Context()), tenant)
	})
}

// RouteStat is a snapshot of one route pattern's counters.
type RouteStat struct {
	Requests    uint64 `json:"requests"`
	Errors      uint64 `json:"errors"` // responses with status >= 400
	TotalMicros int64  `json:"total_us"`
}

type routeStat struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	totalUS  atomic.Int64
}

func (s *Service) withRouteMetrics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		// The mux pattern ("POST /api/v2/.../run") keys the counter so
		// path parameters do not explode cardinality; unmatched
		// requests aggregate under the method alone.
		route := r.Pattern
		if route == "" {
			route = r.Method + " (unmatched)"
		}
		st := s.routeStat(route)
		st.requests.Add(1)
		if sw.status >= 400 {
			st.errors.Add(1)
		}
		st.totalUS.Add(time.Since(start).Microseconds())
	})
}

func (s *Service) routeStat(route string) *routeStat {
	s.routeMu.Lock()
	defer s.routeMu.Unlock()
	if s.routeStats == nil {
		s.routeStats = make(map[string]*routeStat)
	}
	st, ok := s.routeStats[route]
	if !ok {
		st = &routeStat{}
		s.routeStats[route] = st
	}
	return st
}

// RouteStats snapshots the per-route request counters, keyed by mux
// pattern, exposed at GET /api/v2/stats.
func (s *Service) RouteStats() map[string]RouteStat {
	s.routeMu.Lock()
	defer s.routeMu.Unlock()
	out := make(map[string]RouteStat, len(s.routeStats))
	for route, st := range s.routeStats {
		out[route] = RouteStat{
			Requests:    st.requests.Load(),
			Errors:      st.errors.Load(),
			TotalMicros: st.totalUS.Load(),
		}
	}
	return out
}

func (s *Service) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if rec := recover(); rec != nil {
				log.Printf("http panic on %s %s: %v (rid=%s)", r.Method, r.URL.Path, rec, RequestIDFromContext(r.Context()))
				if sw.status == 0 {
					// Keep each generation's error shape: enveloped
					// with a code on /api/v2, bare {"error": ...} on v1.
					if strings.HasPrefix(r.URL.Path, "/api/v2/") {
						writeV2Error(sw, r, ErrInternal)
					} else {
						rpc.WriteError(sw, http.StatusInternalServerError, "internal error")
					}
				}
			}
		}()
		next.ServeHTTP(sw, r)
	})
}
