package core_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/k8s"
	"repro/internal/netsim"
	"repro/internal/servable"
	"repro/internal/taskmanager"
)

// newSite builds one "site": a mini cluster with a Parsl executor,
// attached to the shared broker as a Task Manager.
func newSite(t *testing.T, ms *core.Service, tmID string) *taskmanager.TM {
	t.Helper()
	reg := container.NewRegistry()
	builder := container.NewBuilder(reg)
	rt := container.NewRuntime(reg)
	rt.RegisterProcess("dlhub-ipp-engine", executor.NewPodProcessFactory(true))
	cluster := k8s.NewCluster(rt, 2, k8s.Resources{MilliCPU: 32000, MemMB: 64 * 1024})
	parsl := executor.NewParsl(cluster, builder, netsim.Profile{})
	tm, err := taskmanager.New(taskmanager.Config{
		ID:        tmID,
		Queue:     taskmanager.BrokerAdapter{B: ms.Broker()},
		Executors: map[string]executor.Executor{"parsl": parsl},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tm.Close)
	return tm
}

// The paper's architecture has "one or more Task Managers" (§IV). With
// two sites registered, deploys must pin a servable to one site and
// runs must route only to sites hosting it.
func TestMultiTaskManagerRouting(t *testing.T) {
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms.Close()
	tmA := newSite(t, ms, "site-a")
	tmB := newSite(t, ms, "site-b")
	if err := ms.WaitForTM(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(ms.TaskManagers()); got != 2 {
		t.Fatalf("want 2 TMs, got %d", got)
	}

	// Publish two servables; placement-aware routing deploys them
	// round-robin across the sites.
	idNoop, err := ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage())
	if err != nil {
		t.Fatal(err)
	}
	utilPkg := servable.MatminerUtilPackage()
	idUtil, err := ms.Publish(context.Background(), core.Anonymous, utilPkg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Deploy(context.Background(), core.Anonymous, idNoop, 1, "parsl"); err != nil {
		t.Fatal(err)
	}
	if err := ms.Deploy(context.Background(), core.Anonymous, idUtil, 1, "parsl"); err != nil {
		t.Fatal(err)
	}

	// Every run must succeed: requests are routed to the hosting TM,
	// never blindly round-robined to a site without the servable.
	for i := 0; i < 10; i++ {
		if _, err := ms.Run(context.Background(), core.Anonymous, idNoop, i, core.RunOptions{}); err != nil {
			t.Fatalf("noop run %d misrouted: %v", i, err)
		}
		if _, err := ms.Run(context.Background(), core.Anonymous, idUtil, "NaCl", core.RunOptions{}); err != nil {
			t.Fatalf("util run %d misrouted: %v", i, err)
		}
	}

	// Work went to both sites (two servables, two sites, round-robin
	// deploy placement).
	doneA, _ := tmA.Stats()
	doneB, _ := tmB.Stats()
	if doneA == 0 || doneB == 0 {
		t.Fatalf("load should span both sites: site-a=%d site-b=%d", doneA, doneB)
	}
}

func TestDeployToBothSites(t *testing.T) {
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms.Close()
	tmA := newSite(t, ms, "site-a")
	tmB := newSite(t, ms, "site-b")
	if err := ms.WaitForTM(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	id, err := ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage())
	if err != nil {
		t.Fatal(err)
	}
	// Deploying twice places the servable on one site, then re-deploys
	// route to the same site (sticky placement).
	if err := ms.Deploy(context.Background(), core.Anonymous, id, 1, "parsl"); err != nil {
		t.Fatal(err)
	}
	if err := ms.Deploy(context.Background(), core.Anonymous, id, 2, "parsl"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := ms.Run(context.Background(), core.Anonymous, id, i, core.RunOptions{}); err != nil {
			t.Fatalf("run %d failed: %v", i, err)
		}
	}
	doneA, _ := tmA.Stats()
	doneB, _ := tmB.Stats()
	// All runs land on the placement site; exactly one site served them.
	if doneA > 0 && doneB > 0 {
		// Both saw deploy tasks at most; runs must be on one site only.
		if doneA > 2 && doneB > 2 {
			t.Fatalf("runs leaked to both sites: a=%d b=%d", doneA, doneB)
		}
	}
}
