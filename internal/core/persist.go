package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/auth"
	"repro/internal/schema"
	"repro/internal/search"
	"repro/internal/servable"
)

// Repository persistence: the DLHub service is long-lived — published
// models must survive restarts. This file is the checkpoint CODEC: it
// serializes/restores whole repository state. It serves two callers
// with the same format:
//
//   - SaveSnapshot/LoadSnapshot — the standalone snapshot mode
//     (-snapshot): whole-state gob written on shutdown, loaded on boot.
//   - writeSnapshot/restoreSnapshot — the internal/store checkpoint
//     hooks: the WAL compacts its record tail into exactly this gob,
//     and recovery restores it before replaying the tail (durable.go).
//
// The file name is shared (repository.gob), so a directory written by
// snapshot-only mode upgrades in place to a WAL -data-dir.

// snapshot is the serialized repository state. New fields decode as
// their zero value from older snapshots (gob skips missing fields), so
// extending it is backward compatible.
type snapshot struct {
	Docs       map[string]*schema.Document
	Versions   map[string][]*schema.Document
	Components map[string]map[string][]byte
	Placements map[string][]string
	// Replicas is the desired replica count per servable (Deploy/Scale
	// outcome) — the autoscaler's notion of current scale.
	Replicas map[string]int
	// Draining lists TMs whose drain mark must survive a restart: a
	// site mid-drain stays out of rotation when it re-registers.
	Draining []string
	// Policies are the installed autoscale policies.
	Policies map[string]AutoscalePolicy
	// Tenants and Bindings persist the tenant registry — quota specs
	// and identity→tenant mappings — so fairness policy survives a
	// restart; Users persists registered accounts (credential hashes
	// only) so operators and clients can log back in after recovery.
	// All three decode as nil from pre-tenancy snapshots.
	Tenants  []auth.Tenant
	Bindings map[string]string
	Users    map[string]userRecord
}

// captureSnapshot deep-copies repository state for serialization.
// Documents are copied under the repository lock: the encoder runs
// after RUnlock, and serializing live *schema.Document pointers there
// would race UpdateMetadata mutating them concurrently. Autoscale
// policies are collected FIRST, outside s.mu — the scaler's status path
// acquires its own lock before s.mu, so nesting s.mu → scaler.mu here
// would invert that order. The tenant registry and user table are
// collected outside s.mu too (each has its own lock and no s.mu
// nesting), with the same mutation-then-append guarantee as drain
// marks: a quota the snapshot misses still has its record in the tail.
//
// The routing slice (placements/replicas/draining) is captured while
// s.mu is still held for reading: every durable routing mutation
// (recordDeployment, recordReplicas, Unpublish, replay) nests its
// routing write under s.mu, so holding s.mu read-side here gives the
// checkpoint the same repository-vs-routing consistency the monolithic
// lock did. Drain/rejoin marks mutate outside s.mu, but each is
// logged() AFTER its in-memory mutation, and the checkpoint hook
// blocks appends — a mark the snapshot misses still has its record
// replayed from the tail.
func (s *Service) captureSnapshot() snapshot {
	policies := s.scaler.policies()
	tenants, bindings := s.tenants.Snapshot()
	users := s.snapshotUsers()
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := snapshot{
		Docs:       make(map[string]*schema.Document, len(s.docs)),
		Versions:   make(map[string][]*schema.Document, len(s.versions)),
		Components: make(map[string]map[string][]byte, len(s.packages)),
		Policies:   policies,
		Tenants:    tenants,
		Bindings:   bindings,
		Users:      users,
	}
	for id, doc := range s.docs {
		snap.Docs[id] = doc.Clone()
	}
	for id, vs := range s.versions {
		cp := make([]*schema.Document, len(vs))
		for i, doc := range vs {
			cp[i] = doc.Clone()
		}
		snap.Versions[id] = cp
	}
	for id, pkg := range s.packages {
		// Component payloads are immutable after publish; copying the
		// map itself is enough to decouple from later republications.
		comps := make(map[string][]byte, len(pkg.Components))
		for name, data := range pkg.Components {
			comps[name] = data
		}
		snap.Components[id] = comps
	}
	snap.Placements, snap.Replicas, snap.Draining = s.route.routeSnapshot()
	return snap
}

// writeSnapshot serializes the repository to w — the store checkpoint
// hook (registered via store.SetCheckpointer). The WAL calls it with
// its own lock held while appends are blocked, so the state written
// provably includes every record about to be truncated; it must
// therefore never call store.Append (deadlock) — it only reads.
func (s *Service) writeSnapshot(w io.Writer) error {
	snap := s.captureSnapshot()
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("core: snapshot encode: %w", err)
	}
	return nil
}

// SaveSnapshot writes the repository to dir/repository.gob atomically
// and durably: the temp file is fsynced before the rename and the
// directory fsynced after it, so a crash at any point leaves either the
// old complete snapshot or the new complete one — never a torn or
// unlinked file.
func (s *Service) SaveSnapshot(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "repository-*.gob.tmp")
	if err != nil {
		return err
	}
	werr := s.writeSnapshot(tmp)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name()) //nolint:errcheck
		return werr
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, "repository.gob")); err != nil {
		os.Remove(tmp.Name()) //nolint:errcheck
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory, making a just-renamed file's directory
// entry durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// restoreSnapshot decodes a snapshot from r and installs it, replacing
// current repository state. Restored placements are kept verbatim — at
// the usual boot-time restore no TM has registered yet, so filtering
// here would drop every placement; instead pickTM ignores placement
// entries naming unregistered TMs at routing time, which both survives
// the boot ordering (a TM re-registering under its old ID gets its
// placements back) and never routes a request into a ghost TM's queue.
//
// The search index and result cache are NOT touched here: restore can
// be followed by WAL replay (durable.go), and rebuilding per record
// would be quadratic. Callers finish with finishRestore.
func (s *Service) restoreSnapshot(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("core: snapshot decode: %w", err)
	}

	s.mu.Lock()
	s.docs = make(map[string]*schema.Document, len(snap.Docs))
	s.versions = make(map[string][]*schema.Document, len(snap.Versions))
	s.packages = make(map[string]*servable.Package, len(snap.Components))
	for id, doc := range snap.Docs {
		s.docs[id] = doc
	}
	for id, vs := range snap.Versions {
		s.versions[id] = vs
	}
	for id, comps := range snap.Components {
		s.packages[id] = &servable.Package{Doc: snap.Docs[id], Components: comps}
	}
	// Routing state is installed while s.mu is still held, mirroring
	// the nesting every durable routing mutation uses (see routing.go).
	s.route.restore(snap.Placements, snap.Replicas, snap.Draining)
	s.mu.Unlock()

	for id, p := range snap.Policies {
		if err := s.scaler.setPolicy(id, p); err != nil {
			// A policy that validated when set cannot fail now; guard
			// against a hand-edited snapshot without aborting the boot.
			return fmt.Errorf("core: snapshot policy %s: %w", id, err)
		}
	}
	// Tenancy & identity: tenants install before bindings (Bind would
	// otherwise auto-create a record and lose the HasQuota flag), and
	// every restored quota re-pushes its broker lane weight exactly as
	// SetTenantQuota did originally.
	for _, t := range snap.Tenants {
		s.tenants.Install(t)
		s.broker.SetLaneWeight(t.ID, auth.PriorityWeight(t.Quota.Priority))
	}
	for id, tid := range snap.Bindings {
		s.tenants.Bind(id, tid)
	}
	for _, u := range snap.Users {
		s.installUser(u)
	}
	return nil
}

// finishRestore rebuilds the derived state a restore+replay leaves
// stale: the search index is rebuilt from scratch (entries for
// servables published before the load must not survive it) and the
// result cache is flushed (generation bump), so no pre-load cached
// result survives into the restored repository's world.
func (s *Service) finishRestore() {
	s.mu.RLock()
	docs := make([]*schema.Document, 0, len(s.docs))
	for _, doc := range s.docs {
		docs = append(docs, doc)
	}
	s.mu.RUnlock()
	s.index.Reset()
	for _, doc := range docs {
		s.index.Ingest(search.Doc{
			ID:        doc.ID,
			Fields:    schema.Flatten(doc),
			VisibleTo: doc.Publication.VisibleTo,
		})
	}
	// Cached results predate the restored repository; the flush also
	// bumps the cache epoch so in-flight computations from the old
	// world cannot write back after the load.
	s.FlushCache()
}

// LoadSnapshot restores a repository saved by SaveSnapshot, replacing
// current state and rebuilding the search index.
func (s *Service) LoadSnapshot(dir string) error {
	f, err := os.Open(filepath.Join(dir, "repository.gob"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.restoreSnapshot(f); err != nil {
		return err
	}
	s.finishRestore()
	return nil
}
