package core

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/schema"
	"repro/internal/search"
	"repro/internal/servable"
)

// Repository persistence: the DLHub service is long-lived — published
// models must survive restarts. Snapshot captures the repository state
// (documents, versions, uploaded components, TM placements); Load
// restores it and rebuilds the search index. The gob file is the
// single-node stand-in for the hosted service's backing store.

// snapshot is the serialized repository state.
type snapshot struct {
	Docs       map[string]*schema.Document
	Versions   map[string][]*schema.Document
	Components map[string]map[string][]byte
	Placements map[string][]string
}

// SaveSnapshot writes the repository to dir/repository.gob atomically.
// Documents are deep-copied under the repository lock: the encoder runs
// after RUnlock, and serializing live *schema.Document pointers there
// would race UpdateMetadata mutating them concurrently.
func (s *Service) SaveSnapshot(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	s.mu.RLock()
	snap := snapshot{
		Docs:       make(map[string]*schema.Document, len(s.docs)),
		Versions:   make(map[string][]*schema.Document, len(s.versions)),
		Components: make(map[string]map[string][]byte, len(s.packages)),
		Placements: make(map[string][]string, len(s.placements)),
	}
	for id, doc := range s.docs {
		snap.Docs[id] = doc.Clone()
	}
	for id, vs := range s.versions {
		cp := make([]*schema.Document, len(vs))
		for i, doc := range vs {
			cp[i] = doc.Clone()
		}
		snap.Versions[id] = cp
	}
	for id, pkg := range s.packages {
		// Component payloads are immutable after publish; copying the
		// map itself is enough to decouple from later republications.
		comps := make(map[string][]byte, len(pkg.Components))
		for name, data := range pkg.Components {
			comps[name] = data
		}
		snap.Components[id] = comps
	}
	for id, tms := range s.placements {
		snap.Placements[id] = append([]string(nil), tms...)
	}
	s.mu.RUnlock()

	tmp, err := os.CreateTemp(dir, "repository-*.gob.tmp")
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(tmp).Encode(snap); err != nil {
		tmp.Close()
		os.Remove(tmp.Name()) //nolint:errcheck
		return fmt.Errorf("core: snapshot encode: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, "repository.gob"))
}

// LoadSnapshot restores a repository saved by SaveSnapshot, replacing
// current state and rebuilding the search index from scratch (the
// index is reset first, so loading over a non-empty service leaves no
// stale or duplicate entries). Restored placements are kept verbatim —
// at the usual boot-time restore no TM has registered yet, so
// filtering here would drop every placement; instead pickTM ignores
// placement entries naming unregistered TMs at routing time, which
// both survives the boot ordering (a TM re-registering under its old
// ID gets its placements back) and never routes a request into a
// ghost TM's queue. The result cache is flushed (generation bump), so
// no pre-load cached result survives into the restored repository's
// world.
func (s *Service) LoadSnapshot(dir string) error {
	f, err := os.Open(filepath.Join(dir, "repository.gob"))
	if err != nil {
		return err
	}
	defer f.Close()
	var snap snapshot
	if err := gob.NewDecoder(f).Decode(&snap); err != nil {
		return fmt.Errorf("core: snapshot decode: %w", err)
	}

	s.mu.Lock()
	s.docs = make(map[string]*schema.Document, len(snap.Docs))
	s.versions = make(map[string][]*schema.Document, len(snap.Versions))
	s.packages = make(map[string]*servable.Package, len(snap.Components))
	s.placements = make(map[string][]string, len(snap.Placements))
	for id, doc := range snap.Docs {
		s.docs[id] = doc
	}
	for id, vs := range snap.Versions {
		s.versions[id] = vs
	}
	for id, comps := range snap.Components {
		s.packages[id] = &servable.Package{Doc: snap.Docs[id], Components: comps}
	}
	for id, tms := range snap.Placements {
		s.placements[id] = tms
	}
	docs := make([]*schema.Document, 0, len(s.docs))
	for _, doc := range s.docs {
		docs = append(docs, doc)
	}
	s.mu.Unlock()

	// Rebuild the index outside the lock, from empty: entries for
	// servables published before the load must not survive it.
	s.index.Reset()
	for _, doc := range docs {
		s.index.Ingest(search.Doc{
			ID:        doc.ID,
			Fields:    schema.Flatten(doc),
			VisibleTo: doc.Publication.VisibleTo,
		})
	}
	// Cached results predate the restored repository; the flush also
	// bumps the cache epoch so in-flight computations from the old
	// world cannot write back after the load.
	s.FlushCache()
	return nil
}
