package core

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/schema"
	"repro/internal/search"
	"repro/internal/servable"
)

// Repository persistence: the DLHub service is long-lived — published
// models must survive restarts. Snapshot captures the repository state
// (documents, versions, uploaded components, TM placements); Load
// restores it and rebuilds the search index. The gob file is the
// single-node stand-in for the hosted service's backing store.

// snapshot is the serialized repository state.
type snapshot struct {
	Docs       map[string]*schema.Document
	Versions   map[string][]*schema.Document
	Components map[string]map[string][]byte
	Placements map[string][]string
}

// SaveSnapshot writes the repository to dir/repository.gob atomically.
func (s *Service) SaveSnapshot(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	s.mu.RLock()
	snap := snapshot{
		Docs:       make(map[string]*schema.Document, len(s.docs)),
		Versions:   make(map[string][]*schema.Document, len(s.versions)),
		Components: make(map[string]map[string][]byte, len(s.packages)),
		Placements: make(map[string][]string, len(s.placements)),
	}
	for id, doc := range s.docs {
		snap.Docs[id] = doc
	}
	for id, vs := range s.versions {
		snap.Versions[id] = append([]*schema.Document(nil), vs...)
	}
	for id, pkg := range s.packages {
		snap.Components[id] = pkg.Components
	}
	for id, tms := range s.placements {
		snap.Placements[id] = append([]string(nil), tms...)
	}
	s.mu.RUnlock()

	tmp, err := os.CreateTemp(dir, "repository-*.gob.tmp")
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(tmp).Encode(snap); err != nil {
		tmp.Close()
		os.Remove(tmp.Name()) //nolint:errcheck
		return fmt.Errorf("core: snapshot encode: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, "repository.gob"))
}

// LoadSnapshot restores a repository saved by SaveSnapshot, replacing
// current state and rebuilding the search index.
func (s *Service) LoadSnapshot(dir string) error {
	f, err := os.Open(filepath.Join(dir, "repository.gob"))
	if err != nil {
		return err
	}
	defer f.Close()
	var snap snapshot
	if err := gob.NewDecoder(f).Decode(&snap); err != nil {
		return fmt.Errorf("core: snapshot decode: %w", err)
	}

	s.mu.Lock()
	s.docs = make(map[string]*schema.Document, len(snap.Docs))
	s.versions = make(map[string][]*schema.Document, len(snap.Versions))
	s.packages = make(map[string]*servable.Package, len(snap.Components))
	s.placements = make(map[string][]string, len(snap.Placements))
	for id, doc := range snap.Docs {
		s.docs[id] = doc
	}
	for id, vs := range snap.Versions {
		s.versions[id] = vs
	}
	for id, comps := range snap.Components {
		s.packages[id] = &servable.Package{Doc: snap.Docs[id], Components: comps}
	}
	for id, tms := range snap.Placements {
		s.placements[id] = tms
	}
	docs := make([]*schema.Document, 0, len(s.docs))
	for _, doc := range s.docs {
		docs = append(docs, doc)
	}
	s.mu.Unlock()

	// Rebuild the index outside the lock.
	for _, doc := range docs {
		s.index.Ingest(search.Doc{
			ID:        doc.ID,
			Fields:    schema.Flatten(doc),
			VisibleTo: doc.Publication.VisibleTo,
		})
	}
	return nil
}
