package core_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/search"
	"repro/internal/servable"
)

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()

	// Populate a service: two servables, one with two versions and
	// components.
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	cifar, err := servable.CIFAR10Package(1)
	if err != nil {
		t.Fatal(err)
	}
	id1, err := ms.Publish(context.Background(), core.Anonymous, cifar)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage()); err != nil {
		t.Fatal(err)
	}
	cifar2, _ := servable.CIFAR10Package(2)
	if _, err := ms.Publish(context.Background(), core.Anonymous, cifar2); err != nil { // version 2
		t.Fatal(err)
	}
	if err := ms.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	ms.Close()

	// A fresh service restores everything.
	ms2 := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms2.Close()
	if err := ms2.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	doc, err := ms2.Get(core.Anonymous, id1)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Version != 2 {
		t.Fatalf("latest version lost: %d", doc.Version)
	}
	versions, err := ms2.Versions(core.Anonymous, id1)
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 2 {
		t.Fatalf("version history lost: %d", len(versions))
	}
	// Search index rebuilt.
	res, _ := ms2.Search(context.Background(), core.Anonymous, search.Query{Must: []search.Clause{{FreeText: "cifar convolutional"}}})
	if res.Total != 1 {
		t.Fatalf("index not rebuilt: %d hits", res.Total)
	}
}

func TestSnapshotServesAfterRestore(t *testing.T) {
	dir := t.TempDir()
	// Save from one deployment...
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	id, err := ms.Publish(context.Background(), core.Anonymous, servable.MatminerUtilPackage())
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	ms.Close()

	// ...restore into a full testbed and serve the restored servable.
	tb, err := bench.NewTestbed(bench.Options{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if err := tb.MS.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	// The package (components included) survived, so deploy works.
	if err := tb.MS.Deploy(context.Background(), core.Anonymous, id, 1, "parsl"); err != nil {
		t.Fatal(err)
	}
	res, err := tb.MS.Run(context.Background(), core.Anonymous, id, "NaCl", core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m := res.Output.(map[string]any); len(m) != 2 {
		t.Fatalf("restored servable broken: %v", m)
	}
}

func TestLoadSnapshotErrors(t *testing.T) {
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms.Close()
	if err := ms.LoadSnapshot(t.TempDir()); err == nil {
		t.Fatal("missing snapshot should error")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "repository.gob"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ms.LoadSnapshot(dir); err == nil {
		t.Fatal("corrupt snapshot should error")
	}
}

func TestSnapshotAtomicNoTempLeftovers(t *testing.T) {
	dir := t.TempDir()
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms.Close()
	ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage()) //nolint:errcheck
	if err := ms.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "repository.gob" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("temp files left behind: %v", names)
	}
}
