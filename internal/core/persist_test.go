package core_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/search"
	"repro/internal/servable"
)

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()

	// Populate a service: two servables, one with two versions and
	// components.
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	cifar, err := servable.CIFAR10Package(1)
	if err != nil {
		t.Fatal(err)
	}
	id1, err := ms.Publish(context.Background(), core.Anonymous, cifar)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage()); err != nil {
		t.Fatal(err)
	}
	cifar2, _ := servable.CIFAR10Package(2)
	if _, err := ms.Publish(context.Background(), core.Anonymous, cifar2); err != nil { // version 2
		t.Fatal(err)
	}
	if err := ms.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	ms.Close()

	// A fresh service restores everything.
	ms2 := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms2.Close()
	if err := ms2.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	doc, err := ms2.Get(core.Anonymous, id1)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Version != 2 {
		t.Fatalf("latest version lost: %d", doc.Version)
	}
	versions, err := ms2.Versions(core.Anonymous, id1)
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 2 {
		t.Fatalf("version history lost: %d", len(versions))
	}
	// Search index rebuilt.
	res, _ := ms2.Search(context.Background(), core.Anonymous, search.Query{Must: []search.Clause{{FreeText: "cifar convolutional"}}})
	if res.Total != 1 {
		t.Fatalf("index not rebuilt: %d hits", res.Total)
	}
}

func TestSnapshotServesAfterRestore(t *testing.T) {
	dir := t.TempDir()
	// Save from one deployment...
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	id, err := ms.Publish(context.Background(), core.Anonymous, servable.MatminerUtilPackage())
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	ms.Close()

	// ...restore into a full testbed and serve the restored servable.
	tb, err := bench.NewTestbed(bench.Options{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if err := tb.MS.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	// The package (components included) survived, so deploy works.
	if err := tb.MS.Deploy(context.Background(), core.Anonymous, id, 1, "parsl"); err != nil {
		t.Fatal(err)
	}
	res, err := tb.MS.Run(context.Background(), core.Anonymous, id, "NaCl", core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m := res.Output.(map[string]any); len(m) != 2 {
		t.Fatalf("restored servable broken: %v", m)
	}
}

// TestLoadSnapshotOverNonEmptyService pins the restore-over-live-state
// contract: the search index is rebuilt from scratch (no entries
// surviving for servables absent from the snapshot, no duplicates),
// restored placements naming unknown TMs are dropped, and the result
// cache is emptied.
func TestLoadSnapshotOverNonEmptyService(t *testing.T) {
	dir := t.TempDir()

	// Build the snapshot in a full testbed so a placement is recorded
	// (Deploy routes to the registered TM and remembers the site).
	tb, err := bench.NewTestbed(bench.Options{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	utilID, err := tb.MS.Publish(context.Background(), core.Anonymous, servable.MatminerUtilPackage())
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.MS.Deploy(context.Background(), core.Anonymous, utilID, 1, "parsl"); err != nil {
		t.Fatal(err)
	}
	if got := tb.MS.Placements()[utilID]; len(got) != 1 {
		t.Fatalf("testbed deploy recorded no placement: %v", got)
	}
	if err := tb.MS.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}

	// The target service is NOT empty: it has its own publication (not
	// in the snapshot), a warm cache entry would live here too.
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms.Close()
	if _, err := ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage()); err != nil {
		t.Fatal(err)
	}
	if err := ms.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}

	// The pre-load publication is gone from the repository AND from the
	// index: a search for it must find nothing, not a ghost hit.
	res, _ := ms.Search(context.Background(), core.Anonymous, search.Query{Must: []search.Clause{{FreeText: "noop baseline"}}})
	if res.Total != 0 {
		t.Fatalf("stale index entry survived the load: %d hits", res.Total)
	}
	// The restored publication is indexed exactly once.
	res, _ = ms.Search(context.Background(), core.Anonymous, search.Query{})
	if res.Total != 1 {
		t.Fatalf("index should hold exactly the snapshot's 1 doc, got %d", res.Total)
	}
	// Placements are restored verbatim: at boot-time restore no TM has
	// registered yet, so dropping unknown-TM placements here would drop
	// everything on every restart. Routing (pickTM) is what ignores
	// placements naming unregistered TMs — see the ghost-routing test.
	if got := ms.Placements()[utilID]; len(got) != 1 {
		t.Fatalf("restored placement lost: %v", got)
	}
	// Loading into a service that DOES know the TM keeps the placement
	// usable end to end.
	tb2, err := bench.NewTestbed(bench.Options{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer tb2.Close()
	if err := tb2.MS.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	if got := tb2.MS.Placements()[utilID]; len(got) != 1 {
		t.Fatalf("valid placement dropped: %v", got)
	}
}

// TestRestoredGhostPlacementDoesNotBlackHole pins the routing half of
// the stale-placement fix: a snapshot placement naming a TM that no
// longer exists must not route requests into the ghost's queue (they
// would hang until the full task timeout). Routing falls back to the
// registered TMs, which answer fast — here with task_failed, because
// the fresh site never deployed the servable.
func TestRestoredGhostPlacementDoesNotBlackHole(t *testing.T) {
	dir := t.TempDir()
	tb, err := bench.NewTestbed(bench.Options{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	utilID, err := tb.MS.Publish(context.Background(), core.Anonymous, servable.MatminerUtilPackage())
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.MS.Deploy(context.Background(), core.Anonymous, utilID, 1, "parsl"); err != nil {
		t.Fatal(err)
	}
	if err := tb.MS.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	tb.Close() // "cooley-tm-1" is now a ghost

	ms := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms.Close()
	newSite(t, ms, "fresh-tm")
	if err := ms.WaitForTM(1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := ms.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	// The placement names cooley-tm-1 (unregistered); the run must be
	// routed to fresh-tm and fail fast with task_failed — NOT sit out
	// the deadline in a queue nobody consumes.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	_, err = ms.Run(ctx, core.Anonymous, utilID, "NaCl", core.RunOptions{})
	if !errors.Is(err, core.ErrTaskFailed) {
		t.Fatalf("want fast task_failed from the live TM, got %v after %v", err, time.Since(start))
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("run took %v — routed into the ghost queue", time.Since(start))
	}
}

// TestLoadSnapshotFlushesCache pins that cached results from before the
// load cannot be served after it.
func TestLoadSnapshotFlushesCache(t *testing.T) {
	dir := t.TempDir()
	seed := core.New(core.Config{Registry: container.NewRegistry()})
	if _, err := seed.Publish(context.Background(), core.Anonymous, servable.MatminerUtilPackage()); err != nil {
		t.Fatal(err)
	}
	if err := seed.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	tb, err := bench.NewTestbed(bench.Options{Nodes: 4, ServiceCache: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	id, err := tb.MS.Publish(context.Background(), core.Anonymous, servable.MatminerUtilPackage())
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.MS.Deploy(context.Background(), core.Anonymous, id, 1, "parsl"); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.MS.Run(context.Background(), core.Anonymous, id, "NaCl", core.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if st := tb.MS.CacheStats(); st.Entries == 0 {
		t.Fatal("setup: expected a warm cache entry")
	}
	if err := tb.MS.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	if st := tb.MS.CacheStats(); st.Entries != 0 {
		t.Fatalf("cache entries survived the load: %+v", st)
	}
}

// TestSaveSnapshotConcurrentMetadataUpdates races SaveSnapshot against
// UpdateMetadata; under -race this pins the deep-copy-under-lock fix
// (the encoder must never serialize a document being mutated).
func TestSaveSnapshotConcurrentMetadataUpdates(t *testing.T) {
	dir := t.TempDir()
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms.Close()
	id, err := ms.Publish(context.Background(), core.Anonymous, servable.MatminerUtilPackage())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			err := ms.UpdateMetadata(core.Anonymous, id, func(p *schema.Publication) {
				p.Description = fmt.Sprintf("rev %d", i)
				p.VisibleTo = []string{"public", fmt.Sprintf("group-%d", i)}
			})
			if err != nil {
				t.Errorf("update: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		if err := ms.SaveSnapshot(dir); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	<-done
	// The last snapshot must still round-trip.
	ms2 := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms2.Close()
	if err := ms2.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := ms2.Get(core.Anonymous, id); err != nil {
		t.Fatal(err)
	}
}

func TestLoadSnapshotErrors(t *testing.T) {
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms.Close()
	if err := ms.LoadSnapshot(t.TempDir()); err == nil {
		t.Fatal("missing snapshot should error")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "repository.gob"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ms.LoadSnapshot(dir); err == nil {
		t.Fatal("corrupt snapshot should error")
	}
}

func TestSnapshotAtomicNoTempLeftovers(t *testing.T) {
	dir := t.TempDir()
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms.Close()
	ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage()) //nolint:errcheck
	if err := ms.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "repository.gob" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("temp files left behind: %v", names)
	}
}
