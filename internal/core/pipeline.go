package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/queue"
	"repro/internal/schema"
	"repro/internal/taskmanager"
)

// Pipeline execution. The paper lets users "construct pipelines" of
// published servables (§VI-D) and the original implementation shipped
// the whole step chain to one Task Manager for server-side chaining —
// which only works when every step happens to be deployed at that one
// site, bypasses the service-layer result cache, and charges all
// demand to the first step.
//
// The service now orchestrates pipelines itself. Each step is routed
// independently through pickTM (placement + least-outstanding load for
// THAT step), its output feeds the next step's input, and every step
// participates in the result cache and in admission/demand accounting
// under its OWN servable ID — an autoscale policy on an individual
// step sees pipeline traffic, and a hot prefix of unchanged steps is
// served from cache without dispatching anything. The TM-local
// monolith remains as an explicit fast path, taken only when every
// step is live on a single TM: one queue round trip instead of N, at
// the cost of skipping the per-step cache.
//
// Cache contract: step entries use the same (stepID, version, "run",
// input) key space as plain Runs, so pipeline prefixes and direct
// invocations share entries, and republishing a step invalidates only
// that step's entries (the version in the key misses anyway; the
// Publish hook drops them eagerly).

// runPipeline executes a published pipeline: the TM-local monolith
// when every step is co-deployed on one live TM, the per-step
// distributed engine otherwise. Caller (Run) owns the deadline on ctx.
func (s *Service) runPipeline(ctx context.Context, caller Caller, doc *schema.Document, input any, opts RunOptions) (RunResult, error) {
	start := time.Now()
	// The caller must be able to see every step at submission;
	// visibility is re-checked per step as the pipeline advances.
	steps := make([]string, len(doc.Servable.Steps))
	for i, step := range doc.Servable.Steps {
		stepDoc, err := s.Get(caller, step)
		if err != nil {
			return RunResult{}, fmt.Errorf("pipeline step %q: %w", step, err)
		}
		steps[i] = stepDoc.ID
	}
	// Admission is checked against the pipeline's own published ID on
	// BOTH paths — a MaxQueue policy on the pipeline keeps meaning the
	// same thing whether placement happens to allow the monolith or
	// not. (The distributed engine additionally admits each step under
	// its own ID as it dispatches.)
	release, err := s.admitRun(caller, doc.ID, 1)
	if err != nil {
		return RunResult{}, err
	}
	defer release()
	if tmID, ok := s.pipelineMonolithTM(steps); ok {
		// Fast path: the whole chain runs on one TM; demand is charged
		// to the pipeline ID by dispatchTo.
		task := taskmanager.Task{
			ID:       queue.NewID(),
			Kind:     "pipeline",
			Servable: doc.ID,
			Executor: opts.Executor,
			Input:    input,
			Steps:    steps,
			NoMemo:   opts.NoMemo,
			Tenant:   caller.Tenant,
		}
		res, err := s.dispatchWatched(ctx, tmID, task)
		if err != nil && errors.Is(err, errTMLost) && ctx.Err() == nil {
			// The co-hosting TM died mid-chain. The steps are
			// idempotent plain runs, so fail over to the distributed
			// engine, which routes each step through the surviving
			// placements instead of re-finding one common site.
			s.noteTMLost(tmID)
			s.noteFailoverRedispatch()
			return s.runPipelineSteps(ctx, caller, steps, input, opts, start)
		}
		// The monolith chain runs entirely TM-side: the service-layer
		// cache was never consulted.
		res.cacheSkipped = true
		return res, err
	}
	return s.runPipelineSteps(ctx, caller, steps, input, opts, start)
}

// pipelineMonolithTM returns a routable (registered, not draining),
// live Task Manager hosting EVERY step (least loaded wins, round-robin
// on ties) — the condition for the TM-local fast path. Any step
// unplaced, or no common routable live site, means the service must
// orchestrate the steps itself.
func (s *Service) pipelineMonolithTM(steps []string) (string, bool) {
	return s.route.monolithTM(steps, s.timeFunc(), s.cfg.TMStaleAfter)
}

// runPipelineSteps is the distributed engine: each step is resolved,
// cached, admitted and routed independently; outputs chain into the
// next step's input. Cancellation is checked between steps, so a
// canceled caller stops the pipeline at the current step boundary and
// never dispatches the remainder.
func (s *Service) runPipelineSteps(ctx context.Context, caller Caller, steps []string, input any, opts RunOptions, start time.Time) (RunResult, error) {
	current := input
	stats := make([]taskmanager.StepStat, 0, len(steps))
	var totalInf, totalInv int64
	allHits := true
	for i, stepID := range steps {
		if err := ctx.Err(); err != nil {
			return RunResult{}, wrapCtxErr(err)
		}
		// Re-resolve per step: a step unpublished or hidden from the
		// caller while the pipeline runs fails here, not with a stale
		// document.
		stepDoc, err := s.Get(caller, stepID)
		if err != nil {
			return RunResult{}, fmt.Errorf("pipeline step %d (%s): %w", i+1, stepID, err)
		}
		res, err := s.runStep(ctx, caller, stepID, stepDoc.Version, current, opts)
		if err != nil {
			return RunResult{}, fmt.Errorf("pipeline step %d (%s): %w", i+1, stepID, err)
		}
		// request_us > 0 is the documented distributed-path marker;
		// clamp it so a sub-microsecond cache hit cannot read as 0 and
		// masquerade as a monolith step.
		reqUS := res.RequestMicros
		if reqUS <= 0 {
			reqUS = 1
		}
		stats = append(stats, taskmanager.StepStat{
			Servable:         stepID,
			Version:          stepDoc.Version,
			InferenceMicros:  res.InferenceMicros,
			InvocationMicros: res.InvocationMicros,
			RequestMicros:    reqUS,
			Cached:           res.Cached,
			CacheHit:         res.CacheHit,
		})
		totalInf += res.InferenceMicros
		totalInv += res.InvocationMicros
		allHits = allHits && res.CacheHit
		// Cache hits alias stored entries (read-only by contract); the
		// executor marshals the input, so feeding it onward is safe.
		current = res.Output
	}
	res := RunResult{
		Reply: taskmanager.Reply{
			OK:               true,
			Output:           current,
			InferenceMicros:  totalInf,
			InvocationMicros: totalInv,
			Steps:            stats,
		},
		RequestMicros: time.Since(start).Microseconds(),
	}
	if allHits && len(stats) > 0 {
		// Every step answered from the service-layer cache: the
		// pipeline as a whole dispatched nothing.
		res.CacheHit = true
		res.Cached = true
	}
	return res, nil
}

// runStep executes one pipeline step exactly like a plain Run of that
// servable: result cache + singleflight when usable (sharing the key
// space with direct invocations), admission under the step's own ID,
// placement-aware least-loaded routing.
func (s *Service) runStep(ctx context.Context, caller Caller, stepID string, version int, input any, opts RunOptions) (RunResult, error) {
	task := taskmanager.Task{
		ID:       queue.NewID(),
		Kind:     "run",
		Servable: stepID,
		Executor: opts.Executor,
		Input:    input,
		NoMemo:   opts.NoMemo,
		Tenant:   caller.Tenant,
	}
	if s.cacheUsable(opts) {
		if key, err := resultKey(stepID, version, "run", input); err == nil {
			return s.runCached(ctx, caller, key, stepID, task)
		}
	}
	release, err := s.admitRun(caller, stepID, 1)
	if err != nil {
		return RunResult{}, err
	}
	defer release()
	return s.dispatch(ctx, task)
}
