package core_test

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/servable"
	"repro/internal/taskmanager"
)

// scriptedTM is a hand-driven Task Manager for deterministic pipeline
// tests: the test pulls tasks from its queue itself, so it can hold a
// step in flight, observe service-side accounting mid-task, and decide
// exactly when (and with what) to reply. Deploy/scale tasks are
// answered OK automatically so placement can be established.
type scriptedTM struct {
	t  *testing.T
	ms *core.Service
	id string

	mu    sync.Mutex
	tasks []pulledTask
	stop  chan struct{}
	// notify is signalled every time a serving task (run/run_batch/
	// pipeline) is pulled and parked.
	notify chan struct{}
}

type pulledTask struct {
	task  taskmanager.Task
	reply func(taskmanager.Reply)
}

func startScriptedTM(t *testing.T, ms *core.Service, id string) *scriptedTM {
	t.Helper()
	s := &scriptedTM{t: t, ms: ms, id: id, stop: make(chan struct{}), notify: make(chan struct{}, 64)}
	reg, err := json.Marshal(taskmanager.Registration{TMID: id, Executors: []string{"parsl"}})
	if err != nil {
		t.Fatal(err)
	}
	ms.Broker().Push(taskmanager.RegisterQueue, reg, "", "", "")
	t.Cleanup(func() { close(s.stop) })
	go s.loop()
	return s
}

func (s *scriptedTM) loop() {
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		msg, ok := s.ms.Broker().Pull(taskmanager.TaskQueue(s.id), 20*time.Millisecond)
		if !ok {
			continue
		}
		var task taskmanager.Task
		if err := json.Unmarshal(msg.Body, &task); err != nil {
			continue
		}
		reply := func(rep taskmanager.Reply) {
			rep.TaskID = task.ID
			body, _ := json.Marshal(rep)
			s.ms.Broker().Reply(msg, body)
		}
		switch task.Kind {
		case "deploy", "scale", "undeploy", "ping":
			reply(taskmanager.Reply{OK: true})
			continue
		}
		s.mu.Lock()
		s.tasks = append(s.tasks, pulledTask{task: task, reply: reply})
		s.mu.Unlock()
		select {
		case s.notify <- struct{}{}:
		default:
		}
	}
}

// waitTask blocks until a serving task is parked and returns it.
func (s *scriptedTM) waitTask(timeout time.Duration) pulledTask {
	s.t.Helper()
	deadline := time.After(timeout)
	for {
		s.mu.Lock()
		if len(s.tasks) > 0 {
			pt := s.tasks[0]
			s.tasks = s.tasks[1:]
			s.mu.Unlock()
			return pt
		}
		s.mu.Unlock()
		select {
		case <-s.notify:
		case <-deadline:
			s.t.Fatalf("no task arrived at %s within %v", s.id, timeout)
		}
	}
}

// pendingTasks reports how many serving tasks are currently parked.
func (s *scriptedTM) pendingTasks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tasks)
}

func newPipelineMS(t *testing.T) *core.Service {
	t.Helper()
	ms := core.New(core.Config{Registry: container.NewRegistry(), TaskTimeout: 5 * time.Second})
	t.Cleanup(ms.Close)
	return ms
}

// publishStep publishes a public noop-schema servable under the given
// name for the given owner.
func publishStep(t *testing.T, ms *core.Service, owner core.Caller, name string) string {
	t.Helper()
	pkg := servable.NoopPackage()
	pkg.Doc.Publication.Name = name
	id, err := ms.Publish(context.Background(), owner, pkg)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func publishPipeline(t *testing.T, ms *core.Service, owner core.Caller, name string, steps []string) string {
	t.Helper()
	pipe := &servable.Package{Doc: pipelineDoc(name, steps)}
	id, err := ms.Publish(context.Background(), owner, pipe)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestPipelineAcrossTwoTMs is the acceptance pin for the distributed
// engine: a pipeline whose steps are deployed on two DIFFERENT Task
// Managers completes, each step executing at its own site. The pre-PR
// monolith shipped the whole chain to one TM and failed this exact
// scenario (the second step's executor was not deployed there).
func TestPipelineAcrossTwoTMs(t *testing.T) {
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms.Close()
	tmA := newSite(t, ms, "site-a")
	tmB := newSite(t, ms, "site-b")
	if err := ms.WaitForTM(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	utilID, err := ms.Publish(context.Background(), core.Anonymous, servable.MatminerUtilPackage())
	if err != nil {
		t.Fatal(err)
	}
	featID, err := ms.Publish(context.Background(), core.Anonymous, servable.MatminerFeaturizePackage())
	if err != nil {
		t.Fatal(err)
	}
	// Disjoint placement, pinned: step 1 on site-a, step 2 on site-b.
	if err := ms.DeployTo(context.Background(), core.Anonymous, utilID, 1, "parsl", "site-a"); err != nil {
		t.Fatal(err)
	}
	if err := ms.DeployTo(context.Background(), core.Anonymous, featID, 1, "parsl", "site-b"); err != nil {
		t.Fatal(err)
	}
	pipeID := publishPipeline(t, ms, core.Anonymous, "split-pipe", []string{utilID, featID})

	res, err := ms.Run(context.Background(), core.Anonymous, pipeID, "NaCl", core.RunOptions{})
	if err != nil {
		t.Fatalf("pipeline across two TMs failed: %v", err)
	}
	feats, ok := res.Output.([]any)
	if !ok || len(feats) == 0 {
		t.Fatalf("pipeline should end in a feature vector, got %T", res.Output)
	}
	// Both sites executed exactly their own step (deploy task + run).
	doneA, _ := tmA.Stats()
	doneB, _ := tmB.Stats()
	if doneA != 2 || doneB != 2 {
		t.Fatalf("each site should have served deploy+step: a=%d b=%d", doneA, doneB)
	}
	// Per-step timing decomposition, MS-side request time included.
	if len(res.Steps) != 2 {
		t.Fatalf("want 2 step stats, got %+v", res.Steps)
	}
	for i, st := range res.Steps {
		if st.RequestMicros <= 0 {
			t.Fatalf("step %d should carry MS-side request time: %+v", i, st)
		}
		if st.Version != 1 {
			t.Fatalf("step %d should record its version: %+v", i, st)
		}
	}
	if res.Steps[0].Servable != utilID || res.Steps[1].Servable != featID {
		t.Fatalf("step order wrong: %+v", res.Steps)
	}
}

// TestPipelineMonolithFastPath pins the fast path: with every step
// co-deployed on ONE TM the whole chain ships as a single pipeline
// task (one queue round trip), and the reply still decomposes per
// step — with no MS-side request time, the monolith's signature.
func TestPipelineMonolithFastPath(t *testing.T) {
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms.Close()
	tm := newSite(t, ms, "site-a")
	if err := ms.WaitForTM(1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	utilID, err := ms.Publish(context.Background(), core.Anonymous, servable.MatminerUtilPackage())
	if err != nil {
		t.Fatal(err)
	}
	featID, err := ms.Publish(context.Background(), core.Anonymous, servable.MatminerFeaturizePackage())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{utilID, featID} {
		if err := ms.Deploy(context.Background(), core.Anonymous, id, 1, "parsl"); err != nil {
			t.Fatal(err)
		}
	}
	pipeID := publishPipeline(t, ms, core.Anonymous, "mono-pipe", []string{utilID, featID})

	before, _ := tm.Stats()
	res, err := ms.Run(context.Background(), core.Anonymous, pipeID, "SiO2", core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	after, _ := tm.Stats()
	if after-before != 1 {
		t.Fatalf("monolith should be ONE task, TM executed %d", after-before)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("monolith reply should still decompose per step: %+v", res.Steps)
	}
	for i, st := range res.Steps {
		if st.RequestMicros != 0 {
			t.Fatalf("monolith step %d must not carry MS-side request time: %+v", i, st)
		}
		if st.InvocationMicros <= 0 {
			t.Fatalf("monolith step %d should carry TM-side invocation time: %+v", i, st)
		}
	}
}

// TestPipelineStepCacheAndInvalidation pins the per-step cache
// contract: a repeated pipeline serves every step from the result
// cache; republishing ONE step invalidates only that step's entries,
// so the unchanged prefix still short-circuits while the republished
// step recomputes.
func TestPipelineStepCacheAndInvalidation(t *testing.T) {
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms.Close()
	newSite(t, ms, "site-a")
	newSite(t, ms, "site-b")
	if err := ms.WaitForTM(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	utilID, err := ms.Publish(context.Background(), core.Anonymous, servable.MatminerUtilPackage())
	if err != nil {
		t.Fatal(err)
	}
	featID, err := ms.Publish(context.Background(), core.Anonymous, servable.MatminerFeaturizePackage())
	if err != nil {
		t.Fatal(err)
	}
	// Disjoint placement forces the distributed (per-step cached) path.
	if err := ms.DeployTo(context.Background(), core.Anonymous, utilID, 1, "parsl", "site-a"); err != nil {
		t.Fatal(err)
	}
	if err := ms.DeployTo(context.Background(), core.Anonymous, featID, 1, "parsl", "site-b"); err != nil {
		t.Fatal(err)
	}
	pipeID := publishPipeline(t, ms, core.Anonymous, "cache-pipe", []string{utilID, featID})

	base := ms.CacheStats()
	r1, err := ms.Run(context.Background(), core.Anonymous, pipeID, "Fe2O3", core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit {
		t.Fatal("first pipeline run cannot be a whole-pipeline hit")
	}
	r2, err := ms.Run(context.Background(), core.Anonymous, pipeID, "Fe2O3", core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit || !r2.Cached {
		t.Fatalf("repeated pipeline should hit on every step: %+v", r2.Steps)
	}
	for i, st := range r2.Steps {
		if !st.CacheHit {
			t.Fatalf("repeat step %d should be a cache hit: %+v", i, st)
		}
	}
	st := ms.CacheStats()
	if st.Hits-base.Hits < 2 {
		t.Fatalf("want >=2 step cache hits observable in counters, got %d", st.Hits-base.Hits)
	}

	// Republish the SECOND step: its entries invalidate (and its
	// version bumps), the first step's entry survives — the hot prefix
	// still short-circuits.
	if _, err := ms.Publish(context.Background(), core.Anonymous, servable.MatminerFeaturizePackage()); err != nil {
		t.Fatal(err)
	}
	if err := ms.DeployTo(context.Background(), core.Anonymous, featID, 1, "parsl", "site-b"); err != nil {
		t.Fatal(err)
	}
	r3, err := ms.Run(context.Background(), core.Anonymous, pipeID, "Fe2O3", core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r3.Steps[0].CacheHit {
		t.Fatalf("prefix step should still hit after an unrelated republish: %+v", r3.Steps[0])
	}
	if r3.Steps[1].CacheHit {
		t.Fatalf("republished step must recompute: %+v", r3.Steps[1])
	}
	if r3.CacheHit {
		t.Fatal("partially recomputed pipeline must not report a whole-pipeline hit")
	}
}

// TestPipelineDemandAttribution pins demand accounting: a monolith
// pipeline's in-flight demand is charged to the PIPELINE's published
// ID, and a distributed step's demand to the STEP's ID — never to
// Steps[0] by fallback.
func TestPipelineDemandAttribution(t *testing.T) {
	ms := newPipelineMS(t)
	stm := startScriptedTM(t, ms, "stm-1")
	if err := ms.WaitForTM(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	aID := publishStep(t, ms, core.Anonymous, "step-a")
	bID := publishStep(t, ms, core.Anonymous, "step-b")
	for _, id := range []string{aID, bID} {
		if err := ms.Deploy(context.Background(), core.Anonymous, id, 1, "parsl"); err != nil {
			t.Fatal(err)
		}
	}
	pipeID := publishPipeline(t, ms, core.Anonymous, "acct-pipe", []string{aID, bID})

	// Monolith path (both steps placed on stm-1): demand lands on the
	// pipeline ID while the task is in flight.
	errc := make(chan error, 1)
	go func() {
		_, err := ms.Run(context.Background(), core.Anonymous, pipeID, "x", core.RunOptions{NoCache: true})
		errc <- err
	}()
	pt := stm.waitTask(5 * time.Second)
	if pt.task.Kind != "pipeline" {
		t.Fatalf("co-deployed steps should take the monolith path, got %q", pt.task.Kind)
	}
	if pt.task.Servable != pipeID {
		t.Fatalf("monolith task should carry the pipeline ID, got %q", pt.task.Servable)
	}
	if got := ms.ServableLoad(pipeID); got != 1 {
		t.Fatalf("monolith demand should charge the pipeline ID: load=%d", got)
	}
	if got := ms.ServableLoad(aID); got != 0 {
		t.Fatalf("monolith demand must NOT charge step 0: load=%d", got)
	}
	pt.reply(taskmanager.Reply{OK: true, Output: "done"})
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	// Distributed path: register a second scripted site, split the
	// placement, and observe each step charged to its own ID.
	stm2 := startScriptedTM(t, ms, "stm-2")
	if err := ms.WaitForTM(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := ms.DeployTo(context.Background(), core.Anonymous, bID, 1, "parsl", "stm-2"); err != nil {
		t.Fatal(err)
	}
	// Break co-location for step b: unpublish + republish so its only
	// placement is stm-2.
	if err := ms.Unpublish(core.Anonymous, bID); err != nil {
		t.Fatal(err)
	}
	bID = publishStep(t, ms, core.Anonymous, "step-b")
	if err := ms.DeployTo(context.Background(), core.Anonymous, bID, 1, "parsl", "stm-2"); err != nil {
		t.Fatal(err)
	}
	pipeID = publishPipeline(t, ms, core.Anonymous, "acct-pipe-2", []string{aID, bID})

	go func() {
		_, err := ms.Run(context.Background(), core.Anonymous, pipeID, "y", core.RunOptions{NoCache: true, Executor: "parsl"})
		errc <- err
	}()
	step1 := stm.waitTask(5 * time.Second)
	if step1.task.Kind != "run" || step1.task.Servable != aID {
		t.Fatalf("distributed step 1 should be a plain run of %s: %+v", aID, step1.task)
	}
	if step1.task.Executor != "parsl" {
		t.Fatalf("the run's executor override must reach each step: %+v", step1.task)
	}
	if got := ms.ServableLoad(aID); got != 1 {
		t.Fatalf("step 1 demand should charge %s: load=%d", aID, got)
	}
	if got := ms.ServableLoad(pipeID); got != 0 {
		t.Fatalf("distributed path must not charge the pipeline ID mid-step: load=%d", got)
	}
	step1.reply(taskmanager.Reply{OK: true, Output: "mid"})
	step2 := stm2.waitTask(5 * time.Second)
	if step2.task.Servable != bID {
		t.Fatalf("step 2 should route to stm-2 as %s: %+v", bID, step2.task)
	}
	if got := ms.ServableLoad(bID); got != 1 {
		t.Fatalf("step 2 demand should charge %s: load=%d", bID, got)
	}
	if got := ms.ServableLoad(aID); got != 0 {
		t.Fatalf("step 1 demand should have drained: load=%d", got)
	}
	step2.reply(taskmanager.Reply{OK: true, Output: "end"})
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestPipelineMidRunCancellation: canceling the caller while step 1 is
// in flight aborts the pipeline at the step boundary — step 2 is never
// dispatched.
func TestPipelineMidRunCancellation(t *testing.T) {
	ms := newPipelineMS(t)
	stm := startScriptedTM(t, ms, "stm-1")
	stm2 := startScriptedTM(t, ms, "stm-2")
	if err := ms.WaitForTM(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	aID := publishStep(t, ms, core.Anonymous, "step-a")
	bID := publishStep(t, ms, core.Anonymous, "step-b")
	if err := ms.DeployTo(context.Background(), core.Anonymous, aID, 1, "parsl", "stm-1"); err != nil {
		t.Fatal(err)
	}
	if err := ms.DeployTo(context.Background(), core.Anonymous, bID, 1, "parsl", "stm-2"); err != nil {
		t.Fatal(err)
	}
	pipeID := publishPipeline(t, ms, core.Anonymous, "cancel-pipe", []string{aID, bID})

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := ms.Run(ctx, core.Anonymous, pipeID, "x", core.RunOptions{NoCache: true})
		errc <- err
	}()
	step1 := stm.waitTask(5 * time.Second)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, core.ErrCanceled) {
			t.Fatalf("want ErrCanceled, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled pipeline did not return promptly")
	}
	// A late step-1 reply must not resurrect the pipeline: step 2 is
	// never dispatched.
	step1.reply(taskmanager.Reply{OK: true, Output: "late"})
	time.Sleep(100 * time.Millisecond)
	if n := stm2.pendingTasks(); n != 0 {
		t.Fatalf("step 2 dispatched after cancellation: %d tasks", n)
	}
}

// TestPipelineStepHiddenMidRun: a step whose visibility is revoked
// while an earlier step runs fails the pipeline with ErrNotFound at
// that step's boundary (existence stays hidden, §IV-D semantics).
func TestPipelineStepHiddenMidRun(t *testing.T) {
	ms := newPipelineMS(t)
	stm := startScriptedTM(t, ms, "stm-1")
	stm2 := startScriptedTM(t, ms, "stm-2")
	if err := ms.WaitForTM(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	owner := core.Caller{IdentityID: "urn:identity:orcid:owner", Principals: []string{"public", "urn:identity:orcid:owner"}}
	reader := core.Caller{IdentityID: "urn:identity:orcid:reader", Principals: []string{"public", "urn:identity:orcid:reader"}}

	aID := publishStep(t, ms, owner, "step-a")
	bID := publishStep(t, ms, owner, "step-b")
	if err := ms.DeployTo(context.Background(), owner, aID, 1, "parsl", "stm-1"); err != nil {
		t.Fatal(err)
	}
	if err := ms.DeployTo(context.Background(), owner, bID, 1, "parsl", "stm-2"); err != nil {
		t.Fatal(err)
	}
	pipeID := publishPipeline(t, ms, owner, "acl-pipe", []string{aID, bID})

	errc := make(chan error, 1)
	go func() {
		_, err := ms.Run(context.Background(), reader, pipeID, "x", core.RunOptions{NoCache: true})
		errc <- err
	}()
	step1 := stm.waitTask(5 * time.Second)
	// While step 1 is in flight, the owner makes step 2 owner-only.
	if err := ms.UpdateMetadata(owner, bID, func(p *schema.Publication) {
		p.VisibleTo = []string{owner.IdentityID}
	}); err != nil {
		t.Fatal(err)
	}
	step1.reply(taskmanager.Reply{OK: true, Output: "mid"})
	err := <-errc
	if !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("hidden step should fail the pipeline with ErrNotFound, got %v", err)
	}
	if !strings.Contains(err.Error(), bID) {
		t.Fatalf("error should name the failing step: %v", err)
	}
	if n := stm2.pendingTasks(); n != 0 {
		t.Fatalf("hidden step must not dispatch: %d tasks", n)
	}
}

// TestPipelineStepUnpublishedMidRun: a step unpublished between steps
// fails the pipeline at its boundary instead of executing a stale
// document.
func TestPipelineStepUnpublishedMidRun(t *testing.T) {
	ms := newPipelineMS(t)
	stm := startScriptedTM(t, ms, "stm-1")
	stm2 := startScriptedTM(t, ms, "stm-2")
	if err := ms.WaitForTM(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	aID := publishStep(t, ms, core.Anonymous, "step-a")
	bID := publishStep(t, ms, core.Anonymous, "step-b")
	if err := ms.DeployTo(context.Background(), core.Anonymous, aID, 1, "parsl", "stm-1"); err != nil {
		t.Fatal(err)
	}
	if err := ms.DeployTo(context.Background(), core.Anonymous, bID, 1, "parsl", "stm-2"); err != nil {
		t.Fatal(err)
	}
	pipeID := publishPipeline(t, ms, core.Anonymous, "unpub-pipe", []string{aID, bID})

	errc := make(chan error, 1)
	go func() {
		_, err := ms.Run(context.Background(), core.Anonymous, pipeID, "x", core.RunOptions{NoCache: true})
		errc <- err
	}()
	step1 := stm.waitTask(5 * time.Second)
	if err := ms.Unpublish(core.Anonymous, bID); err != nil {
		t.Fatal(err)
	}
	step1.reply(taskmanager.Reply{OK: true, Output: "mid"})
	err := <-errc
	if !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("unpublished step should fail the pipeline with ErrNotFound, got %v", err)
	}
	if n := stm2.pendingTasks(); n != 0 {
		t.Fatalf("unpublished step must not dispatch: %d tasks", n)
	}
}

// TestUnpublishUndeploysReplicas: unpublishing a deployed servable
// also tears its replicas down at the hosting site — otherwise they
// would run forever with no API left that can reach them.
func TestUnpublishUndeploysReplicas(t *testing.T) {
	tb, err := bench.NewTestbed(bench.Options{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	ms := tb.MS
	id, err := ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage())
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Deploy(context.Background(), core.Anonymous, id, 2, "parsl"); err != nil {
		t.Fatal(err)
	}
	if got := tb.ExecutorReplicas("parsl", id); got != 2 {
		t.Fatalf("deploy should start 2 replicas, got %d", got)
	}
	if err := ms.Unpublish(core.Anonymous, id); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tb.ExecutorReplicas("parsl", id) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("replicas still running after unpublish: %d", tb.ExecutorReplicas("parsl", id))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestUnpublishRemovesServable covers the new Unpublish surface
// directly: owner-only, removes discovery and serving state.
func TestUnpublishRemovesServable(t *testing.T) {
	ms := newPipelineMS(t)
	owner := core.Caller{IdentityID: "urn:identity:orcid:owner", Principals: []string{"public"}}
	other := core.Caller{IdentityID: "urn:identity:orcid:other", Principals: []string{"public"}}
	id := publishStep(t, ms, owner, "gone")
	if err := ms.Unpublish(other, id); !errors.Is(err, core.ErrForbidden) {
		t.Fatalf("non-owner unpublish should be forbidden, got %v", err)
	}
	if err := ms.Unpublish(owner, id); err != nil {
		t.Fatal(err)
	}
	if _, err := ms.Get(owner, id); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("unpublished servable should be gone, got %v", err)
	}
	if err := ms.Unpublish(owner, id); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("double unpublish should be not-found, got %v", err)
	}
}
