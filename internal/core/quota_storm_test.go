package core_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/bench"
	"repro/internal/core"
)

// TestQuotaReservationStorm is the -race leak check for the admission
// reservation table: many goroutines interleave quota-rejected,
// canceled, and completed runs across three tenants, and at the end the
// (tenant × servable) reservation matrix must be exactly empty — every
// admit matched by one release, no slot leaked by any outcome path.
func TestQuotaReservationStorm(t *testing.T) {
	tb := newTB(t, bench.Options{})
	ms := tb.MS
	id, err := ms.Publish(context.Background(), core.Anonymous, sleepPackage(t, "storm-sv", 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Deploy(context.Background(), core.Anonymous, id, 4, "parsl"); err != nil {
		t.Fatal(err)
	}
	if _, err := ms.SetTenantQuota("storm", auth.Quota{MaxInFlight: 2, Priority: auth.PriorityLow}); err != nil {
		t.Fatal(err)
	}
	if _, err := ms.SetTenantQuota("calm", auth.Quota{Priority: auth.PriorityHigh}); err != nil {
		t.Fatal(err)
	}
	caller := func(tenant string) core.Caller {
		c := core.Anonymous
		c.Tenant = tenant
		return c
	}

	const (
		workers = 6
		iters   = 30
	)
	var wg sync.WaitGroup
	fail := make(chan error, 3*workers)
	// Quota-constrained tenant: successes and quota_exceeded rejections
	// both legal; anything else is a bug.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				input := fmt.Sprintf("storm-%d-%d", w, i)
				_, err := ms.Run(context.Background(), caller("storm"), id, input, core.RunOptions{NoMemo: true})
				if err != nil && !errors.Is(err, core.ErrQuotaExceeded) {
					fail <- fmt.Errorf("storm run: %v", err)
					return
				}
			}
		}(w)
	}
	// Canceled callers: the context dies while the run is admitted;
	// the reservation must still be released.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%3)*time.Millisecond)
				input := fmt.Sprintf("cancel-%d-%d", w, i)
				_, err := ms.Run(ctx, caller("calm"), id, input, core.RunOptions{NoMemo: true})
				cancel()
				if err != nil && !errors.Is(err, core.ErrCanceled) && !errors.Is(err, core.ErrTimeout) {
					fail <- fmt.Errorf("canceled run: %v", err)
					return
				}
			}
		}(w)
	}
	// Anonymous completions (no quota, default lane) interleave with
	// both, plus concurrent quota updates racing the admission reads.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if i%10 == 0 {
					if _, err := ms.SetTenantQuota("storm", auth.Quota{MaxInFlight: 2 + i%2, Priority: auth.PriorityLow}); err != nil {
						fail <- fmt.Errorf("set quota: %v", err)
						return
					}
				}
				input := fmt.Sprintf("anon-%d-%d", w, i)
				if _, err := ms.Run(context.Background(), core.Anonymous, id, input, core.RunOptions{NoMemo: true}); err != nil {
					fail <- fmt.Errorf("anonymous run: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Error(err)
	}

	if !ms.ReservationsEmpty() {
		t.Fatalf("reservation table not drained after storm: %+v", ms.TenantStatsAll())
	}
	stats := ms.TenantStatsAll()
	for tenant, st := range stats {
		if st.InFlight != 0 {
			t.Errorf("tenant %s reports %d in-flight after storm", tenant, st.InFlight)
		}
	}
	// The storm tenant's outcomes must all be accounted: every run was
	// either admitted or quota-rejected.
	storm := stats["storm"]
	if storm.Admitted+storm.RejectedQuota < workers*iters {
		t.Errorf("storm tenant accounts %d outcomes, want >= %d (admitted %d, rejected %d)",
			storm.Admitted+storm.RejectedQuota, workers*iters, storm.Admitted, storm.RejectedQuota)
	}
}
