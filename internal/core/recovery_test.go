package core_test

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/bench"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/servable"
	"repro/internal/store"
)

// Crash-recovery coverage for the durable store seam (durable.go +
// internal/store): a service killed without a clean shutdown must come
// back with exactly the state it had — checked by fingerprint across
// random mutation interleavings, a torn WAL tail, and a full-testbed
// restart with live deployments.

// openRecovered boots a service over the store directory and replays
// whatever is there.
func openRecovered(t *testing.T, dir string, compactEvery int) (*core.Service, store.RecoveryInfo) {
	t.Helper()
	w, err := store.Open(store.Options{Dir: dir, Sync: false, CompactEvery: compactEvery})
	if err != nil {
		t.Fatal(err)
	}
	ms := core.New(core.Config{Registry: container.NewRegistry(), Store: w})
	info, err := ms.Recover()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close(); w.Close() })
	return ms, info
}

// TestRecoveryRandomInterleaving is the property-style check: random
// interleavings of repository mutations (publish, metadata update,
// unpublish, autoscale policy, forced checkpoints), interrupted by
// kill-and-recover cycles. After every cycle the recovered service
// must fingerprint-identical to the one that was killed — the live
// pre-kill service is the shadow copy.
func TestRecoveryRandomInterleaving(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 4242} {
		seed := seed
		t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			// A tiny compaction threshold forces checkpoints to race the
			// mutation stream, exercising the upsert replay semantics.
			ms, _ := openRecovered(t, dir, 5)

			var known []string
			priorities := []string{"high", "normal", "low"}
			mutate := func() {
				switch rng.Intn(8) {
				case 0:
					id, err := ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage())
					if err != nil {
						t.Fatal(err)
					}
					known = appendUnique(known, id)
				case 1:
					id, err := ms.Publish(context.Background(), core.Anonymous, servable.MatminerUtilPackage())
					if err != nil {
						t.Fatal(err)
					}
					known = appendUnique(known, id)
				case 2:
					if len(known) == 0 {
						return
					}
					id := known[rng.Intn(len(known))]
					title := time.Duration(rng.Int63n(1 << 20)).String()
					if err := ms.UpdateMetadata(core.Anonymous, id, func(p *schema.Publication) {
						p.Title = "edited " + title
					}); err != nil {
						t.Fatal(err)
					}
				case 3:
					if len(known) == 0 {
						return
					}
					id := known[rng.Intn(len(known))]
					p := core.AutoscalePolicy{Enabled: true, MinReplicas: 1, MaxReplicas: 2 + rng.Intn(8), TargetLoad: 2}
					if err := ms.SetAutoscalePolicy(core.Anonymous, id, p); err != nil {
						t.Fatal(err)
					}
				case 4:
					// Unpublish rarely, so the repository keeps growing.
					if len(known) < 2 || rng.Intn(4) != 0 {
						return
					}
					i := rng.Intn(len(known))
					if err := ms.Unpublish(core.Anonymous, known[i]); err != nil {
						t.Fatal(err)
					}
					known = append(known[:i], known[i+1:]...)
				case 5:
					// A checkpoint between two mutations must never lose
					// the second one.
					if rng.Intn(3) != 0 {
						return
					}
					if err := ms.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				case 6:
					// Tenant quotas are durable records too; re-setting an
					// existing tenant's quota exercises the upsert replay.
					tid := "tenant-" + strconv.Itoa(rng.Intn(4))
					q := auth.Quota{
						MaxInFlight: rng.Intn(8),
						RatePerSec:  float64(rng.Intn(50)),
						Priority:    priorities[rng.Intn(len(priorities))],
					}
					if _, err := ms.SetTenantQuota(tid, q); err != nil {
						t.Fatal(err)
					}
				case 7:
					ms.BindTenant("urn:identity:test:user-"+strconv.Itoa(rng.Intn(6)),
						"tenant-"+strconv.Itoa(rng.Intn(4)))
				}
			}

			for cycle := 0; cycle < 3; cycle++ {
				for i := 0; i < 20; i++ {
					mutate()
				}
				want := ms.StateFingerprint()
				// Kill: no shutdown checkpoint, the store is simply
				// closed with its tail still in the log.
				ms.Close()
				var info store.RecoveryInfo
				ms, info = openRecovered(t, dir, 5)
				if got := ms.StateFingerprint(); got != want {
					t.Fatalf("cycle %d (replayed=%d): recovered state differs\n--- want\n%s--- got\n%s", cycle, info.Replayed, want, got)
				}
			}
		})
	}
}

func appendUnique(ids []string, id string) []string {
	for _, have := range ids {
		if have == id {
			return ids
		}
	}
	return append(ids, id)
}

// TestRecoveryTornTail kills the service with a half-written final
// record (simulated by chopping bytes off the log). Recovery must drop
// exactly that record — state equals the moment before the last
// mutation — and report the truncation.
func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	ms, _ := openRecovered(t, dir, 0)

	if _, err := ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage()); err != nil {
		t.Fatal(err)
	}
	id, err := ms.Publish(context.Background(), core.Anonymous, servable.MatminerUtilPackage())
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.SetAutoscalePolicy(core.Anonymous, id, core.AutoscalePolicy{Enabled: true, MinReplicas: 1, MaxReplicas: 4}); err != nil {
		t.Fatal(err)
	}
	want := ms.StateFingerprint()
	// The mutation that will be torn.
	cifar, err := servable.CIFAR10Package(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms.Publish(context.Background(), core.Anonymous, cifar); err != nil {
		t.Fatal(err)
	}
	full := ms.StateFingerprint()
	if full == want {
		t.Fatal("test broken: last mutation did not change the fingerprint")
	}
	ms.Close()

	walPath := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 4 {
		t.Fatalf("wal unexpectedly small: %d bytes", len(data))
	}
	if err := os.WriteFile(walPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	ms2, info := openRecovered(t, dir, 0)
	if !info.Truncated {
		t.Fatal("torn tail not reported as truncated")
	}
	if got := ms2.StateFingerprint(); got != want {
		t.Fatalf("torn-tail recovery: want the state before the torn record\n--- want\n%s--- got\n%s", want, got)
	}
}

// TestRecoveryTornTenantRecord tears the WAL mid-way through a tenant
// quota record: recovery must drop exactly that quota update — the
// tenant keeps its previous quota — and tolerate the truncation.
func TestRecoveryTornTenantRecord(t *testing.T) {
	dir := t.TempDir()
	ms, _ := openRecovered(t, dir, 0)

	if _, err := ms.SetTenantQuota("acme", auth.Quota{MaxInFlight: 2, RatePerSec: 5, Priority: "high"}); err != nil {
		t.Fatal(err)
	}
	ms.BindTenant("urn:identity:test:alice", "acme")
	want := ms.StateFingerprint()
	// The mutation that will be torn.
	if _, err := ms.SetTenantQuota("acme", auth.Quota{MaxInFlight: 99, Priority: "low"}); err != nil {
		t.Fatal(err)
	}
	if ms.StateFingerprint() == want {
		t.Fatal("test broken: quota update did not change the fingerprint")
	}
	ms.Close()

	walPath := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	ms2, info := openRecovered(t, dir, 0)
	if !info.Truncated {
		t.Fatal("torn tail not reported as truncated")
	}
	if got := ms2.StateFingerprint(); got != want {
		t.Fatalf("torn tenant record: want the pre-tear quota back\n--- want\n%s--- got\n%s", want, got)
	}
}

// TestRecoveryDurableTenancy is the identity-and-tenancy durability
// path end to end: quotas, identity bindings and user accounts set on
// an authenticated service, killed without a shutdown checkpoint, must
// replay byte-identically into an OPEN-mode service (its registry is
// fresh — nothing survives except through the WAL), report the right
// Durable flag, and — rebooted WITH auth — let the replayed account
// simply log in again and resolve to its tenant. A checkpoint lands
// between the two quota mutations so one arrives from the snapshot and
// the other from the log tail.
func TestRecoveryDurableTenancy(t *testing.T) {
	dir := t.TempDir()
	open := func(withAuth bool) (*core.Service, func()) {
		w, err := store.Open(store.Options{Dir: dir, Sync: false})
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.Config{Registry: container.NewRegistry(), Store: w}
		if withAuth {
			as := auth.NewService(time.Hour)
			as.RegisterProvider("local")
			as.RegisterClient("dlhub", "DLHub Management Service", "dlhub:serve")
			cfg.Auth = as
			cfg.RequireAuth = true
			cfg.RunScope = "dlhub:serve"
			cfg.AuthClientID = "dlhub"
			cfg.AuthProvider = "local"
		}
		ms := core.New(cfg)
		if _, err := ms.Recover(); err != nil {
			t.Fatal(err)
		}
		return ms, func() { ms.Close(); w.Close() }
	}

	ms, done := open(true)
	if _, err := ms.SetTenantQuota("acme", auth.Quota{MaxInFlight: 3, RatePerSec: 5, Priority: "high"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ms.RegisterUser("", "alice", "hunter2", "Alice", "alice@example.org", "acme"); err != nil {
		t.Fatal(err)
	}
	// Checkpoint now: acme and alice arrive from the snapshot, beta from
	// the WAL tail behind it.
	if err := ms.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := ms.SetTenantQuota("beta", auth.Quota{RatePerSec: 1, Priority: "low"}); err != nil {
		t.Fatal(err)
	}
	want := ms.StateFingerprint()
	done() // kill -9: no shutdown checkpoint

	// Recover in OPEN mode: core.New builds a fresh standalone registry,
	// so everything below exists only if the WAL + checkpoint carried it.
	ms2, done2 := open(false)
	if got := ms2.StateFingerprint(); got != want {
		t.Fatalf("open-mode recovery differs\n--- want\n%s--- got\n%s", want, got)
	}
	durable := map[string]bool{}
	for _, v := range ms2.TenantList() {
		durable[v.ID] = v.Durable
	}
	if !durable["acme"] || !durable["beta"] {
		t.Fatalf("recovered quotas not marked durable: %v", durable)
	}
	done2()

	// Recover WITH a fresh auth service: the replayed account logs in
	// again (tokens died with the old process — by design) and the token
	// resolves to the replayed tenant binding.
	ms3, done3 := open(true)
	defer done3()
	if got := ms3.StateFingerprint(); got != want {
		t.Fatalf("auth-mode recovery differs\n--- want\n%s--- got\n%s", want, got)
	}
	res, err := ms3.Login("", "alice", "hunter2")
	if err != nil {
		t.Fatalf("login after recovery: %v", err)
	}
	caller, err := ms3.ResolveCaller("Bearer " + res.AccessToken)
	if err != nil {
		t.Fatal(err)
	}
	if caller.Tenant != "acme" {
		t.Fatalf("recovered identity resolves to tenant %q, want acme", caller.Tenant)
	}
	// Strict mode holds after recovery: no bearer, no anonymous fallback.
	if _, err := ms3.ResolveCaller(""); err == nil {
		t.Fatal("RequireAuth service accepted an empty bearer after recovery")
	}
	if _, err := ms3.Login("", "alice", "wrong"); err == nil {
		t.Fatal("login accepted a wrong password after recovery")
	}
}

// TestRestartMSRecoversDeployments drives the full testbed path the
// scenario harness's restart_ms fault uses: live TMs, placements,
// scaled replicas and a drain mark, then a Management Service kill and
// recovery. RestartMS itself fails on any fingerprint divergence; on
// top of that the recovered service must still SERVE from the
// recovered placements, and the drain mark must still gate rejoin.
func TestRestartMSRecoversDeployments(t *testing.T) {
	tb, err := bench.NewTestbed(bench.Options{Nodes: 4, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if _, err := tb.AddTM("cooley-tm-2", 4); err != nil {
		t.Fatal(err)
	}
	if err := tb.MS.WaitForTM(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	id, err := tb.MS.Publish(ctx, core.Anonymous, servable.MatminerUtilPackage())
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.MS.DeployTo(ctx, core.Anonymous, id, 2, "parsl", "cooley-tm-1"); err != nil {
		t.Fatal(err)
	}
	if err := tb.MS.DeployTo(ctx, core.Anonymous, id, 2, "parsl", "cooley-tm-2"); err != nil {
		t.Fatal(err)
	}
	if err := tb.MS.Scale(ctx, core.Anonymous, id, 3, "parsl"); err != nil {
		t.Fatal(err)
	}
	drainCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	if _, err := tb.MS.DrainTM(drainCtx, "cooley-tm-2"); err != nil {
		cancel()
		t.Fatal(err)
	}
	cancel()

	// Kill the Management Service and recover from the WAL; RestartMS
	// fails the test by itself if the recovered fingerprint differs.
	if err := tb.RestartMS(); err != nil {
		t.Fatal(err)
	}

	res, err := tb.Service().Run(ctx, core.Anonymous, id, "NaCl", core.RunOptions{})
	if err != nil {
		t.Fatalf("run after recovery: %v", err)
	}
	if !res.OK {
		t.Fatalf("run after recovery not OK: %s", res.Error)
	}
	// The drain mark survived the restart: rejoin must be meaningful
	// (it errors on a TM that is not draining).
	if err := tb.Service().RejoinTM(ctx, "cooley-tm-2"); err != nil {
		t.Fatalf("rejoin after recovery: %v", err)
	}
}
