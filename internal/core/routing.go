package core

// routingTable is the serving-path half of the Management Service's
// state, split out of the repository (PR 8) so routing never contends
// with repository writes: TM registry and heartbeat freshness,
// placements, desired replicas, drain marks, in-flight and
// admission-reservation counters. It has its OWN lock; the repository
// (docs/versions/packages) stays under Service.mu.
//
// Lock order: Service.mu may be HELD while calling into the routing
// table (the few cross-domain control-plane operations —
// recordDeployment, Unpublish, WAL replay — nest this way to stay
// atomic against each other), but routing-table methods never touch
// Service.mu, and no caller may acquire Service.mu while holding
// rt.mu (rt.mu is private to this file, so that cannot happen by
// construction). The hot path — pickTM, in-flight accounting,
// admission reserve/release — therefore only ever takes rt.mu, and a
// Publish holding Service.mu for a large document cannot stall a
// single routed run. See docs/ARCHITECTURE.md "Concurrency model".
//
// Methods are self-locking; the *Locked helpers at the bottom require
// rt.mu (read or write as documented) and exist so composite routing
// decisions (pick, monolithTM) make one decision under one critical
// section.

import (
	"fmt"
	"sync"
	"time"
)

type routingTable struct {
	mu   sync.RWMutex
	tms  []string
	seen map[string]time.Time
	rr   int
	// draining marks TMs taken out of rotation by DrainTM: they stay
	// registered (heartbeats keep arriving, in-flight work finishes)
	// but no routing decision selects them. Cleared by RejoinTM and
	// deregister.
	draining map[string]struct{}
	// rejoined records when RejoinTM last cleared a TM's drain mark.
	// Heartbeats are set-only for the drain mark, so a beat marshaled
	// BEFORE the TM acknowledged the rejoin (still carrying
	// Draining=true) could re-mark a freshly rejoined site forever;
	// beat ignores the flag within rejoinGrace of a rejoin. markDraining
	// deletes the entry, so a deliberate re-drain is never suppressed.
	rejoined map[string]time.Time
	// inflight counts dispatched-but-unanswered tasks per TM; pick
	// routes to the least loaded live candidate.
	inflight map[string]int
	// active holds the executing-task counts each TM self-reports in
	// its heartbeat registrations — the TM-side view of queue depth.
	active map[string]int
	// svInflight counts dispatched-but-unanswered run/batch/pipeline
	// work units per servable (batches weigh their input count) — the
	// demand signal the autoscaler acts on.
	svInflight map[string]int
	// Admission-control reservation table, two-level (tenant ×
	// servable): admitted-but-unfinished requests, reserved atomically
	// at the admission check so a concurrent burst cannot overrun
	// either bound. resvSv and resvTenant are the per-axis totals the
	// two bounds are checked against (the servable MaxQueue bound and
	// the tenant MaxInFlight quota); resvCell is the full matrix, kept
	// for stats and for the drain-to-zero invariant tests. Entries are
	// deleted when they reach zero, so a fully drained table is
	// literally empty.
	resvSv     map[string]int
	resvTenant map[string]int
	resvCell   map[resvKey]int
	// replicas tracks the desired replica count per servable, updated
	// by Deploy/Scale — the autoscaler's notion of current scale.
	replicas map[string]int
	// placements maps servable ID -> Task Managers hosting it, so runs
	// are routed to capable sites (§IV-A: the Management Service
	// "route[s] workloads to suitable executors").
	placements map[string][]string
}

func newRoutingTable() *routingTable {
	return &routingTable{
		seen:       make(map[string]time.Time),
		draining:   make(map[string]struct{}),
		rejoined:   make(map[string]time.Time),
		inflight:   make(map[string]int),
		active:     make(map[string]int),
		svInflight: make(map[string]int),
		resvSv:     make(map[string]int),
		resvTenant: make(map[string]int),
		resvCell:   make(map[resvKey]int),
		replicas:   make(map[string]int),
		placements: make(map[string][]string),
	}
}

// beat records one registration/heartbeat: the TM is (re-)registered,
// its freshness stamped, its self-reported active count stored, and a
// draining assertion folded in under the rejoin-grace rule.
func (rt *routingTable) beat(tmID string, active int, draining bool, now time.Time) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	present := false
	for _, id := range rt.tms {
		if id == tmID {
			present = true
			break
		}
	}
	if !present {
		rt.tms = append(rt.tms, tmID)
	}
	rt.seen[tmID] = now
	rt.active[tmID] = active
	if draining {
		// The TM asserts it is draining (the drain-task ack echoed in
		// heartbeats). Set-only: a heartbeat without the flag must not
		// clear a service-side drain mark the drain task simply has not
		// reached yet. The one exception is a beat marshaled just BEFORE
		// the TM acknowledged a rejoin — ignore the stale assertion
		// inside the rejoin grace window.
		if at, rejoined := rt.rejoined[tmID]; !rejoined || now.Sub(at) > rejoinGrace {
			rt.draining[tmID] = struct{}{}
		}
	}
}

// list returns the registered TM IDs.
func (rt *routingTable) list() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return append([]string(nil), rt.tms...)
}

// live filters the registry by heartbeat freshness; with liveness
// disabled (staleAfter <= 0) every registered TM passes.
func (rt *routingTable) live(now time.Time, staleAfter time.Duration) []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.liveLocked(rt.tms, now, staleAfter)
}

// isLost reports whether a TM currently fails the liveness window (or
// was deregistered outright). Always false with liveness disabled —
// there is no dead-TM signal to act on.
func (rt *routingTable) isLost(tmID string, now time.Time, staleAfter time.Duration) bool {
	if staleAfter <= 0 {
		return false
	}
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	seen, ok := rt.seen[tmID]
	if !ok {
		return true
	}
	return now.Sub(seen) > staleAfter
}

// isRegistered reports whether a TM ID is in the registry.
func (rt *routingTable) isRegistered(tmID string) bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return len(rt.registeredLocked([]string{tmID})) > 0
}

// isDraining reports whether a TM is marked draining.
func (rt *routingTable) isDraining(tmID string) bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	_, draining := rt.draining[tmID]
	return draining
}

// drainingAll lists TMs currently marked draining.
func (rt *routingTable) drainingAll() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]string, 0, len(rt.draining))
	for id := range rt.draining {
		out = append(out, id)
	}
	return out
}

// markDraining sets a TM's drain mark (DrainTM and WAL replay). A
// deliberate (re-)drain must never be suppressed by the rejoin grace
// window, so the grace entry is cleared too.
func (rt *routingTable) markDraining(tmID string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.draining[tmID] = struct{}{}
	delete(rt.rejoined, tmID)
}

// clearDrainMark drops a TM's drain mark and stamps the rejoin-grace
// window (RejoinTM).
func (rt *routingTable) clearDrainMark(tmID string, now time.Time) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	delete(rt.draining, tmID)
	rt.rejoined[tmID] = now
}

// applyRejoin drops a TM's drain mark without stamping the grace
// window — the WAL replay form (at boot there is no in-flight stale
// heartbeat to guard against).
func (rt *routingTable) applyRejoin(tmID string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	delete(rt.draining, tmID)
}

// deregister removes a TM from the registry and every piece of routing
// state naming it. Reports whether the TM was registered.
func (rt *routingTable) deregister(tmID string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	found := false
	for i, id := range rt.tms {
		if id == tmID {
			rt.tms = append(rt.tms[:i], rt.tms[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return false
	}
	delete(rt.seen, tmID)
	delete(rt.active, tmID)
	delete(rt.inflight, tmID)
	delete(rt.draining, tmID)
	delete(rt.rejoined, tmID)
	for id := range rt.placements {
		rt.removePlacementLocked(id, tmID)
	}
	return true
}

// applyDeregister is deregister for WAL replay: identical removal, but
// an absent TM is not an error (the checkpoint may already contain the
// removal).
func (rt *routingTable) applyDeregister(tmID string) { rt.deregister(tmID) }

// pick selects a Task Manager by least outstanding requests: among the
// live candidates (restricted to placement sites when servableID is
// known to be placed), the one with the fewest in-flight dispatches
// wins; ties fall back to round-robin so uniform load still spreads.
// Placement entries naming unregistered OR draining TMs — snapshot
// ghosts, sites being taken out of rotation — are ignored: routing
// into their queues would strand the request until its deadline. When
// no placed TM is routable, routing falls back to every routable
// registered TM (a fast task_failed from an undeployed site beats a
// silent hang). excluded is the failover path's exclusion list.
func (rt *routingTable) pick(servableID string, excluded []string, now time.Time, staleAfter time.Duration) (string, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	candidates := rt.routableLocked(rt.tms, excluded)
	if servableID != "" {
		if placed := rt.placements[servableID]; len(placed) > 0 {
			if routable := rt.routableLocked(placed, excluded); len(routable) > 0 {
				candidates = routable
			}
		}
	}
	tm, ok := rt.leastLoadedLocked(rt.liveLocked(candidates, now, staleAfter))
	if !ok {
		return "", ErrNoTaskManager
	}
	return tm, nil
}

// monolithTM returns a routable (registered, not draining), live Task
// Manager hosting EVERY step (least loaded wins, round-robin on ties)
// — the condition for the pipeline TM-local fast path. Any step
// unplaced, or no common routable live site, means the service must
// orchestrate the steps itself.
func (rt *routingTable) monolithTM(steps []string, now time.Time, staleAfter time.Duration) (string, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var common []string
	for i, step := range steps {
		placed := rt.placements[step]
		if len(placed) == 0 {
			return "", false
		}
		if i == 0 {
			common = append([]string(nil), placed...)
			continue
		}
		kept := common[:0]
		for _, tm := range common {
			for _, p := range placed {
				if tm == p {
					kept = append(kept, tm)
					break
				}
			}
		}
		common = kept
		if len(common) == 0 {
			return "", false
		}
	}
	return rt.leastLoadedLocked(rt.liveLocked(rt.routableLocked(common, nil), now, staleAfter))
}

// loadAll reports in-flight (dispatched, not yet answered) task counts
// per registered TM.
func (rt *routingTable) loadAll() map[string]int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	load := make(map[string]int, len(rt.tms))
	for _, id := range rt.tms {
		load[id] = rt.inflight[id]
	}
	return load
}

// activeAll reports the executing-task counts each TM last
// self-reported in its heartbeat registration.
func (rt *routingTable) activeAll() map[string]int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	active := make(map[string]int, len(rt.tms))
	for _, id := range rt.tms {
		active[id] = rt.active[id]
	}
	return active
}

// inflightOf reports one TM's in-flight dispatch count.
func (rt *routingTable) inflightOf(tmID string) int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.inflight[tmID]
}

// addInflight charges one dispatch to a TM (and, for serving kinds, its
// weighted demand to the servable) — dispatchTo's accounting.
func (rt *routingTable) addInflight(tmID, servableID string, weight int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.inflight[tmID]++
	if servableID != "" {
		rt.svInflight[servableID] += weight
	}
}

// subInflight reverses addInflight, clamping at zero — the counters
// track requests the service is waiting on and must not go negative
// when replies and deregistrations race.
func (rt *routingTable) subInflight(tmID, servableID string, weight int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.inflight[tmID] > 0 {
		rt.inflight[tmID]--
	}
	if servableID != "" {
		if rt.svInflight[servableID] >= weight {
			rt.svInflight[servableID] -= weight
		} else {
			rt.svInflight[servableID] = 0
		}
	}
}

// servableLoad reports the in-flight run/batch/pipeline work-unit count
// for one servable — the autoscaler's demand signal.
func (rt *routingTable) servableLoad(servableID string) int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.svInflight[servableID]
}

// resvKey addresses one cell of the (tenant × servable) reservation
// matrix. The empty tenant is the anonymous/default lane.
type resvKey struct {
	tenant   string
	servable string
}

// admitVerdict is reserve's outcome: admitted, refused by the
// servable's pending bound (overloaded), or refused by the tenant's
// in-flight quota (quota exceeded).
type admitVerdict int

const (
	admitOK admitVerdict = iota
	admitOverloaded
	admitQuota
)

// reserve is the admission-control check-and-reserve over the
// two-level table: the servable's pending bound and the tenant's
// in-flight quota are checked and the reservation taken under ONE
// critical section, so a simultaneous burst cannot slip past either
// bound. A bound <= 0 is unenforced; the reservation itself is always
// recorded (it is the in-flight accounting for stats and release).
// pending reports the count the refused axis was observed at.
func (rt *routingTable) reserve(tenant, servableID string, weight, svBound, tenantBound int) (pending int, v admitVerdict) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if svBound > 0 {
		if p := rt.resvSv[servableID]; p >= svBound {
			return p, admitOverloaded
		}
	}
	if tenantBound > 0 {
		if p := rt.resvTenant[tenant]; p >= tenantBound {
			return p, admitQuota
		}
	}
	rt.resvSv[servableID] += weight
	rt.resvTenant[tenant] += weight
	rt.resvCell[resvKey{tenant, servableID}] += weight
	return 0, admitOK
}

// unreserve releases an admission reservation, clamping at zero and
// deleting exhausted entries so a drained table is empty.
func (rt *routingTable) unreserve(tenant, servableID string, weight int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	dec := func(m map[string]int, k string) {
		if m[k] > weight {
			m[k] -= weight
		} else {
			delete(m, k)
		}
	}
	dec(rt.resvSv, servableID)
	dec(rt.resvTenant, tenant)
	key := resvKey{tenant, servableID}
	if rt.resvCell[key] > weight {
		rt.resvCell[key] -= weight
	} else {
		delete(rt.resvCell, key)
	}
}

// reservedByTenant snapshots the per-tenant in-flight reservation
// totals (the stats view of the tenant axis).
func (rt *routingTable) reservedByTenant() map[string]int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make(map[string]int, len(rt.resvTenant))
	for t, n := range rt.resvTenant {
		out[t] = n
	}
	return out
}

// reservationsEmpty reports whether every admission reservation has
// been released — the drain-to-zero invariant the storm test pins.
func (rt *routingTable) reservationsEmpty() bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return len(rt.resvSv) == 0 && len(rt.resvTenant) == 0 && len(rt.resvCell) == 0
}

// placementsAll reports which TMs host each servable (copies).
func (rt *routingTable) placementsAll() map[string][]string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make(map[string][]string, len(rt.placements))
	for id, tms := range rt.placements {
		out[id] = append([]string(nil), tms...)
	}
	return out
}

// placementsOf reports which TMs host one servable.
func (rt *routingTable) placementsOf(servableID string) []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return append([]string{}, rt.placements[servableID]...)
}

// heldBy lists the servables with a placement on the given TM — the
// drain migration work list.
func (rt *routingTable) heldBy(tmID string) []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	var held []string
	for id, placed := range rt.placements {
		for _, p := range placed {
			if p == tmID {
				held = append(held, id)
				break
			}
		}
	}
	return held
}

// hostedElsewhereLive reports whether a servable has a placement on a
// site routing would actually pick: routable AND live. Used by drain
// migration — a stale peer (registered, not draining, heartbeats
// stopped) must not excuse skipping a migration.
func (rt *routingTable) hostedElsewhereLive(servableID string, now time.Time, staleAfter time.Duration) bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return len(rt.liveLocked(rt.routableLocked(rt.placements[servableID], nil), now, staleAfter)) > 0
}

// recordDeployment records placement and desired replicas for a
// completed deploy, but ONLY while the target TM is still routable: a
// deploy that lost the race to a concurrent DrainTM (or a
// deregistration) must not re-grow placement on a site being emptied —
// the drain's migration pass has already run or will never see this
// entry. The servable-existence half of the check stays with the
// caller (Service.recordDeployment), which holds the repository lock
// across this call.
func (rt *routingTable) recordDeployment(servableID, tmID string, replicas int) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, draining := rt.draining[tmID]; draining {
		return fmt.Errorf("%w: task manager %s is draining", ErrConflict, tmID)
	}
	if len(rt.registeredLocked([]string{tmID})) == 0 {
		return fmt.Errorf("%w: task manager %s deregistered during deploy", ErrConflict, tmID)
	}
	rt.addPlacementLocked(servableID, tmID)
	rt.replicas[servableID] = replicas
	return nil
}

// applyDeploy is the WAL-replay upsert form of recordDeployment: no
// routability checks (the record describes a deploy that already
// happened), replicas only updated when the record carries a count.
func (rt *routingTable) applyDeploy(servableID, tmID string, replicas int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.addPlacementLocked(servableID, tmID)
	if replicas > 0 {
		rt.replicas[servableID] = replicas
	}
}

// removePlacement drops one (servable, TM) placement entry, deleting
// the map key when it was the last one.
func (rt *routingTable) removePlacement(servableID, tmID string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.removePlacementLocked(servableID, tmID)
}

// dropServable removes every routing trace of a servable (Unpublish),
// returning the TMs that were hosting it so the caller can tear their
// replicas down.
func (rt *routingTable) dropServable(servableID string) (placed []string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	placed = append(placed, rt.placements[servableID]...)
	delete(rt.placements, servableID)
	delete(rt.replicas, servableID)
	return placed
}

// setReplicas records the desired replica count (Scale outcome / WAL
// replay).
func (rt *routingTable) setReplicas(servableID string, replicas int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.replicas[servableID] = replicas
}

// replicasOf reports the desired replica count (0 when never deployed).
func (rt *routingTable) replicasOf(servableID string) int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.replicas[servableID]
}

// routeSnapshot deep-copies the durable slice of routing state —
// placements, replicas, drain marks — for checkpointing.
func (rt *routingTable) routeSnapshot() (placements map[string][]string, replicas map[string]int, draining []string) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	placements = make(map[string][]string, len(rt.placements))
	for id, tms := range rt.placements {
		placements[id] = append([]string(nil), tms...)
	}
	replicas = make(map[string]int, len(rt.replicas))
	for id, n := range rt.replicas {
		replicas[id] = n
	}
	for id := range rt.draining {
		draining = append(draining, id)
	}
	return placements, replicas, draining
}

// restore installs snapshot state: placements and replicas are replaced
// wholesale, drain marks are added (a mark set since the snapshot was
// cut must survive the restore). Restored placements are kept verbatim
// — at the usual boot-time restore no TM has registered yet, so
// filtering here would drop every placement; pick ignores entries
// naming unregistered TMs at routing time instead.
func (rt *routingTable) restore(placements map[string][]string, replicas map[string]int, draining []string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.placements = make(map[string][]string, len(placements))
	for id, tms := range placements {
		rt.placements[id] = tms
	}
	rt.replicas = make(map[string]int, len(replicas))
	for id, n := range replicas {
		rt.replicas[id] = n
	}
	for _, id := range draining {
		rt.draining[id] = struct{}{}
	}
}

// --- locked helpers ----------------------------------------------------------

// routableLocked filters ids to TMs routing may select: registered, not
// draining, and not on the caller's exclusion list. Caller holds rt.mu.
func (rt *routingTable) routableLocked(ids, excluded []string) []string {
	out := make([]string, 0, len(ids))
next:
	for _, id := range rt.registeredLocked(ids) {
		if _, draining := rt.draining[id]; draining {
			continue
		}
		for _, ex := range excluded {
			if id == ex {
				continue next
			}
		}
		out = append(out, id)
	}
	return out
}

// registeredLocked filters ids to those currently registered. Caller
// holds rt.mu.
func (rt *routingTable) registeredLocked(ids []string) []string {
	registered := make([]string, 0, len(ids))
	for _, id := range ids {
		for _, known := range rt.tms {
			if id == known {
				registered = append(registered, id)
				break
			}
		}
	}
	return registered
}

// liveLocked filters candidates by heartbeat freshness; with liveness
// disabled (staleAfter <= 0) every candidate passes. Caller holds
// rt.mu.
func (rt *routingTable) liveLocked(candidates []string, now time.Time, staleAfter time.Duration) []string {
	if staleAfter <= 0 {
		return candidates
	}
	cutoff := now.Add(-staleAfter)
	live := make([]string, 0, len(candidates))
	for _, id := range candidates {
		if seen, ok := rt.seen[id]; ok && seen.After(cutoff) {
			live = append(live, id)
		}
	}
	return live
}

// leastLoadedLocked picks the candidate with the fewest in-flight
// dispatches, breaking ties round-robin (shared with every routing
// decision so policies cannot diverge). Caller holds rt.mu for writing
// (the tie-break counter advances).
func (rt *routingTable) leastLoadedLocked(candidates []string) (string, bool) {
	if len(candidates) == 0 {
		return "", false
	}
	minLoad := -1
	var tied []string
	for _, id := range candidates {
		switch load := rt.inflight[id]; {
		case minLoad < 0 || load < minLoad:
			minLoad = load
			tied = tied[:0]
			tied = append(tied, id)
		case load == minLoad:
			tied = append(tied, id)
		}
	}
	tm := tied[rt.rr%len(tied)]
	rt.rr++
	return tm, true
}

// addPlacementLocked appends a placement if absent. Caller holds rt.mu
// for writing.
func (rt *routingTable) addPlacementLocked(servableID, tmID string) {
	for _, id := range rt.placements[servableID] {
		if id == tmID {
			return
		}
	}
	rt.placements[servableID] = append(rt.placements[servableID], tmID)
}

// removePlacementLocked is removePlacement with rt.mu already held for
// writing (the deregistration path batches many removals).
func (rt *routingTable) removePlacementLocked(servableID, tmID string) bool {
	placed := rt.placements[servableID]
	for i, p := range placed {
		if p == tmID {
			rt.placements[servableID] = append(placed[:i], placed[i+1:]...)
			if len(rt.placements[servableID]) == 0 {
				delete(rt.placements, servableID)
			}
			return true
		}
	}
	return false
}
