package core_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/servable"
)

// TestPublishStormConcurrentWithRunFlood exercises the split-lock
// design end to end under the race detector: a storm of repository
// writes (Publish, Deploy, UpdateMetadata) runs concurrently with a
// flood of routed Run calls against an already-deployed servable. The
// flood must complete error-free — routing reads must not be starved or
// corrupted by the write storm. The held-write-lock canary in
// routing_test.go pins the non-blocking property; this test pins
// correctness of both paths interleaving for real.
func TestPublishStormConcurrentWithRunFlood(t *testing.T) {
	ms := core.New(core.Config{
		Registry:     container.NewRegistry(),
		TMStaleAfter: 2 * time.Second,
	})
	defer ms.Close()
	tmA := liveSite(t, ms, "storm-a", 100*time.Millisecond)
	defer tmA.Close()
	tmB := liveSite(t, ms, "storm-b", 100*time.Millisecond)
	defer tmB.Close()
	if err := ms.WaitForTM(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	floodID, err := ms.Publish(ctx, core.Anonymous, servable.NoopPackage())
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Deploy(ctx, core.Anonymous, floodID, 2, "parsl"); err != nil {
		t.Fatal(err)
	}

	const (
		floodWorkers = 8
		floodRuns    = 40
		stormRounds  = 30
	)
	var (
		wg       sync.WaitGroup
		ran      atomic.Int64
		stormErr = make(chan error, 1)
		floodErr = make(chan error, floodWorkers)
	)

	// Repository-write storm: fresh publishes and deploys, plus metadata
	// rewrites of the servable the flood is running — the exact writes
	// that used to serialize against routing under the monolithic lock.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < stormRounds; i++ {
			pkg := servable.NoopPackage()
			pkg.Doc.Publication.Name = fmt.Sprintf("storm-%d", i)
			id, err := ms.Publish(ctx, core.Anonymous, pkg)
			if err != nil {
				stormErr <- fmt.Errorf("publish %d: %w", i, err)
				return
			}
			if err := ms.Deploy(ctx, core.Anonymous, id, 1, "parsl"); err != nil {
				stormErr <- fmt.Errorf("deploy %d: %w", i, err)
				return
			}
			if err := ms.UpdateMetadata(core.Anonymous, floodID, func(p *schema.Publication) {
				p.Description = fmt.Sprintf("storm pass %d", i)
			}); err != nil {
				stormErr <- fmt.Errorf("update %d: %w", i, err)
				return
			}
		}
	}()

	for w := 0; w < floodWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < floodRuns; i++ {
				if _, err := ms.Run(ctx, core.Anonymous, floodID, fmt.Sprintf("%d-%d", w, i), core.RunOptions{}); err != nil {
					floodErr <- fmt.Errorf("worker %d run %d: %w", w, i, err)
					return
				}
				ran.Add(1)
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case err := <-stormErr:
		t.Fatal(err)
	case err := <-floodErr:
		t.Fatal(err)
	case <-time.After(2 * time.Minute):
		t.Fatalf("storm/flood deadlocked: %d/%d runs completed", ran.Load(), floodWorkers*floodRuns)
	}
	select {
	case err := <-stormErr:
		t.Fatal(err)
	default:
	}
	select {
	case err := <-floodErr:
		t.Fatal(err)
	default:
	}
	if got := ran.Load(); got != floodWorkers*floodRuns {
		t.Fatalf("flood completed %d/%d runs", got, floodWorkers*floodRuns)
	}
	// Both TMs stayed live through the churn.
	if live := ms.LiveTaskManagers(); len(live) != 2 {
		t.Fatalf("live TMs after storm = %v", live)
	}
}
