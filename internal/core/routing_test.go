package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/container"
)

// The lock split's contract: the routing table (TM registry,
// placements, in-flight counts, drain marks) has its own lock, so the
// service hot path — pickTM, admission, load reads — never contends
// with repository writes (Publish, UpdateMetadata, WAL-backed
// mutations). These tests pin that contract directly.

// TestRoutingReadsDoNotBlockOnRepositoryWrite is the held-write-lock
// canary: with the repository lock held exclusively (as a slow Publish
// or a checkpoint capture would), every routing-path operation must
// still complete. Before the split all of these queued behind s.mu.
func TestRoutingReadsDoNotBlockOnRepositoryWrite(t *testing.T) {
	s := New(Config{Registry: container.NewRegistry(), TMStaleAfter: time.Minute})
	defer s.Close()
	now := s.timeFunc()
	s.watcher.beat("tm-a")
	s.route.beat("tm-a", 0, false, now)
	s.watcher.beat("tm-b")
	s.route.beat("tm-b", 0, false, now)
	s.route.applyDeploy("sv", "tm-a", 2)

	s.mu.Lock()
	done := make(chan error, 1)
	go func() {
		done <- func() error {
			if tm, err := s.route.pick("sv", nil, s.timeFunc(), s.cfg.TMStaleAfter); err != nil || tm != "tm-a" {
				return fmt.Errorf("pick = %q, %v", tm, err)
			}
			if got := len(s.TaskManagers()); got != 2 {
				return fmt.Errorf("TaskManagers = %d, want 2", got)
			}
			if got := len(s.LiveTaskManagers()); got != 2 {
				return fmt.Errorf("LiveTaskManagers = %d, want 2", got)
			}
			s.TMLoad()
			s.TMActive()
			s.Placements()
			s.DrainingTMs()
			s.FailoverStats()
			s.WatcherStats()
			release, err := s.admitRun(Anonymous, "sv", 1)
			if err != nil {
				return fmt.Errorf("admitRun: %v", err)
			}
			release()
			s.route.addInflight("tm-a", "sv", 1)
			s.route.subInflight("tm-a", "sv", 1)
			unwatch := s.watcher.watch("tm-a", func(error) {})
			unwatch()
			return nil
		}()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("routing-path operation blocked on the held repository write lock")
	}
	s.mu.Unlock()
}

// TestWatcherWaiterAccounting pins the O(#TMs) watcher design at the
// unit level: any number of in-flight waiters on one TM share one
// timer — the stats report (TMs, Waiters) accordingly, and registering
// a thousand waiters spawns no goroutines.
func TestWatcherWaiterAccounting(t *testing.T) {
	now := time.Now()
	lw := newLivenessWatcher(time.Minute, func() time.Time { return now })
	defer lw.stop()
	lw.beat("tm-1")

	const waiters = 1000
	before := runtime.NumGoroutine()
	var mu sync.Mutex
	fired := 0
	unwatch := make([]func(), 0, waiters)
	for i := 0; i < waiters; i++ {
		unwatch = append(unwatch, lw.watch("tm-1", func(error) {
			mu.Lock()
			fired++
			mu.Unlock()
		}))
	}
	if d := runtime.NumGoroutine() - before; d > 5 {
		t.Fatalf("registering %d waiters spawned %d goroutines; the watcher must be timer-driven, O(#TMs)", waiters, d)
	}
	if st := lw.stats(); st.TMs != 1 || st.Waiters != waiters || st.Lost != 0 {
		t.Fatalf("stats = %+v, want {TMs:1 Waiters:%d Lost:0}", st, waiters)
	}

	// Half unwatch (dispatches completing normally)...
	for _, u := range unwatch[:waiters/2] {
		u()
	}
	if st := lw.stats(); st.Waiters != waiters/2 {
		t.Fatalf("after unwatch: Waiters = %d, want %d", st.Waiters, waiters/2)
	}
	// ...then the TM is lost: every remaining waiter is canceled.
	lw.markLost("tm-1")
	mu.Lock()
	got := fired
	mu.Unlock()
	if got != waiters/2 {
		t.Fatalf("markLost fanned to %d waiters, want %d", got, waiters/2)
	}
	if st := lw.stats(); st.Waiters != 0 || st.Lost != 1 {
		t.Fatalf("after markLost: stats = %+v, want {Waiters:0 Lost:1}", st)
	}
}

// TestWatcherExpiryFansOut drives the timer path with a real clock: a
// TM that stops beating expires once its window lapses, and the fan-out
// carries errTMLost so dispatchWatched's failover trigger fires.
func TestWatcherExpiryFansOut(t *testing.T) {
	lw := newLivenessWatcher(50*time.Millisecond, time.Now)
	defer lw.stop()
	lw.beat("tm-1")

	causes := make(chan error, 2)
	ctx1, cancel1 := context.WithCancelCause(context.Background())
	defer cancel1(nil)
	lw.watch("tm-1", cancel1)
	ctx2, cancel2 := context.WithCancelCause(context.Background())
	defer cancel2(nil)
	lw.watch("tm-1", cancel2)
	go func() { <-ctx1.Done(); causes <- context.Cause(ctx1) }()
	go func() { <-ctx2.Done(); causes <- context.Cause(ctx2) }()

	for i := 0; i < 2; i++ {
		select {
		case cause := <-causes:
			if !errors.Is(cause, errTMLost) {
				t.Fatalf("waiter canceled with %v, want errTMLost", cause)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("watcher never expired the silent TM")
		}
	}
	// A late watch on the lost TM cancels immediately.
	ctx3, cancel3 := context.WithCancelCause(context.Background())
	defer cancel3(nil)
	lw.watch("tm-1", cancel3)
	select {
	case <-ctx3.Done():
		if !errors.Is(context.Cause(ctx3), errTMLost) {
			t.Fatalf("late watch canceled with %v, want errTMLost", context.Cause(ctx3))
		}
	case <-time.After(time.Second):
		t.Fatal("watch on an already-lost TM must cancel immediately")
	}
}

// TestWatcherBeatRearms verifies a beat between timer arm and expiry
// re-arms rather than losing the TM.
func TestWatcherBeatRearms(t *testing.T) {
	lw := newLivenessWatcher(80*time.Millisecond, time.Now)
	defer lw.stop()
	lw.beat("tm-1")
	for i := 0; i < 5; i++ {
		time.Sleep(40 * time.Millisecond)
		lw.beat("tm-1")
	}
	if st := lw.stats(); st.Lost != 0 {
		t.Fatalf("heartbeating TM marked lost: %+v", st)
	}
}

// --- routing hot-path benchmarks --------------------------------------------
// CI runs these with -benchmem: a regression in allocs/op on the pick
// or admission path shows up in the bench job's output.

func benchRoutingTable(tms, servables int) *routingTable {
	rt := newRoutingTable()
	now := time.Now()
	for i := 0; i < tms; i++ {
		rt.beat(fmt.Sprintf("tm-%d", i), 0, false, now)
	}
	for s := 0; s < servables; s++ {
		for i := 0; i < 3 && i < tms; i++ {
			rt.applyDeploy(fmt.Sprintf("sv-%d", s), fmt.Sprintf("tm-%d", (s+i)%tms), 2)
		}
	}
	return rt
}

func BenchmarkRoutingPick(b *testing.B) {
	rt := benchRoutingTable(16, 64)
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.pick(fmt.Sprintf("sv-%d", i%64), nil, now, time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoutingInflight(b *testing.B) {
	rt := benchRoutingTable(16, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.addInflight("tm-3", "sv-1", 1)
		rt.subInflight("tm-3", "sv-1", 1)
	}
}

func BenchmarkRoutingPickParallel(b *testing.B) {
	rt := benchRoutingTable(16, 64)
	now := time.Now()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			if _, err := rt.pick(fmt.Sprintf("sv-%d", i%64), nil, now, time.Minute); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkWatcherWatch(b *testing.B) {
	lw := newLivenessWatcher(time.Minute, time.Now)
	defer lw.stop()
	lw.beat("tm-1")
	cancel := func(error) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lw.watch("tm-1", cancel)()
	}
}
