// Package core implements the DLHub Management Service (§IV-A), "the
// user-facing interface to DLHub. It enables users to publish models,
// query available models, execute tasks (e.g., inference), construct
// pipelines, and monitor the status of tasks", with "advanced
// functionality to build models, optimize task performance, route
// workloads to suitable executors, batch tasks, and cache results."
//
// The service owns the model repository (validation, versioning,
// container building, search indexing), the ZeroMQ-style task queue to
// registered Task Managers, synchronous and asynchronous task
// execution, batching, pipelines and access control via the auth
// substrate. The REST API in http.go wraps the methods here; benches
// and tests may also drive the service in-process. Pipelines are
// service-orchestrated: each step routes, caches and accounts demand
// independently, with a TM-local monolith fast path when every step is
// co-deployed on one site (pipeline.go).
//
// Two serving-layer mechanisms extend the paper's design for multi-TM
// deployments: a service-layer result cache with singleflight
// de-duplication (cache.go) that answers repeated identical requests
// before routing, and least-outstanding-requests routing (pickTM) that
// sends new work to the idlest live Task Manager instead of blind
// round-robin. See docs/ARCHITECTURE.md for the request lifecycle.
//
// The API is context-first: Run, RunBatch, RunAsync, Publish, Search,
// Deploy, Scale and RunCoalesced take a context whose cancellation or
// deadline propagates through routing, the queue and the reply wait —
// a canceled request frees its TM load slot immediately, withdraws its
// still-unclaimed task, and releases its singleflight followers.
// Failures are classified *Error values (errors.go) with stable codes
// mapped to HTTP statuses; the wire surface is versioned under /api/v2
// (http_v2.go) with the original /api routes kept as shims (http.go).
package core

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/auth"
	"repro/internal/container"
	"repro/internal/queue"
	"repro/internal/schema"
	"repro/internal/search"
	"repro/internal/servable"
	"repro/internal/store"
	"repro/internal/taskmanager"
	"repro/internal/transfer"
)

// Config configures the Management Service.
type Config struct {
	// Auth enables authentication; nil runs the service open (benches).
	Auth *auth.Service
	// RequireAuth (with Auth set) makes bearer tokens mandatory: a
	// request with no (or an invalid) Authorization header is rejected
	// 401 instead of falling back to the anonymous caller, and the
	// X-DLHub-Tenant development shim is rejected outright. This is what
	// `dlhub-server -auth` turns on; tests that want optional auth set
	// Auth alone.
	RequireAuth bool
	// RunScope is the Globus Auth scope required to invoke servables.
	RunScope string
	// AuthClientID is the resource-server client (registered on Auth)
	// that login tokens are issued for — the Management Service's own
	// client identity (auth_http.go).
	AuthClientID string
	// AuthProvider is the identity provider register/login requests
	// target when they name none ("" = "local").
	AuthProvider string
	// Registry stores built servable container images.
	Registry *container.Registry
	// TaskTimeout bounds synchronous task execution (default 120s).
	TaskTimeout time.Duration
	// Transfer enables publish-by-reference: model components named as
	// globus:// URIs are downloaded from endpoints at publication time
	// (§IV-A). Nil disables reference resolution.
	Transfer *transfer.Service
	// TransferClientID is the downstream resource server used to mint
	// dependent tokens for endpoint access (§IV-D); its scopes must
	// include TransferScope.
	TransferClientID string
	// TransferScope is the scope requested on dependent tokens.
	TransferScope string
	// TMStaleAfter drops Task Managers from routing when no
	// registration/heartbeat arrived within this window (0 disables
	// liveness filtering).
	TMStaleAfter time.Duration
	// Cache tunes the service-layer result cache (zero value: enabled
	// with defaults; set Disabled to turn it off).
	Cache CacheConfig
	// DisableV1 retires the deprecated v1 compatibility shims: every
	// /api/* (non-v2) route answers 410 Gone pointing at /api/v2.
	DisableV1 bool
	// LogRequests enables HTTP access logging through the middleware
	// chain (off by default: benches and tests stay quiet).
	LogRequests bool
	// IdempotencyTTL bounds how long completed idempotency-keyed
	// responses are replayable (default 10m).
	IdempotencyTTL time.Duration
	// AutoscaleInterval is the autoscaler control-loop tick (default
	// 1s). The loop is idle-cheap: with no enabled policies a tick is a
	// map read under a mutex.
	AutoscaleInterval time.Duration
	// MaxQueue is the service-wide admission-control default: when > 0,
	// synchronous runs for a servable whose pending demand (dispatched
	// + coalescing) reaches this bound fail fast with ErrOverloaded
	// instead of queueing. A per-servable AutoscalePolicy.MaxQueue
	// overrides it.
	MaxQueue int
	// TaskRetention bounds how long a finished async task stays
	// queryable: the sweeper deletes completed/failed tasks this long
	// after they finish (default 15m; < 0 retains forever). Without it
	// the task map grows one entry per RunAsync for the service
	// lifetime.
	TaskRetention time.Duration
	// FailoverRetries bounds how many times one synchronous run may be
	// re-dispatched after its routed Task Manager misses the liveness
	// window mid-request (default 2; < 0 disables dead-TM failover).
	// Failover requires TMStaleAfter > 0 — without a liveness window
	// there is no dead-TM signal to act on.
	FailoverRetries int
	// Store is the durability seam (durable.go): every repository
	// mutation appends a record to it, and Recover replays it at boot.
	// Nil disables durable logging entirely — tests and the bench
	// testbed pay nothing, and a -snapshot-only server keeps its
	// caller-driven whole-state saves.
	Store store.Store
}

// Service is the Management Service.
type Service struct {
	cfg     Config
	broker  *queue.Broker
	index   *search.Index
	builder *container.Builder

	// cache is the service-layer result cache (nil when disabled);
	// flight collapses concurrent identical dispatches.
	cache  *resultCache
	flight flightGroup

	// mu is the REPOSITORY lock: it guards docs, versions and packages
	// only. Routing/placement state lives in route (routing.go) under
	// its own lock, so the serving hot path never contends with
	// repository writes. Lock order: mu may be held while calling into
	// route; route methods never take mu.
	mu       sync.RWMutex
	docs     map[string]*schema.Document   // id -> latest
	versions map[string][]*schema.Document // id -> all versions
	packages map[string]*servable.Package  // id -> latest package

	// route is the routing table: TM registry, heartbeat freshness,
	// placements, desired replicas, drain marks, in-flight and
	// admission counters (routing.go).
	route *routingTable
	// watcher is the per-TM broadcast dead-TM watcher (watcher.go): one
	// timer per TM, re-armed by heartbeats, fanning errTMLost out to
	// that TM's in-flight dispatches.
	watcher *livenessWatcher

	// failover counters (lifecycle.go): dispatches aborted by the
	// dead-TM watcher, re-dispatches to another site, and requests
	// that ran out of budget or sites.
	failoverLost         atomic.Uint64
	failoverRedispatched atomic.Uint64
	failoverExhausted    atomic.Uint64

	taskMu sync.RWMutex
	tasks  map[string]*asyncTask
	// taskSwept counts finished async tasks deleted by the retention
	// sweeper (exposed in /api/v2/stats).
	taskSwept uint64

	batchMu  sync.Mutex
	batchers map[string]*batcher

	// idem stores idempotency-keyed v2 responses for replay.
	idem *idemStore

	// scaler is the replica autoscaler (autoscaler.go); its control
	// loop runs for the service lifetime.
	scaler *autoscaler

	// tenants is the quota/priority registry (tenancy.go) — shared
	// with cfg.Auth when authentication is on, standalone in open
	// mode so quota admin always works. tbuckets holds the per-tenant
	// rate-limit token buckets; tcounters the per-tenant admission
	// counters surfaced in /api/v2/stats.
	tenants   *auth.TenantRegistry
	tbMu      sync.Mutex
	tbuckets  map[string]*tokenBucket
	tcMu      sync.Mutex
	tcounters map[string]*tenantCounters

	// users is the durable identity table (auth_http.go): registrations
	// accepted over HTTP, keyed provider/username, mirrored into
	// cfg.Auth when authentication is on, and rebuilt from the
	// checkpoint + WAL on recovery — so accounts survive restarts even
	// though tokens deliberately do not.
	userMu sync.Mutex
	users  map[string]userRecord

	// routeMu guards routeStats, the per-route HTTP counters the
	// middleware chain maintains.
	routeMu    sync.Mutex
	routeStats map[string]*routeStat

	stop      chan struct{}
	closeOnce sync.Once
	regWG     sync.WaitGroup
	timeFunc  func() time.Time
	// lifeCtx is the service lifetime context: background dispatches
	// (coalesced batches, autoscaler scale tasks) run under it so Close
	// aborts them instead of leaving them to their own deadlines.
	lifeCtx    context.Context
	lifeCancel context.CancelFunc
}

// AsyncTask tracks an asynchronous invocation (§IV-A: "the Management
// Service returns a unique task UUID that can be used subsequently to
// monitor the status of the task and retrieve its result").
type AsyncTask struct {
	ID       string             `json:"id"`
	Status   string             `json:"status"` // pending | completed | failed
	Tenant   string             `json:"tenant,omitempty"`
	Reply    *taskmanager.Reply `json:"reply,omitempty"`
	Error    string             `json:"error,omitempty"`
	Created  time.Time          `json:"created"`
	Finished time.Time          `json:"finished,omitempty"`
}

// asyncTask pairs the public task state with its completion signal;
// done is closed exactly once, when the task leaves "pending". SSE
// streams (GET /api/v2/tasks/{id}/events) block on it instead of
// polling.
type asyncTask struct {
	AsyncTask
	done chan struct{}
}

// New creates a Management Service with its own broker.
func New(cfg Config) *Service {
	if cfg.TaskTimeout <= 0 {
		cfg.TaskTimeout = 120 * time.Second
	}
	if cfg.TaskRetention == 0 {
		cfg.TaskRetention = 15 * time.Minute
	}
	if cfg.Registry == nil {
		cfg.Registry = container.NewRegistry()
	}
	s := &Service{
		cfg: cfg,
		// Visibility must exceed the longest single task (large batch
		// chunks in the Fig. 7 sweeps run for minutes at one replica);
		// redelivery is for lost Task Managers, not slow ones.
		broker:    queue.NewBroker(10 * time.Minute),
		index:     search.NewIndex(),
		builder:   container.NewBuilder(cfg.Registry),
		docs:      make(map[string]*schema.Document),
		versions:  make(map[string][]*schema.Document),
		packages:  make(map[string]*servable.Package),
		tasks:     make(map[string]*asyncTask),
		route:     newRoutingTable(),
		stop:      make(chan struct{}),
		timeFunc:  time.Now,
		tbuckets:  make(map[string]*tokenBucket),
		tcounters: make(map[string]*tenantCounters),
		users:     make(map[string]userRecord),
	}
	if cfg.Auth != nil {
		s.tenants = cfg.Auth.Tenants()
	} else {
		s.tenants = auth.NewTenantRegistry()
	}
	s.watcher = newLivenessWatcher(cfg.TMStaleAfter, func() time.Time { return s.timeFunc() })
	s.lifeCtx, s.lifeCancel = context.WithCancel(context.Background())
	if !cfg.Cache.Disabled {
		s.cache = newResultCache(cfg.Cache)
	}
	s.idem = newIdemStore(cfg.IdempotencyTTL)
	s.scaler = newAutoscaler(s, cfg.AutoscaleInterval)
	s.regWG.Add(1)
	go s.registrationLoop()
	s.regWG.Add(1)
	go s.scaler.loop()
	if cfg.TaskRetention > 0 {
		s.regWG.Add(1)
		go s.taskSweepLoop()
	}
	if cfg.Store != nil {
		// The store compacts its log by serializing the whole repository
		// through this hook; registration must precede Recover so the
		// post-replay fold-in can run.
		cfg.Store.SetCheckpointer(s.writeSnapshot)
	}
	return s
}

// Broker exposes the service's queue broker so Task Managers (local or
// remote via queue.Server) can connect to it.
func (s *Service) Broker() *queue.Broker { return s.broker }

// Close shuts the service down: background loops stop, in-flight
// lifetime-scoped dispatches are canceled, and pending coalesced
// requests are failed with ErrCanceled rather than stranded until
// their own deadlines (batcher.go). Safe to call more than once.
func (s *Service) Close() {
	s.closeOnce.Do(func() {
		close(s.stop)
		s.lifeCancel()
		s.closeBatchers()
		s.regWG.Wait()
		s.watcher.stop()
		s.broker.Close()
	})
}

// registrationLoop consumes TM registrations.
func (s *Service) registrationLoop() {
	defer s.regWG.Done()
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		msg, ok := s.broker.Pull(taskmanager.RegisterQueue, 300*time.Millisecond)
		if !ok {
			continue
		}
		var reg taskmanager.Registration
		if err := jsonUnmarshal(msg.Body, &reg); err == nil && reg.TMID != "" {
			// The watcher's deadline is re-armed BEFORE the routing
			// table learns the beat: a dispatch can only route to a TM
			// routing considers live, and by then the watcher already
			// tracks it — watch() never sees a routable-but-untracked
			// TM.
			s.watcher.beat(reg.TMID)
			s.route.beat(reg.TMID, reg.Active, reg.Draining, s.timeFunc())
		}
		s.broker.Ack(taskmanager.RegisterQueue, msg.ID)
	}
}

// TaskManagers lists registered TMs.
func (s *Service) TaskManagers() []string {
	return s.route.list()
}

// WaitForTM blocks until at least n Task Managers are registered.
func (s *Service) WaitForTM(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if len(s.TaskManagers()) >= n {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("%w: %d registered after %v", ErrNoTaskManager, len(s.TaskManagers()), timeout)
}

// pickTM selects a Task Manager by least outstanding requests: among
// the live candidates (restricted to placement sites when servableID is
// known to be placed), the one with the fewest in-flight dispatches
// wins; ties fall back to round-robin so uniform load still spreads.
// Placement entries naming unregistered OR draining TMs — snapshot
// ghosts, sites being taken out of rotation — are ignored: routing into
// their queues would strand the request until its deadline. When no
// placed TM is routable, routing falls back to every routable
// registered TM (a fast task_failed from an undeployed site beats a
// silent hang).
func (s *Service) pickTM(servableID string) (string, error) {
	return s.pickTMExcluding(servableID, nil)
}

// pickTMExcluding is pickTM with an exclusion list — the failover path
// re-picks with the lost TM excluded so routing cannot hand the request
// straight back to the dead site while its last heartbeat still looks
// fresh.
func (s *Service) pickTMExcluding(servableID string, excluded []string) (string, error) {
	return s.route.pick(servableID, excluded, s.timeFunc(), s.cfg.TMStaleAfter)
}

// TMLoad reports in-flight (dispatched, not yet answered) task counts
// per registered Task Manager.
func (s *Service) TMLoad() map[string]int {
	return s.route.loadAll()
}

// TMQueueDepth reports broker-side backlog per registered Task Manager:
// tasks ready on its queue (pushed, not yet pulled) plus tasks pulled
// but unacknowledged. The broker lives with the Management Service, so
// this view is exact for local and remote TMs alike.
func (s *Service) TMQueueDepth() map[string]int {
	tms := s.route.list()
	depth := make(map[string]int, len(tms))
	for _, id := range tms {
		q := taskmanager.TaskQueue(id)
		depth[id] = s.broker.Len(q) + s.broker.InFlight(q)
	}
	return depth
}

// TMActive reports the executing-task counts each Task Manager last
// self-reported in its heartbeat registration — the TM-side complement
// to TMQueueDepth (tasks already pulled and running at the site).
func (s *Service) TMActive() map[string]int {
	return s.route.activeAll()
}

// ServableLoad reports the in-flight (dispatched, not yet answered)
// run/batch/pipeline task count for one servable — the demand signal
// the autoscaler steers on.
func (s *Service) ServableLoad(servableID string) int {
	return s.route.servableLoad(servableID)
}

// Placements reports which Task Managers host each servable.
func (s *Service) Placements() map[string][]string {
	return s.route.placementsAll()
}

// LiveTaskManagers lists TMs passing the liveness filter.
func (s *Service) LiveTaskManagers() []string {
	return s.route.live(s.timeFunc(), s.cfg.TMStaleAfter)
}

// recordDeployment records placement and desired replicas for a
// completed deploy, but ONLY while the servable is still published AND
// the target TM is still routable: a deploy whose task was in flight
// when an Unpublish won must not resurrect routing state for a deleted
// servable, and one that lost the race to a concurrent DrainTM (or a
// deregistration) must not re-grow placement on a site being emptied —
// the drain's migration pass has already run or will never see this
// entry. A non-nil error tells the caller to undeploy the fresh
// replicas.
//
// The repository lock is held (read) ACROSS the routing-table update:
// Unpublish removes a servable's placements while holding the lock for
// writing, so a deploy here and an unpublish there stay mutually
// exclusive — no placement entry can be resurrected for a servable
// deleted between the existence check and the routing write. (s.mu →
// rt.mu is the one sanctioned nesting; see routing.go.)
func (s *Service) recordDeployment(servableID, tmID string, replicas int) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.docs[servableID]; !ok {
		return fmt.Errorf("%w: %s (unpublished during deploy)", ErrNotFound, servableID)
	}
	return s.route.recordDeployment(servableID, tmID, replicas)
}

// --- identity ---------------------------------------------------------------

// Caller is a resolved request identity. Tenant is the accounting
// tag the admission layer and broker fairness key on: "" means the
// anonymous/default tenant (unmapped identities, open mode), which
// carries no quota and lands in the broker's default lane — the
// pre-tenancy behavior, byte for byte.
type Caller struct {
	IdentityID string
	Principals []string
	Tenant     string
}

// Anonymous is the unauthenticated caller: it matches the public
// principal plus its own identity URN (so anonymous publishers can see
// their own owner-only documents in search results).
var Anonymous = Caller{
	IdentityID: "urn:anonymous",
	Principals: []string{auth.PublicPrincipal, "urn:anonymous"},
}

// ResolveCaller introspects a bearer token. With no Auth configured,
// every caller is anonymous-with-public access; with Auth configured
// but not required, a missing header still resolves anonymous (the
// optional-auth mode tests use). Under RequireAuth a missing header is
// an authentication failure — there is no anonymous fallback.
func (s *Service) ResolveCaller(bearer string) (Caller, error) {
	if s.cfg.Auth == nil {
		return Anonymous, nil
	}
	if bearer == "" {
		if s.cfg.RequireAuth {
			return Caller{}, fmt.Errorf("%w: missing bearer token", auth.ErrInvalidToken)
		}
		return Anonymous, nil
	}
	tok, err := s.cfg.Auth.Authorize(bearer, s.cfg.RunScope)
	if err != nil {
		return Caller{}, err
	}
	return Caller{
		IdentityID: tok.IdentityID,
		Principals: s.cfg.Auth.Principals(tok.IdentityID),
		Tenant:     s.tenants.TenantOf(tok.IdentityID),
	}, nil
}

// --- repository --------------------------------------------------------------

// Publish validates, versions, builds and indexes a servable package
// (§IV-A "Servables"). It returns the assigned servable ID. ctx bounds
// the container build; a canceled publish returns before indexing.
func (s *Service) Publish(ctx context.Context, caller Caller, pkg *servable.Package) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", wrapCtxErr(err)
	}
	doc := pkg.Doc
	if err := schema.Validate(doc); err != nil {
		return "", err
	}
	owner := caller.IdentityID
	short := ownerShort(owner)
	id := short + "/" + doc.Publication.Name

	s.mu.Lock()
	version := len(s.versions[id]) + 1
	doc.ID = id
	doc.Owner = owner
	doc.Version = version
	doc.PublishedAt = s.timeFunc()
	if len(doc.Publication.VisibleTo) == 0 {
		// Owner-only by default.
		doc.Publication.VisibleTo = []string{owner}
	}
	s.docs[id] = doc
	s.versions[id] = append(s.versions[id], doc)
	s.packages[id] = pkg
	// The durable record needs a copy taken under the lock: the live
	// doc pointer keeps mutating through UpdateMetadata after unlock.
	var durableDoc *schema.Document
	if s.cfg.Store != nil {
		durableDoc = doc.Clone()
	}
	s.mu.Unlock()
	// Logged at the repository transition, not after the build: a
	// failed build leaves the version installed (matching in-memory
	// semantics), and recovery replays exactly what the maps held.
	if durableDoc != nil {
		s.logged(recKindPublish, recPublish{Doc: durableDoc, Components: pkg.Components})
	}

	// Build the servable container and store it in the registry
	// (pipelines are virtual — they have no container of their own).
	if doc.Servable.Type != schema.TypePipeline {
		if err := ctx.Err(); err != nil {
			return "", wrapCtxErr(err)
		}
		if _, err := buildImage(s.builder, pkg); err != nil {
			return "", fmt.Errorf("core: servable build failed: %w", err)
		}
	}

	// Index for discovery.
	s.index.Ingest(search.Doc{
		ID:        id,
		Fields:    schema.Flatten(doc),
		VisibleTo: doc.Publication.VisibleTo,
	})
	// A new version obsoletes cached results (the version in the cache
	// key would miss anyway; dropping eagerly frees the space now).
	s.invalidateCache(id)
	return id, nil
}

func ownerShort(identityID string) string {
	// urn:identity:<provider>:<user> -> <user>; anything else verbatim.
	parts := strings.Split(identityID, ":")
	return parts[len(parts)-1]
}

// UpdateMetadata modifies a published servable's metadata (the CLI
// `update` command; also how CANDLE flips access control on release,
// §VI-A).
func (s *Service) UpdateMetadata(caller Caller, id string, update func(*schema.Publication)) error {
	s.mu.Lock()
	doc, ok := s.docs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if doc.Owner != caller.IdentityID {
		s.mu.Unlock()
		return fmt.Errorf("%w: only the owner may update %s", ErrForbidden, id)
	}
	update(&doc.Publication)
	if err := schema.Validate(doc); err != nil {
		s.mu.Unlock()
		return err
	}
	var durableDoc *schema.Document
	if s.cfg.Store != nil {
		durableDoc = doc.Clone()
	}
	s.mu.Unlock()
	if durableDoc != nil {
		s.logged(recKindMetadata, recMetadata{ID: id, Doc: durableDoc})
	}
	s.index.Ingest(search.Doc{ID: id, Fields: schema.Flatten(doc), VisibleTo: doc.Publication.VisibleTo})
	// Metadata changes can alter who may see results (e.g. VisibleTo
	// flips); drop cached results rather than reason about which edits
	// are benign.
	s.invalidateCache(id)
	return nil
}

// Unpublish removes a servable from the repository entirely: every
// version, its package, search entry, cached results, placements,
// replica record, autoscale policy and batcher — and best-effort
// undeploys its replicas from every placed Task Manager, so serving
// capacity does not stay stranded on sites for a servable no API can
// reach anymore. Owner-only. In-flight work races naturally — a
// pipeline step resolved before the unpublish completes normally; one
// resolved after fails with ErrNotFound at its step boundary.
func (s *Service) Unpublish(caller Caller, id string) error {
	s.mu.Lock()
	doc, ok := s.docs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if doc.Owner != caller.IdentityID {
		s.mu.Unlock()
		return fmt.Errorf("%w: only the owner may unpublish %s", ErrForbidden, id)
	}
	delete(s.docs, id)
	delete(s.versions, id)
	delete(s.packages, id)
	// Routing state goes under the SAME repository critical section
	// (s.mu held for writing while rt.mu is taken): recordDeployment
	// checks existence and records placement under s.mu.RLock, so this
	// write-side removal cannot interleave with it and leave a ghost
	// placement for the deleted servable.
	placed := s.route.dropServable(id)
	// The index entry and cached results go under the same critical
	// section: dropping them after unlock would race a concurrent
	// re-Publish of the id and could destroy the fresh publication's
	// entries. (The cache takes only its own lock; no inversion.)
	s.index.Delete(id) //nolint:errcheck — already-absent is fine
	s.invalidateCache(id)
	s.mu.Unlock()
	s.logged(recKindUnpublish, recServable{ID: id})
	// Controller state cleanup happens outside s.mu (the autoscaler's
	// status path acquires its own lock before s.mu — nesting here
	// would invert that order). A re-Publish racing this exact window
	// may need to re-install its policy; the window is benign
	// otherwise. Without the cleanup, the autoscaler would keep
	// driving Scale tasks (and logging ErrNotFound) for a servable
	// that no longer exists, and a batcher entry would leak for the
	// service lifetime.
	s.scaler.removePolicy(id)
	s.DisableCoalescing(id)
	// Undeploy is asynchronous and best-effort: the repository entry is
	// already gone, and a site that misses the task only leaks until
	// its own restart.
	for _, tmID := range placed {
		s.undeployAsync(id, tmID)
	}
	return nil
}

// Get returns a servable document, enforcing visibility.
func (s *Service) Get(caller Caller, id string) (*schema.Document, error) {
	s.mu.RLock()
	doc, ok := s.docs[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if !visibleTo(doc, caller) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id) // hide existence
	}
	return doc, nil
}

// Versions lists all published versions of a servable.
func (s *Service) Versions(caller Caller, id string) ([]*schema.Document, error) {
	if _, err := s.Get(caller, id); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*schema.Document(nil), s.versions[id]...), nil
}

func visibleTo(doc *schema.Document, caller Caller) bool {
	if doc.Owner == caller.IdentityID {
		return true
	}
	for _, v := range doc.Publication.VisibleTo {
		if v == auth.PublicPrincipal {
			return true
		}
		for _, p := range caller.Principals {
			if v == p {
				return true
			}
		}
	}
	return false
}

// Search runs an ACL-filtered query over the repository (§IV-A "Model
// discovery"). The index is in-memory, so ctx only gates entry — it is
// part of the signature so the search path can move to a remote index
// without another API break. A canceled ctx is an error, never an
// empty result: "no servables" and "the request never ran" must stay
// distinguishable.
func (s *Service) Search(ctx context.Context, caller Caller, q search.Query) (search.Result, error) {
	if err := ctx.Err(); err != nil {
		return search.Result{}, wrapCtxErr(err)
	}
	q.Principals = caller.Principals
	return s.index.Search(q), nil
}

// buildImage builds the servable container exactly as §IV-A describes.
func buildImage(b *container.Builder, pkg *servable.Package) (*container.Image, error) {
	docData, err := jsonMarshal(pkg.Doc)
	if err != nil {
		return nil, err
	}
	files := []container.File{{Path: "/dlhub/doc.json", Data: docData}}
	for name, data := range pkg.Components {
		files = append(files, container.File{Path: "/dlhub/components/" + name, Data: data})
	}
	deps := map[string]string{"dlhub_sdk": "0.8.4"}
	for k, v := range pkg.Doc.Servable.Dependencies {
		deps[k] = v
	}
	return b.Build(container.BuildSpec{
		Name:       "dlhub/" + strings.ReplaceAll(pkg.Doc.ID, "/", "-"),
		Tag:        fmt.Sprintf("v%d", pkg.Doc.Version),
		Deps:       deps,
		Files:      files,
		Entrypoint: "dlhub-shim",
		Labels:     map[string]string{"dlhub.servable": pkg.Doc.ID},
	})
}

// Dockerfile returns the rendered build recipe for a published
// servable — the provenance artifact shown in the repository UI.
func (s *Service) Dockerfile(caller Caller, id string) (string, error) {
	doc, err := s.Get(caller, id)
	if err != nil {
		return "", err
	}
	s.mu.RLock()
	pkg := s.packages[id]
	s.mu.RUnlock()
	deps := map[string]string{"dlhub_sdk": "0.8.4"}
	for k, v := range doc.Servable.Dependencies {
		deps[k] = v
	}
	var files []container.File
	if pkg != nil {
		for name := range pkg.Components {
			files = append(files, container.File{Path: "/dlhub/components/" + name})
		}
	}
	spec := container.BuildSpec{
		Base: "python:3.7", Deps: deps, Files: files, Entrypoint: "dlhub-shim",
	}
	return spec.Dockerfile(), nil
}

// --- serving -----------------------------------------------------------------

// RunOptions modifies task dispatch.
type RunOptions struct {
	// Executor routes to a specific serving system ("" = deployed
	// default).
	Executor string
	// NoMemo disables every memoization tier for this request — the
	// service-layer result cache and the TM cache (§V-B experiments
	// "disable DLHub memoization mechanisms").
	NoMemo bool
	// NoCache bypasses only the service-layer result cache, still
	// allowing TM-side memoization. Use it to force a request through
	// routing without forgoing site-local caching.
	NoCache bool
	// Timeout overrides the service default.
	//
	// Deprecated: pass a context.WithTimeout ctx instead; a non-zero
	// Timeout is folded into the request context and kept only as a
	// compatibility shim.
	Timeout time.Duration
}

// reqCtx applies the request deadline policy: the deprecated
// RunOptions.Timeout shim wins when set, an inherited ctx deadline is
// respected, and a deadline-free ctx gets the service default so no
// dispatch can wait unboundedly. The returned cancel must be called.
func (s *Service) reqCtx(ctx context.Context, opts RunOptions) (context.Context, context.CancelFunc) {
	if opts.Timeout > 0 {
		return context.WithTimeout(ctx, opts.Timeout)
	}
	if _, ok := ctx.Deadline(); !ok {
		return context.WithTimeout(ctx, s.cfg.TaskTimeout)
	}
	return context.WithCancel(ctx)
}

// RunResult augments the TM reply with the MS-side request time (§V-A:
// "Request time is captured at the Management Service and measures the
// time from receipt of the task request to receipt of its result").
type RunResult struct {
	taskmanager.Reply
	RequestMicros int64 `json:"request_us"`
	// CacheHit reports the result was served from the service-layer
	// cache (or shared with an identical in-flight request) without
	// dispatching a task. Reply.Cached additionally covers TM-side
	// memoization hits.
	//
	// On a hit, Output/Outputs alias the stored cache entry: in-process
	// callers must treat them as read-only (mutation would corrupt the
	// result every later hit receives). HTTP callers are unaffected —
	// results are serialized per response.
	CacheHit bool `json:"cache_hit,omitempty"`
	// wireSize is the reply's wire length, recorded by dispatchTo so
	// the result cache can charge its byte budget without
	// re-marshaling.
	wireSize int64
	// cacheSkipped marks a result whose execution path never consulted
	// the service-layer cache even though the request options allowed
	// it (monolith pipelines, pipeline batches) — the X-DLHub-Cache
	// header reports these as "bypass", not "miss".
	cacheSkipped bool
}

// markCacheHit stamps a result served without dispatching: hit flags
// set and the request time re-measured for this caller.
func markCacheHit(res RunResult, start time.Time) RunResult {
	res.CacheHit = true
	res.Cached = true
	res.RequestMicros = time.Since(start).Microseconds()
	return res
}

// cacheUsable reports whether the service-layer cache applies to a
// request with the given options. Executor-pinned runs share entries
// with default-routed ones: a result is the model's output, independent
// of which serving system computed it.
func (s *Service) cacheUsable(opts RunOptions) bool {
	return s.cache != nil && !opts.NoCache && !opts.NoMemo
}

// CacheEnabled reports whether the service-layer result cache is on.
func (s *Service) CacheEnabled() bool { return s.cache != nil }

// cacheableID reports whether requests for servableID can be answered
// from the result cache. Pipelines qualify through their per-step
// entries (a run whose every step hits is itself reported as a hit)
// even though they have no pipeline-level entry of their own.
func (s *Service) cacheableID(servableID string) bool {
	s.mu.RLock()
	_, ok := s.docs[servableID]
	s.mu.RUnlock()
	return ok
}

// CacheStats snapshots the service-layer cache counters (zero when the
// cache is disabled).
func (s *Service) CacheStats() CacheStats {
	if s.cache == nil {
		return CacheStats{}
	}
	return s.cache.stats()
}

// FlushCache drops every cached result (counters are kept).
func (s *Service) FlushCache() {
	if s.cache != nil {
		s.cache.flush()
	}
}

// invalidateCache drops all cached results for one servable.
func (s *Service) invalidateCache(servableID string) {
	if s.cache != nil {
		s.cache.invalidate(servableID)
	}
}

// runCached serves task from the result cache when possible, collapsing
// concurrent identical requests into one dispatch (singleflight). The
// leader's successful result is cached; followers and later callers are
// marked CacheHit with their own request time. A follower's wait is
// bounded by its own ctx, never the leader's; a canceled leader
// releases its followers, one of which re-dispatches.
func (s *Service) runCached(ctx context.Context, caller Caller, key, servableID string, task taskmanager.Task) (RunResult, error) {
	start := time.Now()
	if res, ok := s.cache.get(key); ok {
		return markCacheHit(res, start), nil
	}
	gen := s.cache.generation(servableID)
	res, err, shared := s.flight.do(ctx, key, func() (RunResult, error) {
		// Admission is checked by the leader only: followers add no
		// load, and a leader rejection is the overload answer for the
		// whole flight. The leader's tenant is billed — followers on
		// the same key share its reservation like they share its
		// dispatch.
		release, aerr := s.admitRun(caller, servableID, 1)
		if aerr != nil {
			return RunResult{}, aerr
		}
		defer release()
		res, err := s.dispatch(ctx, task)
		if err == nil {
			s.cache.put(key, servableID, gen, res)
		}
		return res, err
	})
	if err != nil {
		return res, err
	}
	if shared {
		s.cache.collapsed.Inc()
		res = markCacheHit(res, start)
	}
	return res, nil
}

// Run synchronously invokes a servable with one input. Cancelling ctx
// aborts the dispatch, frees the routed TM's load slot, and returns an
// error matching both context.Canceled and ErrCanceled.
func (s *Service) Run(ctx context.Context, caller Caller, servableID string, input any, opts RunOptions) (RunResult, error) {
	ctx, cancel := s.reqCtx(ctx, opts)
	defer cancel()
	doc, err := s.Get(caller, servableID)
	if err != nil {
		return RunResult{}, err
	}
	if doc.Servable.Type == schema.TypePipeline {
		// Pipelines have no pipeline-LEVEL cache entry (step servables
		// version independently, so one key cannot see staleness in an
		// updated step); the engine caches per step instead — see
		// pipeline.go for the execution and cache-key contract.
		return s.runPipeline(ctx, caller, doc, input, opts)
	}
	task := taskmanager.Task{
		ID:       queue.NewID(),
		Kind:     "run",
		Servable: servableID,
		Executor: opts.Executor,
		Input:    input,
		NoMemo:   opts.NoMemo,
		Tenant:   caller.Tenant,
	}
	if s.cacheUsable(opts) {
		if key, err := resultKey(servableID, doc.Version, "run", input); err == nil {
			return s.runCached(ctx, caller, key, servableID, task)
		}
	}
	release, err := s.admitRun(caller, servableID, 1)
	if err != nil {
		return RunResult{}, err
	}
	defer release()
	return s.dispatch(ctx, task)
}

// RunBatch synchronously invokes a servable on many inputs in one task
// (§V-B3 batching). The whole input slice is one cache unit: repeating
// an identical batch hits, but its items do not cross-populate
// single-input entries.
func (s *Service) RunBatch(ctx context.Context, caller Caller, servableID string, inputs []any, opts RunOptions) (RunResult, error) {
	ctx, cancel := s.reqCtx(ctx, opts)
	defer cancel()
	doc, err := s.Get(caller, servableID)
	if err != nil {
		return RunResult{}, err
	}
	task := taskmanager.Task{
		ID:       queue.NewID(),
		Kind:     "run_batch",
		Servable: servableID,
		Executor: opts.Executor,
		Inputs:   inputs,
		NoMemo:   opts.NoMemo,
		Tenant:   caller.Tenant,
	}
	// Pipelines are uncacheable here for the same reason as in Run:
	// step servables version independently of the pipeline document.
	if s.cacheUsable(opts) && doc.Servable.Type != schema.TypePipeline {
		if key, err := resultKey(servableID, doc.Version, "batch", inputs); err == nil {
			return s.runCached(ctx, caller, key, servableID, task)
		}
	}
	// A batch reserves its input count: admitting a 250-item batch as
	// one unit would let a single request blow far past the bound.
	release, err := s.admitRun(caller, servableID, len(inputs))
	if err != nil {
		return RunResult{}, err
	}
	defer release()
	res, err := s.dispatch(ctx, task)
	if doc.Servable.Type == schema.TypePipeline {
		res.cacheSkipped = true
	}
	return res, err
}

// dispatch routes a task via pickTM and waits for the reply, bounded by
// ctx. Synchronous serving dispatches (plain runs and batch runs —
// including pipeline steps, which dispatch as plain runs) are
// failover-protected: when the routed TM misses its liveness window
// mid-wait (the dead-TM watchdog in dispatchWatched), the task is
// re-dispatched to another routable TM up to the failover retry budget
// instead of letting the caller eat ErrTimeout. These tasks are
// idempotent by construction — pure inference with no site-side state —
// so a re-dispatch after an uncertain first execution is safe; control
// plane kinds (deploy/scale/undeploy) mutate site state and target
// specific sites, so they fast-fail on a lost TM rather than re-route.
func (s *Service) dispatch(ctx context.Context, task taskmanager.Task) (RunResult, error) {
	eligible := task.Kind == "run" || task.Kind == "run_batch"
	var excluded []string
	for {
		tmID, err := s.pickTMExcluding(task.Servable, excluded)
		if err != nil {
			if len(excluded) > 0 {
				s.noteFailoverExhausted()
				err = fmt.Errorf("%w (after %d failover attempt(s))", err, len(excluded))
			}
			return RunResult{}, err
		}
		if len(excluded) > 0 {
			s.noteFailoverRedispatch()
		}
		res, err := s.dispatchWatched(ctx, tmID, task)
		if err == nil || !eligible || !errors.Is(err, errTMLost) || ctx.Err() != nil {
			return res, err
		}
		s.noteTMLost(tmID)
		if len(excluded) >= s.failoverBudget() {
			s.noteFailoverExhausted()
			return res, err
		}
		excluded = append(excluded, tmID)
	}
}

// dispatchTo pushes a task to a specific TM queue and waits until the
// reply arrives or ctx ends. It owns the in-flight accounting pickTM
// routes on: the count rises for the whole queue+execute+reply round
// trip, so slow or backed-up TMs naturally shed new work to idle ones.
// A canceled or timed-out dispatch also decrements — the count tracks
// requests this service is waiting on, not TM health, and must not leak
// when replies are lost; shedding a wedged-but-heartbeating TM
// permanently is the liveness filter's (TMStaleAfter) job, not load
// accounting's. A ctx with no deadline gets the service default so the
// wait is always bounded.
func (s *Service) dispatchTo(ctx context.Context, tmID string, task taskmanager.Task) (RunResult, error) {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.TaskTimeout)
		defer cancel()
	}
	// A closing service aborts in-flight synchronous dispatches too: the
	// broker reply can never arrive once Close tears the broker down, so
	// without this a caller would wait out the full task timeout against
	// a dead service.
	ctx, cancelLife := context.WithCancel(ctx)
	defer cancelLife()
	stopLife := context.AfterFunc(s.lifeCtx, cancelLife)
	defer stopLife()
	// Demand accounting: servable-level counts cover only serving kinds
	// (run/run_batch/pipeline) so control-plane tasks (deploy, scale —
	// notably the autoscaler's own scale-ups under load) never trip
	// admission control or inflate the demand signal. A batch weighs
	// its input count: one flushed coalesced batch of N members is N
	// units of demand, not 1, so the autoscaler's signal does not
	// collapse every flush cycle. Demand is charged to the task's OWN
	// servable: a monolith pipeline carries its published pipeline ID
	// and distributed steps dispatch as plain runs under their step ID
	// — never the old Steps[0] fallback, which billed whole pipelines
	// to whatever servable happened to come first.
	sv, svWeight := "", 0
	switch task.Kind {
	case "run", "run_batch", "pipeline":
		sv = task.Servable
		svWeight = 1
		if task.Kind == "run_batch" && len(task.Inputs) > 1 {
			svWeight = len(task.Inputs)
		}
	}
	s.route.addInflight(tmID, sv, svWeight)
	defer s.route.subInflight(tmID, sv, svWeight)
	start := time.Now()
	body, err := jsonMarshal(task)
	if err != nil {
		return RunResult{}, err
	}
	replyBody, err := s.broker.RequestCtx(ctx, taskmanager.TaskQueue(tmID), body, task.Tenant)
	if err != nil {
		return RunResult{}, wrapCtxErr(err)
	}
	var reply taskmanager.Reply
	if err := jsonUnmarshal(replyBody, &reply); err != nil {
		return RunResult{}, fmt.Errorf("core: bad TM reply: %w", err)
	}
	res := RunResult{Reply: reply, RequestMicros: time.Since(start).Microseconds(), wireSize: int64(len(replyBody))}
	if !reply.OK {
		return res, fmt.Errorf("%w: %s", ErrTaskFailed, reply.Error)
	}
	return res, nil
}

// RunAsync starts an asynchronous invocation and returns its task UUID.
// ctx gates only the submission (visibility check): the spawned task is
// detached from the CALLER's cancellation, because the paper's async
// contract is exactly that the client may go away and poll (or stream)
// the result later — but not from the SERVICE's: the detached run is
// re-parented onto the service lifetime context, so Close fails
// still-pending async tasks with ErrCanceled instead of leaving their
// goroutines dispatching into a closed broker.
func (s *Service) RunAsync(ctx context.Context, caller Caller, servableID string, input any, opts RunOptions) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", wrapCtxErr(err)
	}
	if _, err := s.Get(caller, servableID); err != nil {
		return "", err
	}
	id := queue.NewID()
	at := &asyncTask{
		AsyncTask: AsyncTask{ID: id, Status: "pending", Tenant: caller.Tenant, Created: s.timeFunc()},
		done:      make(chan struct{}),
	}
	s.taskMu.Lock()
	s.tasks[id] = at
	s.taskMu.Unlock()

	// The detached context keeps ctx's values (identity, request ID)
	// but not its cancellation; Run applies the usual deadline policy.
	// Service.Close cancels it through the lifetime context.
	bg, cancel := context.WithCancel(context.WithoutCancel(ctx))
	stop := context.AfterFunc(s.lifeCtx, cancel)
	go func() {
		defer stop()
		defer cancel()
		res, err := s.Run(bg, caller, servableID, input, opts)
		s.taskMu.Lock()
		at.Finished = s.timeFunc()
		if err != nil {
			at.Status = "failed"
			at.Error = err.Error()
		} else {
			at.Status = "completed"
			at.Reply = &res.Reply
		}
		s.taskMu.Unlock()
		close(at.done)
	}()
	return id, nil
}

// TaskStats reports the async-task table's size and how many finished
// tasks the retention sweeper has deleted.
type TaskStats struct {
	// Tracked is the current task-table size (pending + finished
	// entries still within retention).
	Tracked int `json:"tracked"`
	// Swept counts finished tasks deleted by the retention sweeper.
	Swept uint64 `json:"swept"`
}

// TaskStats snapshots the async-task counters.
func (s *Service) TaskStats() TaskStats {
	s.taskMu.RLock()
	defer s.taskMu.RUnlock()
	return TaskStats{Tracked: len(s.tasks), Swept: s.taskSwept}
}

// taskSweepLoop deletes finished async tasks TaskRetention after they
// finish. The tick is a fraction of the retention so deletion lag stays
// proportional to the window.
func (s *Service) taskSweepLoop() {
	defer s.regWG.Done()
	interval := s.cfg.TaskRetention / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.sweepTasks()
		}
	}
}

// sweepTasks deletes tasks that finished (done closed) more than
// TaskRetention ago, returning how many it removed. Pending tasks are
// never touched — retention starts at Finished, not Created.
func (s *Service) sweepTasks() int {
	cutoff := s.timeFunc().Add(-s.cfg.TaskRetention)
	swept := 0
	s.taskMu.Lock()
	for id, at := range s.tasks {
		select {
		case <-at.done:
		default:
			continue
		}
		if !at.Finished.IsZero() && at.Finished.Before(cutoff) {
			delete(s.tasks, id)
			swept++
		}
	}
	s.taskSwept += uint64(swept)
	s.taskMu.Unlock()
	return swept
}

// TaskStatus fetches an async task's state.
func (s *Service) TaskStatus(taskID string) (*AsyncTask, error) {
	s.taskMu.RLock()
	defer s.taskMu.RUnlock()
	at, ok := s.tasks[taskID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrTaskNotFound, taskID)
	}
	cp := at.AsyncTask
	return &cp, nil
}

// TaskWatch returns a channel closed when the task completes (already
// closed for finished tasks), for event streams that must not poll.
func (s *Service) TaskWatch(taskID string) (<-chan struct{}, error) {
	s.taskMu.RLock()
	defer s.taskMu.RUnlock()
	at, ok := s.tasks[taskID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrTaskNotFound, taskID)
	}
	return at.done, nil
}

// --- deployment --------------------------------------------------------------

// Deploy ships a published servable package to a Task Manager and
// starts replicas on the named executor route. A deadline-free ctx gets
// the 5-minute deployment budget (container shipping dominates). The
// target site is chosen by pickTM, so re-deploys land where the
// servable already lives; DeployTo pins one explicitly.
func (s *Service) Deploy(ctx context.Context, caller Caller, servableID string, replicas int, executorRoute string) error {
	return s.deploy(ctx, caller, servableID, replicas, executorRoute, "")
}

// DeployTo is Deploy pinned to a specific registered Task Manager —
// how operators place pipeline steps on disjoint sites (and how tests
// make multi-TM placement deterministic instead of riding routing
// tie-breaks). An empty tmID falls back to Deploy's default routing,
// so the HTTP handlers can pass the request's optional "tm" field
// through unconditionally.
func (s *Service) DeployTo(ctx context.Context, caller Caller, servableID string, replicas int, executorRoute, tmID string) error {
	return s.deploy(ctx, caller, servableID, replicas, executorRoute, tmID)
}

// deploy is the shared Deploy/DeployTo core; an empty tmID routes via
// pickTM.
func (s *Service) deploy(ctx context.Context, caller Caller, servableID string, replicas int, executorRoute, tmID string) error {
	ctx, cancel := s.reqCtx(ctx, RunOptions{Timeout: deployTimeout(ctx)})
	defer cancel()
	if _, err := s.Get(caller, servableID); err != nil {
		return err
	}
	s.mu.RLock()
	pkg := s.packages[servableID]
	s.mu.RUnlock()
	if pkg == nil {
		return fmt.Errorf("%w: package for %s", ErrNotFound, servableID)
	}
	wire, err := taskmanager.EncodePackage(pkg)
	if err != nil {
		return err
	}
	task := taskmanager.Task{
		ID:       queue.NewID(),
		Kind:     "deploy",
		Servable: servableID,
		Executor: executorRoute,
		Replicas: replicas,
		Package:  wire,
	}
	if tmID == "" {
		tmID, err = s.pickTM(servableID)
		if err != nil {
			return err
		}
	} else if !s.tmRegistered(tmID) {
		return ErrNoTaskManager.WithDetail(fmt.Sprintf("task manager %q not registered", tmID))
	} else if s.tmIsDraining(tmID) {
		return fmt.Errorf("%w: task manager %s is draining", ErrConflict, tmID)
	}
	if _, err := s.dispatchWatched(ctx, tmID, task); err != nil {
		return err
	}
	if err := s.recordDeployment(servableID, tmID, max(replicas, 1)); err != nil {
		// Unpublished (or the target drained/deregistered) while the
		// deploy task was in flight: the fresh replicas belong to
		// routing state that must not exist. Tear them down instead of
		// resurrecting it.
		s.undeployAsync(servableID, tmID)
		return err
	}
	s.logged(recKindDeploy, recPlacement{ID: servableID, TM: tmID, Replicas: max(replicas, 1)})
	return nil
}

// undeployAsync best-effort removes a servable's replicas from one TM
// in the background (Unpublish, and deploys that lost the race to it).
// The lifetime ctx carries no deadline, so dispatchTo bounds the wait
// with the service TaskTimeout — a dead TM costs one timed-out
// goroutine, not a leak.
func (s *Service) undeployAsync(servableID, tmID string) {
	go func() {
		task := taskmanager.Task{ID: queue.NewID(), Kind: "undeploy", Servable: servableID}
		if _, err := s.dispatchTo(s.lifeCtx, tmID, task); err != nil && s.lifeCtx.Err() == nil {
			log.Printf("core: undeploy %s from %s failed: %v", servableID, tmID, err)
		}
	}()
}

// tmRegistered reports whether a Task Manager ID has registered.
func (s *Service) tmRegistered(id string) bool {
	return s.route.isRegistered(id)
}

// recordReplicas remembers the desired replica count set by the last
// successful Scale — the autoscaler's view of current scale. A Scale
// that raced an Unpublish records nothing (the replicas map must not
// regrow an entry for a deleted servable); the report tells the caller
// whether to log the transition durably.
func (s *Service) recordReplicas(servableID string, replicas int) bool {
	// Repository lock held across the routing write, for the same
	// atomicity-vs-Unpublish reason as recordDeployment.
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.docs[servableID]; !ok {
		return false
	}
	s.route.setReplicas(servableID, replicas)
	return true
}

// DesiredReplicas reports the replica count last set by Deploy or Scale
// (0 when the servable was never deployed through this service).
func (s *Service) DesiredReplicas(servableID string) int {
	return s.route.replicasOf(servableID)
}

// deployTimeout picks the deploy/scale default deadline: 5 minutes
// unless the caller's ctx already carries one.
func deployTimeout(ctx context.Context) time.Duration {
	if _, ok := ctx.Deadline(); ok {
		return 0
	}
	return 5 * time.Minute
}

// ResolveComponents downloads globus:// component references through
// the transfer service, acting on the caller's behalf via a dependent
// token when auth is configured (§IV-A upload flow + §IV-D seamless
// transfer). bearer is the caller's raw Authorization header value.
func (s *Service) ResolveComponents(bearer string, refs map[string]string) (map[string][]byte, error) {
	if len(refs) == 0 {
		return nil, nil
	}
	if s.cfg.Transfer == nil {
		return nil, errors.New("core: publish-by-reference requires a transfer service")
	}
	token := strings.TrimPrefix(bearer, "Bearer ")
	if s.cfg.Auth != nil && token != "" && s.cfg.TransferClientID != "" {
		dep, err := s.cfg.Auth.DependentToken(token, s.cfg.TransferClientID, s.cfg.TransferScope)
		if err != nil {
			return nil, fmt.Errorf("core: dependent token: %w", err)
		}
		token = dep.Value
	}
	out := make(map[string][]byte, len(refs))
	for name, uri := range refs {
		ref, err := transfer.ParseReference(uri)
		if err != nil {
			return nil, fmt.Errorf("core: component %s: %w", name, err)
		}
		data, err := s.cfg.Transfer.Fetch(token, ref.Endpoint, ref.Path)
		if err != nil {
			return nil, fmt.Errorf("core: component %s: %w", name, err)
		}
		out[name] = data
	}
	return out, nil
}

// Scale adjusts replica count on the deployed executor.
func (s *Service) Scale(ctx context.Context, caller Caller, servableID string, replicas int, executorRoute string) error {
	if _, err := s.Get(caller, servableID); err != nil {
		return err
	}
	return s.scaleReplicas(ctx, servableID, replicas, executorRoute)
}

// scaleReplicas is Scale after the ACL check — the shared core the
// autoscaler drives directly (its decisions are service-internal, not
// made on behalf of any caller).
func (s *Service) scaleReplicas(ctx context.Context, servableID string, replicas int, executorRoute string) error {
	ctx, cancel := s.reqCtx(ctx, RunOptions{Timeout: deployTimeout(ctx)})
	defer cancel()
	task := taskmanager.Task{
		ID:       queue.NewID(),
		Kind:     "scale",
		Servable: servableID,
		Executor: executorRoute,
		Replicas: replicas,
	}
	if _, err := s.dispatch(ctx, task); err != nil {
		return err
	}
	if s.recordReplicas(servableID, replicas) {
		s.logged(recKindScale, recPlacement{ID: servableID, Replicas: replicas})
	}
	// Replica churn restarts servable processes; drop cached results so
	// post-scale traffic re-exercises the fresh deployment.
	s.invalidateCache(servableID)
	return nil
}
