package core_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/servable"
	"repro/internal/taskmanager"
)

// waitTaskDone polls an async task to a terminal state.
func waitTaskDone(t *testing.T, ms *core.Service, taskID string) *core.AsyncTask {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st, err := ms.TaskStatus(taskID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Status != "pending" {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("async task never finished")
	return nil
}

// TestTaskRetentionSweep: a finished async task is deleted TaskRetention
// after it finishes; TaskStatus and TaskWatch (the SSE stream's lookup)
// then return ErrTaskNotFound, never a stale entry, and the sweep is
// counted in TaskStats.
func TestTaskRetentionSweep(t *testing.T) {
	fast := core.New(core.Config{Registry: container.NewRegistry(), TaskRetention: 30 * time.Millisecond})
	defer fast.Close()
	startFakeTM(t, fast, "tm-1", nil)
	if err := fast.WaitForTM(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	id := publishNoop(t, fast)

	taskID, err := fast.RunAsync(context.Background(), core.Anonymous, id, "x", core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTaskDone(t, fast, taskID)
	if st.Status != "completed" {
		t.Fatalf("task should complete: %+v", st)
	}
	// Within retention the task stays queryable; after it, the sweeper
	// deletes it.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := fast.TaskStatus(taskID); errors.Is(err, core.ErrTaskNotFound) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("finished task never swept")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := fast.TaskWatch(taskID); !errors.Is(err, core.ErrTaskNotFound) {
		t.Fatalf("TaskWatch after sweep should be not-found, got %v", err)
	}
	stats := fast.TaskStats()
	if stats.Swept == 0 {
		t.Fatalf("sweep should be counted: %+v", stats)
	}
	if stats.Tracked != 0 {
		t.Fatalf("no tasks should remain tracked: %+v", stats)
	}
}

// TestTaskSoakBounded: under sustained RunAsync load the task table
// stays bounded once retention kicks in — the regression this PR fixes
// was an insert-only map.
func TestTaskSoakBounded(t *testing.T) {
	ms := core.New(core.Config{Registry: container.NewRegistry(), TaskRetention: 20 * time.Millisecond})
	defer ms.Close()
	startFakeTM(t, ms, "tm-1", nil)
	if err := ms.WaitForTM(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	id := publishNoop(t, ms)

	const total = 400
	for i := 0; i < total; i++ {
		if _, err := ms.RunAsync(context.Background(), core.Anonymous, id, i, core.RunOptions{NoCache: true, NoMemo: true}); err != nil {
			t.Fatal(err)
		}
		if i%40 == 0 {
			time.Sleep(25 * time.Millisecond) // let retention pass mid-soak
		}
	}
	// Mid-soak the table must already be far below the total issued.
	if tracked := ms.TaskStats().Tracked; tracked >= total/2 {
		t.Fatalf("task table not bounded under load: %d of %d still tracked", tracked, total)
	}
	// After the dust settles everything is swept.
	deadline := time.Now().Add(5 * time.Second)
	for ms.TaskStats().Tracked > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("task table never drained: %+v", ms.TaskStats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := ms.TaskStats(); st.Swept != total {
		t.Fatalf("all %d tasks should be swept eventually: %+v", total, st)
	}
}

// TestCloseFailsPendingAsync: Service.Close cancels detached async runs
// through the service lifetime context — a pending task transitions to
// failed with a canceled error instead of its goroutine hanging on a
// dead broker until its own deadline.
func TestCloseFailsPendingAsync(t *testing.T) {
	ms := core.New(core.Config{Registry: container.NewRegistry(), TaskTimeout: 30 * time.Second})
	// A TM that pulls nothing: the dispatched task would wait the full
	// 30s TaskTimeout if Close did not cancel it.
	reg, err := jsonMarshalReg("stuck-tm")
	if err != nil {
		t.Fatal(err)
	}
	ms.Broker().Push(taskmanager.RegisterQueue, reg, "", "", "")
	if err := ms.WaitForTM(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	id, err := ms.Publish(context.Background(), core.Anonymous, servable.NoopPackage())
	if err != nil {
		t.Fatal(err)
	}
	taskID, err := ms.RunAsync(context.Background(), core.Anonymous, id, "x", core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Give the detached goroutine a moment to dispatch, then close.
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	ms.Close()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close blocked %v on a pending async task", elapsed)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		st, err := ms.TaskStatus(taskID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Status != "pending" {
			if st.Status != "failed" || !strings.Contains(st.Error, "canceled") {
				t.Fatalf("pending async task should fail canceled on Close: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("async task still pending after Close")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// jsonMarshalReg builds a minimal TM registration body.
func jsonMarshalReg(tmID string) ([]byte, error) {
	return []byte(`{"tm_id":"` + tmID + `","executors":["parsl"]}`), nil
}
