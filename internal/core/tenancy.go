package core

// Tenancy: the service-side half of multi-tenant QoS. The tenant
// registry (internal/auth.TenantRegistry) holds who maps to which
// tenant and each tenant's quota spec; this file owns enforcement
// state that must live with the serving path — per-tenant rate-limit
// token buckets and per-tenant admission counters — plus the admin
// surface (SetTenantQuota, TenantList, TenantStats) the HTTP layer
// and CLI wrap. In-flight accounting itself lives in the routing
// table's (tenant × servable) reservation matrix (routing.go), and
// dequeue fairness in the broker's weighted lanes (internal/queue).
//
// Quotas are durable policy: every SetTenantQuota and BindTenant is
// logged through the durability seam (durable.go) and the registry is
// folded into checkpoints, so a -data-dir server restarts with the
// quotas, priorities, and identity bindings it crashed with. Only the
// enforcement state here — token buckets, admission counters — is
// runtime and rebuilt from zero.

import (
	"fmt"
	"time"

	"repro/internal/auth"
)

// tenantLabel renders a data-plane tenant tag for humans: the empty
// tag is the anonymous tenant.
func tenantLabel(tenant string) string {
	if tenant == "" {
		return auth.AnonymousTenantID
	}
	return tenant
}

// tenantQuota resolves the quota spec enforced for a tenant tag. The
// anonymous tenant ("") is never limited.
func (s *Service) tenantQuota(tenant string) (auth.Quota, bool) {
	if tenant == "" {
		return auth.Quota{}, false
	}
	t, ok := s.tenants.Get(tenant)
	if !ok {
		return auth.Quota{}, false
	}
	return t.Quota, true
}

// tokenBucket is one tenant's rate-limit state: a standard token
// bucket with capacity max(rate, 1) — a one-second burst.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// takeTenantToken consumes one admission token from the tenant's
// bucket, reporting false (reject) when the bucket is empty. The rate
// is passed in from the quota at each admission so a quota update
// applies immediately.
func (s *Service) takeTenantToken(tenant string, rate float64) bool {
	now := s.timeFunc()
	s.tbMu.Lock()
	defer s.tbMu.Unlock()
	b, ok := s.tbuckets[tenant]
	if !ok {
		b = &tokenBucket{tokens: rate, last: now}
		s.tbuckets[tenant] = b
	}
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * rate
		b.last = now
	}
	burst := rate
	if burst < 1 {
		burst = 1
	}
	if b.tokens > burst {
		b.tokens = burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// tenantCounters are one tenant's admission outcomes, guarded by
// Service.tcMu.
type tenantCounters struct {
	admitted         uint64
	rejectedQuota    uint64
	rejectedOverload uint64
}

// countersLocked returns the tenant's counter record; tcMu held.
func (s *Service) countersLocked(tenant string) *tenantCounters {
	c, ok := s.tcounters[tenant]
	if !ok {
		c = &tenantCounters{}
		s.tcounters[tenant] = c
	}
	return c
}

func (s *Service) noteAdmitted(tenant string) {
	s.tcMu.Lock()
	defer s.tcMu.Unlock()
	s.countersLocked(tenant).admitted++
}

func (s *Service) noteQuotaRejected(tenant string) {
	s.tcMu.Lock()
	defer s.tcMu.Unlock()
	s.countersLocked(tenant).rejectedQuota++
}

func (s *Service) noteOverloadRejected(tenant string) {
	s.tcMu.Lock()
	defer s.tcMu.Unlock()
	s.countersLocked(tenant).rejectedOverload++
}

// --- admin surface -----------------------------------------------------------

// TenantView is the wire shape of a tenant record (quota spec).
type TenantView struct {
	ID          string  `json:"id"`
	Name        string  `json:"name,omitempty"`
	Priority    string  `json:"priority,omitempty"`
	MaxInFlight int     `json:"max_in_flight,omitempty"`
	RatePerSec  float64 `json:"rate_per_sec,omitempty"`
	Weight      int     `json:"weight"`
	// Durable reports the quota is WAL-backed: explicitly set AND the
	// server runs with a durable store, so it survives a restart. False
	// for bind-created records inheriting the open default, and for
	// every tenant on a store-less server.
	Durable bool `json:"durable"`
}

func (s *Service) tenantView(t auth.Tenant) TenantView {
	return TenantView{
		ID:          t.ID,
		Name:        t.Name,
		Priority:    t.Quota.Priority,
		MaxInFlight: t.Quota.MaxInFlight,
		RatePerSec:  t.Quota.RatePerSec,
		Weight:      auth.PriorityWeight(t.Quota.Priority),
		Durable:     t.HasQuota && s.cfg.Store != nil,
	}
}

// SetTenantQuota installs or replaces a tenant's quota spec and pushes
// the priority class's dequeue weight to the broker, so fairness and
// the next admission check both see the update immediately. The put is
// logged durably (after the in-memory mutation, without s.mu held —
// the standard logged() discipline), so it survives a restart.
func (s *Service) SetTenantQuota(tenantID string, q auth.Quota) (TenantView, error) {
	if tenantID == "" || tenantID == auth.AnonymousTenantID {
		return TenantView{}, ErrBadRequest.WithDetail("the anonymous tenant cannot carry a quota")
	}
	if !auth.ValidPriority(q.Priority) {
		return TenantView{}, ErrBadRequest.WithDetail(fmt.Sprintf("unknown priority class %q (want high|normal|low)", q.Priority))
	}
	if q.MaxInFlight < 0 || q.RatePerSec < 0 {
		return TenantView{}, ErrBadRequest.WithDetail("quota bounds must be >= 0 (0 = unlimited)")
	}
	t := s.tenants.SetQuota(tenantID, q)
	s.broker.SetLaneWeight(tenantID, auth.PriorityWeight(q.Priority))
	s.logged(recKindTenant, recTenantQuota{ID: tenantID, Quota: q})
	return s.tenantView(t), nil
}

// BindTenant maps an identity URN onto a tenant for token resolution,
// durably.
func (s *Service) BindTenant(identityID, tenantID string) {
	s.tenants.Bind(identityID, tenantID)
	s.logged(recKindTenantBind, recTenantBind{IdentityID: identityID, TenantID: tenantID})
}

// TenantList returns every registered tenant's quota spec, sorted by
// ID.
func (s *Service) TenantList() []TenantView {
	ts := s.tenants.List()
	out := make([]TenantView, 0, len(ts))
	for _, t := range ts {
		out = append(out, s.tenantView(t))
	}
	return out
}

// TenantStats is one tenant's serving-path counters: admission
// outcomes, live in-flight reservations, and its share of broker
// dequeues (the fairness observable).
type TenantStats struct {
	Admitted         uint64  `json:"admitted"`
	RejectedQuota    uint64  `json:"rejected_quota"`
	RejectedOverload uint64  `json:"rejected_overload"`
	InFlight         int     `json:"in_flight"`
	Dequeued         uint64  `json:"dequeued"`
	DequeueShare     float64 `json:"dequeue_share"`
}

// TenantStatsAll merges the three per-tenant observables — admission
// counters, reservation-table in-flight, broker lane dequeues — keyed
// by tenant (the anonymous lane under "anonymous").
func (s *Service) TenantStatsAll() map[string]TenantStats {
	out := map[string]TenantStats{}
	get := func(tag string) TenantStats { return out[tenantLabel(tag)] }
	put := func(tag string, st TenantStats) { out[tenantLabel(tag)] = st }

	s.tcMu.Lock()
	for tag, c := range s.tcounters {
		st := get(tag)
		st.Admitted = c.admitted
		st.RejectedQuota = c.rejectedQuota
		st.RejectedOverload = c.rejectedOverload
		put(tag, st)
	}
	s.tcMu.Unlock()

	for tag, n := range s.route.reservedByTenant() {
		st := get(tag)
		st.InFlight = n
		put(tag, st)
	}

	deq := s.broker.LaneDequeues()
	var total uint64
	for _, n := range deq {
		total += n
	}
	for tag, n := range deq {
		st := get(tag)
		st.Dequeued = n
		if total > 0 {
			st.DequeueShare = float64(n) / float64(total)
		}
		put(tag, st)
	}
	return out
}
