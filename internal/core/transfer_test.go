package core_test

import (
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/dlhub"
	"repro/internal/auth"
	"repro/internal/bench"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/ml/nn"
	"repro/internal/schema"
	"repro/internal/transfer"
)

// Publish-by-reference: components uploaded to a Globus endpoint are
// downloaded by the Management Service at publication time (§IV-A), via
// a dependent token (§IV-D) when auth is enabled.

func TestPublishByReferenceOpenService(t *testing.T) {
	ts := transfer.NewService(nil)
	ts.AddEndpoint(&transfer.Endpoint{Name: "petrel"})
	ep, _ := ts.Endpoint("petrel")
	model, err := nn.Encode(nn.NewCIFAR10(3))
	if err != nil {
		t.Fatal(err)
	}
	ep.Put("models/cifar.bin", model)

	ms := core.New(core.Config{Registry: container.NewRegistry(), Transfer: ts})
	defer ms.Close()

	fetched, err := ms.ResolveComponents("", map[string]string{"model": "globus://petrel/models/cifar.bin"})
	if err != nil {
		t.Fatal(err)
	}
	if len(fetched["model"]) != len(model) {
		t.Fatal("fetched component size mismatch")
	}

	// Bad URI and missing file.
	if _, err := ms.ResolveComponents("", map[string]string{"m": "http://x/y"}); err == nil {
		t.Fatal("non-globus URI should fail")
	}
	if _, err := ms.ResolveComponents("", map[string]string{"m": "globus://petrel/ghost"}); !errors.Is(err, transfer.ErrFileNotFound) {
		t.Fatalf("want file not found, got %v", err)
	}
}

func TestPublishByReferenceNoTransferConfigured(t *testing.T) {
	ms := core.New(core.Config{Registry: container.NewRegistry()})
	defer ms.Close()
	if _, err := ms.ResolveComponents("", map[string]string{"m": "globus://a/b"}); err == nil {
		t.Fatal("reference resolution without a transfer service should fail")
	}
}

func TestPublishByReferenceEndToEndWithAuth(t *testing.T) {
	a := auth.NewService(time.Hour)
	a.RegisterProvider("orcid")
	a.RegisterClient("dlhub", "DLHub", "dlhub:all")
	a.RegisterClient("transfer", "Globus Transfer", "transfer:all")
	u, _ := a.RegisterUser("orcid", "ward", "pw", "Logan Ward", "")

	// The user's private endpoint holds the model weights.
	ts := transfer.NewService(a)
	ts.AddEndpoint(&transfer.Endpoint{Name: "ward-laptop", ReadableBy: []string{u.ID}})
	ep, _ := ts.Endpoint("ward-laptop")
	model, _ := nn.Encode(nn.NewCIFAR10(4))
	ep.Put("cifar.bin", model)

	tb, err := bench.NewTestbed(bench.Options{Nodes: 4, Auth: a, RunScope: "dlhub:all"})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	// Enable reference resolution on the assembled MS (testbed builds
	// it without transfer, so build a parallel service configuration
	// through the exported knobs: reconfigure via a new service is
	// overkill — instead exercise ResolveComponents + Publish here).
	ms := core.New(core.Config{
		Auth:             a,
		RunScope:         "dlhub:all",
		Registry:         container.NewRegistry(),
		Transfer:         ts,
		TransferClientID: "transfer",
		TransferScope:    "transfer:all",
	})
	defer ms.Close()
	srv := httptest.NewServer(ms.Handler())
	defer srv.Close()

	tok, _ := a.Authenticate("orcid", "ward", "pw", "dlhub", "dlhub:all")
	client := dlhub.NewClient(srv.URL, tok.Value)

	doc := &schema.Document{
		Publication: schema.Publication{
			Name:    "cifar10-byref",
			Title:   "CIFAR-10 via Globus",
			Authors: []string{"Ward, Logan"},
		},
		Servable: schema.Servable{
			Type:            schema.TypeKeras,
			ModelComponents: map[string]string{"model": "cifar.bin"},
			Input:           schema.DataType{Kind: "ndarray", Shape: []int{32, 32, 3}},
			Output:          schema.DataType{Kind: "list"},
		},
	}
	id, err := client.PublishByReference(doc, map[string]string{"model": "globus://ward-laptop/cifar.bin"})
	if err != nil {
		t.Fatal(err)
	}
	if id != "ward/cifar10-byref" {
		t.Fatalf("unexpected id %s", id)
	}
	// The document is registered with the downloaded components.
	got, err := client.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Servable.Type != schema.TypeKeras {
		t.Fatal("document lost in publish-by-reference")
	}

	// Another user cannot publish from the private endpoint.
	a.RegisterUser("orcid", "eve", "pw", "Eve", "") //nolint:errcheck
	evtok, _ := a.Authenticate("orcid", "eve", "pw", "dlhub", "dlhub:all")
	evil := dlhub.NewClient(srv.URL, evtok.Value)
	doc2 := *doc
	doc2.Publication.Name = "stolen"
	if _, err := evil.PublishByReference(&doc2, map[string]string{"model": "globus://ward-laptop/cifar.bin"}); err == nil {
		t.Fatal("dependent token must not grant access to another user's endpoint")
	}
}
