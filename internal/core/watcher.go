package core

// Per-TM broadcast liveness watcher (PR 8). The previous dead-TM
// watchdog spawned one goroutine + ticker per in-flight dispatch, each
// independently polling the routed TM's heartbeat freshness — O(in-
// flight) goroutines all waking every TMStaleAfter/4 to re-check the
// same fact. This watcher inverts that: ONE timer per Task Manager,
// re-armed by each heartbeat, and the dispatches waiting on that TM
// register a cancel func with it. When the timer fires past the
// liveness deadline the watcher fans errTMLost out to every waiter at
// once — cost O(#TMs) timers plus O(waiters) work only at the moment a
// TM is actually lost, which is the rare case the whole mechanism
// exists for.
//
// The watcher owns no routing decisions: heartbeat freshness for
// ROUTING still lives in the routing table (rt.seen). Both are stamped
// from the same registration message, so they cannot disagree about
// when a beat arrived; the watcher's deadline math additionally runs
// through Service.timeFunc so it stays consistent with rt liveness
// filtering.

import (
	"context"
	"sync"
	"time"
)

// tmWatch is one TM's liveness state: the re-armable timer, the
// deadline it guards, and the cancel funcs of dispatches currently
// waiting on this TM.
type tmWatch struct {
	timer    *time.Timer
	deadline time.Time
	lost     bool
	waiters  map[uint64]context.CancelCauseFunc
}

// livenessWatcher tracks every TM's heartbeat deadline. Disabled (all
// methods cheap no-ops) when window <= 0 — liveness filtering off.
type livenessWatcher struct {
	window time.Duration
	clock  func() time.Time

	mu      sync.Mutex
	tms     map[string]*tmWatch
	nextRef uint64
	closed  bool
}

func newLivenessWatcher(window time.Duration, clock func() time.Time) *livenessWatcher {
	return &livenessWatcher{
		window: window,
		clock:  clock,
		tms:    make(map[string]*tmWatch),
	}
}

// beat pushes a TM's liveness deadline out by the window, creating its
// watch (and timer) on first sight and clearing a previous lost mark —
// a TM that was merely partitioned resumes on its next heartbeat,
// matching routing's view.
func (lw *livenessWatcher) beat(tmID string) {
	if lw == nil || lw.window <= 0 {
		return
	}
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if lw.closed {
		return
	}
	w := lw.tms[tmID]
	if w == nil {
		w = &tmWatch{waiters: make(map[uint64]context.CancelCauseFunc)}
		lw.tms[tmID] = w
	}
	w.deadline = lw.clock().Add(lw.window)
	w.lost = false
	if w.timer == nil {
		w.timer = time.AfterFunc(lw.window, func() { lw.expire(tmID) })
	} else {
		w.timer.Reset(lw.window)
	}
}

// expire is the timer callback: if the deadline truly passed the TM is
// marked lost and every waiter is canceled with errTMLost; if a beat
// raced the firing, the timer is re-armed for the remaining window.
func (lw *livenessWatcher) expire(tmID string) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if lw.closed {
		return
	}
	w := lw.tms[tmID]
	if w == nil || w.lost {
		return
	}
	now := lw.clock()
	if now.Before(w.deadline) {
		w.timer.Reset(w.deadline.Sub(now))
		return
	}
	w.lost = true
	for _, cancel := range w.waiters {
		cancel(errTMLost)
	}
	// Canceled waiters are dropped now rather than waiting for each
	// dispatch's unwatch: the map is what stats() reports, and a second
	// fan-out must not re-cancel them.
	clear(w.waiters)
}

// watch registers a dispatch's cancel func to be fired with errTMLost
// when tmID's liveness window lapses. If the TM is already lost —
// never seen, marked lost, or past its deadline right now — cancel
// fires immediately (outside the lock), which is what lets a dispatch
// routed at a stale snapshot fail fast instead of waiting out its
// deadline. The returned func deregisters the waiter; it must be
// called when the dispatch completes, and is idempotent.
func (lw *livenessWatcher) watch(tmID string, cancel context.CancelCauseFunc) (unwatch func()) {
	if lw == nil || lw.window <= 0 {
		return func() {}
	}
	lw.mu.Lock()
	if lw.closed {
		lw.mu.Unlock()
		return func() {}
	}
	w := lw.tms[tmID]
	if w == nil || w.lost || !lw.clock().Before(w.deadline) {
		lw.mu.Unlock()
		cancel(errTMLost)
		return func() {}
	}
	lw.nextRef++
	ref := lw.nextRef
	w.waiters[ref] = cancel
	lw.mu.Unlock()
	return func() {
		lw.mu.Lock()
		delete(w.waiters, ref)
		lw.mu.Unlock()
	}
}

// markLost forces a TM lost immediately (DeregisterTM): its waiters are
// canceled now and its timer stopped — there is no heartbeat to wait
// out once the registry entry is gone. A later beat re-registers it.
func (lw *livenessWatcher) markLost(tmID string) {
	if lw == nil || lw.window <= 0 {
		return
	}
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if lw.closed {
		return
	}
	w := lw.tms[tmID]
	if w == nil || w.lost {
		return
	}
	w.lost = true
	if w.timer != nil {
		w.timer.Stop()
	}
	for _, cancel := range w.waiters {
		cancel(errTMLost)
	}
	clear(w.waiters)
}

// stop halts every timer and refuses further registrations (Service
// shutdown). Waiters are NOT failed with errTMLost — the lifetime
// context cancels their dispatches with the correct shutdown cause.
func (lw *livenessWatcher) stop() {
	if lw == nil {
		return
	}
	lw.mu.Lock()
	defer lw.mu.Unlock()
	lw.closed = true
	for _, w := range lw.tms {
		if w.timer != nil {
			w.timer.Stop()
		}
	}
}

// WatcherStats counts the liveness watcher's footprint: tracked TM
// timers and currently registered dispatch waiters. TMs is the number
// that must stay O(#TMs) regardless of in-flight load — the
// acceptance bound the PR 8 tests assert.
type WatcherStats struct {
	// TMs is the number of TMs with a liveness timer.
	TMs int `json:"tms"`
	// Waiters is the number of in-flight dispatches registered for
	// errTMLost fan-out.
	Waiters int `json:"waiters"`
	// Lost is how many tracked TMs are currently marked lost.
	Lost int `json:"lost"`
}

// stats snapshots the watcher's footprint.
func (lw *livenessWatcher) stats() WatcherStats {
	if lw == nil {
		return WatcherStats{}
	}
	lw.mu.Lock()
	defer lw.mu.Unlock()
	st := WatcherStats{TMs: len(lw.tms)}
	for _, w := range lw.tms {
		st.Waiters += len(w.waiters)
		if w.lost {
			st.Lost++
		}
	}
	return st
}

// WatcherStats snapshots the dead-TM watcher's footprint (the
// /api/v2/stats "watcher" block).
func (s *Service) WatcherStats() WatcherStats { return s.watcher.stats() }
