// Package executor defines DLHub's pluggable executor model (§IV-C):
// "DLHub aims to provide efficient model execution for a wide range of
// model types. To achieve this goal it implements an arbitrary executor
// model that currently supports three serving systems: TensorFlow
// Serving, SageMaker, and a general-purpose Parsl executor."
//
// This package holds the Executor interface, the servable pod host (the
// in-container process that exposes the standard execution interface
// over the cluster network), and the Parsl executor itself. The
// TF-Serving and SageMaker executors live in their own packages and
// implement the same interface.
package executor

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/container"
	"repro/internal/k8s"
	"repro/internal/netsim"
	"repro/internal/rpc"
	"repro/internal/schema"
	"repro/internal/servable"
)

// Errors.
var (
	ErrNotDeployed = errors.New("executor: servable not deployed")
	ErrClosed      = errors.New("executor: closed")
)

// Result is the executor-independent output format of §IV-C: every
// executor "translat[es] the results into a common DLHub
// executor-independent format".
type Result struct {
	Output any `json:"output"`
	// InferenceMicros is the time spent inside the servable (the
	// paper's "inference time", measured at the servable).
	InferenceMicros int64 `json:"inference_us"`
}

// Executor deploys servables and routes invocations to them.
type Executor interface {
	// Name identifies the serving system ("parsl", "tfserving", ...).
	Name() string
	// Deploy builds/loads the servable and starts replicas.
	Deploy(pkg *servable.Package, replicas int) error
	// Scale changes the replica count of a deployed servable.
	Scale(servableID string, replicas int) error
	// Invoke runs one input on a deployed servable.
	Invoke(ctx context.Context, servableID string, input any) (Result, error)
	// Undeploy stops all replicas of a servable.
	Undeploy(servableID string) error
	// Replicas reports the current replica count.
	Replicas(servableID string) int
	// Close shuts the executor down.
	Close()
}

// --- servable pod host -------------------------------------------------------

// PodServer is the process that runs inside every servable container:
// it loads the servable from the image filesystem and serves the
// standard execution interface on a TCP port (the DLHub shim).
//
// Python-hosted pods execute ONE request at a time: an IPythonParallel
// engine is a single-threaded interpreter process, so concurrency comes
// only from replicas — the mechanism Fig. 7 scales.
type PodServer struct {
	pythonHosted bool

	mu    sync.Mutex
	srv   *rpc.Server
	addr  string
	sv    *servable.Servable
	runMu sync.Mutex // serializes execution for python-hosted pods
}

// NewPodProcessFactory returns a container.ProcessFactory that starts a
// PodServer for each container instance. Images built by the repository
// bake the servable document under /dlhub/doc.json and components under
// /dlhub/components/<name>.
func NewPodProcessFactory(pythonHosted bool) container.ProcessFactory {
	return func() container.Process { return &PodServer{pythonHosted: pythonHosted} }
}

// Start implements container.Process: load the servable and listen.
func (p *PodServer) Start(fs map[string][]byte, env map[string]string) error {
	docData, ok := fs["/dlhub/doc.json"]
	if !ok {
		return fmt.Errorf("executor: image missing /dlhub/doc.json")
	}
	var doc schema.Document
	if err := json.Unmarshal(docData, &doc); err != nil {
		return fmt.Errorf("executor: bad servable doc: %w", err)
	}
	components := map[string][]byte{}
	const prefix = "/dlhub/components/"
	for path, data := range fs {
		if len(path) > len(prefix) && path[:len(prefix)] == prefix {
			components[path[len(prefix):]] = data
		}
	}
	sv, err := servable.Load(&doc, components, p.pythonHosted)
	if err != nil {
		return err
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		sv.Close()
		return err
	}
	srv := rpc.NewServer()
	srv.Handle("run", func(_ context.Context, payload []byte) ([]byte, error) {
		var input any
		if err := json.Unmarshal(payload, &input); err != nil {
			return nil, fmt.Errorf("bad input: %w", err)
		}
		if p.pythonHosted {
			p.runMu.Lock()
			defer p.runMu.Unlock()
		}
		start := time.Now()
		out, err := sv.Run(input)
		if err != nil {
			return nil, err
		}
		return json.Marshal(Result{Output: out, InferenceMicros: time.Since(start).Microseconds()})
	})
	go srv.Serve(l) //nolint:errcheck — closed on Stop

	p.mu.Lock()
	p.srv = srv
	p.addr = l.Addr().String()
	p.sv = sv
	p.mu.Unlock()
	return nil
}

// Stop implements container.Process.
func (p *PodServer) Stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.srv != nil {
		p.srv.Close()
	}
	if p.sv != nil {
		p.sv.Close()
	}
}

// Addr returns the pod's serving address.
func (p *PodServer) Addr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.addr
}

// PodAddr extracts the serving address from a running pod whose
// container process is a *PodServer (or any Addr() provider).
func PodAddr(pod *k8s.Pod) (string, error) {
	ctr := pod.Container()
	if ctr == nil {
		return "", fmt.Errorf("executor: pod %s has no container", pod.Name)
	}
	type addresser interface{ Addr() string }
	a, ok := ctr.Proc.(addresser)
	if !ok {
		return "", fmt.Errorf("executor: pod %s process does not serve", pod.Name)
	}
	return a.Addr(), nil
}

// DialPod connects to a pod's server through the TM<->cluster link.
func DialPod(pod *k8s.Pod, link netsim.Profile) (*rpc.Client, error) {
	addr, err := PodAddr(pod)
	if err != nil {
		return nil, err
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return rpc.NewClient(netsim.Wrap(conn, link)), nil
}

// --- image packaging ----------------------------------------------------------

// BuildServableImage bakes a servable package into a container image
// using the given builder, exactly as the Management Service does at
// publication time (§IV-A): DLHub dependencies + user dependencies +
// model components + doc, entrypoint = the DLHub shim.
func BuildServableImage(b *container.Builder, pkg *servable.Package, entrypoint string) (*container.Image, error) {
	docData, err := json.Marshal(pkg.Doc)
	if err != nil {
		return nil, err
	}
	files := []container.File{{Path: "/dlhub/doc.json", Data: docData}}
	for name, data := range pkg.Components {
		files = append(files, container.File{Path: "/dlhub/components/" + name, Data: data})
	}
	deps := map[string]string{"dlhub_sdk": "0.8.4", "parsl": "0.7.2"}
	for k, v := range pkg.Doc.Servable.Dependencies {
		deps[k] = v
	}
	spec := container.BuildSpec{
		Name:       "servables/" + pkg.Doc.Publication.Name,
		Tag:        fmt.Sprintf("v%d", max(1, pkg.Doc.Version)),
		Deps:       deps,
		Files:      files,
		Entrypoint: entrypoint,
		Labels:     map[string]string{"dlhub.servable": pkg.Doc.ID},
	}
	return b.Build(spec)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
