package executor

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/container"
	"repro/internal/k8s"
	"repro/internal/netsim"
	"repro/internal/servable"
	"repro/internal/simconst"
)

func init() {
	simconst.Scale = 1000
}

// testbed assembles registry/runtime/cluster with the IPP engine
// process registered.
func testbed(t *testing.T) (*k8s.Cluster, *container.Builder) {
	t.Helper()
	reg := container.NewRegistry()
	builder := container.NewBuilder(reg)
	rt := container.NewRuntime(reg)
	rt.RegisterProcess("dlhub-ipp-engine", NewPodProcessFactory(true))
	cluster := k8s.NewCluster(rt, 4, k8s.Resources{MilliCPU: 32000, MemMB: 128 * 1024})
	return cluster, builder
}

func newParsl(t *testing.T) *Parsl {
	t.Helper()
	cluster, builder := testbed(t)
	p := NewParsl(cluster, builder, netsim.RTT(170*time.Microsecond, 0))
	t.Cleanup(p.Close)
	return p
}

func TestParslDeployAndInvokeNoop(t *testing.T) {
	p := newParsl(t)
	pkg := servable.NoopPackage()
	pkg.Doc.ID = "dlhub/noop"
	if err := p.Deploy(pkg, 2); err != nil {
		t.Fatal(err)
	}
	if p.Replicas("dlhub/noop") != 2 {
		t.Fatalf("want 2 replicas, got %d", p.Replicas("dlhub/noop"))
	}
	res, err := p.Invoke(context.Background(), "dlhub/noop", "hi")
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "hello world" {
		t.Fatalf("noop output wrong: %v", res.Output)
	}
	if res.InferenceMicros < 0 {
		t.Fatal("inference time should be measured")
	}
}

func TestParslInvokeUndeployed(t *testing.T) {
	p := newParsl(t)
	if _, err := p.Invoke(context.Background(), "ghost", nil); !errors.Is(err, ErrNotDeployed) {
		t.Fatalf("want not deployed, got %v", err)
	}
	if err := p.Scale("ghost", 3); !errors.Is(err, ErrNotDeployed) {
		t.Fatalf("want not deployed on scale, got %v", err)
	}
	if err := p.Undeploy("ghost"); !errors.Is(err, ErrNotDeployed) {
		t.Fatalf("want not deployed on undeploy, got %v", err)
	}
}

func TestParslScaleUpDown(t *testing.T) {
	p := newParsl(t)
	pkg := servable.MatminerUtilPackage()
	pkg.Doc.ID = "dlhub/util"
	if err := p.Deploy(pkg, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Scale("dlhub/util", 6); err != nil {
		t.Fatal(err)
	}
	if p.Replicas("dlhub/util") != 6 {
		t.Fatalf("want 6, got %d", p.Replicas("dlhub/util"))
	}
	if err := p.Scale("dlhub/util", 2); err != nil {
		t.Fatal(err)
	}
	if p.Replicas("dlhub/util") != 2 {
		t.Fatalf("want 2, got %d", p.Replicas("dlhub/util"))
	}
	// Still serves after rescale.
	res, err := p.Invoke(context.Background(), "dlhub/util", "SiO2")
	if err != nil {
		t.Fatal(err)
	}
	m := res.Output.(map[string]any)
	if len(m) != 2 {
		t.Fatalf("SiO2 should have 2 elements: %v", m)
	}
}

func TestParslServableErrorPropagates(t *testing.T) {
	p := newParsl(t)
	pkg := servable.MatminerUtilPackage()
	pkg.Doc.ID = "dlhub/util"
	if err := p.Deploy(pkg, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(context.Background(), "dlhub/util", "NotAnElement99"); err == nil {
		t.Fatal("servable error should propagate to the caller")
	}
}

func TestParslConcurrentInvocationsLoadBalance(t *testing.T) {
	p := newParsl(t)
	pkg := servable.NoopPackage()
	pkg.Doc.ID = "dlhub/noop"
	if err := p.Deploy(pkg, 4); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.Invoke(context.Background(), "dlhub/noop", i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestParslUndeployStopsServing(t *testing.T) {
	p := newParsl(t)
	pkg := servable.NoopPackage()
	pkg.Doc.ID = "dlhub/noop"
	if err := p.Deploy(pkg, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Undeploy("dlhub/noop"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(context.Background(), "dlhub/noop", nil); !errors.Is(err, ErrNotDeployed) {
		t.Fatalf("want not deployed after undeploy, got %v", err)
	}
}

func TestParslInvokeAfterClose(t *testing.T) {
	cluster, builder := testbed(t)
	p := NewParsl(cluster, builder, netsim.Profile{})
	pkg := servable.NoopPackage()
	pkg.Doc.ID = "dlhub/noop"
	if err := p.Deploy(pkg, 1); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := p.Invoke(context.Background(), "dlhub/noop", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestParslContextCancellation(t *testing.T) {
	p := newParsl(t)
	pkg, err := servable.CIFAR10Package(1)
	if err != nil {
		t.Fatal(err)
	}
	pkg.Doc.ID = "dlhub/cifar10"
	if err := p.Deploy(pkg, 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	input := make([]float32, 32*32*3)
	if _, err := p.Invoke(ctx, "dlhub/cifar10", input); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline exceeded, got %v", err)
	}
}

func TestBuildServableImageContents(t *testing.T) {
	reg := container.NewRegistry()
	builder := container.NewBuilder(reg)
	pkg := servable.MatminerUtilPackage()
	pkg.Doc.ID = "u/util"
	pkg.Doc.Version = 3
	img, err := BuildServableImage(builder, pkg, "dlhub-ipp-engine")
	if err != nil {
		t.Fatal(err)
	}
	if img.Ref() != "servables/matminer-util:v3" {
		t.Fatalf("image ref wrong: %s", img.Ref())
	}
	fs := img.Files()
	if _, ok := fs["/dlhub/doc.json"]; !ok {
		t.Fatal("doc.json missing from image")
	}
	if _, ok := fs["/usr/lib/python3/site-packages/dlhub_sdk/VERSION"]; !ok {
		t.Fatal("dlhub dependency layer missing")
	}
	if img.Labels["dlhub.servable"] != "u/util" {
		t.Fatalf("servable label wrong: %v", img.Labels)
	}
}

func TestPodServerMissingDoc(t *testing.T) {
	ps := &PodServer{}
	if err := ps.Start(map[string][]byte{}, nil); err == nil {
		t.Fatal("missing doc.json should fail")
	}
}

func TestDeployTwiceScalesInstead(t *testing.T) {
	p := newParsl(t)
	pkg := servable.NoopPackage()
	pkg.Doc.ID = "dlhub/noop"
	if err := p.Deploy(pkg, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Deploy(pkg, 3); err != nil {
		t.Fatal(err)
	}
	if p.Replicas("dlhub/noop") != 3 {
		t.Fatalf("second deploy should rescale to 3, got %d", p.Replicas("dlhub/noop"))
	}
}
