package executor

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/container"
	"repro/internal/k8s"
	"repro/internal/netsim"
	"repro/internal/rpc"
	"repro/internal/servable"
	"repro/internal/simconst"
)

// Parsl is the general-purpose executor of §IV-C: "Parsl then deploys
// IPythonParallel (IPP) engines in each servable container and connects
// back to the Task Manager to retrieve servable execution requests.
// Parsl dispatches requests to the appropriate containers using IPP,
// load balancing them automatically across the available pods."
//
// Servables run Python-hosted (they are IPython engines). Dispatch runs
// through a single routing loop per executor, charging DispatchOverhead
// per task — the serialization point whose saturation Fig. 7 measures
// ("task dispatch activities eventually come to dominate execution
// time").
type Parsl struct {
	cluster *k8s.Cluster
	builder *container.Builder
	link    netsim.Profile // TM <-> cluster

	mu     sync.Mutex
	deps   map[string]*parslDeployment
	closed bool

	tasks chan *parslTask
	done  chan struct{}
	wg    sync.WaitGroup
}

type parslDeployment struct {
	id      string
	image   string
	pkg     *servable.Package
	epMu    sync.Mutex
	engines []*engine
	rr      int
}

// engine is one IPP engine: a connection to a pod plus an in-flight
// counter for least-busy load balancing.
type engine struct {
	pod      *k8s.Pod
	client   *rpc.Client
	inflight int
}

type parslTask struct {
	dep     *parslDeployment
	payload []byte
	ctx     context.Context
	done    chan taskOutcome
}

type taskOutcome struct {
	data []byte
	err  error
}

// NewParsl creates a Parsl executor on a cluster. link shapes the
// TM<->pod connections (0.17 ms RTT in the paper's testbed).
func NewParsl(cluster *k8s.Cluster, builder *container.Builder, link netsim.Profile) *Parsl {
	p := &Parsl{
		cluster: cluster,
		builder: builder,
		link:    link,
		deps:    make(map[string]*parslDeployment),
		tasks:   make(chan *parslTask, 4096),
		done:    make(chan struct{}),
	}
	p.wg.Add(1)
	go p.dispatchLoop()
	return p
}

// Name implements Executor.
func (p *Parsl) Name() string { return "parsl" }

// dispatchLoop is the single-threaded IPP router: it pays the dispatch
// overhead per task, then hands the task to the least-busy engine.
// Because routing is serialized, total throughput is capped at
// 1/DispatchOverhead regardless of replica count — the Fig. 7 ceiling.
func (p *Parsl) dispatchLoop() {
	defer p.wg.Done()
	for {
		var task *parslTask
		select {
		case <-p.done:
			return
		case task = <-p.tasks:
		}
		// Routing work: engine selection, serialization into the IPP
		// channel, completion bookkeeping.
		time.Sleep(simconst.D(simconst.DispatchOverhead))

		eng := task.dep.pickEngine()
		if eng == nil {
			task.done <- taskOutcome{err: fmt.Errorf("%w: %s has no engines", ErrNotDeployed, task.dep.id)}
			continue
		}
		go func(task *parslTask, eng *engine) {
			data, err := eng.client.Call(task.ctx, "run", task.payload)
			task.dep.release(eng)
			task.done <- taskOutcome{data: data, err: err}
		}(task, eng)
	}
}

// pickEngine returns the least-busy engine and bumps its counter.
func (d *parslDeployment) pickEngine() *engine {
	d.epMu.Lock()
	defer d.epMu.Unlock()
	if len(d.engines) == 0 {
		return nil
	}
	best := -1
	for i := range d.engines {
		idx := (d.rr + i) % len(d.engines)
		if best == -1 || d.engines[idx].inflight < d.engines[best].inflight {
			best = idx
		}
	}
	d.rr = (best + 1) % len(d.engines)
	d.engines[best].inflight++
	return d.engines[best]
}

func (d *parslDeployment) release(e *engine) {
	d.epMu.Lock()
	e.inflight--
	d.epMu.Unlock()
}

// Deploy implements Executor: build the image (if needed), create a
// k8s deployment, connect an engine to every pod.
func (p *Parsl) Deploy(pkg *servable.Package, replicas int) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	if _, exists := p.deps[pkg.Doc.ID]; exists {
		p.mu.Unlock()
		return p.Scale(pkg.Doc.ID, replicas)
	}
	p.mu.Unlock()

	img, err := BuildServableImage(p.builder, pkg, "dlhub-ipp-engine")
	if err != nil {
		return err
	}
	depName := "parsl-" + pkg.Doc.Publication.Name
	if _, err := p.cluster.CreateDeployment(depName, k8s.PodSpec{
		Image:    img.Ref(),
		Requests: k8s.Resources{MilliCPU: 1000, MemMB: 2048},
	}, replicas); err != nil {
		return err
	}
	d := &parslDeployment{id: pkg.Doc.ID, image: depName, pkg: pkg}
	if err := p.connectEngines(d); err != nil {
		return err
	}
	p.mu.Lock()
	p.deps[pkg.Doc.ID] = d
	p.mu.Unlock()
	return nil
}

// connectEngines reconciles engine connections with current pods.
func (p *Parsl) connectEngines(d *parslDeployment) error {
	pods := p.cluster.PodsMatching(map[string]string{"deployment": d.image})
	d.epMu.Lock()
	defer d.epMu.Unlock()

	current := map[string]*engine{}
	for _, e := range d.engines {
		current[e.pod.Name] = e
	}
	var next []*engine
	for _, pod := range pods {
		if e, ok := current[pod.Name]; ok {
			next = append(next, e)
			delete(current, pod.Name)
			continue
		}
		client, err := DialPod(pod, p.link)
		if err != nil {
			return fmt.Errorf("executor: engine for %s: %w", pod.Name, err)
		}
		next = append(next, &engine{pod: pod, client: client})
	}
	for _, stale := range current {
		stale.client.Close()
	}
	d.engines = next
	return nil
}

// Scale implements Executor.
func (p *Parsl) Scale(servableID string, replicas int) error {
	p.mu.Lock()
	d, ok := p.deps[servableID]
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotDeployed, servableID)
	}
	if err := p.cluster.Scale(d.image, replicas); err != nil {
		return err
	}
	return p.connectEngines(d)
}

// Replicas implements Executor.
func (p *Parsl) Replicas(servableID string) int {
	p.mu.Lock()
	d, ok := p.deps[servableID]
	p.mu.Unlock()
	if !ok {
		return 0
	}
	d.epMu.Lock()
	defer d.epMu.Unlock()
	return len(d.engines)
}

// Invoke implements Executor: enqueue for the dispatcher and wait.
func (p *Parsl) Invoke(ctx context.Context, servableID string, input any) (Result, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return Result{}, ErrClosed
	}
	d, ok := p.deps[servableID]
	p.mu.Unlock()
	if !ok {
		return Result{}, fmt.Errorf("%w: %s", ErrNotDeployed, servableID)
	}
	payload, err := json.Marshal(input)
	if err != nil {
		return Result{}, fmt.Errorf("executor: cannot marshal input: %w", err)
	}
	task := &parslTask{dep: d, payload: payload, ctx: ctx, done: make(chan taskOutcome, 1)}
	select {
	case p.tasks <- task:
	case <-p.done:
		return Result{}, ErrClosed
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
	select {
	case out := <-task.done:
		if out.err != nil {
			return Result{}, out.err
		}
		var res Result
		if err := json.Unmarshal(out.data, &res); err != nil {
			return Result{}, fmt.Errorf("executor: bad pod response: %w", err)
		}
		return res, nil
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// Undeploy implements Executor.
func (p *Parsl) Undeploy(servableID string) error {
	p.mu.Lock()
	d, ok := p.deps[servableID]
	if ok {
		delete(p.deps, servableID)
	}
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotDeployed, servableID)
	}
	d.epMu.Lock()
	for _, e := range d.engines {
		e.client.Close()
	}
	d.engines = nil
	d.epMu.Unlock()
	return p.cluster.DeleteDeployment(d.image)
}

// Close implements Executor.
func (p *Parsl) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	ids := make([]string, 0, len(p.deps))
	for id := range p.deps {
		ids = append(ids, id)
	}
	p.mu.Unlock()
	for _, id := range ids {
		p.Undeploy(id) //nolint:errcheck — best-effort shutdown
	}
	close(p.done)
	p.wg.Wait()
}
