package k8s

import (
	"fmt"
	"sync"
	"time"
)

// Events give the control plane an audit trail and let components watch
// cluster activity (the kubectl-get-events / watch-API slice of
// Kubernetes that operators rely on when debugging deployments).

// EventType classifies a cluster event.
type EventType string

// Cluster event types.
const (
	EventPodScheduled     EventType = "PodScheduled"
	EventPodStarted       EventType = "PodStarted"
	EventPodFailed        EventType = "PodFailed"
	EventPodDeleted       EventType = "PodDeleted"
	EventDeploymentScaled EventType = "DeploymentScaled"
)

// Event is one recorded cluster occurrence.
type Event struct {
	Type   EventType
	Object string // pod or deployment name
	Detail string
	At     time.Time
}

func (e Event) String() string {
	return fmt.Sprintf("%s %s %s: %s", e.At.Format(time.RFC3339), e.Type, e.Object, e.Detail)
}

// eventLog is the cluster's bounded event history plus watchers.
type eventLog struct {
	mu       sync.Mutex
	events   []Event
	watchers []chan Event
	limit    int
}

func newEventLog(limit int) *eventLog {
	if limit <= 0 {
		limit = 1024
	}
	return &eventLog{limit: limit}
}

func (l *eventLog) record(t EventType, object, format string, args ...any) {
	ev := Event{Type: t, Object: object, Detail: fmt.Sprintf(format, args...), At: time.Now()}
	l.mu.Lock()
	l.events = append(l.events, ev)
	if len(l.events) > l.limit {
		l.events = l.events[len(l.events)-l.limit:]
	}
	watchers := append([]chan Event(nil), l.watchers...)
	l.mu.Unlock()
	for _, ch := range watchers {
		select {
		case ch <- ev:
		default: // slow watcher: drop rather than block the control plane
		}
	}
}

// Events returns a copy of the recorded history, oldest first.
func (c *Cluster) Events() []Event {
	c.log.mu.Lock()
	defer c.log.mu.Unlock()
	return append([]Event(nil), c.log.events...)
}

// Watch subscribes to future events. The returned cancel function must
// be called to release the watcher. Slow consumers miss events rather
// than stalling the cluster.
func (c *Cluster) Watch(buffer int) (<-chan Event, func()) {
	if buffer <= 0 {
		buffer = 64
	}
	ch := make(chan Event, buffer)
	c.log.mu.Lock()
	c.log.watchers = append(c.log.watchers, ch)
	c.log.mu.Unlock()
	cancel := func() {
		c.log.mu.Lock()
		defer c.log.mu.Unlock()
		for i, w := range c.log.watchers {
			if w == ch {
				c.log.watchers = append(c.log.watchers[:i], c.log.watchers[i+1:]...)
				break
			}
		}
	}
	return ch, cancel
}
