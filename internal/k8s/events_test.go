package k8s

import (
	"testing"
	"time"
)

func TestEventsRecordLifecycle(t *testing.T) {
	c := newTestCluster(t, 2, Resources{MilliCPU: 32000, MemMB: 64 * 1024})
	if _, err := c.CreateDeployment("d", PodSpec{Image: "model", Requests: Resources{MilliCPU: 100}}, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Scale("d", 3); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteDeployment("d"); err != nil {
		t.Fatal(err)
	}

	counts := map[EventType]int{}
	for _, ev := range c.Events() {
		counts[ev.Type]++
		if ev.Object == "" || ev.At.IsZero() {
			t.Fatalf("malformed event: %+v", ev)
		}
	}
	if counts[EventPodScheduled] != 3 || counts[EventPodStarted] != 3 {
		t.Fatalf("want 3 scheduled/started, got %v", counts)
	}
	if counts[EventPodDeleted] != 3 {
		t.Fatalf("want 3 deleted, got %v", counts)
	}
	if counts[EventDeploymentScaled] != 1 {
		t.Fatalf("want 1 scale event, got %v", counts)
	}
}

func TestEventsFailureRecorded(t *testing.T) {
	c := newTestCluster(t, 1, Resources{MilliCPU: 32000, MemMB: 64 * 1024})
	// Unknown image -> container start fails -> PodFailed event.
	if _, err := c.RunPod("bad", PodSpec{Image: "ghost"}); err == nil {
		t.Fatal("run with unknown image should fail")
	}
	found := false
	for _, ev := range c.Events() {
		if ev.Type == EventPodFailed && ev.Object == "bad" {
			found = true
		}
	}
	if !found {
		t.Fatalf("PodFailed event missing: %v", c.Events())
	}
}

func TestWatchDeliversEvents(t *testing.T) {
	c := newTestCluster(t, 1, Resources{MilliCPU: 32000, MemMB: 64 * 1024})
	ch, cancel := c.Watch(16)
	defer cancel()

	if _, err := c.RunPod("p", PodSpec{Image: "model"}); err != nil {
		t.Fatal(err)
	}
	var got []Event
	deadline := time.After(2 * time.Second)
	for len(got) < 2 {
		select {
		case ev := <-ch:
			got = append(got, ev)
		case <-deadline:
			t.Fatalf("watcher starved: got %v", got)
		}
	}
	if got[0].Type != EventPodScheduled || got[1].Type != EventPodStarted {
		t.Fatalf("unexpected event order: %v", got)
	}
	if got[0].String() == "" {
		t.Fatal("event String should render")
	}
}

func TestWatchCancelStopsDelivery(t *testing.T) {
	c := newTestCluster(t, 1, Resources{MilliCPU: 32000, MemMB: 64 * 1024})
	ch, cancel := c.Watch(1)
	cancel()
	c.RunPod("p", PodSpec{Image: "model"}) //nolint:errcheck
	select {
	case ev := <-ch:
		t.Fatalf("cancelled watcher received %v", ev)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestSlowWatcherDoesNotBlockCluster(t *testing.T) {
	c := newTestCluster(t, 1, Resources{MilliCPU: 32000, MemMB: 64 * 1024})
	_, cancel := c.Watch(1) // buffer 1, never drained
	defer cancel()
	// Many events; the cluster must not stall.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			name := string(rune('a' + i))
			c.RunPod(name, PodSpec{Image: "model"}) //nolint:errcheck
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("slow watcher blocked the control plane")
	}
}

func TestEventLogBounded(t *testing.T) {
	l := newEventLog(3)
	for i := 0; i < 10; i++ {
		l.record(EventPodStarted, "p", "n=%d", i)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.events) != 3 {
		t.Fatalf("log should be bounded at 3, got %d", len(l.events))
	}
	if l.events[2].Detail != "n=9" {
		t.Fatalf("should keep newest events: %v", l.events)
	}
}
