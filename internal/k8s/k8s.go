// Package k8s is a miniature Kubernetes: the substrate under PetrelKube,
// the 14-node cluster of §V-A. It supplies exactly the control-plane
// behaviour the paper's experiments exercise:
//
//   - Nodes with CPU/memory capacity (two E5-2670s ≈ 32 hyperthreads,
//     128 GB RAM per node);
//   - Pods running containers via the container.Runtime;
//   - Deployments with a replica count, reconciled by a controller —
//     scaling these is the Fig. 7 experiment ("the number of deployed
//     model replicas is increased");
//   - a least-allocated scheduler placing pods on nodes;
//   - Services with round-robin endpoint selection, the load-balancing
//     path used by the executors.
package k8s

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/container"
	"repro/internal/simconst"
)

// Errors.
var (
	ErrNodeNotFound       = errors.New("k8s: node not found")
	ErrPodNotFound        = errors.New("k8s: pod not found")
	ErrDeploymentNotFound = errors.New("k8s: deployment not found")
	ErrUnschedulable      = errors.New("k8s: no node with sufficient capacity")
	ErrNoEndpoints        = errors.New("k8s: service has no ready endpoints")
)

// Resources describes CPU (millicores) and memory (MB).
type Resources struct {
	MilliCPU int64
	MemMB    int64
}

// Add returns r+o.
func (r Resources) Add(o Resources) Resources {
	return Resources{MilliCPU: r.MilliCPU + o.MilliCPU, MemMB: r.MemMB + o.MemMB}
}

// Fits reports whether r fits within capacity given used.
func (r Resources) Fits(capacity, used Resources) bool {
	return used.MilliCPU+r.MilliCPU <= capacity.MilliCPU && used.MemMB+r.MemMB <= capacity.MemMB
}

// Node is one cluster machine.
type Node struct {
	Name     string
	Capacity Resources

	mu   sync.Mutex
	used Resources
	pods map[string]bool
}

// Used returns the node's current resource allocation.
func (n *Node) Used() Resources {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.used
}

// PodPhase is a pod lifecycle phase.
type PodPhase string

// Pod phases.
const (
	PodPending PodPhase = "Pending"
	PodRunning PodPhase = "Running"
	PodFailed  PodPhase = "Failed"
	PodDeleted PodPhase = "Deleted"
)

// PodSpec describes a pod to run.
type PodSpec struct {
	Image    string // container image ref
	Requests Resources
	Labels   map[string]string
}

// Pod is one scheduled instance.
type Pod struct {
	Name string
	Spec PodSpec

	mu        sync.RWMutex
	phase     PodPhase
	node      string
	ctr       *container.Container
	createdAt time.Time
}

// Phase returns the pod's lifecycle phase.
func (p *Pod) Phase() PodPhase {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.phase
}

// Node returns the assigned node name ("" while pending).
func (p *Pod) Node() string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.node
}

// Container returns the running container (nil unless Running).
func (p *Pod) Container() *container.Container {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.ctr
}

// Matches reports whether the pod carries all the given labels.
func (p *Pod) Matches(selector map[string]string) bool {
	for k, v := range selector {
		if p.Spec.Labels[k] != v {
			return false
		}
	}
	return true
}

// Deployment keeps Replicas pods of Template alive.
type Deployment struct {
	Name     string
	Template PodSpec

	mu       sync.Mutex
	replicas int
	serial   int64
}

// Replicas returns the desired replica count.
func (d *Deployment) Replicas() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.replicas
}

// Cluster is the control plane plus its nodes.
type Cluster struct {
	runtime *container.Runtime

	mu          sync.RWMutex
	nodes       map[string]*Node
	pods        map[string]*Pod
	deployments map[string]*Deployment
	services    map[string]*Service
	podSerial   atomic.Int64
	log         *eventLog
}

// NewCluster creates a cluster with n homogeneous nodes backed by the
// given container runtime. PetrelKube's 14 nodes each have two E5-2670
// CPUs (32 hyperthreads = 32000 millicores) and 128 GB RAM.
func NewCluster(runtime *container.Runtime, n int, perNode Resources) *Cluster {
	c := &Cluster{
		runtime:     runtime,
		nodes:       make(map[string]*Node),
		pods:        make(map[string]*Pod),
		deployments: make(map[string]*Deployment),
		services:    make(map[string]*Service),
		log:         newEventLog(4096),
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("node-%02d", i)
		c.nodes[name] = &Node{Name: name, Capacity: perNode, pods: make(map[string]bool)}
	}
	return c
}

// PetrelKube returns the paper's cluster dimensions.
func PetrelKube(runtime *container.Runtime) *Cluster {
	return NewCluster(runtime, 14, Resources{MilliCPU: 32000, MemMB: 128 * 1024})
}

// Nodes returns node names, sorted.
func (c *Cluster) Nodes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.nodes))
	for n := range c.nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// schedule picks the least-allocated node (by CPU fraction) that fits.
// Caller must hold c.mu at least for reading nodes map.
func (c *Cluster) schedule(req Resources) (*Node, error) {
	var best *Node
	var bestFrac float64
	for _, n := range c.nodes {
		n.mu.Lock()
		fits := req.Fits(n.Capacity, n.used)
		frac := float64(n.used.MilliCPU) / float64(n.Capacity.MilliCPU)
		n.mu.Unlock()
		if !fits {
			continue
		}
		if best == nil || frac < bestFrac || (frac == bestFrac && n.Name < best.Name) {
			best, bestFrac = n, frac
		}
	}
	if best == nil {
		return nil, ErrUnschedulable
	}
	return best, nil
}

// RunPod schedules and starts one pod synchronously: schedule -> pod
// start latency -> container start (which itself pays the container
// start latency). Deployment reconciliation runs pods in parallel, so
// scaling to n replicas costs one start latency, not n.
func (c *Cluster) RunPod(name string, spec PodSpec) (*Pod, error) {
	c.mu.Lock()
	node, err := c.schedule(spec.Requests)
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	node.mu.Lock()
	node.used = node.used.Add(spec.Requests)
	node.pods[name] = true
	node.mu.Unlock()

	pod := &Pod{Name: name, Spec: spec, phase: PodPending, node: node.Name, createdAt: time.Now()}
	c.pods[name] = pod
	c.mu.Unlock()
	c.log.record(EventPodScheduled, name, "assigned to %s", node.Name)

	time.Sleep(simconst.D(simconst.PodStartLatency))
	ctr, err := c.runtime.Run(spec.Image)
	if err != nil {
		pod.mu.Lock()
		pod.phase = PodFailed
		pod.mu.Unlock()
		c.releaseNode(node.Name, name, spec.Requests)
		c.log.record(EventPodFailed, name, "container start: %v", err)
		return nil, fmt.Errorf("k8s: pod %s: %w", name, err)
	}
	pod.mu.Lock()
	pod.ctr = ctr
	pod.phase = PodRunning
	pod.mu.Unlock()
	c.log.record(EventPodStarted, name, "container %s running", ctr.ID)
	return pod, nil
}

func (c *Cluster) releaseNode(nodeName, podName string, req Resources) {
	c.mu.RLock()
	node, ok := c.nodes[nodeName]
	c.mu.RUnlock()
	if !ok {
		return
	}
	node.mu.Lock()
	if node.pods[podName] {
		delete(node.pods, podName)
		node.used.MilliCPU -= req.MilliCPU
		node.used.MemMB -= req.MemMB
	}
	node.mu.Unlock()
}

// DeletePod stops a pod's container and frees its resources.
func (c *Cluster) DeletePod(name string) error {
	c.mu.Lock()
	pod, ok := c.pods[name]
	if ok {
		delete(c.pods, name)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrPodNotFound, name)
	}
	pod.mu.Lock()
	ctr := pod.ctr
	pod.phase = PodDeleted
	node := pod.node
	pod.mu.Unlock()
	if ctr != nil {
		c.runtime.Stop(ctr.ID) //nolint:errcheck — stopping a failed container is fine
	}
	c.releaseNode(node, name, pod.Spec.Requests)
	c.log.record(EventPodDeleted, name, "freed %dm CPU on %s", pod.Spec.Requests.MilliCPU, node)
	return nil
}

// GetPod returns a pod by name.
func (c *Cluster) GetPod(name string) (*Pod, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	p, ok := c.pods[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrPodNotFound, name)
	}
	return p, nil
}

// PodsMatching returns running pods carrying all selector labels,
// sorted by name.
func (c *Cluster) PodsMatching(selector map[string]string) []*Pod {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*Pod
	for _, p := range c.pods {
		if p.Phase() == PodRunning && p.Matches(selector) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CreateDeployment creates a deployment and synchronously reconciles it
// to the requested replica count.
func (c *Cluster) CreateDeployment(name string, template PodSpec, replicas int) (*Deployment, error) {
	if template.Labels == nil {
		template.Labels = map[string]string{}
	}
	template.Labels["deployment"] = name
	d := &Deployment{Name: name, Template: template, replicas: replicas}
	c.mu.Lock()
	c.deployments[name] = d
	c.mu.Unlock()
	if err := c.reconcile(d); err != nil {
		return nil, err
	}
	return d, nil
}

// Scale changes a deployment's replica count and reconciles.
func (c *Cluster) Scale(name string, replicas int) error {
	c.mu.RLock()
	d, ok := c.deployments[name]
	c.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrDeploymentNotFound, name)
	}
	d.mu.Lock()
	d.replicas = replicas
	d.mu.Unlock()
	c.log.record(EventDeploymentScaled, name, "replicas -> %d", replicas)
	return c.reconcile(d)
}

// DeleteDeployment removes the deployment and its pods.
func (c *Cluster) DeleteDeployment(name string) error {
	c.mu.Lock()
	d, ok := c.deployments[name]
	if ok {
		delete(c.deployments, name)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrDeploymentNotFound, name)
	}
	d.mu.Lock()
	d.replicas = 0
	d.mu.Unlock()
	for _, p := range c.PodsMatching(map[string]string{"deployment": name}) {
		c.DeletePod(p.Name) //nolint:errcheck — concurrent deletes tolerated
	}
	return nil
}

// reconcile drives actual pods toward the desired replica count,
// starting/stopping pods in parallel (as kubelets do).
func (c *Cluster) reconcile(d *Deployment) error {
	current := c.PodsMatching(map[string]string{"deployment": d.Name})
	want := d.Replicas()
	if len(current) < want {
		var wg sync.WaitGroup
		errs := make([]error, want-len(current))
		for i := 0; i < want-len(current); i++ {
			d.mu.Lock()
			d.serial++
			podName := fmt.Sprintf("%s-%d", d.Name, d.serial)
			d.mu.Unlock()
			wg.Add(1)
			go func(i int, podName string) {
				defer wg.Done()
				_, errs[i] = c.RunPod(podName, d.Template)
			}(i, podName)
		}
		wg.Wait()
		return errors.Join(errs...)
	}
	if len(current) > want {
		var wg sync.WaitGroup
		for _, p := range current[want:] {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				c.DeletePod(name) //nolint:errcheck
			}(p.Name)
		}
		wg.Wait()
	}
	return nil
}

// Service load-balances over pods matching a selector.
type Service struct {
	Name     string
	Selector map[string]string

	cluster *Cluster
	rr      atomic.Uint64
}

// CreateService registers a service for a label selector.
func (c *Cluster) CreateService(name string, selector map[string]string) *Service {
	s := &Service{Name: name, Selector: selector, cluster: c}
	c.mu.Lock()
	c.services[name] = s
	c.mu.Unlock()
	return s
}

// GetService fetches a registered service.
func (c *Cluster) GetService(name string) (*Service, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.services[name]
	return s, ok
}

// Endpoints returns the service's ready pods.
func (s *Service) Endpoints() []*Pod {
	return s.cluster.PodsMatching(s.Selector)
}

// Pick returns the next endpoint round-robin.
func (s *Service) Pick() (*Pod, error) {
	eps := s.Endpoints()
	if len(eps) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoEndpoints, s.Name)
	}
	idx := s.rr.Add(1)
	return eps[int(idx-1)%len(eps)], nil
}
