package k8s

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/container"
	"repro/internal/simconst"
)

func init() {
	simconst.Scale = 1000 // compress start latencies in tests
}

type nopProc struct{}

func (nopProc) Start(map[string][]byte, map[string]string) error { return nil }
func (nopProc) Stop()                                            {}

// newTestCluster builds a cluster with a registry carrying a "model"
// image whose entrypoint is a no-op process.
func newTestCluster(t *testing.T, nodes int, perNode Resources) *Cluster {
	t.Helper()
	reg := container.NewRegistry()
	b := container.NewBuilder(reg)
	if _, err := b.Build(container.BuildSpec{Name: "model", Entrypoint: "noop"}); err != nil {
		t.Fatal(err)
	}
	rt := container.NewRuntime(reg)
	rt.RegisterProcess("noop", func() container.Process { return nopProc{} })
	return NewCluster(rt, nodes, perNode)
}

func TestRunPodSchedulesAndRuns(t *testing.T) {
	c := newTestCluster(t, 2, Resources{MilliCPU: 4000, MemMB: 8192})
	pod, err := c.RunPod("p1", PodSpec{Image: "model", Requests: Resources{MilliCPU: 1000, MemMB: 512}})
	if err != nil {
		t.Fatal(err)
	}
	if pod.Phase() != PodRunning {
		t.Fatalf("pod should be running, is %s", pod.Phase())
	}
	if pod.Node() == "" {
		t.Fatal("pod should be bound to a node")
	}
	if pod.Container() == nil || pod.Container().State() != container.StateRunning {
		t.Fatal("pod container should be running")
	}
}

func TestSchedulerPrefersLeastAllocated(t *testing.T) {
	c := newTestCluster(t, 2, Resources{MilliCPU: 4000, MemMB: 8192})
	p1, _ := c.RunPod("a", PodSpec{Image: "model", Requests: Resources{MilliCPU: 2000, MemMB: 100}})
	p2, err := c.RunPod("b", PodSpec{Image: "model", Requests: Resources{MilliCPU: 2000, MemMB: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if p1.Node() == p2.Node() {
		t.Fatalf("second pod should land on the empty node, both on %s", p1.Node())
	}
}

func TestUnschedulable(t *testing.T) {
	c := newTestCluster(t, 1, Resources{MilliCPU: 1000, MemMB: 1024})
	if _, err := c.RunPod("big", PodSpec{Image: "model", Requests: Resources{MilliCPU: 2000}}); !errors.Is(err, ErrUnschedulable) {
		t.Fatalf("want unschedulable, got %v", err)
	}
	// Fill the node, then overflow.
	if _, err := c.RunPod("fit", PodSpec{Image: "model", Requests: Resources{MilliCPU: 1000}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunPod("over", PodSpec{Image: "model", Requests: Resources{MilliCPU: 1}}); !errors.Is(err, ErrUnschedulable) {
		t.Fatalf("want unschedulable when full, got %v", err)
	}
}

func TestDeletePodFreesResources(t *testing.T) {
	c := newTestCluster(t, 1, Resources{MilliCPU: 1000, MemMB: 1024})
	if _, err := c.RunPod("p", PodSpec{Image: "model", Requests: Resources{MilliCPU: 1000, MemMB: 1024}}); err != nil {
		t.Fatal(err)
	}
	if err := c.DeletePod("p"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeletePod("p"); !errors.Is(err, ErrPodNotFound) {
		t.Fatalf("double delete should fail, got %v", err)
	}
	// Capacity is free again.
	if _, err := c.RunPod("p2", PodSpec{Image: "model", Requests: Resources{MilliCPU: 1000, MemMB: 1024}}); err != nil {
		t.Fatalf("resources not released: %v", err)
	}
}

func TestDeploymentReconcilesReplicas(t *testing.T) {
	c := newTestCluster(t, 4, Resources{MilliCPU: 32000, MemMB: 128 * 1024})
	_, err := c.CreateDeployment("inception", PodSpec{Image: "model", Requests: Resources{MilliCPU: 1000, MemMB: 1024}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	pods := c.PodsMatching(map[string]string{"deployment": "inception"})
	if len(pods) != 5 {
		t.Fatalf("want 5 replicas, got %d", len(pods))
	}

	// Scale up, as Fig. 7 does.
	if err := c.Scale("inception", 12); err != nil {
		t.Fatal(err)
	}
	if got := len(c.PodsMatching(map[string]string{"deployment": "inception"})); got != 12 {
		t.Fatalf("want 12 after scale-up, got %d", got)
	}

	// Scale down.
	if err := c.Scale("inception", 3); err != nil {
		t.Fatal(err)
	}
	if got := len(c.PodsMatching(map[string]string{"deployment": "inception"})); got != 3 {
		t.Fatalf("want 3 after scale-down, got %d", got)
	}

	if err := c.Scale("ghost", 1); !errors.Is(err, ErrDeploymentNotFound) {
		t.Fatalf("scaling unknown deployment should fail, got %v", err)
	}
}

func TestDeleteDeployment(t *testing.T) {
	c := newTestCluster(t, 2, Resources{MilliCPU: 32000, MemMB: 64 * 1024})
	if _, err := c.CreateDeployment("d", PodSpec{Image: "model", Requests: Resources{MilliCPU: 100}}, 4); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteDeployment("d"); err != nil {
		t.Fatal(err)
	}
	if got := len(c.PodsMatching(map[string]string{"deployment": "d"})); got != 0 {
		t.Fatalf("pods should be gone, got %d", got)
	}
	if err := c.DeleteDeployment("d"); !errors.Is(err, ErrDeploymentNotFound) {
		t.Fatalf("double delete should fail, got %v", err)
	}
}

func TestServiceRoundRobin(t *testing.T) {
	c := newTestCluster(t, 2, Resources{MilliCPU: 32000, MemMB: 64 * 1024})
	if _, err := c.CreateDeployment("m", PodSpec{Image: "model", Requests: Resources{MilliCPU: 100}}, 3); err != nil {
		t.Fatal(err)
	}
	svc := c.CreateService("m-svc", map[string]string{"deployment": "m"})
	if got, ok := c.GetService("m-svc"); !ok || got != svc {
		t.Fatal("GetService should return the registered service")
	}

	counts := map[string]int{}
	for i := 0; i < 9; i++ {
		p, err := svc.Pick()
		if err != nil {
			t.Fatal(err)
		}
		counts[p.Name]++
	}
	if len(counts) != 3 {
		t.Fatalf("round robin should hit all 3 pods, got %v", counts)
	}
	for name, n := range counts {
		if n != 3 {
			t.Fatalf("uneven distribution: %s got %d", name, n)
		}
	}
}

func TestServiceNoEndpoints(t *testing.T) {
	c := newTestCluster(t, 1, Resources{MilliCPU: 1000, MemMB: 1024})
	svc := c.CreateService("empty", map[string]string{"deployment": "none"})
	if _, err := svc.Pick(); !errors.Is(err, ErrNoEndpoints) {
		t.Fatalf("want no endpoints, got %v", err)
	}
}

func TestPetrelKubeDimensions(t *testing.T) {
	reg := container.NewRegistry()
	rt := container.NewRuntime(reg)
	c := PetrelKube(rt)
	if len(c.Nodes()) != 14 {
		t.Fatalf("PetrelKube has 14 nodes, got %d", len(c.Nodes()))
	}
}

func TestConcurrentScaling(t *testing.T) {
	c := newTestCluster(t, 4, Resources{MilliCPU: 32000, MemMB: 128 * 1024})
	if _, err := c.CreateDeployment("d", PodSpec{Image: "model", Requests: Resources{MilliCPU: 100}}, 1); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 1; i <= 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c.Scale("d", n) //nolint:errcheck
		}(i)
	}
	wg.Wait()
	// Settle to a deterministic state.
	if err := c.Scale("d", 4); err != nil {
		t.Fatal(err)
	}
	if got := len(c.PodsMatching(map[string]string{"deployment": "d"})); got != 4 {
		t.Fatalf("after settling want 4, got %d", got)
	}
}

func TestResourceAccountingAcrossDeployments(t *testing.T) {
	c := newTestCluster(t, 2, Resources{MilliCPU: 4000, MemMB: 8192})
	if _, err := c.CreateDeployment("a", PodSpec{Image: "model", Requests: Resources{MilliCPU: 2000, MemMB: 1024}}, 2); err != nil {
		t.Fatal(err)
	}
	// 4000 of 8000 mCPU used; 3 more 2000m pods cannot all fit.
	_, err := c.CreateDeployment("b", PodSpec{Image: "model", Requests: Resources{MilliCPU: 2000, MemMB: 1024}}, 3)
	if err == nil {
		t.Fatal("overcommit should fail reconcile")
	}
	if !errors.Is(err, ErrUnschedulable) {
		t.Fatalf("want unschedulable in join, got %v", err)
	}
}

func TestPodsMatchingSelector(t *testing.T) {
	c := newTestCluster(t, 1, Resources{MilliCPU: 32000, MemMB: 64 * 1024})
	c.RunPod("x", PodSpec{Image: "model", Labels: map[string]string{"app": "tf", "ver": "1"}}) //nolint:errcheck
	c.RunPod("y", PodSpec{Image: "model", Labels: map[string]string{"app": "tf", "ver": "2"}}) //nolint:errcheck
	c.RunPod("z", PodSpec{Image: "model", Labels: map[string]string{"app": "sk", "ver": "1"}}) //nolint:errcheck
	if got := len(c.PodsMatching(map[string]string{"app": "tf"})); got != 2 {
		t.Fatalf("want 2 tf pods, got %d", got)
	}
	if got := len(c.PodsMatching(map[string]string{"app": "tf", "ver": "2"})); got != 1 {
		t.Fatalf("want 1 tf/v2 pod, got %d", got)
	}
	if got := len(c.PodsMatching(nil)); got != 3 {
		t.Fatalf("empty selector matches all: got %d", got)
	}
}

func TestGetPod(t *testing.T) {
	c := newTestCluster(t, 1, Resources{MilliCPU: 32000, MemMB: 64 * 1024})
	c.RunPod("p", PodSpec{Image: "model"}) //nolint:errcheck
	if _, err := c.GetPod("p"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetPod("ghost"); !errors.Is(err, ErrPodNotFound) {
		t.Fatalf("want pod not found, got %v", err)
	}
}

func TestManyReplicasAcrossNodes(t *testing.T) {
	c := newTestCluster(t, 14, Resources{MilliCPU: 32000, MemMB: 128 * 1024})
	if _, err := c.CreateDeployment("big", PodSpec{Image: "model", Requests: Resources{MilliCPU: 8000, MemMB: 4096}}, 32); err != nil {
		t.Fatal(err)
	}
	pods := c.PodsMatching(map[string]string{"deployment": "big"})
	if len(pods) != 32 {
		t.Fatalf("want 32 replicas, got %d", len(pods))
	}
	// Pods should be spread over many nodes.
	nodes := map[string]bool{}
	for _, p := range pods {
		nodes[p.Node()] = true
	}
	if len(nodes) < 8 {
		t.Fatalf("replicas should spread across nodes, got %d nodes", len(nodes))
	}
}

func TestResourcesFits(t *testing.T) {
	cap := Resources{MilliCPU: 100, MemMB: 100}
	if !(Resources{MilliCPU: 50, MemMB: 50}).Fits(cap, Resources{MilliCPU: 50, MemMB: 50}) {
		t.Fatal("exact fit should pass")
	}
	if (Resources{MilliCPU: 51, MemMB: 0}).Fits(cap, Resources{MilliCPU: 50}) {
		t.Fatal("cpu overflow should fail")
	}
	if (Resources{MemMB: 101}).Fits(cap, Resources{}) {
		t.Fatal("mem overflow should fail")
	}
}

func TestUniquePodNamesAcrossScales(t *testing.T) {
	c := newTestCluster(t, 2, Resources{MilliCPU: 32000, MemMB: 64 * 1024})
	c.CreateDeployment("d", PodSpec{Image: "model", Requests: Resources{MilliCPU: 10}}, 3) //nolint:errcheck
	c.Scale("d", 1)                                                                        //nolint:errcheck
	c.Scale("d", 5)                                                                        //nolint:errcheck
	pods := c.PodsMatching(map[string]string{"deployment": "d"})
	seen := map[string]bool{}
	for _, p := range pods {
		if seen[p.Name] {
			t.Fatalf("duplicate pod name %s", p.Name)
		}
		seen[p.Name] = true
	}
	if len(pods) != 5 {
		t.Fatalf("want 5 pods, got %d", len(pods))
	}
	_ = fmt.Sprintf // keep fmt import if unused paths change
}
