package matsci

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"unicode"
)

// Composition maps element symbols to (possibly fractional) amounts —
// the pymatgen.Composition equivalent produced by the "matminer util"
// servable from strings like "NaCl", "SiO2" or "Ca(OH)2".
type Composition map[string]float64

// Parse errors.
var (
	ErrEmptyFormula   = errors.New("matsci: empty formula")
	ErrUnknownElement = errors.New("matsci: unknown element")
	ErrBadFormula     = errors.New("matsci: malformed formula")
)

// ParseComposition parses a chemical formula with nested parentheses
// and fractional amounts, e.g. "NaCl", "SiO2", "Ca(OH)2",
// "Li0.5Na0.5Cl", "Ba(Zr0.2Ti0.8)O3".
func ParseComposition(formula string) (Composition, error) {
	formula = strings.TrimSpace(formula)
	if formula == "" {
		return nil, ErrEmptyFormula
	}
	p := &parser{s: formula}
	comp, err := p.group(0)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.s) {
		return nil, fmt.Errorf("%w: unexpected %q at position %d", ErrBadFormula, p.s[p.pos], p.pos)
	}
	if len(comp) == 0 {
		return nil, ErrEmptyFormula
	}
	return comp, nil
}

type parser struct {
	s   string
	pos int
}

// group parses a sequence of (element|“(”group“)”)[amount] terms until a
// closing paren at this depth or end of input.
func (p *parser) group(depth int) (Composition, error) {
	out := Composition{}
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		switch {
		case c == ')':
			if depth == 0 {
				return nil, fmt.Errorf("%w: unbalanced ')' at %d", ErrBadFormula, p.pos)
			}
			return out, nil
		case c == '(':
			p.pos++
			inner, err := p.group(depth + 1)
			if err != nil {
				return nil, err
			}
			if p.pos >= len(p.s) || p.s[p.pos] != ')' {
				return nil, fmt.Errorf("%w: missing ')'", ErrBadFormula)
			}
			p.pos++
			mult := p.amount()
			for el, n := range inner {
				out[el] += n * mult
			}
		case unicode.IsUpper(rune(c)):
			sym := p.symbol()
			if _, ok := Lookup(sym); !ok {
				return nil, fmt.Errorf("%w: %q", ErrUnknownElement, sym)
			}
			out[sym] += p.amount()
		case c == ' ':
			p.pos++
		default:
			return nil, fmt.Errorf("%w: unexpected %q at position %d", ErrBadFormula, c, p.pos)
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("%w: missing ')'", ErrBadFormula)
	}
	return out, nil
}

// symbol consumes an element symbol: uppercase letter + optional
// lowercase letters.
func (p *parser) symbol() string {
	start := p.pos
	p.pos++
	for p.pos < len(p.s) && unicode.IsLower(rune(p.s[p.pos])) {
		p.pos++
	}
	return p.s[start:p.pos]
}

// amount consumes an optional decimal number (default 1).
func (p *parser) amount() float64 {
	start := p.pos
	for p.pos < len(p.s) && (unicode.IsDigit(rune(p.s[p.pos])) || p.s[p.pos] == '.') {
		p.pos++
	}
	if p.pos == start {
		return 1
	}
	v, err := strconv.ParseFloat(p.s[start:p.pos], 64)
	if err != nil || v <= 0 {
		return 1
	}
	return v
}

// Fractions normalizes amounts to mole fractions, sorted by symbol for
// deterministic iteration.
func (c Composition) Fractions() ([]string, []float64) {
	syms := make([]string, 0, len(c))
	var total float64
	for s, n := range c {
		syms = append(syms, s)
		total += n
	}
	sort.Strings(syms)
	fr := make([]float64, len(syms))
	for i, s := range syms {
		fr[i] = c[s] / total
	}
	return syms, fr
}

// NumAtoms returns the total (possibly fractional) atom count.
func (c Composition) NumAtoms() float64 {
	var t float64
	for _, n := range c {
		t += n
	}
	return t
}

// ReducedFormula renders a normalized formula string with amounts
// divided by their integer GCD when all are integers (NaCl not Na1Cl1).
func (c Composition) ReducedFormula() string {
	syms, _ := c.Fractions()
	// Try integer reduction.
	ints := make([]int, len(syms))
	allInt := true
	for i, s := range syms {
		v := c[s]
		if v != math.Trunc(v) {
			allInt = false
			break
		}
		ints[i] = int(v)
	}
	var sb strings.Builder
	if allInt {
		g := 0
		for _, v := range ints {
			g = gcd(g, v)
		}
		if g == 0 {
			g = 1
		}
		for i, s := range syms {
			sb.WriteString(s)
			if n := ints[i] / g; n != 1 {
				fmt.Fprintf(&sb, "%d", n)
			}
		}
		return sb.String()
	}
	for _, s := range syms {
		sb.WriteString(s)
		v := c[s]
		if v != 1 {
			sb.WriteString(strconv.FormatFloat(v, 'g', 6, 64))
		}
	}
	return sb.String()
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}
