// Package matsci re-implements the materials-science toolchain the
// paper's matminer servables depend on: pymatgen-style composition
// parsing ("matminer util"), a Magpie-style elemental-property
// featurizer after Ward et al. 2016 ("matminer featurize"), and a
// synthetic OQMD-like formation-energy dataset generator used to train
// the random-forest stability model ("matminer model").
//
// Substitution note (DESIGN.md): the embedded element-property table
// holds approximate literature values (atomic mass, Pauling
// electronegativity, covalent radius, melting point, rows/groups).
// The featurizer's cost and output dimensionality match Magpie's
// statistics pipeline; individual property values are close but not
// authoritative, which is irrelevant to the serving experiments and
// acceptable for the example applications.
package matsci

// Element holds the per-element properties the featurizer consumes.
type Element struct {
	Symbol string
	Z      int
	// Mass in atomic mass units.
	Mass float64
	// Electronegativity on the Pauling scale (0 where undefined).
	Electronegativity float64
	// CovalentRadius in picometers.
	CovalentRadius float64
	// MeltingPoint in kelvin.
	MeltingPoint float64
	// Row and Group in the periodic table (lanthanides: row 8 by
	// Magpie convention... we use row 6, group 3 like pymatgen).
	Row, Group int
	// Valence electron counts by subshell, computed via Aufbau.
	NsValence, NpValence, NdValence, NfValence int
}

// NValence returns the total valence electron count.
func (e *Element) NValence() int {
	return e.NsValence + e.NpValence + e.NdValence + e.NfValence
}

// elementSeed lists the embedded raw properties:
// symbol, Z, mass, electronegativity, covalent radius, melting K, row, group.
var elementSeed = []struct {
	Sym  string
	Z    int
	Mass float64
	EN   float64
	Rad  float64
	Melt float64
	Row  int
	Grp  int
}{
	{"H", 1, 1.008, 2.20, 31, 14, 1, 1},
	{"He", 2, 4.003, 0, 28, 1, 1, 18},
	{"Li", 3, 6.94, 0.98, 128, 454, 2, 1},
	{"Be", 4, 9.012, 1.57, 96, 1560, 2, 2},
	{"B", 5, 10.81, 2.04, 84, 2349, 2, 13},
	{"C", 6, 12.011, 2.55, 76, 3823, 2, 14},
	{"N", 7, 14.007, 3.04, 71, 63, 2, 15},
	{"O", 8, 15.999, 3.44, 66, 54, 2, 16},
	{"F", 9, 18.998, 3.98, 57, 53, 2, 17},
	{"Ne", 10, 20.180, 0, 58, 25, 2, 18},
	{"Na", 11, 22.990, 0.93, 166, 371, 3, 1},
	{"Mg", 12, 24.305, 1.31, 141, 923, 3, 2},
	{"Al", 13, 26.982, 1.61, 121, 933, 3, 13},
	{"Si", 14, 28.085, 1.90, 111, 1687, 3, 14},
	{"P", 15, 30.974, 2.19, 107, 317, 3, 15},
	{"S", 16, 32.06, 2.58, 105, 388, 3, 16},
	{"Cl", 17, 35.45, 3.16, 102, 172, 3, 17},
	{"Ar", 18, 39.948, 0, 106, 84, 3, 18},
	{"K", 19, 39.098, 0.82, 203, 337, 4, 1},
	{"Ca", 20, 40.078, 1.00, 176, 1115, 4, 2},
	{"Sc", 21, 44.956, 1.36, 170, 1814, 4, 3},
	{"Ti", 22, 47.867, 1.54, 160, 1941, 4, 4},
	{"V", 23, 50.942, 1.63, 153, 2183, 4, 5},
	{"Cr", 24, 51.996, 1.66, 139, 2180, 4, 6},
	{"Mn", 25, 54.938, 1.55, 139, 1519, 4, 7},
	{"Fe", 26, 55.845, 1.83, 132, 1811, 4, 8},
	{"Co", 27, 58.933, 1.88, 126, 1768, 4, 9},
	{"Ni", 28, 58.693, 1.91, 124, 1728, 4, 10},
	{"Cu", 29, 63.546, 1.90, 132, 1358, 4, 11},
	{"Zn", 30, 65.38, 1.65, 122, 693, 4, 12},
	{"Ga", 31, 69.723, 1.81, 122, 303, 4, 13},
	{"Ge", 32, 72.630, 2.01, 120, 1211, 4, 14},
	{"As", 33, 74.922, 2.18, 119, 1090, 4, 15},
	{"Se", 34, 78.971, 2.55, 120, 494, 4, 16},
	{"Br", 35, 79.904, 2.96, 120, 266, 4, 17},
	{"Kr", 36, 83.798, 3.00, 116, 116, 4, 18},
	{"Rb", 37, 85.468, 0.82, 220, 312, 5, 1},
	{"Sr", 38, 87.62, 0.95, 195, 1050, 5, 2},
	{"Y", 39, 88.906, 1.22, 190, 1799, 5, 3},
	{"Zr", 40, 91.224, 1.33, 175, 2128, 5, 4},
	{"Nb", 41, 92.906, 1.60, 164, 2750, 5, 5},
	{"Mo", 42, 95.95, 2.16, 154, 2896, 5, 6},
	{"Tc", 43, 98.0, 1.90, 147, 2430, 5, 7},
	{"Ru", 44, 101.07, 2.20, 146, 2607, 5, 8},
	{"Rh", 45, 102.906, 2.28, 142, 2237, 5, 9},
	{"Pd", 46, 106.42, 2.20, 139, 1828, 5, 10},
	{"Ag", 47, 107.868, 1.93, 145, 1235, 5, 11},
	{"Cd", 48, 112.414, 1.69, 144, 594, 5, 12},
	{"In", 49, 114.818, 1.78, 142, 430, 5, 13},
	{"Sn", 50, 118.710, 1.96, 139, 505, 5, 14},
	{"Sb", 51, 121.760, 2.05, 139, 904, 5, 15},
	{"Te", 52, 127.60, 2.10, 138, 723, 5, 16},
	{"I", 53, 126.904, 2.66, 139, 387, 5, 17},
	{"Xe", 54, 131.293, 2.60, 140, 161, 5, 18},
	{"Cs", 55, 132.905, 0.79, 244, 302, 6, 1},
	{"Ba", 56, 137.327, 0.89, 215, 1000, 6, 2},
	{"La", 57, 138.905, 1.10, 207, 1193, 6, 3},
	{"Ce", 58, 140.116, 1.12, 204, 1068, 6, 3},
	{"Pr", 59, 140.908, 1.13, 203, 1208, 6, 3},
	{"Nd", 60, 144.242, 1.14, 201, 1297, 6, 3},
	{"Pm", 61, 145.0, 1.13, 199, 1315, 6, 3},
	{"Sm", 62, 150.36, 1.17, 198, 1345, 6, 3},
	{"Eu", 63, 151.964, 1.20, 198, 1099, 6, 3},
	{"Gd", 64, 157.25, 1.20, 196, 1585, 6, 3},
	{"Tb", 65, 158.925, 1.22, 194, 1629, 6, 3},
	{"Dy", 66, 162.500, 1.23, 192, 1680, 6, 3},
	{"Ho", 67, 164.930, 1.24, 192, 1734, 6, 3},
	{"Er", 68, 167.259, 1.24, 189, 1802, 6, 3},
	{"Tm", 69, 168.934, 1.25, 190, 1818, 6, 3},
	{"Yb", 70, 173.045, 1.10, 187, 1097, 6, 3},
	{"Lu", 71, 174.967, 1.27, 187, 1925, 6, 3},
	{"Hf", 72, 178.49, 1.30, 175, 2506, 6, 4},
	{"Ta", 73, 180.948, 1.50, 170, 3290, 6, 5},
	{"W", 74, 183.84, 2.36, 162, 3695, 6, 6},
	{"Re", 75, 186.207, 1.90, 151, 3459, 6, 7},
	{"Os", 76, 190.23, 2.20, 144, 3306, 6, 8},
	{"Ir", 77, 192.217, 2.20, 141, 2719, 6, 9},
	{"Pt", 78, 195.084, 2.28, 136, 2041, 6, 10},
	{"Au", 79, 196.967, 2.54, 136, 1337, 6, 11},
	{"Hg", 80, 200.592, 2.00, 132, 234, 6, 12},
	{"Tl", 81, 204.38, 1.62, 145, 577, 6, 13},
	{"Pb", 82, 207.2, 2.33, 146, 600, 6, 14},
	{"Bi", 83, 208.980, 2.02, 148, 544, 6, 15},
	{"Po", 84, 209.0, 2.00, 140, 527, 6, 16},
	{"At", 85, 210.0, 2.20, 150, 575, 6, 17},
	{"Rn", 86, 222.0, 0, 150, 202, 6, 18},
	{"Fr", 87, 223.0, 0.70, 260, 300, 7, 1},
	{"Ra", 88, 226.0, 0.90, 221, 973, 7, 2},
	{"Ac", 89, 227.0, 1.10, 215, 1323, 7, 3},
	{"Th", 90, 232.038, 1.30, 206, 2023, 7, 3},
	{"Pa", 91, 231.036, 1.50, 200, 1841, 7, 3},
	{"U", 92, 238.029, 1.38, 196, 1405, 7, 3},
}

// table maps symbol -> element, built at init.
var table = buildTable()

func buildTable() map[string]*Element {
	m := make(map[string]*Element, len(elementSeed))
	for _, s := range elementSeed {
		e := &Element{
			Symbol:            s.Sym,
			Z:                 s.Z,
			Mass:              s.Mass,
			Electronegativity: s.EN,
			CovalentRadius:    s.Rad,
			MeltingPoint:      s.Melt,
			Row:               s.Row,
			Group:             s.Grp,
		}
		e.NsValence, e.NpValence, e.NdValence, e.NfValence = valenceCounts(s.Z)
		m[s.Sym] = e
	}
	return m
}

// aufbauOrder lists subshells in filling order as (n, l, capacity).
var aufbauOrder = []struct{ n, l, cap int }{
	{1, 0, 2}, {2, 0, 2}, {2, 1, 6}, {3, 0, 2}, {3, 1, 6}, {4, 0, 2},
	{3, 2, 10}, {4, 1, 6}, {5, 0, 2}, {4, 2, 10}, {5, 1, 6}, {6, 0, 2},
	{4, 3, 14}, {5, 2, 10}, {6, 1, 6}, {7, 0, 2}, {5, 3, 14}, {6, 2, 10},
	{7, 1, 6},
}

// valenceCounts fills electrons by the Aufbau principle and counts
// valence electrons per subshell: s/p in the outermost shell n_max,
// d in shell n_max-1 (if partially filled), f in shell n_max-2.
// Aufbau exceptions (Cr, Cu, ...) are ignored — a documented
// approximation adequate for featurization.
func valenceCounts(z int) (s, p, d, f int) {
	filled := map[[2]int]int{}
	remaining := z
	nMax := 1
	for _, sh := range aufbauOrder {
		if remaining <= 0 {
			break
		}
		take := sh.cap
		if take > remaining {
			take = remaining
		}
		filled[[2]int{sh.n, sh.l}] = take
		remaining -= take
		if sh.l == 0 && take > 0 && sh.n > nMax {
			nMax = sh.n
		}
	}
	s = filled[[2]int{nMax, 0}]
	p = filled[[2]int{nMax, 1}]
	// d valence counts only when the (n-1)d shell is partially filled
	// (transition metals): a full d10 below a populated higher shell is
	// core-like, matching Magpie's valence bookkeeping closely enough.
	if v := filled[[2]int{nMax - 1, 2}]; v > 0 && v < 10 {
		d = v
	}
	if v := filled[[2]int{nMax - 2, 3}]; v > 0 && v < 14 {
		f = v
	}
	return s, p, d, f
}

// Lookup returns the element for a symbol.
func Lookup(symbol string) (*Element, bool) {
	e, ok := table[symbol]
	return e, ok
}

// NumElements reports the table size.
func NumElements() int { return len(table) }
