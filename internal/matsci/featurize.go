package matsci

import (
	"math"
	"sort"
)

// The featurizer implements the elemental-property statistics of Ward
// et al. 2016 ("A general-purpose machine learning framework for
// predicting properties of inorganic materials"), the feature set the
// paper's "matminer featurize" servable computes: for each elemental
// property, the fraction-weighted mean, average deviation, range, min,
// max and mode over the constituent elements; plus stoichiometric
// p-norms and valence-orbital fractions.

// property accessors, in fixed order so feature indices are stable.
var properties = []struct {
	Name string
	Get  func(*Element) float64
}{
	{"Z", func(e *Element) float64 { return float64(e.Z) }},
	{"Mass", func(e *Element) float64 { return e.Mass }},
	{"Electronegativity", func(e *Element) float64 { return e.Electronegativity }},
	{"CovalentRadius", func(e *Element) float64 { return e.CovalentRadius }},
	{"MeltingPoint", func(e *Element) float64 { return e.MeltingPoint }},
	{"Row", func(e *Element) float64 { return float64(e.Row) }},
	{"Group", func(e *Element) float64 { return float64(e.Group) }},
	{"NsValence", func(e *Element) float64 { return float64(e.NsValence) }},
	{"NpValence", func(e *Element) float64 { return float64(e.NpValence) }},
	{"NdValence", func(e *Element) float64 { return float64(e.NdValence) }},
	{"NfValence", func(e *Element) float64 { return float64(e.NfValence) }},
	{"NValence", func(e *Element) float64 { return float64(e.NValence()) }},
}

var stats = []string{"mean", "avgdev", "range", "min", "max", "mode"}

// stoichiometric p-norms computed over mole fractions.
var pNorms = []float64{0, 2, 3, 5, 7, 10}

// FeatureNames returns the stable, ordered feature vector layout.
func FeatureNames() []string {
	names := make([]string, 0, NumFeatures())
	for _, p := range pNorms {
		if p == 0 {
			names = append(names, "stoich_nelements")
		} else {
			names = append(names, "stoich_p"+itoa(int(p))+"_norm")
		}
	}
	for _, prop := range properties {
		for _, s := range stats {
			names = append(names, "magpie_"+prop.Name+"_"+s)
		}
	}
	for _, orb := range []string{"s", "p", "d", "f"} {
		names = append(names, "valence_frac_"+orb)
	}
	return names
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

// NumFeatures is the feature vector length.
func NumFeatures() int {
	return len(pNorms) + len(properties)*len(stats) + 4
}

// Featurize computes the Ward/Magpie feature vector for a composition.
func Featurize(c Composition) []float64 {
	syms, fracs := c.Fractions()
	els := make([]*Element, len(syms))
	for i, s := range syms {
		els[i], _ = Lookup(s)
	}
	out := make([]float64, 0, NumFeatures())

	// Stoichiometric features.
	for _, p := range pNorms {
		if p == 0 {
			out = append(out, float64(len(syms)))
			continue
		}
		var norm float64
		for _, f := range fracs {
			norm += math.Pow(f, p)
		}
		out = append(out, math.Pow(norm, 1/p))
	}

	// Elemental property statistics.
	vals := make([]float64, len(els))
	for _, prop := range properties {
		for i, e := range els {
			vals[i] = prop.Get(e)
		}
		out = append(out, weightedStats(vals, fracs)...)
	}

	// Valence orbital fractions.
	var s, p, d, f float64
	for i, e := range els {
		s += fracs[i] * float64(e.NsValence)
		p += fracs[i] * float64(e.NpValence)
		d += fracs[i] * float64(e.NdValence)
		f += fracs[i] * float64(e.NfValence)
	}
	total := s + p + d + f
	if total == 0 {
		total = 1
	}
	out = append(out, s/total, p/total, d/total, f/total)
	return out
}

// weightedStats returns [mean, avgdev, range, min, max, mode] of vals
// weighted by fracs.
func weightedStats(vals, fracs []float64) []float64 {
	var mean float64
	for i, v := range vals {
		mean += fracs[i] * v
	}
	var avgdev float64
	for i, v := range vals {
		avgdev += fracs[i] * math.Abs(v-mean)
	}
	minV, maxV := vals[0], vals[0]
	modeIdx := 0
	for i, v := range vals {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
		if fracs[i] > fracs[modeIdx] {
			modeIdx = i
		}
	}
	return []float64{mean, avgdev, maxV - minV, minV, maxV, vals[modeIdx]}
}

// --- synthetic OQMD-like dataset -------------------------------------------

// FormationEnergy computes the synthetic ground-truth formation energy
// (eV/atom) used to generate training data: an ionic-bonding term from
// electronegativity differences minus a size-mismatch penalty, loosely
// shaped like real OQMD trends (binary ionic compounds strongly
// negative, single elements zero). It is deterministic — the RF learns
// a real, structured target.
func FormationEnergy(c Composition) float64 {
	syms, fracs := c.Fractions()
	if len(syms) == 1 {
		return 0 // elemental reference state
	}
	els := make([]*Element, len(syms))
	for i, s := range syms {
		els[i], _ = Lookup(s)
	}
	// Fraction-weighted mean electronegativity.
	var meanEN, meanRad float64
	for i, e := range els {
		meanEN += fracs[i] * e.Electronegativity
		meanRad += fracs[i] * e.CovalentRadius
	}
	// Ionic term: weighted mean |EN - meanEN| — larger spread binds
	// more strongly (Pauling's ionic stabilization).
	var ionic, sizeMismatch float64
	for i, e := range els {
		ionic += fracs[i] * math.Abs(e.Electronegativity-meanEN)
		sizeMismatch += fracs[i] * math.Abs(e.CovalentRadius-meanRad) / 100
	}
	// Entropy-like mixing bonus for multi-component phases.
	var mix float64
	for _, f := range fracs {
		if f > 0 {
			mix -= f * math.Log(f)
		}
	}
	return -1.2*ionic - 0.15*mix + 0.3*sizeMismatch*sizeMismatch
}

// Dataset is a generated training set.
type Dataset struct {
	Formulas []string
	X        [][]float64
	Y        []float64
}

// GenerateDataset builds n random binary/ternary compositions over the
// common elements, featurizes them, and labels them with the synthetic
// formation energy — the OQMD stand-in for training "matminer model".
func GenerateDataset(n int, seed int64) *Dataset {
	// xorshift for determinism without importing math/rand here.
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	syms := commonElements()
	ds := &Dataset{}
	for len(ds.Formulas) < n {
		k := 2 + int(next()%2) // binary or ternary
		comp := Composition{}
		for j := 0; j < k; j++ {
			sym := syms[int(next()%uint64(len(syms)))]
			comp[sym] += float64(1 + next()%3)
		}
		if len(comp) < 2 {
			continue
		}
		ds.Formulas = append(ds.Formulas, comp.ReducedFormula())
		ds.X = append(ds.X, Featurize(comp))
		ds.Y = append(ds.Y, FormationEnergy(comp))
	}
	return ds
}

// commonElements returns a deterministic list of rock-forming and
// transition-metal elements used for dataset generation.
func commonElements() []string {
	syms := []string{
		"H", "Li", "Be", "B", "C", "N", "O", "F", "Na", "Mg", "Al", "Si",
		"P", "S", "Cl", "K", "Ca", "Ti", "V", "Cr", "Mn", "Fe", "Co",
		"Ni", "Cu", "Zn", "Ga", "Ge", "Se", "Sr", "Y", "Zr", "Nb", "Mo",
		"Ag", "Cd", "In", "Sn", "Sb", "Te", "Ba", "La", "W", "Pt", "Au",
		"Pb", "Bi",
	}
	sort.Strings(syms)
	return syms
}
