package matsci

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestLookup(t *testing.T) {
	fe, ok := Lookup("Fe")
	if !ok {
		t.Fatal("Fe should exist")
	}
	if fe.Z != 26 || fe.Mass < 55 || fe.Mass > 56 {
		t.Fatalf("Fe data wrong: %+v", fe)
	}
	if _, ok := Lookup("Xx"); ok {
		t.Fatal("Xx should not exist")
	}
	if NumElements() < 90 {
		t.Fatalf("table too small: %d", NumElements())
	}
}

func TestValenceCounts(t *testing.T) {
	cases := map[string][4]int{ // s,p,d,f
		"H":  {1, 0, 0, 0},
		"O":  {2, 4, 0, 0},
		"Na": {1, 0, 0, 0},
		"Si": {2, 2, 0, 0},
		"Fe": {2, 0, 6, 0},
		"Zn": {2, 0, 0, 0}, // full 3d10 is core-like
		"Cl": {2, 5, 0, 0},
	}
	for sym, want := range cases {
		e, _ := Lookup(sym)
		got := [4]int{e.NsValence, e.NpValence, e.NdValence, e.NfValence}
		if got != want {
			t.Errorf("%s valence = %v, want %v", sym, got, want)
		}
	}
	// Total valence sanity for a lanthanide: f electrons counted.
	ce, _ := Lookup("Ce")
	if ce.NfValence == 0 && ce.NdValence == 0 {
		t.Error("Ce should have d or f valence electrons")
	}
}

func TestParseSimple(t *testing.T) {
	c, err := ParseComposition("NaCl")
	if err != nil {
		t.Fatal(err)
	}
	if c["Na"] != 1 || c["Cl"] != 1 {
		t.Fatalf("NaCl wrong: %v", c)
	}
	c, _ = ParseComposition("SiO2")
	if c["Si"] != 1 || c["O"] != 2 {
		t.Fatalf("SiO2 wrong: %v", c)
	}
	c, _ = ParseComposition("Al2O3")
	if c["Al"] != 2 || c["O"] != 3 {
		t.Fatalf("Al2O3 wrong: %v", c)
	}
}

func TestParseParentheses(t *testing.T) {
	c, err := ParseComposition("Ca(OH)2")
	if err != nil {
		t.Fatal(err)
	}
	if c["Ca"] != 1 || c["O"] != 2 || c["H"] != 2 {
		t.Fatalf("Ca(OH)2 wrong: %v", c)
	}
	c, err = ParseComposition("Ba(Zr0.2Ti0.8)O3")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c["Zr"]-0.2) > 1e-12 || math.Abs(c["Ti"]-0.8) > 1e-12 || c["O"] != 3 {
		t.Fatalf("perovskite wrong: %v", c)
	}
	// Nested parens.
	c, err = ParseComposition("Mg(Al(OH)4)2")
	if err != nil {
		t.Fatal(err)
	}
	if c["Al"] != 2 || c["O"] != 8 || c["H"] != 8 || c["Mg"] != 1 {
		t.Fatalf("nested wrong: %v", c)
	}
}

func TestParseFractional(t *testing.T) {
	c, err := ParseComposition("Li0.5Na0.5Cl")
	if err != nil {
		t.Fatal(err)
	}
	if c["Li"] != 0.5 || c["Na"] != 0.5 || c["Cl"] != 1 {
		t.Fatalf("fractional wrong: %v", c)
	}
}

func TestParseRepeatedElement(t *testing.T) {
	c, err := ParseComposition("CH3COOH") // acetic acid: C2H4O2
	if err != nil {
		t.Fatal(err)
	}
	if c["C"] != 2 || c["H"] != 4 || c["O"] != 2 {
		t.Fatalf("repeated element accumulation wrong: %v", c)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]error{
		"":        ErrEmptyFormula,
		"  ":      ErrEmptyFormula,
		"Xx2":     ErrUnknownElement,
		"Na)Cl":   ErrBadFormula,
		"(NaCl":   ErrBadFormula,
		"Na(Cl))": ErrBadFormula,
		"2NaCl":   ErrBadFormula,
		"na":      ErrBadFormula,
	}
	for formula, want := range cases {
		if _, err := ParseComposition(formula); !errors.Is(err, want) {
			t.Errorf("%q: want %v, got %v", formula, want, err)
		}
	}
}

func TestFractions(t *testing.T) {
	c, _ := ParseComposition("SiO2")
	syms, fr := c.Fractions()
	if syms[0] != "O" || syms[1] != "Si" {
		t.Fatalf("symbols should be sorted: %v", syms)
	}
	if math.Abs(fr[0]-2.0/3) > 1e-12 || math.Abs(fr[1]-1.0/3) > 1e-12 {
		t.Fatalf("fractions wrong: %v", fr)
	}
	if c.NumAtoms() != 3 {
		t.Fatalf("NumAtoms wrong: %v", c.NumAtoms())
	}
}

func TestReducedFormula(t *testing.T) {
	c, _ := ParseComposition("Si2O4")
	if got := c.ReducedFormula(); got != "O2Si" {
		t.Fatalf("reduced formula = %q", got)
	}
	c, _ = ParseComposition("NaCl")
	if got := c.ReducedFormula(); got != "ClNa" {
		t.Fatalf("reduced formula = %q", got)
	}
}

// Property: parse(ReducedFormula(c)) preserves mole fractions.
func TestReducedFormulaRoundTripProperty(t *testing.T) {
	syms := commonElements()
	f := func(a, b uint8, na, nb uint8) bool {
		ea := syms[int(a)%len(syms)]
		eb := syms[int(b)%len(syms)]
		if ea == eb {
			return true
		}
		c := Composition{ea: float64(na%5 + 1), eb: float64(nb%5 + 1)}
		back, err := ParseComposition(c.ReducedFormula())
		if err != nil {
			return false
		}
		_, f1 := c.Fractions()
		_, f2 := back.Fractions()
		for i := range f1 {
			if math.Abs(f1[i]-f2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFeaturizeDimensions(t *testing.T) {
	c, _ := ParseComposition("NaCl")
	feats := Featurize(c)
	if len(feats) != NumFeatures() {
		t.Fatalf("feature length %d != NumFeatures %d", len(feats), NumFeatures())
	}
	names := FeatureNames()
	if len(names) != NumFeatures() {
		t.Fatalf("names length %d != NumFeatures %d", len(names), NumFeatures())
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate feature name %s", n)
		}
		seen[n] = true
	}
	if NumFeatures() < 70 {
		t.Fatalf("feature vector suspiciously small: %d", NumFeatures())
	}
}

func TestFeaturizeKnownValues(t *testing.T) {
	c, _ := ParseComposition("NaCl")
	feats := Featurize(c)
	names := FeatureNames()
	get := func(name string) float64 {
		for i, n := range names {
			if n == name {
				return feats[i]
			}
		}
		t.Fatalf("feature %s missing", name)
		return 0
	}
	if get("stoich_nelements") != 2 {
		t.Fatal("NaCl has 2 elements")
	}
	// Mean Z of Na(11), Cl(17) at 50/50 = 14.
	if math.Abs(get("magpie_Z_mean")-14) > 1e-9 {
		t.Fatalf("mean Z wrong: %v", get("magpie_Z_mean"))
	}
	// EN range = 3.16-0.93 = 2.23.
	if math.Abs(get("magpie_Electronegativity_range")-2.23) > 1e-9 {
		t.Fatalf("EN range wrong: %v", get("magpie_Electronegativity_range"))
	}
	// p=2 norm of (0.5,0.5) = sqrt(0.5).
	if math.Abs(get("stoich_p2_norm")-math.Sqrt(0.5)) > 1e-9 {
		t.Fatalf("p2 norm wrong: %v", get("stoich_p2_norm"))
	}
	// Valence fractions sum to 1.
	sum := get("valence_frac_s") + get("valence_frac_p") + get("valence_frac_d") + get("valence_frac_f")
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("valence fractions should sum to 1: %v", sum)
	}
}

// Property: featurization is scale-invariant (depends on fractions, not
// absolute amounts) — Si2O4 featurizes like SiO2.
func TestFeaturizeScaleInvariantProperty(t *testing.T) {
	f := func(mult uint8) bool {
		m := float64(mult%9) + 1
		a, _ := ParseComposition("SiO2")
		b := Composition{"Si": m, "O": 2 * m}
		fa, fb := Featurize(a), Featurize(b)
		for i := range fa {
			if math.Abs(fa[i]-fb[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFormationEnergyShape(t *testing.T) {
	// Elemental references are zero.
	si, _ := ParseComposition("Si")
	if FormationEnergy(si) != 0 {
		t.Fatal("elemental formation energy should be 0")
	}
	// Strongly ionic NaCl should be clearly negative.
	nacl, _ := ParseComposition("NaCl")
	if FormationEnergy(nacl) >= -0.3 {
		t.Fatalf("NaCl should be strongly bound: %v", FormationEnergy(nacl))
	}
	// NaCl (ΔEN=2.23) binds more strongly than FeNi (ΔEN=0.08).
	feni, _ := ParseComposition("FeNi")
	if FormationEnergy(nacl) >= FormationEnergy(feni) {
		t.Fatal("ionic compound should bind more strongly than metallic alloy")
	}
}

func TestGenerateDataset(t *testing.T) {
	ds := GenerateDataset(200, 42)
	if len(ds.Formulas) != 200 || len(ds.X) != 200 || len(ds.Y) != 200 {
		t.Fatalf("dataset sizes wrong: %d/%d/%d", len(ds.Formulas), len(ds.X), len(ds.Y))
	}
	for i, x := range ds.X {
		if len(x) != NumFeatures() {
			t.Fatalf("row %d has %d features", i, len(x))
		}
		for j, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite feature at [%d][%d]", i, j)
			}
		}
	}
	// Deterministic by seed.
	ds2 := GenerateDataset(200, 42)
	for i := range ds.Formulas {
		if ds.Formulas[i] != ds2.Formulas[i] {
			t.Fatal("dataset generation should be deterministic")
		}
	}
	// All formulas parse back.
	for _, f := range ds.Formulas {
		if _, err := ParseComposition(f); err != nil {
			t.Fatalf("generated formula %q does not parse: %v", f, err)
		}
	}
}

func TestDatasetHasVariedTargets(t *testing.T) {
	ds := GenerateDataset(300, 7)
	minY, maxY := ds.Y[0], ds.Y[0]
	for _, y := range ds.Y {
		minY = math.Min(minY, y)
		maxY = math.Max(maxY, y)
	}
	if maxY-minY < 0.5 {
		t.Fatalf("targets have too little spread for learning: [%v, %v]", minY, maxY)
	}
}

func TestFeatureNamesPrefixes(t *testing.T) {
	names := FeatureNames()
	var magpie, stoich, valence int
	for _, n := range names {
		switch {
		case strings.HasPrefix(n, "magpie_"):
			magpie++
		case strings.HasPrefix(n, "stoich_"):
			stoich++
		case strings.HasPrefix(n, "valence_"):
			valence++
		}
	}
	if magpie != 12*6 || stoich != 6 || valence != 4 {
		t.Fatalf("feature group counts wrong: %d/%d/%d", magpie, stoich, valence)
	}
}
