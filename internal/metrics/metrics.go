// Package metrics provides the measurement vocabulary of the paper's
// evaluation (§V): per-request timers for inference/invocation/request
// times, percentile summaries (median with 5th/95th percentile error
// bars, as in Figs. 3-4), throughput series (Fig. 7) and makespan.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a concurrency-safe monotonic event counter — the unit of
// the serving-layer operational metrics (cache hits/misses/evictions,
// collapsed duplicate dispatches) that sit alongside the paper's
// duration series.
type Counter struct{ n atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Sample is one observed duration.
type Sample struct {
	When  time.Time
	Value time.Duration
}

// Series is a concurrency-safe collection of duration samples for one
// named quantity (e.g. "invocation_time" of one servable).
type Series struct {
	Name string

	mu      sync.Mutex
	samples []time.Duration
}

// NewSeries returns an empty series with the given name.
func NewSeries(name string) *Series {
	return &Series{Name: name}
}

// Add records one sample.
func (s *Series) Add(d time.Duration) {
	s.mu.Lock()
	s.samples = append(s.samples, d)
	s.mu.Unlock()
}

// Time runs fn and records its wall-clock duration. It returns fn's error.
func (s *Series) Time(fn func() error) error {
	start := time.Now()
	err := fn()
	s.Add(time.Since(start))
	return err
}

// Len reports the number of samples recorded.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}

// Snapshot returns a copy of the recorded samples.
func (s *Series) Snapshot() []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]time.Duration, len(s.samples))
	copy(out, s.samples)
	return out
}

// Stats computes the summary used throughout §V.
func (s *Series) Stats() Stats {
	return Compute(s.Snapshot())
}

// Stats summarizes a sample set the way the paper reports results:
// median with 5th/95th percentile error bars, plus mean/min/max.
type Stats struct {
	N      int
	Median time.Duration
	P5     time.Duration
	P95    time.Duration
	Mean   time.Duration
	Min    time.Duration
	Max    time.Duration
	Stddev time.Duration
}

// Compute summarizes samples. An empty input yields a zero Stats.
func Compute(samples []time.Duration) Stats {
	if len(samples) == 0 {
		return Stats{}
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var sum float64
	for _, d := range sorted {
		sum += float64(d)
	}
	mean := sum / float64(len(sorted))
	var sq float64
	for _, d := range sorted {
		diff := float64(d) - mean
		sq += diff * diff
	}
	std := math.Sqrt(sq / float64(len(sorted)))

	return Stats{
		N:      len(sorted),
		Median: Percentile(sorted, 50),
		P5:     Percentile(sorted, 5),
		P95:    Percentile(sorted, 95),
		Mean:   time.Duration(mean),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Stddev: time.Duration(std),
	}
}

// Percentile returns the p-th percentile (0-100) of an ascending-sorted
// slice using linear interpolation between closest ranks.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[hi]-sorted[lo]))
}

func (st Stats) String() string {
	return fmt.Sprintf("n=%d median=%s p5=%s p95=%s mean=%s",
		st.N, st.Median.Round(time.Microsecond), st.P5.Round(time.Microsecond),
		st.P95.Round(time.Microsecond), st.Mean.Round(time.Microsecond))
}

// Millis renders a duration as fractional milliseconds, the unit the
// paper's figures use.
func Millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Throughput is requests per second for n requests completed in makespan.
func Throughput(n int, makespan time.Duration) float64 {
	if makespan <= 0 {
		return 0
	}
	return float64(n) / makespan.Seconds()
}

// Collector groups several named series, e.g. the request/invocation/
// inference decomposition captured at the three measurement points of
// §V-A.
type Collector struct {
	mu     sync.Mutex
	series map[string]*Series
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{series: make(map[string]*Series)}
}

// Series returns the named series, creating it if needed.
func (c *Collector) Series(name string) *Series {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.series[name]
	if !ok {
		s = NewSeries(name)
		c.series[name] = s
	}
	return s
}

// Names returns the sorted names of all series.
func (c *Collector) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.series))
	for n := range c.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Histogram buckets durations into fixed-width bins for quick textual
// distribution inspection.
type Histogram struct {
	Width   time.Duration
	Buckets map[int]int

	mu sync.Mutex
}

// NewHistogram creates a histogram with the given bucket width.
func NewHistogram(width time.Duration) *Histogram {
	if width <= 0 {
		width = time.Millisecond
	}
	return &Histogram{Width: width, Buckets: make(map[int]int)}
}

// Add records one observation.
func (h *Histogram) Add(d time.Duration) {
	h.mu.Lock()
	h.Buckets[int(d/h.Width)]++
	h.mu.Unlock()
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, c := range h.Buckets {
		n += c
	}
	return n
}
