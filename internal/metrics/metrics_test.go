package metrics

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestComputeEmpty(t *testing.T) {
	st := Compute(nil)
	if st.N != 0 || st.Median != 0 {
		t.Fatalf("empty compute should be zero, got %+v", st)
	}
}

func TestComputeSingle(t *testing.T) {
	st := Compute([]time.Duration{42 * time.Millisecond})
	if st.Median != 42*time.Millisecond || st.P5 != 42*time.Millisecond || st.P95 != 42*time.Millisecond {
		t.Fatalf("single-sample stats wrong: %+v", st)
	}
	if st.Min != st.Max || st.Min != 42*time.Millisecond {
		t.Fatalf("min/max wrong: %+v", st)
	}
}

func TestComputeKnownDistribution(t *testing.T) {
	// 1..100 ms: median should be 50.5ms, p5 ~ 5.95ms, p95 ~ 95.05ms.
	var samples []time.Duration
	for i := 1; i <= 100; i++ {
		samples = append(samples, time.Duration(i)*time.Millisecond)
	}
	rand.New(rand.NewSource(1)).Shuffle(len(samples), func(i, j int) {
		samples[i], samples[j] = samples[j], samples[i]
	})
	st := Compute(samples)
	if st.Median < 50*time.Millisecond || st.Median > 51*time.Millisecond {
		t.Errorf("median out of range: %v", st.Median)
	}
	if st.P5 < 5*time.Millisecond || st.P5 > 7*time.Millisecond {
		t.Errorf("p5 out of range: %v", st.P5)
	}
	if st.P95 < 94*time.Millisecond || st.P95 > 96*time.Millisecond {
		t.Errorf("p95 out of range: %v", st.P95)
	}
	if st.Mean != 50500*time.Microsecond {
		t.Errorf("mean wrong: %v", st.Mean)
	}
}

func TestPercentileBounds(t *testing.T) {
	sorted := []time.Duration{1, 2, 3, 4, 5}
	if Percentile(sorted, -5) != 1 {
		t.Error("p<0 should clamp to min")
	}
	if Percentile(sorted, 200) != 5 {
		t.Error("p>100 should clamp to max")
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, v := range raw {
			samples[i] = time.Duration(v % 1e9)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		prev := time.Duration(-1)
		for p := 0.0; p <= 100; p += 7.3 {
			v := Percentile(samples, p)
			if v < prev {
				return false
			}
			if v < samples[0] || v > samples[len(samples)-1] {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Compute is permutation-invariant.
func TestComputePermutationInvariant(t *testing.T) {
	f := func(raw []uint16, seed int64) bool {
		if len(raw) < 2 {
			return true
		}
		a := make([]time.Duration, len(raw))
		for i, v := range raw {
			a[i] = time.Duration(v)
		}
		b := make([]time.Duration, len(a))
		copy(b, a)
		rand.New(rand.NewSource(seed)).Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
		sa, sb := Compute(a), Compute(b)
		return sa == sb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesConcurrentAdd(t *testing.T) {
	s := NewSeries("x")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Add(time.Duration(i))
			}
		}()
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("want 800 samples, got %d", s.Len())
	}
}

func TestSeriesTime(t *testing.T) {
	s := NewSeries("t")
	wantErr := errors.New("boom")
	if err := s.Time(func() error {
		time.Sleep(2 * time.Millisecond)
		return wantErr
	}); err != wantErr {
		t.Fatalf("Time should propagate error, got %v", err)
	}
	if s.Len() != 1 {
		t.Fatal("Time should record exactly one sample")
	}
	if s.Snapshot()[0] < 2*time.Millisecond {
		t.Fatalf("recorded duration too small: %v", s.Snapshot()[0])
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	s := NewSeries("c")
	s.Add(time.Second)
	snap := s.Snapshot()
	snap[0] = 0
	if s.Snapshot()[0] != time.Second {
		t.Fatal("Snapshot must return a copy")
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(100, time.Second); got != 100 {
		t.Fatalf("want 100 rps, got %v", got)
	}
	if got := Throughput(100, 0); got != 0 {
		t.Fatalf("zero makespan should yield 0, got %v", got)
	}
	if got := Throughput(5000, 10*time.Second); got != 500 {
		t.Fatalf("want 500 rps, got %v", got)
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	c.Series("request").Add(time.Millisecond)
	c.Series("invocation").Add(2 * time.Millisecond)
	c.Series("request").Add(3 * time.Millisecond)
	if c.Series("request").Len() != 2 {
		t.Fatal("series should persist across Series() calls")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "invocation" || names[1] != "request" {
		t.Fatalf("Names wrong: %v", names)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10 * time.Millisecond)
	h.Add(5 * time.Millisecond)  // bucket 0
	h.Add(15 * time.Millisecond) // bucket 1
	h.Add(19 * time.Millisecond) // bucket 1
	h.Add(25 * time.Millisecond) // bucket 2
	if h.Total() != 4 {
		t.Fatalf("want 4 observations, got %d", h.Total())
	}
	if h.Buckets[1] != 2 {
		t.Fatalf("bucket 1 should have 2, got %d", h.Buckets[1])
	}
}

func TestHistogramDefaultWidth(t *testing.T) {
	h := NewHistogram(0)
	if h.Width != time.Millisecond {
		t.Fatalf("zero width should default to 1ms, got %v", h.Width)
	}
}

func TestMillis(t *testing.T) {
	if Millis(1500*time.Microsecond) != 1.5 {
		t.Fatalf("Millis(1.5ms) = %v", Millis(1500*time.Microsecond))
	}
}

func TestStatsString(t *testing.T) {
	st := Compute([]time.Duration{time.Millisecond, 2 * time.Millisecond})
	if st.String() == "" {
		t.Fatal("String should be non-empty")
	}
}
