// Package nn is the neural-network inference runtime: the stand-in for
// the TensorFlow/Keras graphs served by the paper's Inception-v3 and
// CIFAR-10 servables. Models are layer graphs with real weights; every
// forward pass performs genuine convolution and matrix arithmetic from
// package tensor. Weights are random (deterministic per seed): the
// experiments measure serving latency, which depends on architecture and
// arithmetic, not on what the weights were trained to do.
package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"

	"repro/internal/ml/tensor"
)

// Layer transforms an activation tensor.
type Layer interface {
	// Forward computes the layer output; implementations must not
	// mutate in (replicas share one loaded model across goroutines).
	Forward(in *tensor.Tensor) *tensor.Tensor
	// Name identifies the layer for description/serialization.
	Name() string
}

// Conv is a 2D convolution layer with optional bias and ReLU.
type Conv struct {
	LayerName string
	Kernel    *tensor.Tensor // [kh,kw,cin,cout]
	Bias      []float32
	Stride    int
	SamePad   bool
	Activate  bool // apply ReLU
}

// Forward implements Layer.
func (c *Conv) Forward(in *tensor.Tensor) *tensor.Tensor {
	out := tensor.Conv2D(in, c.Kernel, c.Stride, c.SamePad)
	if c.Bias != nil {
		out.AddBias(c.Bias)
	}
	if c.Activate {
		out.ReLU()
	}
	return out
}

// Name implements Layer.
func (c *Conv) Name() string { return c.LayerName }

// MaxPool is a max-pooling layer.
type MaxPool struct {
	LayerName      string
	Window, Stride int
}

// Forward implements Layer.
func (p *MaxPool) Forward(in *tensor.Tensor) *tensor.Tensor {
	return tensor.MaxPool2D(in, p.Window, p.Stride)
}

// Name implements Layer.
func (p *MaxPool) Name() string { return p.LayerName }

// AvgPool is an average-pooling layer.
type AvgPool struct {
	LayerName      string
	Window, Stride int
}

// Forward implements Layer.
func (p *AvgPool) Forward(in *tensor.Tensor) *tensor.Tensor {
	return tensor.AvgPool2D(in, p.Window, p.Stride)
}

// Name implements Layer.
func (p *AvgPool) Name() string { return p.LayerName }

// Inception is one Inception module: four parallel towers (1x1; 1x1→3x3;
// 1x1→5x5; pool→1x1) concatenated along channels, as in Szegedy et al.
type Inception struct {
	LayerName string
	Tower1    *Conv   // 1x1
	Tower2    []*Conv // 1x1 reduce then 3x3
	Tower3    []*Conv // 1x1 reduce then 5x5 (factored as two 3x3 in v3 style)
	TowerPool *Conv   // 1x1 after 3x3 avg pool
}

// Forward implements Layer.
func (m *Inception) Forward(in *tensor.Tensor) *tensor.Tensor {
	t1 := m.Tower1.Forward(in)
	t2 := in
	for _, c := range m.Tower2 {
		t2 = c.Forward(t2)
	}
	t3 := in
	for _, c := range m.Tower3 {
		t3 = c.Forward(t3)
	}
	pooled := tensor.AvgPool2D(padForPool(in), 3, 1)
	t4 := m.TowerPool.Forward(pooled)
	return tensor.ConcatChannels(t1, t2, t3, t4)
}

// padForPool pads H,W by 1 on each side so a 3x3/1 pool preserves shape.
func padForPool(in *tensor.Tensor) *tensor.Tensor {
	h, w, c := in.Shape[0], in.Shape[1], in.Shape[2]
	out := tensor.New(h+2, w+2, c)
	for y := 0; y < h; y++ {
		src := in.Data[y*w*c : (y+1)*w*c]
		dstOff := ((y+1)*(w+2) + 1) * c
		copy(out.Data[dstOff:dstOff+w*c], src)
	}
	return out
}

// Name implements Layer.
func (m *Inception) Name() string { return m.LayerName }

// Dense is a fully connected layer over the flattened input.
type Dense struct {
	LayerName string
	W         []float32 // row-major [Out][In]
	B         []float32
	In, Out   int
	Activate  bool
}

// Forward implements Layer.
func (d *Dense) Forward(in *tensor.Tensor) *tensor.Tensor {
	if in.Len() != d.In {
		panic(fmt.Sprintf("nn: dense %s expects %d inputs, got %d", d.LayerName, d.In, in.Len()))
	}
	y := tensor.MatVec(d.W, d.Out, d.In, in.Data)
	for i := range y {
		y[i] += d.B[i]
	}
	out := tensor.FromData(y, d.Out)
	if d.Activate {
		out.ReLU()
	}
	return out
}

// Name implements Layer.
func (d *Dense) Name() string { return d.LayerName }

// GlobalPool reduces HWC to a C vector.
type GlobalPool struct{ LayerName string }

// Forward implements Layer.
func (g *GlobalPool) Forward(in *tensor.Tensor) *tensor.Tensor {
	v := tensor.GlobalAvgPool(in)
	return tensor.FromData(v, len(v))
}

// Name implements Layer.
func (g *GlobalPool) Name() string { return g.LayerName }

// Model is a sequential stack of layers with class labels.
type Model struct {
	ModelName  string
	InputShape []int
	Layers     []Layer
	Labels     []string
}

// Forward runs a full inference pass.
func (m *Model) Forward(in *tensor.Tensor) *tensor.Tensor {
	out := in
	for _, l := range m.Layers {
		out = l.Forward(out)
	}
	return out
}

// Predict runs inference and softmax, returning the top-k (label,
// probability) pairs — the servable-facing API.
func (m *Model) Predict(in *tensor.Tensor, k int) []Prediction {
	logits := m.Forward(in)
	probs := tensor.Softmax(logits.Data)
	top := tensor.ArgTopK(probs, k)
	out := make([]Prediction, len(top))
	for i, idx := range top {
		label := fmt.Sprintf("class_%d", idx)
		if idx < len(m.Labels) {
			label = m.Labels[idx]
		}
		out[i] = Prediction{Label: label, Probability: probs[idx]}
	}
	return out
}

// Prediction is one classification output.
type Prediction struct {
	Label       string  `json:"label"`
	Probability float32 `json:"probability"`
}

// NumParams counts trainable parameters.
func (m *Model) NumParams() int {
	n := 0
	for _, l := range m.Layers {
		switch v := l.(type) {
		case *Conv:
			n += v.Kernel.Len() + len(v.Bias)
		case *Dense:
			n += len(v.W) + len(v.B)
		case *Inception:
			for _, c := range v.allConvs() {
				n += c.Kernel.Len() + len(c.Bias)
			}
		}
	}
	return n
}

func (m *Inception) allConvs() []*Conv {
	out := []*Conv{m.Tower1, m.TowerPool}
	out = append(out, m.Tower2...)
	out = append(out, m.Tower3...)
	return out
}

// --- builders -------------------------------------------------------------

func newConv(name string, rng *rand.Rand, kh, kw, cin, cout, stride int, pad bool) *Conv {
	k := tensor.New(kh, kw, cin, cout)
	// He-style init keeps activations in a sane range through deep nets.
	scale := float32(1.0) / float32(kh*kw*cin)
	k.FillRandom(rng, scale*8)
	bias := make([]float32, cout)
	return &Conv{LayerName: name, Kernel: k, Bias: bias, Stride: stride, SamePad: pad, Activate: true}
}

// NewCIFAR10 builds the multi-layer CNN of the CIFAR-10 servable:
// 32x32x3 input, three conv/pool blocks, two dense layers, 10 classes.
func NewCIFAR10(seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	layers := []Layer{
		newConv("conv1", rng, 3, 3, 3, 16, 1, true),
		newConv("conv2", rng, 3, 3, 16, 16, 1, true),
		&MaxPool{LayerName: "pool1", Window: 2, Stride: 2}, // 16x16x16
		newConv("conv3", rng, 3, 3, 16, 32, 1, true),
		&MaxPool{LayerName: "pool2", Window: 2, Stride: 2}, // 8x8x32
		newConv("conv4", rng, 3, 3, 32, 32, 1, true),
		&MaxPool{LayerName: "pool3", Window: 2, Stride: 2}, // 4x4x32
	}
	flat := 4 * 4 * 32
	dense1 := &Dense{LayerName: "fc1", In: flat, Out: 64, Activate: true}
	dense1.W = randSlice(rng, flat*64, 0.05)
	dense1.B = make([]float32, 64)
	dense2 := &Dense{LayerName: "fc2", In: 64, Out: 10}
	dense2.W = randSlice(rng, 64*10, 0.1)
	dense2.B = make([]float32, 10)
	layers = append(layers, dense1, dense2)
	return &Model{
		ModelName:  "cifar10",
		InputShape: []int{32, 32, 3},
		Layers:     layers,
		Labels: []string{"airplane", "automobile", "bird", "cat", "deer",
			"dog", "frog", "horse", "ship", "truck"},
	}
}

func newInceptionModule(name string, rng *rand.Rand, cin, c1, c2r, c2, c3r, c3, cp int) *Inception {
	return &Inception{
		LayerName: name,
		Tower1:    newConv(name+"/t1", rng, 1, 1, cin, c1, 1, true),
		Tower2: []*Conv{
			newConv(name+"/t2r", rng, 1, 1, cin, c2r, 1, true),
			newConv(name+"/t2", rng, 3, 3, c2r, c2, 1, true),
		},
		Tower3: []*Conv{
			newConv(name+"/t3r", rng, 1, 1, cin, c3r, 1, true),
			newConv(name+"/t3a", rng, 3, 3, c3r, c3, 1, true),
			newConv(name+"/t3b", rng, 3, 3, c3, c3, 1, true),
		},
		TowerPool: newConv(name+"/tp", rng, 1, 1, cin, cp, 1, true),
	}
}

// NewInception builds the Inception-style network of the "Inception"
// servable: a reduced-width Inception-v3 (stem + stacked Inception
// modules + classifier) on 64x64x3 input with 1000 ImageNet-style
// classes. Substitution note (DESIGN.md): the real Inception-v3 runs
// 299x299 inputs through ~11 modules; this network keeps the
// architecture shape (stem, module stacking, factored 5x5, global pool,
// top-5 over 1000 classes) at a width/resolution that makes
// thousand-request sweeps feasible on one machine. It stays ~5x more
// compute than CIFAR-10 with a 4x larger input, preserving the
// heavy-vs-light and input-transfer contrasts every figure relies on.
func NewInception(seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	layers := []Layer{
		// Stem: conv /2, conv, pool /2 -> 16x16
		newConv("stem/conv1", rng, 3, 3, 3, 16, 2, true),       // 32x32x16
		newConv("stem/conv2", rng, 3, 3, 16, 32, 1, true),      // 32x32x32
		&MaxPool{LayerName: "stem/pool", Window: 2, Stride: 2}, // 16x16x32
		// Inception stack A.
		newInceptionModule("mixed1", rng, 32, 16, 16, 24, 8, 16, 8),   // -> 64ch
		newInceptionModule("mixed2", rng, 64, 24, 24, 32, 12, 24, 16), // -> 96ch
		&MaxPool{LayerName: "reduceA", Window: 2, Stride: 2},          // 8x8x96
		// Inception stack B.
		newInceptionModule("mixed3", rng, 96, 32, 32, 48, 16, 32, 16),  // -> 128ch
		newInceptionModule("mixed4", rng, 128, 48, 48, 64, 24, 48, 32), // -> 192ch
		&MaxPool{LayerName: "reduceB", Window: 2, Stride: 2},           // 4x4x192
		// Inception stack C.
		newInceptionModule("mixed5", rng, 192, 64, 64, 96, 32, 64, 32), // -> 256ch
		&GlobalPool{LayerName: "gap"},
	}
	dense := &Dense{LayerName: "logits", In: 256, Out: 1000}
	dense.W = randSlice(rng, 256*1000, 0.05)
	dense.B = make([]float32, 1000)
	layers = append(layers, dense)

	labels := make([]string, 1000)
	for i := range labels {
		labels[i] = fmt.Sprintf("imagenet_%04d", i)
	}
	return &Model{
		ModelName:  "inception",
		InputShape: []int{64, 64, 3},
		Layers:     layers,
		Labels:     labels,
	}
}

func randSlice(rng *rand.Rand, n int, scale float32) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = (rng.Float32()*2 - 1) * scale
	}
	return out
}

// --- serialization ---------------------------------------------------------

// The gob wire format stores the architecture + weights; it is the
// "model components" artifact uploaded at publication and baked into
// servable containers by the Management Service.

type wireModel struct {
	Name       string
	InputShape []int
	Labels     []string
	Layers     []wireLayer
}

type wireLayer struct {
	Kind string // conv/maxpool/avgpool/dense/global/inception
	Name string

	// conv
	KernelShape []int
	KernelData  []float32
	Bias        []float32
	Stride      int
	SamePad     bool
	Activate    bool

	// pool
	Window int

	// dense
	W       []float32
	B       []float32
	In, Out int

	// inception towers (recursively encoded convs)
	Towers [][]wireLayer
}

func encodeConv(c *Conv) wireLayer {
	return wireLayer{
		Kind: "conv", Name: c.LayerName,
		KernelShape: c.Kernel.Shape, KernelData: c.Kernel.Data,
		Bias: c.Bias, Stride: c.Stride, SamePad: c.SamePad, Activate: c.Activate,
	}
}

func decodeConv(w wireLayer) *Conv {
	return &Conv{
		LayerName: w.Name,
		Kernel:    tensor.FromData(w.KernelData, w.KernelShape...),
		Bias:      w.Bias, Stride: w.Stride, SamePad: w.SamePad, Activate: w.Activate,
	}
}

// Encode serializes the model.
func Encode(m *Model) ([]byte, error) {
	wm := wireModel{Name: m.ModelName, InputShape: m.InputShape, Labels: m.Labels}
	for _, l := range m.Layers {
		switch v := l.(type) {
		case *Conv:
			wm.Layers = append(wm.Layers, encodeConv(v))
		case *MaxPool:
			wm.Layers = append(wm.Layers, wireLayer{Kind: "maxpool", Name: v.LayerName, Window: v.Window, Stride: v.Stride})
		case *AvgPool:
			wm.Layers = append(wm.Layers, wireLayer{Kind: "avgpool", Name: v.LayerName, Window: v.Window, Stride: v.Stride})
		case *Dense:
			wm.Layers = append(wm.Layers, wireLayer{Kind: "dense", Name: v.LayerName, W: v.W, B: v.B, In: v.In, Out: v.Out, Activate: v.Activate})
		case *GlobalPool:
			wm.Layers = append(wm.Layers, wireLayer{Kind: "global", Name: v.LayerName})
		case *Inception:
			towers := [][]wireLayer{{encodeConv(v.Tower1)}, {}, {}, {encodeConv(v.TowerPool)}}
			for _, c := range v.Tower2 {
				towers[1] = append(towers[1], encodeConv(c))
			}
			for _, c := range v.Tower3 {
				towers[2] = append(towers[2], encodeConv(c))
			}
			wm.Layers = append(wm.Layers, wireLayer{Kind: "inception", Name: v.LayerName, Towers: towers})
		default:
			return nil, fmt.Errorf("nn: cannot encode layer type %T", l)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wm); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode reconstructs a model from Encode output.
func Decode(data []byte) (*Model, error) {
	var wm wireModel
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wm); err != nil {
		return nil, fmt.Errorf("nn: decode: %w", err)
	}
	m := &Model{ModelName: wm.Name, InputShape: wm.InputShape, Labels: wm.Labels}
	for _, w := range wm.Layers {
		switch w.Kind {
		case "conv":
			m.Layers = append(m.Layers, decodeConv(w))
		case "maxpool":
			m.Layers = append(m.Layers, &MaxPool{LayerName: w.Name, Window: w.Window, Stride: w.Stride})
		case "avgpool":
			m.Layers = append(m.Layers, &AvgPool{LayerName: w.Name, Window: w.Window, Stride: w.Stride})
		case "dense":
			m.Layers = append(m.Layers, &Dense{LayerName: w.Name, W: w.W, B: w.B, In: w.In, Out: w.Out, Activate: w.Activate})
		case "global":
			m.Layers = append(m.Layers, &GlobalPool{LayerName: w.Name})
		case "inception":
			if len(w.Towers) != 4 || len(w.Towers[0]) != 1 || len(w.Towers[3]) != 1 {
				return nil, fmt.Errorf("nn: malformed inception module %s", w.Name)
			}
			inc := &Inception{LayerName: w.Name, Tower1: decodeConv(w.Towers[0][0]), TowerPool: decodeConv(w.Towers[3][0])}
			for _, c := range w.Towers[1] {
				inc.Tower2 = append(inc.Tower2, decodeConv(c))
			}
			for _, c := range w.Towers[2] {
				inc.Tower3 = append(inc.Tower3, decodeConv(c))
			}
			m.Layers = append(m.Layers, inc)
		default:
			return nil, fmt.Errorf("nn: unknown layer kind %q", w.Kind)
		}
	}
	return m, nil
}
