package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ml/tensor"
)

func randInput(shape []int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	in := tensor.New(shape...)
	in.FillRandom(rng, 1)
	return in
}

func TestCIFAR10ForwardShape(t *testing.T) {
	m := NewCIFAR10(1)
	out := m.Forward(randInput(m.InputShape, 2))
	if out.Len() != 10 {
		t.Fatalf("CIFAR-10 should emit 10 logits, got %d", out.Len())
	}
}

func TestCIFAR10PredictTopK(t *testing.T) {
	m := NewCIFAR10(1)
	preds := m.Predict(randInput(m.InputShape, 3), 5)
	if len(preds) != 5 {
		t.Fatalf("want 5 predictions, got %d", len(preds))
	}
	// Probabilities descend and are valid.
	for i, p := range preds {
		if p.Probability < 0 || p.Probability > 1 {
			t.Fatalf("invalid probability %v", p.Probability)
		}
		if i > 0 && preds[i].Probability > preds[i-1].Probability {
			t.Fatal("predictions not sorted by probability")
		}
		if p.Label == "" {
			t.Fatal("labels should be set")
		}
	}
}

func TestInceptionForwardShape(t *testing.T) {
	if testing.Short() {
		t.Skip("inception forward is heavy")
	}
	m := NewInception(1)
	out := m.Forward(randInput(m.InputShape, 2))
	if out.Len() != 1000 {
		t.Fatalf("Inception should emit 1000 logits, got %d", out.Len())
	}
	preds := m.Predict(randInput(m.InputShape, 3), 5)
	if len(preds) != 5 {
		t.Fatal("Inception should emit top-5, as the paper's servable does")
	}
}

func TestInceptionHeavierThanCIFAR(t *testing.T) {
	ci := NewCIFAR10(1)
	in := NewInception(1)
	if in.NumParams() <= ci.NumParams() {
		t.Fatalf("Inception (%d params) should outweigh CIFAR-10 (%d)", in.NumParams(), ci.NumParams())
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := NewCIFAR10(42)
	b := NewCIFAR10(42)
	in := randInput(a.InputShape, 9)
	outA := a.Forward(in.Clone())
	outB := b.Forward(in.Clone())
	for i := range outA.Data {
		if outA.Data[i] != outB.Data[i] {
			t.Fatal("same seed should give identical models")
		}
	}
	c := NewCIFAR10(43)
	outC := c.Forward(in.Clone())
	same := true
	for i := range outA.Data {
		if outA.Data[i] != outC.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestForwardDoesNotMutateInput(t *testing.T) {
	m := NewCIFAR10(1)
	in := randInput(m.InputShape, 4)
	orig := in.Clone()
	m.Forward(in)
	for i := range in.Data {
		if in.Data[i] != orig.Data[i] {
			t.Fatal("Forward must not mutate its input (shared across replicas)")
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := NewCIFAR10(7)
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.ModelName != "cifar10" || len(back.Labels) != 10 {
		t.Fatal("metadata lost in round trip")
	}
	in := randInput(m.InputShape, 5)
	outA := m.Forward(in.Clone())
	outB := back.Forward(in.Clone())
	for i := range outA.Data {
		if outA.Data[i] != outB.Data[i] {
			t.Fatal("decoded model differs from original")
		}
	}
}

func TestEncodeDecodeInception(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	m := NewInception(7)
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumParams() != m.NumParams() {
		t.Fatalf("params differ: %d vs %d", back.NumParams(), m.NumParams())
	}
	in := randInput(m.InputShape, 5)
	outA := m.Forward(in.Clone())
	outB := back.Forward(in.Clone())
	for i := range outA.Data {
		if outA.Data[i] != outB.Data[i] {
			t.Fatal("decoded inception differs")
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not a model")); err == nil {
		t.Fatal("garbage should not decode")
	}
}

func TestInceptionModuleShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mod := newInceptionModule("m", rng, 48, 16, 24, 32, 8, 16, 16)
	in := tensor.New(24, 24, 48)
	in.FillRandom(rng, 1)
	out := mod.Forward(in)
	if out.Shape[0] != 24 || out.Shape[1] != 24 {
		t.Fatalf("inception module should preserve spatial dims: %v", out.Shape)
	}
	if out.Shape[2] != 16+32+16+16 {
		t.Fatalf("concat channels wrong: %v", out.Shape)
	}
}

func TestPredictFiniteOutputs(t *testing.T) {
	// Deep stacks with bad init produce NaN/Inf; guard the init scheme.
	m := NewCIFAR10(123)
	preds := m.Predict(randInput(m.InputShape, 77), 10)
	var sum float64
	for _, p := range preds {
		if math.IsNaN(float64(p.Probability)) || math.IsInf(float64(p.Probability), 0) {
			t.Fatal("non-finite probabilities")
		}
		sum += float64(p.Probability)
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("top-10 of 10 classes should sum to 1, got %v", sum)
	}
}

func TestDenseInputMismatchPanics(t *testing.T) {
	d := &Dense{LayerName: "fc", In: 4, Out: 2, W: make([]float32, 8), B: make([]float32, 2)}
	defer func() {
		if recover() == nil {
			t.Fatal("dim mismatch should panic")
		}
	}()
	d.Forward(tensor.New(3))
}

func BenchmarkCIFAR10Inference(b *testing.B) {
	m := NewCIFAR10(1)
	in := randInput(m.InputShape, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(in)
	}
}

func BenchmarkInceptionInference(b *testing.B) {
	m := NewInception(1)
	in := randInput(m.InputShape, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(in)
	}
}
