// Package rf implements CART regression trees and random forests: the
// stand-in for the scikit-learn random forest behind the paper's
// "matminer model" servable, which "executes a scikit-learn random
// forest model to predict stability" trained on OQMD formation-energy
// data with the features of Ward et al. Training (bootstrap bagging +
// random feature subsetting + variance-reduction splits) and inference
// are fully implemented; models serialize with gob for packaging into
// servable containers.
package rf

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Node is one tree node, stored in a flat slice for cache-friendly
// traversal and easy serialization.
type Node struct {
	// Feature < 0 marks a leaf.
	Feature   int
	Threshold float64
	// Left/Right index into the tree's node slice (internal nodes).
	Left, Right int32
	// Value is the leaf prediction.
	Value float64
}

// Tree is a CART regression tree.
type Tree struct {
	Nodes []Node
}

// Predict traverses the tree for one sample.
func (t *Tree) Predict(x []float64) float64 {
	i := int32(0)
	for {
		n := &t.Nodes[i]
		if n.Feature < 0 {
			return n.Value
		}
		if x[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// Depth returns the maximum depth (root = 1).
func (t *Tree) Depth() int {
	var walk func(i int32) int
	walk = func(i int32) int {
		n := &t.Nodes[i]
		if n.Feature < 0 {
			return 1
		}
		l, r := walk(n.Left), walk(n.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	if len(t.Nodes) == 0 {
		return 0
	}
	return walk(0)
}

// Config controls forest training.
type Config struct {
	// Trees in the ensemble (sklearn default: 100).
	Trees int
	// MaxDepth bounds tree depth; 0 = unlimited.
	MaxDepth int
	// MinSamplesLeaf is the minimum samples in a leaf (default 1).
	MinSamplesLeaf int
	// MaxFeatures per split; 0 = len(features)/3 (sklearn regression
	// default heuristic).
	MaxFeatures int
	// Seed makes training deterministic.
	Seed int64
}

func (c Config) withDefaults(nFeatures int) Config {
	if c.Trees <= 0 {
		c.Trees = 100
	}
	if c.MinSamplesLeaf <= 0 {
		c.MinSamplesLeaf = 1
	}
	if c.MaxFeatures <= 0 {
		c.MaxFeatures = nFeatures / 3
		if c.MaxFeatures < 1 {
			c.MaxFeatures = 1
		}
	}
	return c
}

// Forest is a trained random-forest regressor.
type Forest struct {
	Trees     []Tree
	NFeatures int
}

// Errors.
var (
	ErrNoData   = errors.New("rf: empty training set")
	ErrBadShape = errors.New("rf: inconsistent feature dimensions")
)

// Train fits a forest on X (rows of features) and y.
func Train(x [][]float64, y []float64, cfg Config) (*Forest, error) {
	if len(x) == 0 || len(y) == 0 {
		return nil, ErrNoData
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("%w: %d rows vs %d targets", ErrBadShape, len(x), len(y))
	}
	nf := len(x[0])
	for _, row := range x {
		if len(row) != nf {
			return nil, ErrBadShape
		}
	}
	cfg = cfg.withDefaults(nf)
	rng := rand.New(rand.NewSource(cfg.Seed))

	f := &Forest{NFeatures: nf, Trees: make([]Tree, cfg.Trees)}
	for ti := 0; ti < cfg.Trees; ti++ {
		// Bootstrap sample.
		idx := make([]int, len(x))
		for i := range idx {
			idx[i] = rng.Intn(len(x))
		}
		b := &builder{
			x: x, y: y, cfg: cfg,
			rng: rand.New(rand.NewSource(rng.Int63())),
		}
		b.build(idx, 1)
		f.Trees[ti] = Tree{Nodes: b.nodes}
	}
	return f, nil
}

type builder struct {
	x     [][]float64
	y     []float64
	cfg   Config
	rng   *rand.Rand
	nodes []Node
}

// build grows a subtree over samples idx, returning its node index.
func (b *builder) build(idx []int, depth int) int32 {
	mean := meanOf(b.y, idx)
	self := int32(len(b.nodes))
	b.nodes = append(b.nodes, Node{Feature: -1, Value: mean})

	if len(idx) < 2*b.cfg.MinSamplesLeaf {
		return self
	}
	if b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth {
		return self
	}
	if pure(b.y, idx) {
		return self
	}

	feat, thr, ok := b.bestSplit(idx)
	if !ok {
		return self
	}
	var left, right []int
	for _, i := range idx {
		if b.x[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.cfg.MinSamplesLeaf || len(right) < b.cfg.MinSamplesLeaf {
		return self
	}
	l := b.build(left, depth+1)
	r := b.build(right, depth+1)
	b.nodes[self] = Node{Feature: feat, Threshold: thr, Left: l, Right: r}
	return self
}

func meanOf(y []float64, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func pure(y []float64, idx []int) bool {
	first := y[idx[0]]
	for _, i := range idx[1:] {
		if y[i] != first {
			return false
		}
	}
	return true
}

// bestSplit finds the (feature, threshold) minimizing weighted child
// variance over a random feature subset, using the sorted single-pass
// incremental formulation.
func (b *builder) bestSplit(idx []int) (int, float64, bool) {
	nf := len(b.x[0])
	feats := b.rng.Perm(nf)[:b.cfg.MaxFeatures]

	bestScore := math.Inf(1)
	bestFeat, bestThr := -1, 0.0

	order := make([]int, len(idx))
	for _, feat := range feats {
		copy(order, idx)
		sort.Slice(order, func(a, c int) bool { return b.x[order[a]][feat] < b.x[order[c]][feat] })

		// Incremental sums: left grows sample by sample.
		var lSum, lSq float64
		var rSum, rSq float64
		n := float64(len(order))
		for _, i := range order {
			rSum += b.y[i]
			rSq += b.y[i] * b.y[i]
		}
		for k := 0; k < len(order)-1; k++ {
			yi := b.y[order[k]]
			lSum += yi
			lSq += yi * yi
			rSum -= yi
			rSq -= yi * yi

			// Candidate split between k and k+1; skip ties.
			cur, next := b.x[order[k]][feat], b.x[order[k+1]][feat]
			if cur == next {
				continue
			}
			nl, nr := float64(k+1), n-float64(k+1)
			score := (lSq - lSum*lSum/nl) + (rSq - rSum*rSum/nr)
			if score < bestScore {
				bestScore = score
				bestFeat = feat
				bestThr = (cur + next) / 2
			}
		}
	}
	return bestFeat, bestThr, bestFeat >= 0
}

// Predict averages tree predictions for one sample.
func (f *Forest) Predict(x []float64) (float64, error) {
	if len(x) != f.NFeatures {
		return 0, fmt.Errorf("%w: model wants %d features, got %d", ErrBadShape, f.NFeatures, len(x))
	}
	var s float64
	for i := range f.Trees {
		s += f.Trees[i].Predict(x)
	}
	return s / float64(len(f.Trees)), nil
}

// PredictBatch predicts many samples.
func (f *Forest) PredictBatch(xs [][]float64) ([]float64, error) {
	out := make([]float64, len(xs))
	for i, x := range xs {
		v, err := f.Predict(x)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// R2 computes the coefficient of determination on a test set.
func (f *Forest) R2(x [][]float64, y []float64) (float64, error) {
	pred, err := f.PredictBatch(x)
	if err != nil {
		return 0, err
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ssRes, ssTot float64
	for i := range y {
		ssRes += (y[i] - pred[i]) * (y[i] - pred[i])
		ssTot += (y[i] - mean) * (y[i] - mean)
	}
	if ssTot == 0 {
		return 0, nil
	}
	return 1 - ssRes/ssTot, nil
}

// Encode serializes the forest with gob.
func Encode(f *Forest) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode reconstructs a forest from Encode output.
func Decode(data []byte) (*Forest, error) {
	var f Forest
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&f); err != nil {
		return nil, fmt.Errorf("rf: decode: %w", err)
	}
	return &f, nil
}
