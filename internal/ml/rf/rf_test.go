package rf

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synth generates y = 3*x0 - 2*x1 + noise over random features.
func synth(n, nf int, noise float64, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, nf)
		for j := range row {
			row[j] = rng.Float64()*2 - 1
		}
		x[i] = row
		y[i] = 3*row[0] - 2*row[1] + rng.NormFloat64()*noise
	}
	return x, y
}

func TestTrainAndPredictLearnsSignal(t *testing.T) {
	x, y := synth(600, 5, 0.05, 1)
	f, err := Train(x, y, Config{Trees: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	xt, yt := synth(200, 5, 0.05, 2)
	r2, err := f.R2(xt, yt)
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.7 {
		t.Fatalf("forest failed to learn linear signal: R2=%v", r2)
	}
}

func TestPredictDeterministicBySeed(t *testing.T) {
	x, y := synth(100, 4, 0.1, 3)
	a, _ := Train(x, y, Config{Trees: 10, Seed: 42})
	b, _ := Train(x, y, Config{Trees: 10, Seed: 42})
	for i := 0; i < 20; i++ {
		probe := x[i]
		pa, _ := a.Predict(probe)
		pb, _ := b.Predict(probe)
		if pa != pb {
			t.Fatal("same seed should train identical forests")
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, Config{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData, got %v", err)
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 2}, Config{}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("want ErrBadShape on row/target mismatch, got %v", err)
	}
	if _, err := Train([][]float64{{1, 2}, {1}}, []float64{1, 2}, Config{}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("want ErrBadShape on ragged rows, got %v", err)
	}
}

func TestPredictShapeError(t *testing.T) {
	x, y := synth(50, 3, 0.1, 1)
	f, _ := Train(x, y, Config{Trees: 5, Seed: 1})
	if _, err := f.Predict([]float64{1}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("want ErrBadShape, got %v", err)
	}
	if _, err := f.PredictBatch([][]float64{{1, 2, 3}, {1}}); !errors.Is(err, ErrBadShape) {
		t.Fatalf("batch with bad row should fail, got %v", err)
	}
}

func TestMaxDepthRespected(t *testing.T) {
	x, y := synth(500, 4, 0.0, 5)
	f, _ := Train(x, y, Config{Trees: 5, MaxDepth: 3, Seed: 1})
	for _, tree := range f.Trees {
		if d := tree.Depth(); d > 3 {
			t.Fatalf("tree depth %d exceeds max 3", d)
		}
	}
	deep, _ := Train(x, y, Config{Trees: 5, Seed: 1})
	foundDeeper := false
	for _, tree := range deep.Trees {
		if tree.Depth() > 3 {
			foundDeeper = true
		}
	}
	if !foundDeeper {
		t.Fatal("unbounded trees should grow deeper than 3 on 500 samples")
	}
}

func TestMinSamplesLeaf(t *testing.T) {
	x, y := synth(200, 3, 0.2, 9)
	f, _ := Train(x, y, Config{Trees: 5, MinSamplesLeaf: 20, Seed: 1})
	// Count leaf sizes indirectly: trees must be small.
	for _, tree := range f.Trees {
		leaves := 0
		for _, n := range tree.Nodes {
			if n.Feature < 0 {
				leaves++
			}
		}
		if leaves > 200/20+1 {
			t.Fatalf("too many leaves (%d) for MinSamplesLeaf=20", leaves)
		}
	}
}

func TestConstantTarget(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	y := []float64{7, 7, 7}
	f, err := Train(x, y, Config{Trees: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := f.Predict([]float64{0, 0})
	if p != 7 {
		t.Fatalf("constant target should predict the constant, got %v", p)
	}
}

func TestSingleSample(t *testing.T) {
	f, err := Train([][]float64{{1}}, []float64{5}, Config{Trees: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := f.Predict([]float64{99})
	if p != 5 {
		t.Fatalf("single-sample forest should predict that sample, got %v", p)
	}
}

// Property: predictions are bounded by [min(y), max(y)] — averaging
// leaf means can never extrapolate beyond the training range.
func TestPredictionBoundsProperty(t *testing.T) {
	x, y := synth(300, 4, 0.3, 11)
	f, _ := Train(x, y, Config{Trees: 15, Seed: 2})
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, v := range y {
		minY = math.Min(minY, v)
		maxY = math.Max(maxY, v)
	}
	check := func(a, b, c, d float64) bool {
		p, err := f.Predict([]float64{a, b, c, d})
		if err != nil {
			return false
		}
		return p >= minY-1e-9 && p <= maxY+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	x, y := synth(150, 4, 0.1, 13)
	f, _ := Train(x, y, Config{Trees: 10, Seed: 3})
	data, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		pa, _ := f.Predict(x[i])
		pb, _ := back.Predict(x[i])
		if pa != pb {
			t.Fatal("decoded forest differs")
		}
	}
	if _, err := Decode([]byte("junk")); err == nil {
		t.Fatal("garbage should not decode")
	}
}

func TestMoreTreesReduceVariance(t *testing.T) {
	x, y := synth(400, 5, 0.5, 17)
	xt, yt := synth(200, 5, 0.5, 18)
	small, _ := Train(x, y, Config{Trees: 1, Seed: 4})
	big, _ := Train(x, y, Config{Trees: 60, Seed: 4})
	r2s, _ := small.R2(xt, yt)
	r2b, _ := big.R2(xt, yt)
	if r2b <= r2s {
		t.Fatalf("ensemble should beat single tree on noisy data: 1-tree R2=%v 60-tree R2=%v", r2s, r2b)
	}
}

func BenchmarkForestPredict(b *testing.B) {
	x, y := synth(1000, 132, 0.1, 1) // Magpie-sized feature vector
	f, _ := Train(x, y, Config{Trees: 100, MaxDepth: 12, Seed: 1})
	probe := x[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict(probe) //nolint:errcheck
	}
}
