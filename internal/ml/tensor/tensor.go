// Package tensor provides the float32 dense-tensor arithmetic under the
// neural-network runtime: the real convolutions, poolings and matrix
// products that stand in for the TensorFlow/Keras compute of the paper's
// Inception and CIFAR-10 servables. All operations are genuinely
// computed — inference cost in the benchmarks is real CPU work.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero tensor of the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: invalid dimension %d in %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromData wraps data with a shape (no copy). len(data) must match.
func FromData(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v wants %d elements, have %d", shape, n, len(data)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	data := make([]float32, len(t.Data))
	copy(data, t.Data)
	return FromData(data, t.Shape...)
}

// SameShape reports whether two tensors have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// At returns the element at [h,w,c] of an HWC tensor.
func (t *Tensor) At(h, w, c int) float32 {
	return t.Data[(h*t.Shape[1]+w)*t.Shape[2]+c]
}

// Set writes the element at [h,w,c] of an HWC tensor.
func (t *Tensor) Set(h, w, c int, v float32) {
	t.Data[(h*t.Shape[1]+w)*t.Shape[2]+c] = v
}

// FillRandom fills with uniform values in [-scale, scale] from rng.
func (t *Tensor) FillRandom(rng *rand.Rand, scale float32) {
	for i := range t.Data {
		t.Data[i] = (rng.Float32()*2 - 1) * scale
	}
}

// --- elementwise ---------------------------------------------------------

// ReLU applies max(0,x) in place and returns t.
func (t *Tensor) ReLU() *Tensor {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0
		}
	}
	return t
}

// AddBias adds a per-channel bias to an HWC tensor (or per-element for
// a vector of the same length) in place.
func (t *Tensor) AddBias(bias []float32) *Tensor {
	c := len(bias)
	for i := range t.Data {
		t.Data[i] += bias[i%c]
	}
	return t
}

// Scale multiplies every element in place.
func (t *Tensor) Scale(f float32) *Tensor {
	for i := range t.Data {
		t.Data[i] *= f
	}
	return t
}

// Softmax normalizes a vector into a probability distribution (stable).
func Softmax(v []float32) []float32 {
	out := make([]float32, len(v))
	if len(v) == 0 {
		return out
	}
	maxV := v[0]
	for _, x := range v {
		if x > maxV {
			maxV = x
		}
	}
	var sum float64
	for i, x := range v {
		e := math.Exp(float64(x - maxV))
		out[i] = float32(e)
		sum += e
	}
	for i := range out {
		out[i] = float32(float64(out[i]) / sum)
	}
	return out
}

// ArgTopK returns the indices of the k largest values, descending — the
// "five most likely categories" output of the Inception servable.
func ArgTopK(v []float32, k int) []int {
	if k > len(v) {
		k = len(v)
	}
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort: k is small (5).
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if v[idx[j]] > v[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}

// --- linear algebra -------------------------------------------------------

// MatVec computes y = W·x for W in row-major [out][in].
func MatVec(w []float32, rows, cols int, x []float32) []float32 {
	if len(x) != cols {
		panic(fmt.Sprintf("tensor: matvec dims: %d cols vs %d input", cols, len(x)))
	}
	y := make([]float32, rows)
	for r := 0; r < rows; r++ {
		row := w[r*cols : (r+1)*cols]
		var sum float32
		for c, v := range row {
			sum += v * x[c]
		}
		y[r] = sum
	}
	return y
}

// --- convolution / pooling -------------------------------------------------

// Conv2D applies an HWC convolution: input [H,W,Cin], kernel
// [kh,kw,Cin,Cout], stride s, "same" padding when pad is true. The
// inner loops are written for cache-friendly channel-major access; this
// is the hot path of every CNN inference in the benchmarks.
func Conv2D(in *Tensor, kernel *Tensor, stride int, pad bool) *Tensor {
	h, w, cin := in.Shape[0], in.Shape[1], in.Shape[2]
	kh, kw, kcin, cout := kernel.Shape[0], kernel.Shape[1], kernel.Shape[2], kernel.Shape[3]
	if kcin != cin {
		panic(fmt.Sprintf("tensor: conv channels mismatch: input %d, kernel %d", cin, kcin))
	}
	padH, padW := 0, 0
	if pad {
		padH, padW = (kh-1)/2, (kw-1)/2
	}
	outH := (h+2*padH-kh)/stride + 1
	outW := (w+2*padW-kw)/stride + 1
	out := New(outH, outW, cout)

	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			outBase := (oy*outW + ox) * cout
			for ky := 0; ky < kh; ky++ {
				iy := oy*stride + ky - padH
				if iy < 0 || iy >= h {
					continue
				}
				for kx := 0; kx < kw; kx++ {
					ix := ox*stride + kx - padW
					if ix < 0 || ix >= w {
						continue
					}
					inBase := (iy*w + ix) * cin
					kBase := ((ky*kw + kx) * cin) * cout
					for ci := 0; ci < cin; ci++ {
						iv := in.Data[inBase+ci]
						if iv == 0 {
							continue
						}
						kRow := kernel.Data[kBase+ci*cout : kBase+(ci+1)*cout]
						outRow := out.Data[outBase : outBase+cout]
						for co := range outRow {
							outRow[co] += iv * kRow[co]
						}
					}
				}
			}
		}
	}
	return out
}

// MaxPool2D applies non-overlapping max pooling with the given window
// and stride over an HWC tensor.
func MaxPool2D(in *Tensor, window, stride int) *Tensor {
	h, w, c := in.Shape[0], in.Shape[1], in.Shape[2]
	outH := (h-window)/stride + 1
	outW := (w-window)/stride + 1
	out := New(outH, outW, c)
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			for ch := 0; ch < c; ch++ {
				best := float32(math.Inf(-1))
				for ky := 0; ky < window; ky++ {
					for kx := 0; kx < window; kx++ {
						v := in.At(oy*stride+ky, ox*stride+kx, ch)
						if v > best {
							best = v
						}
					}
				}
				out.Set(oy, ox, ch, best)
			}
		}
	}
	return out
}

// AvgPool2D applies average pooling.
func AvgPool2D(in *Tensor, window, stride int) *Tensor {
	h, w, c := in.Shape[0], in.Shape[1], in.Shape[2]
	outH := (h-window)/stride + 1
	outW := (w-window)/stride + 1
	out := New(outH, outW, c)
	norm := float32(1.0 / float64(window*window))
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			for ch := 0; ch < c; ch++ {
				var sum float32
				for ky := 0; ky < window; ky++ {
					for kx := 0; kx < window; kx++ {
						sum += in.At(oy*stride+ky, ox*stride+kx, ch)
					}
				}
				out.Set(oy, ox, ch, sum*norm)
			}
		}
	}
	return out
}

// GlobalAvgPool reduces an HWC tensor to a C-length vector.
func GlobalAvgPool(in *Tensor) []float32 {
	h, w, c := in.Shape[0], in.Shape[1], in.Shape[2]
	out := make([]float32, c)
	for i, v := range in.Data {
		out[i%c] += v
	}
	norm := float32(1.0 / float64(h*w))
	for i := range out {
		out[i] *= norm
	}
	return out
}

// ConcatChannels concatenates HWC tensors with equal H,W along C — the
// join at the end of every Inception module.
func ConcatChannels(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: concat of nothing")
	}
	h, w := ts[0].Shape[0], ts[0].Shape[1]
	total := 0
	for _, t := range ts {
		if t.Shape[0] != h || t.Shape[1] != w {
			panic(fmt.Sprintf("tensor: concat spatial mismatch: %v vs %v", t.Shape, ts[0].Shape))
		}
		total += t.Shape[2]
	}
	out := New(h, w, total)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			off := 0
			for _, t := range ts {
				c := t.Shape[2]
				src := t.Data[(y*w+x)*c : (y*w+x+1)*c]
				dst := out.Data[(y*w+x)*total+off : (y*w+x)*total+off+c]
				copy(dst, src)
				off += c
			}
		}
	}
	return out
}

// BatchNorm applies y = gamma*(x-mean)/sqrt(var+eps) + beta per channel
// in place (inference mode with precomputed statistics).
func BatchNorm(t *Tensor, gamma, beta, mean, variance []float32, eps float32) *Tensor {
	c := len(gamma)
	inv := make([]float32, c)
	for i := range inv {
		inv[i] = gamma[i] / float32(math.Sqrt(float64(variance[i]+eps)))
	}
	for i := range t.Data {
		ch := i % c
		t.Data[i] = (t.Data[i]-mean[ch])*inv[ch] + beta[ch]
	}
	return t
}
