package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float32) bool { return math.Abs(float64(a-b)) < 1e-4 }

func TestNewAndFromData(t *testing.T) {
	tt := New(2, 3, 4)
	if tt.Len() != 24 {
		t.Fatalf("len = %d", tt.Len())
	}
	d := FromData([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if d.Len() != 6 || d.Shape[0] != 2 {
		t.Fatalf("FromData wrong: %v", d.Shape)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched FromData should panic")
		}
	}()
	FromData([]float32{1, 2}, 3)
}

func TestNewInvalidDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero dim should panic")
		}
	}()
	New(0, 3)
}

func TestCloneIndependent(t *testing.T) {
	a := FromData([]float32{1, 2, 3}, 3)
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("clone should not share data")
	}
	if !a.SameShape(b) {
		t.Fatal("clone should share shape")
	}
}

func TestReLU(t *testing.T) {
	a := FromData([]float32{-1, 0, 2, -3.5}, 4)
	a.ReLU()
	want := []float32{0, 0, 2, 0}
	for i := range want {
		if a.Data[i] != want[i] {
			t.Fatalf("relu wrong at %d: %v", i, a.Data)
		}
	}
}

func TestAddBiasAndScale(t *testing.T) {
	a := New(1, 2, 2) // HWC with 2 channels
	a.AddBias([]float32{1, 10})
	want := []float32{1, 10, 1, 10}
	for i := range want {
		if a.Data[i] != want[i] {
			t.Fatalf("bias wrong: %v", a.Data)
		}
	}
	a.Scale(2)
	if a.Data[1] != 20 {
		t.Fatalf("scale wrong: %v", a.Data)
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float32{1, 2, 3})
	var sum float32
	for _, v := range p {
		sum += v
	}
	if !almostEq(sum, 1) {
		t.Fatalf("softmax should sum to 1, got %v", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Fatalf("softmax should be monotone: %v", p)
	}
	// Stability with large values.
	p = Softmax([]float32{1000, 1001})
	if math.IsNaN(float64(p[0])) || !almostEq(p[0]+p[1], 1) {
		t.Fatalf("softmax unstable: %v", p)
	}
	if len(Softmax(nil)) != 0 {
		t.Fatal("empty softmax should be empty")
	}
}

// Property: softmax output is a probability distribution for any input.
func TestSoftmaxProperty(t *testing.T) {
	f := func(in []float32) bool {
		for i := range in {
			if math.IsNaN(float64(in[i])) || math.IsInf(float64(in[i]), 0) {
				in[i] = 0
			}
		}
		p := Softmax(in)
		if len(p) != len(in) {
			return false
		}
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(float64(v)) {
				return false
			}
			sum += float64(v)
		}
		return len(in) == 0 || math.Abs(sum-1) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestArgTopK(t *testing.T) {
	v := []float32{0.1, 0.9, 0.5, 0.7, 0.2}
	top := ArgTopK(v, 3)
	want := []int{1, 3, 2}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("topk wrong: %v", top)
		}
	}
	if len(ArgTopK(v, 10)) != 5 {
		t.Fatal("k beyond length should clamp")
	}
}

func TestMatVec(t *testing.T) {
	// W = [[1,2],[3,4],[5,6]] x = [1,1] -> [3,7,11]
	w := []float32{1, 2, 3, 4, 5, 6}
	y := MatVec(w, 3, 2, []float32{1, 1})
	want := []float32{3, 7, 11}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("matvec wrong: %v", y)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dim mismatch should panic")
		}
	}()
	MatVec(w, 3, 2, []float32{1})
}

func TestConv2DIdentity(t *testing.T) {
	// 1x1 kernel with single weight 1.0 is identity.
	in := New(4, 4, 1)
	rng := rand.New(rand.NewSource(7))
	in.FillRandom(rng, 1)
	k := FromData([]float32{1}, 1, 1, 1, 1)
	out := Conv2D(in, k, 1, false)
	if !out.SameShape(in) {
		t.Fatalf("identity conv changed shape: %v", out.Shape)
	}
	for i := range in.Data {
		if !almostEq(out.Data[i], in.Data[i]) {
			t.Fatal("identity conv changed values")
		}
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 3x3 input, 2x2 kernel of ones, stride 1, no pad: sliding sums.
	in := FromData([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 3, 3, 1)
	k := FromData([]float32{1, 1, 1, 1}, 2, 2, 1, 1)
	out := Conv2D(in, k, 1, false)
	want := []float32{12, 16, 24, 28}
	if out.Shape[0] != 2 || out.Shape[1] != 2 {
		t.Fatalf("conv shape wrong: %v", out.Shape)
	}
	for i := range want {
		if !almostEq(out.Data[i], want[i]) {
			t.Fatalf("conv values wrong: %v want %v", out.Data, want)
		}
	}
}

func TestConv2DSamePadding(t *testing.T) {
	in := New(8, 8, 3)
	k := New(3, 3, 3, 16)
	out := Conv2D(in, k, 1, true)
	if out.Shape[0] != 8 || out.Shape[1] != 8 || out.Shape[2] != 16 {
		t.Fatalf("same-padding conv shape wrong: %v", out.Shape)
	}
}

func TestConv2DStride(t *testing.T) {
	in := New(8, 8, 1)
	k := New(3, 3, 1, 4)
	out := Conv2D(in, k, 2, true)
	if out.Shape[0] != 4 || out.Shape[1] != 4 {
		t.Fatalf("strided conv shape wrong: %v", out.Shape)
	}
}

func TestConv2DChannelMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("channel mismatch should panic")
		}
	}()
	Conv2D(New(4, 4, 3), New(3, 3, 1, 8), 1, true)
}

// Property: convolution is linear — conv(a*x) == a*conv(x).
func TestConv2DLinearityProperty(t *testing.T) {
	f := func(seed int64, scaleRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		scale := float32(scaleRaw%7) + 0.5
		in := New(6, 6, 2)
		in.FillRandom(rng, 1)
		k := New(3, 3, 2, 3)
		k.FillRandom(rng, 1)

		a := Conv2D(in.Clone().Scale(scale), k, 1, true)
		b := Conv2D(in, k, 1, true).Scale(scale)
		for i := range a.Data {
			if math.Abs(float64(a.Data[i]-b.Data[i])) > 1e-2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxPool2D(t *testing.T) {
	in := FromData([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 4, 4, 1)
	out := MaxPool2D(in, 2, 2)
	want := []float32{6, 8, 14, 16}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("maxpool wrong: %v", out.Data)
		}
	}
}

func TestAvgPool2D(t *testing.T) {
	in := FromData([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 4, 4, 1)
	out := AvgPool2D(in, 2, 2)
	want := []float32{3.5, 5.5, 11.5, 13.5}
	for i := range want {
		if !almostEq(out.Data[i], want[i]) {
			t.Fatalf("avgpool wrong: %v", out.Data)
		}
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in := New(2, 2, 2)
	// channel 0 = 1, channel 1 = 2 everywhere
	for y := 0; y < 2; y++ {
		for x := 0; x < 2; x++ {
			in.Set(y, x, 0, 1)
			in.Set(y, x, 1, 2)
		}
	}
	out := GlobalAvgPool(in)
	if !almostEq(out[0], 1) || !almostEq(out[1], 2) {
		t.Fatalf("gap wrong: %v", out)
	}
}

func TestConcatChannels(t *testing.T) {
	a := New(2, 2, 1)
	b := New(2, 2, 2)
	for i := range a.Data {
		a.Data[i] = 1
	}
	for i := range b.Data {
		b.Data[i] = 2
	}
	out := ConcatChannels(a, b)
	if out.Shape[2] != 3 {
		t.Fatalf("concat channels wrong: %v", out.Shape)
	}
	if out.At(0, 0, 0) != 1 || out.At(0, 0, 1) != 2 || out.At(1, 1, 2) != 2 {
		t.Fatalf("concat layout wrong: %v", out.Data)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("spatial mismatch should panic")
		}
	}()
	ConcatChannels(a, New(3, 3, 1))
}

func TestBatchNorm(t *testing.T) {
	in := FromData([]float32{1, 2, 3, 4}, 2, 1, 2) // 2 channels
	// gamma=1, beta=0, mean=0, var=1 -> identity (eps tiny).
	out := BatchNorm(in.Clone(), []float32{1, 1}, []float32{0, 0}, []float32{0, 0}, []float32{1, 1}, 1e-9)
	for i := range in.Data {
		if !almostEq(out.Data[i], in.Data[i]) {
			t.Fatal("identity batchnorm changed values")
		}
	}
	// Normalizing: mean=2 var=1 on channel 0 shifts values.
	out2 := BatchNorm(in.Clone(), []float32{1, 1}, []float32{0, 0}, []float32{2, 3}, []float32{1, 1}, 0)
	if !almostEq(out2.Data[0], -1) { // (1-2)/1
		t.Fatalf("batchnorm wrong: %v", out2.Data)
	}
}

func BenchmarkConv2D32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := New(32, 32, 3)
	in.FillRandom(rng, 1)
	k := New(3, 3, 3, 32)
	k.FillRandom(rng, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(in, k, 1, true)
	}
}
