// Package netsim shapes real TCP connections with configured one-way
// latency and bandwidth so that a single machine can reproduce the
// paper's three-site topology (§V-A): the Management Service on Amazon
// EC2, the Task Manager on Cooley, and servables on the PetrelKube
// Kubernetes cluster, with measured RTTs of 20.7 ms (EC2<->Cooley) and
// 0.17 ms (Cooley<->PetrelKube).
//
// Shaping is applied to outbound writes on each wrapped end: bytes are
// timestamped on entry and released to the underlying connection only
// after oneWayDelay + size/bandwidth has elapsed, preserving ordering.
// Wrapping both ends of a connection therefore yields the full RTT for a
// request/response exchange, exactly like the real links.
package netsim

import (
	"net"
	"sync"
	"time"
)

// Profile describes one direction of a link.
type Profile struct {
	// OneWay is the one-way propagation delay (half the RTT).
	OneWay time.Duration
	// Bandwidth in bytes/second; zero means unlimited.
	Bandwidth float64
}

// RTT builds a symmetric profile from a round-trip time.
func RTT(rtt time.Duration, bandwidth float64) Profile {
	return Profile{OneWay: rtt / 2, Bandwidth: bandwidth}
}

// Conn wraps a net.Conn, delaying outbound bytes per the profile.
// Reads pass through untouched (the peer's Conn delays its own writes).
type Conn struct {
	net.Conn
	p Profile

	mu sync.Mutex
	// release is the virtual time at which the link becomes free: the
	// serialization of earlier writes must finish before later bytes
	// start transmitting (FIFO link).
	release time.Time

	closeOnce sync.Once
	sendq     chan delayedChunk
	done      chan struct{}
	wg        sync.WaitGroup
	writeErr  error
	errMu     sync.Mutex
}

type delayedChunk struct {
	data    []byte
	deliver time.Time
}

// Wrap shapes conn with profile p. A background goroutine owns all
// writes to the underlying connection; Close stops it.
func Wrap(conn net.Conn, p Profile) *Conn {
	c := &Conn{
		Conn:  conn,
		p:     p,
		sendq: make(chan delayedChunk, 1024),
		done:  make(chan struct{}),
	}
	c.wg.Add(1)
	go c.pump()
	return c
}

func (c *Conn) pump() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			// Drain pending chunks, still honoring their scheduled
			// delivery times (like TCP linger: queued data is not
			// accelerated by close).
			for {
				select {
				case chunk := <-c.sendq:
					if wait := time.Until(chunk.deliver); wait > 0 {
						time.Sleep(wait)
					}
					c.Conn.Write(chunk.data) //nolint:errcheck — best-effort drain
				default:
					return
				}
			}
		case chunk := <-c.sendq:
			if wait := time.Until(chunk.deliver); wait > 0 {
				timer := time.NewTimer(wait)
				<-timer.C
			}
			if _, err := c.Conn.Write(chunk.data); err != nil {
				c.errMu.Lock()
				c.writeErr = err
				c.errMu.Unlock()
				return
			}
		}
	}
}

// Write queues p for delayed delivery. It returns immediately (the link
// has infinite ingress buffering), reporting a previous asynchronous
// write error if one occurred.
func (c *Conn) Write(p []byte) (int, error) {
	select {
	case <-c.done:
		return 0, net.ErrClosed
	default:
	}
	c.errMu.Lock()
	err := c.writeErr
	c.errMu.Unlock()
	if err != nil {
		return 0, err
	}

	data := make([]byte, len(p))
	copy(data, p)

	now := time.Now()
	c.mu.Lock()
	start := c.release
	if start.Before(now) {
		start = now
	}
	var ser time.Duration
	if c.p.Bandwidth > 0 {
		ser = time.Duration(float64(len(p)) / c.p.Bandwidth * float64(time.Second))
	}
	c.release = start.Add(ser)
	deliver := c.release.Add(c.p.OneWay)
	c.mu.Unlock()

	select {
	case c.sendq <- delayedChunk{data: data, deliver: deliver}:
		return len(p), nil
	case <-c.done:
		return 0, net.ErrClosed
	}
}

// Close flushes pending chunks immediately and closes the underlying
// connection.
func (c *Conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.done)
		c.wg.Wait()
		err = c.Conn.Close()
	})
	return err
}

// Listener wraps accepted connections with a profile.
type Listener struct {
	net.Listener
	p Profile
}

// NewListener shapes every connection accepted from l.
func NewListener(l net.Listener, p Profile) *Listener {
	return &Listener{Listener: l, p: p}
}

// Accept waits for a connection and wraps it.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return Wrap(conn, l.p), nil
}

// Dialer dials TCP connections shaped with a profile.
type Dialer struct {
	P Profile
	// Timeout bounds connection establishment; zero means no timeout.
	Timeout time.Duration
}

// Dial connects to addr and wraps the connection. The configured one-way
// propagation delay is also charged once for connection establishment.
func (d Dialer) Dial(network, addr string) (net.Conn, error) {
	var (
		conn net.Conn
		err  error
	)
	if d.Timeout > 0 {
		conn, err = net.DialTimeout(network, addr, d.Timeout)
	} else {
		conn, err = net.Dial(network, addr)
	}
	if err != nil {
		return nil, err
	}
	if d.P.OneWay > 0 {
		time.Sleep(d.P.OneWay)
	}
	return Wrap(conn, d.P), nil
}

// Host names the paper's three sites.
type Host string

// The three sites of §V-A.
const (
	HostEC2     Host = "ec2"        // Management Service
	HostCooley  Host = "cooley"     // Task Manager
	HostCluster Host = "petrelkube" // Kubernetes cluster with servables
)

// Topology maps ordered host pairs to link profiles. It is symmetric:
// Link(a,b) == Link(b,a).
type Topology struct {
	mu    sync.RWMutex
	links map[[2]Host]Profile
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{links: make(map[[2]Host]Profile)}
}

func key(a, b Host) [2]Host {
	if b < a {
		a, b = b, a
	}
	return [2]Host{a, b}
}

// SetLink installs a symmetric link profile between two hosts. The
// profile's OneWay should already be half the desired RTT (use RTT()).
func (t *Topology) SetLink(a, b Host, p Profile) {
	t.mu.Lock()
	t.links[key(a, b)] = p
	t.mu.Unlock()
}

// Link returns the profile between two hosts. Unknown pairs — including
// a host to itself — get a zero (unshaped) profile.
func (t *Topology) Link(a, b Host) Profile {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.links[key(a, b)]
}

// Paper builds the §V-A topology: EC2<->Cooley at 20.7 ms RTT over the
// WAN, Cooley<->PetrelKube at 0.17 ms over the lab fabric. The caller
// supplies the constants so this package stays dependency-free.
func Paper(wanRTT, labRTT time.Duration, wanBW, labBW float64) *Topology {
	t := NewTopology()
	t.SetLink(HostEC2, HostCooley, RTT(wanRTT, wanBW))
	t.SetLink(HostCooley, HostCluster, RTT(labRTT, labBW))
	t.SetLink(HostEC2, HostCluster, RTT(wanRTT+labRTT, wanBW))
	return t
}
