package netsim

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// pipePair returns both ends of a real TCP connection on loopback.
func pipePair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := l.Accept()
		if err != nil {
			return
		}
		server = c
	}()
	client, err = net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if server == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestWrapPreservesData(t *testing.T) {
	c, s := pipePair(t)
	wc := Wrap(c, Profile{OneWay: time.Millisecond})
	defer wc.Close()

	msg := []byte("hello dlhub")
	go wc.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(s, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("data corrupted: %q", got)
	}
}

func TestWrapAppliesLatency(t *testing.T) {
	c, s := pipePair(t)
	delay := 20 * time.Millisecond
	wc := Wrap(c, Profile{OneWay: delay})
	defer wc.Close()

	start := time.Now()
	go wc.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("delivery too fast: %v < %v", elapsed, delay)
	}
}

func TestRoundTripIsFullRTT(t *testing.T) {
	c, s := pipePair(t)
	rtt := 30 * time.Millisecond
	wc := Wrap(c, RTT(rtt, 0))
	ws := Wrap(s, RTT(rtt, 0))
	defer wc.Close()
	defer ws.Close()

	// Echo server.
	go func() {
		buf := make([]byte, 1)
		if _, err := io.ReadFull(ws, buf); err != nil {
			return
		}
		ws.Write(buf)
	}()

	start := time.Now()
	wc.Write([]byte("p"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(wc, buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < rtt {
		t.Fatalf("round trip %v < configured RTT %v", elapsed, rtt)
	}
	if elapsed > rtt*3 {
		t.Fatalf("round trip %v way above configured RTT %v", elapsed, rtt)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	c, s := pipePair(t)
	// 1 MB/s: 100 KB should take >= ~100ms to serialize.
	wc := Wrap(c, Profile{Bandwidth: 1e6})
	defer wc.Close()

	payload := make([]byte, 100_000)
	start := time.Now()
	go wc.Write(payload)
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(s, got); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Fatalf("bandwidth not enforced: 100KB at 1MB/s arrived in %v", elapsed)
	}
}

func TestOrderingPreservedUnderConcurrentWrites(t *testing.T) {
	c, s := pipePair(t)
	wc := Wrap(c, Profile{OneWay: time.Millisecond})
	defer wc.Close()

	var wg sync.WaitGroup
	const n = 50
	// Sequential writes from one goroutine must arrive in order.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			wc.Write([]byte{byte(i)})
		}
	}()
	got := make([]byte, n)
	if _, err := io.ReadFull(s, got); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if got[i] != byte(i) {
			t.Fatalf("out of order at %d: got %d", i, got[i])
		}
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	c, _ := pipePair(t)
	wc := Wrap(c, Profile{})
	if err := wc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wc.Close(); err != nil {
		t.Fatalf("second close should be nil, got %v", err)
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	c, _ := pipePair(t)
	wc := Wrap(c, Profile{})
	wc.Close()
	if _, err := wc.Write([]byte("x")); err == nil {
		t.Fatal("write after close should fail")
	}
}

func TestListenerWrapsAccepted(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := NewListener(raw, Profile{OneWay: 10 * time.Millisecond})
	defer l.Close()

	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		conn.Write([]byte("pong"))
	}()

	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("accepted conn not shaped")
	}
}

func TestDialer(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c)
		}
	}()

	d := Dialer{P: Profile{OneWay: 5 * time.Millisecond}, Timeout: time.Second}
	conn, err := d.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	conn.Write([]byte("a"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	// Outbound shaped 5ms; echo return unshaped.
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("dialer conn not shaped")
	}
}

func TestTopologySymmetric(t *testing.T) {
	topo := NewTopology()
	p := RTT(20*time.Millisecond, 1e9)
	topo.SetLink(HostEC2, HostCooley, p)
	if got := topo.Link(HostCooley, HostEC2); got != p {
		t.Fatalf("link not symmetric: %+v", got)
	}
	if got := topo.Link(HostEC2, HostEC2); got != (Profile{}) {
		t.Fatalf("self link should be zero, got %+v", got)
	}
}

func TestPaperTopology(t *testing.T) {
	topo := Paper(20700*time.Microsecond, 170*time.Microsecond, 1e8, 5e9)
	wan := topo.Link(HostEC2, HostCooley)
	if wan.OneWay != 10350*time.Microsecond {
		t.Fatalf("WAN one-way should be half of 20.7ms, got %v", wan.OneWay)
	}
	lab := topo.Link(HostCooley, HostCluster)
	if lab.OneWay != 85*time.Microsecond {
		t.Fatalf("lab one-way should be 85us, got %v", lab.OneWay)
	}
	direct := topo.Link(HostEC2, HostCluster)
	if direct.OneWay <= wan.OneWay {
		t.Fatal("EC2->cluster should be longer than EC2->Cooley")
	}
}

// Property: RTT() always halves the round trip exactly.
func TestRTTProperty(t *testing.T) {
	f := func(ms uint16) bool {
		rtt := time.Duration(ms) * time.Millisecond
		p := RTT(rtt, 0)
		return p.OneWay*2 == rtt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
