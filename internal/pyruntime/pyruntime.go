// Package pyruntime is the simulated CPython bridge — the substitution
// the repro band calls out ("must bridge to Python model runtimes").
// DLHub servables are "any Python 3-compatible model or processing
// function"; offline Go cannot embed CPython, so this package reproduces
// the three ways a Python runtime is *observable* in the paper's
// experiments:
//
//  1. cold-start cost: interpreter launch + imports, paid once per
//     container (PythonImportCost);
//  2. per-call overhead: entering the interpreter, unpickling args,
//     boxing results (PythonCallOverhead);
//  3. throughput factor: interpreted execution is slower than the C++
//     tensorflow_model_server on the same model (PythonCallFactor) —
//     the §V-B5 "the core tensorflow model server, implemented in C++,
//     outperforms Python-based systems" effect.
//
// The actual function bodies are Go functions registered under
// "module:function" names (the moral equivalent of the function being
// importable inside the container image). Their math really runs; the
// factor is applied by re-running the hot loop proportionally, not by
// sleeping, so CPU pressure — and therefore replica scaling behaviour —
// stays realistic.
package pyruntime

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/simconst"
)

// Func is a registered "Python" function: JSON-ish value in, value out.
type Func func(arg any) (any, error)

// Errors.
var (
	ErrNotStarted      = errors.New("pyruntime: interpreter not started")
	ErrUnknownFunction = errors.New("pyruntime: unknown function")
)

// registry holds functions importable by any interpreter, keyed
// "module:function".
var registry sync.Map

// Register installs a function under a "module:function" name. It is
// the build-time analogue of copying the module into the container.
func Register(name string, f Func) { registry.Store(name, f) }

// Registered reports whether a function name resolves.
func Registered(name string) bool {
	_, ok := registry.Load(name)
	return ok
}

// Lookup returns the registered function for direct native invocation —
// the path a compiled (non-Python) host takes. Python-hosted execution
// goes through Interpreter.Call, which adds the interpreter costs.
func Lookup(name string) (Func, bool) {
	v, ok := registry.Load(name)
	if !ok {
		return nil, false
	}
	return v.(Func), true
}

// Interpreter is one simulated CPython process, embedded in a servable
// container by the DLHub shim.
type Interpreter struct {
	mu      sync.Mutex
	started bool
	imports map[string]bool

	// CallFactor over-rides simconst.PythonCallFactor when > 0 (tests).
	CallFactor float64
	// CallOverhead overrides simconst.PythonCallOverhead when > 0.
	CallOverhead time.Duration

	calls uint64
}

// New returns an unstarted interpreter.
func New() *Interpreter {
	return &Interpreter{imports: make(map[string]bool)}
}

// Start launches the interpreter, paying the one-time import cost. It
// is idempotent.
func (it *Interpreter) Start() {
	it.mu.Lock()
	defer it.mu.Unlock()
	if it.started {
		return
	}
	time.Sleep(simconst.D(simconst.PythonImportCost))
	it.started = true
}

// Started reports whether Start has completed.
func (it *Interpreter) Started() bool {
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.started
}

// Import marks a module imported (additional imports after start are
// cheap and tracked only for introspection).
func (it *Interpreter) Import(module string) {
	it.mu.Lock()
	it.imports[module] = true
	it.mu.Unlock()
}

// Calls returns the number of completed Call invocations.
func (it *Interpreter) Calls() uint64 {
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.calls
}

func (it *Interpreter) factor() float64 {
	if it.CallFactor > 0 {
		return it.CallFactor
	}
	return simconst.PythonCallFactor
}

func (it *Interpreter) overhead() time.Duration {
	if it.CallOverhead > 0 {
		return it.CallOverhead
	}
	return simconst.PythonCallOverhead
}

// Call invokes a registered function with Python-like cost: fixed
// per-call overhead, then the function body re-executed
// ceil(factor)-scaled so the slowdown is real CPU work (which contends
// for cores exactly like interpreted bytecode would), with the result
// of the first execution returned.
func (it *Interpreter) Call(name string, arg any) (any, error) {
	if !it.Started() {
		return nil, ErrNotStarted
	}
	v, ok := registry.Load(name)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownFunction, name)
	}
	f := v.(Func)

	time.Sleep(simconst.D(it.overhead()))

	start := time.Now()
	out, err := f(arg)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	// Burn the remaining (factor-1)x as real work: re-run the body.
	// For very cheap bodies the loop overhead dominates, which is
	// exactly how interpreter dispatch behaves.
	extra := it.factor() - 1
	for extra > 0 {
		if extra < 1 {
			// Fractional remainder: spin for the fraction of elapsed.
			deadline := time.Now().Add(time.Duration(extra * float64(elapsed)))
			for time.Now().Before(deadline) {
			}
			break
		}
		if _, err := f(arg); err != nil {
			break
		}
		extra--
	}

	it.mu.Lock()
	it.calls++
	it.mu.Unlock()
	return out, nil
}

// Stop shuts the interpreter down.
func (it *Interpreter) Stop() {
	it.mu.Lock()
	it.started = false
	it.mu.Unlock()
}

// MarshalArg round-trips v through JSON, mimicking the serialization
// boundary between the shim and the interpreter (and normalizing Go
// types to JSON types the way real DLHub payloads are normalized).
func MarshalArg(v any) (any, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	var out any
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	return out, nil
}
